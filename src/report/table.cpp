#include "report/table.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace adq::report {

void Table::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  if (!header_.empty() && row.size() != header_.size()) {
    throw std::invalid_argument("Table: row width " + std::to_string(row.size()) +
                                " != header width " + std::to_string(header_.size()));
  }
  rows_.push_back(std::move(row));
}

std::string Table::to_markdown() const {
  // Column widths across header + rows for aligned output.
  std::vector<std::size_t> widths(header_.size(), 0);
  auto grow = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i >= widths.size()) widths.resize(i + 1, 0);
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  grow(header_);
  for (const auto& r : rows_) grow(r);

  std::ostringstream os;
  os << "## " << title_ << "\n\n";
  auto emit = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string cell = i < row.size() ? row[i] : "";
      os << ' ' << cell << std::string(widths[i] - cell.size(), ' ') << " |";
    }
    os << '\n';
  };
  emit(header_);
  os << '|';
  for (std::size_t w : widths) os << std::string(w + 2, '-') << '|';
  os << '\n';
  for (const auto& r : rows_) emit(r);
  return os.str();
}

std::string Table::to_csv() const {
  auto escape = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string out = "\"";
    for (char c : cell) {
      if (c == '"') out += '"';
      out += c;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) os << ',';
      os << escape(row[i]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

void Table::write_csv(const std::string& path) const {
  std::ofstream out(path, std::ios::app);
  if (!out) throw std::runtime_error("Table: cannot open " + path);
  out << "# " << title_ << '\n' << to_csv();
}

std::string fmt(double value, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << value;
  return os.str();
}

std::string fmt_factor(double value, int precision) {
  return fmt(value, precision) + "x";
}

std::string fmt_percent(double value, int precision) {
  return fmt(value * 100.0, precision) + "%";
}

namespace {
template <typename T>
std::string fmt_vector_impl(const std::vector<T>& values) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) os << ", ";
    os << values[i];
  }
  os << ']';
  return os.str();
}
}  // namespace

std::string fmt_int_vector(const std::vector<int>& values) {
  return fmt_vector_impl(values);
}

std::string fmt_int_vector(const std::vector<long long>& values) {
  return fmt_vector_impl(values);
}

}  // namespace adq::report
