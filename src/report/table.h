// Plain-text table rendering for the paper-reproduction benches.
//
// Every bench binary prints the paper's reported rows next to the measured
// rows through this one formatter, so EXPERIMENTS.md and the bench stdout
// stay consistent. Markdown pipe-tables plus a CSV dump.
#pragma once

#include <string>
#include <vector>

namespace adq::report {

class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  void set_header(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);

  /// Aligned markdown pipe-table with the title as a heading.
  std::string to_markdown() const;

  /// RFC-4180-ish CSV (quotes cells containing commas/quotes).
  std::string to_csv() const;

  /// Appends the CSV to `path` (creating it), prefixed by a "# title" line.
  void write_csv(const std::string& path) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision float formatting ("3.19").
std::string fmt(double value, int precision = 2);

/// "4.19x" style factors.
std::string fmt_factor(double value, int precision = 2);

/// "91.62%" style percentages (value in [0, 1]).
std::string fmt_percent(double value, int precision = 2);

/// "[16, 4, 5, ...]" from any int-like vector.
std::string fmt_int_vector(const std::vector<int>& values);
std::string fmt_int_vector(const std::vector<long long>& values);

}  // namespace adq::report
