#include "quant/fake_quantizer.h"

#include <stdexcept>

#include "tensor/ops.h"

namespace adq::quant {

void FakeQuantizer::set_bits(int bits) {
  if (bits < 1) {
    throw std::invalid_argument("FakeQuantizer: bits must be >= 1, got " +
                                std::to_string(bits));
  }
  bits_ = bits;
}

void FakeQuantizer::observe(const Tensor& x) {
  const float lo = min_value(x);
  const float hi = max_value(x);
  if (mode_ == RangeMode::kPerBatch || !seen_) {
    range_min_ = lo;
    range_max_ = hi;
  } else {
    range_min_ = ema_decay_ * range_min_ + (1.0f - ema_decay_) * lo;
    range_max_ = ema_decay_ * range_max_ + (1.0f - ema_decay_) * hi;
  }
  seen_ = true;
}

Tensor FakeQuantizer::apply(const Tensor& x) {
  if (!enabled_ || bits_ >= 24 || x.numel() == 0) return x;
  observe(x);
  return fake_quantize(x, range_min_, range_max_, bits_);
}

}  // namespace adq::quant
