#include "quant/bitwidth.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace adq::quant {

int round_to_hardware_bits(int bits) {
  if (bits < 1) {
    throw std::invalid_argument("round_to_hardware_bits: bits must be >= 1");
  }
  for (int hw : kHardwareBits) {
    if (bits <= hw) return hw;
  }
  return kHardwareBits[std::size(kHardwareBits) - 1];
}

int update_bits(int bits, double density, Rounding mode) {
  if (bits < 1) throw std::invalid_argument("update_bits: bits must be >= 1");
  if (density < 0.0) throw std::invalid_argument("update_bits: negative density");
  const double scaled = bits * density;
  int updated = 0;
  switch (mode) {
    case Rounding::kNearest:
      updated = static_cast<int>(std::lround(scaled));
      break;
    case Rounding::kFloor:
      updated = static_cast<int>(std::floor(scaled));
      break;
    case Rounding::kCeil:
      updated = static_cast<int>(std::ceil(scaled));
      break;
  }
  return updated < 1 ? 1 : updated;
}

BitWidthPolicy BitWidthPolicy::uniform(int layers, int bits) {
  return BitWidthPolicy(std::vector<int>(static_cast<std::size_t>(layers), bits));
}

BitWidthPolicy BitWidthPolicy::updated(const std::vector<double>& densities,
                                       const std::vector<bool>& frozen,
                                       Rounding mode) const {
  if (densities.size() != bits_.size() || frozen.size() != bits_.size()) {
    throw std::invalid_argument("BitWidthPolicy::updated: size mismatch");
  }
  BitWidthPolicy out = *this;
  for (std::size_t l = 0; l < bits_.size(); ++l) {
    if (!frozen[l]) out.bits_[l] = update_bits(bits_[l], densities[l], mode);
  }
  return out;
}

BitWidthPolicy BitWidthPolicy::hardware_rounded() const {
  BitWidthPolicy out = *this;
  for (int& b : out.bits_) b = round_to_hardware_bits(b);
  return out;
}

std::string BitWidthPolicy::to_string() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < bits_.size(); ++i) {
    if (i > 0) os << ", ";
    os << bits_[i];
  }
  os << ']';
  return os.str();
}

}  // namespace adq::quant
