// Stateful fake-quantizer attached to a tensor stream (weights or
// activations) inside a layer.
//
// The quantizer observes the dynamic range of what passes through it and
// snaps values onto a k-bit grid (eqn 1). Backward is the straight-through
// estimator: layers simply propagate gradients as if the quantizer were the
// identity, which is why there is no backward method here.
//
// Paper hook: eqn (1) applied in-training with per-batch dynamic ranges —
// the "fake quantization" regime Algorithm 1 trains and measures AD under.
// The integer engine (infer/engine.h) reproduces exactly this observation
// rule at inference so its codes match the training grid.
#pragma once

#include "quant/quantizer.h"
#include "tensor/tensor.h"

namespace adq::quant {

enum class RangeMode {
  kPerBatch,  // min/max of the current tensor (paper's formulation)
  kEma,       // exponential moving average of per-batch ranges
};

class FakeQuantizer {
 public:
  explicit FakeQuantizer(int bits = 16, RangeMode mode = RangeMode::kPerBatch,
                         float ema_decay = 0.9f)
      : bits_(bits), mode_(mode), ema_decay_(ema_decay) {}

  int bits() const { return bits_; }
  void set_bits(int bits);

  bool enabled() const { return enabled_; }
  void set_enabled(bool enabled) { enabled_ = enabled; }

  RangeMode range_mode() const { return mode_; }

  /// Observed range from the last apply() (or the EMA range in kEma mode).
  float range_min() const { return range_min_; }
  float range_max() const { return range_max_; }

  /// Returns the fake-quantized tensor; identity when disabled or when the
  /// grid is finer than float precision (bits >= 24).
  Tensor apply(const Tensor& x);

 private:
  void observe(const Tensor& x);

  int bits_;
  RangeMode mode_;
  float ema_decay_;
  bool enabled_ = true;
  bool seen_ = false;
  float range_min_ = 0.0f;
  float range_max_ = 0.0f;
};

}  // namespace adq::quant
