// Bit-width bookkeeping: the eqn-3 update rule and the PIM hardware
// precision grid.
//
// The paper's accelerator supports only 2-/4-/8-/16-bit datapaths, so a
// 3-bit layer executes as 4-bit and a 5-bit layer as 8-bit ("data precision
// of 3-bits would be translated to 4-bits, 5-bits to 8-bits, and so on").
//
// Paper hook: eqn (3) (k_new = round(k_old * AD)) and the Table IV hardware
// grid. BitWidthPolicy rows are exactly the bit vectors of Tables II/III.
#pragma once

#include <string>
#include <vector>

namespace adq::quant {

/// Supported PIM datapath widths, ascending.
inline constexpr int kHardwareBits[] = {2, 4, 8, 16};

/// Smallest supported width >= bits (bits above 16 saturate at 16;
/// bits <= 2 map to 2).
int round_to_hardware_bits(int bits);

/// Rounding mode for the eqn-3 update — kNearest is the paper's choice;
/// floor/ceil are ablation knobs (DESIGN.md §6).
enum class Rounding { kNearest, kFloor, kCeil };

/// eqn (3): k_new = round(k_old * density), floored at 1 bit.
int update_bits(int bits, double density, Rounding mode = Rounding::kNearest);

/// Per-layer bit assignment for a whole network, with helpers used by the
/// controller and the report writers.
class BitWidthPolicy {
 public:
  BitWidthPolicy() = default;
  explicit BitWidthPolicy(std::vector<int> bits) : bits_(std::move(bits)) {}
  static BitWidthPolicy uniform(int layers, int bits);

  int size() const { return static_cast<int>(bits_.size()); }
  int at(int layer) const { return bits_[static_cast<std::size_t>(layer)]; }
  void set(int layer, int bits) { bits_[static_cast<std::size_t>(layer)] = bits; }
  const std::vector<int>& bits() const { return bits_; }

  /// Applies eqn (3) with per-layer densities; `frozen[l]` layers keep their
  /// current width (paper: first conv and final FC are never quantized).
  BitWidthPolicy updated(const std::vector<double>& densities,
                         const std::vector<bool>& frozen,
                         Rounding mode = Rounding::kNearest) const;

  /// Every layer rounded up to the PIM grid.
  BitWidthPolicy hardware_rounded() const;

  bool operator==(const BitWidthPolicy& other) const { return bits_ == other.bits_; }
  bool operator!=(const BitWidthPolicy& other) const { return !(*this == other); }

  /// e.g. "[16, 4, 5, 4, 3, 16]" — matches the paper's table formatting.
  std::string to_string() const;

 private:
  std::vector<int> bits_;
};

}  // namespace adq::quant
