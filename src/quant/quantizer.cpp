#include "quant/quantizer.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/ops.h"

namespace adq::quant {

std::int64_t max_code(int bits) {
  if (bits < 1 || bits > 31) {
    throw std::invalid_argument("max_code: bits must be in [1, 31], got " +
                                std::to_string(bits));
  }
  return (std::int64_t{1} << bits) - 1;
}

std::int64_t quantize_code(float x, float x_min, float x_max, int bits) {
  const std::int64_t levels = max_code(bits);
  if (x_max <= x_min) return 0;
  const float clamped = std::clamp(x, x_min, x_max);
  const float scaled = (clamped - x_min) * static_cast<float>(levels) / (x_max - x_min);
  return static_cast<std::int64_t>(std::lround(scaled));
}

float dequantize_code(std::int64_t code, float x_min, float x_max, int bits) {
  const std::int64_t levels = max_code(bits);
  if (x_max <= x_min) return x_min;
  return x_min + static_cast<float>(code) * (x_max - x_min) / static_cast<float>(levels);
}

float fake_quantize_value(float x, float x_min, float x_max, int bits) {
  return dequantize_code(quantize_code(x, x_min, x_max, bits), x_min, x_max, bits);
}

Tensor fake_quantize(const Tensor& x, int bits) {
  if (x.numel() == 0) return x;
  return fake_quantize(x, min_value(x), max_value(x), bits);
}

namespace {

// Shared kernel of the tensor and buffer entry points, so the arena
// executor's in-place snap is bit-identical to the training-path tensor
// version by construction. Identity cases (wide grid, degenerate range)
// copy when the caller gave a distinct output buffer.
void fake_quantize_buf(const float* px, std::int64_t n, float x_min,
                       float x_max, int bits, float* po) {
  if (bits >= 24 || n == 0 || x_max <= x_min) {
    if (po != px && n != 0) std::copy(px, px + n, po);
    return;
  }
  const std::int64_t levels = max_code(bits);
  const float scale = (x_max - x_min) / static_cast<float>(levels);
  const float inv_scale = static_cast<float>(levels) / (x_max - x_min);
  for (std::int64_t i = 0; i < n; ++i) {
    const float clamped = std::clamp(px[i], x_min, x_max);
    const float code = std::nearbyint((clamped - x_min) * inv_scale);
    po[i] = x_min + code * scale;
  }
}

}  // namespace

Tensor fake_quantize(const Tensor& x, float x_min, float x_max, int bits) {
  if (bits >= 24 || x.numel() == 0 || x_max <= x_min) return x;
  Tensor out(x.shape());
  fake_quantize_buf(x.data(), x.numel(), x_min, x_max, bits, out.data());
  return out;
}

void fake_quantize_into(const float* x, std::int64_t n, int bits, float* out) {
  if (n == 0) return;
  // Same observation fake_quantize(Tensor, bits) makes via min_value /
  // max_value: a plain sequential reduction.
  float lo = x[0], hi = x[0];
  for (std::int64_t i = 1; i < n; ++i) {
    lo = std::min(lo, x[i]);
    hi = std::max(hi, x[i]);
  }
  fake_quantize_buf(x, n, lo, hi, bits, out);
}

std::vector<std::int64_t> quantize_codes(const Tensor& x, float x_min,
                                         float x_max, int bits) {
  std::vector<std::int64_t> codes(static_cast<std::size_t>(x.numel()));
  const float* px = x.data();
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    codes[static_cast<std::size_t>(i)] = quantize_code(px[i], x_min, x_max, bits);
  }
  return codes;
}

}  // namespace adq::quant
