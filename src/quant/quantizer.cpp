#include "quant/quantizer.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/ops.h"

namespace adq::quant {

std::int64_t max_code(int bits) {
  if (bits < 1 || bits > 31) {
    throw std::invalid_argument("max_code: bits must be in [1, 31], got " +
                                std::to_string(bits));
  }
  return (std::int64_t{1} << bits) - 1;
}

std::int64_t quantize_code(float x, float x_min, float x_max, int bits) {
  const std::int64_t levels = max_code(bits);
  if (x_max <= x_min) return 0;
  const float clamped = std::clamp(x, x_min, x_max);
  const float scaled = (clamped - x_min) * static_cast<float>(levels) / (x_max - x_min);
  return static_cast<std::int64_t>(std::lround(scaled));
}

float dequantize_code(std::int64_t code, float x_min, float x_max, int bits) {
  const std::int64_t levels = max_code(bits);
  if (x_max <= x_min) return x_min;
  return x_min + static_cast<float>(code) * (x_max - x_min) / static_cast<float>(levels);
}

float fake_quantize_value(float x, float x_min, float x_max, int bits) {
  return dequantize_code(quantize_code(x, x_min, x_max, bits), x_min, x_max, bits);
}

Tensor fake_quantize(const Tensor& x, int bits) {
  if (x.numel() == 0) return x;
  return fake_quantize(x, min_value(x), max_value(x), bits);
}

Tensor fake_quantize(const Tensor& x, float x_min, float x_max, int bits) {
  if (bits >= 24 || x.numel() == 0 || x_max <= x_min) return x;
  const std::int64_t levels = max_code(bits);
  const float scale = (x_max - x_min) / static_cast<float>(levels);
  const float inv_scale = static_cast<float>(levels) / (x_max - x_min);
  Tensor out(x.shape());
  const float* px = x.data();
  float* po = out.data();
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    const float clamped = std::clamp(px[i], x_min, x_max);
    const float code = std::nearbyint((clamped - x_min) * inv_scale);
    po[i] = x_min + code * scale;
  }
  return out;
}

std::vector<std::int64_t> quantize_codes(const Tensor& x, float x_min,
                                         float x_max, int bits) {
  std::vector<std::int64_t> codes(static_cast<std::size_t>(x.numel()));
  const float* px = x.data();
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    codes[static_cast<std::size_t>(i)] = quantize_code(px[i], x_min, x_max, bits);
  }
  return codes;
}

}  // namespace adq::quant
