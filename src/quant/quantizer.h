// Uniform affine quantization — paper eqn (1).
//
//   x_q = round((x - x_min) * (2^k - 1) / (x_max - x_min))
//
// `quantize_codes` produces the integer codes a hardware datapath would see;
// `dequantize` maps codes back to the float grid; `fake_quantize` fuses both
// for quantization-aware training (floats snapped to the k-bit grid).
//
// Paper hook: eqn (1) — the uniform k-bit quantizer every layer applies to
// weights and activations. Consumers: quant/fake_quantizer.h (training),
// pim/accelerator.h (bit-serial codes), infer/plan.h (packed weights).
#pragma once

#include <cstdint>

#include "tensor/tensor.h"

namespace adq::quant {

/// Largest code representable with k bits (2^k - 1). k must be in [1, 31].
std::int64_t max_code(int bits);

/// Integer code of a single value per eqn (1); clamps x into [x_min, x_max].
std::int64_t quantize_code(float x, float x_min, float x_max, int bits);

/// Float value of a code on the [x_min, x_max] k-bit grid.
float dequantize_code(std::int64_t code, float x_min, float x_max, int bits);

/// Snaps a single value to the k-bit grid spanned by [x_min, x_max].
float fake_quantize_value(float x, float x_min, float x_max, int bits);

/// Snaps every element of `x` to the k-bit grid spanned by the tensor's own
/// min/max (per-tensor dynamic range). Degenerate ranges (min == max) pass
/// through unchanged. bits >= 24 is treated as "no quantization" since the
/// grid would be finer than float precision anyway.
Tensor fake_quantize(const Tensor& x, int bits);

/// Buffer variant of the per-tensor fake_quantize above, bit-identical to
/// it: observes min/max over x[0..n), then writes the snapped values to
/// `out`. out == x is allowed (the range is observed before any write) —
/// this is what lets the arena executor snap a slot in place without a
/// temporary. Performs no allocation.
void fake_quantize_into(const float* x, std::int64_t n, int bits, float* out);

/// As above but with an externally supplied range (e.g. from an observer).
Tensor fake_quantize(const Tensor& x, float x_min, float x_max, int bits);

/// Extracts integer codes for a whole tensor (used by the PIM functional
/// simulator, which operates on codes, not floats).
std::vector<std::int64_t> quantize_codes(const Tensor& x, float x_min,
                                         float x_max, int bits);

}  // namespace adq::quant
