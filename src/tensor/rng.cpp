#include "tensor/rng.h"

namespace adq {

float Rng::uniform(float lo, float hi) {
  std::uniform_real_distribution<float> dist(lo, hi);
  return dist(engine_);
}

float Rng::normal(float mean, float stddev) {
  std::normal_distribution<float> dist(mean, stddev);
  return dist(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  std::uniform_int_distribution<std::int64_t> dist(lo, hi);
  return dist(engine_);
}

bool Rng::coin(double p) {
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

void Rng::fill_uniform(Tensor& t, float lo, float hi) {
  std::uniform_real_distribution<float> dist(lo, hi);
  float* p = t.data();
  for (std::int64_t i = 0; i < t.numel(); ++i) p[i] = dist(engine_);
}

void Rng::fill_normal(Tensor& t, float mean, float stddev) {
  std::normal_distribution<float> dist(mean, stddev);
  float* p = t.data();
  for (std::int64_t i = 0; i < t.numel(); ++i) p[i] = dist(engine_);
}

void Rng::shuffle(std::vector<std::int64_t>& indices) {
  // Hand-rolled Fisher–Yates: std::shuffle's draw sequence is not specified
  // by the standard, and bench output must be bit-stable across toolchains.
  for (std::int64_t i = static_cast<std::int64_t>(indices.size()) - 1; i > 0; --i) {
    const std::int64_t j = uniform_int(0, i);
    std::swap(indices[static_cast<std::size_t>(i)], indices[static_cast<std::size_t>(j)]);
  }
}

Rng Rng::fork() { return Rng(engine_()); }

}  // namespace adq
