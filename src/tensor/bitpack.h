// Sub-byte code packing for the integer inference engine.
//
// Quantized weight codes (eqn 1) occupy k bits each; layers driven to k <= 4
// by the AD controller (eqn 3) store their codes bit-packed so the resident
// model size actually shrinks with the bit-width — the same memory scaling
// the paper's N_mem accounting (section IV-A) assumes. Cells are
// power-of-two widths {1, 2, 4, 8}: a 3-bit layer packs into 4-bit cells,
// exactly like the PIM grid rounds a 3-bit layer up to the 4-bit datapath.
// Codes are packed little-endian within each byte (code i occupies bits
// [(i % per_byte) * cell, ...) of byte i / per_byte).
#pragma once

#include <cstdint>

namespace adq {

/// Smallest power-of-two cell width in {1, 2, 4, 8} that holds k-bit codes.
int cell_bits_for(int bits);

/// Bytes needed to store `count` codes at `cell_bits` per code.
std::int64_t packed_bytes(std::int64_t count, int cell_bits);

/// Packs `count` codes into `packed` (sized packed_bytes(count, cell_bits)).
/// Each code must be < 2^cell_bits; cell_bits must be one of {1, 2, 4, 8}.
void pack_codes(const std::uint8_t* codes, std::int64_t count, int cell_bits,
                std::uint8_t* packed);

/// Inverse of pack_codes: expands `packed` back into one code per byte.
void unpack_codes(const std::uint8_t* packed, std::int64_t count,
                  int cell_bits, std::uint8_t* codes);

/// Row stride in bytes of a row-aligned packed matrix: each row of `cols`
/// codes starts on its own byte boundary (tail bits zero). This is the
/// layout the sub-byte GEMM kernels consume — a flat-packed [rows, cols]
/// array shares bytes across row boundaries whenever cols is not a multiple
/// of the codes-per-byte, which no per-row kernel can address.
std::int64_t packed_row_bytes(std::int64_t cols, int cell_bits);

/// Repacks a flat-packed [rows, cols] code matrix (src_cell bits per code,
/// rows NOT byte-aligned — the plan's storage layout) into a row-aligned
/// packed matrix at dst_cell bits per code: row r starts at
/// dst + r * packed_row_bytes(cols, dst_cell), trailing bits of each row's
/// last byte are zero. dst_cell must be >= src_cell (codes are value-
/// preserved, widening only).
void repack_rows_aligned(const std::uint8_t* src_packed, std::int64_t rows,
                         std::int64_t cols, int src_cell, int dst_cell,
                         std::uint8_t* dst);

/// Like repack_rows_aligned but also transposes: src is a flat-packed
/// row-major [rows, cols] code matrix; dst becomes the row-aligned packed
/// [cols, rows] transpose (row stride packed_row_bytes(rows, dst_cell),
/// zero tail bits). Used for linear layers, whose plan weights are stored
/// [in, out] but whose packed kernel wants [out, in].
void repack_transpose_aligned(const std::uint8_t* src_packed,
                              std::int64_t rows, std::int64_t cols,
                              int src_cell, int dst_cell, std::uint8_t* dst);

}  // namespace adq
