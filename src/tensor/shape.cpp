#include "tensor/shape.h"

#include <sstream>
#include <stdexcept>

namespace adq {

Shape::Shape(std::initializer_list<std::int64_t> dims) {
  if (static_cast<int>(dims.size()) > kMaxRank) {
    throw std::invalid_argument("Shape: rank exceeds kMaxRank");
  }
  for (std::int64_t d : dims) {
    if (d < 0) throw std::invalid_argument("Shape: negative dimension");
    dims_[rank_++] = d;
  }
}

int Shape::normalize_axis(int axis) const {
  const int a = axis < 0 ? axis + rank_ : axis;
  if (a < 0 || a >= rank_) {
    throw std::out_of_range("Shape: axis " + std::to_string(axis) +
                            " out of range for rank " + std::to_string(rank_));
  }
  return a;
}

std::int64_t Shape::dim(int axis) const { return dims_[normalize_axis(axis)]; }

std::int64_t Shape::numel() const {
  std::int64_t n = 1;
  for (int i = 0; i < rank_; ++i) n *= dims_[i];
  return n;
}

std::int64_t Shape::stride(int axis) const {
  const int a = normalize_axis(axis);
  std::int64_t s = 1;
  for (int i = a + 1; i < rank_; ++i) s *= dims_[i];
  return s;
}

Shape Shape::with_dim(int axis, std::int64_t value) const {
  if (value < 0) throw std::invalid_argument("Shape: negative dimension");
  Shape out = *this;
  out.dims_[normalize_axis(axis)] = value;
  return out;
}

Shape Shape::prepended(std::int64_t dim) const {
  if (dim < 0) throw std::invalid_argument("Shape: negative dimension");
  if (rank_ == kMaxRank) {
    throw std::invalid_argument("Shape: rank exceeds kMaxRank");
  }
  Shape out;
  out.rank_ = rank_ + 1;
  out.dims_[0] = dim;
  for (int i = 0; i < rank_; ++i) out.dims_[i + 1] = dims_[i];
  return out;
}

Shape Shape::tail() const {
  if (rank_ == 0) throw std::out_of_range("Shape: tail of a rank-0 shape");
  Shape out;
  out.rank_ = rank_ - 1;
  for (int i = 1; i < rank_; ++i) out.dims_[i - 1] = dims_[i];
  return out;
}

bool Shape::operator==(const Shape& other) const {
  if (rank_ != other.rank_) return false;
  for (int i = 0; i < rank_; ++i) {
    if (dims_[i] != other.dims_[i]) return false;
  }
  return true;
}

std::string Shape::to_string() const {
  std::ostringstream os;
  os << '[';
  for (int i = 0; i < rank_; ++i) {
    if (i > 0) os << ", ";
    os << dims_[i];
  }
  os << ']';
  return os.str();
}

}  // namespace adq
