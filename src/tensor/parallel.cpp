#include "tensor/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

namespace adq {
namespace {

int detect_thread_count() {
  if (const char* env = std::getenv("ADQ_THREADS")) {
    const int n = std::atoi(env);
    if (n >= 1) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

// Fixed-size pool with a full acknowledge barrier per dispatch: run() wakes
// every worker, each drains the chunk queue and then acknowledges the
// epoch; run() returns only once all chunks are done AND every worker has
// acknowledged. The barrier is what makes sequential run() calls safe — no
// worker can still be inside drain() (and thus able to claim a chunk) when
// the next epoch's begin/end/fn state is being rewritten. A cheaper design
// that lets stale workers linger can claim a chunk of the *next* epoch
// between its next_/pending_ stores, which both corrupts the pending count
// (deadlocking the caller) and races the fn pointer.
class Pool {
 public:
  Pool() : workers_(static_cast<std::size_t>(std::max(0, detect_thread_count() - 1))) {
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      workers_[i] = std::thread([this] { worker_loop(); });
    }
  }

  ~Pool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  int size() const { return static_cast<int>(workers_.size()) + 1; }

  void run(std::int64_t begin, std::int64_t end, std::int64_t chunk,
           const std::function<void(std::int64_t, std::int64_t)>& fn) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      end_ = end;
      chunk_ = chunk;
      fn_ = &fn;
      acks_.store(0, std::memory_order_relaxed);
      const std::int64_t n_chunks = (end - begin + chunk - 1) / chunk;
      pending_.store(n_chunks, std::memory_order_relaxed);
      next_.store(begin, std::memory_order_release);
      ++epoch_;
    }
    cv_.notify_all();
    drain();  // the caller works too
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] {
      return pending_.load(std::memory_order_acquire) == 0 &&
             acks_.load(std::memory_order_acquire) ==
                 static_cast<int>(workers_.size());
    });
    fn_ = nullptr;
  }

 private:
  void drain() {
    while (true) {
      const std::int64_t i = next_.fetch_add(chunk_, std::memory_order_acq_rel);
      if (i >= end_) break;
      (*fn_)(i, std::min(i + chunk_, end_));
      if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(mutex_);
        done_cv_.notify_all();
      }
    }
  }

  void worker_loop() {
    std::uint64_t seen_epoch = 0;
    while (true) {
      {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [&] { return stop_ || epoch_ != seen_epoch; });
        if (stop_) return;
        seen_epoch = epoch_;
      }
      drain();
      {
        std::lock_guard<std::mutex> lock(mutex_);
        acks_.fetch_add(1, std::memory_order_acq_rel);
        done_cv_.notify_all();
      }
    }
  }

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  bool stop_ = false;
  std::uint64_t epoch_ = 0;

  std::int64_t end_ = 0;
  std::int64_t chunk_ = 1;
  std::atomic<std::int64_t> next_{0};
  std::atomic<std::int64_t> pending_{0};
  std::atomic<int> acks_{0};
  const std::function<void(std::int64_t, std::int64_t)>* fn_ = nullptr;
};

Pool& pool() {
  static Pool instance;
  return instance;
}

// Nested parallel_for calls (e.g. GEMM inside a batch-parallel conv loop)
// run serially in the calling worker: the pool has a single dispatch epoch,
// so re-entering it would deadlock. Top-level calls from different threads
// are serialized by run_mutex for the same reason.
thread_local bool t_in_parallel_region = false;
std::mutex run_mutex;

}  // namespace

int parallel_thread_count() { return pool().size(); }

namespace detail {

bool in_parallel_region() { return t_in_parallel_region; }

void parallel_run(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const std::function<void(std::int64_t, std::int64_t)>& fn) {
  const std::int64_t n = end - begin;
  const int threads = parallel_thread_count();
  // 4 chunks per thread gives the atomic-counter scheduler room to balance
  // without shrinking chunks below the caller's grain.
  const std::int64_t chunk = std::max(grain, (n + threads * 4 - 1) / (threads * 4));
  const std::function<void(std::int64_t, std::int64_t)> wrapped =
      [&fn](std::int64_t b, std::int64_t e) {
        t_in_parallel_region = true;
        fn(b, e);
        t_in_parallel_region = false;
      };
  std::lock_guard<std::mutex> lock(run_mutex);
  pool().run(begin, end, chunk, wrapped);
}

}  // namespace detail

}  // namespace adq
