#include "tensor/parallel.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace adq {
namespace {

// Nested parallel_for calls (e.g. GEMM inside a batch-parallel conv loop)
// run serially in the calling worker — see detail::in_parallel_region().
thread_local bool t_in_parallel_region = false;

// Innermost ScopedThreadBudget on this thread; 0 = whole pool.
thread_local int t_thread_budget = 0;

int detect_thread_count() {
  if (const char* env = std::getenv("ADQ_THREADS")) {
    return detail::parse_thread_count(env);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

// Concurrent job scheduler over a fixed worker pool.
//
// Every dispatch is an independent stack-allocated Job: an atomic chunk
// cursor all participants claim from, a pending count of claimed-but-
// unfinished chunks, and a completion latch (done_cv). The shared state —
// the live-job list, per-job helper counts, and the worker wait channel —
// sits behind one mutex that is touched only per dispatch and per worker
// attach/detach, never per chunk, so concurrent jobs contend only on
// their own cursors.
//
// Lifetime protocol (what makes a stack-allocated Job safe): a worker may
// only reach a Job through jobs_ under the mutex, and registers itself in
// job->helpers before releasing it. The caller drains its own job until
// the cursor is exhausted (every chunk claimed), unlists the job — no new
// helper can attach — and then waits for helpers to hit zero, which
// implies pending == 0: unfinished chunks are always owned by an attached
// participant. Only then does run_job() return and the Job die.
class Scheduler {
 public:
  Scheduler()
      : workers_(static_cast<std::size_t>(
            std::max(0, detect_thread_count() - 1))) {
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      workers_[i] = std::thread([this] { worker_loop(); });
    }
  }

  ~Scheduler() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  int size() const { return static_cast<int>(workers_.size()) + 1; }

  void run_job(std::int64_t begin, std::int64_t end, std::int64_t chunk,
               int max_helpers,
               const std::function<void(std::int64_t, std::int64_t)>& fn) {
    Job job;
    job.end = end;
    job.chunk = chunk;
    job.cursor.store(begin, std::memory_order_relaxed);
    job.pending.store((end - begin + chunk - 1) / chunk,
                      std::memory_order_relaxed);
    job.fn = &fn;
    job.max_helpers = std::min(max_helpers, static_cast<int>(workers_.size()));

    if (job.max_helpers <= 0) {  // single-thread budget: no job to publish
      drain(job);
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      jobs_.push_back(&job);
      ++dispatched_;
    }
    // Wake at most as many sleepers as may attach; a woken worker with
    // nothing to pick (caps filled, cursors drained) just re-sleeps.
    for (int i = 0; i < job.max_helpers; ++i) work_cv_.notify_one();

    drain(job);  // the caller participates in its own job

    std::unique_lock<std::mutex> lock(mutex_);
    jobs_.erase(std::find(jobs_.begin(), jobs_.end(), &job));
    job.done_cv.wait(lock, [&job] {
      return job.helpers == 0 &&
             job.pending.load(std::memory_order_acquire) == 0;
    });
  }

  ParallelPoolStats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    ParallelPoolStats s;
    s.pool_threads = size();
    s.busy_workers = busy_;
    s.live_jobs = static_cast<int>(jobs_.size());
    s.jobs_dispatched = dispatched_;
    return s;
  }

 private:
  struct Job {
    std::int64_t end = 0;
    std::int64_t chunk = 1;
    std::atomic<std::int64_t> cursor{0};
    std::atomic<std::int64_t> pending{0};
    const std::function<void(std::int64_t, std::int64_t)>* fn = nullptr;
    int max_helpers = 0;  // pool workers allowed alongside the caller
    int helpers = 0;      // attached pool workers (guarded by mutex_)
    std::condition_variable done_cv;  // caller's completion latch (mutex_)
  };

  static void drain(Job& job) {
    for (;;) {
      const std::int64_t i =
          job.cursor.fetch_add(job.chunk, std::memory_order_acq_rel);
      if (i >= job.end) return;
      (*job.fn)(i, std::min(i + job.chunk, job.end));
      job.pending.fetch_sub(1, std::memory_order_acq_rel);
    }
  }

  // Rotates across live jobs so helpers spread over every dispatch instead
  // of piling onto the oldest one. Caller holds mutex_.
  Job* pick_job_locked() {
    const std::size_t n = jobs_.size();
    for (std::size_t k = 0; k < n; ++k) {
      Job* job = jobs_[(rr_ + k) % n];
      if (job->helpers < job->max_helpers &&
          job->cursor.load(std::memory_order_relaxed) < job->end) {
        rr_ = (rr_ + k + 1) % n;
        return job;
      }
    }
    return nullptr;
  }

  void worker_loop() {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      Job* job = pick_job_locked();
      if (job == nullptr) {
        if (stop_) return;
        work_cv_.wait(lock);
        continue;
      }
      ++job->helpers;
      ++busy_;
      lock.unlock();
      drain(*job);
      lock.lock();
      --busy_;
      // The last helper off a fully-claimed job is what releases the
      // caller (helpers == 0 implies pending == 0 — see class comment).
      if (--job->helpers == 0) job->done_cv.notify_one();
    }
  }

  std::vector<std::thread> workers_;
  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  std::vector<Job*> jobs_;  // live (listed) jobs; pointers into caller stacks
  std::size_t rr_ = 0;      // round-robin pick origin
  int busy_ = 0;            // workers currently inside drain()
  std::uint64_t dispatched_ = 0;
  bool stop_ = false;
};

Scheduler& pool() {
  static Scheduler instance;
  return instance;
}

}  // namespace

int parallel_thread_count() { return pool().size(); }

int parallel_effective_threads() {
  const int n = parallel_thread_count();
  const int budget = t_thread_budget;
  return budget == 0 ? n : std::min(budget, n);
}

ScopedThreadBudget::ScopedThreadBudget(int budget) : prev_(t_thread_budget) {
  if (budget < 0) {
    throw std::invalid_argument("parallel: thread budget must be >= 0 (0 = "
                                "whole pool), got " + std::to_string(budget));
  }
  t_thread_budget = budget;
}

ScopedThreadBudget::~ScopedThreadBudget() { t_thread_budget = prev_; }

ParallelPoolStats parallel_pool_stats() { return pool().stats(); }

namespace detail {

bool in_parallel_region() { return t_in_parallel_region; }

namespace {
// exchange_serialize_dispatch state: the bench-only resurrection of the
// old one-region-at-a-time design (default OFF — the whole point of the
// scheduler is that no such global lock exists on the dispatch path).
std::atomic<bool> g_serialize_dispatch{false};
std::mutex& serialize_dispatch_mutex() {
  static std::mutex m;
  return m;
}
}  // namespace

bool exchange_serialize_dispatch(bool serialize) {
  return g_serialize_dispatch.exchange(serialize, std::memory_order_acq_rel);
}

int parse_thread_count(const char* text) {
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE || v < 1 || v > 4096) {
    throw std::invalid_argument("parallel: ADQ_THREADS='" + std::string(text) +
                                "' is not an integer in [1, 4096]");
  }
  return static_cast<int>(v);
}

void parallel_run(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const std::function<void(std::int64_t, std::int64_t)>& fn) {
  const std::int64_t n = end - begin;
  const int threads = parallel_effective_threads();
  // 4 chunks per participating thread gives the atomic-cursor scheduler
  // room to balance without shrinking chunks below the caller's grain.
  const std::int64_t chunk =
      std::max(grain, (n + threads * 4 - 1) / (threads * 4));
  const std::function<void(std::int64_t, std::int64_t)> wrapped =
      [&fn](std::int64_t b, std::int64_t e) {
        t_in_parallel_region = true;
        fn(b, e);
        t_in_parallel_region = false;
      };
  if (g_serialize_dispatch.load(std::memory_order_acquire)) {
    // Serialized-baseline A/B mode (see exchange_serialize_dispatch).
    std::lock_guard<std::mutex> lock(serialize_dispatch_mutex());
    pool().run_job(begin, end, chunk, threads - 1, wrapped);
    return;
  }
  pool().run_job(begin, end, chunk, threads - 1, wrapped);
}

}  // namespace detail

}  // namespace adq
