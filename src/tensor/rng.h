// Deterministic random number generation for reproducible experiments.
//
// Every stochastic component in adq (weight init, data synthesis, shuffling)
// draws from an explicitly seeded Rng so that a run is reproducible from its
// seed alone — a requirement for the paper-table benches to be comparable
// across machines.
#pragma once

#include <cstdint>
#include <random>

#include "tensor/tensor.h"

namespace adq {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed'ad01u) : engine_(seed) {}

  /// Uniform in [lo, hi).
  float uniform(float lo = 0.0f, float hi = 1.0f);

  /// Standard normal scaled to (mean, stddev).
  float normal(float mean = 0.0f, float stddev = 1.0f);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli draw.
  bool coin(double p = 0.5);

  void fill_uniform(Tensor& t, float lo, float hi);
  void fill_normal(Tensor& t, float mean, float stddev);

  /// Fisher–Yates shuffle of an index vector.
  void shuffle(std::vector<std::int64_t>& indices);

  /// Derives an independent child generator (stable across platforms).
  Rng fork();

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace adq
