#include "tensor/tensor.h"

#include <algorithm>
#include <stdexcept>

namespace adq {

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      data_(static_cast<std::size_t>(shape_.numel()), 0.0f) {}

Tensor::Tensor(Shape shape, float value)
    : shape_(std::move(shape)),
      data_(static_cast<std::size_t>(shape_.numel()), value) {}

Tensor::Tensor(Shape shape, std::vector<float> values)
    : shape_(std::move(shape)), data_(std::move(values)) {
  if (static_cast<std::int64_t>(data_.size()) != shape_.numel()) {
    throw std::invalid_argument("Tensor: data size " +
                                std::to_string(data_.size()) +
                                " does not match shape " + shape_.to_string());
  }
}

float& Tensor::at(std::int64_t i, std::int64_t j) {
  return data_[static_cast<std::size_t>(i * shape_.dim(1) + j)];
}

float Tensor::at(std::int64_t i, std::int64_t j) const {
  return data_[static_cast<std::size_t>(i * shape_.dim(1) + j)];
}

float& Tensor::at(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) {
  const std::int64_t C = shape_.dim(1), H = shape_.dim(2), W = shape_.dim(3);
  return data_[static_cast<std::size_t>(((n * C + c) * H + h) * W + w)];
}

float Tensor::at(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) const {
  const std::int64_t C = shape_.dim(1), H = shape_.dim(2), W = shape_.dim(3);
  return data_[static_cast<std::size_t>(((n * C + c) * H + h) * W + w)];
}

Tensor Tensor::reshaped(Shape new_shape) const {
  Tensor out = *this;
  out.reshape(std::move(new_shape));
  return out;
}

void Tensor::reshape(Shape new_shape) {
  if (new_shape.numel() != numel()) {
    throw std::invalid_argument("Tensor::reshape: numel mismatch " +
                                shape_.to_string() + " -> " +
                                new_shape.to_string());
  }
  shape_ = std::move(new_shape);
}

void Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

}  // namespace adq
