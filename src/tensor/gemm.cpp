#include "tensor/gemm.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "tensor/parallel.h"

namespace adq {
namespace {

// Register block: 4 rows x 16 columns of C held in accumulators. 16 floats
// spans two AVX2 lanes, which gcc vectorises cleanly at -O3 -march=native.
constexpr std::int64_t kMr = 4;
constexpr std::int64_t kNr = 16;
// Cache blocks: Kc*Nr floats of B-panel must fit in L1, Mc*Kc of A in L2.
constexpr std::int64_t kKc = 256;
constexpr std::int64_t kNc = 256;

// Computes a full MR x NR tile: C[0..mr) x [0..nr) += A_panel * B_panel.
// a_panel: mr rows with stride lda (already offset); b_panel: kc rows of nr
// columns, contiguous stride ldb.
void micro_kernel(std::int64_t kc, const float* a, std::int64_t lda,
                  const float* b, std::int64_t ldb, float* c, std::int64_t ldc,
                  std::int64_t mr, std::int64_t nr) {
  if (mr == kMr && nr == kNr) {
    float acc[kMr][kNr] = {};
    for (std::int64_t p = 0; p < kc; ++p) {
      const float* bp = b + p * ldb;
      for (std::int64_t i = 0; i < kMr; ++i) {
        const float av = a[i * lda + p];
        for (std::int64_t j = 0; j < kNr; ++j) acc[i][j] += av * bp[j];
      }
    }
    for (std::int64_t i = 0; i < kMr; ++i) {
      float* cp = c + i * ldc;
      for (std::int64_t j = 0; j < kNr; ++j) cp[j] += acc[i][j];
    }
    return;
  }
  // Edge tile: same algorithm, runtime bounds.
  float acc[kMr][kNr] = {};
  for (std::int64_t p = 0; p < kc; ++p) {
    const float* bp = b + p * ldb;
    for (std::int64_t i = 0; i < mr; ++i) {
      const float av = a[i * lda + p];
      for (std::int64_t j = 0; j < nr; ++j) acc[i][j] += av * bp[j];
    }
  }
  for (std::int64_t i = 0; i < mr; ++i) {
    float* cp = c + i * ldc;
    for (std::int64_t j = 0; j < nr; ++j) cp[j] += acc[i][j];
  }
}

struct MatView {
  const float* data;
  std::int64_t rows, cols, ld;
  bool trans;  // when true, logical (i, j) reads data[j * ld + i]

  float at(std::int64_t i, std::int64_t j) const {
    return trans ? data[j * ld + i] : data[i * ld + j];
  }
};

// Packs logical block [r0, r0+mc) x [c0, c0+kc) of `m` into `dst`
// row-major mc x kc. Packing makes the micro-kernel layout-oblivious and
// turns transposed reads into sequential ones.
void pack_block(const MatView& m, std::int64_t r0, std::int64_t mc,
                std::int64_t c0, std::int64_t kc, float* dst) {
  for (std::int64_t i = 0; i < mc; ++i) {
    for (std::int64_t j = 0; j < kc; ++j) {
      dst[i * kc + j] = m.at(r0 + i, c0 + j);
    }
  }
}

}  // namespace

void sgemm(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
           std::int64_t k, float alpha, const float* a, std::int64_t lda,
           const float* b, std::int64_t ldb, float beta, float* c,
           std::int64_t ldc) {
  if (m <= 0 || n <= 0) return;

  // Scale C by beta first so the accumulation loop is pure +=.
  if (beta != 1.0f) {
    for (std::int64_t i = 0; i < m; ++i) {
      float* row = c + i * ldc;
      if (beta == 0.0f) {
        std::fill(row, row + n, 0.0f);
      } else {
        for (std::int64_t j = 0; j < n; ++j) row[j] *= beta;
      }
    }
  }
  if (k <= 0 || alpha == 0.0f) return;

  const MatView va{a, m, k, lda, trans_a};
  const MatView vb{b, k, n, ldb, trans_b};

  // Parallelise over row blocks of C; each task packs its own A/B panels.
  // The panels are per-thread grow-once scratch: a serving loop calls
  // sgemm once per float-path layer per forward, and those calls must not
  // allocate (the engine's zero-allocation steady-state contract).
  // Blocked for the caller's thread budget, not the whole machine: a
  // serving worker on a 2-thread budget wants 4 fat row blocks, not the
  // 32 slivers a pool-wide split would produce.
  const int threads = parallel_effective_threads();
  const std::int64_t row_block = std::max<std::int64_t>(kMr, (m + threads * 2 - 1) / (threads * 2) / kMr * kMr);
  parallel_for(0, (m + row_block - 1) / row_block, [&](std::int64_t tb, std::int64_t te) {
    thread_local std::vector<float> a_buf, b_buf;
    if (static_cast<std::int64_t>(a_buf.size()) < row_block * kKc) {
      a_buf.resize(static_cast<std::size_t>(row_block * kKc));
    }
    if (static_cast<std::int64_t>(b_buf.size()) < kKc * kNc) {
      b_buf.resize(static_cast<std::size_t>(kKc * kNc));
    }
    float* const a_pack = a_buf.data();
    float* const b_pack = b_buf.data();
    for (std::int64_t t = tb; t < te; ++t) {
      const std::int64_t i0 = t * row_block;
      const std::int64_t mc = std::min(row_block, m - i0);
      for (std::int64_t p0 = 0; p0 < k; p0 += kKc) {
        const std::int64_t kc = std::min(kKc, k - p0);
        pack_block(va, i0, mc, p0, kc, a_pack);
        if (alpha != 1.0f) {
          for (std::int64_t idx = 0; idx < mc * kc; ++idx) a_pack[idx] *= alpha;
        }
        for (std::int64_t j0 = 0; j0 < n; j0 += kNc) {
          const std::int64_t nc = std::min(kNc, n - j0);
          pack_block(vb, p0, kc, j0, nc, b_pack);
          for (std::int64_t jr = 0; jr < nc; jr += kNr) {
            const std::int64_t nr = std::min(kNr, nc - jr);
            for (std::int64_t ir = 0; ir < mc; ir += kMr) {
              const std::int64_t mr = std::min(kMr, mc - ir);
              micro_kernel(kc, a_pack + ir * kc, kc,
                           b_pack + jr, nc,
                           c + (i0 + ir) * ldc + (j0 + jr), ldc, mr, nr);
            }
          }
        }
      }
    }
  });
}

Tensor matmul(const Tensor& a, const Tensor& b, bool trans_a, bool trans_b) {
  if (a.shape().rank() != 2 || b.shape().rank() != 2) {
    throw std::invalid_argument("matmul: both operands must be rank 2");
  }
  const std::int64_t m = trans_a ? a.shape().dim(1) : a.shape().dim(0);
  const std::int64_t ka = trans_a ? a.shape().dim(0) : a.shape().dim(1);
  const std::int64_t kb = trans_b ? b.shape().dim(1) : b.shape().dim(0);
  const std::int64_t n = trans_b ? b.shape().dim(0) : b.shape().dim(1);
  if (ka != kb) {
    throw std::invalid_argument("matmul: inner dimensions differ: " +
                                a.shape().to_string() + " x " + b.shape().to_string());
  }
  Tensor c(Shape{m, n});
  sgemm(trans_a, trans_b, m, n, ka, 1.0f, a.data(), a.shape().dim(1), b.data(),
        b.shape().dim(1), 0.0f, c.data(), n);
  return c;
}

}  // namespace adq
