// Elementwise and reduction primitives shared across adq.
//
// These are free functions over Tensor; layers in src/nn compose them. All
// binary ops require exactly matching shapes — adq has no implicit
// broadcasting, which keeps backprop bookkeeping local and explicit.
#pragma once

#include <cstdint>

#include "tensor/tensor.h"

namespace adq {

/// out = a + b (shapes must match).
Tensor add(const Tensor& a, const Tensor& b);

/// a += b in place.
void add_inplace(Tensor& a, const Tensor& b);

/// a += alpha * b in place (axpy).
void axpy(Tensor& a, float alpha, const Tensor& b);

/// out = a - b.
Tensor sub(const Tensor& a, const Tensor& b);

/// out = a * b elementwise (Hadamard).
Tensor mul(const Tensor& a, const Tensor& b);

/// out = alpha * a.
Tensor scale(const Tensor& a, float alpha);

/// max(x, 0) elementwise.
Tensor relu(const Tensor& x);

/// Sum of all elements.
double sum(const Tensor& x);

/// Mean of all elements.
double mean(const Tensor& x);

/// Number of non-zero elements — the numerator of the Activation Density
/// metric (paper eqn 2). |x| <= eps counts as zero to absorb float fuzz.
std::int64_t count_nonzero(const Tensor& x, float eps = 0.0f);

/// Maximum absolute element (0 for empty tensors).
float max_abs(const Tensor& x);

/// Min / max over all elements; throws on empty tensors.
float min_value(const Tensor& x);
float max_value(const Tensor& x);

/// Index of the maximum element along the last axis of a rank-2 tensor,
/// one result per row.
std::vector<std::int64_t> argmax_rows(const Tensor& x);

/// True when shapes match and every element differs by at most atol.
bool allclose(const Tensor& a, const Tensor& b, float atol = 1e-5f);

/// Batched copy-in: stacks equal-shaped samples into one [N, ...sample]
/// tensor. The serving batcher uses this to coalesce single-sample requests
/// into an engine batch. Throws on an empty list or mismatched shapes.
Tensor stack_samples(const std::vector<const Tensor*>& samples);

/// Batched scatter-out: copies row `index` of a batched tensor out as a
/// standalone sample of shape batch.shape().tail().
Tensor take_sample(const Tensor& batch, std::int64_t index);

}  // namespace adq
