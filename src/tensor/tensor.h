// Dense row-major float tensor.
//
// The tensor owns its storage (std::vector<float>) and is always contiguous;
// reshaping is therefore free as long as the element count is preserved.
// This is deliberately minimal: the NN layers in src/nn do their own layout
// bookkeeping and only need fast flat access plus shape checking.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/shape.h"

namespace adq {

class Tensor {
 public:
  Tensor() = default;

  /// Allocates a zero-initialised tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Allocates and fills with `value`.
  Tensor(Shape shape, float value);

  /// Adopts `values` (size must match `shape.numel()`).
  Tensor(Shape shape, std::vector<float> values);

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor full(Shape shape, float value) { return Tensor(std::move(shape), value); }

  const Shape& shape() const { return shape_; }
  std::int64_t numel() const { return static_cast<std::int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& operator[](std::int64_t i) { return data_[static_cast<std::size_t>(i)]; }
  float operator[](std::int64_t i) const { return data_[static_cast<std::size_t>(i)]; }

  /// 2-D indexed access; tensor must be rank 2.
  float& at(std::int64_t i, std::int64_t j);
  float at(std::int64_t i, std::int64_t j) const;

  /// 4-D indexed access (NCHW); tensor must be rank 4.
  float& at(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w);
  float at(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) const;

  /// Returns a copy with a new shape; `numel` must be unchanged.
  Tensor reshaped(Shape new_shape) const;

  /// In-place reshape; `numel` must be unchanged.
  void reshape(Shape new_shape);

  /// Sets every element to `value`.
  void fill(float value);

  /// Sets every element to zero (used for gradient buffers).
  void zero() { fill(0.0f); }

 private:
  Shape shape_;
  std::vector<float> data_;
};

}  // namespace adq
