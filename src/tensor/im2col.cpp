#include "tensor/im2col.h"

#include <algorithm>
#include <cstring>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace adq {
namespace {

// Chunked copy for the lowering hot loop: rows are short (the deep
// layers' 2- to 32-wide maps), so an inline SSE/scalar loop beats a
// memcpy call below ~64 elements.
template <typename T>
inline void copy_row(T* dst, const T* src, std::int64_t len) {
  if (len >= 64) {
    std::memcpy(dst, src, static_cast<std::size_t>(len) * sizeof(T));
    return;
  }
  std::int64_t x = 0;
#if defined(__SSE2__)
  if constexpr (sizeof(T) == 1) {
    for (; x + 16 <= len; x += 16) {
      _mm_storeu_si128(
          reinterpret_cast<__m128i*>(dst + x),
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + x)));
    }
  }
#endif
  for (; x < len; ++x) dst[x] = src[x];
}

// Specialised lowering for the 3x3 / stride-1 / pad-1 conv every net here
// uses: for each (channel, kh) the three kw patch rows are the same input
// row shifted by -1/0/+1, so one pass over the input rows writes all
// three — a third of the loop iterations and one bounds check per row,
// which matters because im2col dominates the non-GEMM inference cost.
template <typename T>
void im2col_k3s1p1(const T* im, const ConvGeometry& g, T* col,
                   std::int64_t ld, T pad_value) {
  const std::int64_t h = g.in_h, w = g.in_w;
  for (std::int64_t c = 0; c < g.channels; ++c) {
    const T* im_c = im + c * h * w;
    for (std::int64_t kh = 0; kh < 3; ++kh) {
      T* d0 = col + (c * 9 + kh * 3) * ld;      // kw = 0: shift -1
      T* d1 = d0 + ld;                          // kw = 1: aligned
      T* d2 = d1 + ld;                          // kw = 2: shift +1
      for (std::int64_t y = 0; y < h; ++y) {
        const std::int64_t iy = y + kh - 1;
        T* r0 = d0 + y * w;
        T* r1 = d1 + y * w;
        T* r2 = d2 + y * w;
        if (iy < 0 || iy >= h) {
          for (std::int64_t x = 0; x < w; ++x) r0[x] = pad_value;
          for (std::int64_t x = 0; x < w; ++x) r1[x] = pad_value;
          for (std::int64_t x = 0; x < w; ++x) r2[x] = pad_value;
          continue;
        }
        const T* src = im_c + iy * w;
        r0[0] = pad_value;
        copy_row(r0 + 1, src, w - 1);
        copy_row(r1, src, w);
        copy_row(r2, src + 1, w - 1);
        r2[w - 1] = pad_value;
      }
    }
  }
}

// One lowering loop for both element types; only the pad value differs
// (float path pads exact 0.0, integer path the nearest-grid code). `ld` is
// the col-matrix row stride — out_h*out_w for a standalone image, the full
// slab width when the image is one column block of a batched lowering.
template <typename T>
void im2col_impl(const T* im, const ConvGeometry& g, T* col, std::int64_t ld,
                 T pad_value) {
  if (g.kernel_h == 3 && g.kernel_w == 3 && g.stride == 1 && g.pad == 1) {
    im2col_k3s1p1(im, g, col, ld, pad_value);
    return;
  }
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < g.channels; ++c) {
    const T* im_c = im + c * g.in_h * g.in_w;
    for (std::int64_t kh = 0; kh < g.kernel_h; ++kh) {
      for (std::int64_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
        T* out = col + row * ld;
        for (std::int64_t y = 0; y < oh; ++y) {
          const std::int64_t iy = y * g.stride + kh - g.pad;
          if (iy < 0 || iy >= g.in_h) {
            for (std::int64_t x = 0; x < ow; ++x) out[y * ow + x] = pad_value;
            continue;
          }
          const T* im_row = im_c + iy * g.in_w;
          if (g.stride == 1) {
            // Unit stride (every conv in these nets): the valid input span
            // is contiguous, so the row is pad / bulk copy / pad instead of
            // a bounds check per element — the lowering is a memcpy at
            // heart, and this keeps it one on the serving hot path.
            const std::int64_t x0 =
                std::min(std::max<std::int64_t>(0, g.pad - kw), ow);
            const std::int64_t x1 =
                std::min(ow, g.in_w + g.pad - kw);
            T* out_row = out + y * ow;
            for (std::int64_t x = 0; x < x0; ++x) out_row[x] = pad_value;
            if (x1 > x0) {
              copy_row(out_row + x0, im_row + (x0 + kw - g.pad), x1 - x0);
            }
            for (std::int64_t x = std::max(x1, x0); x < ow; ++x) {
              out_row[x] = pad_value;
            }
            continue;
          }
          for (std::int64_t x = 0; x < ow; ++x) {
            const std::int64_t ix = x * g.stride + kw - g.pad;
            out[y * ow + x] =
                (ix < 0 || ix >= g.in_w) ? pad_value : im_row[ix];
          }
        }
      }
    }
  }
}

}  // namespace

void im2col(const float* im, const ConvGeometry& g, float* col) {
  im2col_impl(im, g, col, g.out_h() * g.out_w(), 0.0f);
}

void im2col(const float* im, const ConvGeometry& g, float* col,
            std::int64_t col_stride) {
  im2col_impl(im, g, col, col_stride, 0.0f);
}

void im2col_u8(const std::uint8_t* im, const ConvGeometry& g,
               std::uint8_t* col, std::uint8_t pad_code) {
  im2col_impl(im, g, col, g.out_h() * g.out_w(), pad_code);
}

void im2col_u8(const std::uint8_t* im, const ConvGeometry& g,
               std::uint8_t* col, std::int64_t col_stride,
               std::uint8_t pad_code) {
  im2col_impl(im, g, col, col_stride, pad_code);
}

std::uint8_t* Im2colWorkspace::ensure_u8(std::int64_t count) {
  if (static_cast<std::int64_t>(u8.size()) < count) {
    u8.resize(static_cast<std::size_t>(count));
  }
  return u8.data();
}

float* Im2colWorkspace::ensure_f32(std::int64_t count) {
  if (static_cast<std::int64_t>(f32.size()) < count) {
    f32.resize(static_cast<std::size_t>(count));
  }
  return f32.data();
}

void col2im(const float* col, const ConvGeometry& g, float* im) {
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < g.channels; ++c) {
    float* im_c = im + c * g.in_h * g.in_w;
    for (std::int64_t kh = 0; kh < g.kernel_h; ++kh) {
      for (std::int64_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
        const float* in = col + row * oh * ow;
        for (std::int64_t y = 0; y < oh; ++y) {
          const std::int64_t iy = y * g.stride + kh - g.pad;
          if (iy < 0 || iy >= g.in_h) continue;
          float* im_row = im_c + iy * g.in_w;
          for (std::int64_t x = 0; x < ow; ++x) {
            const std::int64_t ix = x * g.stride + kw - g.pad;
            if (ix >= 0 && ix < g.in_w) im_row[ix] += in[y * ow + x];
          }
        }
      }
    }
  }
}

}  // namespace adq
