#include "tensor/im2col.h"

namespace adq {
namespace {

// One lowering loop for both element types; only the pad value differs
// (float path pads exact 0.0, integer path the nearest-grid code).
template <typename T>
void im2col_impl(const T* im, const ConvGeometry& g, T* col, T pad_value) {
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < g.channels; ++c) {
    const T* im_c = im + c * g.in_h * g.in_w;
    for (std::int64_t kh = 0; kh < g.kernel_h; ++kh) {
      for (std::int64_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
        T* out = col + row * oh * ow;
        for (std::int64_t y = 0; y < oh; ++y) {
          const std::int64_t iy = y * g.stride + kh - g.pad;
          if (iy < 0 || iy >= g.in_h) {
            for (std::int64_t x = 0; x < ow; ++x) out[y * ow + x] = pad_value;
            continue;
          }
          const T* im_row = im_c + iy * g.in_w;
          for (std::int64_t x = 0; x < ow; ++x) {
            const std::int64_t ix = x * g.stride + kw - g.pad;
            out[y * ow + x] =
                (ix < 0 || ix >= g.in_w) ? pad_value : im_row[ix];
          }
        }
      }
    }
  }
}

}  // namespace

void im2col(const float* im, const ConvGeometry& g, float* col) {
  im2col_impl(im, g, col, 0.0f);
}

void im2col_u8(const std::uint8_t* im, const ConvGeometry& g,
               std::uint8_t* col, std::uint8_t pad_code) {
  im2col_impl(im, g, col, pad_code);
}

void col2im(const float* col, const ConvGeometry& g, float* im) {
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < g.channels; ++c) {
    float* im_c = im + c * g.in_h * g.in_w;
    for (std::int64_t kh = 0; kh < g.kernel_h; ++kh) {
      for (std::int64_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
        const float* in = col + row * oh * ow;
        for (std::int64_t y = 0; y < oh; ++y) {
          const std::int64_t iy = y * g.stride + kh - g.pad;
          if (iy < 0 || iy >= g.in_h) continue;
          float* im_row = im_c + iy * g.in_w;
          for (std::int64_t x = 0; x < ow; ++x) {
            const std::int64_t ix = x * g.stride + kw - g.pad;
            if (ix >= 0 && ix < g.in_w) im_row[ix] += in[y * ow + x];
          }
        }
      }
    }
  }
}

}  // namespace adq
