// Shape of an N-dimensional tensor (row-major, contiguous).
//
// A Shape is a small value type holding up to kMaxRank extents. It knows how
// to compute element counts and row-major strides and to format itself for
// error messages. Every adq tensor is described by one of these.
#pragma once

#include <array>
#include <cstdint>
#include <initializer_list>
#include <string>

namespace adq {

class Shape {
 public:
  static constexpr int kMaxRank = 6;

  Shape() = default;
  Shape(std::initializer_list<std::int64_t> dims);

  /// Number of axes (0 for a scalar-shaped tensor).
  int rank() const { return rank_; }

  /// Extent of axis `axis`; negative axes count from the back (-1 == last).
  std::int64_t dim(int axis) const;

  /// Total number of elements (product of extents; 1 for rank 0).
  std::int64_t numel() const;

  /// Row-major stride of axis `axis`, in elements.
  std::int64_t stride(int axis) const;

  /// Returns a copy with axis `axis` set to `value`.
  Shape with_dim(int axis, std::int64_t value) const;

  /// Returns [dim, ...this] — the shape of `dim` stacked samples of this
  /// shape (batched copy-in, see stack_samples in tensor/ops.h).
  Shape prepended(std::int64_t dim) const;

  /// Returns this shape without its leading axis — the shape of one sample
  /// of a batch (scatter-out, see take_sample in tensor/ops.h).
  Shape tail() const;

  bool operator==(const Shape& other) const;
  bool operator!=(const Shape& other) const { return !(*this == other); }

  /// e.g. "[2, 3, 32, 32]".
  std::string to_string() const;

 private:
  int normalize_axis(int axis) const;

  std::array<std::int64_t, kMaxRank> dims_{};
  int rank_ = 0;
};

}  // namespace adq
