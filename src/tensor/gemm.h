// Blocked, multithreaded single-precision GEMM.
//
// C = alpha * op(A) * op(B) + beta * C with row-major matrices. This is the
// hot loop for every convolution (via im2col) and linear layer in adq, so it
// is written to vectorise: the micro-kernel keeps an MR x NR accumulator
// block in registers and streams K. No external BLAS is used — the repo is
// self-contained by design.
#pragma once

#include <cstdint>

#include "tensor/tensor.h"

namespace adq {

/// C[m x n] = alpha * A[m x k] * B[k x n] + beta * C. Raw-pointer variant;
/// lda/ldb/ldc are row strides in elements.
void sgemm(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
           std::int64_t k, float alpha, const float* a, std::int64_t lda,
           const float* b, std::int64_t ldb, float beta, float* c,
           std::int64_t ldc);

/// Tensor convenience wrapper: returns op(A) * op(B); A and B must be rank 2.
Tensor matmul(const Tensor& a, const Tensor& b, bool trans_a = false,
              bool trans_b = false);

}  // namespace adq
