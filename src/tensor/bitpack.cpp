#include "tensor/bitpack.h"

#include <cstring>
#include <stdexcept>
#include <string>

namespace adq {
namespace {

void check_cell_bits(int cell_bits) {
  if (cell_bits != 1 && cell_bits != 2 && cell_bits != 4 && cell_bits != 8) {
    throw std::invalid_argument("bitpack: cell_bits must be 1/2/4/8, got " +
                                std::to_string(cell_bits));
  }
}

}  // namespace

int cell_bits_for(int bits) {
  if (bits <= 1) return 1;
  if (bits <= 2) return 2;
  if (bits <= 4) return 4;
  return 8;
}

std::int64_t packed_bytes(std::int64_t count, int cell_bits) {
  check_cell_bits(cell_bits);
  const std::int64_t per_byte = 8 / cell_bits;
  return (count + per_byte - 1) / per_byte;
}

void pack_codes(const std::uint8_t* codes, std::int64_t count, int cell_bits,
                std::uint8_t* packed) {
  check_cell_bits(cell_bits);
  if (cell_bits == 8) {
    std::memcpy(packed, codes, static_cast<std::size_t>(count));
    return;
  }
  const std::int64_t per_byte = 8 / cell_bits;
  const std::uint8_t mask = static_cast<std::uint8_t>((1u << cell_bits) - 1u);
  const std::int64_t bytes = packed_bytes(count, cell_bits);
  std::memset(packed, 0, static_cast<std::size_t>(bytes));
  for (std::int64_t i = 0; i < count; ++i) {
    const int shift = static_cast<int>(i % per_byte) * cell_bits;
    packed[i / per_byte] |=
        static_cast<std::uint8_t>((codes[i] & mask) << shift);
  }
}

void unpack_codes(const std::uint8_t* packed, std::int64_t count,
                  int cell_bits, std::uint8_t* codes) {
  check_cell_bits(cell_bits);
  if (cell_bits == 8) {
    std::memcpy(codes, packed, static_cast<std::size_t>(count));
    return;
  }
  const std::int64_t per_byte = 8 / cell_bits;
  const std::uint8_t mask = static_cast<std::uint8_t>((1u << cell_bits) - 1u);
  for (std::int64_t i = 0; i < count; ++i) {
    const int shift = static_cast<int>(i % per_byte) * cell_bits;
    codes[i] = static_cast<std::uint8_t>((packed[i / per_byte] >> shift) & mask);
  }
}

}  // namespace adq
