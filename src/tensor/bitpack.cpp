#include "tensor/bitpack.h"

#include <cstring>
#include <stdexcept>
#include <string>

namespace adq {
namespace {

void check_cell_bits(int cell_bits) {
  if (cell_bits != 1 && cell_bits != 2 && cell_bits != 4 && cell_bits != 8) {
    throw std::invalid_argument("bitpack: cell_bits must be 1/2/4/8, got " +
                                std::to_string(cell_bits));
  }
}

}  // namespace

int cell_bits_for(int bits) {
  if (bits <= 1) return 1;
  if (bits <= 2) return 2;
  if (bits <= 4) return 4;
  return 8;
}

std::int64_t packed_bytes(std::int64_t count, int cell_bits) {
  check_cell_bits(cell_bits);
  const std::int64_t per_byte = 8 / cell_bits;
  return (count + per_byte - 1) / per_byte;
}

void pack_codes(const std::uint8_t* codes, std::int64_t count, int cell_bits,
                std::uint8_t* packed) {
  check_cell_bits(cell_bits);
  if (cell_bits == 8) {
    std::memcpy(packed, codes, static_cast<std::size_t>(count));
    return;
  }
  const std::int64_t per_byte = 8 / cell_bits;
  const std::uint8_t mask = static_cast<std::uint8_t>((1u << cell_bits) - 1u);
  const std::int64_t bytes = packed_bytes(count, cell_bits);
  std::memset(packed, 0, static_cast<std::size_t>(bytes));
  for (std::int64_t i = 0; i < count; ++i) {
    const int shift = static_cast<int>(i % per_byte) * cell_bits;
    packed[i / per_byte] |=
        static_cast<std::uint8_t>((codes[i] & mask) << shift);
  }
}

void unpack_codes(const std::uint8_t* packed, std::int64_t count,
                  int cell_bits, std::uint8_t* codes) {
  check_cell_bits(cell_bits);
  if (cell_bits == 8) {
    std::memcpy(codes, packed, static_cast<std::size_t>(count));
    return;
  }
  const std::int64_t per_byte = 8 / cell_bits;
  const std::uint8_t mask = static_cast<std::uint8_t>((1u << cell_bits) - 1u);
  for (std::int64_t i = 0; i < count; ++i) {
    const int shift = static_cast<int>(i % per_byte) * cell_bits;
    codes[i] = static_cast<std::uint8_t>((packed[i / per_byte] >> shift) & mask);
  }
}

std::int64_t packed_row_bytes(std::int64_t cols, int cell_bits) {
  return packed_bytes(cols, cell_bits);
}

namespace {

void check_repack_cells(int src_cell, int dst_cell) {
  check_cell_bits(src_cell);
  check_cell_bits(dst_cell);
  if (dst_cell < src_cell) {
    throw std::invalid_argument(
        "bitpack: repack cannot narrow codes, src_cell " +
        std::to_string(src_cell) + " > dst_cell " + std::to_string(dst_cell));
  }
}

// Code i of a flat-packed stream, little-endian within each byte.
inline std::uint8_t flat_code(const std::uint8_t* packed, std::int64_t i,
                              int cell_bits, std::int64_t per_byte,
                              std::uint8_t mask) {
  const int shift = static_cast<int>(i % per_byte) * cell_bits;
  return static_cast<std::uint8_t>((packed[i / per_byte] >> shift) & mask);
}

}  // namespace

void repack_rows_aligned(const std::uint8_t* src_packed, std::int64_t rows,
                         std::int64_t cols, int src_cell, int dst_cell,
                         std::uint8_t* dst) {
  check_repack_cells(src_cell, dst_cell);
  const std::int64_t row_bytes = packed_row_bytes(cols, dst_cell);
  const std::int64_t src_per = 8 / src_cell;
  const std::int64_t dst_per = 8 / dst_cell;
  const std::uint8_t src_mask =
      static_cast<std::uint8_t>((1u << src_cell) - 1u);
  std::memset(dst, 0, static_cast<std::size_t>(rows * row_bytes));
  for (std::int64_t r = 0; r < rows; ++r) {
    std::uint8_t* out = dst + r * row_bytes;
    const std::int64_t base = r * cols;
    for (std::int64_t c = 0; c < cols; ++c) {
      const std::uint8_t v =
          flat_code(src_packed, base + c, src_cell, src_per, src_mask);
      out[c / dst_per] |= static_cast<std::uint8_t>(
          v << (static_cast<int>(c % dst_per) * dst_cell));
    }
  }
}

void repack_transpose_aligned(const std::uint8_t* src_packed,
                              std::int64_t rows, std::int64_t cols,
                              int src_cell, int dst_cell, std::uint8_t* dst) {
  check_repack_cells(src_cell, dst_cell);
  const std::int64_t row_bytes = packed_row_bytes(rows, dst_cell);
  const std::int64_t src_per = 8 / src_cell;
  const std::int64_t dst_per = 8 / dst_cell;
  const std::uint8_t src_mask =
      static_cast<std::uint8_t>((1u << src_cell) - 1u);
  std::memset(dst, 0, static_cast<std::size_t>(cols * row_bytes));
  for (std::int64_t r = 0; r < rows; ++r) {
    const std::int64_t base = r * cols;
    for (std::int64_t c = 0; c < cols; ++c) {
      const std::uint8_t v =
          flat_code(src_packed, base + c, src_cell, src_per, src_mask);
      dst[c * row_bytes + r / dst_per] |= static_cast<std::uint8_t>(
          v << (static_cast<int>(r % dst_per) * dst_cell));
    }
  }
}

}  // namespace adq
