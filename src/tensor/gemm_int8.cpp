#include "tensor/gemm_int8.h"

#include <algorithm>
#include <vector>

#include "tensor/parallel.h"

namespace adq {
namespace {

// Same register/cache geometry as the float kernel in gemm.cpp: 4 x 16
// accumulators, Kc-deep panels. 16 int32 accumulator lanes per row pair
// with int16 operands map onto the widening-multiply instructions (pmaddwd
// and friends) the auto-vectoriser emits for this shape.
constexpr std::int64_t kMr = 4;
constexpr std::int64_t kNr = 16;
constexpr std::int64_t kKc = 256;
constexpr std::int64_t kNc = 256;

// Computes a full MR x NR tile: C[0..mr) x [0..nr) += A_panel * B_panel.
// Panels are pre-widened to int16; accumulators are int32.
void micro_kernel(std::int64_t kc, const std::int16_t* a, std::int64_t lda,
                  const std::int16_t* b, std::int64_t ldb, std::int32_t* c,
                  std::int64_t ldc, std::int64_t mr, std::int64_t nr) {
  if (mr == kMr && nr == kNr) {
    std::int32_t acc[kMr][kNr] = {};
    for (std::int64_t p = 0; p < kc; ++p) {
      const std::int16_t* bp = b + p * ldb;
      for (std::int64_t i = 0; i < kMr; ++i) {
        const std::int32_t av = a[i * lda + p];
        for (std::int64_t j = 0; j < kNr; ++j) acc[i][j] += av * bp[j];
      }
    }
    for (std::int64_t i = 0; i < kMr; ++i) {
      std::int32_t* cp = c + i * ldc;
      for (std::int64_t j = 0; j < kNr; ++j) cp[j] += acc[i][j];
    }
    return;
  }
  // Edge tile: same algorithm, runtime bounds.
  std::int32_t acc[kMr][kNr] = {};
  for (std::int64_t p = 0; p < kc; ++p) {
    const std::int16_t* bp = b + p * ldb;
    for (std::int64_t i = 0; i < mr; ++i) {
      const std::int32_t av = a[i * lda + p];
      for (std::int64_t j = 0; j < nr; ++j) acc[i][j] += av * bp[j];
    }
  }
  for (std::int64_t i = 0; i < mr; ++i) {
    std::int32_t* cp = c + i * ldc;
    for (std::int64_t j = 0; j < nr; ++j) cp[j] += acc[i][j];
  }
}

// Packs (and widens) logical block [r0, r0+mc) x [c0, c0+kc) of the u8
// matrix into an int16 panel, row-major mc x kc.
void pack_block_u8(const std::uint8_t* m, std::int64_t ld, std::int64_t r0,
                   std::int64_t mc, std::int64_t c0, std::int64_t kc,
                   std::int16_t* dst) {
  for (std::int64_t i = 0; i < mc; ++i) {
    const std::uint8_t* src = m + (r0 + i) * ld + c0;
    std::int16_t* out = dst + i * kc;
    for (std::int64_t j = 0; j < kc; ++j) out[j] = src[j];
  }
}

}  // namespace

void igemm_u8(std::int64_t m, std::int64_t n, std::int64_t k,
              const std::uint8_t* a, std::int64_t lda, const std::uint8_t* b,
              std::int64_t ldb, std::int32_t* c, std::int64_t ldc) {
  if (m <= 0 || n <= 0) return;

  // Overwrite semantics: zero C so the accumulation loop is pure +=.
  for (std::int64_t i = 0; i < m; ++i) {
    std::fill(c + i * ldc, c + i * ldc + n, 0);
  }
  if (k <= 0) return;

  // Parallelise over row blocks of C; each task packs its own A/B panels.
  const std::int64_t row_block = std::max<std::int64_t>(
      kMr, (m + parallel_thread_count() * 2 - 1) /
               (parallel_thread_count() * 2) / kMr * kMr);
  parallel_for(0, (m + row_block - 1) / row_block,
               [&](std::int64_t tb, std::int64_t te) {
    std::vector<std::int16_t> a_pack(static_cast<std::size_t>(row_block * kKc));
    std::vector<std::int16_t> b_pack(static_cast<std::size_t>(kKc * kNc));
    for (std::int64_t t = tb; t < te; ++t) {
      const std::int64_t i0 = t * row_block;
      const std::int64_t mc = std::min(row_block, m - i0);
      for (std::int64_t p0 = 0; p0 < k; p0 += kKc) {
        const std::int64_t kc = std::min(kKc, k - p0);
        pack_block_u8(a, lda, i0, mc, p0, kc, a_pack.data());
        for (std::int64_t j0 = 0; j0 < n; j0 += kNc) {
          const std::int64_t nc = std::min(kNc, n - j0);
          pack_block_u8(b, ldb, p0, kc, j0, nc, b_pack.data());
          for (std::int64_t jr = 0; jr < nc; jr += kNr) {
            const std::int64_t nr = std::min(kNr, nc - jr);
            for (std::int64_t ir = 0; ir < mc; ir += kMr) {
              const std::int64_t mr = std::min(kMr, mc - ir);
              micro_kernel(kc, a_pack.data() + ir * kc, kc,
                           b_pack.data() + jr, nc,
                           c + (i0 + ir) * ldc + (j0 + jr), ldc, mr, nr);
            }
          }
        }
      }
    }
  });
}

}  // namespace adq
