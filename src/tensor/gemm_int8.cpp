#include "tensor/gemm_int8.h"

#include <algorithm>
#include <vector>

#include "tensor/parallel.h"

namespace adq {
namespace {

// Same register/cache geometry as the float kernel in gemm.cpp: 4 x 16
// accumulators, Kc-deep panels. 16 int32 accumulator lanes per row pair
// with int16 operands map onto the widening-multiply instructions (pmaddwd
// and friends) the auto-vectoriser emits for this shape.
constexpr std::int64_t kMr = 4;
constexpr std::int64_t kNr = 16;
constexpr std::int64_t kKc = 256;
constexpr std::int64_t kNc = 256;

// Computes a full MR x NR tile: C[0..mr) x [0..nr) += A_panel * B_panel.
// Panels are pre-widened to int16; accumulators are int32.
void micro_kernel(std::int64_t kc, const std::int16_t* a, std::int64_t lda,
                  const std::int16_t* b, std::int64_t ldb, std::int32_t* c,
                  std::int64_t ldc, std::int64_t mr, std::int64_t nr) {
  if (mr == kMr && nr == kNr) {
    std::int32_t acc[kMr][kNr] = {};
    for (std::int64_t p = 0; p < kc; ++p) {
      const std::int16_t* bp = b + p * ldb;
      for (std::int64_t i = 0; i < kMr; ++i) {
        const std::int32_t av = a[i * lda + p];
        for (std::int64_t j = 0; j < kNr; ++j) acc[i][j] += av * bp[j];
      }
    }
    for (std::int64_t i = 0; i < kMr; ++i) {
      std::int32_t* cp = c + i * ldc;
      for (std::int64_t j = 0; j < kNr; ++j) cp[j] += acc[i][j];
    }
    return;
  }
  // Edge tile: same algorithm, runtime bounds.
  std::int32_t acc[kMr][kNr] = {};
  for (std::int64_t p = 0; p < kc; ++p) {
    const std::int16_t* bp = b + p * ldb;
    for (std::int64_t i = 0; i < mr; ++i) {
      const std::int32_t av = a[i * lda + p];
      for (std::int64_t j = 0; j < nr; ++j) acc[i][j] += av * bp[j];
    }
  }
  for (std::int64_t i = 0; i < mr; ++i) {
    std::int32_t* cp = c + i * ldc;
    for (std::int64_t j = 0; j < nr; ++j) cp[j] += acc[i][j];
  }
}

// Packs (and widens) logical block [r0, r0+mc) x [c0, c0+kc) of the u8
// matrix into an int16 panel, row-major mc x kc.
void pack_block_u8(const std::uint8_t* m, std::int64_t ld, std::int64_t r0,
                   std::int64_t mc, std::int64_t c0, std::int64_t kc,
                   std::int16_t* dst) {
  for (std::int64_t i = 0; i < mc; ++i) {
    const std::uint8_t* src = m + (r0 + i) * ld + c0;
    std::int16_t* out = dst + i * kc;
    for (std::int64_t j = 0; j < kc; ++j) out[j] = src[j];
  }
}

// Per-thread packing panels, reused across calls. A fresh std::vector per
// GEMM call zero-fills ~128 KiB of panel before packing overwrites it —
// measurable against the small per-image GEMMs the inference engine issues.
// Pool worker threads persist, so each thread pays the allocation once.
std::int16_t* thread_panel(std::int64_t count, int which) {
  thread_local std::vector<std::int16_t> panels[2];
  std::vector<std::int16_t>& p = panels[which];
  if (static_cast<std::int64_t>(p.size()) < count) {
    p.resize(static_cast<std::size_t>(count));
  }
  return p.data();
}

// Runs the blocked loop nest over C rows [i0, i0+mc) x columns [j0, j0+nc).
void gemm_block(std::int64_t k, const std::uint8_t* a, std::int64_t lda,
                const std::uint8_t* b, std::int64_t ldb, std::int32_t* c,
                std::int64_t ldc, std::int64_t i0, std::int64_t mc,
                std::int64_t j0, std::int64_t nc_total) {
  std::int16_t* a_pack = thread_panel(mc * kKc, 0);
  std::int16_t* b_pack = thread_panel(kKc * kNc, 1);
  for (std::int64_t p0 = 0; p0 < k; p0 += kKc) {
    const std::int64_t kc = std::min(kKc, k - p0);
    pack_block_u8(a, lda, i0, mc, p0, kc, a_pack);
    for (std::int64_t jb = 0; jb < nc_total; jb += kNc) {
      const std::int64_t nc = std::min(kNc, nc_total - jb);
      pack_block_u8(b, ldb, p0, kc, j0 + jb, nc, b_pack);
      for (std::int64_t jr = 0; jr < nc; jr += kNr) {
        const std::int64_t nr = std::min(kNr, nc - jr);
        for (std::int64_t ir = 0; ir < mc; ir += kMr) {
          const std::int64_t mr = std::min(kMr, mc - ir);
          micro_kernel(kc, a_pack + ir * kc, kc, b_pack + jr, nc,
                       c + (i0 + ir) * ldc + (j0 + jb + jr), ldc, mr, nr);
        }
      }
    }
  }
}

}  // namespace

namespace detail {

void igemm_blocked(std::int64_t m, std::int64_t n, std::int64_t k,
                   const std::uint8_t* a, std::int64_t lda,
                   const std::uint8_t* b, std::int64_t ldb, std::int32_t* c,
                   std::int64_t ldc, GemmBlockFn block) {
  if (m <= 0 || n <= 0) return;

  // Overwrite semantics: zero C so the accumulation loops are pure +=.
  for (std::int64_t i = 0; i < m; ++i) {
    std::fill(c + i * ldc, c + i * ldc + n, 0);
  }
  if (k <= 0) return;

  // Block for the caller's thread budget (a serving worker may own only a
  // slice of the pool), not the whole machine.
  const int threads = parallel_effective_threads();
  const std::int64_t row_block = std::max<std::int64_t>(
      kMr, (m + threads * 2 - 1) / (threads * 2) / kMr * kMr);
  const std::int64_t row_tasks = (m + row_block - 1) / row_block;

  // Wide-and-short C — the batched-conv slab shape (m = out channels, n =
  // batch * positions) — cannot feed every worker from row blocks alone, so
  // parallelise over column blocks instead. Each task re-packs the (small)
  // A panel; that redundancy is at most 1/kNc of the task's MACs.
  if (row_tasks < threads && n >= 2 * kNc) {
    const std::int64_t col_block = std::max<std::int64_t>(
        kNc, (n + threads * 2 - 1) / (threads * 2) / kNc * kNc);
    parallel_for(0, (n + col_block - 1) / col_block,
                 [&](std::int64_t tb, std::int64_t te) {
      for (std::int64_t t = tb; t < te; ++t) {
        const std::int64_t j0 = t * col_block;
        block(k, a, lda, b, ldb, c, ldc, 0, m, j0,
              std::min(col_block, n - j0));
      }
    });
    return;
  }

  // Parallelise over row blocks of C; each task packs its own A/B panels.
  parallel_for(0, row_tasks, [&](std::int64_t tb, std::int64_t te) {
    for (std::int64_t t = tb; t < te; ++t) {
      const std::int64_t i0 = t * row_block;
      block(k, a, lda, b, ldb, c, ldc, i0, std::min(row_block, m - i0), 0, n);
    }
  });
}

}  // namespace detail

void igemm_u8_generic(std::int64_t m, std::int64_t n, std::int64_t k,
                      const std::uint8_t* a, std::int64_t lda,
                      const std::uint8_t* b, std::int64_t ldb, std::int32_t* c,
                      std::int64_t ldc) {
  detail::igemm_blocked(m, n, k, a, lda, b, ldb, c, ldc, &gemm_block);
}

}  // namespace adq
