#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace adq {
namespace {

void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  if (a.shape() != b.shape()) {
    throw std::invalid_argument(std::string(op) + ": shape mismatch " +
                                a.shape().to_string() + " vs " +
                                b.shape().to_string());
  }
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "add");
  Tensor out(a.shape());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  for (std::int64_t i = 0; i < a.numel(); ++i) po[i] = pa[i] + pb[i];
  return out;
}

void add_inplace(Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "add_inplace");
  float* pa = a.data();
  const float* pb = b.data();
  for (std::int64_t i = 0; i < a.numel(); ++i) pa[i] += pb[i];
}

void axpy(Tensor& a, float alpha, const Tensor& b) {
  check_same_shape(a, b, "axpy");
  float* pa = a.data();
  const float* pb = b.data();
  for (std::int64_t i = 0; i < a.numel(); ++i) pa[i] += alpha * pb[i];
}

Tensor sub(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "sub");
  Tensor out(a.shape());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  for (std::int64_t i = 0; i < a.numel(); ++i) po[i] = pa[i] - pb[i];
  return out;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "mul");
  Tensor out(a.shape());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  for (std::int64_t i = 0; i < a.numel(); ++i) po[i] = pa[i] * pb[i];
  return out;
}

Tensor scale(const Tensor& a, float alpha) {
  Tensor out(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  for (std::int64_t i = 0; i < a.numel(); ++i) po[i] = alpha * pa[i];
  return out;
}

Tensor relu(const Tensor& x) {
  Tensor out(x.shape());
  const float* px = x.data();
  float* po = out.data();
  for (std::int64_t i = 0; i < x.numel(); ++i) po[i] = px[i] > 0.0f ? px[i] : 0.0f;
  return out;
}

double sum(const Tensor& x) {
  double s = 0.0;
  const float* p = x.data();
  for (std::int64_t i = 0; i < x.numel(); ++i) s += p[i];
  return s;
}

double mean(const Tensor& x) {
  return x.numel() == 0 ? 0.0 : sum(x) / static_cast<double>(x.numel());
}

std::int64_t count_nonzero(const Tensor& x, float eps) {
  std::int64_t n = 0;
  const float* p = x.data();
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    if (std::fabs(p[i]) > eps) ++n;
  }
  return n;
}

float max_abs(const Tensor& x) {
  float m = 0.0f;
  const float* p = x.data();
  for (std::int64_t i = 0; i < x.numel(); ++i) m = std::max(m, std::fabs(p[i]));
  return m;
}

float min_value(const Tensor& x) {
  if (x.numel() == 0) throw std::invalid_argument("min_value: empty tensor");
  return *std::min_element(x.data(), x.data() + x.numel());
}

float max_value(const Tensor& x) {
  if (x.numel() == 0) throw std::invalid_argument("max_value: empty tensor");
  return *std::max_element(x.data(), x.data() + x.numel());
}

std::vector<std::int64_t> argmax_rows(const Tensor& x) {
  if (x.shape().rank() != 2) {
    throw std::invalid_argument("argmax_rows: tensor must be rank 2");
  }
  const std::int64_t rows = x.shape().dim(0), cols = x.shape().dim(1);
  std::vector<std::int64_t> out(static_cast<std::size_t>(rows));
  for (std::int64_t i = 0; i < rows; ++i) {
    const float* row = x.data() + i * cols;
    out[static_cast<std::size_t>(i)] =
        std::max_element(row, row + cols) - row;
  }
  return out;
}

Tensor stack_samples(const std::vector<const Tensor*>& samples) {
  if (samples.empty()) {
    throw std::invalid_argument("stack_samples: no samples");
  }
  const Shape& sample_shape = samples.front()->shape();
  Tensor out(sample_shape.prepended(static_cast<std::int64_t>(samples.size())));
  const std::int64_t n = samples.front()->numel();
  float* dst = out.data();
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (samples[i]->shape() != sample_shape) {
      throw std::invalid_argument("stack_samples: shape mismatch " +
                                  samples[i]->shape().to_string() + " vs " +
                                  sample_shape.to_string());
    }
    const float* src = samples[i]->data();
    std::copy(src, src + n, dst + static_cast<std::int64_t>(i) * n);
  }
  return out;
}

Tensor take_sample(const Tensor& batch, std::int64_t index) {
  const std::int64_t count =
      batch.shape().rank() == 0 ? 0 : batch.shape().dim(0);
  if (index < 0 || index >= count) {
    throw std::out_of_range("take_sample: index " + std::to_string(index) +
                            " out of range for batch " +
                            batch.shape().to_string());
  }
  Tensor out(batch.shape().tail());
  const std::int64_t n = out.numel();
  const float* src = batch.data() + index * n;
  std::copy(src, src + n, out.data());
  return out;
}

bool allclose(const Tensor& a, const Tensor& b, float atol) {
  if (a.shape() != b.shape()) return false;
  const float* pa = a.data();
  const float* pb = b.data();
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    if (std::fabs(pa[i] - pb[i]) > atol) return false;
  }
  return true;
}

}  // namespace adq
