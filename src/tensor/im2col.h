// im2col / col2im lowering for convolutions.
//
// Conv2d forward lowers each input image to a [C*kh*kw, out_h*out_w] patch
// matrix so the convolution becomes one GEMM against the [out_c, C*kh*kw]
// weight matrix; col2im scatters gradients back for the backward pass.
#pragma once

#include <cstdint>

namespace adq {

struct ConvGeometry {
  std::int64_t channels = 0;
  std::int64_t in_h = 0, in_w = 0;
  std::int64_t kernel_h = 0, kernel_w = 0;
  std::int64_t stride = 1;
  std::int64_t pad = 0;

  std::int64_t out_h() const { return (in_h + 2 * pad - kernel_h) / stride + 1; }
  std::int64_t out_w() const { return (in_w + 2 * pad - kernel_w) / stride + 1; }
  std::int64_t patch_size() const { return channels * kernel_h * kernel_w; }
};

/// im: [channels, in_h, in_w] contiguous. col: [patch_size, out_h*out_w].
void im2col(const float* im, const ConvGeometry& g, float* col);

/// Quantization-code variant for the integer inference engine: lowers an
/// image of u8 codes instead of floats. Padding positions are filled with
/// `pad_code` — the code whose dequantized value is closest to 0.0, since
/// the affine grid of eqn (1) does not necessarily contain an exact zero.
void im2col_u8(const std::uint8_t* im, const ConvGeometry& g,
               std::uint8_t* col, std::uint8_t pad_code);

/// Transpose scatter: accumulates col back into im (im must be pre-zeroed).
void col2im(const float* col, const ConvGeometry& g, float* im);

}  // namespace adq
