// im2col / col2im lowering for convolutions.
//
// Conv2d forward lowers each input image to a [C*kh*kw, out_h*out_w] patch
// matrix so the convolution becomes one GEMM against the [out_c, C*kh*kw]
// weight matrix; col2im scatters gradients back for the backward pass.
#pragma once

#include <cstdint>

namespace adq {

struct ConvGeometry {
  std::int64_t channels = 0;
  std::int64_t in_h = 0, in_w = 0;
  std::int64_t kernel_h = 0, kernel_w = 0;
  std::int64_t stride = 1;
  std::int64_t pad = 0;

  std::int64_t out_h() const { return (in_h + 2 * pad - kernel_h) / stride + 1; }
  std::int64_t out_w() const { return (in_w + 2 * pad - kernel_w) / stride + 1; }
  std::int64_t patch_size() const { return channels * kernel_h * kernel_w; }
};

/// im: [channels, in_h, in_w] contiguous. col: [patch_size, out_h*out_w].
void im2col(const float* im, const ConvGeometry& g, float* col);

/// Transpose scatter: accumulates col back into im (im must be pre-zeroed).
void col2im(const float* col, const ConvGeometry& g, float* im);

}  // namespace adq
