// im2col / col2im lowering for convolutions.
//
// Conv2d forward lowers each input image to a [C*kh*kw, out_h*out_w] patch
// matrix so the convolution becomes one GEMM against the [out_c, C*kh*kw]
// weight matrix; col2im scatters gradients back for the backward pass.
#pragma once

#include <cstdint>
#include <vector>

namespace adq {

struct ConvGeometry {
  std::int64_t channels = 0;
  std::int64_t in_h = 0, in_w = 0;
  std::int64_t kernel_h = 0, kernel_w = 0;
  std::int64_t stride = 1;
  std::int64_t pad = 0;

  std::int64_t out_h() const { return (in_h + 2 * pad - kernel_h) / stride + 1; }
  std::int64_t out_w() const { return (in_w + 2 * pad - kernel_w) / stride + 1; }
  std::int64_t patch_size() const { return channels * kernel_h * kernel_w; }
};

/// im: [channels, in_h, in_w] contiguous. col: [patch_size, out_h*out_w].
void im2col(const float* im, const ConvGeometry& g, float* col);

/// Strided variant for batched lowering: writes patch row r starting at
/// col + r * col_stride (col_stride >= out_h*out_w), so B images can land
/// as adjacent column blocks of one [patch_size, B * out_h*out_w] slab and
/// the whole batch runs as a single GEMM.
void im2col(const float* im, const ConvGeometry& g, float* col,
            std::int64_t col_stride);

/// Quantization-code variant for the integer inference engine: lowers an
/// image of u8 codes instead of floats. Padding positions are filled with
/// `pad_code` — the code whose dequantized value is closest to 0.0, since
/// the affine grid of eqn (1) does not necessarily contain an exact zero.
void im2col_u8(const std::uint8_t* im, const ConvGeometry& g,
               std::uint8_t* col, std::uint8_t pad_code);

/// Strided u8 variant (see the strided float overload above).
void im2col_u8(const std::uint8_t* im, const ConvGeometry& g,
               std::uint8_t* col, std::int64_t col_stride,
               std::uint8_t pad_code);

/// Reusable lowering buffers. The patch matrices are the largest transient
/// allocation on the inference hot path; a serving loop that re-lowers
/// every batch keeps one of these (typically thread_local) so the steady
/// state is allocation-free. Buffers grow on demand and never shrink.
struct Im2colWorkspace {
  std::vector<std::uint8_t> u8;
  std::vector<float> f32;

  /// Grows the u8 buffer to at least `count` and returns its data pointer.
  std::uint8_t* ensure_u8(std::int64_t count);

  /// Grows the float buffer to at least `count` and returns its data pointer.
  float* ensure_f32(std::int64_t count);
};

/// Transpose scatter: accumulates col back into im (im must be pre-zeroed).
void col2im(const float* col, const ConvGeometry& g, float* im);

}  // namespace adq
