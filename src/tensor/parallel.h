// Minimal persistent thread pool with a parallel_for primitive.
//
// The pool is created once (lazily) and reused; parallel_for splits [begin,
// end) into contiguous chunks, one per worker. Workloads in adq are large
// regular loops (GEMM row blocks, im2col patches), so static chunking is the
// right trade-off and keeps the scheduler trivial.
//
// parallel_for is a template on the callable: the serial fast path invokes
// it directly and the pool path wraps it in a one-pointer adapter that fits
// std::function's inline buffer, so dispatching NEVER heap-allocates — a
// capture-heavy lambda passed through the old `const std::function&`
// signature allocated on every call, which is what made the inference
// engine's "zero allocations per forward" contract impossible to honour.
#pragma once

#include <cstdint>
#include <functional>

namespace adq {

/// Number of worker threads the pool uses (hardware concurrency, overridable
/// via the ADQ_THREADS environment variable; minimum 1).
int parallel_thread_count();

namespace detail {

/// True when the calling thread is already inside a parallel region (nested
/// parallel_for calls run serially — the pool has a single dispatch epoch).
bool in_parallel_region();

/// Dispatches fn over the pool. fn's target must be small enough to sit in
/// std::function's inline storage (parallel_for passes a single-reference
/// adapter); chunking and the serial fallback are the caller's job.
void parallel_run(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const std::function<void(std::int64_t, std::int64_t)>& fn);

}  // namespace detail

/// Runs fn(begin_i, end_i) on disjoint chunks covering [begin, end).
/// Falls back to a serial call when the range is small or the pool has a
/// single worker. fn must be safe to invoke concurrently on disjoint ranges.
template <typename Fn>
void parallel_for(std::int64_t begin, std::int64_t end, const Fn& fn,
                  std::int64_t grain = 1) {
  if (begin >= end) return;
  if (parallel_thread_count() == 1 || end - begin <= grain ||
      detail::in_parallel_region()) {
    fn(begin, end);
    return;
  }
  // The adapter captures one reference — guaranteed to fit std::function's
  // small-buffer storage, so no allocation on the dispatch path.
  detail::parallel_run(begin, end, grain,
                       [&fn](std::int64_t b, std::int64_t e) { fn(b, e); });
}

}  // namespace adq
