// Concurrent task scheduler with a parallel_for primitive.
//
// A persistent worker pool is created once (lazily) and shared by every
// caller. Each parallel_for dispatch becomes an independent JOB — its own
// atomic chunk cursor, pending-chunk count, and completion latch — pushed
// to the pool, so any number of top-level parallel regions (one per
// serving worker mid-batch, say) proceed simultaneously: the caller
// drains its own job's chunks, and idle pool threads steal chunks from
// whichever jobs are live. Workloads in adq are large regular loops (GEMM
// row blocks, im2col patches), so chunked self-scheduling over an atomic
// cursor is the right trade-off and keeps the scheduler small.
//
// parallel_for is a template on the callable: the serial fast path invokes
// it directly and the pool path wraps it in a one-pointer adapter that fits
// std::function's inline buffer, so dispatching NEVER heap-allocates — a
// capture-heavy lambda passed through the old `const std::function&`
// signature allocated on every call, which is what made the inference
// engine's "zero allocations per forward" contract impossible to honour.
#pragma once

#include <cstdint>
#include <functional>

namespace adq {

/// Number of threads the pool can bring to bear on one dispatch: the
/// persistent workers plus the calling thread. Sized from hardware
/// concurrency, overridable via ADQ_THREADS (a strict base-10 integer in
/// [1, 4096]; anything else throws std::invalid_argument at pool
/// creation — garbage must not silently serialize the process).
int parallel_thread_count();

/// Threads a parallel_for issued by the CALLING thread may occupy: the
/// pool size clamped to the innermost ScopedThreadBudget, minimum 1.
/// Chunking heuristics (GEMM row blocks, epilogue grains) must size
/// against this, not parallel_thread_count() — chunks split for a
/// whole-machine fan-out are wrong for a 2-thread budget.
int parallel_effective_threads();

/// Caps how many threads (caller included) serve each parallel_for the
/// calling thread dispatches while this guard is alive. Serving workers
/// use it to partition the machine (ADQ_THREADS_PER_WORKER) instead of
/// fighting over every core; budget 1 makes dispatches run inline. 0
/// restores "whole pool". Guards nest; each restores the previous budget.
/// Throws std::invalid_argument on a negative budget.
class ScopedThreadBudget {
 public:
  explicit ScopedThreadBudget(int budget);
  ~ScopedThreadBudget();
  ScopedThreadBudget(const ScopedThreadBudget&) = delete;
  ScopedThreadBudget& operator=(const ScopedThreadBudget&) = delete;

 private:
  int prev_;
};

/// Instantaneous scheduler occupancy — what ServerStats samples so an
/// operator can see whether serving workers actually overlap compute.
struct ParallelPoolStats {
  int pool_threads = 1;    ///< parallel_thread_count()
  int busy_workers = 0;    ///< pool workers executing job chunks right now
  int live_jobs = 0;       ///< dispatches in flight right now
  std::uint64_t jobs_dispatched = 0;  ///< total jobs ever pushed to the pool
};
ParallelPoolStats parallel_pool_stats();

namespace detail {

/// True when the calling thread is already inside a parallel region.
/// Nested parallel_for calls run serially in the calling worker: the
/// outer job's chunks already saturate the budget, and a worker blocking
/// on an inner job's completion would idle a pool thread the outer region
/// is counting on.
bool in_parallel_region();

/// Strict ADQ_THREADS grammar: a base-10 integer in [1, 4096], nothing
/// else (no trailing junk, no signs of a float, no silent fallback).
/// Throws std::invalid_argument with the offending text otherwise.
int parse_thread_count(const char* text);

/// Bench/test-only A/B hook: when enabled, every dispatch queues behind
/// one process-global mutex — the pre-scheduler "single region at a
/// time" design — so `bench_serve_scaling` can measure the serialized
/// baseline and the concurrent scheduler in the SAME run. Returns the
/// previous setting. Production code must never turn this on.
bool exchange_serialize_dispatch(bool serialize);

/// Dispatches fn as one job over the pool. fn's target must be small
/// enough to sit in std::function's inline storage (parallel_for passes a
/// single-reference adapter); chunking and the serial fallback are the
/// caller's job.
void parallel_run(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const std::function<void(std::int64_t, std::int64_t)>& fn);

}  // namespace detail

/// Runs fn(begin_i, end_i) on disjoint chunks covering [begin, end).
/// Falls back to a serial call when the range is small, the caller's
/// thread budget is 1, or the caller is already inside a parallel region.
/// fn must be safe to invoke concurrently on disjoint ranges.
template <typename Fn>
void parallel_for(std::int64_t begin, std::int64_t end, const Fn& fn,
                  std::int64_t grain = 1) {
  if (begin >= end) return;
  if (end - begin <= grain || detail::in_parallel_region() ||
      parallel_effective_threads() == 1) {
    fn(begin, end);
    return;
  }
  // The adapter captures one reference — guaranteed to fit std::function's
  // small-buffer storage, so no allocation on the dispatch path.
  detail::parallel_run(begin, end, grain,
                       [&fn](std::int64_t b, std::int64_t e) { fn(b, e); });
}

}  // namespace adq
