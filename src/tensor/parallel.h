// Minimal persistent thread pool with a parallel_for primitive.
//
// The pool is created once (lazily) and reused; parallel_for splits [begin,
// end) into contiguous chunks, one per worker. Workloads in adq are large
// regular loops (GEMM row blocks, im2col patches), so static chunking is the
// right trade-off and keeps the scheduler trivial.
#pragma once

#include <cstdint>
#include <functional>

namespace adq {

/// Number of worker threads the pool uses (hardware concurrency, overridable
/// via the ADQ_THREADS environment variable; minimum 1).
int parallel_thread_count();

/// Runs fn(begin_i, end_i) on disjoint chunks covering [begin, end).
/// Falls back to a serial call when the range is small or the pool has a
/// single worker. fn must be safe to invoke concurrently on disjoint ranges.
void parallel_for(std::int64_t begin, std::int64_t end,
                  const std::function<void(std::int64_t, std::int64_t)>& fn,
                  std::int64_t grain = 1);

}  // namespace adq
