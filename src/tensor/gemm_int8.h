// Blocked, multithreaded integer GEMM: u8 x u8 -> i32.
//
// C = A * B over unsigned 8-bit quantization codes (eqn-1 output of the
// quantizer) with 32-bit accumulation. This is the hot loop of the integer
// inference engine (src/infer): every conv (via a u8 im2col) and linear
// layer at <= 8 bits lowers to one of these. The structure mirrors the
// float sgemm in gemm.h — an MR x NR register-accumulator micro-kernel
// under Kc x Nc cache blocking, parallelised over row blocks — but the
// panels are widened to int16 once during packing so the inner loop is a
// pure 16-bit multiply / 32-bit accumulate, which vectorises to wider lanes
// than the float kernel and streams a quarter of the bytes.
//
// Accumulation never overflows: codes are <= 255, so each product is
// <= 65025 and an int32 holds > 33k of them — far beyond any layer's
// reduction depth here.
#pragma once

#include <cstdint>

namespace adq {

/// Portable blocked kernel: C[m x n] = A[m x k] * B[k x n] over u8 codes,
/// writing (not accumulating into) int32 C. Raw-pointer, row-major;
/// lda/ldb/ldc are row strides in elements. This is the reference
/// implementation every other igemm kernel must match bit for bit; the SIMD
/// variants live in src/backend/ and are selected through the backend
/// registry (backend/registry.h, ADQ_BACKEND env), never called directly.
void igemm_u8_generic(std::int64_t m, std::int64_t n, std::int64_t k,
                      const std::uint8_t* a, std::int64_t lda,
                      const std::uint8_t* b, std::int64_t ldb, std::int32_t* c,
                      std::int64_t ldc);

namespace detail {

/// Internal: computes C rows [i0, i0+mc) x columns [j0, j0+nc_total) of
/// the full product, accumulating into the pre-zeroed C.
using GemmBlockFn = void (*)(std::int64_t k, const std::uint8_t* a,
                             std::int64_t lda, const std::uint8_t* b,
                             std::int64_t ldb, std::int32_t* c,
                             std::int64_t ldc, std::int64_t i0,
                             std::int64_t mc, std::int64_t j0,
                             std::int64_t nc_total);

/// Internal: the one cache-blocking driver every igemm_u8 variant runs
/// under — zeroes C, then parallelises over row blocks, or over column
/// blocks when C is wide and short (the batched conv slabs) so every
/// worker still gets work. Kernel TUs differ only in their gemm-block
/// body; keeping the split policy here means a scheduling fix can never
/// apply to one variant and silently miss the others.
void igemm_blocked(std::int64_t m, std::int64_t n, std::int64_t k,
                   const std::uint8_t* a, std::int64_t lda,
                   const std::uint8_t* b, std::int64_t ldb, std::int32_t* c,
                   std::int64_t ldc, GemmBlockFn block);

}  // namespace detail

}  // namespace adq
