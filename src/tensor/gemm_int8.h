// Blocked, multithreaded integer GEMM: u8 x u8 -> i32.
//
// C = A * B over unsigned 8-bit quantization codes (eqn-1 output of the
// quantizer) with 32-bit accumulation. This is the hot loop of the integer
// inference engine (src/infer): every conv (via a u8 im2col) and linear
// layer at <= 8 bits lowers to one of these. The structure mirrors the
// float sgemm in gemm.h — an MR x NR register-accumulator micro-kernel
// under Kc x Nc cache blocking, parallelised over row blocks — but the
// panels are widened to int16 once during packing so the inner loop is a
// pure 16-bit multiply / 32-bit accumulate, which vectorises to wider lanes
// than the float kernel and streams a quarter of the bytes.
//
// Accumulation never overflows: codes are <= 255, so each product is
// <= 65025 and an int32 holds > 33k of them — far beyond any layer's
// reduction depth here.
#pragma once

#include <cstdint>

namespace adq {

/// C[m x n] = A[m x k] * B[k x n] over u8 codes, writing (not accumulating
/// into) int32 C. Raw-pointer, row-major; lda/ldb/ldc are row strides in
/// elements. Dispatches at runtime to the fastest kernel the host supports
/// (AVX-512 VNNI vpdpbusd, then AVX2 vpmaddwd, then the portable blocked
/// kernel); set ADQ_SIMD to generic / avx2 to cap the dispatch for
/// debugging or A/B runs. All variants agree bit for bit.
void igemm_u8(std::int64_t m, std::int64_t n, std::int64_t k,
              const std::uint8_t* a, std::int64_t lda, const std::uint8_t* b,
              std::int64_t ldb, std::int32_t* c, std::int64_t ldc);

// --- implementation variants, exposed for dispatch and equivalence tests ---

/// Portable blocked kernel (what igemm_u8 runs without AVX2).
void igemm_u8_generic(std::int64_t m, std::int64_t n, std::int64_t k,
                      const std::uint8_t* a, std::int64_t lda,
                      const std::uint8_t* b, std::int64_t ldb, std::int32_t* c,
                      std::int64_t ldc);

/// AVX2 kernel: int16 panels consumed in k-pairs by vpmaddwd. Only call
/// when igemm_avx2_available() is true (elsewhere it falls back to the
/// generic kernel on non-x86 builds and is undefined behaviour on x86
/// hosts without AVX2).
void igemm_u8_avx2(std::int64_t m, std::int64_t n, std::int64_t k,
                   const std::uint8_t* a, std::int64_t lda,
                   const std::uint8_t* b, std::int64_t ldb, std::int32_t* c,
                   std::int64_t ldc);

/// True when this build carries the AVX2 kernel and the host executes it.
bool igemm_avx2_available();

/// AVX-512 VNNI kernel: u8 activations against -128-offset s8 weights via
/// vpdpbusd, with the offset corrected from column sums gathered during
/// packing. Only call when igemm_vnni_available() is true (non-x86 builds
/// fall back to the generic kernel).
void igemm_u8_vnni(std::int64_t m, std::int64_t n, std::int64_t k,
                   const std::uint8_t* a, std::int64_t lda,
                   const std::uint8_t* b, std::int64_t ldb, std::int32_t* c,
                   std::int64_t ldc);

/// True when this build carries the VNNI kernel and the host executes it.
bool igemm_vnni_available();

namespace detail {

/// Internal: computes C rows [i0, i0+mc) x columns [j0, j0+nc_total) of
/// the full product, accumulating into the pre-zeroed C.
using GemmBlockFn = void (*)(std::int64_t k, const std::uint8_t* a,
                             std::int64_t lda, const std::uint8_t* b,
                             std::int64_t ldb, std::int32_t* c,
                             std::int64_t ldc, std::int64_t i0,
                             std::int64_t mc, std::int64_t j0,
                             std::int64_t nc_total);

/// Internal: the one cache-blocking driver every igemm_u8 variant runs
/// under — zeroes C, then parallelises over row blocks, or over column
/// blocks when C is wide and short (the batched conv slabs) so every
/// worker still gets work. Kernel TUs differ only in their gemm-block
/// body; keeping the split policy here means a scheduling fix can never
/// apply to one variant and silently miss the others.
void igemm_blocked(std::int64_t m, std::int64_t n, std::int64_t k,
                   const std::uint8_t* a, std::int64_t lda,
                   const std::uint8_t* b, std::int64_t ldb, std::int32_t* c,
                   std::int64_t ldc, GemmBlockFn block);

}  // namespace detail

}  // namespace adq
