// Blocked, multithreaded integer GEMM: u8 x u8 -> i32.
//
// C = A * B over unsigned 8-bit quantization codes (eqn-1 output of the
// quantizer) with 32-bit accumulation. This is the hot loop of the integer
// inference engine (src/infer): every conv (via a u8 im2col) and linear
// layer at <= 8 bits lowers to one of these. The structure mirrors the
// float sgemm in gemm.h — an MR x NR register-accumulator micro-kernel
// under Kc x Nc cache blocking, parallelised over row blocks — but the
// panels are widened to int16 once during packing so the inner loop is a
// pure 16-bit multiply / 32-bit accumulate, which vectorises to wider lanes
// than the float kernel and streams a quarter of the bytes.
//
// Accumulation never overflows: codes are <= 255, so each product is
// <= 65025 and an int32 holds > 33k of them — far beyond any layer's
// reduction depth here.
#pragma once

#include <cstdint>

namespace adq {

/// C[m x n] = A[m x k] * B[k x n] over u8 codes, writing (not accumulating
/// into) int32 C. Raw-pointer, row-major; lda/ldb/ldc are row strides in
/// elements.
void igemm_u8(std::int64_t m, std::int64_t n, std::int64_t k,
              const std::uint8_t* a, std::int64_t lda, const std::uint8_t* b,
              std::int64_t ldb, std::int32_t* c, std::int64_t ldc);

}  // namespace adq
