// Shape-level description of a network, decoupled from trained weights.
//
// Energy models (analytical and PIM) consume only layer geometry, per-layer
// bit-widths, and live channel counts — exactly what a LayerSpec holds. The
// paper's MAC/memory formulas (section IV-A) are implemented here:
//
//   N_mem = N^2 * I + p^2 * I * O
//   N_MAC = M^2 * I * p^2 * O
//
// with I/O replaced by the *active* (unpruned) channel counts so the same
// spec serves Tables II/III/V/VI. Aux layers model ResNet downsample convs:
// they carry real MACs but their bit-width tracks a controller unit (the
// destination conv2 of the block, per Fig 2).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "quant/bitwidth.h"

namespace adq::models {

enum class LayerKind { kConv, kLinear, kDepthwise };

struct LayerSpec {
  std::string name;
  LayerKind kind = LayerKind::kConv;
  std::int64_t in_channels = 0;   // I (linear: in_features)
  std::int64_t out_channels = 0;  // O (linear: out_features)
  std::int64_t kernel = 1;        // p
  std::int64_t in_size = 1;       // N (input feature-map side; linear: 1)
  std::int64_t out_size = 1;      // M
  int bits = 16;
  std::int64_t active_in = 0;   // live input channels (<= in_channels)
  std::int64_t active_out = 0;  // live output channels (<= out_channels)
  bool aux = false;             // downsample conv driven by a controller unit
  int controller = -1;          // unit index whose bits this aux layer follows
  bool removed = false;         // layer dropped entirely (Table II iter 2a)

  /// Paper N_MAC with pruning-aware channel counts. Depthwise convs reduce
  /// only their own channel, so the input-channel factor drops out.
  std::int64_t macs() const {
    if (removed) return 0;
    if (kind == LayerKind::kDepthwise) {
      return out_size * out_size * kernel * kernel * active_out;
    }
    return out_size * out_size * active_in * kernel * kernel * active_out;
  }

  /// Paper N_mem with pruning-aware channel counts (depthwise weights are
  /// one kernel^2 filter per channel).
  std::int64_t mem_accesses() const {
    if (removed) return 0;
    if (kind == LayerKind::kDepthwise) {
      return in_size * in_size * active_in + kernel * kernel * active_out;
    }
    return in_size * in_size * active_in + kernel * kernel * active_in * active_out;
  }
};

struct ModelSpec {
  std::string name;
  std::vector<LayerSpec> layers;

  /// Indices of non-aux layers, i.e. the layers that correspond 1:1 with the
  /// model's quantizable units (the order the paper's tables list).
  std::vector<int> unit_layers() const;

  std::int64_t total_macs() const;
  std::int64_t total_mem_accesses() const;

  /// Applies a per-unit bit policy: unit layer i gets policy.at(i); aux
  /// layers inherit from their controller.
  void apply_bits(const quant::BitWidthPolicy& policy);

  /// Applies per-unit live output channel counts and propagates them to the
  /// consumers' active_in (chain assumption: unit i feeds unit i+1; aux
  /// layers share their controller's output count).
  void apply_channels(const std::vector<std::int64_t>& active_out_per_unit);

  /// Copy with every layer forced to `bits` (the 16-bit baselines).
  ModelSpec with_uniform_bits(int bits) const;

  /// Copy with all bit-widths rounded up to the PIM grid {2,4,8,16}.
  ModelSpec hardware_rounded() const;

  /// Per-unit bit vector (for table printing).
  std::vector<int> unit_bits() const;
};

}  // namespace adq::models
