#include "models/spec.h"

#include <stdexcept>

namespace adq::models {

std::vector<int> ModelSpec::unit_layers() const {
  std::vector<int> idx;
  for (int i = 0; i < static_cast<int>(layers.size()); ++i) {
    if (!layers[static_cast<std::size_t>(i)].aux) idx.push_back(i);
  }
  return idx;
}

std::int64_t ModelSpec::total_macs() const {
  std::int64_t total = 0;
  for (const LayerSpec& l : layers) total += l.macs();
  return total;
}

std::int64_t ModelSpec::total_mem_accesses() const {
  std::int64_t total = 0;
  for (const LayerSpec& l : layers) total += l.mem_accesses();
  return total;
}

void ModelSpec::apply_bits(const quant::BitWidthPolicy& policy) {
  const std::vector<int> units = unit_layers();
  if (policy.size() != static_cast<int>(units.size())) {
    throw std::invalid_argument("ModelSpec::apply_bits: policy size " +
                                std::to_string(policy.size()) + " != units " +
                                std::to_string(units.size()));
  }
  for (int u = 0; u < policy.size(); ++u) {
    layers[static_cast<std::size_t>(units[static_cast<std::size_t>(u)])].bits =
        policy.at(u);
  }
  for (LayerSpec& l : layers) {
    if (l.aux) {
      if (l.controller < 0 || l.controller >= static_cast<int>(units.size())) {
        throw std::logic_error("ModelSpec: aux layer without valid controller");
      }
      l.bits = policy.at(l.controller);
    }
  }
}

void ModelSpec::apply_channels(const std::vector<std::int64_t>& active_out_per_unit) {
  const std::vector<int> units = unit_layers();
  if (active_out_per_unit.size() != units.size()) {
    throw std::invalid_argument("ModelSpec::apply_channels: size mismatch");
  }
  for (std::size_t u = 0; u < units.size(); ++u) {
    LayerSpec& l = layers[static_cast<std::size_t>(units[u])];
    const std::int64_t n = active_out_per_unit[u];
    if (n < 1 || n > l.out_channels) {
      throw std::invalid_argument("ModelSpec::apply_channels: " + l.name +
                                  " count " + std::to_string(n) + " out of range");
    }
    l.active_out = n;
    if (u + 1 < units.size()) {
      LayerSpec& next = layers[static_cast<std::size_t>(units[u + 1])];
      // Linear consumers flatten C*H*W features; scale fan-in proportionally.
      if (next.kind == LayerKind::kLinear) {
        next.active_in = next.in_channels * n / l.out_channels;
      } else {
        next.active_in = n;
      }
    }
  }
  for (LayerSpec& l : layers) {
    if (l.aux) l.active_out = layers[static_cast<std::size_t>(unit_layers()[static_cast<std::size_t>(l.controller)])].active_out;
  }
}

ModelSpec ModelSpec::with_uniform_bits(int bits) const {
  ModelSpec out = *this;
  for (LayerSpec& l : out.layers) l.bits = bits;
  return out;
}

ModelSpec ModelSpec::hardware_rounded() const {
  ModelSpec out = *this;
  for (LayerSpec& l : out.layers) l.bits = quant::round_to_hardware_bits(l.bits);
  return out;
}

std::vector<int> ModelSpec::unit_bits() const {
  std::vector<int> bits;
  for (int i : unit_layers()) bits.push_back(layers[static_cast<std::size_t>(i)].bits);
  return bits;
}

}  // namespace adq::models
