#include "models/vgg.h"

#include <algorithm>
#include <cmath>

#include "nn/flatten.h"
#include "nn/init.h"
#include "nn/pool.h"

namespace adq::models {
namespace {

// VGG19 CIFAR body: channel per conv, pool after these conv indices.
constexpr std::int64_t kChannels[16] = {64,  64,  128, 128, 256, 256, 256, 256,
                                        512, 512, 512, 512, 512, 512, 512, 512};
constexpr bool kPoolAfter[16] = {false, true, false, true, false, false, false,
                                 true,  false, false, false, true, false, false,
                                 false, true};

std::int64_t scaled(std::int64_t c, double width_mult) {
  return std::max<std::int64_t>(1, std::llround(c * width_mult));
}

}  // namespace

ModelSpec vgg19_spec(const VggConfig& cfg) {
  ModelSpec spec;
  spec.name = "vgg19";
  std::int64_t in_c = cfg.in_channels;
  std::int64_t size = cfg.input_size;
  for (int i = 0; i < 16; ++i) {
    const std::int64_t out_c = scaled(kChannels[i], cfg.width_mult);
    LayerSpec l;
    l.name = "conv" + std::to_string(i + 1);
    l.kind = LayerKind::kConv;
    l.in_channels = in_c;
    l.out_channels = out_c;
    l.kernel = 3;
    l.in_size = size;
    l.out_size = size;  // 3x3, stride 1, pad 1
    l.bits = cfg.initial_bits;
    l.active_in = in_c;
    l.active_out = out_c;
    spec.layers.push_back(l);
    in_c = out_c;
    if (kPoolAfter[i] && size >= 2) size /= 2;
  }
  LayerSpec fc;
  fc.name = "fc";
  fc.kind = LayerKind::kLinear;
  fc.in_channels = in_c * size * size;
  fc.out_channels = cfg.num_classes;
  fc.kernel = 1;
  fc.in_size = 1;
  fc.out_size = 1;
  fc.bits = cfg.initial_bits;
  fc.active_in = fc.in_channels;
  fc.active_out = cfg.num_classes;
  spec.layers.push_back(fc);
  return spec;
}

std::unique_ptr<QuantizableModel> build_vgg19(const VggConfig& cfg, Rng& rng) {
  auto net = std::make_unique<nn::Sequential>("vgg19");
  std::vector<std::unique_ptr<QuantUnit>> units;

  std::int64_t in_c = cfg.in_channels;
  std::int64_t size = cfg.input_size;
  for (int i = 0; i < 16; ++i) {
    const std::int64_t out_c = scaled(kChannels[i], cfg.width_mult);
    const std::string base = "conv" + std::to_string(i + 1);
    auto unit = std::make_unique<QuantUnit>();
    unit->name = base;
    unit->role = UnitRole::kConv;
    unit->frozen = (i == 0);  // first conv is never quantized
    unit->conv = net->emplace<nn::Conv2d>(in_c, out_c, 3, 1, 1,
                                          /*use_bias=*/!cfg.use_batchnorm, base);
    unit->bn = cfg.use_batchnorm
                   ? net->emplace<nn::BatchNorm2d>(out_c, 0.1f, 1e-5f, base + ".bn")
                   : nullptr;
    unit->relu = net->emplace<nn::ReLU>(base + ".relu");
    unit->relu->attach_meter(&unit->meter);
    unit->conv->set_bits(cfg.initial_bits);
    if (unit->frozen) unit->conv->set_quantization_enabled(false);
    nn::init_conv(*unit->conv, rng);
    units.push_back(std::move(unit));
    in_c = out_c;
    if (kPoolAfter[i] && size >= 2) {
      net->emplace<nn::MaxPool2d>(2, 2, "pool" + std::to_string(i + 1));
      size /= 2;
    }
  }
  net->emplace<nn::Flatten>();
  auto fc_unit = std::make_unique<QuantUnit>();
  fc_unit->name = "fc";
  fc_unit->role = UnitRole::kLinear;
  fc_unit->frozen = true;  // final FC is never quantized
  fc_unit->linear = net->emplace<nn::Linear>(in_c * size * size,
                                             cfg.num_classes, /*use_bias=*/true,
                                             "fc");
  fc_unit->linear->attach_meter(&fc_unit->meter);
  fc_unit->linear->set_bits(cfg.initial_bits);
  fc_unit->linear->set_quantization_enabled(false);
  nn::init_linear(*fc_unit->linear, rng);
  units.push_back(std::move(fc_unit));

  return std::make_unique<QuantizableModel>("vgg19", std::move(net),
                                            std::move(units), vgg19_spec(cfg));
}

}  // namespace adq::models
