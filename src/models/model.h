// QuantizableModel: a trainable network plus the per-layer bookkeeping that
// Algorithm 1 operates on.
//
// Each *unit* is one quantizable layer in the paper's sense — a conv or the
// final FC — bundled with its AD meter, the BN/ReLU it owns for pruning
// masks, and a `frozen` flag (first conv and final FC are never quantized).
// The model also carries a ModelSpec mirroring the built network so energy
// models always see the current bits/channels.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ad/density_meter.h"
#include "models/spec.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/depthwise.h"
#include "nn/linear.h"
#include "nn/residual.h"
#include "nn/sequential.h"
#include "quant/bitwidth.h"

namespace adq::models {

enum class UnitRole {
  kConv,        // plain conv (VGG body, ResNet stem, pointwise 1x1)
  kBlockConv1,  // first conv of a residual block
  kBlockConv2,  // second conv of a residual block (skip destination)
  kDepthwise,   // depthwise spatial conv (MobileNet-style blocks)
  kLinear,      // fully connected
};

struct QuantUnit {
  std::string name;
  UnitRole role = UnitRole::kConv;
  bool frozen = false;   // exempt from eqn-3 updates (first/last layer rule)
  bool removed = false;  // layer dropped entirely (Table II iter 2a)

  nn::Conv2d* conv = nullptr;      // set for conv roles
  nn::DepthwiseConv2d* dwconv = nullptr;  // set for kDepthwise
  nn::Linear* linear = nullptr;    // set for kLinear
  nn::BatchNorm2d* bn = nullptr;   // BN paired with the conv (pruning mask)
  nn::ReLU* relu = nullptr;        // post-activation carrying the meter
  nn::ResidualBlock* block = nullptr;  // owning block for block roles

  ad::DensityMeter meter;

  int bits() const;
  void set_bits(int bits);
  void set_quantization_enabled(bool enabled);

  std::int64_t out_channels() const;
  std::int64_t active_out_channels() const;
  /// Applies an eqn-5 channel mask (no-op for kLinear).
  void set_active_out_channels(std::int64_t n);
};

class QuantizableModel {
 public:
  QuantizableModel(std::string name, std::unique_ptr<nn::Sequential> net,
                   std::vector<std::unique_ptr<QuantUnit>> units,
                   ModelSpec spec);

  const std::string& name() const { return name_; }
  nn::Sequential& net() { return *net_; }
  const nn::Sequential& net() const { return *net_; }
  ModelSpec& spec() { return spec_; }
  const ModelSpec& spec() const { return spec_; }

  Tensor forward(const Tensor& x) { return net_->forward(x); }
  Tensor backward(const Tensor& grad) { return net_->backward(grad); }
  void set_training(bool training) { net_->set_training(training); }

  std::vector<nn::Parameter*> parameters();

  int unit_count() const { return static_cast<int>(units_.size()); }
  QuantUnit& unit(int i) { return *units_.at(static_cast<std::size_t>(i)); }
  const QuantUnit& unit(int i) const { return *units_.at(static_cast<std::size_t>(i)); }

  /// Current per-unit bit-widths.
  quant::BitWidthPolicy bit_policy() const;

  /// Applies a bit policy to the layers (frozen units still receive their
  /// policy entry — the controller is responsible for keeping them fixed)
  /// and mirrors it into the spec.
  void apply_bit_policy(const quant::BitWidthPolicy& policy);

  /// Per-unit frozen flags, aligned with bit_policy().
  std::vector<bool> frozen_mask() const;

  /// Per-unit AD of the current epoch accumulation, committed to history.
  std::vector<double> commit_epoch_densities();

  /// Per-unit latest committed AD.
  std::vector<double> latest_densities() const;

  /// Per-unit AD histories (for saturation tests and Fig 1/3/4 dumps).
  std::vector<std::vector<double>> density_histories() const;

  /// Network-total AD of the last committed epoch: aggregate nonzero/total
  /// across units (the paper's "Total AD" column averages utilisation).
  double total_density() const;

  /// Clears meters (new quantization iteration).
  void reset_meters();

  /// Enables/disables AD observation (e.g. off during eval).
  void set_meters_active(bool active);

  /// Applies eqn-5 channel counts per unit and mirrors into the spec.
  void apply_channel_policy(const std::vector<std::int64_t>& channels);

  /// Current per-unit active output channels.
  std::vector<std::int64_t> channel_policy() const;

  /// Removes a unit entirely (paper Table II iteration 2a: a layer whose AD
  /// collapses under extreme quantization contributes nothing and is
  /// dropped). Only shape-preserving plain convs can be removed; the layer
  /// becomes an identity in the graph, is frozen for eqn-3 purposes, and
  /// its spec entry stops contributing MACs/memory to every energy model.
  void remove_unit(int i);

 private:
  std::string name_;
  std::unique_ptr<nn::Sequential> net_;
  std::vector<std::unique_ptr<QuantUnit>> units_;
  ModelSpec spec_;
};

}  // namespace adq::models
