// ResNet18 builder (CIFAR variant: 3x3 stem without max-pool, four stages of
// two basic blocks each at 64/128/256/512 channels, global average pool,
// FC head). Quantizable units: stem conv + 16 block convs + FC = 18, with
// downsample convs tracked as aux spec layers that follow their block's
// conv2 bits (Fig 2).
#pragma once

#include <memory>

#include "models/model.h"
#include "tensor/rng.h"

namespace adq::models {

struct ResNetConfig {
  std::int64_t input_size = 32;
  std::int64_t in_channels = 3;
  std::int64_t num_classes = 100;
  double width_mult = 1.0;
  int initial_bits = 16;
};

/// Number of quantizable units (stem + 8 blocks x 2 convs + FC).
inline constexpr int kResNet18Units = 18;

ModelSpec resnet18_spec(const ResNetConfig& cfg);

std::unique_ptr<QuantizableModel> build_resnet18(const ResNetConfig& cfg, Rng& rng);

}  // namespace adq::models
