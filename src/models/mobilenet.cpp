#include "models/mobilenet.h"

#include <algorithm>
#include <cmath>

#include "nn/depthwise.h"
#include "nn/init.h"
#include "nn/pool.h"

namespace adq::models {
namespace {

// Per-block pointwise output channels and depthwise strides (CIFAR scale:
// two stride-2 stages take 32x32 down to 8x8 before global pooling).
constexpr std::int64_t kBlockChannels[5] = {64, 128, 128, 256, 256};
constexpr std::int64_t kBlockStrides[5] = {1, 2, 1, 2, 1};
constexpr std::int64_t kStemChannels = 32;

std::int64_t scaled(std::int64_t c, double width_mult) {
  return std::max<std::int64_t>(1, std::llround(c * width_mult));
}

}  // namespace

ModelSpec mobilenet_small_spec(const MobileNetConfig& cfg) {
  ModelSpec spec;
  spec.name = "mobilenet_small";
  std::int64_t size = cfg.input_size;
  const std::int64_t stem_c = scaled(kStemChannels, cfg.width_mult);

  LayerSpec stem;
  stem.name = "stem";
  stem.kind = LayerKind::kConv;
  stem.in_channels = cfg.in_channels;
  stem.out_channels = stem_c;
  stem.kernel = 3;
  stem.in_size = size;
  stem.out_size = size;
  stem.bits = cfg.initial_bits;
  stem.active_in = cfg.in_channels;
  stem.active_out = stem_c;
  spec.layers.push_back(stem);

  std::int64_t in_c = stem_c;
  for (int b = 0; b < 5; ++b) {
    const std::int64_t out_c = scaled(kBlockChannels[b], cfg.width_mult);
    const std::int64_t stride = kBlockStrides[b];
    const std::int64_t out_size = size / stride;
    const std::string base = "b" + std::to_string(b + 1);

    LayerSpec dw;
    dw.name = base + ".dw";
    dw.kind = LayerKind::kDepthwise;
    dw.in_channels = in_c;
    dw.out_channels = in_c;
    dw.kernel = 3;
    dw.in_size = size;
    dw.out_size = out_size;
    dw.bits = cfg.initial_bits;
    dw.active_in = in_c;
    dw.active_out = in_c;
    spec.layers.push_back(dw);

    LayerSpec pw;
    pw.name = base + ".pw";
    pw.kind = LayerKind::kConv;
    pw.in_channels = in_c;
    pw.out_channels = out_c;
    pw.kernel = 1;
    pw.in_size = out_size;
    pw.out_size = out_size;
    pw.bits = cfg.initial_bits;
    pw.active_in = in_c;
    pw.active_out = out_c;
    spec.layers.push_back(pw);

    in_c = out_c;
    size = out_size;
  }

  LayerSpec fc;
  fc.name = "fc";
  fc.kind = LayerKind::kLinear;
  fc.in_channels = in_c;  // after global average pooling
  fc.out_channels = cfg.num_classes;
  fc.kernel = 1;
  fc.in_size = 1;
  fc.out_size = 1;
  fc.bits = cfg.initial_bits;
  fc.active_in = in_c;
  fc.active_out = cfg.num_classes;
  spec.layers.push_back(fc);
  return spec;
}

std::unique_ptr<QuantizableModel> build_mobilenet_small(
    const MobileNetConfig& cfg, Rng& rng) {
  auto net = std::make_unique<nn::Sequential>("mobilenet_small");
  std::vector<std::unique_ptr<QuantUnit>> units;
  const std::int64_t stem_c = scaled(kStemChannels, cfg.width_mult);

  auto stem = std::make_unique<QuantUnit>();
  stem->name = "stem";
  stem->role = UnitRole::kConv;
  stem->frozen = true;  // first conv is never quantized
  stem->conv = net->emplace<nn::Conv2d>(cfg.in_channels, stem_c, 3, 1, 1,
                                        /*use_bias=*/false, "stem");
  stem->bn = net->emplace<nn::BatchNorm2d>(stem_c, 0.1f, 1e-5f, "stem.bn");
  stem->relu = net->emplace<nn::ReLU>("stem.relu");
  stem->relu->attach_meter(&stem->meter);
  stem->conv->set_bits(cfg.initial_bits);
  stem->conv->set_quantization_enabled(false);
  nn::init_conv(*stem->conv, rng);
  units.push_back(std::move(stem));

  std::int64_t in_c = stem_c;
  for (int b = 0; b < 5; ++b) {
    const std::int64_t out_c = scaled(kBlockChannels[b], cfg.width_mult);
    const std::int64_t stride = kBlockStrides[b];
    const std::string base = "b" + std::to_string(b + 1);

    auto dw = std::make_unique<QuantUnit>();
    dw->name = base + ".dw";
    dw->role = UnitRole::kDepthwise;
    dw->dwconv = net->emplace<nn::DepthwiseConv2d>(in_c, 3, stride, 1,
                                                   /*use_bias=*/false,
                                                   base + ".dw");
    dw->bn = net->emplace<nn::BatchNorm2d>(in_c, 0.1f, 1e-5f, base + ".dw_bn");
    dw->relu = net->emplace<nn::ReLU>(base + ".dw_relu");
    dw->relu->attach_meter(&dw->meter);
    dw->dwconv->set_bits(cfg.initial_bits);
    nn::init_depthwise(*dw->dwconv, rng);
    units.push_back(std::move(dw));

    auto pw = std::make_unique<QuantUnit>();
    pw->name = base + ".pw";
    pw->role = UnitRole::kConv;
    pw->conv = net->emplace<nn::Conv2d>(in_c, out_c, 1, 1, 0,
                                        /*use_bias=*/false, base + ".pw");
    pw->bn = net->emplace<nn::BatchNorm2d>(out_c, 0.1f, 1e-5f, base + ".pw_bn");
    pw->relu = net->emplace<nn::ReLU>(base + ".pw_relu");
    pw->relu->attach_meter(&pw->meter);
    pw->conv->set_bits(cfg.initial_bits);
    nn::init_conv(*pw->conv, rng);
    units.push_back(std::move(pw));

    in_c = out_c;
  }

  net->emplace<nn::GlobalAvgPool>("gap");
  auto fc_unit = std::make_unique<QuantUnit>();
  fc_unit->name = "fc";
  fc_unit->role = UnitRole::kLinear;
  fc_unit->frozen = true;  // final FC is never quantized
  fc_unit->linear = net->emplace<nn::Linear>(in_c, cfg.num_classes,
                                             /*use_bias=*/true, "fc");
  fc_unit->linear->attach_meter(&fc_unit->meter);
  fc_unit->linear->set_bits(cfg.initial_bits);
  fc_unit->linear->set_quantization_enabled(false);
  nn::init_linear(*fc_unit->linear, rng);
  units.push_back(std::move(fc_unit));

  return std::make_unique<QuantizableModel>("mobilenet_small", std::move(net),
                                            std::move(units),
                                            mobilenet_small_spec(cfg));
}

}  // namespace adq::models
