#include "models/model.h"

#include <stdexcept>

namespace adq::models {

int QuantUnit::bits() const {
  if (conv != nullptr) return conv->bits();
  if (dwconv != nullptr) return dwconv->bits();
  if (linear != nullptr) return linear->bits();
  throw std::logic_error("QuantUnit " + name + ": no layer bound");
}

void QuantUnit::set_bits(int b) {
  switch (role) {
    case UnitRole::kConv:
    case UnitRole::kBlockConv1:
      conv->set_bits(b);
      break;
    case UnitRole::kBlockConv2:
      // Destination of the block's skip: also retargets the skip quantizer
      // and the downsample conv (Fig 2).
      block->set_bits_conv2(b);
      break;
    case UnitRole::kDepthwise:
      dwconv->set_bits(b);
      break;
    case UnitRole::kLinear:
      linear->set_bits(b);
      break;
  }
}

void QuantUnit::set_quantization_enabled(bool enabled) {
  if (conv != nullptr) conv->set_quantization_enabled(enabled);
  if (dwconv != nullptr) dwconv->set_quantization_enabled(enabled);
  if (linear != nullptr) linear->set_quantization_enabled(enabled);
}

std::int64_t QuantUnit::out_channels() const {
  if (conv != nullptr) return conv->out_channels();
  if (dwconv != nullptr) return dwconv->channels();
  if (linear != nullptr) return linear->out_features();
  throw std::logic_error("QuantUnit " + name + ": no layer bound");
}

std::int64_t QuantUnit::active_out_channels() const {
  if (conv != nullptr) return conv->active_out_channels();
  if (dwconv != nullptr) return dwconv->active_out_channels();
  if (linear != nullptr) return linear->out_features();
  throw std::logic_error("QuantUnit " + name + ": no layer bound");
}

void QuantUnit::set_active_out_channels(std::int64_t n) {
  switch (role) {
    case UnitRole::kConv:
      conv->set_active_out_channels(n);
      if (bn != nullptr) bn->set_active_channels(n);
      if (relu != nullptr) relu->set_metered_channels(n);
      break;
    case UnitRole::kDepthwise:
      dwconv->set_active_out_channels(n);
      if (bn != nullptr) bn->set_active_channels(n);
      if (relu != nullptr) relu->set_metered_channels(n);
      break;
    case UnitRole::kBlockConv1:
      block->set_active_mid_channels(n);
      break;
    case UnitRole::kBlockConv2:
      block->set_active_out_channels(n);
      break;
    case UnitRole::kLinear:
      break;  // the paper never prunes the FC head
  }
}

QuantizableModel::QuantizableModel(std::string name,
                                   std::unique_ptr<nn::Sequential> net,
                                   std::vector<std::unique_ptr<QuantUnit>> units,
                                   ModelSpec spec)
    : name_(std::move(name)),
      net_(std::move(net)),
      units_(std::move(units)),
      spec_(std::move(spec)) {
  if (spec_.unit_layers().size() != units_.size()) {
    throw std::invalid_argument(name_ + ": spec unit count " +
                                std::to_string(spec_.unit_layers().size()) +
                                " != units " + std::to_string(units_.size()));
  }
}

std::vector<nn::Parameter*> QuantizableModel::parameters() {
  std::vector<nn::Parameter*> params;
  net_->collect_parameters(params);
  return params;
}

quant::BitWidthPolicy QuantizableModel::bit_policy() const {
  std::vector<int> bits;
  bits.reserve(units_.size());
  for (const auto& u : units_) bits.push_back(u->bits());
  return quant::BitWidthPolicy(std::move(bits));
}

void QuantizableModel::apply_bit_policy(const quant::BitWidthPolicy& policy) {
  if (policy.size() != unit_count()) {
    throw std::invalid_argument(name_ + ": policy size mismatch");
  }
  for (int i = 0; i < unit_count(); ++i) units_[static_cast<std::size_t>(i)]->set_bits(policy.at(i));
  spec_.apply_bits(policy);
}

std::vector<bool> QuantizableModel::frozen_mask() const {
  std::vector<bool> frozen;
  frozen.reserve(units_.size());
  for (const auto& u : units_) frozen.push_back(u->frozen);
  return frozen;
}

std::vector<double> QuantizableModel::commit_epoch_densities() {
  std::vector<double> out;
  out.reserve(units_.size());
  for (auto& u : units_) out.push_back(u->meter.commit_epoch());
  return out;
}

std::vector<double> QuantizableModel::latest_densities() const {
  std::vector<double> out;
  out.reserve(units_.size());
  for (const auto& u : units_) out.push_back(u->meter.latest());
  return out;
}

std::vector<std::vector<double>> QuantizableModel::density_histories() const {
  std::vector<std::vector<double>> out;
  out.reserve(units_.size());
  for (const auto& u : units_) out.push_back(u->meter.history());
  return out;
}

double QuantizableModel::total_density() const {
  // Unweighted mean across units, matching the paper's "overall AD averaged
  // across all layers" description.
  const std::vector<double> d = latest_densities();
  if (d.empty()) return 0.0;
  double s = 0.0;
  for (double v : d) s += v;
  return s / static_cast<double>(d.size());
}

void QuantizableModel::reset_meters() {
  for (auto& u : units_) u->meter.reset();
}

void QuantizableModel::set_meters_active(bool active) {
  for (auto& u : units_) u->meter.set_active(active);
}

void QuantizableModel::apply_channel_policy(const std::vector<std::int64_t>& channels) {
  if (channels.size() != units_.size()) {
    throw std::invalid_argument(name_ + ": channel policy size mismatch");
  }
  for (std::size_t i = 0; i < units_.size(); ++i) {
    if (units_[i]->role != UnitRole::kLinear) {
      units_[i]->set_active_out_channels(channels[i]);
    }
  }
  spec_.apply_channels(channels);
}

void QuantizableModel::remove_unit(int i) {
  QuantUnit& u = unit(i);
  if (u.role != UnitRole::kConv || u.conv == nullptr) {
    throw std::invalid_argument(name_ + ": only plain conv units can be removed");
  }
  u.conv->set_bypassed(true);  // validates shape preservation
  if (u.bn != nullptr) u.bn->set_bypassed(true);
  // The following ReLU is idempotent on an already-rectified input, so it
  // can stay; freezing stops eqn-3 from updating a layer that no longer
  // exists.
  u.frozen = true;
  u.removed = true;
  spec_.layers[static_cast<std::size_t>(spec_.unit_layers()[static_cast<std::size_t>(i)])]
      .removed = true;
}

std::vector<std::int64_t> QuantizableModel::channel_policy() const {
  std::vector<std::int64_t> out;
  out.reserve(units_.size());
  for (const auto& u : units_) out.push_back(u->active_out_channels());
  return out;
}

}  // namespace adq::models
