// MobileNet-style depthwise-separable CIFAR model.
//
// A stem conv followed by depthwise-separable blocks — depthwise 3x3
// (spatial) then pointwise 1x1 (channel mixing), each with BN + ReLU — and
// a GAP + FC head. This is the topology the old dynamic_cast compiler could
// not express; it exists to prove the graph pipeline is retargetable:
// every depthwise and pointwise conv is a quantizable unit with its own AD
// meter, so Algorithm 1 allocates bits for it exactly like for VGG/ResNet,
// and infer::compile lowers it through the same IR passes to the integer
// engine.
#pragma once

#include <memory>

#include "models/model.h"
#include "tensor/rng.h"

namespace adq::models {

struct MobileNetConfig {
  std::int64_t input_size = 32;
  std::int64_t in_channels = 3;
  std::int64_t num_classes = 10;
  double width_mult = 1.0;
  int initial_bits = 16;
};

/// Quantizable units: stem + 5 x (depthwise + pointwise) + FC.
inline constexpr int kMobileNetSmallUnits = 12;

/// Shape-only spec (no weights allocated).
ModelSpec mobilenet_small_spec(const MobileNetConfig& cfg);

/// Trainable model with units, meters, and Kaiming init.
std::unique_ptr<QuantizableModel> build_mobilenet_small(
    const MobileNetConfig& cfg, Rng& rng);

}  // namespace adq::models
