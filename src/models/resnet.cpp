#include "models/resnet.h"

#include <algorithm>
#include <cmath>

#include "nn/flatten.h"
#include "nn/init.h"
#include "nn/pool.h"

namespace adq::models {
namespace {

constexpr std::int64_t kStageChannels[4] = {64, 128, 256, 512};

std::int64_t scaled(std::int64_t c, double width_mult) {
  return std::max<std::int64_t>(1, std::llround(c * width_mult));
}

}  // namespace

ModelSpec resnet18_spec(const ResNetConfig& cfg) {
  ModelSpec spec;
  spec.name = "resnet18";
  std::int64_t size = cfg.input_size;
  const std::int64_t stem_c = scaled(64, cfg.width_mult);

  LayerSpec stem;
  stem.name = "stem";
  stem.kind = LayerKind::kConv;
  stem.in_channels = cfg.in_channels;
  stem.out_channels = stem_c;
  stem.kernel = 3;
  stem.in_size = size;
  stem.out_size = size;
  stem.bits = cfg.initial_bits;
  stem.active_in = cfg.in_channels;
  stem.active_out = stem_c;
  spec.layers.push_back(stem);

  std::int64_t in_c = stem_c;
  int unit_index = 1;  // unit 0 is the stem
  for (int stage = 0; stage < 4; ++stage) {
    const std::int64_t out_c = scaled(kStageChannels[stage], cfg.width_mult);
    for (int b = 0; b < 2; ++b) {
      const std::int64_t stride = (stage > 0 && b == 0) ? 2 : 1;
      const std::string base = "s" + std::to_string(stage + 1) + "b" + std::to_string(b + 1);
      const std::int64_t out_size = size / stride;

      LayerSpec c1;
      c1.name = base + ".conv1";
      c1.kind = LayerKind::kConv;
      c1.in_channels = in_c;
      c1.out_channels = out_c;
      c1.kernel = 3;
      c1.in_size = size;
      c1.out_size = out_size;
      c1.bits = cfg.initial_bits;
      c1.active_in = in_c;
      c1.active_out = out_c;
      spec.layers.push_back(c1);
      const int conv2_unit = unit_index + 1;

      LayerSpec c2;
      c2.name = base + ".conv2";
      c2.kind = LayerKind::kConv;
      c2.in_channels = out_c;
      c2.out_channels = out_c;
      c2.kernel = 3;
      c2.in_size = out_size;
      c2.out_size = out_size;
      c2.bits = cfg.initial_bits;
      c2.active_in = out_c;
      c2.active_out = out_c;
      spec.layers.push_back(c2);

      if (stride != 1 || in_c != out_c) {
        LayerSpec down;
        down.name = base + ".down";
        down.kind = LayerKind::kConv;
        down.in_channels = in_c;
        down.out_channels = out_c;
        down.kernel = 1;
        down.in_size = size;
        down.out_size = out_size;
        down.bits = cfg.initial_bits;
        down.active_in = in_c;
        down.active_out = out_c;
        down.aux = true;
        down.controller = conv2_unit;  // skip bits follow the destination
        spec.layers.push_back(down);
      }
      in_c = out_c;
      size = out_size;
      unit_index += 2;
    }
  }

  LayerSpec fc;
  fc.name = "fc";
  fc.kind = LayerKind::kLinear;
  fc.in_channels = in_c;  // after global average pooling
  fc.out_channels = cfg.num_classes;
  fc.kernel = 1;
  fc.in_size = 1;
  fc.out_size = 1;
  fc.bits = cfg.initial_bits;
  fc.active_in = in_c;
  fc.active_out = cfg.num_classes;
  spec.layers.push_back(fc);
  return spec;
}

std::unique_ptr<QuantizableModel> build_resnet18(const ResNetConfig& cfg, Rng& rng) {
  auto net = std::make_unique<nn::Sequential>("resnet18");
  std::vector<std::unique_ptr<QuantUnit>> units;
  const std::int64_t stem_c = scaled(64, cfg.width_mult);

  auto stem = std::make_unique<QuantUnit>();
  stem->name = "stem";
  stem->role = UnitRole::kConv;
  stem->frozen = true;  // first conv is never quantized
  stem->conv = net->emplace<nn::Conv2d>(cfg.in_channels, stem_c, 3, 1, 1,
                                        /*use_bias=*/false, "stem");
  stem->bn = net->emplace<nn::BatchNorm2d>(stem_c, 0.1f, 1e-5f, "stem.bn");
  stem->relu = net->emplace<nn::ReLU>("stem.relu");
  stem->relu->attach_meter(&stem->meter);
  stem->conv->set_bits(cfg.initial_bits);
  stem->conv->set_quantization_enabled(false);
  nn::init_conv(*stem->conv, rng);
  units.push_back(std::move(stem));

  std::int64_t in_c = stem_c;
  for (int stage = 0; stage < 4; ++stage) {
    const std::int64_t out_c = scaled(kStageChannels[stage], cfg.width_mult);
    for (int b = 0; b < 2; ++b) {
      const std::int64_t stride = (stage > 0 && b == 0) ? 2 : 1;
      const std::string base = "s" + std::to_string(stage + 1) + "b" + std::to_string(b + 1);
      nn::ResidualBlock* block =
          net->emplace<nn::ResidualBlock>(in_c, out_c, stride, base);
      nn::init_residual_block(*block, rng);

      auto u1 = std::make_unique<QuantUnit>();
      u1->name = base + ".conv1";
      u1->role = UnitRole::kBlockConv1;
      u1->conv = &block->conv1();
      u1->bn = &block->bn1();
      u1->relu = &block->relu1();
      u1->block = block;
      u1->relu->attach_meter(&u1->meter);
      u1->conv->set_bits(cfg.initial_bits);
      units.push_back(std::move(u1));

      auto u2 = std::make_unique<QuantUnit>();
      u2->name = base + ".conv2";
      u2->role = UnitRole::kBlockConv2;
      u2->conv = &block->conv2();
      u2->bn = &block->bn2();
      u2->relu = &block->relu2();
      u2->block = block;
      u2->relu->attach_meter(&u2->meter);
      block->set_bits_conv2(cfg.initial_bits);
      units.push_back(std::move(u2));

      in_c = out_c;
    }
  }

  net->emplace<nn::GlobalAvgPool>("gap");
  auto fc_unit = std::make_unique<QuantUnit>();
  fc_unit->name = "fc";
  fc_unit->role = UnitRole::kLinear;
  fc_unit->frozen = true;  // final FC is never quantized
  fc_unit->linear = net->emplace<nn::Linear>(in_c, cfg.num_classes,
                                             /*use_bias=*/true, "fc");
  fc_unit->linear->attach_meter(&fc_unit->meter);
  fc_unit->linear->set_bits(cfg.initial_bits);
  fc_unit->linear->set_quantization_enabled(false);
  nn::init_linear(*fc_unit->linear, rng);
  units.push_back(std::move(fc_unit));

  return std::make_unique<QuantizableModel>("resnet18", std::move(net),
                                            std::move(units),
                                            resnet18_spec(cfg));
}

}  // namespace adq::models
