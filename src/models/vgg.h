// VGG19 builder (CIFAR variant: 16 conv layers + 1 FC head, BN after every
// conv, max-pool after conv 2/4/8/12/16 — matching the 17-entry bit-width
// vectors of the paper's Table II(a)).
//
// `width_mult` scales every channel count (>= 1 channel) and `input_size`
// the spatial resolution, so the same graph trains at laptop scale while
// `vgg19_spec(cfg_full)` provides the paper-scale shape math for energy
// accounting.
#pragma once

#include <memory>

#include "models/model.h"
#include "tensor/rng.h"

namespace adq::models {

struct VggConfig {
  std::int64_t input_size = 32;
  std::int64_t in_channels = 3;
  std::int64_t num_classes = 10;
  double width_mult = 1.0;
  int initial_bits = 16;
  // BatchNorm keeps post-ReLU density pinned near 0.5 (zero-mean inputs to
  // ReLU). The paper's reported baseline AD (total 0.284) is consistent
  // with a BN-free VGG, where per-layer densities spread out and drift low
  // — the regime that produces genuinely mixed bit-widths. BN-free nets
  // need biased convs and a smaller learning rate.
  bool use_batchnorm = true;
};

/// Number of quantizable units (16 convs + 1 FC).
inline constexpr int kVgg19Units = 17;

/// Shape-only spec (no weights allocated).
ModelSpec vgg19_spec(const VggConfig& cfg);

/// Trainable model with units, meters, and Kaiming init.
std::unique_ptr<QuantizableModel> build_vgg19(const VggConfig& cfg, Rng& rng);

}  // namespace adq::models
