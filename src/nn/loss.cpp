#include "nn/loss.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace adq::nn {

double SoftmaxCrossEntropy::forward(const Tensor& logits,
                                    const std::vector<std::int64_t>& labels) {
  if (logits.shape().rank() != 2) {
    throw std::invalid_argument("SoftmaxCrossEntropy: logits must be rank 2");
  }
  const std::int64_t B = logits.shape().dim(0), C = logits.shape().dim(1);
  if (static_cast<std::int64_t>(labels.size()) != B) {
    throw std::invalid_argument("SoftmaxCrossEntropy: batch/labels mismatch");
  }
  cached_softmax_ = Tensor(logits.shape());
  cached_labels_ = labels;

  double loss = 0.0;
  for (std::int64_t b = 0; b < B; ++b) {
    const float* row = logits.data() + b * C;
    float* srow = cached_softmax_.data() + b * C;
    const float m = *std::max_element(row, row + C);
    double z = 0.0;
    for (std::int64_t c = 0; c < C; ++c) z += std::exp(static_cast<double>(row[c] - m));
    const double log_z = std::log(z);
    for (std::int64_t c = 0; c < C; ++c) {
      srow[c] = static_cast<float>(std::exp(static_cast<double>(row[c] - m)) / z);
    }
    const std::int64_t y = labels[static_cast<std::size_t>(b)];
    if (y < 0 || y >= C) {
      throw std::invalid_argument("SoftmaxCrossEntropy: label out of range");
    }
    loss += -(static_cast<double>(row[y] - m) - log_z);
  }
  return loss / static_cast<double>(B);
}

Tensor SoftmaxCrossEntropy::backward() const {
  const std::int64_t B = cached_softmax_.shape().dim(0);
  const std::int64_t C = cached_softmax_.shape().dim(1);
  Tensor grad = cached_softmax_;
  for (std::int64_t b = 0; b < B; ++b) {
    grad[b * C + cached_labels_[static_cast<std::size_t>(b)]] -= 1.0f;
  }
  const float inv_b = 1.0f / static_cast<float>(B);
  for (std::int64_t i = 0; i < grad.numel(); ++i) grad[i] *= inv_b;
  return grad;
}

}  // namespace adq::nn
