// Depthwise 2-D convolution (channel multiplier 1) with the same
// fake-quantization contract as Conv2d: weights and input activations snap
// to the layer's k-bit eqn-1 grid in forward, backward is straight-through.
//
// Each output channel c convolves ONLY input channel c with its own
// kernel*kernel filter — the spatial half of a depthwise-separable block
// (the pointwise half is a plain 1x1 Conv2d). The old dynamic_cast compiler
// could not express this layer; the graph pipeline lowers it to a
// per-channel integer op with the same zero-point-corrected arithmetic as
// the GEMM path (see infer/plan.h).
//
// Channel masking matches Conv2d: channels >= active_out_channels() are
// forced to zero in forward and their gradients dropped in backward, so
// eqn-5 pruning applies unchanged.
#pragma once

#include "nn/layer.h"
#include "quant/fake_quantizer.h"

namespace adq::nn {

class DepthwiseConv2d : public Layer {
 public:
  DepthwiseConv2d(std::int64_t channels, std::int64_t kernel,
                  std::int64_t stride, std::int64_t pad, bool use_bias,
                  std::string name = "dwconv");

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  std::string name() const override { return name_; }

  std::int64_t channels() const { return channels_; }
  std::int64_t kernel() const { return kernel_; }
  std::int64_t stride() const { return stride_; }
  std::int64_t pad() const { return pad_; }

  /// Weight matrix, [channels, kernel * kernel] — one filter row per channel.
  Parameter& weight() { return weight_; }
  const Parameter& weight() const { return weight_; }
  Parameter* bias() { return use_bias_ ? &bias_ : nullptr; }

  void set_bits(int bits);
  int bits() const { return weight_quant_.bits(); }
  void set_quantization_enabled(bool enabled);
  bool quantization_enabled() const { return weight_quant_.enabled(); }

  void set_active_out_channels(std::int64_t n);
  std::int64_t active_out_channels() const { return active_out_channels_; }

  quant::FakeQuantizer& weight_quantizer() { return weight_quant_; }
  quant::FakeQuantizer& input_quantizer() { return input_quant_; }

 private:
  std::int64_t out_h(std::int64_t h) const {
    return (h + 2 * pad_ - kernel_) / stride_ + 1;
  }
  void mask_pruned_channels(Tensor& nchw) const;

  std::string name_;
  std::int64_t channels_, kernel_, stride_, pad_;
  bool use_bias_;
  std::int64_t active_out_channels_;

  Parameter weight_;
  Parameter bias_;
  quant::FakeQuantizer weight_quant_;
  quant::FakeQuantizer input_quant_;

  // Backward caches (valid between one forward and the next backward).
  Tensor cached_input_q_;
  Tensor cached_weight_q_;
};

}  // namespace adq::nn
