#include "nn/conv2d.h"

#include <mutex>
#include <stdexcept>
#include <vector>

#include "tensor/gemm.h"
#include "tensor/parallel.h"

namespace adq::nn {

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kernel, std::int64_t stride, std::int64_t pad,
               bool use_bias, std::string name)
    : name_(std::move(name)),
      in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      use_bias_(use_bias),
      active_out_channels_(out_channels),
      active_in_channels_(in_channels),
      weight_(name_ + ".weight",
              Shape{out_channels, in_channels * kernel * kernel}),
      bias_(name_ + ".bias", Shape{out_channels}) {}

ConvGeometry Conv2d::geometry(std::int64_t h, std::int64_t w) const {
  ConvGeometry g;
  g.channels = in_channels_;
  g.in_h = h;
  g.in_w = w;
  g.kernel_h = kernel_;
  g.kernel_w = kernel_;
  g.stride = stride_;
  g.pad = pad_;
  return g;
}

void Conv2d::mask_pruned_channels(Tensor& nchw) const {
  if (active_out_channels_ >= out_channels_) return;
  const std::int64_t B = nchw.shape().dim(0);
  const std::int64_t hw = nchw.shape().dim(2) * nchw.shape().dim(3);
  for (std::int64_t b = 0; b < B; ++b) {
    float* base = nchw.data() + (b * out_channels_ + active_out_channels_) * hw;
    std::fill(base, base + (out_channels_ - active_out_channels_) * hw, 0.0f);
  }
}

Tensor Conv2d::forward(const Tensor& x) {
  if (x.shape().rank() != 4 || x.shape().dim(1) != in_channels_) {
    throw std::invalid_argument(name_ + ": expected [B, " +
                                std::to_string(in_channels_) + ", H, W], got " +
                                x.shape().to_string());
  }
  if (bypassed_) return x;
  const std::int64_t B = x.shape().dim(0);
  cached_h_ = x.shape().dim(2);
  cached_w_ = x.shape().dim(3);
  const ConvGeometry g = geometry(cached_h_, cached_w_);
  const std::int64_t oh = g.out_h(), ow = g.out_w(), ohw = oh * ow;
  const std::int64_t P = g.patch_size();

  cached_input_q_ = input_quant_.apply(x);
  cached_weight_q_ = weight_quant_.apply(weight_.value);

  Tensor out(Shape{B, out_channels_, oh, ow});
  const float* wq = cached_weight_q_.data();
  parallel_for(0, B, [&](std::int64_t b0, std::int64_t b1) {
    std::vector<float> col(static_cast<std::size_t>(P * ohw));
    for (std::int64_t b = b0; b < b1; ++b) {
      im2col(cached_input_q_.data() + b * in_channels_ * cached_h_ * cached_w_,
             g, col.data());
      float* out_b = out.data() + b * out_channels_ * ohw;
      sgemm(false, false, out_channels_, ohw, P, 1.0f, wq, P, col.data(), ohw,
            0.0f, out_b, ohw);
      if (use_bias_) {
        for (std::int64_t o = 0; o < out_channels_; ++o) {
          const float bv = bias_.value[o];
          float* row = out_b + o * ohw;
          for (std::int64_t s = 0; s < ohw; ++s) row[s] += bv;
        }
      }
    }
  });
  mask_pruned_channels(out);
  return out;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  if (bypassed_) return grad_out;
  const std::int64_t B = cached_input_q_.shape().dim(0);
  const ConvGeometry g = geometry(cached_h_, cached_w_);
  const std::int64_t oh = g.out_h(), ow = g.out_w(), ohw = oh * ow;
  const std::int64_t P = g.patch_size();
  if (grad_out.shape() != Shape{B, out_channels_, oh, ow}) {
    throw std::invalid_argument(name_ + ": backward shape mismatch " +
                                grad_out.shape().to_string());
  }

  // Pruned channels neither fire nor learn: drop their upstream gradient.
  Tensor grad = grad_out;
  mask_pruned_channels(grad);

  if (use_bias_) {
    for (std::int64_t b = 0; b < B; ++b) {
      const float* gb = grad.data() + b * out_channels_ * ohw;
      for (std::int64_t o = 0; o < out_channels_; ++o) {
        float s = 0.0f;
        const float* row = gb + o * ohw;
        for (std::int64_t i = 0; i < ohw; ++i) s += row[i];
        bias_.grad[o] += s;
      }
    }
  }

  // Weight gradient: per-chunk local accumulators merged under a mutex.
  // STE: the gradient w.r.t. the quantized weight is applied to the float
  // master weight directly.
  std::mutex wgrad_mutex;
  Tensor grad_x(cached_input_q_.shape());
  parallel_for(0, B, [&](std::int64_t b0, std::int64_t b1) {
    std::vector<float> col(static_cast<std::size_t>(P * ohw));
    std::vector<float> local_wgrad(static_cast<std::size_t>(out_channels_ * P), 0.0f);
    std::vector<float> colg(static_cast<std::size_t>(P * ohw));
    for (std::int64_t b = b0; b < b1; ++b) {
      const float* gb = grad.data() + b * out_channels_ * ohw;
      // dW += g_b [O, ohw] * col_b^T [ohw, P]
      im2col(cached_input_q_.data() + b * in_channels_ * cached_h_ * cached_w_,
             g, col.data());
      sgemm(false, true, out_channels_, P, ohw, 1.0f, gb, ohw, col.data(), ohw,
            1.0f, local_wgrad.data(), P);
      // dX_b = W_q^T [P, O] * g_b [O, ohw], scattered by col2im.
      sgemm(true, false, P, ohw, out_channels_, 1.0f, cached_weight_q_.data(),
            P, gb, ohw, 0.0f, colg.data(), ohw);
      float* gx_b = grad_x.data() + b * in_channels_ * cached_h_ * cached_w_;
      col2im(colg.data(), g, gx_b);
    }
    std::lock_guard<std::mutex> lock(wgrad_mutex);
    float* wg = weight_.grad.data();
    for (std::int64_t i = 0; i < out_channels_ * P; ++i) {
      wg[i] += local_wgrad[static_cast<std::size_t>(i)];
    }
  });
  return grad_x;
}

void Conv2d::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&weight_);
  if (use_bias_) out.push_back(&bias_);
}

void Conv2d::set_bits(int bits) {
  weight_quant_.set_bits(bits);
  input_quant_.set_bits(bits);
}

void Conv2d::set_quantization_enabled(bool enabled) {
  weight_quant_.set_enabled(enabled);
  input_quant_.set_enabled(enabled);
}

void Conv2d::set_active_out_channels(std::int64_t n) {
  if (n < 1 || n > out_channels_) {
    throw std::invalid_argument(name_ + ": active_out_channels " +
                                std::to_string(n) + " out of [1, " +
                                std::to_string(out_channels_) + "]");
  }
  active_out_channels_ = n;
}

void Conv2d::set_bypassed(bool bypassed) {
  if (bypassed && (in_channels_ != out_channels_ || stride_ != 1)) {
    throw std::invalid_argument(name_ + ": only shape-preserving convs can be bypassed");
  }
  bypassed_ = bypassed;
}

void Conv2d::set_active_in_channels(std::int64_t n) {
  if (n < 1 || n > in_channels_) {
    throw std::invalid_argument(name_ + ": active_in_channels out of range");
  }
  active_in_channels_ = n;
}

}  // namespace adq::nn
