#include "nn/linear.h"

#include <stdexcept>

#include "tensor/gemm.h"

namespace adq::nn {

Linear::Linear(std::int64_t in_features, std::int64_t out_features,
               bool use_bias, std::string name)
    : name_(std::move(name)),
      in_features_(in_features),
      out_features_(out_features),
      use_bias_(use_bias),
      weight_(name_ + ".weight", Shape{out_features, in_features}),
      bias_(name_ + ".bias", Shape{out_features}) {}

Tensor Linear::forward(const Tensor& x) {
  if (x.shape().rank() != 2 || x.shape().dim(1) != in_features_) {
    throw std::invalid_argument(name_ + ": expected [B, " +
                                std::to_string(in_features_) + "], got " +
                                x.shape().to_string());
  }
  cached_input_q_ = input_quant_.apply(x);
  cached_weight_q_ = weight_quant_.apply(weight_.value);

  // y[B, out] = x_q[B, in] * W_q^T[in, out]
  Tensor out = matmul(cached_input_q_, cached_weight_q_, false, true);
  if (use_bias_) {
    const std::int64_t B = out.shape().dim(0);
    for (std::int64_t b = 0; b < B; ++b) {
      float* row = out.data() + b * out_features_;
      for (std::int64_t o = 0; o < out_features_; ++o) row[o] += bias_.value[o];
    }
  }
  if (training_ && meter_ != nullptr && meter_->active()) meter_->observe(out);
  return out;
}

Tensor Linear::backward(const Tensor& grad_out) {
  const std::int64_t B = cached_input_q_.shape().dim(0);
  if (grad_out.shape() != Shape{B, out_features_}) {
    throw std::invalid_argument(name_ + ": backward shape mismatch " +
                                grad_out.shape().to_string());
  }
  // dW[out, in] += g^T[out, B] * x_q[B, in]   (STE onto the float master)
  sgemm(true, false, out_features_, in_features_, B, 1.0f, grad_out.data(),
        out_features_, cached_input_q_.data(), in_features_, 1.0f,
        weight_.grad.data(), in_features_);
  if (use_bias_) {
    for (std::int64_t b = 0; b < B; ++b) {
      const float* row = grad_out.data() + b * out_features_;
      for (std::int64_t o = 0; o < out_features_; ++o) bias_.grad[o] += row[o];
    }
  }
  // dX[B, in] = g[B, out] * W_q[out, in]
  return matmul(grad_out, cached_weight_q_, false, false);
}

void Linear::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&weight_);
  if (use_bias_) out.push_back(&bias_);
}

void Linear::set_bits(int bits) {
  weight_quant_.set_bits(bits);
  input_quant_.set_bits(bits);
}

void Linear::set_quantization_enabled(bool enabled) {
  weight_quant_.set_enabled(enabled);
  input_quant_.set_enabled(enabled);
}

}  // namespace adq::nn
