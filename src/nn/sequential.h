// Sequential container: owns an ordered list of layers and chains
// forward/backward through them.
#pragma once

#include <memory>
#include <stdexcept>
#include <vector>

#include "nn/layer.h"

namespace adq::nn {

class Sequential : public Layer {
 public:
  explicit Sequential(std::string name = "seq") : name_(std::move(name)) {}

  /// Appends a layer and returns a typed non-owning pointer to it.
  template <typename L, typename... Args>
  L* emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L* raw = layer.get();
    layers_.push_back(std::move(layer));
    return raw;
  }

  void append(std::unique_ptr<Layer> layer) { layers_.push_back(std::move(layer)); }

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  void set_training(bool training) override;
  std::string name() const override { return name_; }

  std::size_t size() const { return layers_.size(); }
  Layer& at(std::size_t i) { return *layers_.at(i); }

  /// Typed access; throws std::bad_cast semantics via runtime_error.
  template <typename L>
  L* get(std::size_t i) {
    L* p = dynamic_cast<L*>(layers_.at(i).get());
    if (p == nullptr) {
      throw std::runtime_error(name_ + ": layer " + std::to_string(i) +
                               " has unexpected type");
    }
    return p;
  }

 private:
  std::string name_;
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace adq::nn
