// Spatial pooling layers: max pooling (VGG) and global average pooling
// (ResNet head). MaxPool caches the argmax of each window for the backward
// scatter; GlobalAvgPool broadcasts the gradient evenly.
#pragma once

#include <vector>

#include "nn/layer.h"

namespace adq::nn {

class MaxPool2d : public Layer {
 public:
  explicit MaxPool2d(std::int64_t kernel = 2, std::int64_t stride = 2,
                     std::string name = "maxpool")
      : name_(std::move(name)), kernel_(kernel), stride_(stride) {}

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return name_; }

  std::int64_t kernel() const { return kernel_; }
  std::int64_t stride() const { return stride_; }

 private:
  std::string name_;
  std::int64_t kernel_, stride_;
  Shape cached_in_shape_;
  std::vector<std::int64_t> cached_argmax_;  // flat input index per output
};

/// [B, C, H, W] -> [B, C]: mean over the spatial extent.
class GlobalAvgPool : public Layer {
 public:
  explicit GlobalAvgPool(std::string name = "gap") : name_(std::move(name)) {}

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return name_; }

 private:
  std::string name_;
  Shape cached_in_shape_;
};

}  // namespace adq::nn
