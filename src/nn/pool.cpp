#include "nn/pool.h"

#include <limits>
#include <stdexcept>

namespace adq::nn {

Tensor MaxPool2d::forward(const Tensor& x) {
  if (x.shape().rank() != 4) {
    throw std::invalid_argument(name_ + ": expected NCHW input");
  }
  const std::int64_t B = x.shape().dim(0), C = x.shape().dim(1);
  const std::int64_t H = x.shape().dim(2), W = x.shape().dim(3);
  if (H < kernel_ || W < kernel_) {
    throw std::invalid_argument(name_ + ": input " + x.shape().to_string() +
                                " smaller than pooling window");
  }
  const std::int64_t oh = (H - kernel_) / stride_ + 1;
  const std::int64_t ow = (W - kernel_) / stride_ + 1;
  cached_in_shape_ = x.shape();
  Tensor out(Shape{B, C, oh, ow});
  cached_argmax_.assign(static_cast<std::size_t>(out.numel()), 0);

  std::int64_t oi = 0;
  for (std::int64_t b = 0; b < B; ++b) {
    for (std::int64_t c = 0; c < C; ++c) {
      const float* plane = x.data() + (b * C + c) * H * W;
      for (std::int64_t y = 0; y < oh; ++y) {
        for (std::int64_t xo = 0; xo < ow; ++xo, ++oi) {
          float best = -std::numeric_limits<float>::infinity();
          std::int64_t best_idx = 0;
          for (std::int64_t ky = 0; ky < kernel_; ++ky) {
            for (std::int64_t kx = 0; kx < kernel_; ++kx) {
              const std::int64_t iy = y * stride_ + ky;
              const std::int64_t ix = xo * stride_ + kx;
              const std::int64_t idx = iy * W + ix;
              if (plane[idx] > best) {
                best = plane[idx];
                best_idx = idx;
              }
            }
          }
          out[oi] = best;
          cached_argmax_[static_cast<std::size_t>(oi)] = (b * C + c) * H * W + best_idx;
        }
      }
    }
  }
  return out;
}

Tensor MaxPool2d::backward(const Tensor& grad_out) {
  if (static_cast<std::size_t>(grad_out.numel()) != cached_argmax_.size()) {
    throw std::invalid_argument(name_ + ": backward size mismatch");
  }
  Tensor grad_x(cached_in_shape_);
  for (std::int64_t i = 0; i < grad_out.numel(); ++i) {
    grad_x[cached_argmax_[static_cast<std::size_t>(i)]] += grad_out[i];
  }
  return grad_x;
}

Tensor GlobalAvgPool::forward(const Tensor& x) {
  if (x.shape().rank() != 4) {
    throw std::invalid_argument(name_ + ": expected NCHW input");
  }
  const std::int64_t B = x.shape().dim(0), C = x.shape().dim(1);
  const std::int64_t hw = x.shape().dim(2) * x.shape().dim(3);
  cached_in_shape_ = x.shape();
  Tensor out(Shape{B, C});
  for (std::int64_t b = 0; b < B; ++b) {
    for (std::int64_t c = 0; c < C; ++c) {
      const float* plane = x.data() + (b * C + c) * hw;
      float s = 0.0f;
      for (std::int64_t i = 0; i < hw; ++i) s += plane[i];
      out[b * C + c] = s / static_cast<float>(hw);
    }
  }
  return out;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_out) {
  const std::int64_t B = cached_in_shape_.dim(0), C = cached_in_shape_.dim(1);
  const std::int64_t hw = cached_in_shape_.dim(2) * cached_in_shape_.dim(3);
  if (grad_out.shape() != Shape{B, C}) {
    throw std::invalid_argument(name_ + ": backward shape mismatch");
  }
  Tensor grad_x(cached_in_shape_);
  for (std::int64_t b = 0; b < B; ++b) {
    for (std::int64_t c = 0; c < C; ++c) {
      const float g = grad_out[b * C + c] / static_cast<float>(hw);
      float* plane = grad_x.data() + (b * C + c) * hw;
      for (std::int64_t i = 0; i < hw; ++i) plane[i] = g;
    }
  }
  return grad_x;
}

}  // namespace adq::nn
