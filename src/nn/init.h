// Weight initialisation.
//
// Kaiming-normal (fan-in, ReLU gain) for conv and linear weights — the
// standard choice for the paper's ReLU networks and important here because
// Algorithm 1 starts from *random* weights (no pre-trained model).
#pragma once

#include "nn/conv2d.h"
#include "nn/depthwise.h"
#include "nn/linear.h"
#include "nn/residual.h"
#include "nn/sequential.h"
#include "tensor/rng.h"

namespace adq::nn {

/// He-normal init: stddev = sqrt(2 / fan_in).
void kaiming_normal(Tensor& weight, std::int64_t fan_in, Rng& rng);

void init_conv(Conv2d& conv, Rng& rng);
void init_depthwise(DepthwiseConv2d& conv, Rng& rng);
void init_linear(Linear& linear, Rng& rng);
void init_residual_block(ResidualBlock& block, Rng& rng);

}  // namespace adq::nn
