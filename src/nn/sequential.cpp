#include "nn/sequential.h"

namespace adq::nn {

Tensor Sequential::forward(const Tensor& x) {
  Tensor h = x;
  for (auto& layer : layers_) h = layer->forward(h);
  return h;
}

Tensor Sequential::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

void Sequential::collect_parameters(std::vector<Parameter*>& out) {
  for (auto& layer : layers_) layer->collect_parameters(out);
}

void Sequential::set_training(bool training) {
  Layer::set_training(training);
  for (auto& layer : layers_) layer->set_training(training);
}

}  // namespace adq::nn
