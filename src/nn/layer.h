// Layer interface for the adq training framework.
//
// adq uses define-by-run manual backprop: forward() caches whatever the
// layer's backward() needs, backward() consumes the cached state, adds into
// parameter gradients, and returns the gradient with respect to the input.
// A forward must be paired with at most one backward before the next
// forward. This is deliberately simpler than a tape autograd — the paper's
// models are static chains/DAGs, and explicitness keeps the quantization
// straight-through estimator visible at the call sites where it acts.
#pragma once

#include <string>
#include <vector>

#include "nn/parameter.h"
#include "tensor/tensor.h"

namespace adq::nn {

class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes the layer output and caches backward state.
  virtual Tensor forward(const Tensor& x) = 0;

  /// Returns d(loss)/d(input) given d(loss)/d(output); accumulates parameter
  /// gradients as a side effect.
  virtual Tensor backward(const Tensor& grad_out) = 0;

  /// Appends non-owning pointers to every trainable parameter.
  virtual void collect_parameters(std::vector<Parameter*>& out) { (void)out; }

  /// Train/eval switch (BatchNorm statistics, AD metering).
  virtual void set_training(bool training) { training_ = training; }
  bool training() const { return training_; }

  virtual std::string name() const = 0;

 protected:
  bool training_ = true;
};

}  // namespace adq::nn
