// ResNet basic block: conv-bn-relu-conv-bn (+ optional 1x1 downsample on
// the skip) -> add -> relu.
//
// Quantization follows the paper's Fig 2: the activations entering the skip
// branch are quantized with the *destination* layer's bit-width, i.e. the
// bits of conv2. set_bits_conv2() therefore also retargets the skip
// quantizer and the downsample conv. The block's AD meter sits on the final
// post-add ReLU — the activation the rest of the network actually consumes.
#pragma once

#include <memory>

#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/relu.h"
#include "quant/fake_quantizer.h"

namespace adq::nn {

class ResidualBlock : public Layer {
 public:
  /// stride > 1 (or in_channels != out_channels) adds a 1x1 conv + BN
  /// downsample path on the skip.
  ResidualBlock(std::int64_t in_channels, std::int64_t out_channels,
                std::int64_t stride, std::string name = "block");

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  void set_training(bool training) override;
  std::string name() const override { return name_; }

  Conv2d& conv1() { return *conv1_; }
  Conv2d& conv2() { return *conv2_; }
  BatchNorm2d& bn1() { return *bn1_; }
  BatchNorm2d& bn2() { return *bn2_; }
  ReLU& relu1() { return *relu1_; }
  ReLU& relu2() { return *relu2_; }
  Conv2d* downsample_conv() { return down_conv_.get(); }
  BatchNorm2d* downsample_bn() { return down_bn_.get(); }
  bool has_downsample() const { return down_conv_ != nullptr; }

  void set_bits_conv1(int bits) { conv1_->set_bits(bits); }

  /// Also retargets the skip-branch quantizer and the downsample conv
  /// (paper Fig 2: skip activations use the destination layer's bits).
  void set_bits_conv2(int bits);

  void set_quantization_enabled(bool enabled);

  quant::FakeQuantizer& skip_quantizer() { return skip_quant_; }

  /// Prunes the block *output* to n channels (eqn 5 applied to conv2): masks
  /// conv2, its BN, the downsample path, and — because an identity skip
  /// could otherwise resurrect a channel — the post-add sum itself.
  void set_active_out_channels(std::int64_t n);
  std::int64_t active_out_channels() const { return active_out_; }

  /// Prunes conv1's output to n channels (masks conv1 + bn1 and limits the
  /// AD meter on relu1 to the live channels).
  void set_active_mid_channels(std::int64_t n);
  std::int64_t active_mid_channels() const { return conv1_->active_out_channels(); }

 private:
  void mask_post_add(Tensor& nchw) const;

  std::string name_;
  std::int64_t active_out_ = 0;  // set in ctor to out_channels
  std::unique_ptr<Conv2d> conv1_;
  std::unique_ptr<BatchNorm2d> bn1_;
  std::unique_ptr<ReLU> relu1_;
  std::unique_ptr<Conv2d> conv2_;
  std::unique_ptr<BatchNorm2d> bn2_;
  std::unique_ptr<ReLU> relu2_;
  std::unique_ptr<Conv2d> down_conv_;
  std::unique_ptr<BatchNorm2d> down_bn_;
  quant::FakeQuantizer skip_quant_;
};

}  // namespace adq::nn
