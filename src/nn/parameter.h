// Trainable parameter: a value tensor paired with its gradient buffer.
//
// Layers own their Parameters; optimizers hold non-owning pointers collected
// via Layer::collect_parameters. The gradient buffer always has the same
// shape as the value and is accumulated into by Layer::backward.
#pragma once

#include <string>

#include "tensor/tensor.h"

namespace adq::nn {

struct Parameter {
  Parameter() = default;
  Parameter(std::string name, Shape shape)
      : name(std::move(name)), value(shape), grad(shape) {}

  std::string name;
  Tensor value;
  Tensor grad;

  void zero_grad() { grad.zero(); }
  std::int64_t numel() const { return value.numel(); }
};

}  // namespace adq::nn
