// ReLU with Activation Density metering.
//
// The paper measures AD on post-ReLU activations (eqn 2), so the meter hook
// lives here: when a DensityMeter is attached and active, every training
// forward accumulates nonzero/total counts of the output. For pruned
// networks only the first `metered_channels` channels are counted, so dead
// (masked) channels do not deflate the density of the surviving ones.
#pragma once

#include "ad/density_meter.h"
#include "nn/layer.h"

namespace adq::nn {

class ReLU : public Layer {
 public:
  explicit ReLU(std::string name = "relu") : name_(std::move(name)) {}

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return name_; }

  /// Attaches a non-owning density meter (nullptr detaches).
  void attach_meter(ad::DensityMeter* meter) { meter_ = meter; }
  ad::DensityMeter* meter() const { return meter_; }

  /// Counts AD only over the first n channels of NCHW outputs (-1 = all).
  void set_metered_channels(std::int64_t n) { metered_channels_ = n; }
  std::int64_t metered_channels() const { return metered_channels_; }

 private:
  void observe(const Tensor& y) const;

  std::string name_;
  ad::DensityMeter* meter_ = nullptr;
  std::int64_t metered_channels_ = -1;
  Tensor cached_mask_;  // 1 where input > 0
};

}  // namespace adq::nn
