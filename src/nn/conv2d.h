// 2-D convolution with integrated fake-quantization and channel masking.
//
// Forward lowers each image with im2col and runs one GEMM per image
// (parallelised over the batch). Quantization-aware training follows the
// paper: both the weights and the input activations are snapped to the
// layer's k-bit grid (eqn 1) before the convolution; backward uses the
// straight-through estimator, i.e. gradients flow through the quantizers
// unchanged.
//
// Channel masking implements AD-based pruning (eqn 5) without rebuilding
// the graph: output channels >= active_out_channels() are forced to zero in
// forward and their gradients are dropped in backward, so pruned channels
// neither fire nor learn. Energy models read the active count.
#pragma once

#include <memory>

#include "nn/layer.h"
#include "quant/fake_quantizer.h"
#include "tensor/im2col.h"

namespace adq::nn {

class Conv2d : public Layer {
 public:
  Conv2d(std::int64_t in_channels, std::int64_t out_channels,
         std::int64_t kernel, std::int64_t stride, std::int64_t pad,
         bool use_bias, std::string name = "conv");

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  std::string name() const override { return name_; }

  std::int64_t in_channels() const { return in_channels_; }
  std::int64_t out_channels() const { return out_channels_; }
  std::int64_t kernel() const { return kernel_; }
  std::int64_t stride() const { return stride_; }
  std::int64_t pad() const { return pad_; }

  /// Weight matrix, [out_channels, in_channels * kernel * kernel].
  Parameter& weight() { return weight_; }
  const Parameter& weight() const { return weight_; }
  Parameter* bias() { return use_bias_ ? &bias_ : nullptr; }

  /// Sets the k-bit precision of both the weight and input-activation
  /// quantizers (the paper quantizes both to k_l).
  void set_bits(int bits);
  int bits() const { return weight_quant_.bits(); }

  /// Disables quantization entirely (paper: first conv layer is exempt).
  void set_quantization_enabled(bool enabled);
  bool quantization_enabled() const { return weight_quant_.enabled(); }

  /// Channel pruning mask: only the first `n` output channels are live.
  void set_active_out_channels(std::int64_t n);
  std::int64_t active_out_channels() const { return active_out_channels_; }

  /// Limits live *input* channels (set when the upstream layer is pruned, so
  /// MAC/energy accounting sees the reduced fan-in).
  void set_active_in_channels(std::int64_t n);
  std::int64_t active_in_channels() const { return active_in_channels_; }

  /// Bypass turns the layer into an identity (paper Table II iter 2a: a
  /// layer whose AD collapses is removed entirely). Only legal for
  /// shape-preserving convs (in==out channels, stride 1).
  void set_bypassed(bool bypassed);
  bool bypassed() const { return bypassed_; }

  quant::FakeQuantizer& weight_quantizer() { return weight_quant_; }
  quant::FakeQuantizer& input_quantizer() { return input_quant_; }

 private:
  ConvGeometry geometry(std::int64_t h, std::int64_t w) const;
  void mask_pruned_channels(Tensor& nchw) const;

  std::string name_;
  std::int64_t in_channels_, out_channels_, kernel_, stride_, pad_;
  bool use_bias_;
  std::int64_t active_out_channels_;
  std::int64_t active_in_channels_;
  bool bypassed_ = false;

  Parameter weight_;
  Parameter bias_;
  quant::FakeQuantizer weight_quant_;
  quant::FakeQuantizer input_quant_;

  // Backward caches (valid between one forward and the next backward).
  Tensor cached_input_q_;  // quantized input batch
  Tensor cached_weight_q_;
  std::int64_t cached_h_ = 0, cached_w_ = 0;
};

}  // namespace adq::nn
