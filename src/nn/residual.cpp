#include "nn/residual.h"

#include "tensor/ops.h"

namespace adq::nn {

ResidualBlock::ResidualBlock(std::int64_t in_channels, std::int64_t out_channels,
                             std::int64_t stride, std::string name)
    : name_(std::move(name)) {
  conv1_ = std::make_unique<Conv2d>(in_channels, out_channels, 3, stride, 1,
                                    /*use_bias=*/false, name_ + ".conv1");
  bn1_ = std::make_unique<BatchNorm2d>(out_channels, 0.1f, 1e-5f, name_ + ".bn1");
  relu1_ = std::make_unique<ReLU>(name_ + ".relu1");
  conv2_ = std::make_unique<Conv2d>(out_channels, out_channels, 3, 1, 1,
                                    /*use_bias=*/false, name_ + ".conv2");
  bn2_ = std::make_unique<BatchNorm2d>(out_channels, 0.1f, 1e-5f, name_ + ".bn2");
  relu2_ = std::make_unique<ReLU>(name_ + ".relu2");
  if (stride != 1 || in_channels != out_channels) {
    down_conv_ = std::make_unique<Conv2d>(in_channels, out_channels, 1, stride,
                                          0, /*use_bias=*/false, name_ + ".down");
    down_bn_ = std::make_unique<BatchNorm2d>(out_channels, 0.1f, 1e-5f,
                                             name_ + ".down_bn");
  }
  active_out_ = out_channels;
}

void ResidualBlock::mask_post_add(Tensor& nchw) const {
  const std::int64_t C = nchw.shape().dim(1);
  if (active_out_ >= C) return;
  const std::int64_t B = nchw.shape().dim(0);
  const std::int64_t hw = nchw.shape().dim(2) * nchw.shape().dim(3);
  for (std::int64_t b = 0; b < B; ++b) {
    float* base = nchw.data() + (b * C + active_out_) * hw;
    std::fill(base, base + (C - active_out_) * hw, 0.0f);
  }
}

Tensor ResidualBlock::forward(const Tensor& x) {
  Tensor main = conv1_->forward(x);
  main = bn1_->forward(main);
  main = relu1_->forward(main);
  main = conv2_->forward(main);
  main = bn2_->forward(main);

  // Skip branch: its activations are quantized at the destination (conv2)
  // precision per Fig 2. The downsample conv, when present, carries its own
  // weight/input quantizers already synced to conv2's bits.
  Tensor skip = skip_quant_.apply(x);
  if (down_conv_ != nullptr) {
    skip = down_conv_->forward(skip);
    skip = down_bn_->forward(skip);
  }
  add_inplace(main, skip);
  mask_post_add(main);  // masked before ReLU so backward dies naturally
  return relu2_->forward(main);
}

Tensor ResidualBlock::backward(const Tensor& grad_out) {
  Tensor g = relu2_->backward(grad_out);  // gradient of the post-add sum

  // Main path.
  Tensor g_main = bn2_->backward(g);
  g_main = conv2_->backward(g_main);
  g_main = relu1_->backward(g_main);
  g_main = bn1_->backward(g_main);
  g_main = conv1_->backward(g_main);

  // Skip path (STE through skip_quant_: gradient passes unchanged).
  Tensor g_skip = g;
  if (down_conv_ != nullptr) {
    g_skip = down_bn_->backward(g_skip);
    g_skip = down_conv_->backward(g_skip);
  }
  add_inplace(g_main, g_skip);
  return g_main;
}

void ResidualBlock::collect_parameters(std::vector<Parameter*>& out) {
  conv1_->collect_parameters(out);
  bn1_->collect_parameters(out);
  conv2_->collect_parameters(out);
  bn2_->collect_parameters(out);
  if (down_conv_ != nullptr) {
    down_conv_->collect_parameters(out);
    down_bn_->collect_parameters(out);
  }
}

void ResidualBlock::set_training(bool training) {
  Layer::set_training(training);
  conv1_->set_training(training);
  bn1_->set_training(training);
  relu1_->set_training(training);
  conv2_->set_training(training);
  bn2_->set_training(training);
  relu2_->set_training(training);
  if (down_conv_ != nullptr) {
    down_conv_->set_training(training);
    down_bn_->set_training(training);
  }
}

void ResidualBlock::set_bits_conv2(int bits) {
  conv2_->set_bits(bits);
  skip_quant_.set_bits(bits);
  if (down_conv_ != nullptr) down_conv_->set_bits(bits);
}

void ResidualBlock::set_active_out_channels(std::int64_t n) {
  conv2_->set_active_out_channels(n);
  bn2_->set_active_channels(n);
  if (down_conv_ != nullptr) {
    down_conv_->set_active_out_channels(n);
    down_bn_->set_active_channels(n);
  }
  relu2_->set_metered_channels(n);
  active_out_ = n;
}

void ResidualBlock::set_active_mid_channels(std::int64_t n) {
  conv1_->set_active_out_channels(n);
  bn1_->set_active_channels(n);
  relu1_->set_metered_channels(n);
  conv2_->set_active_in_channels(n);
}

void ResidualBlock::set_quantization_enabled(bool enabled) {
  conv1_->set_quantization_enabled(enabled);
  conv2_->set_quantization_enabled(enabled);
  skip_quant_.set_enabled(enabled);
  if (down_conv_ != nullptr) down_conv_->set_quantization_enabled(enabled);
}

}  // namespace adq::nn
