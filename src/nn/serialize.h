// Parameter checkpointing.
//
// Saves/restores every trainable parameter of a network by name to a small
// binary container (magic + count + [name, shape, float data] records).
// Useful for the in-training quantization workflow: snapshot the model at
// an iteration boundary, explore a bit-width assignment, roll back.
// Loading matches strictly by name and shape — a mismatch is an error, not
// a silent partial restore.
#pragma once

#include <string>
#include <vector>

#include "nn/parameter.h"

namespace adq::nn {

/// Writes all parameters to `path`. Throws std::runtime_error on I/O error.
void save_parameters(const std::vector<Parameter*>& params,
                     const std::string& path);

/// Restores parameters from `path` into the given (already built) network.
/// Every parameter in the file must exist (by name) with an identical
/// shape, and every network parameter must be present in the file.
void load_parameters(const std::vector<Parameter*>& params,
                     const std::string& path);

}  // namespace adq::nn
