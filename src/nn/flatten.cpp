#include "nn/flatten.h"

namespace adq::nn {

Tensor Flatten::forward(const Tensor& x) {
  cached_in_shape_ = x.shape();
  const std::int64_t B = x.shape().dim(0);
  return x.reshaped(Shape{B, x.numel() / B});
}

Tensor Flatten::backward(const Tensor& grad_out) {
  return grad_out.reshaped(cached_in_shape_);
}

}  // namespace adq::nn
