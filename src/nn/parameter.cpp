#include "nn/parameter.h"

// Parameter is header-only today; this translation unit exists so the build
// has a stable home if Parameter grows out-of-line behaviour.
