#include "nn/depthwise.h"

#include <mutex>
#include <stdexcept>
#include <vector>

#include "tensor/parallel.h"

namespace adq::nn {

DepthwiseConv2d::DepthwiseConv2d(std::int64_t channels, std::int64_t kernel,
                                 std::int64_t stride, std::int64_t pad,
                                 bool use_bias, std::string name)
    : name_(std::move(name)),
      channels_(channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      use_bias_(use_bias),
      active_out_channels_(channels),
      weight_(name_ + ".weight", Shape{channels, kernel * kernel}),
      bias_(name_ + ".bias", Shape{channels}) {}

void DepthwiseConv2d::mask_pruned_channels(Tensor& nchw) const {
  if (active_out_channels_ >= channels_) return;
  const std::int64_t B = nchw.shape().dim(0);
  const std::int64_t hw = nchw.shape().dim(2) * nchw.shape().dim(3);
  for (std::int64_t b = 0; b < B; ++b) {
    float* base = nchw.data() + (b * channels_ + active_out_channels_) * hw;
    std::fill(base, base + (channels_ - active_out_channels_) * hw, 0.0f);
  }
}

Tensor DepthwiseConv2d::forward(const Tensor& x) {
  if (x.shape().rank() != 4 || x.shape().dim(1) != channels_) {
    throw std::invalid_argument(name_ + ": expected [B, " +
                                std::to_string(channels_) + ", H, W], got " +
                                x.shape().to_string());
  }
  const std::int64_t B = x.shape().dim(0);
  const std::int64_t H = x.shape().dim(2), W = x.shape().dim(3);
  const std::int64_t oh = out_h(H), ow = out_h(W);

  cached_input_q_ = input_quant_.apply(x);
  cached_weight_q_ = weight_quant_.apply(weight_.value);

  Tensor out(Shape{B, channels_, oh, ow});
  const float* wq = cached_weight_q_.data();
  parallel_for(0, B * channels_, [&](std::int64_t p0, std::int64_t p1) {
    for (std::int64_t p = p0; p < p1; ++p) {
      const std::int64_t c = p % channels_;
      const float* plane = cached_input_q_.data() + p * H * W;
      const float* w = wq + c * kernel_ * kernel_;
      const float bv = use_bias_ ? bias_.value[c] : 0.0f;
      float* dst = out.data() + p * oh * ow;
      for (std::int64_t y = 0; y < oh; ++y) {
        for (std::int64_t xo = 0; xo < ow; ++xo) {
          float acc = bv;
          for (std::int64_t ky = 0; ky < kernel_; ++ky) {
            const std::int64_t iy = y * stride_ + ky - pad_;
            if (iy < 0 || iy >= H) continue;
            for (std::int64_t kx = 0; kx < kernel_; ++kx) {
              const std::int64_t ix = xo * stride_ + kx - pad_;
              if (ix < 0 || ix >= W) continue;
              acc += w[ky * kernel_ + kx] * plane[iy * W + ix];
            }
          }
          dst[y * ow + xo] = acc;
        }
      }
    }
  });
  mask_pruned_channels(out);
  return out;
}

Tensor DepthwiseConv2d::backward(const Tensor& grad_out) {
  const std::int64_t B = cached_input_q_.shape().dim(0);
  const std::int64_t H = cached_input_q_.shape().dim(2);
  const std::int64_t W = cached_input_q_.shape().dim(3);
  const std::int64_t oh = out_h(H), ow = out_h(W);
  if (grad_out.shape() != Shape{B, channels_, oh, ow}) {
    throw std::invalid_argument(name_ + ": backward shape mismatch " +
                                grad_out.shape().to_string());
  }

  // Pruned channels neither fire nor learn.
  Tensor grad = grad_out;
  mask_pruned_channels(grad);

  Tensor grad_x(cached_input_q_.shape());  // zero-initialised; accumulated into
  const float* wq = cached_weight_q_.data();
  // Per-(channel, thread-chunk) local weight-gradient accumulators merged
  // under a mutex, mirroring Conv2d::backward. STE: the quantized-weight
  // gradient applies to the float master weight.
  std::mutex wgrad_mutex;
  parallel_for(0, B * channels_, [&](std::int64_t p0, std::int64_t p1) {
    std::vector<float> local_wgrad(
        static_cast<std::size_t>(channels_ * kernel_ * kernel_), 0.0f);
    std::vector<float> local_bgrad(static_cast<std::size_t>(channels_), 0.0f);
    for (std::int64_t p = p0; p < p1; ++p) {
      const std::int64_t c = p % channels_;
      const float* plane = cached_input_q_.data() + p * H * W;
      const float* gb = grad.data() + p * oh * ow;
      const float* w = wq + c * kernel_ * kernel_;
      float* wg = local_wgrad.data() + c * kernel_ * kernel_;
      float* gx = grad_x.data() + p * H * W;
      for (std::int64_t y = 0; y < oh; ++y) {
        for (std::int64_t xo = 0; xo < ow; ++xo) {
          const float g = gb[y * ow + xo];
          if (use_bias_) local_bgrad[static_cast<std::size_t>(c)] += g;
          for (std::int64_t ky = 0; ky < kernel_; ++ky) {
            const std::int64_t iy = y * stride_ + ky - pad_;
            if (iy < 0 || iy >= H) continue;
            for (std::int64_t kx = 0; kx < kernel_; ++kx) {
              const std::int64_t ix = xo * stride_ + kx - pad_;
              if (ix < 0 || ix >= W) continue;
              wg[ky * kernel_ + kx] += g * plane[iy * W + ix];
              gx[iy * W + ix] += g * w[ky * kernel_ + kx];
            }
          }
        }
      }
    }
    std::lock_guard<std::mutex> lock(wgrad_mutex);
    for (std::int64_t i = 0; i < channels_ * kernel_ * kernel_; ++i) {
      weight_.grad[i] += local_wgrad[static_cast<std::size_t>(i)];
    }
    if (use_bias_) {
      for (std::int64_t c = 0; c < channels_; ++c) {
        bias_.grad[c] += local_bgrad[static_cast<std::size_t>(c)];
      }
    }
  });
  return grad_x;
}

void DepthwiseConv2d::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&weight_);
  if (use_bias_) out.push_back(&bias_);
}

void DepthwiseConv2d::set_bits(int bits) {
  weight_quant_.set_bits(bits);
  input_quant_.set_bits(bits);
}

void DepthwiseConv2d::set_quantization_enabled(bool enabled) {
  weight_quant_.set_enabled(enabled);
  input_quant_.set_enabled(enabled);
}

void DepthwiseConv2d::set_active_out_channels(std::int64_t n) {
  if (n < 1 || n > channels_) {
    throw std::invalid_argument(name_ + ": active_out_channels " +
                                std::to_string(n) + " out of [1, " +
                                std::to_string(channels_) + "]");
  }
  active_out_channels_ = n;
}

}  // namespace adq::nn
