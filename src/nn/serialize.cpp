#include "nn/serialize.h"

#include <cstdint>
#include <fstream>
#include <map>
#include <stdexcept>

namespace adq::nn {
namespace {

constexpr std::uint32_t kMagic = 0x41445131;  // "ADQ1"

void write_u64(std::ostream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint64_t read_u64(std::istream& in) {
  std::uint64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) throw std::runtime_error("checkpoint: truncated file");
  return v;
}

void write_string(std::ostream& out, const std::string& s) {
  write_u64(out, s.size());
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& in) {
  const std::uint64_t n = read_u64(in);
  if (n > (1u << 20)) throw std::runtime_error("checkpoint: absurd name length");
  std::string s(n, '\0');
  in.read(s.data(), static_cast<std::streamsize>(n));
  if (!in) throw std::runtime_error("checkpoint: truncated file");
  return s;
}

}  // namespace

void save_parameters(const std::vector<Parameter*>& params,
                     const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("checkpoint: cannot open " + path);
  std::uint32_t magic = kMagic;
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  write_u64(out, params.size());
  for (const Parameter* p : params) {
    write_string(out, p->name);
    write_u64(out, static_cast<std::uint64_t>(p->value.shape().rank()));
    for (int a = 0; a < p->value.shape().rank(); ++a) {
      write_u64(out, static_cast<std::uint64_t>(p->value.shape().dim(a)));
    }
    out.write(reinterpret_cast<const char*>(p->value.data()),
              static_cast<std::streamsize>(p->value.numel() * sizeof(float)));
  }
  if (!out) throw std::runtime_error("checkpoint: write failed for " + path);
}

void load_parameters(const std::vector<Parameter*>& params,
                     const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("checkpoint: cannot open " + path);
  std::uint32_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (!in || magic != kMagic) {
    throw std::runtime_error("checkpoint: bad magic in " + path);
  }

  std::map<std::string, Parameter*> by_name;
  for (Parameter* p : params) {
    if (!by_name.emplace(p->name, p).second) {
      throw std::runtime_error("checkpoint: duplicate parameter name " + p->name);
    }
  }

  const std::uint64_t count = read_u64(in);
  if (count != params.size()) {
    throw std::runtime_error("checkpoint: parameter count mismatch (file " +
                             std::to_string(count) + ", network " +
                             std::to_string(params.size()) + ")");
  }
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::string name = read_string(in);
    const auto it = by_name.find(name);
    if (it == by_name.end()) {
      throw std::runtime_error("checkpoint: unknown parameter " + name);
    }
    Parameter& p = *it->second;
    const std::uint64_t rank = read_u64(in);
    if (rank != static_cast<std::uint64_t>(p.value.shape().rank())) {
      throw std::runtime_error("checkpoint: rank mismatch for " + name);
    }
    for (std::uint64_t a = 0; a < rank; ++a) {
      if (read_u64(in) != static_cast<std::uint64_t>(p.value.shape().dim(static_cast<int>(a)))) {
        throw std::runtime_error("checkpoint: shape mismatch for " + name);
      }
    }
    in.read(reinterpret_cast<char*>(p.value.data()),
            static_cast<std::streamsize>(p.value.numel() * sizeof(float)));
    if (!in) throw std::runtime_error("checkpoint: truncated data for " + name);
  }
}

}  // namespace adq::nn
