#include "nn/optimizer.h"

#include <cmath>

namespace adq::nn {

void Optimizer::zero_grad() {
  for (Parameter* p : params_) p->zero_grad();
}

Sgd::Sgd(std::vector<Parameter*> params, float lr, float momentum,
         float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  velocity_.reserve(params_.size());
  for (Parameter* p : params_) velocity_.emplace_back(p->value.shape());
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Parameter& p = *params_[i];
    Tensor& vel = velocity_[i];
    for (std::int64_t j = 0; j < p.value.numel(); ++j) {
      const float g = p.grad[j] + weight_decay_ * p.value[j];
      vel[j] = momentum_ * vel[j] + g;
      p.value[j] -= lr_ * vel[j];
    }
  }
}

Adam::Adam(std::vector<Parameter*> params, float lr, float beta1, float beta2,
           float eps, float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Parameter* p : params_) {
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void Adam::step() {
  ++t_;
  const float bias1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bias2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Parameter& p = *params_[i];
    Tensor& m = m_[i];
    Tensor& v = v_[i];
    for (std::int64_t j = 0; j < p.value.numel(); ++j) {
      const float g = p.grad[j] + weight_decay_ * p.value[j];
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * g;
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * g * g;
      const float m_hat = m[j] / bias1;
      const float v_hat = v[j] / bias2;
      p.value[j] -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
    }
  }
}

}  // namespace adq::nn
