#include "nn/batchnorm.h"

#include <cmath>
#include <stdexcept>

#include "tensor/parallel.h"

namespace adq::nn {

BatchNorm2d::BatchNorm2d(std::int64_t channels, float momentum, float eps,
                         std::string name)
    : name_(std::move(name)),
      channels_(channels),
      momentum_(momentum),
      eps_(eps),
      active_channels_(channels),
      gamma_(name_ + ".gamma", Shape{channels}),
      beta_(name_ + ".beta", Shape{channels}),
      running_mean_(Shape{channels}),
      running_var_(Shape{channels}, 1.0f) {
  gamma_.value.fill(1.0f);
}

void BatchNorm2d::mask_pruned_channels(Tensor& nchw) const {
  if (active_channels_ >= channels_) return;
  const std::int64_t B = nchw.shape().dim(0);
  const std::int64_t hw = nchw.shape().dim(2) * nchw.shape().dim(3);
  for (std::int64_t b = 0; b < B; ++b) {
    float* base = nchw.data() + (b * channels_ + active_channels_) * hw;
    std::fill(base, base + (channels_ - active_channels_) * hw, 0.0f);
  }
}

Tensor BatchNorm2d::forward(const Tensor& x) {
  if (x.shape().rank() != 4 || x.shape().dim(1) != channels_) {
    throw std::invalid_argument(name_ + ": expected [B, " +
                                std::to_string(channels_) + ", H, W], got " +
                                x.shape().to_string());
  }
  if (bypassed_) return x;
  const std::int64_t B = x.shape().dim(0);
  const std::int64_t H = x.shape().dim(2), W = x.shape().dim(3);
  const std::int64_t hw = H * W;
  const double n = static_cast<double>(B * hw);

  cached_xhat_ = Tensor(x.shape());
  cached_inv_std_ = Tensor(Shape{channels_});
  Tensor out(x.shape());

  parallel_for(0, channels_, [&](std::int64_t c0, std::int64_t c1) {
    for (std::int64_t c = c0; c < c1; ++c) {
      double mean, var;
      if (training_) {
        double s = 0.0, s2 = 0.0;
        for (std::int64_t b = 0; b < B; ++b) {
          const float* p = x.data() + (b * channels_ + c) * hw;
          for (std::int64_t i = 0; i < hw; ++i) {
            s += p[i];
            s2 += static_cast<double>(p[i]) * p[i];
          }
        }
        mean = s / n;
        var = s2 / n - mean * mean;
        if (var < 0.0) var = 0.0;  // numerical floor
        running_mean_[c] = (1.0f - momentum_) * running_mean_[c] +
                           momentum_ * static_cast<float>(mean);
        running_var_[c] = (1.0f - momentum_) * running_var_[c] +
                          momentum_ * static_cast<float>(var);
      } else {
        mean = running_mean_[c];
        var = running_var_[c];
      }
      const float inv_std = 1.0f / std::sqrt(static_cast<float>(var) + eps_);
      cached_inv_std_[c] = inv_std;
      const float g = gamma_.value[c], bta = beta_.value[c];
      const float m = static_cast<float>(mean);
      for (std::int64_t b = 0; b < B; ++b) {
        const float* p = x.data() + (b * channels_ + c) * hw;
        float* ph = cached_xhat_.data() + (b * channels_ + c) * hw;
        float* po = out.data() + (b * channels_ + c) * hw;
        for (std::int64_t i = 0; i < hw; ++i) {
          const float xh = (p[i] - m) * inv_std;
          ph[i] = xh;
          po[i] = g * xh + bta;
        }
      }
    }
  });
  mask_pruned_channels(out);
  return out;
}

Tensor BatchNorm2d::backward(const Tensor& grad_out) {
  if (bypassed_) return grad_out;
  const Shape& s = cached_xhat_.shape();
  if (grad_out.shape() != s) {
    throw std::invalid_argument(name_ + ": backward shape mismatch");
  }
  const std::int64_t B = s.dim(0), hw = s.dim(2) * s.dim(3);
  const double n = static_cast<double>(B * hw);

  Tensor grad = grad_out;
  mask_pruned_channels(grad);
  Tensor grad_x(s);

  parallel_for(0, channels_, [&](std::int64_t c0, std::int64_t c1) {
    for (std::int64_t c = c0; c < c1; ++c) {
      double dg = 0.0, db = 0.0;
      for (std::int64_t b = 0; b < B; ++b) {
        const float* gp = grad.data() + (b * channels_ + c) * hw;
        const float* xh = cached_xhat_.data() + (b * channels_ + c) * hw;
        for (std::int64_t i = 0; i < hw; ++i) {
          dg += static_cast<double>(gp[i]) * xh[i];
          db += gp[i];
        }
      }
      gamma_.grad[c] += static_cast<float>(dg);
      beta_.grad[c] += static_cast<float>(db);

      if (!training_) {
        // Eval-mode backward (used by gradient checks): statistics are
        // constants, so dx = gamma * inv_std * dout.
        const float k = gamma_.value[c] * cached_inv_std_[c];
        for (std::int64_t b = 0; b < B; ++b) {
          const float* gp = grad.data() + (b * channels_ + c) * hw;
          float* gx = grad_x.data() + (b * channels_ + c) * hw;
          for (std::int64_t i = 0; i < hw; ++i) gx[i] = k * gp[i];
        }
        continue;
      }
      // Training-mode backward through the batch statistics:
      // dx = gamma * inv_std / n * (n * dout - sum(dout) - xhat * sum(dout * xhat))
      const float k = gamma_.value[c] * cached_inv_std_[c] / static_cast<float>(n);
      const float sum_dy = static_cast<float>(db);
      const float sum_dy_xhat = static_cast<float>(dg);
      for (std::int64_t b = 0; b < B; ++b) {
        const float* gp = grad.data() + (b * channels_ + c) * hw;
        const float* xh = cached_xhat_.data() + (b * channels_ + c) * hw;
        float* gx = grad_x.data() + (b * channels_ + c) * hw;
        for (std::int64_t i = 0; i < hw; ++i) {
          gx[i] = k * (static_cast<float>(n) * gp[i] - sum_dy - xh[i] * sum_dy_xhat);
        }
      }
    }
  });
  return grad_x;
}

void BatchNorm2d::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&gamma_);
  out.push_back(&beta_);
}

void BatchNorm2d::set_active_channels(std::int64_t n) {
  if (n < 1 || n > channels_) {
    throw std::invalid_argument(name_ + ": active_channels out of range");
  }
  active_channels_ = n;
}

}  // namespace adq::nn
