// First-order optimizers over a flat parameter list.
//
// The paper trains with Adam "under standard settings"; SGD with momentum is
// provided for the ablations. Optimizers hold non-owning Parameter pointers
// and per-parameter state buffers indexed positionally.
#pragma once

#include <vector>

#include "nn/parameter.h"

namespace adq::nn {

class Optimizer {
 public:
  explicit Optimizer(std::vector<Parameter*> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  /// Applies one update from the accumulated gradients.
  virtual void step() = 0;

  void zero_grad();
  const std::vector<Parameter*>& params() const { return params_; }

 protected:
  std::vector<Parameter*> params_;
};

class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Parameter*> params, float lr, float momentum = 0.9f,
      float weight_decay = 0.0f);

  void step() override;
  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }

 private:
  float lr_, momentum_, weight_decay_;
  std::vector<Tensor> velocity_;
};

class Adam : public Optimizer {
 public:
  Adam(std::vector<Parameter*> params, float lr = 1e-3f, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f);

  void step() override;
  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }

 private:
  float lr_, beta1_, beta2_, eps_, weight_decay_;
  std::int64_t t_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

}  // namespace adq::nn
