// Softmax cross-entropy over logits.
//
// forward() returns the mean negative log-likelihood of the labels;
// backward() returns d(loss)/d(logits) = (softmax - onehot) / batch.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace adq::nn {

class SoftmaxCrossEntropy {
 public:
  /// logits: [B, classes]; labels: B entries in [0, classes).
  double forward(const Tensor& logits, const std::vector<std::int64_t>& labels);

  /// Gradient w.r.t. the logits of the last forward().
  Tensor backward() const;

 private:
  Tensor cached_softmax_;
  std::vector<std::int64_t> cached_labels_;
};

}  // namespace adq::nn
