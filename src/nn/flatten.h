// Flatten [B, ...] -> [B, features]; pure reshape in both directions.
#pragma once

#include "nn/layer.h"

namespace adq::nn {

class Flatten : public Layer {
 public:
  explicit Flatten(std::string name = "flatten") : name_(std::move(name)) {}

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return name_; }

 private:
  std::string name_;
  Shape cached_in_shape_;
};

}  // namespace adq::nn
