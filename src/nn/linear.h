// Fully connected layer with the same quantization contract as Conv2d:
// weights and input activations are fake-quantized to the layer's k bits in
// forward; backward is straight-through.
#pragma once

#include "ad/density_meter.h"
#include "nn/layer.h"
#include "quant/fake_quantizer.h"

namespace adq::nn {

class Linear : public Layer {
 public:
  Linear(std::int64_t in_features, std::int64_t out_features, bool use_bias,
         std::string name = "fc");

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  std::string name() const override { return name_; }

  std::int64_t in_features() const { return in_features_; }
  std::int64_t out_features() const { return out_features_; }

  /// Weight matrix, [out_features, in_features].
  Parameter& weight() { return weight_; }
  Parameter* bias() { return use_bias_ ? &bias_ : nullptr; }

  void set_bits(int bits);
  int bits() const { return weight_quant_.bits(); }
  void set_quantization_enabled(bool enabled);
  bool quantization_enabled() const { return weight_quant_.enabled(); }

  quant::FakeQuantizer& weight_quantizer() { return weight_quant_; }
  quant::FakeQuantizer& input_quantizer() { return input_quant_; }

  /// Optional AD meter on the raw output (the final FC has no ReLU, but the
  /// paper still reports a per-layer AD for it).
  void attach_meter(ad::DensityMeter* meter) { meter_ = meter; }

 private:
  std::string name_;
  ad::DensityMeter* meter_ = nullptr;
  std::int64_t in_features_, out_features_;
  bool use_bias_;

  Parameter weight_;
  Parameter bias_;
  quant::FakeQuantizer weight_quant_;
  quant::FakeQuantizer input_quant_;

  Tensor cached_input_q_;
  Tensor cached_weight_q_;
};

}  // namespace adq::nn
