// BatchNorm2d over NCHW with running statistics and channel masking.
//
// Training mode normalises with batch statistics and updates the running
// estimates; eval mode uses the running estimates. Channels >= the active
// count are forced to zero in both directions so that an upstream pruned
// conv channel cannot be resurrected by the learned shift beta.
#pragma once

#include "nn/layer.h"

namespace adq::nn {

class BatchNorm2d : public Layer {
 public:
  explicit BatchNorm2d(std::int64_t channels, float momentum = 0.1f,
                       float eps = 1e-5f, std::string name = "bn");

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  std::string name() const override { return name_; }

  std::int64_t channels() const { return channels_; }

  /// Variance epsilon — needed by the inference compiler to fold the eval
  /// affine (gamma / sqrt(running_var + eps), beta - ... * running_mean)
  /// into a conv epilogue.
  float eps() const { return eps_; }

  Parameter& gamma() { return gamma_; }
  Parameter& beta() { return beta_; }
  const Tensor& running_mean() const { return running_mean_; }
  const Tensor& running_var() const { return running_var_; }

  void set_active_channels(std::int64_t n);
  std::int64_t active_channels() const { return active_channels_; }

  /// Identity mode, used when the owning layer is removed (Table II 2a).
  void set_bypassed(bool bypassed) { bypassed_ = bypassed; }
  bool bypassed() const { return bypassed_; }

 private:
  void mask_pruned_channels(Tensor& nchw) const;

  std::string name_;
  std::int64_t channels_;
  float momentum_, eps_;
  std::int64_t active_channels_;
  bool bypassed_ = false;

  Parameter gamma_;
  Parameter beta_;
  Tensor running_mean_;
  Tensor running_var_;

  // Backward caches.
  Tensor cached_xhat_;     // normalized input, same shape as x
  Tensor cached_inv_std_;  // [C]
};

}  // namespace adq::nn
