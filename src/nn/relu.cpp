#include "nn/relu.h"

#include <stdexcept>

namespace adq::nn {

void ReLU::observe(const Tensor& y) const {
  if (meter_ == nullptr || !meter_->active()) return;
  if (metered_channels_ < 0 || y.shape().rank() != 4 ||
      metered_channels_ >= y.shape().dim(1)) {
    meter_->observe(y);
    return;
  }
  // Count only live channels of an NCHW tensor.
  const std::int64_t B = y.shape().dim(0), C = y.shape().dim(1);
  const std::int64_t hw = y.shape().dim(2) * y.shape().dim(3);
  std::int64_t nonzero = 0;
  for (std::int64_t b = 0; b < B; ++b) {
    const float* base = y.data() + b * C * hw;
    for (std::int64_t i = 0; i < metered_channels_ * hw; ++i) {
      if (base[i] != 0.0f) ++nonzero;
    }
  }
  meter_->observe_counts(nonzero, B * metered_channels_ * hw);
}

Tensor ReLU::forward(const Tensor& x) {
  Tensor out(x.shape());
  cached_mask_ = Tensor(x.shape());
  const float* px = x.data();
  float* po = out.data();
  float* pm = cached_mask_.data();
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    const bool pos = px[i] > 0.0f;
    po[i] = pos ? px[i] : 0.0f;
    pm[i] = pos ? 1.0f : 0.0f;
  }
  if (training_) observe(out);
  return out;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  if (grad_out.shape() != cached_mask_.shape()) {
    throw std::invalid_argument(name_ + ": backward shape mismatch");
  }
  Tensor grad_x(grad_out.shape());
  const float* pg = grad_out.data();
  const float* pm = cached_mask_.data();
  float* po = grad_x.data();
  for (std::int64_t i = 0; i < grad_out.numel(); ++i) po[i] = pg[i] * pm[i];
  return grad_x;
}

}  // namespace adq::nn
