#include "nn/init.h"

#include <cmath>

namespace adq::nn {

void kaiming_normal(Tensor& weight, std::int64_t fan_in, Rng& rng) {
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  rng.fill_normal(weight, 0.0f, stddev);
}

void init_conv(Conv2d& conv, Rng& rng) {
  kaiming_normal(conv.weight().value,
                 conv.in_channels() * conv.kernel() * conv.kernel(), rng);
  if (conv.bias() != nullptr) conv.bias()->value.zero();
}

void init_depthwise(DepthwiseConv2d& conv, Rng& rng) {
  kaiming_normal(conv.weight().value, conv.kernel() * conv.kernel(), rng);
  if (conv.bias() != nullptr) conv.bias()->value.zero();
}

void init_linear(Linear& linear, Rng& rng) {
  kaiming_normal(linear.weight().value, linear.in_features(), rng);
  if (linear.bias() != nullptr) linear.bias()->value.zero();
}

void init_residual_block(ResidualBlock& block, Rng& rng) {
  init_conv(block.conv1(), rng);
  init_conv(block.conv2(), rng);
  if (block.has_downsample()) init_conv(*block.downsample_conv(), rng);
}

}  // namespace adq::nn
