#include "serve/stats.h"

#include <algorithm>
#include <cmath>

namespace adq::serve {
namespace {

// Nearest-rank percentile of an already-sorted sample vector.
double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted.size());
  std::size_t idx = static_cast<std::size_t>(std::ceil(rank));
  if (idx > 0) --idx;
  if (idx >= sorted.size()) idx = sorted.size() - 1;
  return sorted[idx];
}

}  // namespace

void ServerStats::record_batch(std::int64_t batch_size,
                               std::int64_t queue_depth_after) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++batches_;
  ++histogram_[batch_size];
  max_depth_ = std::max(max_depth_, queue_depth_after);
}

void ServerStats::record_request(double queue_us, double total_us) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++requests_;
  queue_us_sum_ += queue_us;
  total_us_sum_ += total_us;
  if (total_us_.size() < kMaxSamples) total_us_.push_back(total_us);
}

void ServerStats::set_memory_contract(std::int64_t arena_bytes_per_sample,
                                      std::int64_t peak_bytes_per_worker) {
  std::lock_guard<std::mutex> lock(mutex_);
  arena_bytes_per_sample_ = arena_bytes_per_sample;
  peak_bytes_per_worker_ = peak_bytes_per_worker;
}

ServerStats::Snapshot ServerStats::snapshot() const {
  std::vector<double> sorted;
  Snapshot s;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    s.requests = requests_;
    s.batches = batches_;
    s.max_queue_depth = max_depth_;
    s.arena_bytes_per_sample = arena_bytes_per_sample_;
    s.peak_activation_bytes_per_worker = peak_bytes_per_worker_;
    s.mean_total_us =
        requests_ == 0 ? 0.0 : total_us_sum_ / static_cast<double>(requests_);
    s.mean_queue_us =
        requests_ == 0 ? 0.0 : queue_us_sum_ / static_cast<double>(requests_);
    s.mean_batch = batches_ == 0
                       ? 0.0
                       : static_cast<double>(requests_) /
                             static_cast<double>(batches_);
    s.batch_histogram.assign(histogram_.begin(), histogram_.end());
    sorted = total_us_;
  }
  std::sort(sorted.begin(), sorted.end());
  s.p50_us = percentile(sorted, 0.50);
  s.p95_us = percentile(sorted, 0.95);
  s.p99_us = percentile(sorted, 0.99);
  return s;
}

void ServerStats::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  total_us_.clear();
  total_us_sum_ = 0.0;
  queue_us_sum_ = 0.0;
  requests_ = 0;
  batches_ = 0;
  max_depth_ = 0;
  histogram_.clear();
}

}  // namespace adq::serve
