#include "serve/stats.h"

#include <algorithm>
#include <cmath>

#include "tensor/parallel.h"

namespace adq::serve {
namespace {

// Nearest-rank percentile of an already-sorted sample vector.
double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted.size());
  std::size_t idx = static_cast<std::size_t>(std::ceil(rank));
  if (idx > 0) --idx;
  if (idx >= sorted.size()) idx = sorted.size() - 1;
  return sorted[idx];
}

}  // namespace

void ServerStats::record_batch(std::int64_t batch_size,
                               std::int64_t queue_depth_after) {
  // Sampled before taking this aggregator's lock: a batch completion on
  // one worker observes whichever jobs the OTHER workers have in flight —
  // a cheap concurrency witness with no instrumentation on the hot path.
  const ParallelPoolStats ps = parallel_pool_stats();
  std::lock_guard<std::mutex> lock(mutex_);
  ++batches_;
  ++histogram_[batch_size];
  max_depth_ = std::max(max_depth_, queue_depth_after);
  pool_busy_peak_ = std::max(pool_busy_peak_, ps.busy_workers);
  pool_live_jobs_peak_ = std::max(pool_live_jobs_peak_, ps.live_jobs);
}

void ServerStats::record_request(double queue_us, double exec_us,
                                 double total_us, int ladder_step) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++requests_;
  queue_us_sum_ += queue_us;
  total_us_sum_ += total_us;
  ++step_requests_[ladder_step];
  if (total_us_.size() < kMaxSamples) {
    total_us_.push_back(total_us);
    queue_lat_us_.push_back(queue_us);
    exec_lat_us_.push_back(exec_us);
  }
  recent_total_us_[recent_count_ % kRecentWindow] = total_us;
  ++recent_count_;
}

void ServerStats::record_transition(int from_step, int to_step) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (to_step > from_step) {
    ++step_downs_;
  } else if (to_step < from_step) {
    ++step_ups_;
  }
  current_step_ = to_step;
}

void ServerStats::set_current_step(int step) {
  std::lock_guard<std::mutex> lock(mutex_);
  current_step_ = step;
}

double ServerStats::recent_p99_us() const {
  std::vector<double> window;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::size_t n = std::min(recent_count_, kRecentWindow);
    window.assign(recent_total_us_, recent_total_us_ + n);
  }
  std::sort(window.begin(), window.end());
  return percentile(window, 0.99);
}

void ServerStats::set_memory_contract(std::int64_t arena_bytes_per_sample,
                                      std::int64_t peak_bytes_per_worker,
                                      std::int64_t arena_bytes_u8_per_sample,
                                      const std::array<int, 9>& act_cells) {
  std::lock_guard<std::mutex> lock(mutex_);
  arena_bytes_per_sample_ = arena_bytes_per_sample;
  peak_bytes_per_worker_ = peak_bytes_per_worker;
  arena_bytes_u8_per_sample_ = arena_bytes_u8_per_sample;
  act_cells_ = act_cells;
}

ServerStats::Snapshot ServerStats::snapshot() const {
  std::vector<double> total, queue, exec;
  Snapshot s;
  const ParallelPoolStats ps = parallel_pool_stats();
  s.pool_threads = ps.pool_threads;
  s.pool_busy_workers = ps.busy_workers;
  s.pool_live_jobs = ps.live_jobs;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    s.pool_busy_peak = pool_busy_peak_;
    s.pool_live_jobs_peak = pool_live_jobs_peak_;
    s.requests = requests_;
    s.batches = batches_;
    s.max_queue_depth = max_depth_;
    s.arena_bytes_per_sample = arena_bytes_per_sample_;
    s.peak_activation_bytes_per_worker = peak_bytes_per_worker_;
    s.arena_bytes_u8_per_sample = arena_bytes_u8_per_sample_;
    for (int cell = 0; cell < static_cast<int>(act_cells_.size()); ++cell) {
      if (act_cells_[static_cast<std::size_t>(cell)] > 0) {
        s.act_cell_histogram.emplace_back(
            cell, act_cells_[static_cast<std::size_t>(cell)]);
      }
    }
    s.mean_total_us =
        requests_ == 0 ? 0.0 : total_us_sum_ / static_cast<double>(requests_);
    s.mean_queue_us =
        requests_ == 0 ? 0.0 : queue_us_sum_ / static_cast<double>(requests_);
    s.mean_batch = batches_ == 0
                       ? 0.0
                       : static_cast<double>(requests_) /
                             static_cast<double>(batches_);
    s.batch_histogram.assign(histogram_.begin(), histogram_.end());
    s.precision_mix.assign(step_requests_.begin(), step_requests_.end());
    s.step_downs = step_downs_;
    s.step_ups = step_ups_;
    s.current_step = current_step_;
    total = total_us_;
    queue = queue_lat_us_;
    exec = exec_lat_us_;
  }
  std::sort(total.begin(), total.end());
  std::sort(queue.begin(), queue.end());
  std::sort(exec.begin(), exec.end());
  s.p50_us = percentile(total, 0.50);
  s.p95_us = percentile(total, 0.95);
  s.p99_us = percentile(total, 0.99);
  s.p50_queue_us = percentile(queue, 0.50);
  s.p99_queue_us = percentile(queue, 0.99);
  s.p50_exec_us = percentile(exec, 0.50);
  s.p99_exec_us = percentile(exec, 0.99);
  return s;
}

void ServerStats::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  total_us_.clear();
  queue_lat_us_.clear();
  exec_lat_us_.clear();
  recent_count_ = 0;
  total_us_sum_ = 0.0;
  queue_us_sum_ = 0.0;
  requests_ = 0;
  batches_ = 0;
  max_depth_ = 0;
  histogram_.clear();
  step_requests_.clear();
  step_downs_ = 0;
  step_ups_ = 0;
  current_step_ = 0;
  pool_busy_peak_ = 0;
  pool_live_jobs_peak_ = 0;
}

}  // namespace adq::serve
