// Multi-model serving registry with zero-downtime hot reload and an
// SLO-driven precision ladder.
//
// ModelRegistry serves many named models concurrently: each model owns a
// lock-guarded RequestQueue + DynamicBatcher + worker pool (the same
// data path as InferenceServer) and an ordered LADDER of compiled plans —
// rung 0 the highest precision, later rungs cheaper bit allocations of
// the SAME trained weights. submit(model, sample) routes by name; every
// InferenceResult records the rung and plan fingerprint that served it.
//
// Hot reload: hot_swap(model, rung, plan) loads and VERIFIES the incoming
// plan (its planned input shape and output dimension must match the
// incumbent's — a mismatch is rejected with an error naming both plan
// fingerprints), then atomically replaces the rung behind a shared_ptr
// handle. Workers acquire the rung's engine handle once per batch, so
// in-flight batches finish on the plan they started on while the next
// batch runs the new plan; the old engine is destroyed when its last
// in-flight batch releases it. No request is dropped, no lock is held
// across a forward, and a swap needs only plan-load time (~2 ms).
//
// SLO control: a LadderController per model observes (recent p99, queue
// depth) after completed batches (rate-limited to tick_interval_us) and
// steps the model down the ladder under pressure, back up when the queue
// drains — degrading precision instead of shedding load. The live
// precision mix, transition counts, and current rung are published in
// ServerStats. ADQ_SLO_P99_US overrides the latency target; ADQ_LADDER
// pins or disables stepping (see ladder.h). For A/B baselines, a model
// with shed_queue_depth > 0 instead rejects submits (ServerOverloaded)
// once its queue is that deep — the classic load-shedding policy
// bench_serve_ladder compares the ladder against.
//
// shutdown()/remove_model(drain=true) stop intake and drain every
// accepted request; remove_model(drain=false) fails still-queued requests
// with ServerStopped (their futures always resolve — see request_queue.h).
#pragma once

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "infer/plan.h"
#include "serve/ladder.h"
#include "serve/request_queue.h"
#include "serve/stats.h"
#include "tensor/shape.h"

namespace adq::serve {

struct ModelConfig {
  std::int64_t max_batch = 16;
  std::int64_t max_wait_us = 200;
  /// Batch-executor threads for this model (the engine parallelises
  /// inside a batch via the ADQ_THREADS pool; see ServerConfig::workers).
  int workers = 1;
  /// Intra-op thread budget per worker. 0 = auto (pool size / workers);
  /// ADQ_THREADS_PER_WORKER overrides when use_env is set. See
  /// ServerConfig::threads_per_worker.
  int threads_per_worker = 0;
  /// SLO targets + hysteresis for the ladder controller.
  LadderSlo slo;
  /// Minimum spacing between controller observations. Ticks happen on the
  /// worker path after a batch completes, so the effective cadence is
  /// max(tick_interval_us, batch duration).
  std::int64_t tick_interval_us = 2'000;
  /// > 0: reject submits with ServerOverloaded once the queue is this
  /// deep — load shedding, the baseline policy a ladder replaces. 0 (the
  /// default) never sheds.
  std::int64_t shed_queue_depth = 0;
  /// -1: adaptive (the controller steps). >= 0: pin serving to this rung
  /// (clamped to the last rung). ADQ_LADDER overrides when set.
  int pin_step = -1;
  /// Apply the ADQ_SLO_P99_US / ADQ_LADDER environment overrides. Tests
  /// that need hermetic configs turn this off.
  bool use_env = true;
};

class ModelRegistry {
 public:
  ModelRegistry();
  /// Drains and joins every model (as shutdown()).
  ~ModelRegistry();

  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Registers `name` serving the given plan ladder (rung 0 first; at
  /// least one rung). Every rung must agree with rung 0 on planned input
  /// shape and output dimension (validated with errors naming both
  /// fingerprints); every plan must carry a planned input shape (format
  /// v3). Throws std::invalid_argument on a duplicate name or malformed
  /// config. Workers start serving before this returns.
  void add_model(const std::string& name,
                 std::vector<infer::InferencePlan> ladder,
                 ModelConfig config = {});

  /// As above, loading each rung from an .adqplan file.
  void add_model(const std::string& name,
                 const std::vector<std::string>& plan_paths,
                 ModelConfig config = {});

  /// Enqueues one sample for `name`. Throws std::out_of_range for an
  /// unknown model, std::invalid_argument on a shape mismatch,
  /// ServerOverloaded when shedding, std::runtime_error after shutdown.
  std::future<InferenceResult> submit(const std::string& name, Tensor sample);

  /// Replaces rung `step` of `name` with `plan`, zero-downtime (see file
  /// comment). Throws std::out_of_range for an unknown model or rung, and
  /// std::invalid_argument — naming the incumbent's and the candidate's
  /// plan fingerprints — when the plan's input shape or output dimension
  /// differs from the incumbent's.
  void hot_swap(const std::string& name, int step, infer::InferencePlan plan);

  /// As above, loading the plan from an .adqplan file.
  void hot_swap(const std::string& name, int step,
                const std::string& plan_path);

  /// Stops intake for `name`; drain=true completes every accepted request
  /// first, drain=false fails still-queued ones with ServerStopped
  /// (requests already executing still complete). Joins its workers.
  void remove_model(const std::string& name, bool drain = true);

  /// Stops intake on every model, drains all accepted requests, joins all
  /// workers. Models remain registered for introspection (final stats,
  /// fingerprints); further submits throw. Idempotent.
  void shutdown();

  std::vector<std::string> model_names() const;
  ServerStats::Snapshot stats(const std::string& name) const;
  std::int64_t queue_depth(const std::string& name) const;
  /// Rung currently serving (pinned or controller-chosen).
  int current_step(const std::string& name) const;
  int ladder_size(const std::string& name) const;
  /// plan_fingerprint() of the plan currently installed at `step`.
  std::uint64_t rung_fingerprint(const std::string& name, int step) const;
  Shape sample_shape(const std::string& name) const;

 private:
  struct Model;

  /// Returns a shared handle so the Model outlives a concurrent
  /// remove_model for the duration of the caller's use.
  std::shared_ptr<Model> find(const std::string& name) const;
  void worker_loop(Model& m);
  void maybe_tick(Model& m);

  mutable std::mutex mutex_;  // guards models_ (the map, not the Models)
  std::map<std::string, std::shared_ptr<Model>> models_;
};

}  // namespace adq::serve
