// Thread-safe serving statistics aggregator.
//
// Workers record one entry per completed batch (size, queue depth behind
// it) and one per completed request (queueing and end-to-end latency).
// snapshot() folds everything into the numbers an operator watches: tail
// latencies (p50/p95/p99), mean queue time, request/batch counts, the
// batch-size histogram (the direct evidence of how well the batcher is
// coalescing), the high-water queue depth, and the static memory
// contract — the per-sample activation arena of the compiled plan and its
// per-worker bound at the batch cap (arena x max_batch, exact for the
// planned activation slots; per-thread kernel scratch — activation code
// buffers, im2col slabs, GEMM accumulators — is additional), set once by
// the server at construction.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

namespace adq::serve {

class ServerStats {
 public:
  struct Snapshot {
    std::uint64_t requests = 0;
    std::uint64_t batches = 0;
    double p50_us = 0.0, p95_us = 0.0, p99_us = 0.0;  // end-to-end latency
    double mean_total_us = 0.0;
    double mean_queue_us = 0.0;
    double mean_batch = 0.0;  // requests / batches
    std::int64_t max_queue_depth = 0;
    // (batch size, count), ascending by size.
    std::vector<std::pair<std::int64_t, std::uint64_t>> batch_histogram;
    // Static memory contract (0 when the plan carries no memory plan):
    // the planned activation-slot footprint; kernel scratch is extra.
    std::int64_t arena_bytes_per_sample = 0;
    std::int64_t peak_activation_bytes_per_worker = 0;  // arena x max_batch
  };

  void record_batch(std::int64_t batch_size, std::int64_t queue_depth_after);
  void record_request(double queue_us, double total_us);

  /// Records the engine's planned activation footprint (per sample) and
  /// the per-worker worst case at the server's batch cap. Called once by
  /// the server constructor.
  void set_memory_contract(std::int64_t arena_bytes_per_sample,
                           std::int64_t peak_bytes_per_worker);

  Snapshot snapshot() const;
  void reset();

 private:
  // Latency samples are capped so an unbounded soak cannot grow memory;
  // counts and means keep aggregating past the cap, percentiles then
  // reflect the first kMaxSamples requests.
  static constexpr std::size_t kMaxSamples = 1 << 20;

  mutable std::mutex mutex_;
  std::vector<double> total_us_;
  double total_us_sum_ = 0.0;
  double queue_us_sum_ = 0.0;
  std::uint64_t requests_ = 0;
  std::uint64_t batches_ = 0;
  std::int64_t max_depth_ = 0;
  std::map<std::int64_t, std::uint64_t> histogram_;
  std::int64_t arena_bytes_per_sample_ = 0;
  std::int64_t peak_bytes_per_worker_ = 0;
};

}  // namespace adq::serve
