// Thread-safe serving statistics aggregator.
//
// Workers record one entry per completed batch (size, queue depth behind
// it) and one per completed request (queueing and end-to-end latency).
// snapshot() folds everything into the numbers an operator watches: tail
// latencies (p50/p95/p99), mean queue time, request/batch counts, the
// batch-size histogram (the direct evidence of how well the batcher is
// coalescing), and the high-water queue depth.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

namespace adq::serve {

class ServerStats {
 public:
  struct Snapshot {
    std::uint64_t requests = 0;
    std::uint64_t batches = 0;
    double p50_us = 0.0, p95_us = 0.0, p99_us = 0.0;  // end-to-end latency
    double mean_total_us = 0.0;
    double mean_queue_us = 0.0;
    double mean_batch = 0.0;  // requests / batches
    std::int64_t max_queue_depth = 0;
    // (batch size, count), ascending by size.
    std::vector<std::pair<std::int64_t, std::uint64_t>> batch_histogram;
  };

  void record_batch(std::int64_t batch_size, std::int64_t queue_depth_after);
  void record_request(double queue_us, double total_us);

  Snapshot snapshot() const;
  void reset();

 private:
  // Latency samples are capped so an unbounded soak cannot grow memory;
  // counts and means keep aggregating past the cap, percentiles then
  // reflect the first kMaxSamples requests.
  static constexpr std::size_t kMaxSamples = 1 << 20;

  mutable std::mutex mutex_;
  std::vector<double> total_us_;
  double total_us_sum_ = 0.0;
  double queue_us_sum_ = 0.0;
  std::uint64_t requests_ = 0;
  std::uint64_t batches_ = 0;
  std::int64_t max_depth_ = 0;
  std::map<std::int64_t, std::uint64_t> histogram_;
};

}  // namespace adq::serve
