// Thread-safe serving statistics aggregator.
//
// Workers record one entry per completed batch (size, queue depth behind
// it) and one per completed request (queue-wait, execution, and end-to-end
// latency, plus the precision-ladder rung that served it). snapshot()
// folds everything into the numbers an operator watches: tail latencies
// (end-to-end p50/p95/p99 AND the queue-wait/execution split at p50/p99,
// so an SLO breach is attributable to congestion vs compute), mean queue
// time, request/batch counts, the batch-size histogram (the direct
// evidence of how well the batcher is coalescing), the high-water queue
// depth, the live precision mix (requests served per ladder rung,
// step-down/step-up transition counts, current rung), and the static
// memory contract — the per-sample activation arena of the compiled plan
// and its per-worker bound at the batch cap (arena x max_batch, exact for
// the planned activation slots; per-thread kernel scratch — activation
// code buffers, im2col slabs, GEMM accumulators — is additional), set once
// by the server at construction.
//
// recent_p99_us() serves the SLO controller: the p99 over a sliding
// window of the latest completions, so the ladder reacts to current
// pressure rather than the lifetime distribution.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

namespace adq::serve {

class ServerStats {
 public:
  struct Snapshot {
    std::uint64_t requests = 0;
    std::uint64_t batches = 0;
    double p50_us = 0.0, p95_us = 0.0, p99_us = 0.0;  // end-to-end latency
    // Attributable split: time spent waiting in the queue (enqueue ->
    // batch formation) vs executing (batch formation -> completion).
    double p50_queue_us = 0.0, p99_queue_us = 0.0;
    double p50_exec_us = 0.0, p99_exec_us = 0.0;
    double mean_total_us = 0.0;
    double mean_queue_us = 0.0;
    double mean_batch = 0.0;  // requests / batches
    std::int64_t max_queue_depth = 0;
    // (batch size, count), ascending by size.
    std::vector<std::pair<std::int64_t, std::uint64_t>> batch_histogram;
    // Precision ladder: (rung, requests served on it), ascending by rung —
    // the live precision mix. Empty until a request completes. A plain
    // InferenceServer serves everything on rung 0.
    std::vector<std::pair<int, std::uint64_t>> precision_mix;
    std::uint64_t step_downs = 0;  // transitions toward cheaper precision
    std::uint64_t step_ups = 0;    // transitions back toward rung 0
    int current_step = 0;
    // Static memory contract (0 when the plan carries no memory plan):
    // the planned activation-slot footprint; kernel scratch is extra.
    std::int64_t arena_bytes_per_sample = 0;
    std::int64_t peak_activation_bytes_per_worker = 0;  // arena x max_batch
    // Activation-compression contract: what the same slots would occupy
    // stored as float words (the ADQ_ACT_BITS=off baseline; equals
    // arena_bytes_per_sample when nothing packs) and the slot mix as
    // (storage cell width, slot-owning ops) pairs, ascending — cell 0 =
    // float slots, 1/2/4/8 = packed sub-byte/byte cells.
    std::int64_t arena_bytes_u8_per_sample = 0;
    std::vector<std::pair<int, int>> act_cell_histogram;
    // Scheduler occupancy: pool size, instantaneous busy workers / live
    // parallel jobs at snapshot time, and the peaks observed at batch
    // completions — the direct evidence that serving workers overlap
    // compute instead of serializing behind a global region lock.
    int pool_threads = 1;
    int pool_busy_workers = 0;
    int pool_live_jobs = 0;
    int pool_busy_peak = 0;
    int pool_live_jobs_peak = 0;
  };

  void record_batch(std::int64_t batch_size, std::int64_t queue_depth_after);

  /// One completed request: queue-wait, execution, end-to-end latency, and
  /// the ladder rung that served it (0 for single-plan servers).
  void record_request(double queue_us, double exec_us, double total_us,
                      int ladder_step = 0);

  /// One ladder transition (from != to); keeps the direction counters and
  /// the published current rung.
  void record_transition(int from_step, int to_step);

  /// Publishes the rung without a transition (initial rung / pinned rung).
  void set_current_step(int step);

  /// p99 end-to-end latency over the newest kRecentWindow completions —
  /// the SLO controller's pressure signal. 0 before any completion.
  double recent_p99_us() const;

  /// Records the engine's planned activation footprint (per sample), the
  /// per-worker worst case at the server's batch cap, the float-storage
  /// baseline footprint, and the per-cell-width slot mix (index = cell
  /// bits, value = slot-owning ops). Called once by the server
  /// constructor.
  void set_memory_contract(std::int64_t arena_bytes_per_sample,
                           std::int64_t peak_bytes_per_worker,
                           std::int64_t arena_bytes_u8_per_sample = 0,
                           const std::array<int, 9>& act_cells = {});

  Snapshot snapshot() const;
  void reset();

 private:
  // Latency samples are capped so an unbounded soak cannot grow memory;
  // counts and means keep aggregating past the cap, percentiles then
  // reflect the first kMaxSamples requests.
  static constexpr std::size_t kMaxSamples = 1 << 20;
  // Sliding window behind recent_p99_us(): big enough to smooth one odd
  // batch, small enough to track a load transient within tens of batches.
  static constexpr std::size_t kRecentWindow = 256;

  mutable std::mutex mutex_;
  std::vector<double> total_us_;
  std::vector<double> queue_lat_us_;
  std::vector<double> exec_lat_us_;
  double recent_total_us_[kRecentWindow] = {};
  std::size_t recent_count_ = 0;  // total ever pushed into the ring
  double total_us_sum_ = 0.0;
  double queue_us_sum_ = 0.0;
  std::uint64_t requests_ = 0;
  std::uint64_t batches_ = 0;
  std::int64_t max_depth_ = 0;
  std::map<std::int64_t, std::uint64_t> histogram_;
  std::map<int, std::uint64_t> step_requests_;
  std::uint64_t step_downs_ = 0;
  std::uint64_t step_ups_ = 0;
  int current_step_ = 0;
  std::int64_t arena_bytes_per_sample_ = 0;
  std::int64_t peak_bytes_per_worker_ = 0;
  std::int64_t arena_bytes_u8_per_sample_ = 0;
  std::array<int, 9> act_cells_ = {};
  int pool_busy_peak_ = 0;
  int pool_live_jobs_peak_ = 0;
};

}  // namespace adq::serve
