// Dynamic batcher: the coalescing policy between the request queue and
// the engine.
//
// A burst of single-sample requests becomes one batched im2col + GEMM
// call through IntInferenceEngine — the integer engine's per-layer costs
// (weight panel packing, partial micro-tiles on small spatial maps)
// amortize across the batch, which is where serving throughput comes
// from. The policy is the classic two-trigger design: flush when
// `max_batch` requests have coalesced, or when the oldest waiting request
// has aged `max_wait_us` — so throughput under load never waits and
// latency under trickle traffic is bounded.
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

#include "serve/request_queue.h"

namespace adq::serve {

struct BatchPolicy {
  std::int64_t max_batch = 16;   // flush at this many coalesced requests
  std::int64_t max_wait_us = 200;  // ... or when the oldest aged this long
};

class DynamicBatcher {
 public:
  /// The queue must outlive the batcher. Throws std::invalid_argument on
  /// a non-positive max_batch or negative max_wait_us.
  DynamicBatcher(RequestQueue& queue, BatchPolicy policy);

  /// Blocks for the next coalesced batch (FIFO order). Empty result means
  /// the queue is closed and drained.
  std::vector<Request> next_batch();

  const BatchPolicy& policy() const { return policy_; }

 private:
  RequestQueue* queue_;
  BatchPolicy policy_;
};

}  // namespace adq::serve
