#include "serve/server.h"

#include <cerrno>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <utility>

#include "tensor/ops.h"
#include "tensor/parallel.h"

namespace adq::serve {
namespace {

double us_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::micro>(b - a).count();
}

}  // namespace

int threads_per_worker_from_env() {
  const char* env = std::getenv("ADQ_THREADS_PER_WORKER");
  if (env == nullptr) return 0;
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || errno == ERANGE || v < 1 || v > 4096) {
    throw std::invalid_argument("serve: ADQ_THREADS_PER_WORKER='" +
                                std::string(env) +
                                "' is not an integer in [1, 4096]");
  }
  return static_cast<int>(v);
}

int resolve_worker_budget(int threads_per_worker, int workers) {
  if (threads_per_worker > 0) return threads_per_worker;
  return std::max(1, parallel_thread_count() / std::max(1, workers));
}

InferenceServer::InferenceServer(const infer::IntInferenceEngine& engine,
                                 ServerConfig config)
    : engine_(&engine),
      config_(std::move(config)),
      batcher_(queue_, BatchPolicy{config_.max_batch, config_.max_wait_us}) {
  if (config_.sample_shape.rank() < 1) {
    throw std::invalid_argument("serve: config needs a sample_shape");
  }
  if (config_.workers < 1) {
    throw std::invalid_argument("serve: workers must be >= 1");
  }
  if (config_.threads_per_worker < 0) {
    throw std::invalid_argument("serve: threads_per_worker must be >= 0");
  }
  const int env_budget = threads_per_worker_from_env();
  if (env_budget > 0) config_.threads_per_worker = env_budget;
  worker_budget_ =
      resolve_worker_budget(config_.threads_per_worker, config_.workers);
  // The static memory contract: each worker runs at most one batch of at
  // most max_batch samples at a time, so under the slot executor its
  // planned activation slots occupy exactly arena x max_batch bytes (the
  // per-thread kernel scratch — code buffers, im2col slabs, accumulators —
  // comes on top of this).
  stats_.set_memory_contract(engine.arena_bytes_per_sample(),
                             engine.peak_activation_bytes(config_.max_batch),
                             engine.arena_bytes_u8_per_sample(),
                             engine.act_cell_histogram());
  workers_.reserve(static_cast<std::size_t>(config_.workers));
  for (int i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

InferenceServer::~InferenceServer() { shutdown(); }

std::future<InferenceResult> InferenceServer::submit(Tensor sample) {
  if (sample.shape() != config_.sample_shape) {
    throw std::invalid_argument("serve: sample shape " +
                                sample.shape().to_string() +
                                " does not match configured " +
                                config_.sample_shape.to_string());
  }
  return queue_.push(std::move(sample));
}

void InferenceServer::shutdown() {
  std::lock_guard<std::mutex> lock(shutdown_mutex_);
  if (joined_) return;
  queue_.close();
  for (std::thread& w : workers_) w.join();
  workers_.clear();
  joined_ = true;
}

void InferenceServer::worker_loop() {
  // Every parallel_for this worker's forwards dispatch is capped to its
  // share of the scheduler pool; with N workers mid-batch the machine is
  // partitioned instead of oversubscribed (see ScopedThreadBudget).
  const ScopedThreadBudget budget(worker_budget_);
  for (;;) {
    std::vector<Request> batch = batcher_.next_batch();
    if (batch.empty()) return;  // closed and drained
    const Clock::time_point formed = Clock::now();
    std::size_t completed = 0;  // promises already satisfied with a value
    try {
      std::vector<const Tensor*> samples;
      samples.reserve(batch.size());
      for (const Request& req : batch) samples.push_back(&req.sample);
      const Tensor x = stack_samples(samples);  // batched copy-in
      const Tensor logits = engine_->forward(x);
      const std::vector<std::int64_t> top1 = argmax_rows(logits);
      stats_.record_batch(static_cast<std::int64_t>(batch.size()),
                          queue_.depth());
      const Clock::time_point done = Clock::now();
      for (std::size_t i = 0; i < batch.size(); ++i) {
        Request& req = batch[i];
        InferenceResult r;
        r.id = req.id;
        r.sequence = completed_seq_.fetch_add(1, std::memory_order_relaxed);
        r.logits = take_sample(logits, static_cast<std::int64_t>(i));
        r.top1 = top1[i];
        r.batch_size = static_cast<std::int64_t>(batch.size());
        r.queue_us = us_between(req.enqueued, formed);
        r.exec_us = us_between(formed, done);
        r.total_us = us_between(req.enqueued, done);
        stats_.record_request(r.queue_us, r.exec_us, r.total_us);
        req.promise.set_value(std::move(r));
        ++completed;
      }
    } catch (...) {
      // A failed batch (shape surprises inside the plan, allocation
      // failure, ...) must not strand its requests: forward the exception
      // to every future that has not already received its value — a
      // promise satisfied before the failure must not be touched again
      // (set_exception on it would throw out of this handler and take the
      // worker thread down) — and keep serving.
      for (std::size_t i = completed; i < batch.size(); ++i) {
        batch[i].promise.set_exception(std::current_exception());
      }
    }
  }
}

}  // namespace adq::serve
