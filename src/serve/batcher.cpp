#include "serve/batcher.h"

#include <stdexcept>

namespace adq::serve {

DynamicBatcher::DynamicBatcher(RequestQueue& queue, BatchPolicy policy)
    : queue_(&queue), policy_(policy) {
  if (policy_.max_batch < 1) {
    throw std::invalid_argument("serve: max_batch must be >= 1");
  }
  if (policy_.max_wait_us < 0) {
    throw std::invalid_argument("serve: max_wait_us must be >= 0");
  }
}

std::vector<Request> DynamicBatcher::next_batch() {
  return queue_->pop_batch(policy_.max_batch,
                           std::chrono::microseconds(policy_.max_wait_us));
}

}  // namespace adq::serve
