#include "serve/request_queue.h"

#include <stdexcept>

namespace adq::serve {

RequestQueue::~RequestQueue() {
  fail_pending("serve: request queue destroyed before the request ran");
}

std::future<InferenceResult> RequestQueue::push(Tensor sample) {
  std::future<InferenceResult> future;
  bool wake = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) {
      throw std::runtime_error("serve: submit after shutdown");
    }
    Request req;
    req.id = next_id_++;
    req.sample = std::move(sample);
    req.enqueued = Clock::now();
    future = req.promise.get_future();
    pending_.push_back(std::move(req));
    wake = waiting_poppers_ > 0;
  }
  // One arrival needs ONE popper — and none at all when every popper is
  // already awake forming batches; waking the whole herd here just makes
  // M-1 workers contend the mutex to re-check a predicate one of them
  // already consumed.
  if (wake) cv_.notify_one();
  return future;
}

std::vector<Request> RequestQueue::pop_batch(std::int64_t max_batch,
                                             std::chrono::microseconds max_wait) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (static_cast<std::int64_t>(pending_.size()) >= max_batch || closed_) {
      break;  // full batch ready, or draining after close
    }
    if (!pending_.empty()) {
      // Wait for more arrivals, but no later than the oldest request's
      // deadline — flush whatever is here when the window closes.
      const auto deadline = pending_.front().enqueued + max_wait;
      if (Clock::now() >= deadline) break;
      ++waiting_poppers_;
      cv_.wait_until(lock, deadline);
      --waiting_poppers_;
      ++popper_wakeups_;
      continue;
    }
    ++waiting_poppers_;
    cv_.wait(lock);
    --waiting_poppers_;
    ++popper_wakeups_;
  }
  std::vector<Request> batch;
  const std::int64_t take =
      std::min<std::int64_t>(max_batch,
                             static_cast<std::int64_t>(pending_.size()));
  batch.reserve(static_cast<std::size_t>(take));
  for (std::int64_t i = 0; i < take; ++i) {
    batch.push_back(std::move(pending_.front()));
    pending_.pop_front();
  }
  return batch;
}

void RequestQueue::close() {
  bool wake = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    wake = waiting_poppers_ > 0;
  }
  // Shutdown is the one event every blocked popper must see (each either
  // drains a batch or exits) — notify_all is the point here, not a herd.
  if (wake) cv_.notify_all();
}

void RequestQueue::fail_pending(const std::string& why) {
  std::deque<Request> orphaned;
  bool wake = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    orphaned.swap(pending_);
    wake = waiting_poppers_ > 0;
  }
  if (wake) cv_.notify_all();
  // Promises are completed outside the lock: a future's continuation (a
  // caller blocked in get() on this thread's stack) must never run under
  // the queue mutex.
  for (Request& req : orphaned) {
    req.promise.set_exception(
        std::make_exception_ptr(ServerStopped(why)));
  }
}

bool RequestQueue::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

std::int64_t RequestQueue::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<std::int64_t>(pending_.size());
}

std::uint64_t RequestQueue::accepted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_id_;
}

std::uint64_t RequestQueue::popper_wakeups() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return popper_wakeups_;
}

}  // namespace adq::serve
