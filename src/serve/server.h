// InferenceServer: a multi-threaded dynamic-batching server over one
// shared IntInferenceEngine.
//
// submit() validates the sample's shape, enqueues it on the lock-guarded
// RequestQueue, and returns a std::future. Worker threads pull coalesced
// batches from the DynamicBatcher, stack them into one tensor (batched
// copy-in), run a single engine forward — so a burst of 1-sample requests
// executes as one batched im2col + GEMM per layer — and complete each
// request's promise with its logits row, top-1 class, and latency
// figures, feeding the ServerStats aggregator along the way.
//
// The engine's forward() is const and thread-safe (per-thread scratch,
// construction-time weight views), so every worker shares the one
// compiled plan: no packed-weight cloning, and a cold start is just
// load_plan() + engine + server.
//
// Numerics contract: the engine observes each layer's activation range
// over the WHOLE batch (exactly as the training-time FakeQuantizer would
// on that batch), so a request's logits depend on which requests it was
// coalesced with. Results are bit-identical to a direct engine call on
// the same stacked batch — the guarantee the tests and bench assert — but
// the same sample can produce slightly different logits under different
// traffic. Applications that need request-level determinism should serve
// with max_batch = 1.
//
// shutdown() stops intake, drains every accepted request, and joins the
// workers; the destructor calls it. Requests submitted after shutdown
// throw; requests accepted before it always complete.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <thread>
#include <vector>

#include "infer/engine.h"
#include "serve/batcher.h"
#include "serve/request_queue.h"
#include "serve/stats.h"
#include "tensor/shape.h"

namespace adq::serve {

struct ServerConfig {
  /// Shape of one request sample, without the batch axis (e.g.
  /// [3, 32, 32]). submit() rejects anything else.
  Shape sample_shape;
  std::int64_t max_batch = 16;
  std::int64_t max_wait_us = 200;
  /// Batch-executor threads. Each runs whole batches; the engine itself
  /// parallelises inside a batch via the ADQ_THREADS pool, so one worker
  /// is the right default unless forwards leave cores idle.
  int workers = 1;
  /// Intra-op thread budget each worker installs (ScopedThreadBudget)
  /// before serving batches. 0 = auto: pool size / workers, so a lone
  /// worker on an idle box still fans out wide while N busy workers
  /// partition the machine instead of fighting over every core. The
  /// ADQ_THREADS_PER_WORKER environment variable overrides when set.
  int threads_per_worker = 0;
};

/// Strict ADQ_THREADS_PER_WORKER grammar: unset returns 0 (auto);
/// otherwise a base-10 integer in [1, 4096], anything else throws
/// std::invalid_argument naming the offending text.
int threads_per_worker_from_env();

/// The budget each of `workers` batch executors actually installs:
/// `threads_per_worker` when explicit (> 0), otherwise an even split of
/// the scheduler pool (minimum 1).
int resolve_worker_budget(int threads_per_worker, int workers);

class InferenceServer {
 public:
  /// The engine must outlive the server. Throws std::invalid_argument on
  /// a config with no sample shape, workers < 1, or a bad batch policy.
  InferenceServer(const infer::IntInferenceEngine& engine,
                  ServerConfig config);
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Enqueues one sample; the future completes with its result (or the
  /// exception the batch execution raised). Throws on a shape mismatch or
  /// after shutdown().
  std::future<InferenceResult> submit(Tensor sample);

  /// Stops intake, drains all accepted requests, joins workers.
  /// Idempotent.
  void shutdown();

  ServerStats::Snapshot stats() const { return stats_.snapshot(); }
  std::int64_t queue_depth() const { return queue_.depth(); }
  const ServerConfig& config() const { return config_; }
  /// Resolved intra-op budget each worker runs under.
  int worker_thread_budget() const { return worker_budget_; }

 private:
  void worker_loop();

  const infer::IntInferenceEngine* engine_;
  ServerConfig config_;
  RequestQueue queue_;
  DynamicBatcher batcher_;
  ServerStats stats_;
  std::atomic<std::uint64_t> completed_seq_{0};
  int worker_budget_ = 0;
  std::vector<std::thread> workers_;
  bool joined_ = false;
  std::mutex shutdown_mutex_;
};

}  // namespace adq::serve
