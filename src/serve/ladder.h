// SLO-driven precision ladder controller.
//
// A model in the serving registry carries an ordered ladder of compiled
// plans — rung 0 the highest precision (e.g. int8), later rungs cheaper
// (the paper's mixed bit vector, int2). Instead of shedding load when an
// SLO is breached, the registry steps DOWN the ladder: the same weights
// at fewer bits execute faster (packed sub-byte GEMMs move a fraction of
// the weight traffic), so the queue drains while every request still gets
// an answer — precision, not availability, absorbs the overload. When the
// pressure clears, the controller steps back UP toward full precision.
//
// LadderController is a pure, deterministic state machine over
// (recent p99 latency, queue depth) observations — no clocks, no threads,
// no engine types — so its step-down/step-up traces are unit-testable
// from synthetic time series. The registry owns WHEN to tick it (after
// batches, rate-limited) and what its step means (which rung's engine the
// next batch runs on).
//
// Hysteresis, on both edges:
//   * step down only after `breach_ticks` CONSECUTIVE observations with
//     p99 above the target or the queue above its cap;
//   * step up only after `clear_ticks` CONSECUTIVE observations with both
//     signals below `clear_fraction` of their thresholds (a band strictly
//     inside the breach thresholds);
//   * observations in the band between "clear" and "breach" reset both
//     runs — the controller holds its rung.
// A steady signal inside the band therefore never oscillates, and a
// transition resets both runs so the next one needs fresh evidence.
#pragma once

#include <cstdint>
#include <string>

namespace adq::serve {

/// SLO targets + hysteresis shape. Defaults are deliberately mild; the
/// registry overrides p99_us from ADQ_SLO_P99_US when set (see
/// slo_from_env).
struct LadderSlo {
  /// Target p99 end-to-end latency (queue + execution), microseconds.
  double p99_us = 50'000.0;
  /// Queue-depth cap: pending requests beyond this is a breach even while
  /// latency still looks fine (depth is the leading indicator).
  std::int64_t max_queue_depth = 64;
  /// "Recovered" means BOTH signals below this fraction of their
  /// thresholds. Must be in (0, 1]; values near 1 shrink the hold band.
  double clear_fraction = 0.5;
  /// Consecutive breaching observations before stepping down.
  int breach_ticks = 2;
  /// Consecutive clear observations before stepping up (deliberately
  /// larger: recovery should be cautious, degradation prompt).
  int clear_ticks = 6;
};

class LadderController {
 public:
  /// `num_steps` = ladder size (>= 1). Throws std::invalid_argument on a
  /// non-positive size or malformed SLO (non-positive targets, counts
  /// < 1, clear_fraction outside (0, 1]).
  LadderController(int num_steps, LadderSlo slo);

  /// One observation; returns the rung to serve on from now (possibly
  /// unchanged). Pure function of the construction parameters and the
  /// observation sequence.
  int on_tick(double p99_us, std::int64_t queue_depth);

  int step() const { return step_; }
  int num_steps() const { return num_steps_; }
  const LadderSlo& slo() const { return slo_; }

 private:
  int num_steps_;
  LadderSlo slo_;
  int step_ = 0;
  int breach_run_ = 0;
  int clear_run_ = 0;
};

/// `slo` with p99_us replaced by ADQ_SLO_P99_US when that is set. Throws
/// std::invalid_argument on a non-numeric or non-positive value — a typo
/// must not silently serve with the default SLO.
LadderSlo slo_from_env(LadderSlo slo);

/// ADQ_LADDER policy: unset / "on" -> adaptive (returns -1); "off" ->
/// pinned to rung 0 (serve full precision, never degrade); an integer k
/// >= 0 -> pinned to rung k (clamped by the registry to the ladder's last
/// rung). Anything else throws std::invalid_argument.
int pinned_step_from_env();

}  // namespace adq::serve
