#include "serve/ladder.h"

#include <cstdlib>
#include <stdexcept>

namespace adq::serve {

LadderController::LadderController(int num_steps, LadderSlo slo)
    : num_steps_(num_steps), slo_(slo) {
  if (num_steps < 1) {
    throw std::invalid_argument("ladder: needs at least one step");
  }
  if (!(slo.p99_us > 0.0)) {
    throw std::invalid_argument("ladder: SLO p99 target must be positive");
  }
  if (slo.max_queue_depth < 1) {
    throw std::invalid_argument("ladder: queue-depth cap must be >= 1");
  }
  if (slo.breach_ticks < 1 || slo.clear_ticks < 1) {
    throw std::invalid_argument("ladder: hysteresis tick counts must be >= 1");
  }
  if (!(slo.clear_fraction > 0.0) || slo.clear_fraction > 1.0) {
    throw std::invalid_argument("ladder: clear_fraction must be in (0, 1]");
  }
}

int LadderController::on_tick(double p99_us, std::int64_t queue_depth) {
  const bool breach =
      p99_us > slo_.p99_us || queue_depth > slo_.max_queue_depth;
  const bool clear =
      p99_us <= slo_.clear_fraction * slo_.p99_us &&
      static_cast<double>(queue_depth) <=
          slo_.clear_fraction * static_cast<double>(slo_.max_queue_depth);
  breach_run_ = breach ? breach_run_ + 1 : 0;
  clear_run_ = clear ? clear_run_ + 1 : 0;
  if (breach_run_ >= slo_.breach_ticks && step_ < num_steps_ - 1) {
    ++step_;
    breach_run_ = 0;
    clear_run_ = 0;
  } else if (clear_run_ >= slo_.clear_ticks && step_ > 0) {
    --step_;
    breach_run_ = 0;
    clear_run_ = 0;
  }
  return step_;
}

LadderSlo slo_from_env(LadderSlo slo) {
  const char* env = std::getenv("ADQ_SLO_P99_US");
  if (env == nullptr || *env == '\0') return slo;
  char* end = nullptr;
  const double v = std::strtod(env, &end);
  if (end == env || *end != '\0' || !(v > 0.0)) {
    throw std::invalid_argument(
        std::string("ladder: ADQ_SLO_P99_US='") + env +
        "' is not a positive latency in microseconds");
  }
  slo.p99_us = v;
  return slo;
}

int pinned_step_from_env() {
  const char* env = std::getenv("ADQ_LADDER");
  if (env == nullptr || *env == '\0') return -1;
  const std::string v(env);
  if (v == "on") return -1;
  if (v == "off") return 0;
  char* end = nullptr;
  const long k = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || k < 0) {
    throw std::invalid_argument(
        "ladder: ADQ_LADDER='" + v +
        "' (expected on, off, or a rung index to pin)");
  }
  return static_cast<int>(k);
}

}  // namespace adq::serve
