#include "serve/registry.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <utility>

#include "infer/engine.h"
#include "infer/plan_io.h"
#include "serve/batcher.h"
#include "serve/server.h"
#include "tensor/ops.h"
#include "tensor/parallel.h"

namespace adq::serve {
namespace {

double us_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::micro>(b - a).count();
}

std::string hex_fingerprint(std::uint64_t fp) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(fp));
  return buf;
}

/// Batch-axis-free sample shape the plan's memory plan was computed
/// against — the registry's admission contract for the model.
Shape plan_sample_shape(const infer::InferencePlan& plan) {
  const infer::PlannedInput& pi = plan.planned_input;
  if (pi.rank == 3) return Shape{pi.channels, pi.height, pi.width};
  if (pi.rank == 1) return Shape{pi.channels};
  throw std::invalid_argument(
      "registry: plan '" + plan.model_name +
      "' carries no planned input shape (a format v1/v2 file?) — the "
      "registry needs format v3 plans");
}

/// Output dimension (elements per sample of the final op) simulated from
/// the planned input — what hot-swap compatibility compares.
std::int64_t plan_output_elems(const infer::InferencePlan& plan) {
  const std::vector<std::int64_t> elems = plan.op_out_elems();
  if (elems.empty()) {
    throw std::invalid_argument("registry: plan '" + plan.model_name +
                                "' has no ops");
  }
  return elems.back();
}

}  // namespace

/// One rung of a model's precision ladder. Immutable once built; workers
/// hold a shared_ptr per batch, so a hot swap retires the old rung only
/// after its last in-flight batch completes.
struct Rung {
  std::uint64_t fingerprint;
  infer::IntInferenceEngine engine;
  Rung(std::uint64_t fp, infer::InferencePlan plan)
      : fingerprint(fp), engine(std::move(plan)) {}
};

struct ModelRegistry::Model {
  std::string name;
  ModelConfig cfg;
  Shape sample_shape;
  std::int64_t out_elems = 0;
  RequestQueue queue;
  DynamicBatcher batcher;
  ServerStats stats;
  // rungs_mutex guards the rung POINTERS only; engines themselves are
  // immutable and thread-safe, and no forward runs under this lock.
  mutable std::mutex rungs_mutex;
  std::vector<std::shared_ptr<const Rung>> rungs;
  std::mutex ctrl_mutex;  // controller state + last_tick
  LadderController controller;
  int pinned = -1;  // >= 0: controller bypassed, serve this rung
  std::atomic<int> step{0};
  Clock::time_point last_tick;
  std::atomic<std::uint64_t> completed_seq{0};
  std::vector<std::thread> workers;
  std::mutex stop_mutex;
  bool joined = false;

  Model(std::string model_name, ModelConfig config, int num_steps)
      : name(std::move(model_name)),
        cfg(config),
        batcher(queue, BatchPolicy{cfg.max_batch, cfg.max_wait_us}),
        controller(num_steps, cfg.slo),
        last_tick(Clock::now()) {}

  /// Stops intake (failing still-queued requests when not draining),
  /// lets workers finish, joins them. Idempotent.
  void stop(bool drain) {
    std::lock_guard<std::mutex> lock(stop_mutex);
    if (drain) {
      queue.close();
    } else {
      queue.fail_pending("serve: model '" + name +
                         "' removed before the request ran");
    }
    if (joined) return;
    for (std::thread& w : workers) w.join();
    workers.clear();
    joined = true;
  }
};

ModelRegistry::ModelRegistry() = default;

ModelRegistry::~ModelRegistry() { shutdown(); }

void ModelRegistry::add_model(const std::string& name,
                              std::vector<infer::InferencePlan> ladder,
                              ModelConfig config) {
  if (ladder.empty()) {
    throw std::invalid_argument("registry: model '" + name +
                                "' needs at least one plan in its ladder");
  }
  if (config.workers < 1) {
    throw std::invalid_argument("registry: workers must be >= 1");
  }
  if (config.threads_per_worker < 0) {
    throw std::invalid_argument("registry: threads_per_worker must be >= 0");
  }
  if (config.tick_interval_us < 0 || config.shed_queue_depth < 0) {
    throw std::invalid_argument(
        "registry: tick_interval_us and shed_queue_depth must be >= 0");
  }
  if (config.use_env) {
    config.slo = slo_from_env(config.slo);
    if (std::getenv("ADQ_LADDER") != nullptr) {
      config.pin_step = pinned_step_from_env();
    }
    const int env_budget = threads_per_worker_from_env();
    if (env_budget > 0) config.threads_per_worker = env_budget;
  }
  const int num_steps = static_cast<int>(ladder.size());
  if (config.pin_step >= num_steps) config.pin_step = num_steps - 1;

  auto model = std::make_shared<Model>(name, config, num_steps);
  model->sample_shape = plan_sample_shape(ladder[0]);
  model->out_elems = plan_output_elems(ladder[0]);
  model->rungs.reserve(ladder.size());
  for (std::size_t i = 0; i < ladder.size(); ++i) {
    const std::uint64_t fp = infer::plan_fingerprint(ladder[i]);
    if (i > 0) {
      const Shape shape = plan_sample_shape(ladder[i]);
      const std::int64_t out = plan_output_elems(ladder[i]);
      if (shape != model->sample_shape || out != model->out_elems) {
        throw std::invalid_argument(
            "registry: model '" + name + "' ladder rung " + std::to_string(i) +
            " is incompatible with rung 0: input shape " + shape.to_string() +
            " vs " + model->sample_shape.to_string() + ", output dim " +
            std::to_string(out) + " vs " + std::to_string(model->out_elems) +
            " (rung-0 fingerprint " +
            hex_fingerprint(model->rungs[0]->fingerprint) + ", rung-" +
            std::to_string(i) + " fingerprint " + hex_fingerprint(fp) + ")");
      }
    }
    model->rungs.push_back(std::make_shared<Rung>(fp, std::move(ladder[i])));
  }
  const infer::IntInferenceEngine& e0 = model->rungs[0]->engine;
  model->stats.set_memory_contract(
      e0.arena_bytes_per_sample(), e0.peak_activation_bytes(config.max_batch),
      e0.arena_bytes_u8_per_sample(), e0.act_cell_histogram());
  model->pinned = config.pin_step;
  const int initial = config.pin_step >= 0 ? config.pin_step : 0;
  model->step.store(initial, std::memory_order_relaxed);
  model->stats.set_current_step(initial);

  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (models_.count(name) != 0) {
      throw std::invalid_argument("registry: model '" + name +
                                  "' is already registered");
    }
    models_.emplace(name, model);
  }
  Model* m = model.get();
  m->workers.reserve(static_cast<std::size_t>(config.workers));
  for (int i = 0; i < config.workers; ++i) {
    m->workers.emplace_back([this, m] { worker_loop(*m); });
  }
}

void ModelRegistry::add_model(const std::string& name,
                              const std::vector<std::string>& plan_paths,
                              ModelConfig config) {
  std::vector<infer::InferencePlan> ladder;
  ladder.reserve(plan_paths.size());
  for (const std::string& path : plan_paths) {
    ladder.push_back(infer::load_plan(path));
  }
  add_model(name, std::move(ladder), std::move(config));
}

std::shared_ptr<ModelRegistry::Model> ModelRegistry::find(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = models_.find(name);
  if (it == models_.end()) {
    throw std::out_of_range("registry: no model named '" + name + "'");
  }
  return it->second;
}

std::future<InferenceResult> ModelRegistry::submit(const std::string& name,
                                                   Tensor sample) {
  const std::shared_ptr<Model> m = find(name);
  if (sample.shape() != m->sample_shape) {
    throw std::invalid_argument(
        "registry: sample shape " + sample.shape().to_string() +
        " does not match model '" + name + "' input " +
        m->sample_shape.to_string());
  }
  if (m->cfg.shed_queue_depth > 0 &&
      m->queue.depth() >= m->cfg.shed_queue_depth) {
    throw ServerOverloaded("registry: model '" + name + "' shedding at queue depth " +
                           std::to_string(m->cfg.shed_queue_depth));
  }
  return m->queue.push(std::move(sample));
}

void ModelRegistry::hot_swap(const std::string& name, int step,
                             infer::InferencePlan plan) {
  const std::shared_ptr<Model> m = find(name);
  std::uint64_t incumbent_fp = 0;
  {
    std::lock_guard<std::mutex> lock(m->rungs_mutex);
    if (step < 0 || static_cast<std::size_t>(step) >= m->rungs.size()) {
      throw std::out_of_range("registry: model '" + name + "' has no rung " +
                              std::to_string(step));
    }
    incumbent_fp = m->rungs[static_cast<std::size_t>(step)]->fingerprint;
  }
  const std::uint64_t candidate_fp = infer::plan_fingerprint(plan);
  const Shape shape = plan_sample_shape(plan);
  const std::int64_t out = plan_output_elems(plan);
  if (shape != m->sample_shape || out != m->out_elems) {
    throw std::invalid_argument(
        "registry: refusing hot swap of model '" + name + "' rung " +
        std::to_string(step) + ": candidate input shape " + shape.to_string() +
        " / output dim " + std::to_string(out) +
        " differs from the incumbent's " + m->sample_shape.to_string() +
        " / " + std::to_string(m->out_elems) + " (incumbent fingerprint " +
        hex_fingerprint(incumbent_fp) + ", candidate fingerprint " +
        hex_fingerprint(candidate_fp) + ")");
  }
  // Build the new engine OUTSIDE the rung lock (construction repacks
  // weights — milliseconds), then swap the pointer. Workers that already
  // copied the old shared_ptr finish their batch on it; the old engine is
  // destroyed when the last of them releases it.
  auto incoming = std::make_shared<const Rung>(candidate_fp, std::move(plan));
  {
    std::lock_guard<std::mutex> lock(m->rungs_mutex);
    m->rungs[static_cast<std::size_t>(step)] = std::move(incoming);
  }
}

void ModelRegistry::hot_swap(const std::string& name, int step,
                             const std::string& plan_path) {
  hot_swap(name, step, infer::load_plan(plan_path));
}

void ModelRegistry::remove_model(const std::string& name, bool drain) {
  std::shared_ptr<Model> m;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = models_.find(name);
    if (it == models_.end()) {
      throw std::out_of_range("registry: no model named '" + name + "'");
    }
    m = std::move(it->second);
    models_.erase(it);
  }
  m->stop(drain);
}

void ModelRegistry::shutdown() {
  // Models stay in the map — stopped, but still queryable (final stats,
  // fingerprints) — only remove_model forgets a name.
  std::vector<std::shared_ptr<Model>> all;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [name, model] : models_) all.push_back(model);
  }
  for (auto& m : all) m->stop(/*drain=*/true);
}

std::vector<std::string> ModelRegistry::model_names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(models_.size());
  for (const auto& [name, model] : models_) names.push_back(name);
  return names;
}

ServerStats::Snapshot ModelRegistry::stats(const std::string& name) const {
  return find(name)->stats.snapshot();
}

std::int64_t ModelRegistry::queue_depth(const std::string& name) const {
  return find(name)->queue.depth();
}

int ModelRegistry::current_step(const std::string& name) const {
  return find(name)->step.load(std::memory_order_relaxed);
}

int ModelRegistry::ladder_size(const std::string& name) const {
  const std::shared_ptr<Model> m = find(name);
  std::lock_guard<std::mutex> lock(m->rungs_mutex);
  return static_cast<int>(m->rungs.size());
}

std::uint64_t ModelRegistry::rung_fingerprint(const std::string& name,
                                              int step) const {
  const std::shared_ptr<Model> m = find(name);
  std::lock_guard<std::mutex> lock(m->rungs_mutex);
  if (step < 0 || static_cast<std::size_t>(step) >= m->rungs.size()) {
    throw std::out_of_range("registry: model '" + name + "' has no rung " +
                            std::to_string(step));
  }
  return m->rungs[static_cast<std::size_t>(step)]->fingerprint;
}

Shape ModelRegistry::sample_shape(const std::string& name) const {
  return find(name)->sample_shape;
}

void ModelRegistry::worker_loop(Model& m) {
  // Each worker caps its forwards' parallel_for fan-out to its share of
  // the scheduler pool; N models x N workers then partition the machine
  // instead of oversubscribing it (see ScopedThreadBudget).
  const ScopedThreadBudget budget(
      resolve_worker_budget(m.cfg.threads_per_worker, m.cfg.workers));
  for (;;) {
    std::vector<Request> batch = m.batcher.next_batch();
    if (batch.empty()) return;  // closed and drained
    const Clock::time_point formed = Clock::now();
    // The rung is chosen ONCE per batch: copy the shared handle, never
    // hold the rung lock across the forward. A concurrent hot swap or
    // ladder transition affects the NEXT batch.
    const int step = m.step.load(std::memory_order_relaxed);
    std::shared_ptr<const Rung> rung;
    {
      std::lock_guard<std::mutex> lock(m.rungs_mutex);
      rung = m.rungs[static_cast<std::size_t>(step)];
    }
    std::size_t completed = 0;  // promises already satisfied with a value
    try {
      std::vector<const Tensor*> samples;
      samples.reserve(batch.size());
      for (const Request& req : batch) samples.push_back(&req.sample);
      const Tensor x = stack_samples(samples);  // batched copy-in
      const Tensor logits = rung->engine.forward(x);
      const std::vector<std::int64_t> top1 = argmax_rows(logits);
      m.stats.record_batch(static_cast<std::int64_t>(batch.size()),
                           m.queue.depth());
      const Clock::time_point done = Clock::now();
      for (std::size_t i = 0; i < batch.size(); ++i) {
        Request& req = batch[i];
        InferenceResult r;
        r.id = req.id;
        r.sequence = m.completed_seq.fetch_add(1, std::memory_order_relaxed);
        r.logits = take_sample(logits, static_cast<std::int64_t>(i));
        r.top1 = top1[i];
        r.batch_size = static_cast<std::int64_t>(batch.size());
        r.queue_us = us_between(req.enqueued, formed);
        r.exec_us = us_between(formed, done);
        r.total_us = us_between(req.enqueued, done);
        r.ladder_step = step;
        r.plan_fingerprint = rung->fingerprint;
        m.stats.record_request(r.queue_us, r.exec_us, r.total_us, step);
        req.promise.set_value(std::move(r));
        ++completed;
      }
    } catch (...) {
      // A failed batch must not strand its requests: forward the
      // exception to every future not already satisfied (touching a
      // satisfied promise again would throw out of this handler and take
      // the worker down) and keep serving.
      for (std::size_t i = completed; i < batch.size(); ++i) {
        batch[i].promise.set_exception(std::current_exception());
      }
    }
    maybe_tick(m);
  }
}

void ModelRegistry::maybe_tick(Model& m) {
  if (m.pinned >= 0) return;
  std::lock_guard<std::mutex> lock(m.ctrl_mutex);
  const Clock::time_point now = Clock::now();
  if (us_between(m.last_tick, now) <
      static_cast<double>(m.cfg.tick_interval_us)) {
    return;
  }
  m.last_tick = now;
  const int prev = m.controller.step();
  const int next = m.controller.on_tick(m.stats.recent_p99_us(),
                                        m.queue.depth());
  if (next != prev) {
    m.step.store(next, std::memory_order_relaxed);
    m.stats.record_transition(prev, next);
  }
}

}  // namespace adq::serve
