// Lock-guarded FIFO of pending inference requests.
//
// Producers (request threads) push single samples and receive a
// std::future for the result; the consumer side (the server's worker
// pool, through DynamicBatcher) pops requests in arrival order, up to a
// batch cap, waiting at most the batching window for a full batch.
// close() stops intake and wakes every waiting popper; remaining requests
// drain normally, so shutdown never drops accepted work.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <vector>

#include "tensor/tensor.h"

namespace adq::serve {

using Clock = std::chrono::steady_clock;

/// Completed inference for one request.
struct InferenceResult {
  std::uint64_t id = 0;        // arrival order (assigned at push)
  std::uint64_t sequence = 0;  // completion order across the server
  Tensor logits;               // [classes]
  std::int64_t top1 = -1;
  std::int64_t batch_size = 0;  // size of the coalesced batch it rode in
  double queue_us = 0.0;        // enqueue -> batch formation
  double total_us = 0.0;        // enqueue -> completion
};

/// One pending single-sample request.
struct Request {
  std::uint64_t id = 0;
  Tensor sample;  // sample shape, no batch axis
  Clock::time_point enqueued;
  std::promise<InferenceResult> promise;
};

class RequestQueue {
 public:
  /// Enqueues a sample; returns the future its result will complete.
  /// Throws std::runtime_error after close().
  std::future<InferenceResult> push(Tensor sample);

  /// Blocks until one of: `max_batch` requests are pending; the OLDEST
  /// pending request has waited `max_wait`; the queue is closed. Pops up
  /// to max_batch requests in FIFO order. An empty result means closed
  /// AND fully drained — the consumer should exit. Anchoring the deadline
  /// to the oldest request bounds every request's queueing delay by
  /// max_wait regardless of arrival pattern.
  std::vector<Request> pop_batch(std::int64_t max_batch,
                                 std::chrono::microseconds max_wait);

  /// Stops intake and wakes all poppers. Idempotent.
  void close();

  bool closed() const;

  /// Requests currently waiting (not yet popped into a batch).
  std::int64_t depth() const;

  /// Total requests ever accepted.
  std::uint64_t accepted() const;

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Request> pending_;
  std::uint64_t next_id_ = 0;
  bool closed_ = false;
};

}  // namespace adq::serve
