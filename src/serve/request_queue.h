// Lock-guarded FIFO of pending inference requests.
//
// Producers (request threads) push single samples and receive a
// std::future for the result; the consumer side (the server's worker
// pool, through DynamicBatcher) pops requests in arrival order, up to a
// batch cap, waiting at most the batching window for a full batch.
// close() stops intake and wakes every waiting popper; remaining requests
// drain normally, so shutdown never drops accepted work.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace adq::serve {

using Clock = std::chrono::steady_clock;

/// The error a request's future carries when serving stopped before the
/// request could execute: the queue was closed with fail_pending(), or it
/// was destroyed with requests still waiting. Distinct from a batch
/// execution failure (whatever the engine threw) and from the
/// std::runtime_error submit() raises after close() — an accepted request
/// is never silently dropped; its future always resolves.
class ServerStopped : public std::runtime_error {
 public:
  explicit ServerStopped(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown by admission control (ModelRegistry with a shed_queue_depth
/// configured) when a request is rejected at submit time because the
/// model's queue is already at its shedding limit. The request was never
/// accepted, so no future exists for it.
class ServerOverloaded : public std::runtime_error {
 public:
  explicit ServerOverloaded(const std::string& what)
      : std::runtime_error(what) {}
};

/// Completed inference for one request.
struct InferenceResult {
  std::uint64_t id = 0;        // arrival order (assigned at push)
  std::uint64_t sequence = 0;  // completion order across the server
  Tensor logits;               // [classes]
  std::int64_t top1 = -1;
  std::int64_t batch_size = 0;  // size of the coalesced batch it rode in
  double queue_us = 0.0;        // enqueue -> batch formation
  double exec_us = 0.0;         // batch formation -> completion
  double total_us = 0.0;        // enqueue -> completion
  /// Precision-ladder rung that executed this request (0 = highest
  /// precision; always 0 on a plain InferenceServer).
  int ladder_step = 0;
  /// plan_fingerprint() of the plan that executed this request (0 on a
  /// plain InferenceServer) — the identity hot-swap tests group by.
  std::uint64_t plan_fingerprint = 0;
};

/// One pending single-sample request.
struct Request {
  std::uint64_t id = 0;
  Tensor sample;  // sample shape, no batch axis
  Clock::time_point enqueued;
  std::promise<InferenceResult> promise;
};

class RequestQueue {
 public:
  /// Any request still pending at destruction has its future failed with
  /// ServerStopped (a consumer-less queue must not leave futures dangling
  /// on std::future_error{broken_promise}).
  ~RequestQueue();

  /// Enqueues a sample; returns the future its result will complete.
  /// Throws std::runtime_error after close().
  std::future<InferenceResult> push(Tensor sample);

  /// Blocks until one of: `max_batch` requests are pending; the OLDEST
  /// pending request has waited `max_wait`; the queue is closed. Pops up
  /// to max_batch requests in FIFO order. An empty result means closed
  /// AND fully drained — the consumer should exit. Anchoring the deadline
  /// to the oldest request bounds every request's queueing delay by
  /// max_wait regardless of arrival pattern.
  std::vector<Request> pop_batch(std::int64_t max_batch,
                                 std::chrono::microseconds max_wait);

  /// Stops intake and wakes all poppers. Pending requests remain poppable
  /// so a draining consumer completes them (graceful shutdown). Idempotent.
  void close();

  /// close() + fails every still-pending request's future with
  /// ServerStopped carrying `why` — the non-draining shutdown (a model
  /// being evicted, a server torn down without workers). Requests already
  /// popped into a batch are unaffected. Idempotent.
  void fail_pending(const std::string& why);

  bool closed() const;

  /// Requests currently waiting (not yet popped into a batch).
  std::int64_t depth() const;

  /// Total requests ever accepted.
  std::uint64_t accepted() const;

  /// Times a popper blocked in pop_batch() has been woken (notify or
  /// timeout). The contention contract — one arrival wakes ONE popper,
  /// only close()/fail_pending() wake the herd — is asserted against this
  /// counter in test_serve; a regression to notify_all-per-push multiplies
  /// it by the popper count.
  std::uint64_t popper_wakeups() const;

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Request> pending_;
  std::uint64_t next_id_ = 0;
  std::int64_t waiting_poppers_ = 0;  // blocked inside pop_batch()
  std::uint64_t popper_wakeups_ = 0;
  bool closed_ = false;
};

}  // namespace adq::serve
