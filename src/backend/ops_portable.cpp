// Portable reference implementations of the backend op table.
//
// The activation quantizer, depthwise kernels, fused epilogue and residual
// add moved here from src/infer/engine.cpp unchanged (same expressions,
// same evaluation order — the engine's logits must stay byte-identical
// across the refactor); the rest wrap the existing tensor/quant kernels so
// the registry exposes one uniform raw-pointer signature per op.
#include "backend/ops_portable.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "quant/quantizer.h"
#include "tensor/bitpack.h"
#include "tensor/gemm_int8.h"
#include "tensor/im2col.h"
#include "tensor/parallel.h"

namespace adq::backend {
namespace {

void im2col_u8_op(const std::uint8_t* im, const ConvGeometry& g,
                  std::uint8_t* col, std::int64_t col_stride,
                  std::uint8_t pad_code) {
  im2col_u8(im, g, col, col_stride, pad_code);
}

void im2col_f32_op(const float* im, const ConvGeometry& g, float* col,
                   std::int64_t col_stride) {
  im2col(im, g, col, col_stride);
}

ActQuant quantize_act_op(const float* px0, std::int64_t n, int bits,
                         std::uint8_t* pc) {
  ActQuant q;
  if (n == 0) return q;
  // Fused single-pass min/max over four independent accumulator lanes:
  // std::min/max reductions cannot be auto-vectorised (NaN ordering), so
  // the lanes buy instruction-level parallelism instead of a second and
  // third pass over the activations.
  float lo0 = px0[0], lo1 = px0[0], lo2 = px0[0], lo3 = px0[0];
  float hi0 = px0[0], hi1 = px0[0], hi2 = px0[0], hi3 = px0[0];
  std::int64_t i4 = 0;
  for (; i4 + 4 <= n; i4 += 4) {
    lo0 = std::min(lo0, px0[i4]);
    hi0 = std::max(hi0, px0[i4]);
    lo1 = std::min(lo1, px0[i4 + 1]);
    hi1 = std::max(hi1, px0[i4 + 1]);
    lo2 = std::min(lo2, px0[i4 + 2]);
    hi2 = std::max(hi2, px0[i4 + 2]);
    lo3 = std::min(lo3, px0[i4 + 3]);
    hi3 = std::max(hi3, px0[i4 + 3]);
  }
  float lo = std::min(std::min(lo0, lo1), std::min(lo2, lo3));
  float hi = std::max(std::max(hi0, hi1), std::max(hi2, hi3));
  for (; i4 < n; ++i4) {
    lo = std::min(lo, px0[i4]);
    hi = std::max(hi, px0[i4]);
  }
  q.a_min = lo;
  if (hi <= lo) {  // constant tensor: every code 0, value = a_min
    std::fill(pc, pc + n, 0);
    return q;
  }

  const float levels = static_cast<float>(quant::max_code(bits));
  q.a_scale = (hi - lo) / levels;
  const float inv = levels / (hi - lo);
  const float* px = px0;
  // Rounding via the 1.5 * 2^23 magic constant: adding it forces the
  // scaled value (in [0, 255]) to round to nearest-even into the low
  // mantissa bits — bit-identical to the std::nearbyint the FakeQuantizer
  // applies under the default FP environment, but a pure add, which lets
  // the SSE2 path below encode 16 activations per iteration where
  // nearbyint is a scalar libm call at baseline -O3.
  constexpr float kRoundMagic = 12582912.0f;
  std::uint32_t magic_bits;
  std::memcpy(&magic_bits, &kRoundMagic, sizeof(magic_bits));
  parallel_for(0, n, [&](std::int64_t b, std::int64_t e) {
    std::int64_t i = b;
#if defined(__SSE2__)
    const __m128 vlo = _mm_set1_ps(lo), vhi = _mm_set1_ps(hi);
    const __m128 vinv = _mm_set1_ps(inv), vmagic = _mm_set1_ps(kRoundMagic);
    const __m128i vmbits = _mm_set1_epi32(static_cast<int>(magic_bits));
    for (; i + 16 <= e; i += 16) {
      __m128i q4[4];
      for (int part = 0; part < 4; ++part) {
        __m128 v = _mm_loadu_ps(px + i + 4 * part);
        v = _mm_min_ps(_mm_max_ps(v, vlo), vhi);
        v = _mm_add_ps(_mm_mul_ps(_mm_sub_ps(v, vlo), vinv), vmagic);
        q4[part] = _mm_sub_epi32(_mm_castps_si128(v), vmbits);
      }
      // Codes are in [0, 255], so the signed saturating packs are exact.
      const __m128i lo16 = _mm_packs_epi32(q4[0], q4[1]);
      const __m128i hi16 = _mm_packs_epi32(q4[2], q4[3]);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(pc + i),
                       _mm_packus_epi16(lo16, hi16));
    }
#endif
    for (; i < e; ++i) {
      const float v = std::clamp(px[i], lo, hi);
      const float t = (v - lo) * inv + kRoundMagic;
      std::uint32_t bits_t;
      std::memcpy(&bits_t, &t, sizeof(bits_t));
      pc[i] = static_cast<std::uint8_t>(bits_t - magic_bits);
    }
  }, /*grain=*/4096);
  const float zero = std::clamp(0.0f, lo, hi);
  q.zero_code = static_cast<std::uint8_t>(std::nearbyint((zero - lo) * inv));
  return q;
}

void fake_quant_op(const float* x, std::int64_t n, int bits, float* out) {
  quant::fake_quantize_into(x, n, bits, out);
}

void dequantize_op(const std::uint8_t* codes, std::int64_t n,
                   const ActQuant& q, float* out) {
  for (std::int64_t i = 0; i < n; ++i) {
    out[i] = q.a_min + q.a_scale * static_cast<float>(codes[i]);
  }
}

void epilogue_row_op(const std::int32_t* acc, const std::int32_t* colsum,
                     float ss, float row_term, float ca, float ea, float eb,
                     bool relu, std::int64_t n, float* out) {
  for (std::int64_t s = 0; s < n; ++s) {
    float v = ss * static_cast<float>(acc[s]) + row_term;
    if (colsum != nullptr) v += ca * static_cast<float>(colsum[s]);
    v = ea * v + eb;
    out[s] = relu ? std::max(v, 0.0f) : v;
  }
}

void depthwise_int_op(const std::uint8_t* act, std::int64_t B,
                      const std::uint8_t* wc, const DepthwiseArgs& a,
                      float* out) {
  const std::int64_t C = a.channels, H = a.in_h, W = a.in_w;
  const std::int64_t oh = a.out_h(), ow = a.out_w();
  const std::int64_t k = a.kernel, stride = a.stride, pad = a.pad;

  parallel_for(0, B * C, [&](std::int64_t p0, std::int64_t p1) {
    for (std::int64_t p = p0; p < p1; ++p) {
      const std::int64_t c = p % C;
      float* dst = out + p * oh * ow;
      if (c >= a.active_channels) {
        std::fill(dst, dst + oh * ow, 0.0f);
        continue;
      }
      const std::uint8_t* plane = act + p * H * W;
      const std::uint8_t* w = wc + c * k * k;
      const float row_term =
          a.cw * static_cast<float>(a.w_code_sums[static_cast<std::size_t>(c)]) +
          a.cc;
      const float ea = a.epi_scale[static_cast<std::size_t>(c)];
      const float eb = a.epi_shift[static_cast<std::size_t>(c)];
      for (std::int64_t y = 0; y < oh; ++y) {
        for (std::int64_t xo = 0; xo < ow; ++xo) {
          std::int32_t acc = 0, asum = 0;
          for (std::int64_t ky = 0; ky < k; ++ky) {
            const std::int64_t iy = y * stride + ky - pad;
            for (std::int64_t kx = 0; kx < k; ++kx) {
              const std::int64_t ix = xo * stride + kx - pad;
              const std::int32_t code =
                  (iy < 0 || iy >= H || ix < 0 || ix >= W)
                      ? a.zero_code
                      : plane[iy * W + ix];
              acc += static_cast<std::int32_t>(w[ky * k + kx]) * code;
              asum += code;
            }
          }
          float v = a.ss * static_cast<float>(acc) + row_term +
                    a.ca * static_cast<float>(asum);
          v = ea * v + eb;
          dst[y * ow + xo] = a.relu ? std::max(v, 0.0f) : v;
        }
      }
    }
  });
}

void depthwise_f32_op(const float* x, std::int64_t B, const float* weights,
                      const DepthwiseArgs& a, float* out) {
  const std::int64_t C = a.channels, H = a.in_h, W = a.in_w;
  const std::int64_t oh = a.out_h(), ow = a.out_w();
  const std::int64_t k = a.kernel, stride = a.stride, pad = a.pad;

  parallel_for(0, B * C, [&](std::int64_t p0, std::int64_t p1) {
    for (std::int64_t p = p0; p < p1; ++p) {
      const std::int64_t c = p % C;
      float* dst = out + p * oh * ow;
      if (c >= a.active_channels) {
        std::fill(dst, dst + oh * ow, 0.0f);
        continue;
      }
      const float* plane = x + p * H * W;
      const float* w = weights + c * k * k;
      const float ea = a.epi_scale[static_cast<std::size_t>(c)];
      const float eb = a.epi_shift[static_cast<std::size_t>(c)];
      for (std::int64_t y = 0; y < oh; ++y) {
        for (std::int64_t xo = 0; xo < ow; ++xo) {
          float acc = 0.0f;
          for (std::int64_t ky = 0; ky < k; ++ky) {
            const std::int64_t iy = y * stride + ky - pad;
            if (iy < 0 || iy >= H) continue;
            for (std::int64_t kx = 0; kx < k; ++kx) {
              const std::int64_t ix = xo * stride + kx - pad;
              if (ix < 0 || ix >= W) continue;
              acc += w[ky * k + kx] * plane[iy * W + ix];
            }
          }
          const float v = ea * acc + eb;
          dst[y * ow + xo] = a.relu ? std::max(v, 0.0f) : v;
        }
      }
    }
  });
}

void residual_add_op(const float* cur, const float* skip, std::int64_t B,
                     std::int64_t C, std::int64_t hw,
                     std::int64_t mask_channels, float* dst) {
  const std::int64_t live = mask_channels < 0 ? C : mask_channels;
  for (std::int64_t b = 0; b < B; ++b) {
    for (std::int64_t c = 0; c < C; ++c) {
      float* d = dst + (b * C + c) * hw;
      if (c >= live) {
        std::fill(d, d + hw, 0.0f);
        continue;
      }
      const float* cu = cur + (b * C + c) * hw;
      const float* sk = skip + (b * C + c) * hw;
      for (std::int64_t i = 0; i < hw; ++i) {
        d[i] = std::max(cu[i] + sk[i], 0.0f);
      }
    }
  }
}

void pack_codes_op(const std::uint8_t* codes, std::int64_t count,
                   int cell_bits, std::uint8_t* packed) {
  pack_codes(codes, count, cell_bits, packed);
}

// Sub-byte weight GEMM reference: unpack the row-aligned packed A into a
// byte-per-code scratch, then defer to the u8 oracle. Deliberately the
// obvious form — the SIMD tiers' in-register nibble/crumb expansion is
// judged against this bit for bit.
void igemm_packed_ref(std::int64_t m, std::int64_t n, std::int64_t k,
                      const std::uint8_t* a_packed, std::int64_t lda_bytes,
                      const std::uint8_t* b, std::int64_t ldb, std::int32_t* c,
                      std::int64_t ldc, int cell_bits) {
  thread_local std::vector<std::uint8_t> scratch;
  if (static_cast<std::int64_t>(scratch.size()) < m * k) {
    scratch.resize(static_cast<std::size_t>(m * k));
  }
  for (std::int64_t i = 0; i < m; ++i) {
    unpack_codes(a_packed + i * lda_bytes, k, cell_bits,
                 scratch.data() + i * k);
  }
  igemm_u8_generic(m, n, k, scratch.data(), k, b, ldb, c, ldc);
}

void igemm_u8w4_op(std::int64_t m, std::int64_t n, std::int64_t k,
                   const std::uint8_t* a_packed, std::int64_t lda_bytes,
                   const std::uint8_t* b, std::int64_t ldb, std::int32_t* c,
                   std::int64_t ldc) {
  igemm_packed_ref(m, n, k, a_packed, lda_bytes, b, ldb, c, ldc, 4);
}

void igemm_u8w2_op(std::int64_t m, std::int64_t n, std::int64_t k,
                   const std::uint8_t* a_packed, std::int64_t lda_bytes,
                   const std::uint8_t* b, std::int64_t ldb, std::int32_t* c,
                   std::int64_t ldc) {
  igemm_packed_ref(m, n, k, a_packed, lda_bytes, b, ldb, c, ldc, 2);
}

void unpack_codes_op(const std::uint8_t* packed, std::int64_t count,
                     int cell_bits, std::uint8_t* codes) {
  unpack_codes(packed, count, cell_bits, codes);
}

// Per-forward arena-slot compression: same cell layout as pack_codes, but
// parallelized across byte-group-aligned chunks (a chunk boundary is always
// a multiple of 8/cell codes, so every worker writes disjoint whole bytes).
// Chunks delegate to the scalar bitpack kernels, which are the ground truth
// the conformance case also checks against.
void act_pack_op(const std::uint8_t* codes, std::int64_t count, int cell_bits,
                 std::uint8_t* packed) {
  if (count <= 0) return;
  if (cell_bits == 8) {
    std::memcpy(packed, codes, static_cast<std::size_t>(count));
    return;
  }
  const std::int64_t per = 8 / cell_bits;
  const std::int64_t groups = (count + per - 1) / per;
  parallel_for(0, groups, [&](std::int64_t g0, std::int64_t g1) {
    const std::int64_t c0 = g0 * per;
    const std::int64_t c1 = std::min(count, g1 * per);
    pack_codes(codes + c0, c1 - c0, cell_bits, packed + g0);
  }, /*grain=*/4096);
}

void act_unpack_op(const std::uint8_t* packed, std::int64_t count,
                   int cell_bits, std::uint8_t* codes) {
  if (count <= 0) return;
  if (cell_bits == 8) {
    std::memcpy(codes, packed, static_cast<std::size_t>(count));
    return;
  }
  const std::int64_t per = 8 / cell_bits;
  const std::int64_t groups = (count + per - 1) / per;
  parallel_for(0, groups, [&](std::int64_t g0, std::int64_t g1) {
    const std::int64_t c0 = g0 * per;
    const std::int64_t c1 = std::min(count, g1 * per);
    unpack_codes(packed + g0, c1 - c0, cell_bits, codes + c0);
  }, /*grain=*/4096);
}

}  // namespace

const Backend& portable_backend() {
  static const Backend b = [] {
    Backend t;
    t.name = "portable";
    t.available = true;
    t.igemm = &igemm_u8_generic;
    t.igemm_w4 = &igemm_u8w4_op;
    t.igemm_w2 = &igemm_u8w2_op;
    t.im2col_u8 = &im2col_u8_op;
    t.im2col_f32 = &im2col_f32_op;
    t.depthwise_int = &depthwise_int_op;
    t.depthwise_f32 = &depthwise_f32_op;
    t.quantize_act = &quantize_act_op;
    t.fake_quant = &fake_quant_op;
    t.dequantize = &dequantize_op;
    t.epilogue_row = &epilogue_row_op;
    t.residual_add = &residual_add_op;
    t.pack_codes = &pack_codes_op;
    t.unpack_codes = &unpack_codes_op;
    t.act_pack = &act_pack_op;
    t.act_unpack = &act_unpack_op;
    return t;
  }();
  return b;
}

}  // namespace adq::backend
