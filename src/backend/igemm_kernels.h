// Private declarations for the SIMD igemm translation units in this
// directory. These symbols are implementation details of the avx2/vnni
// backends — nothing outside src/backend/ may reference them; every other
// caller goes through backend::active().igemm.
#pragma once

#include <cstdint>

namespace adq {

/// True when the running CPU can execute the AVX2 kernel (and the TU was
/// compiled with AVX2 support).
bool igemm_avx2_available();

/// AVX2 vpmaddwd kernel. Bit-identical to igemm_u8_generic.
void igemm_u8_avx2(std::int64_t m, std::int64_t n, std::int64_t k,
                   const std::uint8_t* a, std::int64_t lda,
                   const std::uint8_t* b, std::int64_t ldb, std::int32_t* c,
                   std::int64_t ldc);

/// True when the running CPU can execute the AVX2 sub-byte kernels (same
/// ISA requirement as the int8 kernel; kept separate so a narrower tier
/// could later split them).
bool igemm_subbyte_avx2_available();

/// AVX2 nibble-packed int4-weight kernel (vpmaddubsw over in-register
/// expanded nibbles). A rows are byte-aligned packed, lda in bytes.
/// Bit-identical to the portable igemm_u8w4 reference.
void igemm_u8w4_avx2(std::int64_t m, std::int64_t n, std::int64_t k,
                     const std::uint8_t* a_packed, std::int64_t lda_bytes,
                     const std::uint8_t* b, std::int64_t ldb, std::int32_t* c,
                     std::int64_t ldc);

/// AVX2 crumb-serial int2-weight kernel. Same contract at 2-bit cells.
void igemm_u8w2_avx2(std::int64_t m, std::int64_t n, std::int64_t k,
                     const std::uint8_t* a_packed, std::int64_t lda_bytes,
                     const std::uint8_t* b, std::int64_t ldb, std::int32_t* c,
                     std::int64_t ldc);

/// AVX2 activation-slot pack: same little-endian cell layout and chunked
/// parallel contract as the portable act_pack, vectorized for the 4-bit
/// (nibble merge) and 2-bit (two-stage merge) cells the activation planner
/// emits; 1/8-bit cells take the scalar/memcpy path. Bit-identical to the
/// scalar pack_codes. Gated on igemm_subbyte_avx2_available().
void act_pack_avx2(const std::uint8_t* codes, std::int64_t count,
                   int cell_bits, std::uint8_t* packed);

/// Inverse of act_pack_avx2 (nibble/crumb split + byte interleave).
void act_unpack_avx2(const std::uint8_t* packed, std::int64_t count,
                     int cell_bits, std::uint8_t* codes);

/// True when the running CPU can execute the AVX-512 VNNI kernel.
bool igemm_vnni_available();

/// AVX-512 VNNI vpdpbusd kernel. Bit-identical to igemm_u8_generic.
void igemm_u8_vnni(std::int64_t m, std::int64_t n, std::int64_t k,
                   const std::uint8_t* a, std::int64_t lda,
                   const std::uint8_t* b, std::int64_t ldb, std::int32_t* c,
                   std::int64_t ldc);

/// VNNI nibble-packed int4-weight kernel: packed codes expand straight to
/// s8 (they fit without the -128 offset, so no colsum correction), then the
/// same vpdpbusd micro-kernels run. A rows byte-aligned packed, lda bytes.
void igemm_u8w4_vnni(std::int64_t m, std::int64_t n, std::int64_t k,
                     const std::uint8_t* a_packed, std::int64_t lda_bytes,
                     const std::uint8_t* b, std::int64_t ldb, std::int32_t* c,
                     std::int64_t ldc);

/// VNNI crumb-packed int2-weight kernel. Same contract at 2-bit cells.
void igemm_u8w2_vnni(std::int64_t m, std::int64_t n, std::int64_t k,
                     const std::uint8_t* a_packed, std::int64_t lda_bytes,
                     const std::uint8_t* b, std::int64_t ldb, std::int32_t* c,
                     std::int64_t ldc);

}  // namespace adq
