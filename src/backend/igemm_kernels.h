// Private declarations for the SIMD igemm translation units in this
// directory. These symbols are implementation details of the avx2/vnni
// backends — nothing outside src/backend/ may reference them; every other
// caller goes through backend::active().igemm.
#pragma once

#include <cstdint>

namespace adq {

/// True when the running CPU can execute the AVX2 kernel (and the TU was
/// compiled with AVX2 support).
bool igemm_avx2_available();

/// AVX2 vpmaddwd kernel. Bit-identical to igemm_u8_generic.
void igemm_u8_avx2(std::int64_t m, std::int64_t n, std::int64_t k,
                   const std::uint8_t* a, std::int64_t lda,
                   const std::uint8_t* b, std::int64_t ldb, std::int32_t* c,
                   std::int64_t ldc);

/// True when the running CPU can execute the AVX-512 VNNI kernel.
bool igemm_vnni_available();

/// AVX-512 VNNI vpdpbusd kernel. Bit-identical to igemm_u8_generic.
void igemm_u8_vnni(std::int64_t m, std::int64_t n, std::int64_t k,
                   const std::uint8_t* a, std::int64_t lda,
                   const std::uint8_t* b, std::int64_t ldb, std::int32_t* c,
                   std::int64_t ldc);

}  // namespace adq
