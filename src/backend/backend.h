// Explicit backend / op interface for the inference kernels.
//
// Every performance-critical op the integer engine executes — the u8 GEMM,
// im2col patch lowering, depthwise convolution, activation quantize /
// dequantize, the fused affine epilogue, the residual add, and sub-byte
// pack/unpack — is reached through a Backend: a named table of typed kernel
// pointers. Backends register in backend/registry.cpp (`portable`, `avx2`,
// `vnni`); the engine calls ops only through backend::active(), so pinning
// ADQ_BACKEND=<name> redirects every op end to end, and the conformance
// harness (backend/conformance.h, tests/test_backend_ops.cpp) can drive any
// backend against the portable reference case by case. A new backend
// (fixed-point NEON, a GPU offload, the PIM simulator as an execution
// target, sub-byte native kernels) implements this struct, registers, and
// inherits both the engine integration and the randomized conformance gate
// without touching src/infer/.
//
// Contract: for every op, all backends compute the same function. Integer
// outputs (GEMM accumulators, quantization codes, lowered patch bytes,
// packed cells) must match the portable reference bit for bit — integer
// arithmetic has one right answer. Float outputs (depthwise, epilogue,
// residual add, fake-quant, dequantize) must match within the conformance
// NMSE bound, which today is also exact since every registered backend
// shares the portable float paths.
#pragma once

#include <cstdint>

#include "tensor/im2col.h"  // ConvGeometry — the one conv-shape contract

namespace adq::backend {

/// Observed dynamic range of an activation tensor quantized to eqn-1
/// codes — the same observation FakeQuantizer::apply makes on this tensor
/// in the training path, so code -> value round-trips land on the same
/// grid.
struct ActQuant {
  float a_min = 0.0f;
  float a_scale = 0.0f;        // 0 for a degenerate (constant) tensor
  std::uint8_t zero_code = 0;  // grid code closest to the value 0.0 (padding)
};

/// Depthwise convolution arguments, decoupled from the engine's layer plan
/// so the conformance harness can construct cases directly. The integer
/// path reads the trailing block (w_code_sums .. zero_code); the float path
/// ignores it.
struct DepthwiseArgs {
  std::int64_t channels = 0;  // in_channels == out_channels
  std::int64_t in_h = 0, in_w = 0;
  std::int64_t kernel = 1, stride = 1, pad = 0;
  std::int64_t active_channels = 0;  // channels >= this write zeros (eqn 5)
  const float* epi_scale = nullptr;  // [channels] fused affine epilogue
  const float* epi_shift = nullptr;  // [channels]
  bool relu = false;

  // Integer path only: the zero-point correction constants of plan.h
  // (K = kernel^2) and the code that pads like im2col_u8 does.
  const std::int32_t* w_code_sums = nullptr;  // [channels]
  float ss = 0.0f;  // a_scale * w_scale
  float cw = 0.0f;  // a_min * w_scale   (multiplies w_code_sums[c])
  float ca = 0.0f;  // w_min * a_scale   (multiplies the patch code sum)
  float cc = 0.0f;  // K * a_min * w_min
  std::uint8_t zero_code = 0;

  std::int64_t out_h() const { return (in_h + 2 * pad - kernel) / stride + 1; }
  std::int64_t out_w() const { return (in_w + 2 * pad - kernel) / stride + 1; }
};

/// C[m x n] = A[m x k] * B[k x n] over u8 codes, writing (not accumulating
/// into) int32 C. Raw-pointer, row-major; lda/ldb/ldc are row strides in
/// elements.
using IgemmFn = void (*)(std::int64_t m, std::int64_t n, std::int64_t k,
                         const std::uint8_t* a, std::int64_t lda,
                         const std::uint8_t* b, std::int64_t ldb,
                         std::int32_t* c, std::int64_t ldc);

/// Sub-byte weight GEMM: C[m x n] = A[m x k] * B[k x n] where A holds
/// packed weight codes — two 4-bit nibbles (igemm_u8w4) or four 2-bit
/// crumbs (igemm_u8w2) per byte, little-endian within the byte, each row
/// byte-aligned (see packed_row_bytes) with zero tail bits. B is plain u8
/// codes. lda is A's row stride in BYTES; ldb/ldc are element strides as in
/// IgemmFn. Writes (not accumulates into) int32 C. The packed operand is
/// unpacked in-register per panel — no byte-weight materialization.
using IgemmPackedFn = void (*)(std::int64_t m, std::int64_t n, std::int64_t k,
                               const std::uint8_t* a_packed,
                               std::int64_t lda_bytes, const std::uint8_t* b,
                               std::int64_t ldb, std::int32_t* c,
                               std::int64_t ldc);

/// Lowers one image of u8 codes to its [patch, out_h*out_w] column block;
/// patch row r starts at col + r * col_stride. Padding taps read pad_code.
using Im2colU8Fn = void (*)(const std::uint8_t* im, const ConvGeometry& g,
                            std::uint8_t* col, std::int64_t col_stride,
                            std::uint8_t pad_code);

/// Float variant (training-exact layers); padding taps read 0.0f.
using Im2colF32Fn = void (*)(const float* im, const ConvGeometry& g,
                             float* col, std::int64_t col_stride);

/// Whole-batch integer depthwise conv over pre-quantized codes, fused with
/// the per-channel zero-point correction and affine epilogue. act is
/// [batch, channels, in_h, in_w] codes, w_codes [channels, kernel^2], out
/// [batch, channels, out_h, out_w] floats.
using DepthwiseIntFn = void (*)(const std::uint8_t* act, std::int64_t batch,
                                const std::uint8_t* w_codes,
                                const DepthwiseArgs& args, float* out);

/// Float depthwise conv (same epilogue fusion, zero padding).
using DepthwiseF32Fn = void (*)(const float* x, std::int64_t batch,
                                const float* w, const DepthwiseArgs& args,
                                float* out);

/// Observes min/max of x[0..n), quantizes every element to a k-bit eqn-1
/// code in `codes` (caller-sized), and returns the observed range. Must be
/// bit-identical to the FakeQuantizer's observation + rounding.
using QuantizeActFn = ActQuant (*)(const float* x, std::int64_t n, int bits,
                                   std::uint8_t* codes);

/// Snaps x[0..n) onto the k-bit grid of its own min/max into out (out may
/// alias x) — quantize + dequantize fused, the training path's fake quant.
using FakeQuantFn = void (*)(const float* x, std::int64_t n, int bits,
                             float* out);

/// Maps codes back to float values on the observed grid:
/// out[i] = a_min + a_scale * codes[i].
using DequantizeFn = void (*)(const std::uint8_t* codes, std::int64_t n,
                              const ActQuant& q, float* out);

/// Fused epilogue over one output row (`n` positions):
///   y = ea * (ss * acc + row_term + ca * colsum) + eb, then optional ReLU.
/// `colsum` may be null when ca == 0.
using EpilogueRowFn = void (*)(const std::int32_t* acc,
                               const std::int32_t* colsum, float ss,
                               float row_term, float ca, float ea, float eb,
                               bool relu, std::int64_t n, float* out);

/// dst = ReLU(cur + skip) over [b, c, hw] with channels >= mask_channels
/// zeroed (mask_channels < 0 disables the mask). dst may alias cur.
using ResidualAddFn = void (*)(const float* cur, const float* skip,
                               std::int64_t b, std::int64_t c, std::int64_t hw,
                               std::int64_t mask_channels, float* dst);

/// Packs `count` codes (< 2^cell_bits each) into little-endian cells.
using PackCodesFn = void (*)(const std::uint8_t* codes, std::int64_t count,
                             int cell_bits, std::uint8_t* packed);

/// Inverse of PackCodesFn: one code per output byte.
using UnpackCodesFn = void (*)(const std::uint8_t* packed, std::int64_t count,
                               int cell_bits, std::uint8_t* codes);

/// Packs `count` activation codes (< 2^cell_bits each) into little-endian
/// cells — same layout as PackCodesFn, but this is the per-forward hot path
/// that compresses arena slots (act_pack_u8pN), so implementations may
/// parallelize across byte-group-aligned chunks. Slack bytes past
/// packed_bytes(count, cell_bits) are never written.
using ActPackFn = void (*)(const std::uint8_t* codes, std::int64_t count,
                           int cell_bits, std::uint8_t* packed);

/// Inverse of ActPackFn (act_unpack_pNu8): expands a packed arena slot back
/// to one code per byte for the GEMM/im2col consumers. Same parallel
/// contract; bytes past `count` codes are never read beyond the packed
/// extent.
using ActUnpackFn = void (*)(const std::uint8_t* packed, std::int64_t count,
                             int cell_bits, std::uint8_t* codes);

/// One registered backend: a complete op table. Unavailable backends stay
/// registered (so error messages can name them) but must not be called.
struct Backend {
  const char* name = "";
  bool available = false;
  IgemmFn igemm = nullptr;
  IgemmPackedFn igemm_w4 = nullptr;  // nibble-packed int4 weights
  IgemmPackedFn igemm_w2 = nullptr;  // crumb-packed int2 weights
  Im2colU8Fn im2col_u8 = nullptr;
  Im2colF32Fn im2col_f32 = nullptr;
  DepthwiseIntFn depthwise_int = nullptr;
  DepthwiseF32Fn depthwise_f32 = nullptr;
  QuantizeActFn quantize_act = nullptr;
  FakeQuantFn fake_quant = nullptr;
  DequantizeFn dequantize = nullptr;
  EpilogueRowFn epilogue_row = nullptr;
  ResidualAddFn residual_add = nullptr;
  PackCodesFn pack_codes = nullptr;
  UnpackCodesFn unpack_codes = nullptr;
  ActPackFn act_pack = nullptr;
  ActUnpackFn act_unpack = nullptr;
};

/// The registry's op enumeration — one entry per Backend table slot. The
/// conformance harness, its perf mode, and bench_micro all iterate this
/// instead of hand-listing kernels, so a newly registered op is tested and
/// benchmarked the moment it exists.
enum class Op {
  kIgemm,
  kIgemmW4,
  kIgemmW2,
  kIm2colU8,
  kIm2colF32,
  kDepthwiseInt,
  kDepthwiseF32,
  kQuantizeAct,
  kFakeQuant,
  kDequantize,
  kEpilogue,
  kResidualAdd,
  kBitpack,  // pack + unpack round trip, verified as one op
  kActPack,    // hot-path arena-slot compression (act_pack_u8pN)
  kActUnpack,  // hot-path arena-slot expansion (act_unpack_pNu8)
};

inline constexpr Op kAllOps[] = {
    Op::kIgemm,       Op::kIgemmW4,     Op::kIgemmW2,   Op::kIm2colU8,
    Op::kIm2colF32,   Op::kDepthwiseInt, Op::kDepthwiseF32,
    Op::kQuantizeAct, Op::kFakeQuant,   Op::kDequantize, Op::kEpilogue,
    Op::kResidualAdd, Op::kBitpack,     Op::kActPack,   Op::kActUnpack};

/// Stable lowercase op name (the --op filter / repro-command vocabulary).
const char* op_name(Op op);

/// Parses an op_name back; returns false on an unknown name.
bool op_from_name(const char* name, Op* out);

}  // namespace adq::backend
