#include "backend/registry.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "backend/igemm_kernels.h"
#include "backend/ops_portable.h"

namespace adq::backend {
namespace {

// The SIMD tiers share every op with the portable table except the GEMM —
// today the only kernel with a hand-written vector variant. A tier that
// later specialises more ops (the ROADMAP's native sub-byte path) just
// overrides more slots here and the conformance harness covers it
// automatically.
const Backend& avx2_backend() {
  static const Backend b = [] {
    Backend t = portable_backend();
    t.name = "avx2";
    t.available = igemm_avx2_available();
    t.igemm = &igemm_u8_avx2;
    t.igemm_w4 = &igemm_u8w4_avx2;
    t.igemm_w2 = &igemm_u8w2_avx2;
    t.act_pack = &act_pack_avx2;
    t.act_unpack = &act_unpack_avx2;
    return t;
  }();
  return b;
}

const Backend& vnni_backend() {
  static const Backend b = [] {
    Backend t = portable_backend();
    t.name = "vnni";
    t.available = igemm_vnni_available();
    t.igemm = &igemm_u8_vnni;
    t.igemm_w4 = &igemm_u8w4_vnni;
    t.igemm_w2 = &igemm_u8w2_vnni;
    // The AVX2 activation pack/unpack is a strict subset of the VNNI ISA,
    // so the VNNI tier reuses it rather than duplicating the kernels.
    t.act_pack = &act_pack_avx2;
    t.act_unpack = &act_unpack_avx2;
    return t;
  }();
  return b;
}

// Test-only override (see registry.h): lets one process run engines under
// several backends even though active() latches its env resolve.
std::atomic<const Backend*> g_override{nullptr};

std::string roster_message() {
  std::string msg = "registered backends:";
  for (const Backend* b : all_backends()) {
    msg += " ";
    msg += b->name;
    msg += b->available ? " (available)" : " (unavailable on this host)";
  }
  return msg;
}

[[noreturn]] void fail_selection(const std::string& what) {
  throw std::runtime_error("backend: " + what + "; " + roster_message());
}

}  // namespace

const std::vector<const Backend*>& all_backends() {
  // Ascending preference; portable must stay first (the reference and the
  // fallback when no SIMD tier is available).
  static const std::vector<const Backend*> all = {
      &portable_backend(), &avx2_backend(), &vnni_backend()};
  return all;
}

std::vector<const Backend*> available_backends() {
  std::vector<const Backend*> out;
  for (const Backend* b : all_backends()) {
    if (b->available) out.push_back(b);
  }
  return out;
}

const Backend* find_backend(const char* name) {
  if (name == nullptr) return nullptr;
  for (const Backend* b : all_backends()) {
    if (std::strcmp(b->name, name) == 0) return b;
  }
  return nullptr;
}

const Backend& resolve_backends_env(const char* adq_backend,
                                    const char* adq_simd) {
  const char* requested = adq_backend;
  if (requested == nullptr && adq_simd != nullptr) {
    // Legacy spelling: ADQ_SIMD capped the igemm dispatch before the
    // registry existed. Map its vocabulary onto backend names so old
    // invocations keep their meaning — but validate just as strictly.
    if (std::strcmp(adq_simd, "generic") == 0) {
      requested = "portable";
    } else if (find_backend(adq_simd) != nullptr) {
      requested = adq_simd;
    } else {
      fail_selection(std::string("unknown ADQ_SIMD value '") + adq_simd +
                     "' (legacy alias: generic -> portable)");
    }
  }
  if (requested != nullptr) {
    const Backend* b = find_backend(requested);
    if (b == nullptr) {
      fail_selection(std::string("unknown ADQ_BACKEND '") + requested + "'");
    }
    if (!b->available) {
      fail_selection(std::string("backend '") + requested +
                     "' is not available on this host");
    }
    return *b;
  }
  // Unpinned: best available = last available in registration order.
  const Backend* best = &portable_backend();
  for (const Backend* b : all_backends()) {
    if (b->available) best = b;
  }
  return *best;
}

const Backend& active() {
  const Backend* forced = g_override.load(std::memory_order_acquire);
  if (forced != nullptr) return *forced;
  // Cached on first successful resolve; a throwing resolve (bad pin) is NOT
  // cached, so every call keeps failing loudly rather than latching a
  // half-initialised state.
  static const Backend& b =
      resolve_backends_env(std::getenv("ADQ_BACKEND"), std::getenv("ADQ_SIMD"));
  return b;
}

const Backend* exchange_backend_override(const Backend* backend) {
  return g_override.exchange(backend, std::memory_order_acq_rel);
}

const char* op_name(Op op) {
  switch (op) {
    case Op::kIgemm: return "igemm";
    case Op::kIgemmW4: return "igemm_u8w4";
    case Op::kIgemmW2: return "igemm_u8w2";
    case Op::kIm2colU8: return "im2col_u8";
    case Op::kIm2colF32: return "im2col_f32";
    case Op::kDepthwiseInt: return "depthwise_int";
    case Op::kDepthwiseF32: return "depthwise_f32";
    case Op::kQuantizeAct: return "quantize_act";
    case Op::kFakeQuant: return "fake_quant";
    case Op::kDequantize: return "dequantize";
    case Op::kEpilogue: return "epilogue";
    case Op::kResidualAdd: return "residual_add";
    case Op::kBitpack: return "bitpack";
    case Op::kActPack: return "act_pack";
    case Op::kActUnpack: return "act_unpack";
  }
  return "?";
}

bool op_from_name(const char* name, Op* out) {
  if (name == nullptr) return false;
  for (Op op : kAllOps) {
    if (std::strcmp(op_name(op), name) == 0) {
      *out = op;
      return true;
    }
  }
  return false;
}

}  // namespace adq::backend
