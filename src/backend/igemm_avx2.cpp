// AVX2 variant of the blocked u8 x u8 -> i32 GEMM (see gemm_int8.h).
//
// Same Kc x Nc cache blocking and 4 x 16 tile shape as the portable
// kernel, but the inner loop consumes the int16 panels in k-PAIRS through
// vpmaddwd: each madd multiplies 16 int16 lanes and adds adjacent pairs
// into 8 int32 lanes, i.e. 16 MACs per instruction. To feed it, the B
// panel is packed k-pair interleaved — element (2p, j) sits next to
// (2p+1, j) — while the A panel stays row-major (a row's adjacent k
// entries ARE the pair, broadcast as one 32-bit lane). Products are at
// most 255 * 255, so a pair sum fits int32 with no saturation, and int32
// accumulation is exact like the portable kernel — the two variants agree
// bit for bit (asserted in tests/test_infer.cpp).
//
// This translation unit is the only one compiled with -mavx2 (CMake adds
// the flag together with ADQ_AVX2_BUILD when the compiler supports it);
// the backend registry only routes here after __builtin_cpu_supports
// ("avx2"), so the library binary stays runnable on any x86-64 host.
#include "backend/igemm_kernels.h"

#include "tensor/gemm_int8.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "tensor/parallel.h"

#if defined(ADQ_AVX2_BUILD)
#include <immintrin.h>
#endif

namespace adq {

#if defined(ADQ_AVX2_BUILD)

namespace {

constexpr std::int64_t kMr = 4;
constexpr std::int64_t kNr = 16;
constexpr std::int64_t kKc = 256;
constexpr std::int64_t kNc = 256;

std::int16_t* thread_panel(std::int64_t count, int which) {
  thread_local std::vector<std::int16_t> panels[2];
  std::vector<std::int16_t>& p = panels[which];
  if (static_cast<std::int64_t>(p.size()) < count) {
    p.resize(static_cast<std::size_t>(count));
  }
  return p.data();
}

// Widens block [r0, r0+mc) x [c0, c0+kc) of A row-major into int16 rows of
// stride kc_even; an odd tail column is zero-padded so k-pair loads read a
// harmless 0.
void pack_a(const std::uint8_t* m, std::int64_t ld, std::int64_t r0,
            std::int64_t mc, std::int64_t c0, std::int64_t kc,
            std::int64_t kc_even, std::int16_t* dst) {
  for (std::int64_t i = 0; i < mc; ++i) {
    const std::uint8_t* src = m + (r0 + i) * ld + c0;
    std::int16_t* out = dst + i * kc_even;
    std::int64_t j = 0;
    for (; j + 16 <= kc; j += 16) {
      const __m128i v =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + j));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + j),
                          _mm256_cvtepu8_epi16(v));
    }
    for (; j < kc; ++j) out[j] = src[j];
    if (kc_even != kc) out[kc] = 0;
  }
}

// Widens block [c0, c0+kc) x [j0, j0+nc) of B into the k-pair interleaved
// panel: pair p of columns j lands at dst[p * 2 * nc + 2 * j + {0, 1}]. An
// odd trailing k row is paired with zeros. This pack touches every slab
// byte once per GEMM, so the bulk path widens 16 columns of both rows and
// interleaves them with one unpack pair per store.
void pack_b_interleaved(const std::uint8_t* m, std::int64_t ld,
                        std::int64_t c0, std::int64_t kc, std::int64_t j0,
                        std::int64_t nc, std::int16_t* dst) {
  const std::int64_t pairs = (kc + 1) / 2;
  for (std::int64_t p = 0; p < pairs; ++p) {
    const std::uint8_t* row0 = m + (c0 + 2 * p) * ld + j0;
    const bool has_row1 = 2 * p + 1 < kc;
    const std::uint8_t* row1 = has_row1 ? row0 + ld : nullptr;
    std::int16_t* out = dst + p * 2 * nc;
    std::int64_t j = 0;
    if (has_row1) {
      for (; j + 16 <= nc; j += 16) {
        const __m256i w0 = _mm256_cvtepu8_epi16(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(row0 + j)));
        const __m256i w1 = _mm256_cvtepu8_epi16(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(row1 + j)));
        // Interleave within 128-bit lanes, then fix lane order so column
        // pairs land in ascending column order.
        const __m256i lo = _mm256_unpacklo_epi16(w0, w1);  // cols 0-3, 8-11
        const __m256i hi = _mm256_unpackhi_epi16(w0, w1);  // cols 4-7, 12-15
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(out + 2 * j),
            _mm256_permute2x128_si256(lo, hi, 0x20));  // cols 0-7
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(out + 2 * j + 16),
            _mm256_permute2x128_si256(lo, hi, 0x31));  // cols 8-15
      }
    }
    for (; j < nc; ++j) {
      out[2 * j] = row0[j];
      out[2 * j + 1] = has_row1 ? row1[j] : 0;
    }
  }
}

// Full 4 x 16 tile over `pairs` k-pairs. `a` rows have stride lda (even);
// `b` is the interleaved panel with row-pair stride 2 * ldb_cols.
void micro_kernel_avx2(std::int64_t pairs, const std::int16_t* a,
                       std::int64_t lda, const std::int16_t* b,
                       std::int64_t ldb_cols, std::int32_t* c,
                       std::int64_t ldc) {
  __m256i acc00 = _mm256_setzero_si256(), acc01 = _mm256_setzero_si256();
  __m256i acc10 = _mm256_setzero_si256(), acc11 = _mm256_setzero_si256();
  __m256i acc20 = _mm256_setzero_si256(), acc21 = _mm256_setzero_si256();
  __m256i acc30 = _mm256_setzero_si256(), acc31 = _mm256_setzero_si256();
  for (std::int64_t p = 0; p < pairs; ++p) {
    const std::int16_t* bp = b + p * 2 * ldb_cols;
    const __m256i b0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bp));
    const __m256i b1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bp + 16));
    std::int32_t pair0, pair1, pair2, pair3;
    std::memcpy(&pair0, a + 0 * lda + 2 * p, sizeof(pair0));
    std::memcpy(&pair1, a + 1 * lda + 2 * p, sizeof(pair1));
    std::memcpy(&pair2, a + 2 * lda + 2 * p, sizeof(pair2));
    std::memcpy(&pair3, a + 3 * lda + 2 * p, sizeof(pair3));
    const __m256i a0 = _mm256_set1_epi32(pair0);
    const __m256i a1 = _mm256_set1_epi32(pair1);
    const __m256i a2 = _mm256_set1_epi32(pair2);
    const __m256i a3 = _mm256_set1_epi32(pair3);
    acc00 = _mm256_add_epi32(acc00, _mm256_madd_epi16(a0, b0));
    acc01 = _mm256_add_epi32(acc01, _mm256_madd_epi16(a0, b1));
    acc10 = _mm256_add_epi32(acc10, _mm256_madd_epi16(a1, b0));
    acc11 = _mm256_add_epi32(acc11, _mm256_madd_epi16(a1, b1));
    acc20 = _mm256_add_epi32(acc20, _mm256_madd_epi16(a2, b0));
    acc21 = _mm256_add_epi32(acc21, _mm256_madd_epi16(a2, b1));
    acc30 = _mm256_add_epi32(acc30, _mm256_madd_epi16(a3, b0));
    acc31 = _mm256_add_epi32(acc31, _mm256_madd_epi16(a3, b1));
  }
  const __m256i accs[4][2] = {
      {acc00, acc01}, {acc10, acc11}, {acc20, acc21}, {acc30, acc31}};
  for (int i = 0; i < 4; ++i) {
    std::int32_t* cp = c + i * ldc;
    for (int half = 0; half < 2; ++half) {
      __m256i* dst = reinterpret_cast<__m256i*>(cp + 8 * half);
      _mm256_storeu_si256(
          dst, _mm256_add_epi32(_mm256_loadu_si256(dst), accs[i][half]));
    }
  }
}

// Partial-row tile at full width (mr < 4, nr == 16) — the tail rows of a
// small weight matrix and the engine's all-ones column-sum row land here,
// at every batch size, so it stays vectorised.
template <int MR>
void micro_kernel_rows_avx2(std::int64_t pairs, const std::int16_t* a,
                            std::int64_t lda, const std::int16_t* b,
                            std::int64_t ldb_cols, std::int32_t* c,
                            std::int64_t ldc) {
  __m256i acc[MR][2];
  for (int i = 0; i < MR; ++i) {
    acc[i][0] = _mm256_setzero_si256();
    acc[i][1] = _mm256_setzero_si256();
  }
  for (std::int64_t p = 0; p < pairs; ++p) {
    const std::int16_t* bp = b + p * 2 * ldb_cols;
    const __m256i b0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bp));
    const __m256i b1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bp + 16));
    for (int i = 0; i < MR; ++i) {
      std::int32_t pair;
      std::memcpy(&pair, a + i * lda + 2 * p, sizeof(pair));
      const __m256i av = _mm256_set1_epi32(pair);
      acc[i][0] = _mm256_add_epi32(acc[i][0], _mm256_madd_epi16(av, b0));
      acc[i][1] = _mm256_add_epi32(acc[i][1], _mm256_madd_epi16(av, b1));
    }
  }
  for (int i = 0; i < MR; ++i) {
    std::int32_t* cp = c + i * ldc;
    for (int half = 0; half < 2; ++half) {
      __m256i* dst = reinterpret_cast<__m256i*>(cp + 8 * half);
      _mm256_storeu_si256(
          dst, _mm256_add_epi32(_mm256_loadu_si256(dst), acc[i][half]));
    }
  }
}

// Edge tile (nr < 16) on the same interleaved panel, scalar.
void edge_kernel(std::int64_t pairs, const std::int16_t* a, std::int64_t lda,
                 const std::int16_t* b, std::int64_t ldb_cols, std::int32_t* c,
                 std::int64_t ldc, std::int64_t mr, std::int64_t nr) {
  std::int32_t acc[kMr][kNr] = {};
  for (std::int64_t p = 0; p < pairs; ++p) {
    const std::int16_t* bp = b + p * 2 * ldb_cols;
    for (std::int64_t i = 0; i < mr; ++i) {
      const std::int32_t a0 = a[i * lda + 2 * p];
      const std::int32_t a1 = a[i * lda + 2 * p + 1];
      for (std::int64_t j = 0; j < nr; ++j) {
        acc[i][j] += a0 * bp[2 * j] + a1 * bp[2 * j + 1];
      }
    }
  }
  for (std::int64_t i = 0; i < mr; ++i) {
    std::int32_t* cp = c + i * ldc;
    for (std::int64_t j = 0; j < nr; ++j) cp[j] += acc[i][j];
  }
}

void gemm_block_avx2(std::int64_t k, const std::uint8_t* a, std::int64_t lda,
                     const std::uint8_t* b, std::int64_t ldb, std::int32_t* c,
                     std::int64_t ldc, std::int64_t i0, std::int64_t mc,
                     std::int64_t j0, std::int64_t nc_total) {
  std::int16_t* a_pack = thread_panel(mc * (kKc + 1), 0);
  std::int16_t* b_pack = thread_panel((kKc + 1) * kNc, 1);
  for (std::int64_t p0 = 0; p0 < k; p0 += kKc) {
    const std::int64_t kc = std::min(kKc, k - p0);
    const std::int64_t kc_even = kc + (kc & 1);
    const std::int64_t pairs = kc_even / 2;
    pack_a(a, lda, i0, mc, p0, kc, kc_even, a_pack);
    for (std::int64_t jb = 0; jb < nc_total; jb += kNc) {
      const std::int64_t nc = std::min(kNc, nc_total - jb);
      pack_b_interleaved(b, ldb, p0, kc, j0 + jb, nc, b_pack);
      for (std::int64_t jr = 0; jr < nc; jr += kNr) {
        const std::int64_t nr = std::min(kNr, nc - jr);
        for (std::int64_t ir = 0; ir < mc; ir += kMr) {
          const std::int64_t mr = std::min(kMr, mc - ir);
          std::int32_t* ct = c + (i0 + ir) * ldc + (j0 + jb + jr);
          const std::int16_t* at = a_pack + ir * kc_even;
          const std::int16_t* bt = b_pack + 2 * jr;
          if (nr == kNr) {
            switch (mr) {
              case kMr:
                micro_kernel_avx2(pairs, at, kc_even, bt, nc, ct, ldc);
                break;
              case 3:
                micro_kernel_rows_avx2<3>(pairs, at, kc_even, bt, nc, ct, ldc);
                break;
              case 2:
                micro_kernel_rows_avx2<2>(pairs, at, kc_even, bt, nc, ct, ldc);
                break;
              default:
                micro_kernel_rows_avx2<1>(pairs, at, kc_even, bt, nc, ct, ldc);
                break;
            }
          } else {
            edge_kernel(pairs, at, kc_even, bt, nc, ct, ldc, mr, nr);
          }
        }
      }
    }
  }
}

}  // namespace

bool igemm_avx2_available() {
  static const bool ok = __builtin_cpu_supports("avx2") != 0;
  return ok;
}

void igemm_u8_avx2(std::int64_t m, std::int64_t n, std::int64_t k,
                   const std::uint8_t* a, std::int64_t lda,
                   const std::uint8_t* b, std::int64_t ldb, std::int32_t* c,
                   std::int64_t ldc) {
  detail::igemm_blocked(m, n, k, a, lda, b, ldb, c, ldc, &gemm_block_avx2);
}

#else  // !ADQ_AVX2_BUILD — non-x86 toolchains: fall through to the
       // portable kernel so the symbols still link.

bool igemm_avx2_available() { return false; }

void igemm_u8_avx2(std::int64_t m, std::int64_t n, std::int64_t k,
                   const std::uint8_t* a, std::int64_t lda,
                   const std::uint8_t* b, std::int64_t ldb, std::int32_t* c,
                   std::int64_t ldc) {
  igemm_u8_generic(m, n, k, a, lda, b, ldb, c, ldc);
}

#endif

}  // namespace adq
