// AVX-512 VNNI variant of the blocked u8 x u8 -> i32 GEMM (see
// gemm_int8.h).
//
// vpdpbusd accumulates four u8 x s8 products per int32 lane in one
// instruction — 64 MACs per zmm op, with no int16 widening pass at all.
// Operands are arranged so the unsigned side is the activation panel and
// the signed side the weights:
//
//   * B (activations) packs into k-quad interleaved u8: quad q of column j
//     holds rows 4q..4q+3 — a plain 4 x 16 byte transpose per group, with
//     zero-padded tail rows. While packing (the one pass that touches
//     every slab byte anyway) the per-column code sums accumulate into an
//     int32 row.
//   * A (weights) packs into s8 as w - 128, which always fits. The GEMM
//     then computes sum (w - 128) * a = C - 128 * colsum, so adding
//     128 * colsum back per column — one cheap pass over C — restores the
//     exact unsigned result. Every value stays well inside int32
//     (vpdpbusd's 4-product sums don't saturate at these magnitudes), so
//     this variant agrees bit for bit with the portable kernel.
//
// Like the AVX2 variant, only this translation unit is compiled with the
// AVX-512 flags (ADQ_VNNI_BUILD), and the backend registry routes here
// only after runtime __builtin_cpu_supports checks.
#include "backend/igemm_kernels.h"

#include "tensor/gemm_int8.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "tensor/bitpack.h"
#include "tensor/parallel.h"

#if defined(ADQ_VNNI_BUILD)
#include <immintrin.h>
#endif

namespace adq {

#if defined(ADQ_VNNI_BUILD)

namespace {

constexpr std::int64_t kMr = 4;
constexpr std::int64_t kNr = 16;
constexpr std::int64_t kKc = 256;  // k-block; always a multiple of 4
constexpr std::int64_t kNc = 256;

std::uint8_t* thread_buf(std::int64_t count, int which) {
  thread_local std::vector<std::uint8_t> bufs[3];
  std::vector<std::uint8_t>& b = bufs[which];
  if (static_cast<std::int64_t>(b.size()) < count) {
    b.resize(static_cast<std::size_t>(count));
  }
  return b.data();
}

// Packs block [r0, r0+mc) x [c0, c0+kc) of the u8 weights as s8 (w - 128),
// rows padded with zeros to kc4 (a zero A byte annihilates whatever the
// padded B byte holds).
void pack_a_s8(const std::uint8_t* m, std::int64_t ld, std::int64_t r0,
               std::int64_t mc, std::int64_t c0, std::int64_t kc,
               std::int64_t kc4, std::int8_t* dst) {
  const __m512i bias = _mm512_set1_epi8(-128);
  for (std::int64_t i = 0; i < mc; ++i) {
    const std::uint8_t* src = m + (r0 + i) * ld + c0;
    std::int8_t* out = dst + i * kc4;
    std::int64_t j = 0;
    for (; j + 64 <= kc; j += 64) {
      const __m512i v = _mm512_loadu_si512(src + j);
      _mm512_storeu_si512(out + j, _mm512_add_epi8(v, bias));
    }
    for (; j < kc; ++j) {
      out[j] = static_cast<std::int8_t>(static_cast<int>(src[j]) - 128);
    }
    for (; j < kc4; ++j) out[j] = 0;
  }
}

// Expands block [r0, r0+mc) x [c0, c0+kc) of row-aligned packed sub-byte
// weights (CELL bits per code) into s8 rows of stride kc4 — codes are at
// most 15, so they fit s8 directly and the GEMM needs neither the -128
// offset nor the colsum correction the u8 weight path pays. c0 is a kKc
// multiple, so it lands on a byte boundary.
template <int CELL>
void pack_a_expand_s8(const std::uint8_t* a_packed, std::int64_t lda_bytes,
                      std::int64_t r0, std::int64_t mc, std::int64_t c0,
                      std::int64_t kc, std::int64_t kc4, std::int8_t* dst) {
  constexpr std::int64_t kPer = 8 / CELL;
  for (std::int64_t i = 0; i < mc; ++i) {
    const std::uint8_t* src = a_packed + (r0 + i) * lda_bytes + c0 / kPer;
    std::int8_t* out = dst + i * kc4;
    std::int64_t j = 0;
    if constexpr (CELL == 4) {
      // 16 packed bytes -> 32 nibbles: split low/high nibbles, then byte
      // interleave restores original code order.
      const __m128i lo_mask = _mm_set1_epi8(0x0F);
      for (; j + 32 <= kc; j += 32) {
        const __m128i v =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + j / 2));
        const __m128i lo = _mm_and_si128(v, lo_mask);
        const __m128i hi = _mm_and_si128(_mm_srli_epi16(v, 4), lo_mask);
        _mm_storeu_si128(reinterpret_cast<__m128i*>(out + j),
                         _mm_unpacklo_epi8(lo, hi));
        _mm_storeu_si128(reinterpret_cast<__m128i*>(out + j + 16),
                         _mm_unpackhi_epi8(lo, hi));
      }
    }
    for (; j < kc; ++j) {
      const int shift = static_cast<int>(j % kPer) * CELL;
      out[j] = static_cast<std::int8_t>((src[j / kPer] >> shift) &
                                        ((1u << CELL) - 1u));
    }
    for (; j < kc4; ++j) out[j] = 0;
  }
}

// Packs block [c0, c0+kc) x [j0, j0+nc) of B into the k-quad interleaved
// panel (quad q, column j -> dst[q * 4 * nc + 4 * j + r]) and accumulates
// the block's per-column sums into colsum[0, nc) (skipped when colsum is
// null — the sub-byte weight path needs no correction).
void pack_b_quads(const std::uint8_t* m, std::int64_t ld, std::int64_t c0,
                  std::int64_t kc, std::int64_t j0, std::int64_t nc,
                  std::uint8_t* dst, std::int32_t* colsum) {
  const std::int64_t quads = (kc + 3) / 4;
  for (std::int64_t q = 0; q < quads; ++q) {
    const std::int64_t rows = std::min<std::int64_t>(4, kc - 4 * q);
    const std::uint8_t* r0 = m + (c0 + 4 * q) * ld + j0;
    std::uint8_t* out = dst + q * 4 * nc;
    if (rows == 4) {
      const std::uint8_t* r1 = r0 + ld;
      const std::uint8_t* r2 = r1 + ld;
      const std::uint8_t* r3 = r2 + ld;
      std::int64_t j = 0;
      for (; j + 16 <= nc; j += 16) {
        // 4 x 16 byte transpose: unpack pairs of rows, then pairs of pairs.
        const __m128i a = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(r0 + j));
        const __m128i b = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(r1 + j));
        const __m128i c = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(r2 + j));
        const __m128i d = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(r3 + j));
        const __m128i ab_lo = _mm_unpacklo_epi8(a, b);
        const __m128i ab_hi = _mm_unpackhi_epi8(a, b);
        const __m128i cd_lo = _mm_unpacklo_epi8(c, d);
        const __m128i cd_hi = _mm_unpackhi_epi8(c, d);
        __m128i* o = reinterpret_cast<__m128i*>(out + 4 * j);
        _mm_storeu_si128(o + 0, _mm_unpacklo_epi16(ab_lo, cd_lo));
        _mm_storeu_si128(o + 1, _mm_unpackhi_epi16(ab_lo, cd_lo));
        _mm_storeu_si128(o + 2, _mm_unpacklo_epi16(ab_hi, cd_hi));
        _mm_storeu_si128(o + 3, _mm_unpackhi_epi16(ab_hi, cd_hi));
        if (colsum == nullptr) continue;
        // Column sums of the quad: widen each row to u16 (4 * 255 fits),
        // then to i32 against the accumulator row.
        const __m128i zero = _mm_setzero_si128();
        const __m128i s16 = _mm_add_epi16(
            _mm_add_epi16(_mm_unpacklo_epi8(a, zero),
                          _mm_unpacklo_epi8(b, zero)),
            _mm_add_epi16(_mm_unpacklo_epi8(c, zero),
                          _mm_unpacklo_epi8(d, zero)));
        const __m128i s16h = _mm_add_epi16(
            _mm_add_epi16(_mm_unpackhi_epi8(a, zero),
                          _mm_unpackhi_epi8(b, zero)),
            _mm_add_epi16(_mm_unpackhi_epi8(c, zero),
                          _mm_unpackhi_epi8(d, zero)));
        __m128i* cs = reinterpret_cast<__m128i*>(colsum + j);
        _mm_storeu_si128(
            cs + 0, _mm_add_epi32(_mm_loadu_si128(cs + 0),
                                  _mm_unpacklo_epi16(s16, zero)));
        _mm_storeu_si128(
            cs + 1, _mm_add_epi32(_mm_loadu_si128(cs + 1),
                                  _mm_unpackhi_epi16(s16, zero)));
        _mm_storeu_si128(
            cs + 2, _mm_add_epi32(_mm_loadu_si128(cs + 2),
                                  _mm_unpacklo_epi16(s16h, zero)));
        _mm_storeu_si128(
            cs + 3, _mm_add_epi32(_mm_loadu_si128(cs + 3),
                                  _mm_unpackhi_epi16(s16h, zero)));
      }
      for (; j < nc; ++j) {
        out[4 * j + 0] = r0[j];
        out[4 * j + 1] = r1[j];
        out[4 * j + 2] = r2[j];
        out[4 * j + 3] = r3[j];
        if (colsum != nullptr) {
          colsum[j] +=
              static_cast<std::int32_t>(r0[j]) + r1[j] + r2[j] + r3[j];
        }
      }
    } else {
      for (std::int64_t j = 0; j < nc; ++j) {
        std::int32_t s = 0;
        for (std::int64_t r = 0; r < 4; ++r) {
          const std::uint8_t v = r < rows ? r0[r * ld + j] : 0;
          out[4 * j + r] = v;
          s += v;
        }
        if (colsum != nullptr) colsum[j] += s;
      }
    }
  }
}

// Full 4 x 16 tile: per k-quad, one 64-byte B load feeds four vpdpbusd
// against broadcast A quads.
void micro_kernel_vnni(std::int64_t quads, const std::int8_t* a,
                       std::int64_t lda, const std::uint8_t* b,
                       std::int64_t ldb_cols, std::int32_t* c,
                       std::int64_t ldc) {
  __m512i acc0 = _mm512_setzero_si512();
  __m512i acc1 = _mm512_setzero_si512();
  __m512i acc2 = _mm512_setzero_si512();
  __m512i acc3 = _mm512_setzero_si512();
  for (std::int64_t q = 0; q < quads; ++q) {
    const __m512i bv = _mm512_loadu_si512(b + q * 4 * ldb_cols);
    std::int32_t qa0, qa1, qa2, qa3;
    std::memcpy(&qa0, a + 0 * lda + 4 * q, sizeof(qa0));
    std::memcpy(&qa1, a + 1 * lda + 4 * q, sizeof(qa1));
    std::memcpy(&qa2, a + 2 * lda + 4 * q, sizeof(qa2));
    std::memcpy(&qa3, a + 3 * lda + 4 * q, sizeof(qa3));
    acc0 = _mm512_dpbusd_epi32(acc0, bv, _mm512_set1_epi32(qa0));
    acc1 = _mm512_dpbusd_epi32(acc1, bv, _mm512_set1_epi32(qa1));
    acc2 = _mm512_dpbusd_epi32(acc2, bv, _mm512_set1_epi32(qa2));
    acc3 = _mm512_dpbusd_epi32(acc3, bv, _mm512_set1_epi32(qa3));
  }
  const __m512i accs[4] = {acc0, acc1, acc2, acc3};
  for (int i = 0; i < 4; ++i) {
    std::int32_t* cp = c + i * ldc;
    _mm512_storeu_si512(
        cp, _mm512_add_epi32(_mm512_loadu_si512(cp), accs[i]));
  }
}

// Partial-row tile at full width (mr < 4, nr == 16) — small weight
// matrices and the engine's all-ones column-sum row.
template <int MR>
void micro_kernel_rows_vnni(std::int64_t quads, const std::int8_t* a,
                            std::int64_t lda, const std::uint8_t* b,
                            std::int64_t ldb_cols, std::int32_t* c,
                            std::int64_t ldc) {
  __m512i acc[MR];
  for (int i = 0; i < MR; ++i) acc[i] = _mm512_setzero_si512();
  for (std::int64_t q = 0; q < quads; ++q) {
    const __m512i bv = _mm512_loadu_si512(b + q * 4 * ldb_cols);
    for (int i = 0; i < MR; ++i) {
      std::int32_t qa;
      std::memcpy(&qa, a + i * lda + 4 * q, sizeof(qa));
      acc[i] = _mm512_dpbusd_epi32(acc[i], bv, _mm512_set1_epi32(qa));
    }
  }
  for (int i = 0; i < MR; ++i) {
    std::int32_t* cp = c + i * ldc;
    _mm512_storeu_si512(
        cp, _mm512_add_epi32(_mm512_loadu_si512(cp), acc[i]));
  }
}

// Edge tile (nr < 16), scalar on the same quad-interleaved panel.
void edge_kernel(std::int64_t quads, const std::int8_t* a, std::int64_t lda,
                 const std::uint8_t* b, std::int64_t ldb_cols, std::int32_t* c,
                 std::int64_t ldc, std::int64_t mr, std::int64_t nr) {
  std::int32_t acc[kMr][kNr] = {};
  for (std::int64_t q = 0; q < quads; ++q) {
    const std::uint8_t* bq = b + q * 4 * ldb_cols;
    for (std::int64_t i = 0; i < mr; ++i) {
      const std::int8_t* aq = a + i * lda + 4 * q;
      for (std::int64_t j = 0; j < nr; ++j) {
        const std::uint8_t* bj = bq + 4 * j;
        acc[i][j] += static_cast<std::int32_t>(aq[0]) * bj[0] +
                     static_cast<std::int32_t>(aq[1]) * bj[1] +
                     static_cast<std::int32_t>(aq[2]) * bj[2] +
                     static_cast<std::int32_t>(aq[3]) * bj[3];
      }
    }
  }
  for (std::int64_t i = 0; i < mr; ++i) {
    std::int32_t* cp = c + i * ldc;
    for (std::int64_t j = 0; j < nr; ++j) cp[j] += acc[i][j];
  }
}

void gemm_block_vnni(std::int64_t k, const std::uint8_t* a, std::int64_t lda,
                     const std::uint8_t* b, std::int64_t ldb, std::int32_t* c,
                     std::int64_t ldc, std::int64_t i0, std::int64_t mc,
                     std::int64_t j0, std::int64_t nc_total) {
  const std::int64_t kc4_max = kKc;  // kKc is a multiple of 4
  std::int8_t* a_pack =
      reinterpret_cast<std::int8_t*>(thread_buf(mc * (kc4_max + 4), 0));
  std::uint8_t* b_pack = thread_buf((kc4_max + 4) * kNc, 1);
  std::int32_t* colsum = reinterpret_cast<std::int32_t*>(
      thread_buf(nc_total * static_cast<std::int64_t>(sizeof(std::int32_t)),
                 2));
  std::fill(colsum, colsum + nc_total, 0);

  for (std::int64_t p0 = 0; p0 < k; p0 += kKc) {
    const std::int64_t kc = std::min(kKc, k - p0);
    const std::int64_t kc4 = (kc + 3) / 4 * 4;
    const std::int64_t quads = kc4 / 4;
    pack_a_s8(a, lda, i0, mc, p0, kc, kc4, a_pack);
    for (std::int64_t jb = 0; jb < nc_total; jb += kNc) {
      const std::int64_t nc = std::min(kNc, nc_total - jb);
      pack_b_quads(b, ldb, p0, kc, j0 + jb, nc, b_pack, colsum + jb);
      for (std::int64_t jr = 0; jr < nc; jr += kNr) {
        const std::int64_t nr = std::min(kNr, nc - jr);
        for (std::int64_t ir = 0; ir < mc; ir += kMr) {
          const std::int64_t mr = std::min(kMr, mc - ir);
          std::int32_t* ct = c + (i0 + ir) * ldc + (j0 + jb + jr);
          const std::int8_t* at = a_pack + ir * kc4;
          const std::uint8_t* bt = b_pack + 4 * jr;
          if (nr == kNr) {
            switch (mr) {
              case kMr:
                micro_kernel_vnni(quads, at, kc4, bt, nc, ct, ldc);
                break;
              case 3:
                micro_kernel_rows_vnni<3>(quads, at, kc4, bt, nc, ct, ldc);
                break;
              case 2:
                micro_kernel_rows_vnni<2>(quads, at, kc4, bt, nc, ct, ldc);
                break;
              default:
                micro_kernel_rows_vnni<1>(quads, at, kc4, bt, nc, ct, ldc);
                break;
            }
          } else {
            edge_kernel(quads, at, kc4, bt, nc, ct, ldc, mr, nr);
          }
        }
      }
    }
  }

  // Undo the -128 weight offset: C += 128 * colsum per column, every row.
  for (std::int64_t i = 0; i < mc; ++i) {
    std::int32_t* cp = c + (i0 + i) * ldc + j0;
    for (std::int64_t j = 0; j < nc_total; ++j) cp[j] += 128 * colsum[j];
  }
}

// Sub-byte weight variant: same vpdpbusd micro-kernels over the same B
// panel, but A expands from packed nibbles/crumbs straight to s8 codes —
// no -128 offset, hence no colsum pass and no correction sweep. lda is a
// byte stride (rows are byte-aligned packed, see tensor/bitpack.h).
template <int CELL>
void gemm_block_vnni_subbyte(std::int64_t k, const std::uint8_t* a,
                             std::int64_t lda, const std::uint8_t* b,
                             std::int64_t ldb, std::int32_t* c,
                             std::int64_t ldc, std::int64_t i0,
                             std::int64_t mc, std::int64_t j0,
                             std::int64_t nc_total) {
  const std::int64_t kc4_max = kKc;
  std::int8_t* a_pack =
      reinterpret_cast<std::int8_t*>(thread_buf(mc * (kc4_max + 4), 0));
  std::uint8_t* b_pack = thread_buf((kc4_max + 4) * kNc, 1);

  for (std::int64_t p0 = 0; p0 < k; p0 += kKc) {
    const std::int64_t kc = std::min(kKc, k - p0);
    const std::int64_t kc4 = (kc + 3) / 4 * 4;
    const std::int64_t quads = kc4 / 4;
    pack_a_expand_s8<CELL>(a, lda, i0, mc, p0, kc, kc4, a_pack);
    for (std::int64_t jb = 0; jb < nc_total; jb += kNc) {
      const std::int64_t nc = std::min(kNc, nc_total - jb);
      pack_b_quads(b, ldb, p0, kc, j0 + jb, nc, b_pack, nullptr);
      for (std::int64_t jr = 0; jr < nc; jr += kNr) {
        const std::int64_t nr = std::min(kNr, nc - jr);
        for (std::int64_t ir = 0; ir < mc; ir += kMr) {
          const std::int64_t mr = std::min(kMr, mc - ir);
          std::int32_t* ct = c + (i0 + ir) * ldc + (j0 + jb + jr);
          const std::int8_t* at = a_pack + ir * kc4;
          const std::uint8_t* bt = b_pack + 4 * jr;
          if (nr == kNr) {
            switch (mr) {
              case kMr:
                micro_kernel_vnni(quads, at, kc4, bt, nc, ct, ldc);
                break;
              case 3:
                micro_kernel_rows_vnni<3>(quads, at, kc4, bt, nc, ct, ldc);
                break;
              case 2:
                micro_kernel_rows_vnni<2>(quads, at, kc4, bt, nc, ct, ldc);
                break;
              default:
                micro_kernel_rows_vnni<1>(quads, at, kc4, bt, nc, ct, ldc);
                break;
            }
          } else {
            edge_kernel(quads, at, kc4, bt, nc, ct, ldc, mr, nr);
          }
        }
      }
    }
  }
}

}  // namespace

bool igemm_vnni_available() {
  static const bool ok = __builtin_cpu_supports("avx512vnni") != 0 &&
                         __builtin_cpu_supports("avx512bw") != 0 &&
                         __builtin_cpu_supports("avx512vl") != 0;
  return ok;
}

void igemm_u8_vnni(std::int64_t m, std::int64_t n, std::int64_t k,
                   const std::uint8_t* a, std::int64_t lda,
                   const std::uint8_t* b, std::int64_t ldb, std::int32_t* c,
                   std::int64_t ldc) {
  detail::igemm_blocked(m, n, k, a, lda, b, ldb, c, ldc, &gemm_block_vnni);
}

void igemm_u8w4_vnni(std::int64_t m, std::int64_t n, std::int64_t k,
                     const std::uint8_t* a_packed, std::int64_t lda_bytes,
                     const std::uint8_t* b, std::int64_t ldb, std::int32_t* c,
                     std::int64_t ldc) {
  detail::igemm_blocked(m, n, k, a_packed, lda_bytes, b, ldb, c, ldc,
                        &gemm_block_vnni_subbyte<4>);
}

void igemm_u8w2_vnni(std::int64_t m, std::int64_t n, std::int64_t k,
                     const std::uint8_t* a_packed, std::int64_t lda_bytes,
                     const std::uint8_t* b, std::int64_t ldb, std::int32_t* c,
                     std::int64_t ldc) {
  detail::igemm_blocked(m, n, k, a_packed, lda_bytes, b, ldb, c, ldc,
                        &gemm_block_vnni_subbyte<2>);
}

#else  // !ADQ_VNNI_BUILD

bool igemm_vnni_available() { return false; }

void igemm_u8_vnni(std::int64_t m, std::int64_t n, std::int64_t k,
                   const std::uint8_t* a, std::int64_t lda,
                   const std::uint8_t* b, std::int64_t ldb, std::int32_t* c,
                   std::int64_t ldc) {
  igemm_u8_generic(m, n, k, a, lda, b, ldb, c, ldc);
}

namespace {

// Never dispatched (the registry requires igemm_vnni_available()), but the
// symbols must exist: unpack each packed row and defer to the generic GEMM.
void igemm_packed_fallback(std::int64_t m, std::int64_t n, std::int64_t k,
                           const std::uint8_t* a_packed,
                           std::int64_t lda_bytes, const std::uint8_t* b,
                           std::int64_t ldb, std::int32_t* c, std::int64_t ldc,
                           int cell_bits) {
  thread_local std::vector<std::uint8_t> scratch;
  scratch.resize(static_cast<std::size_t>(m * k));
  for (std::int64_t i = 0; i < m; ++i) {
    unpack_codes(a_packed + i * lda_bytes, k, cell_bits, scratch.data() + i * k);
  }
  igemm_u8_generic(m, n, k, scratch.data(), k, b, ldb, c, ldc);
}

}  // namespace

void igemm_u8w4_vnni(std::int64_t m, std::int64_t n, std::int64_t k,
                     const std::uint8_t* a_packed, std::int64_t lda_bytes,
                     const std::uint8_t* b, std::int64_t ldb, std::int32_t* c,
                     std::int64_t ldc) {
  igemm_packed_fallback(m, n, k, a_packed, lda_bytes, b, ldb, c, ldc, 4);
}

void igemm_u8w2_vnni(std::int64_t m, std::int64_t n, std::int64_t k,
                     const std::uint8_t* a_packed, std::int64_t lda_bytes,
                     const std::uint8_t* b, std::int64_t ldb, std::int32_t* c,
                     std::int64_t ldc) {
  igemm_packed_fallback(m, n, k, a_packed, lda_bytes, b, ldb, c, ldc, 2);
}

#endif

}  // namespace adq
