// The portable backend: reference implementations of every registry op.
//
// These are the kernels the integer engine ran before the backend split,
// moved here verbatim so logits stay byte-identical. They are also the
// conformance oracle — every other backend is judged against this table
// (backend/conformance.h), so the portable op must be the simple, obviously
// correct form, never the clever one.
#pragma once

#include "backend/backend.h"

namespace adq::backend {

/// The complete portable op table. Always available; registered first so it
/// is the fallback of last resort and the conformance reference.
const Backend& portable_backend();

}  // namespace adq::backend
