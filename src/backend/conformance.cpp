#include "backend/conformance.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <vector>

#include "backend/ops_portable.h"
#include "quant/quantizer.h"
#include "tensor/bitpack.h"
#include "tensor/gemm_int8.h"
#include "tensor/rng.h"

namespace adq::backend {
namespace {

// Sentinel values pre-filled into every output buffer on BOTH sides of a
// comparison. Untouched bytes (stride gaps, rows past m, the tail past a
// case's logical extent) then compare equal only if the backend under test
// left exactly the bytes the reference left — an out-of-bounds write or a
// missed stride shows up as loudly as a wrong value.
constexpr std::uint8_t kSentinelU8 = 0xA5;
constexpr std::int32_t kSentinelI32 = 0x5AA55AA5;
constexpr float kSentinelF32 = -12345.678f;

constexpr double kNmseBound = 1e-6;

int draw_bits(Rng& rng) {
  constexpr int kChoices[] = {8, 4, 2};
  return kChoices[rng.uniform_int(0, 2)];
}

void fill_codes(Rng& rng, std::uint8_t* p, std::int64_t n, int bits) {
  const std::int64_t hi = quant::max_code(bits);
  for (std::int64_t i = 0; i < n; ++i) {
    p[i] = static_cast<std::uint8_t>(rng.uniform_int(0, hi));
  }
}

void fill_floats(Rng& rng, float* p, std::int64_t n, float lo, float hi) {
  for (std::int64_t i = 0; i < n; ++i) p[i] = rng.uniform(lo, hi);
}

std::string shape2(std::int64_t a, std::int64_t b) {
  return std::to_string(a) + "x" + std::to_string(b);
}

// --- comparison ------------------------------------------------------------

template <typename T>
bool compare_exact(const std::vector<T>& ref, const std::vector<T>& got,
                   CaseResult* r) {
  if (std::memcmp(ref.data(), got.data(), ref.size() * sizeof(T)) == 0) {
    return true;
  }
  for (std::size_t i = 0; i < ref.size(); ++i) {
    if (std::memcmp(&ref[i], &got[i], sizeof(T)) != 0) {
      r->ok = false;
      r->detail = "first mismatch at flat index " + std::to_string(i) +
                  ": ref=" + std::to_string(static_cast<double>(ref[i])) +
                  " got=" + std::to_string(static_cast<double>(got[i]));
      return false;
    }
  }
  return true;
}

bool compare_nmse(const std::vector<float>& ref, const std::vector<float>& got,
                  CaseResult* r) {
  double num = 0.0, den = 0.0;
  std::size_t worst = 0;
  double worst_diff = -1.0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    const double d = static_cast<double>(ref[i]) - static_cast<double>(got[i]);
    num += d * d;
    den += static_cast<double>(ref[i]) * static_cast<double>(ref[i]);
    if (d * d > worst_diff) {
      worst_diff = d * d;
      worst = i;
    }
  }
  const double nmse = num / (den + 1e-30);
  r->max_err = nmse;
  if (!(nmse <= kNmseBound) || !std::isfinite(nmse)) {
    r->ok = false;
    r->detail = "NMSE " + std::to_string(nmse) + " exceeds bound, worst at " +
                std::to_string(worst) + ": ref=" + std::to_string(ref[worst]) +
                " got=" + std::to_string(got[worst]);
    return false;
  }
  return true;
}

// --- per-op cases ----------------------------------------------------------

CaseResult igemm_case(std::uint64_t seed, const Backend& test) {
  Rng rng(seed);
  CaseResult r;
  const std::int64_t m = rng.uniform_int(1, 40);
  // Mostly small, sometimes wide enough (n >= 2*Nc = 512) to exercise the
  // driver's column-split path the batched conv slabs take.
  const std::int64_t n =
      rng.coin(0.15) ? rng.uniform_int(513, 700) : rng.uniform_int(1, 96);
  // k crossing Kc = 256 covers the multi-panel accumulation path.
  const std::int64_t k =
      rng.coin(0.2) ? rng.uniform_int(257, 320) : rng.uniform_int(1, 128);
  const int bits_a = draw_bits(rng);
  const int bits_b = draw_bits(rng);
  const std::int64_t lda = k + rng.uniform_int(0, 5);
  const std::int64_t ldb = n + rng.uniform_int(0, 5);
  const std::int64_t ldc = n + rng.uniform_int(0, 5);
  r.desc = "igemm " + std::to_string(m) + "x" + std::to_string(n) + "x" +
           std::to_string(k) + " bits=" + std::to_string(bits_a) + "/" +
           std::to_string(bits_b) + " ld=" + std::to_string(lda) + "," +
           std::to_string(ldb) + "," + std::to_string(ldc);

  std::vector<std::uint8_t> a(static_cast<std::size_t>(m * lda));
  std::vector<std::uint8_t> b(static_cast<std::size_t>(k * ldb));
  fill_codes(rng, a.data(), m * lda, bits_a);
  fill_codes(rng, b.data(), k * ldb, bits_b);

  std::vector<std::int32_t> c_ref(static_cast<std::size_t>(m * ldc),
                                  kSentinelI32);
  std::vector<std::int32_t> c_got(c_ref);
  portable_backend().igemm(m, n, k, a.data(), lda, b.data(), ldb, c_ref.data(),
                           ldc);
  test.igemm(m, n, k, a.data(), lda, b.data(), ldb, c_got.data(), ldc);
  compare_exact(c_ref, c_got, &r);
  return r;
}

// Shared sub-byte weight-GEMM case: cell is 4 (igemm_u8w4) or 2
// (igemm_u8w2). Weight codes are generated unpacked, packed row-aligned
// into a buffer pre-filled with garbage (so stride-slack bytes and row tail
// bits act like sentinels: a kernel reading codes it shouldn't produces a
// wrong accumulator), and the case is checked two ways — the portable
// reference must equal an in-case unpack + igemm_u8_generic ground truth,
// and the backend under test must equal the portable reference bit for bit.
CaseResult igemm_packed_case(std::uint64_t seed, const Backend& test,
                             int cell) {
  Rng rng(seed);
  CaseResult r;
  const std::int64_t m = rng.uniform_int(1, 40);
  // Wide-n draws exercise the driver's column-split path; everything else
  // lands on odd n/k not divisible by the quad depth or the 16-wide panel.
  const std::int64_t n =
      rng.coin(0.15) ? rng.uniform_int(513, 700) : rng.uniform_int(1, 96);
  const std::int64_t k =
      rng.coin(0.2) ? rng.uniform_int(257, 320) : rng.uniform_int(1, 128);
  // Weights span the full cell range on most draws, a narrower bit-width
  // (a 3-bit layer in 4-bit cells, a 1-bit layer in 2-bit cells) sometimes.
  const int bits_w = rng.coin(0.3) ? cell - 1 : cell;
  const int bits_b = draw_bits(rng);
  const std::int64_t lda_bytes =
      packed_row_bytes(k, cell) + rng.uniform_int(0, 5);
  const std::int64_t ldb = n + rng.uniform_int(0, 5);
  const std::int64_t ldc = n + rng.uniform_int(0, 5);
  const auto op_fn = cell == 4 ? test.igemm_w4 : test.igemm_w2;
  const auto ref_fn =
      cell == 4 ? portable_backend().igemm_w4 : portable_backend().igemm_w2;
  r.desc = std::string(cell == 4 ? "igemm_u8w4 " : "igemm_u8w2 ") +
           std::to_string(m) + "x" + std::to_string(n) + "x" +
           std::to_string(k) + " bits=" + std::to_string(bits_w) + "/" +
           std::to_string(bits_b) + " lda_bytes=" + std::to_string(lda_bytes) +
           " ld=" + std::to_string(ldb) + "," + std::to_string(ldc);

  std::vector<std::uint8_t> codes(static_cast<std::size_t>(m * k));
  fill_codes(rng, codes.data(), m * k, bits_w);
  std::vector<std::uint8_t> a(static_cast<std::size_t>(m * lda_bytes));
  fill_codes(rng, a.data(), m * lda_bytes, 8);  // slack bytes stay garbage
  for (std::int64_t i = 0; i < m; ++i) {
    pack_codes(codes.data() + i * k, k, cell, a.data() + i * lda_bytes);
  }
  std::vector<std::uint8_t> b(static_cast<std::size_t>(k * ldb));
  fill_codes(rng, b.data(), k * ldb, bits_b);

  std::vector<std::int32_t> c_truth(static_cast<std::size_t>(m * ldc),
                                    kSentinelI32);
  std::vector<std::int32_t> c_ref(c_truth);
  std::vector<std::int32_t> c_got(c_truth);
  igemm_u8_generic(m, n, k, codes.data(), k, b.data(), ldb, c_truth.data(),
                   ldc);
  ref_fn(m, n, k, a.data(), lda_bytes, b.data(), ldb, c_ref.data(), ldc);
  if (!compare_exact(c_truth, c_ref, &r)) {
    r.detail = "portable reference disagrees with unpacked ground truth: " +
               r.detail;
    return r;
  }
  op_fn(m, n, k, a.data(), lda_bytes, b.data(), ldb, c_got.data(), ldc);
  compare_exact(c_ref, c_got, &r);
  return r;
}

// Draws a conv geometry with out_h/out_w >= 1. A 0.3 coin pins the fused
// k3/s1/p1 shape so the specialised im2col template path is always covered.
ConvGeometry draw_geometry(Rng& rng, std::int64_t channels) {
  ConvGeometry g;
  g.channels = channels;
  if (rng.coin(0.3)) {
    g.kernel_h = g.kernel_w = 3;
    g.stride = 1;
    g.pad = 1;
    g.in_h = rng.uniform_int(3, 14);
    g.in_w = rng.uniform_int(3, 14);
    return g;
  }
  constexpr std::int64_t kKernels[] = {1, 2, 3, 5};
  g.kernel_h = g.kernel_w = kKernels[rng.uniform_int(0, 3)];
  g.stride = rng.uniform_int(1, 2);
  g.pad = rng.uniform_int(0, 2);
  g.in_h = g.kernel_h + rng.uniform_int(0, 11);
  g.in_w = g.kernel_w + rng.uniform_int(0, 11);
  return g;
}

std::string geom_desc(const ConvGeometry& g) {
  return "c=" + std::to_string(g.channels) + " " + shape2(g.in_h, g.in_w) +
         " k=" + std::to_string(g.kernel_h) +
         " s=" + std::to_string(g.stride) + " p=" + std::to_string(g.pad);
}

CaseResult im2col_u8_case(std::uint64_t seed, const Backend& test) {
  Rng rng(seed);
  CaseResult r;
  const ConvGeometry g = draw_geometry(rng, rng.uniform_int(1, 8));
  const int bits = draw_bits(rng);
  const std::int64_t ohw = g.out_h() * g.out_w();
  const std::int64_t col_stride = ohw + rng.uniform_int(0, 7);
  const std::uint8_t pad_code =
      static_cast<std::uint8_t>(rng.uniform_int(0, quant::max_code(bits)));
  r.desc = "im2col_u8 " + geom_desc(g) + " bits=" + std::to_string(bits) +
           " col_stride=" + std::to_string(col_stride);

  std::vector<std::uint8_t> im(
      static_cast<std::size_t>(g.channels * g.in_h * g.in_w));
  fill_codes(rng, im.data(), static_cast<std::int64_t>(im.size()), bits);

  std::vector<std::uint8_t> col_ref(
      static_cast<std::size_t>(g.patch_size() * col_stride), kSentinelU8);
  std::vector<std::uint8_t> col_got(col_ref);
  portable_backend().im2col_u8(im.data(), g, col_ref.data(), col_stride,
                               pad_code);
  test.im2col_u8(im.data(), g, col_got.data(), col_stride, pad_code);
  compare_exact(col_ref, col_got, &r);
  return r;
}

CaseResult im2col_f32_case(std::uint64_t seed, const Backend& test) {
  Rng rng(seed);
  CaseResult r;
  const ConvGeometry g = draw_geometry(rng, rng.uniform_int(1, 8));
  const std::int64_t ohw = g.out_h() * g.out_w();
  const std::int64_t col_stride = ohw + rng.uniform_int(0, 7);
  r.desc = "im2col_f32 " + geom_desc(g) +
           " col_stride=" + std::to_string(col_stride);

  std::vector<float> im(static_cast<std::size_t>(g.channels * g.in_h * g.in_w));
  fill_floats(rng, im.data(), static_cast<std::int64_t>(im.size()), -2.0f,
              2.0f);

  std::vector<float> col_ref(
      static_cast<std::size_t>(g.patch_size() * col_stride), kSentinelF32);
  std::vector<float> col_got(col_ref);
  portable_backend().im2col_f32(im.data(), g, col_ref.data(), col_stride);
  test.im2col_f32(im.data(), g, col_got.data(), col_stride);
  compare_nmse(col_ref, col_got, &r);
  return r;
}

// Shared integer-depthwise case body; bits/stride < 0 mean "draw randomly".
CaseResult depthwise_int_case(std::uint64_t seed, const Backend& test,
                              int pinned_bits, int pinned_stride) {
  Rng rng(seed);
  CaseResult r;
  DepthwiseArgs a;
  a.channels = rng.uniform_int(1, 8);
  constexpr std::int64_t kKernels[] = {1, 3, 5};
  a.kernel = kKernels[rng.uniform_int(0, 2)];
  a.stride = pinned_stride > 0 ? pinned_stride : rng.uniform_int(1, 2);
  a.pad = rng.uniform_int(0, a.kernel / 2);
  a.in_h = a.kernel + rng.uniform_int(0, 9);
  a.in_w = a.kernel + rng.uniform_int(0, 9);
  a.active_channels =
      rng.coin(0.2) ? rng.uniform_int(0, a.channels) : a.channels;
  a.relu = rng.coin();
  const std::int64_t batch = rng.uniform_int(1, 3);
  const int bits_a = pinned_bits > 0 ? pinned_bits : draw_bits(rng);
  const int bits_w = pinned_bits > 0 ? pinned_bits : draw_bits(rng);
  r.desc = "depthwise_int b=" + std::to_string(batch) + " c=" +
           std::to_string(a.channels) + " " + shape2(a.in_h, a.in_w) +
           " k=" + std::to_string(a.kernel) + " s=" + std::to_string(a.stride) +
           " p=" + std::to_string(a.pad) + " bits=" + std::to_string(bits_a) +
           "/" + std::to_string(bits_w) +
           " active=" + std::to_string(a.active_channels);

  const std::int64_t C = a.channels, K = a.kernel * a.kernel;
  std::vector<std::uint8_t> act(
      static_cast<std::size_t>(batch * C * a.in_h * a.in_w));
  std::vector<std::uint8_t> w(static_cast<std::size_t>(C * K));
  fill_codes(rng, act.data(), static_cast<std::int64_t>(act.size()), bits_a);
  fill_codes(rng, w.data(), static_cast<std::int64_t>(w.size()), bits_w);
  a.zero_code =
      static_cast<std::uint8_t>(rng.uniform_int(0, quant::max_code(bits_a)));

  // The correction constants must be mutually consistent with the codes the
  // way the engine derives them from (a_min, a_scale, w_min, w_scale).
  std::vector<std::int32_t> sums(static_cast<std::size_t>(C), 0);
  for (std::int64_t c = 0; c < C; ++c) {
    for (std::int64_t i = 0; i < K; ++i) sums[c] += w[c * K + i];
  }
  a.w_code_sums = sums.data();
  const float a_scale = rng.uniform(1e-3f, 2e-2f);
  const float a_min = rng.uniform(-1.0f, 0.0f);
  const float w_scale = rng.uniform(1e-3f, 2e-2f);
  const float w_min = rng.uniform(-1.0f, 0.0f);
  a.ss = a_scale * w_scale;
  a.cw = a_min * w_scale;
  a.ca = w_min * a_scale;
  a.cc = static_cast<float>(K) * a_min * w_min;
  std::vector<float> es(static_cast<std::size_t>(C));
  std::vector<float> eh(static_cast<std::size_t>(C));
  fill_floats(rng, es.data(), C, 0.5f, 1.5f);
  fill_floats(rng, eh.data(), C, -1.0f, 1.0f);
  a.epi_scale = es.data();
  a.epi_shift = eh.data();

  std::vector<float> out_ref(
      static_cast<std::size_t>(batch * C * a.out_h() * a.out_w()),
      kSentinelF32);
  std::vector<float> out_got(out_ref);
  portable_backend().depthwise_int(act.data(), batch, w.data(), a,
                                   out_ref.data());
  test.depthwise_int(act.data(), batch, w.data(), a, out_got.data());
  compare_nmse(out_ref, out_got, &r);
  return r;
}

CaseResult depthwise_f32_case(std::uint64_t seed, const Backend& test) {
  Rng rng(seed);
  CaseResult r;
  DepthwiseArgs a;
  a.channels = rng.uniform_int(1, 8);
  constexpr std::int64_t kKernels[] = {1, 3, 5};
  a.kernel = kKernels[rng.uniform_int(0, 2)];
  a.stride = rng.uniform_int(1, 2);
  a.pad = rng.uniform_int(0, a.kernel / 2);
  a.in_h = a.kernel + rng.uniform_int(0, 9);
  a.in_w = a.kernel + rng.uniform_int(0, 9);
  a.active_channels =
      rng.coin(0.2) ? rng.uniform_int(0, a.channels) : a.channels;
  a.relu = rng.coin();
  const std::int64_t batch = rng.uniform_int(1, 3);
  r.desc = "depthwise_f32 b=" + std::to_string(batch) + " c=" +
           std::to_string(a.channels) + " " + shape2(a.in_h, a.in_w) +
           " k=" + std::to_string(a.kernel) + " s=" + std::to_string(a.stride) +
           " p=" + std::to_string(a.pad);

  const std::int64_t C = a.channels, K = a.kernel * a.kernel;
  std::vector<float> x(static_cast<std::size_t>(batch * C * a.in_h * a.in_w));
  std::vector<float> w(static_cast<std::size_t>(C * K));
  fill_floats(rng, x.data(), static_cast<std::int64_t>(x.size()), -2.0f, 2.0f);
  fill_floats(rng, w.data(), static_cast<std::int64_t>(w.size()), -1.0f, 1.0f);
  std::vector<float> es(static_cast<std::size_t>(C));
  std::vector<float> eh(static_cast<std::size_t>(C));
  fill_floats(rng, es.data(), C, 0.5f, 1.5f);
  fill_floats(rng, eh.data(), C, -1.0f, 1.0f);
  a.epi_scale = es.data();
  a.epi_shift = eh.data();

  std::vector<float> out_ref(
      static_cast<std::size_t>(batch * C * a.out_h() * a.out_w()),
      kSentinelF32);
  std::vector<float> out_got(out_ref);
  portable_backend().depthwise_f32(x.data(), batch, w.data(), a,
                                   out_ref.data());
  test.depthwise_f32(x.data(), batch, w.data(), a, out_got.data());
  compare_nmse(out_ref, out_got, &r);
  return r;
}

CaseResult quantize_act_case(std::uint64_t seed, const Backend& test) {
  Rng rng(seed);
  CaseResult r;
  // Mix of empty, sub-SIMD-width, and large (multi-grain) extents; the
  // 0.1 coin makes the tensor constant to hit the degenerate-range branch.
  const std::int64_t n =
      rng.coin(0.1) ? rng.uniform_int(0, 15) : rng.uniform_int(16, 5000);
  const int bits = draw_bits(rng);
  const bool constant = rng.coin(0.1);
  r.desc = "quantize_act n=" + std::to_string(n) +
           " bits=" + std::to_string(bits) + (constant ? " constant" : "");

  std::vector<float> x(static_cast<std::size_t>(std::max<std::int64_t>(n, 1)));
  if (constant) {
    std::fill(x.begin(), x.end(), rng.uniform(-2.0f, 2.0f));
  } else {
    fill_floats(rng, x.data(), n, -3.0f, 3.0f);
  }

  std::vector<std::uint8_t> codes_ref(
      static_cast<std::size_t>(std::max<std::int64_t>(n, 1)), kSentinelU8);
  std::vector<std::uint8_t> codes_got(codes_ref);
  const ActQuant q_ref =
      portable_backend().quantize_act(x.data(), n, bits, codes_ref.data());
  const ActQuant q_got = test.quantize_act(x.data(), n, bits, codes_got.data());
  if (!compare_exact(codes_ref, codes_got, &r)) return r;
  // The observed range is part of the op's contract (the engine folds it
  // into the zero-point constants), so it must match bit for bit too.
  if (std::memcmp(&q_ref.a_min, &q_got.a_min, sizeof(float)) != 0 ||
      std::memcmp(&q_ref.a_scale, &q_got.a_scale, sizeof(float)) != 0 ||
      q_ref.zero_code != q_got.zero_code) {
    r.ok = false;
    r.detail = "ActQuant mismatch: ref={" + std::to_string(q_ref.a_min) + "," +
               std::to_string(q_ref.a_scale) + "," +
               std::to_string(q_ref.zero_code) + "} got={" +
               std::to_string(q_got.a_min) + "," +
               std::to_string(q_got.a_scale) + "," +
               std::to_string(q_got.zero_code) + "}";
  }
  return r;
}

CaseResult fake_quant_case(std::uint64_t seed, const Backend& test) {
  Rng rng(seed);
  CaseResult r;
  const std::int64_t n = rng.uniform_int(0, 5000);
  // bits >= 24 is the pass-through contract; include it.
  const int bits = rng.coin(0.1) ? 26 : draw_bits(rng);
  const bool in_place = rng.coin(0.25);
  r.desc = "fake_quant n=" + std::to_string(n) +
           " bits=" + std::to_string(bits) + (in_place ? " in-place" : "");

  std::vector<float> x(static_cast<std::size_t>(std::max<std::int64_t>(n, 1)));
  fill_floats(rng, x.data(), n, -3.0f, 3.0f);

  std::vector<float> out_ref(x.size(), kSentinelF32);
  std::vector<float> out_got(x.size(), kSentinelF32);
  if (in_place) {
    out_ref = x;
    out_got = x;
    portable_backend().fake_quant(out_ref.data(), n, bits, out_ref.data());
    test.fake_quant(out_got.data(), n, bits, out_got.data());
  } else {
    portable_backend().fake_quant(x.data(), n, bits, out_ref.data());
    test.fake_quant(x.data(), n, bits, out_got.data());
  }
  compare_nmse(out_ref, out_got, &r);
  return r;
}

CaseResult dequantize_case(std::uint64_t seed, const Backend& test) {
  Rng rng(seed);
  CaseResult r;
  const std::int64_t n = rng.uniform_int(0, 5000);
  const int bits = draw_bits(rng);
  ActQuant q;
  q.a_min = rng.uniform(-2.0f, 0.0f);
  q.a_scale = rng.uniform(0.0f, 0.1f);
  r.desc = "dequantize n=" + std::to_string(n) +
           " bits=" + std::to_string(bits);

  std::vector<std::uint8_t> codes(
      static_cast<std::size_t>(std::max<std::int64_t>(n, 1)));
  fill_codes(rng, codes.data(), n, bits);

  std::vector<float> out_ref(codes.size(), kSentinelF32);
  std::vector<float> out_got(codes.size(), kSentinelF32);
  portable_backend().dequantize(codes.data(), n, q, out_ref.data());
  test.dequantize(codes.data(), n, q, out_got.data());
  compare_nmse(out_ref, out_got, &r);
  return r;
}

CaseResult epilogue_case(std::uint64_t seed, const Backend& test) {
  Rng rng(seed);
  CaseResult r;
  const std::int64_t n = rng.uniform_int(1, 500);
  const bool use_colsum = rng.coin(0.7);
  const bool relu = rng.coin();
  r.desc = "epilogue n=" + std::to_string(n) +
           (use_colsum ? " +colsum" : " no-colsum") + (relu ? " relu" : "");

  std::vector<std::int32_t> acc(static_cast<std::size_t>(n));
  std::vector<std::int32_t> colsum(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    acc[i] = static_cast<std::int32_t>(rng.uniform_int(-100000, 100000));
    colsum[i] = static_cast<std::int32_t>(rng.uniform_int(0, 65025));
  }
  const float ss = rng.uniform(1e-4f, 1e-2f);
  const float row_term = rng.uniform(-1.0f, 1.0f);
  const float ca = use_colsum ? rng.uniform(-1e-2f, 0.0f) : 0.0f;
  const float ea = rng.uniform(-2.0f, 2.0f);
  const float eb = rng.uniform(-1.0f, 1.0f);

  std::vector<float> out_ref(static_cast<std::size_t>(n), kSentinelF32);
  std::vector<float> out_got(out_ref);
  const std::int32_t* cs = use_colsum ? colsum.data() : nullptr;
  portable_backend().epilogue_row(acc.data(), cs, ss, row_term, ca, ea, eb,
                                  relu, n, out_ref.data());
  test.epilogue_row(acc.data(), cs, ss, row_term, ca, ea, eb, relu, n,
                    out_got.data());
  compare_nmse(out_ref, out_got, &r);
  return r;
}

CaseResult residual_add_case(std::uint64_t seed, const Backend& test) {
  Rng rng(seed);
  CaseResult r;
  const std::int64_t B = rng.uniform_int(1, 3);
  const std::int64_t C = rng.uniform_int(1, 8);
  const std::int64_t hw = rng.uniform_int(1, 100);
  const std::int64_t mask = rng.coin(0.3) ? rng.uniform_int(0, C) : -1;
  const bool in_place = rng.coin(0.3);
  r.desc = "residual_add b=" + std::to_string(B) + " c=" + std::to_string(C) +
           " hw=" + std::to_string(hw) + " mask=" + std::to_string(mask) +
           (in_place ? " in-place" : "");

  const std::int64_t numel = B * C * hw;
  std::vector<float> cur(static_cast<std::size_t>(numel));
  std::vector<float> skip(static_cast<std::size_t>(numel));
  fill_floats(rng, cur.data(), numel, -2.0f, 2.0f);
  fill_floats(rng, skip.data(), numel, -2.0f, 2.0f);

  std::vector<float> out_ref;
  std::vector<float> out_got;
  if (in_place) {  // dst aliases cur, the planner's in-place case
    out_ref = cur;
    out_got = cur;
    portable_backend().residual_add(out_ref.data(), skip.data(), B, C, hw,
                                    mask, out_ref.data());
    test.residual_add(out_got.data(), skip.data(), B, C, hw, mask,
                      out_got.data());
  } else {
    out_ref.assign(static_cast<std::size_t>(numel), kSentinelF32);
    out_got.assign(static_cast<std::size_t>(numel), kSentinelF32);
    portable_backend().residual_add(cur.data(), skip.data(), B, C, hw, mask,
                                    out_ref.data());
    test.residual_add(cur.data(), skip.data(), B, C, hw, mask, out_got.data());
  }
  compare_nmse(out_ref, out_got, &r);
  return r;
}

CaseResult bitpack_case(std::uint64_t seed, const Backend& test) {
  Rng rng(seed);
  CaseResult r;
  const std::int64_t count = rng.uniform_int(0, 4000);
  constexpr int kCells[] = {1, 2, 4, 8};
  const int cell = kCells[rng.uniform_int(0, 3)];
  r.desc = "bitpack count=" + std::to_string(count) +
           " cell_bits=" + std::to_string(cell);

  std::vector<std::uint8_t> codes(
      static_cast<std::size_t>(std::max<std::int64_t>(count, 1)));
  for (std::int64_t i = 0; i < count; ++i) {
    codes[i] = static_cast<std::uint8_t>(rng.uniform_int(0, (1 << cell) - 1));
  }

  const std::int64_t pbytes = packed_bytes(count, cell);
  std::vector<std::uint8_t> packed_ref(
      static_cast<std::size_t>(std::max<std::int64_t>(pbytes, 1)),
      kSentinelU8);
  std::vector<std::uint8_t> packed_got(packed_ref);
  portable_backend().pack_codes(codes.data(), count, cell, packed_ref.data());
  test.pack_codes(codes.data(), count, cell, packed_got.data());
  if (!compare_exact(packed_ref, packed_got, &r)) return r;

  // Unpack the reference bytes through both backends and require the round
  // trip to restore the original codes exactly.
  std::vector<std::uint8_t> un_ref(codes.size(), kSentinelU8);
  std::vector<std::uint8_t> un_got(codes.size(), kSentinelU8);
  portable_backend().unpack_codes(packed_ref.data(), count, cell,
                                  un_ref.data());
  test.unpack_codes(packed_ref.data(), count, cell, un_got.data());
  if (!compare_exact(un_ref, un_got, &r)) return r;
  for (std::int64_t i = 0; i < count; ++i) {
    if (un_got[i] != codes[i]) {
      r.ok = false;
      r.detail = "pack/unpack round trip lost code at index " +
                 std::to_string(i);
      return r;
    }
  }
  return r;
}

// Activation-slot pack: the parallel hot-path twin of bitpack. Checked two
// ways like igemm_packed_case — the portable reference must equal the
// scalar pack_codes ground truth (the chunked parallel decomposition may
// not change a byte), and the backend under test must equal the portable
// reference bit for bit. Sizes cross the parallel grain and the SIMD block
// widths on some draws; output buffers carry sentinel slack bytes past the
// packed extent so an over-long write is caught, and a scalar round trip
// must restore every code.
CaseResult act_pack_case(std::uint64_t seed, const Backend& test) {
  Rng rng(seed);
  CaseResult r;
  constexpr int kCells[] = {1, 2, 4, 8};
  const int cell = kCells[rng.uniform_int(0, 3)];
  const std::int64_t count = rng.coin(0.15) ? rng.uniform_int(4000, 20000)
                                            : rng.uniform_int(0, 1200);
  r.desc = "act_pack count=" + std::to_string(count) +
           " cell_bits=" + std::to_string(cell);

  std::vector<std::uint8_t> codes(
      static_cast<std::size_t>(std::max<std::int64_t>(count, 1)));
  for (std::int64_t i = 0; i < count; ++i) {
    codes[i] = static_cast<std::uint8_t>(rng.uniform_int(0, (1 << cell) - 1));
  }

  const std::int64_t pbytes = packed_bytes(count, cell);
  const std::size_t buf = static_cast<std::size_t>(pbytes) + 8;  // slack
  std::vector<std::uint8_t> truth(buf, kSentinelU8);
  std::vector<std::uint8_t> packed_ref(truth);
  std::vector<std::uint8_t> packed_got(truth);
  if (count > 0) pack_codes(codes.data(), count, cell, truth.data());
  portable_backend().act_pack(codes.data(), count, cell, packed_ref.data());
  test.act_pack(codes.data(), count, cell, packed_got.data());
  if (!compare_exact(truth, packed_ref, &r)) {
    r.detail = "portable reference disagrees with scalar pack_codes ground "
               "truth: " + r.detail;
    return r;
  }
  if (!compare_exact(packed_ref, packed_got, &r)) return r;

  std::vector<std::uint8_t> un(codes.size(), kSentinelU8);
  if (count > 0) unpack_codes(packed_got.data(), count, cell, un.data());
  for (std::int64_t i = 0; i < count; ++i) {
    if (un[i] != codes[i]) {
      r.ok = false;
      r.detail = "act_pack round trip lost code at index " + std::to_string(i);
      return r;
    }
  }
  return r;
}

// Inverse direction: the packed source carries garbage slack bytes past
// packed_bytes(count, cell) and sentinel-checked output past `count`, so a
// kernel that reads or writes beyond the logical extent fails loudly.
CaseResult act_unpack_case(std::uint64_t seed, const Backend& test) {
  Rng rng(seed);
  CaseResult r;
  constexpr int kCells[] = {1, 2, 4, 8};
  const int cell = kCells[rng.uniform_int(0, 3)];
  const std::int64_t count = rng.coin(0.15) ? rng.uniform_int(4000, 20000)
                                            : rng.uniform_int(0, 1200);
  r.desc = "act_unpack count=" + std::to_string(count) +
           " cell_bits=" + std::to_string(cell);

  std::vector<std::uint8_t> codes(
      static_cast<std::size_t>(std::max<std::int64_t>(count, 1)));
  for (std::int64_t i = 0; i < count; ++i) {
    codes[i] = static_cast<std::uint8_t>(rng.uniform_int(0, (1 << cell) - 1));
  }
  const std::int64_t pbytes = packed_bytes(count, cell);
  std::vector<std::uint8_t> packed(static_cast<std::size_t>(pbytes) + 8);
  fill_codes(rng, packed.data(), static_cast<std::int64_t>(packed.size()),
             8);  // slack bytes stay garbage
  if (count > 0) pack_codes(codes.data(), count, cell, packed.data());

  std::vector<std::uint8_t> un_truth(codes.size() + 8, kSentinelU8);
  std::vector<std::uint8_t> un_ref(un_truth);
  std::vector<std::uint8_t> un_got(un_truth);
  if (count > 0) unpack_codes(packed.data(), count, cell, un_truth.data());
  portable_backend().act_unpack(packed.data(), count, cell, un_ref.data());
  test.act_unpack(packed.data(), count, cell, un_got.data());
  if (!compare_exact(un_truth, un_ref, &r)) {
    r.detail = "portable reference disagrees with scalar unpack_codes ground "
               "truth: " + r.detail;
    return r;
  }
  if (!compare_exact(un_ref, un_got, &r)) return r;
  for (std::int64_t i = 0; i < count; ++i) {
    if (un_got[i] != codes[i]) {
      r.ok = false;
      r.detail = "act_unpack did not restore code at index " +
                 std::to_string(i);
      return r;
    }
  }
  return r;
}

}  // namespace

CaseResult run_conformance_case(Op op, std::uint64_t seed,
                                const Backend& test) {
  switch (op) {
    case Op::kIgemm: return igemm_case(seed, test);
    case Op::kIgemmW4: return igemm_packed_case(seed, test, 4);
    case Op::kIgemmW2: return igemm_packed_case(seed, test, 2);
    case Op::kIm2colU8: return im2col_u8_case(seed, test);
    case Op::kIm2colF32: return im2col_f32_case(seed, test);
    case Op::kDepthwiseInt: return depthwise_int_case(seed, test, -1, -1);
    case Op::kDepthwiseF32: return depthwise_f32_case(seed, test);
    case Op::kQuantizeAct: return quantize_act_case(seed, test);
    case Op::kFakeQuant: return fake_quant_case(seed, test);
    case Op::kDequantize: return dequantize_case(seed, test);
    case Op::kEpilogue: return epilogue_case(seed, test);
    case Op::kResidualAdd: return residual_add_case(seed, test);
    case Op::kBitpack: return bitpack_case(seed, test);
    case Op::kActPack: return act_pack_case(seed, test);
    case Op::kActUnpack: return act_unpack_case(seed, test);
  }
  CaseResult r;
  r.ok = false;
  r.detail = "unknown op";
  return r;
}

CaseResult run_depthwise_case(const Backend& test, std::uint64_t seed,
                              int bits, int stride) {
  return depthwise_int_case(seed, test, bits, stride);
}

std::string repro_command(Op op, std::uint64_t seed, const Backend& test) {
  return std::string("ADQ_BACKEND=") + test.name + " test_backend_ops --seed=" +
         std::to_string(seed) + " --op=" + op_name(op);
}

namespace {

// Times fn (already run once for warmup) with doubling batches until the
// measured interval is long enough to trust; returns seconds per call.
template <typename Fn>
double time_op(Fn&& fn) {
  fn();  // warmup / first-touch
  std::int64_t iters = 1;
  for (;;) {
    const auto t0 = std::chrono::steady_clock::now();
    for (std::int64_t i = 0; i < iters; ++i) fn();
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    if (dt.count() > 0.025 || iters > (1 << 20)) {
      return dt.count() / static_cast<double>(iters);
    }
    iters *= 2;
  }
}

}  // namespace

PerfSample measure_perf(Op op, const Backend& test, int bits) {
  Rng rng(0xbe7c'0de5u);
  PerfSample s;
  switch (op) {
    case Op::kIgemm: {
      const std::int64_t m = 128, n = 512, k = 256;
      std::vector<std::uint8_t> a(static_cast<std::size_t>(m * k));
      std::vector<std::uint8_t> b(static_cast<std::size_t>(k * n));
      fill_codes(rng, a.data(), m * k, bits);
      fill_codes(rng, b.data(), k * n, bits);
      std::vector<std::int32_t> c(static_cast<std::size_t>(m * n));
      const double sec = time_op([&] {
        test.igemm(m, n, k, a.data(), k, b.data(), n, c.data(), n);
      });
      s.value = static_cast<double>(m * n * k) / sec * 1e-9;
      s.unit = "GMAC/s";
      return s;
    }
    case Op::kIgemmW4:
    case Op::kIgemmW2: {
      // Same workload shape as kIgemm so the per-bitwidth GMAC/s rows
      // compare directly: packed low-bit weights against u8 activations,
      // which is exactly what a <= 4-bit layer feeds the engine.
      const int cell = op == Op::kIgemmW4 ? 4 : 2;
      const std::int64_t m = 128, n = 512, k = 256;
      std::vector<std::uint8_t> codes(static_cast<std::size_t>(m * k));
      fill_codes(rng, codes.data(), m * k, bits);
      const std::int64_t lda_bytes = packed_row_bytes(k, cell);
      std::vector<std::uint8_t> a(static_cast<std::size_t>(m * lda_bytes));
      for (std::int64_t i = 0; i < m; ++i) {
        pack_codes(codes.data() + i * k, k, cell, a.data() + i * lda_bytes);
      }
      std::vector<std::uint8_t> b(static_cast<std::size_t>(k * n));
      fill_codes(rng, b.data(), k * n, 8);
      std::vector<std::int32_t> c(static_cast<std::size_t>(m * n));
      const auto fn = op == Op::kIgemmW4 ? test.igemm_w4 : test.igemm_w2;
      const double sec = time_op([&] {
        fn(m, n, k, a.data(), lda_bytes, b.data(), n, c.data(), n);
      });
      s.value = static_cast<double>(m * n * k) / sec * 1e-9;
      s.unit = "GMAC/s";
      return s;
    }
    case Op::kDepthwiseInt: {
      DepthwiseArgs a;
      a.channels = 64;
      a.in_h = a.in_w = 56;
      a.kernel = 3;
      a.stride = 1;
      a.pad = 1;
      a.active_channels = 64;
      const std::int64_t C = a.channels, K = 9, B = 1;
      std::vector<std::uint8_t> act(
          static_cast<std::size_t>(B * C * a.in_h * a.in_w));
      std::vector<std::uint8_t> w(static_cast<std::size_t>(C * K));
      fill_codes(rng, act.data(), static_cast<std::int64_t>(act.size()), bits);
      fill_codes(rng, w.data(), static_cast<std::int64_t>(w.size()), bits);
      std::vector<std::int32_t> sums(static_cast<std::size_t>(C), 0);
      for (std::int64_t c = 0; c < C; ++c) {
        for (std::int64_t i = 0; i < K; ++i) sums[c] += w[c * K + i];
      }
      a.w_code_sums = sums.data();
      a.ss = 1e-3f;
      std::vector<float> es(static_cast<std::size_t>(C), 1.0f);
      std::vector<float> eh(static_cast<std::size_t>(C), 0.0f);
      a.epi_scale = es.data();
      a.epi_shift = eh.data();
      std::vector<float> out(
          static_cast<std::size_t>(B * C * a.out_h() * a.out_w()));
      const double sec = time_op([&] {
        test.depthwise_int(act.data(), B, w.data(), a, out.data());
      });
      s.value =
          static_cast<double>(B * C * a.out_h() * a.out_w() * K) / sec * 1e-9;
      s.unit = "GMAC/s";
      return s;
    }
    case Op::kDepthwiseF32: {
      DepthwiseArgs a;
      a.channels = 64;
      a.in_h = a.in_w = 56;
      a.kernel = 3;
      a.stride = 1;
      a.pad = 1;
      a.active_channels = 64;
      const std::int64_t C = a.channels, K = 9, B = 1;
      std::vector<float> x(static_cast<std::size_t>(B * C * a.in_h * a.in_w));
      std::vector<float> w(static_cast<std::size_t>(C * K));
      fill_floats(rng, x.data(), static_cast<std::int64_t>(x.size()), -1, 1);
      fill_floats(rng, w.data(), static_cast<std::int64_t>(w.size()), -1, 1);
      std::vector<float> es(static_cast<std::size_t>(C), 1.0f);
      std::vector<float> eh(static_cast<std::size_t>(C), 0.0f);
      a.epi_scale = es.data();
      a.epi_shift = eh.data();
      std::vector<float> out(
          static_cast<std::size_t>(B * C * a.out_h() * a.out_w()));
      const double sec = time_op([&] {
        test.depthwise_f32(x.data(), B, w.data(), a, out.data());
      });
      s.value =
          static_cast<double>(B * C * a.out_h() * a.out_w() * K) / sec * 1e-9;
      s.unit = "GMAC/s";
      return s;
    }
    case Op::kIm2colU8: {
      ConvGeometry g;
      g.channels = 32;
      g.in_h = g.in_w = 28;
      g.kernel_h = g.kernel_w = 3;
      g.stride = 1;
      g.pad = 1;
      std::vector<std::uint8_t> im(
          static_cast<std::size_t>(g.channels * g.in_h * g.in_w));
      fill_codes(rng, im.data(), static_cast<std::int64_t>(im.size()), 8);
      const std::int64_t ohw = g.out_h() * g.out_w();
      std::vector<std::uint8_t> col(
          static_cast<std::size_t>(g.patch_size() * ohw));
      const double sec = time_op(
          [&] { test.im2col_u8(im.data(), g, col.data(), ohw, 0); });
      s.value = static_cast<double>(col.size()) / sec * 1e-9;
      return s;
    }
    case Op::kIm2colF32: {
      ConvGeometry g;
      g.channels = 32;
      g.in_h = g.in_w = 28;
      g.kernel_h = g.kernel_w = 3;
      g.stride = 1;
      g.pad = 1;
      std::vector<float> im(
          static_cast<std::size_t>(g.channels * g.in_h * g.in_w));
      fill_floats(rng, im.data(), static_cast<std::int64_t>(im.size()), -1, 1);
      const std::int64_t ohw = g.out_h() * g.out_w();
      std::vector<float> col(static_cast<std::size_t>(g.patch_size() * ohw));
      const double sec =
          time_op([&] { test.im2col_f32(im.data(), g, col.data(), ohw); });
      s.value = static_cast<double>(col.size() * sizeof(float)) / sec * 1e-9;
      return s;
    }
    case Op::kQuantizeAct: {
      const std::int64_t n = 1 << 20;
      std::vector<float> x(static_cast<std::size_t>(n));
      fill_floats(rng, x.data(), n, -3, 3);
      std::vector<std::uint8_t> codes(static_cast<std::size_t>(n));
      const double sec = time_op(
          [&] { test.quantize_act(x.data(), n, bits, codes.data()); });
      s.value = static_cast<double>(n * sizeof(float)) / sec * 1e-9;
      return s;
    }
    case Op::kFakeQuant: {
      const std::int64_t n = 1 << 20;
      std::vector<float> x(static_cast<std::size_t>(n));
      fill_floats(rng, x.data(), n, -3, 3);
      std::vector<float> out(static_cast<std::size_t>(n));
      const double sec =
          time_op([&] { test.fake_quant(x.data(), n, bits, out.data()); });
      s.value = static_cast<double>(n * sizeof(float)) / sec * 1e-9;
      return s;
    }
    case Op::kDequantize: {
      const std::int64_t n = 1 << 20;
      std::vector<std::uint8_t> codes(static_cast<std::size_t>(n));
      fill_codes(rng, codes.data(), n, 8);
      std::vector<float> out(static_cast<std::size_t>(n));
      ActQuant q;
      q.a_min = -1.0f;
      q.a_scale = 0.01f;
      const double sec =
          time_op([&] { test.dequantize(codes.data(), n, q, out.data()); });
      s.value = static_cast<double>(n * sizeof(float)) / sec * 1e-9;
      return s;
    }
    case Op::kEpilogue: {
      const std::int64_t n = 1 << 20;
      std::vector<std::int32_t> acc(static_cast<std::size_t>(n));
      std::vector<std::int32_t> colsum(static_cast<std::size_t>(n));
      for (std::int64_t i = 0; i < n; ++i) {
        acc[i] = static_cast<std::int32_t>(rng.uniform_int(-100000, 100000));
        colsum[i] = static_cast<std::int32_t>(rng.uniform_int(0, 65025));
      }
      std::vector<float> out(static_cast<std::size_t>(n));
      const double sec = time_op([&] {
        test.epilogue_row(acc.data(), colsum.data(), 1e-3f, 0.1f, -1e-3f,
                          1.0f, 0.0f, true, n, out.data());
      });
      s.value = static_cast<double>(n * (2 * sizeof(std::int32_t) +
                                         sizeof(float))) /
                sec * 1e-9;
      return s;
    }
    case Op::kResidualAdd: {
      const std::int64_t B = 4, C = 64, hw = 3136, numel = B * C * hw;
      std::vector<float> cur(static_cast<std::size_t>(numel));
      std::vector<float> skip(static_cast<std::size_t>(numel));
      fill_floats(rng, cur.data(), numel, -1, 1);
      fill_floats(rng, skip.data(), numel, -1, 1);
      std::vector<float> dst(static_cast<std::size_t>(numel));
      const double sec = time_op([&] {
        test.residual_add(cur.data(), skip.data(), B, C, hw, -1, dst.data());
      });
      s.value = static_cast<double>(3 * numel * sizeof(float)) / sec * 1e-9;
      return s;
    }
    case Op::kActPack:
    case Op::kActUnpack: {
      // bits caps the code range AND picks the cell (8/4/2), matching the
      // storage widths the activation planner assigns.
      const std::int64_t n = 1 << 20;
      const int cell = bits;
      std::vector<std::uint8_t> codes(static_cast<std::size_t>(n));
      for (std::int64_t i = 0; i < n; ++i) {
        codes[i] = static_cast<std::uint8_t>(rng.uniform_int(0, (1 << cell) - 1));
      }
      std::vector<std::uint8_t> packed(
          static_cast<std::size_t>(packed_bytes(n, cell)));
      if (op == Op::kActPack) {
        const double sec = time_op(
            [&] { test.act_pack(codes.data(), n, cell, packed.data()); });
        s.value = static_cast<double>(n) / sec * 1e-9;
      } else {
        test.act_pack(codes.data(), n, cell, packed.data());
        std::vector<std::uint8_t> un(static_cast<std::size_t>(n));
        const double sec = time_op(
            [&] { test.act_unpack(packed.data(), n, cell, un.data()); });
        s.value = static_cast<double>(n) / sec * 1e-9;
      }
      return s;
    }
    case Op::kBitpack: {
      const std::int64_t n = 1 << 20;
      const int cell = 4;
      std::vector<std::uint8_t> codes(static_cast<std::size_t>(n));
      for (std::int64_t i = 0; i < n; ++i) {
        codes[i] = static_cast<std::uint8_t>(rng.uniform_int(0, 15));
      }
      std::vector<std::uint8_t> packed(
          static_cast<std::size_t>(packed_bytes(n, cell)));
      std::vector<std::uint8_t> un(static_cast<std::size_t>(n));
      const double sec = time_op([&] {
        test.pack_codes(codes.data(), n, cell, packed.data());
        test.unpack_codes(packed.data(), n, cell, un.data());
      });
      s.value = static_cast<double>(2 * n) / sec * 1e-9;
      return s;
    }
  }
  return s;
}

}  // namespace adq::backend
