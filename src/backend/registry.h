// Backend registry: enumeration, lookup, and env-pinned selection.
//
// Registration order is ascending preference — portable first, then each
// SIMD tier — so "best available" is simply the last available entry. All
// backends stay listed even when the host cannot run them; error messages
// and the conformance harness want the full roster.
//
// Selection: ADQ_BACKEND=<name> pins a backend end to end (the legacy
// ADQ_SIMD=generic|avx2 spelling still works, mapped onto registry names).
// Unknown or unavailable names fail fast with the list of registered
// backends — a typo must never silently fall back to portable.
#pragma once

#include <vector>

#include "backend/backend.h"

namespace adq::backend {

/// Every registered backend, ascending preference order. The portable
/// reference is always index 0 and always available.
const std::vector<const Backend*>& all_backends();

/// The subset of all_backends() runnable on this host, same order.
std::vector<const Backend*> available_backends();

/// Registered backend by name, or nullptr if no such name.
const Backend* find_backend(const char* name);

/// Pure selection logic, exposed for tests: resolves the would-be active
/// backend from explicit env values (either may be null = unset).
/// ADQ_BACKEND takes precedence over ADQ_SIMD; with neither set, returns
/// the best available backend. Throws std::runtime_error naming the
/// offending value and listing every registered backend (with host
/// availability) for an unknown name, an unavailable backend, or an
/// unrecognised legacy ADQ_SIMD value.
const Backend& resolve_backends_env(const char* adq_backend,
                                    const char* adq_simd);

/// The process-wide active backend: resolve_backends_env over the real
/// ADQ_BACKEND / ADQ_SIMD environment, resolved once on first call and
/// cached. Throws like resolve_backends_env on a bad pin — constructing an
/// engine therefore fails fast at startup instead of silently computing on
/// the wrong kernels.
const Backend& active();

/// TEST-ONLY: forces active() to return `backend` (pass nullptr to restore
/// the normal env-resolved table); returns the previous override. active()
/// latches its env resolve on first call, so cross-backend engine tests in
/// one process — the golden-logits matrix — need this hook. Production code
/// must never call it.
const Backend* exchange_backend_override(const Backend* backend);

}  // namespace adq::backend
