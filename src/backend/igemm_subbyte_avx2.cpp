// AVX2 sub-byte weight GEMM kernels: nibble-packed int4 (igemm_u8w4) and
// crumb-serial int2 (igemm_u8w2) weights against u8 activations.
//
// The PULP-NN trick adapted to AVX2: weights stay packed in memory (two
// nibbles or four crumbs per byte, row-aligned — see tensor/bitpack.h) and
// are expanded in-register per Kc panel, never materialized as a
// byte-per-code matrix. The inner loop then beats the int8 vpmaddwd kernel
// by switching the multiply to vpmaddubsw over k-QUADS:
//
//   * B (activations) packs k-quad interleaved u8, exactly the VNNI panel
//     layout: quad q of column j at dst[q * 4 * nc + 4 * j + r], zero-padded
//     tail rows. One 32-byte load covers 8 columns x 4 consecutive k.
//   * A (weights) expands each packed panel row to bytes (codes <= 15, so
//     they fit s8 with no offset games) in the same thread_local scratch
//     the int8 kernel uses for widening; a row's 4 adjacent codes form the
//     quad, broadcast as one 32-bit lane.
//   * vpmaddubsw (unsigned B bytes x signed A bytes) produces 16 int16
//     lanes of 2-product sums — 32 MACs per instruction, twice vpmaddwd —
//     and ADJACENT int16 lanes belong to the SAME column, so one
//     vpmaddwd-against-ones collapses them to 8 int32 column sums.
//   * The collapse is deferred: low-bit products are small enough to chain
//     several maddubs results in int16 first. Per-lane bound per maddubs is
//     2 * 255 * (2^bits - 1): 7650 at w4 (depth 4 -> 30600 < 32767) and
//     1530 at w2 (depth 8 -> 12240). The narrower the weights, the deeper
//     the serial int16 chain — the bit-serial scaling that makes int2
//     faster than int4 faster than int8.
//
// All arithmetic is exact (no saturation is ever reached, int32 holds every
// reduction here), so both kernels agree bit for bit with the portable
// unpack-then-igemm_u8_generic reference — enforced per seed by the
// conformance harness.
//
// Like the other SIMD TUs, only this file is compiled with -mavx2
// (ADQ_AVX2_BUILD) and the registry routes here only after
// __builtin_cpu_supports("avx2").
#include "backend/igemm_kernels.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "tensor/bitpack.h"
#include "tensor/gemm_int8.h"
#include "tensor/parallel.h"

#if defined(ADQ_AVX2_BUILD)
#include <immintrin.h>
#endif

namespace adq {

#if defined(ADQ_AVX2_BUILD)

namespace {

constexpr std::int64_t kMr = 4;
constexpr std::int64_t kNr = 16;
constexpr std::int64_t kKc = 256;  // multiple of 4: quads never straddle
constexpr std::int64_t kNc = 256;

std::uint8_t* thread_buf(std::int64_t count, int which) {
  thread_local std::vector<std::uint8_t> bufs[2];
  std::vector<std::uint8_t>& b = bufs[which];
  if (static_cast<std::int64_t>(b.size()) < count) {
    b.resize(static_cast<std::size_t>(count));
  }
  return b.data();
}

// Expands block [r0, r0+mc) x [c0, c0+kc) of the row-aligned packed A
// (CELL bits per code) into byte rows of stride kc4, zero-padding the quad
// tail. c0 is a kKc multiple, so it always lands on a byte boundary.
template <int CELL>
void pack_a_expand(const std::uint8_t* a_packed, std::int64_t lda_bytes,
                   std::int64_t r0, std::int64_t mc, std::int64_t c0,
                   std::int64_t kc, std::int64_t kc4, std::uint8_t* dst) {
  constexpr std::int64_t kPer = 8 / CELL;
  for (std::int64_t i = 0; i < mc; ++i) {
    const std::uint8_t* src = a_packed + (r0 + i) * lda_bytes + c0 / kPer;
    std::uint8_t* out = dst + i * kc4;
    std::int64_t j = 0;
    if constexpr (CELL == 4) {
      // 16 packed bytes -> 32 nibbles: split low/high nibbles, then byte
      // interleave restores original code order.
      const __m128i lo_mask = _mm_set1_epi8(0x0F);
      for (; j + 32 <= kc; j += 32) {
        const __m128i v =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + j / 2));
        const __m128i lo = _mm_and_si128(v, lo_mask);
        const __m128i hi = _mm_and_si128(_mm_srli_epi16(v, 4), lo_mask);
        _mm_storeu_si128(reinterpret_cast<__m128i*>(out + j),
                         _mm_unpacklo_epi8(lo, hi));
        _mm_storeu_si128(reinterpret_cast<__m128i*>(out + j + 16),
                         _mm_unpackhi_epi8(lo, hi));
      }
    }
    for (; j < kc; ++j) {
      const int shift = static_cast<int>(j % kPer) * CELL;
      out[j] = static_cast<std::uint8_t>((src[j / kPer] >> shift) &
                                         ((1u << CELL) - 1u));
    }
    for (; j < kc4; ++j) out[j] = 0;
  }
}

// Packs block [c0, c0+kc) x [j0, j0+nc) of B k-quad interleaved (quad q,
// column j -> dst[q * 4 * nc + 4 * j + r], zero tail rows) — the VNNI
// activation panel, minus its fused column sums (the sub-byte epilogue gets
// colsums from the engine's all-ones GEMM row like every other path).
void pack_b_quads(const std::uint8_t* m, std::int64_t ld, std::int64_t c0,
                  std::int64_t kc, std::int64_t j0, std::int64_t nc,
                  std::uint8_t* dst) {
  const std::int64_t quads = (kc + 3) / 4;
  for (std::int64_t q = 0; q < quads; ++q) {
    const std::int64_t rows = std::min<std::int64_t>(4, kc - 4 * q);
    const std::uint8_t* r0 = m + (c0 + 4 * q) * ld + j0;
    std::uint8_t* out = dst + q * 4 * nc;
    if (rows == 4) {
      const std::uint8_t* r1 = r0 + ld;
      const std::uint8_t* r2 = r1 + ld;
      const std::uint8_t* r3 = r2 + ld;
      std::int64_t j = 0;
      for (; j + 16 <= nc; j += 16) {
        // 4 x 16 byte transpose: unpack pairs of rows, then pairs of pairs.
        const __m128i a =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(r0 + j));
        const __m128i b =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(r1 + j));
        const __m128i c =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(r2 + j));
        const __m128i d =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(r3 + j));
        const __m128i ab_lo = _mm_unpacklo_epi8(a, b);
        const __m128i ab_hi = _mm_unpackhi_epi8(a, b);
        const __m128i cd_lo = _mm_unpacklo_epi8(c, d);
        const __m128i cd_hi = _mm_unpackhi_epi8(c, d);
        __m128i* o = reinterpret_cast<__m128i*>(out + 4 * j);
        _mm_storeu_si128(o + 0, _mm_unpacklo_epi16(ab_lo, cd_lo));
        _mm_storeu_si128(o + 1, _mm_unpackhi_epi16(ab_lo, cd_lo));
        _mm_storeu_si128(o + 2, _mm_unpacklo_epi16(ab_hi, cd_hi));
        _mm_storeu_si128(o + 3, _mm_unpackhi_epi16(ab_hi, cd_hi));
      }
      for (; j < nc; ++j) {
        out[4 * j + 0] = r0[j];
        out[4 * j + 1] = r1[j];
        out[4 * j + 2] = r2[j];
        out[4 * j + 3] = r3[j];
      }
    } else {
      for (std::int64_t j = 0; j < nc; ++j) {
        for (std::int64_t r = 0; r < 4; ++r) {
          out[4 * j + r] =
              r < rows ? r0[r * ld + j] : static_cast<std::uint8_t>(0);
        }
      }
    }
  }
}

// MR x 16 tile over `quads` k-quads with a DEPTH-deep deferred int16
// accumulation (see the header comment's overflow bounds). `a` is the
// expanded byte panel (stride lda), `b` the quad-interleaved panel.
template <int MR, int DEPTH>
void micro_kernel_subbyte(std::int64_t quads, const std::uint8_t* a,
                          std::int64_t lda, const std::uint8_t* b,
                          std::int64_t ldb_cols, std::int32_t* c,
                          std::int64_t ldc) {
  const __m256i ones = _mm256_set1_epi16(1);
  __m256i acc[MR][2];
  for (int i = 0; i < MR; ++i) {
    acc[i][0] = _mm256_setzero_si256();
    acc[i][1] = _mm256_setzero_si256();
  }
  for (std::int64_t q0 = 0; q0 < quads; q0 += DEPTH) {
    const std::int64_t qe = std::min<std::int64_t>(quads, q0 + DEPTH);
    // The two 8-column halves run as separate passes over the depth group:
    // holding only MR int16 accumulators (instead of MR x 2) alongside the
    // MR x 2 int32 bank keeps the working set inside the 16 ymm registers —
    // the fused variant spills several vectors per quad. The price is one
    // extra weight-quad broadcast per row per quad, which the load ports
    // absorb.
    for (int half = 0; half < 2; ++half) {
      __m256i s16[MR];
      for (int i = 0; i < MR; ++i) s16[i] = _mm256_setzero_si256();
      for (std::int64_t q = q0; q < qe; ++q) {
        const __m256i bv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
            b + q * 4 * ldb_cols + 32 * half));
        for (int i = 0; i < MR; ++i) {
          std::int32_t quad;
          std::memcpy(&quad, a + i * lda + 4 * q, sizeof(quad));
          const __m256i av = _mm256_set1_epi32(quad);
          s16[i] = _mm256_add_epi16(s16[i], _mm256_maddubs_epi16(bv, av));
        }
      }
      for (int i = 0; i < MR; ++i) {
        acc[i][half] =
            _mm256_add_epi32(acc[i][half], _mm256_madd_epi16(s16[i], ones));
      }
    }
  }
  for (int i = 0; i < MR; ++i) {
    std::int32_t* cp = c + i * ldc;
    for (int half = 0; half < 2; ++half) {
      __m256i* dst = reinterpret_cast<__m256i*>(cp + 8 * half);
      _mm256_storeu_si256(
          dst, _mm256_add_epi32(_mm256_loadu_si256(dst), acc[i][half]));
    }
  }
}

// Edge tile (nr < 16), scalar on the same panels.
void edge_kernel(std::int64_t quads, const std::uint8_t* a, std::int64_t lda,
                 const std::uint8_t* b, std::int64_t ldb_cols, std::int32_t* c,
                 std::int64_t ldc, std::int64_t mr, std::int64_t nr) {
  std::int32_t acc[kMr][kNr] = {};
  for (std::int64_t q = 0; q < quads; ++q) {
    const std::uint8_t* bq = b + q * 4 * ldb_cols;
    for (std::int64_t i = 0; i < mr; ++i) {
      const std::uint8_t* aq = a + i * lda + 4 * q;
      for (std::int64_t j = 0; j < nr; ++j) {
        const std::uint8_t* bj = bq + 4 * j;
        acc[i][j] += static_cast<std::int32_t>(aq[0]) * bj[0] +
                     static_cast<std::int32_t>(aq[1]) * bj[1] +
                     static_cast<std::int32_t>(aq[2]) * bj[2] +
                     static_cast<std::int32_t>(aq[3]) * bj[3];
      }
    }
  }
  for (std::int64_t i = 0; i < mr; ++i) {
    std::int32_t* cp = c + i * ldc;
    for (std::int64_t j = 0; j < nr; ++j) cp[j] += acc[i][j];
  }
}

template <int CELL, int DEPTH>
void gemm_block_subbyte(std::int64_t k, const std::uint8_t* a,
                        std::int64_t lda, const std::uint8_t* b,
                        std::int64_t ldb, std::int32_t* c, std::int64_t ldc,
                        std::int64_t i0, std::int64_t mc, std::int64_t j0,
                        std::int64_t nc_total) {
  const std::int64_t kc4_max = kKc;  // kKc is a multiple of 4
  std::uint8_t* a_pack = thread_buf(mc * kc4_max, 0);
  std::uint8_t* b_pack = thread_buf(kc4_max * kNc, 1);
  for (std::int64_t p0 = 0; p0 < k; p0 += kKc) {
    const std::int64_t kc = std::min(kKc, k - p0);
    const std::int64_t kc4 = (kc + 3) / 4 * 4;
    const std::int64_t quads = kc4 / 4;
    pack_a_expand<CELL>(a, lda, i0, mc, p0, kc, kc4, a_pack);
    for (std::int64_t jb = 0; jb < nc_total; jb += kNc) {
      const std::int64_t nc = std::min(kNc, nc_total - jb);
      pack_b_quads(b, ldb, p0, kc, j0 + jb, nc, b_pack);
      for (std::int64_t jr = 0; jr < nc; jr += kNr) {
        const std::int64_t nr = std::min(kNr, nc - jr);
        for (std::int64_t ir = 0; ir < mc; ir += kMr) {
          const std::int64_t mr = std::min(kMr, mc - ir);
          std::int32_t* ct = c + (i0 + ir) * ldc + (j0 + jb + jr);
          const std::uint8_t* at = a_pack + ir * kc4;
          const std::uint8_t* bt = b_pack + 4 * jr;
          if (nr == kNr) {
            switch (mr) {
              case kMr:
                micro_kernel_subbyte<4, DEPTH>(quads, at, kc4, bt, nc, ct, ldc);
                break;
              case 3:
                micro_kernel_subbyte<3, DEPTH>(quads, at, kc4, bt, nc, ct, ldc);
                break;
              case 2:
                micro_kernel_subbyte<2, DEPTH>(quads, at, kc4, bt, nc, ct, ldc);
                break;
              default:
                micro_kernel_subbyte<1, DEPTH>(quads, at, kc4, bt, nc, ct, ldc);
                break;
            }
          } else {
            edge_kernel(quads, at, kc4, bt, nc, ct, ldc, mr, nr);
          }
        }
      }
    }
  }
}

// --- activation slot pack/unpack -------------------------------------------
//
// The arena executor's per-forward compression: merge/split cells entirely
// in-register. Packing ORs each byte pair into its little-endian cell via a
// 16-bit lane shift (codes < 2^cell, so the shifted-out bits are zero), then
// narrows with packus + the cross-lane permute; 2-bit cells apply the merge
// twice (pairs -> nibbles -> bytes). Unpacking mirrors pack_a_expand's
// mask/shift/interleave split. Tails fall through to the scalar bitpack
// kernels, which are also the conformance ground truth.

// 64 codes -> 32 packed bytes per iteration at 4-bit cells.
void act_pack4_chunk(const std::uint8_t* src, std::int64_t cnt,
                     std::uint8_t* dst) {
  const __m256i byte_mask = _mm256_set1_epi16(0x00FF);
  std::int64_t j = 0;
  for (; j + 64 <= cnt; j += 64) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + j));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + j + 32));
    const __m256i ta = _mm256_and_si256(
        _mm256_or_si256(a, _mm256_srli_epi16(a, 4)), byte_mask);
    const __m256i tb = _mm256_and_si256(
        _mm256_or_si256(b, _mm256_srli_epi16(b, 4)), byte_mask);
    // packus emits qwords [a.lo, b.lo, a.hi, b.hi]; 0xD8 restores a, b order.
    const __m256i p =
        _mm256_permute4x64_epi64(_mm256_packus_epi16(ta, tb), 0xD8);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + j / 2), p);
  }
  if (j < cnt) pack_codes(src + j, cnt - j, 4, dst + j / 2);
}

// 32 codes from 16 packed bytes per iteration at 4-bit cells.
void act_unpack4_chunk(const std::uint8_t* src, std::int64_t cnt,
                       std::uint8_t* dst) {
  const __m128i lo_mask = _mm_set1_epi8(0x0F);
  std::int64_t j = 0;
  for (; j + 32 <= cnt; j += 32) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + j / 2));
    const __m128i lo = _mm_and_si128(v, lo_mask);
    const __m128i hi = _mm_and_si128(_mm_srli_epi16(v, 4), lo_mask);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + j),
                     _mm_unpacklo_epi8(lo, hi));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + j + 16),
                     _mm_unpackhi_epi8(lo, hi));
  }
  if (j < cnt) unpack_codes(src + j / 2, cnt - j, 4, dst + j);
}

// 128 codes -> 32 packed bytes per iteration at 2-bit cells: pair-merge to
// 4-bit values, then the nibble merge from the 4-bit path.
void act_pack2_chunk(const std::uint8_t* src, std::int64_t cnt,
                     std::uint8_t* dst) {
  const __m256i byte_mask = _mm256_set1_epi16(0x00FF);
  const auto merge_pairs = [&](const __m256i v) {
    return _mm256_and_si256(_mm256_or_si256(v, _mm256_srli_epi16(v, 6)),
                            byte_mask);
  };
  std::int64_t j = 0;
  for (; j + 128 <= cnt; j += 128) {
    __m256i nib[2];
    for (int h = 0; h < 2; ++h) {
      const __m256i a = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(src + j + 64 * h));
      const __m256i b = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(src + j + 64 * h + 32));
      nib[h] = _mm256_permute4x64_epi64(
          _mm256_packus_epi16(merge_pairs(a), merge_pairs(b)), 0xD8);
    }
    const __m256i ta = _mm256_and_si256(
        _mm256_or_si256(nib[0], _mm256_srli_epi16(nib[0], 4)), byte_mask);
    const __m256i tb = _mm256_and_si256(
        _mm256_or_si256(nib[1], _mm256_srli_epi16(nib[1], 4)), byte_mask);
    const __m256i p =
        _mm256_permute4x64_epi64(_mm256_packus_epi16(ta, tb), 0xD8);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + j / 4), p);
  }
  if (j < cnt) pack_codes(src + j, cnt - j, 2, dst + j / 4);
}

// 64 codes from 16 packed bytes per iteration at 2-bit cells: nibble split,
// then crumb split, interleaving at each stage to restore code order.
void act_unpack2_chunk(const std::uint8_t* src, std::int64_t cnt,
                       std::uint8_t* dst) {
  const __m128i nib_mask = _mm_set1_epi8(0x0F);
  const __m128i crumb_mask = _mm_set1_epi8(0x03);
  std::int64_t j = 0;
  for (; j + 64 <= cnt; j += 64) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + j / 4));
    const __m128i nlo = _mm_and_si128(v, nib_mask);
    const __m128i nhi = _mm_and_si128(_mm_srli_epi16(v, 4), nib_mask);
    const __m128i n0 = _mm_unpacklo_epi8(nlo, nhi);
    const __m128i n1 = _mm_unpackhi_epi8(nlo, nhi);
    const __m128i c0lo = _mm_and_si128(n0, crumb_mask);
    const __m128i c0hi = _mm_and_si128(_mm_srli_epi16(n0, 2), crumb_mask);
    const __m128i c1lo = _mm_and_si128(n1, crumb_mask);
    const __m128i c1hi = _mm_and_si128(_mm_srli_epi16(n1, 2), crumb_mask);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + j),
                     _mm_unpacklo_epi8(c0lo, c0hi));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + j + 16),
                     _mm_unpackhi_epi8(c0lo, c0hi));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + j + 32),
                     _mm_unpacklo_epi8(c1lo, c1hi));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + j + 48),
                     _mm_unpackhi_epi8(c1lo, c1hi));
  }
  if (j < cnt) unpack_codes(src + j / 4, cnt - j, 2, dst + j);
}

}  // namespace

bool igemm_subbyte_avx2_available() {
  static const bool ok = __builtin_cpu_supports("avx2") != 0;
  return ok;
}

void act_pack_avx2(const std::uint8_t* codes, std::int64_t count,
                   int cell_bits, std::uint8_t* packed) {
  if (count <= 0) return;
  if (cell_bits == 8) {
    std::memcpy(packed, codes, static_cast<std::size_t>(count));
    return;
  }
  const std::int64_t per = 8 / cell_bits;
  const std::int64_t groups = (count + per - 1) / per;
  parallel_for(0, groups, [&](std::int64_t g0, std::int64_t g1) {
    const std::int64_t c0 = g0 * per;
    const std::int64_t cnt = std::min(count, g1 * per) - c0;
    if (cell_bits == 4) {
      act_pack4_chunk(codes + c0, cnt, packed + g0);
    } else if (cell_bits == 2) {
      act_pack2_chunk(codes + c0, cnt, packed + g0);
    } else {
      pack_codes(codes + c0, cnt, cell_bits, packed + g0);
    }
  }, /*grain=*/4096);
}

void act_unpack_avx2(const std::uint8_t* packed, std::int64_t count,
                     int cell_bits, std::uint8_t* codes) {
  if (count <= 0) return;
  if (cell_bits == 8) {
    std::memcpy(codes, packed, static_cast<std::size_t>(count));
    return;
  }
  const std::int64_t per = 8 / cell_bits;
  const std::int64_t groups = (count + per - 1) / per;
  parallel_for(0, groups, [&](std::int64_t g0, std::int64_t g1) {
    const std::int64_t c0 = g0 * per;
    const std::int64_t cnt = std::min(count, g1 * per) - c0;
    if (cell_bits == 4) {
      act_unpack4_chunk(packed + g0, cnt, codes + c0);
    } else if (cell_bits == 2) {
      act_unpack2_chunk(packed + g0, cnt, codes + c0);
    } else {
      unpack_codes(packed + g0, cnt, cell_bits, codes + c0);
    }
  }, /*grain=*/4096);
}

void igemm_u8w4_avx2(std::int64_t m, std::int64_t n, std::int64_t k,
                     const std::uint8_t* a_packed, std::int64_t lda_bytes,
                     const std::uint8_t* b, std::int64_t ldb, std::int32_t* c,
                     std::int64_t ldc) {
  // 4 quads deep: 4 * 2 * 255 * 15 = 30600 < 32767.
  detail::igemm_blocked(m, n, k, a_packed, lda_bytes, b, ldb, c, ldc,
                        &gemm_block_subbyte<4, 4>);
}

void igemm_u8w2_avx2(std::int64_t m, std::int64_t n, std::int64_t k,
                     const std::uint8_t* a_packed, std::int64_t lda_bytes,
                     const std::uint8_t* b, std::int64_t ldb, std::int32_t* c,
                     std::int64_t ldc) {
  // 8 quads deep: 8 * 2 * 255 * 3 = 12240 < 32767.
  detail::igemm_blocked(m, n, k, a_packed, lda_bytes, b, ldb, c, ldc,
                        &gemm_block_subbyte<2, 8>);
}

#else  // !ADQ_AVX2_BUILD — non-x86 toolchains: unpack and fall through to
       // the portable kernel so the symbols still link.

namespace {

void igemm_packed_fallback(std::int64_t m, std::int64_t n, std::int64_t k,
                           const std::uint8_t* a_packed,
                           std::int64_t lda_bytes, const std::uint8_t* b,
                           std::int64_t ldb, std::int32_t* c, std::int64_t ldc,
                           int cell_bits) {
  thread_local std::vector<std::uint8_t> scratch;
  if (static_cast<std::int64_t>(scratch.size()) < m * k) {
    scratch.resize(static_cast<std::size_t>(m * k));
  }
  for (std::int64_t i = 0; i < m; ++i) {
    unpack_codes(a_packed + i * lda_bytes, k, cell_bits,
                 scratch.data() + i * k);
  }
  igemm_u8_generic(m, n, k, scratch.data(), k, b, ldb, c, ldc);
}

}  // namespace

bool igemm_subbyte_avx2_available() { return false; }

void act_pack_avx2(const std::uint8_t* codes, std::int64_t count,
                   int cell_bits, std::uint8_t* packed) {
  if (count <= 0) return;
  pack_codes(codes, count, cell_bits, packed);
}

void act_unpack_avx2(const std::uint8_t* packed, std::int64_t count,
                     int cell_bits, std::uint8_t* codes) {
  if (count <= 0) return;
  unpack_codes(packed, count, cell_bits, codes);
}

void igemm_u8w4_avx2(std::int64_t m, std::int64_t n, std::int64_t k,
                     const std::uint8_t* a_packed, std::int64_t lda_bytes,
                     const std::uint8_t* b, std::int64_t ldb, std::int32_t* c,
                     std::int64_t ldc) {
  igemm_packed_fallback(m, n, k, a_packed, lda_bytes, b, ldb, c, ldc, 4);
}

void igemm_u8w2_avx2(std::int64_t m, std::int64_t n, std::int64_t k,
                     const std::uint8_t* a_packed, std::int64_t lda_bytes,
                     const std::uint8_t* b, std::int64_t ldb, std::int32_t* c,
                     std::int64_t ldc) {
  igemm_packed_fallback(m, n, k, a_packed, lda_bytes, b, ldb, c, ldc, 2);
}

#endif

}  // namespace adq
