// Registry-driven kernel conformance: randomized per-op cases comparing a
// backend against the portable reference (the ggml test-backend-ops idea).
//
// Every case is a pure function of (op, seed): the generator draws shapes,
// strides/padding, bit-widths (8/4/2, mixed across operands) and data from
// an Rng seeded with the case seed, runs the op on the portable table and
// on the backend under test, and compares — bit-exact for integer outputs,
// an NMSE bound for float outputs. Output buffers are sentinel-filled on
// both sides first, so stride gaps and out-of-bounds writes are caught, not
// just wrong values. A failing case reproduces from its printed seed alone:
//   ADQ_BACKEND=<name> test_backend_ops --seed=<seed> --op=<op>
//
// Consumers: tests/test_backend_ops.cpp (PR-gate conformance + fuzz +
// perf), bench/bench_micro.cpp (per-backend GMAC/s tables). Lives in
// src/backend/ so a new backend's author gets the harness by registering.
#pragma once

#include <cstdint>
#include <string>

#include "backend/backend.h"

namespace adq::backend {

/// Outcome of one randomized case.
struct CaseResult {
  bool ok = true;
  std::string desc;    // generated case, human-readable (shapes, bits, ...)
  std::string detail;  // on failure: first mismatch / error bound violation
  double max_err = 0.0;  // float ops: worst NMSE observed (0 for int ops)
};

/// Runs the seed's randomized case for `op` on `test`, comparing against
/// the portable reference. Deterministic in (op, seed).
CaseResult run_conformance_case(Op op, std::uint64_t seed, const Backend& test);

/// Directed integer-depthwise case: same machinery, but bits and stride are
/// pinned instead of drawn (the int8/int4/int2 x stride 1/2 matrix).
CaseResult run_depthwise_case(const Backend& test, std::uint64_t seed,
                              int bits, int stride);

/// The one-line reproduction command printed on any failure.
std::string repro_command(Op op, std::uint64_t seed, const Backend& test);

/// Throughput of `op` on `test` over a fixed representative workload.
/// MAC-counting ops (igemm, depthwise) report GMAC/s — for igemm, `bits`
/// caps the code range (8/4/2), matching how mixed-precision layers feed
/// it; bandwidth ops report GB/s and ignore `bits`.
struct PerfSample {
  double value = 0.0;
  const char* unit = "GB/s";
};
PerfSample measure_perf(Op op, const Backend& test, int bits);

}  // namespace adq::backend
