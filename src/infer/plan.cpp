#include "infer/plan.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "graph/build.h"
#include "graph/passes.h"
#include "nn/batchnorm.h"
#include "quant/quantizer.h"
#include "tensor/bitpack.h"
#include "tensor/ops.h"

namespace adq::infer {
namespace {

// Quantizes `w` to l.bits codes and stores them packed. Convs keep the
// [out, patch] layout; linears store the transpose [in, out] so the weight
// sits on the GEMM B side. Matches FakeQuantizer per-tensor min/max and
// fake_quantize's nearbyint rounding exactly, so the integer path sees the
// identical eqn-1 grid the training path simulated.
void quantize_weights(GemmLayerPlan& l, const Tensor& w, bool transpose) {
  const std::int64_t count = w.numel();
  const std::int64_t out = l.out_channels;
  const std::int64_t inner = count / out;  // patch (conv) or fan-in (linear)
  const float lo = min_value(w), hi = max_value(w);
  l.w_min = lo;
  l.cell_bits = cell_bits_for(l.bits);
  l.w_code_sums.assign(static_cast<std::size_t>(out), 0);

  std::vector<std::uint8_t> codes(static_cast<std::size_t>(count), 0);
  if (hi > lo) {
    const float levels =
        static_cast<float>(quant::max_code(std::min(l.bits, 8)));
    l.w_scale = (hi - lo) / levels;
    const float inv = levels / (hi - lo);
    const float* pw = w.data();
    for (std::int64_t o = 0; o < out; ++o) {
      std::int32_t row_sum = 0;
      for (std::int64_t i = 0; i < inner; ++i) {
        const float v = std::clamp(pw[o * inner + i], lo, hi);
        const auto q =
            static_cast<std::uint8_t>(std::nearbyint((v - lo) * inv));
        codes[static_cast<std::size_t>(transpose ? i * out + o
                                                 : o * inner + i)] = q;
        row_sum += q;
      }
      l.w_code_sums[static_cast<std::size_t>(o)] = row_sum;
    }
  } else {
    l.w_scale = 0.0f;  // degenerate range: every weight equals w_min
  }
  l.weight_codes.resize(
      static_cast<std::size_t>(packed_bytes(count, l.cell_bits)));
  pack_codes(codes.data(), count, l.cell_bits, l.weight_codes.data());
}

// Shared tail of the plan_* builders: pick the path, snapshot weights, and
// initialise the identity epilogue.
void plan_weights(GemmLayerPlan& l, const Tensor& w, bool transpose,
                  const CompileOptions& opts) {
  const int ceiling = std::min(opts.max_integer_bits, 8);
  if (l.quantize_input && l.bits <= ceiling) {
    l.path = ExecPath::kInteger;
    quantize_weights(l, w, transpose);
  } else {
    l.path = ExecPath::kFloat;
    l.weight_f = l.quantize_input ? quant::fake_quantize(w, l.bits) : w;
  }
  l.epi_scale.assign(static_cast<std::size_t>(l.out_channels), 1.0f);
  l.epi_shift.assign(static_cast<std::size_t>(l.out_channels), 0.0f);
}

// Folds the eval-mode BatchNorm affine and then the conv bias into the
// per-channel epilogue.
void fold_bn_and_bias(GemmLayerPlan& l, nn::BatchNorm2d* bn,
                      nn::Parameter* bias) {
  if (bn != nullptr && !bn->bypassed()) {
    const Tensor& mean = bn->running_mean();
    const Tensor& var = bn->running_var();
    for (std::int64_t c = 0; c < l.out_channels; ++c) {
      const float inv_std = 1.0f / std::sqrt(var[c] + bn->eps());
      const float a = bn->gamma().value[c] * inv_std;
      l.epi_scale[static_cast<std::size_t>(c)] = a;
      l.epi_shift[static_cast<std::size_t>(c)] = bn->beta().value[c] - a * mean[c];
    }
  }
  if (bias != nullptr) {
    for (std::int64_t c = 0; c < l.out_channels; ++c) {
      l.epi_shift[static_cast<std::size_t>(c)] +=
          l.epi_scale[static_cast<std::size_t>(c)] * bias->value[c];
    }
  }
}

// The plan_* internals take quantize_input explicitly: the graph pipeline
// decides it by pass (elide_quantize absorbs the layer's input quantizer);
// the public wrappers below re-derive the training-forward condition for
// callers compiling a bare layer.
//
// Conv2d and DepthwiseConv2d share every accessor the plan needs except
// the channel counts, so one templated builder serves both — a change to
// the shared tail can never reach one layer kind and miss the other.
template <typename ConvLike>
GemmLayerPlan plan_conv_like(ConvLike& conv, bool is_depthwise,
                             std::int64_t in_channels,
                             std::int64_t out_channels, nn::BatchNorm2d* bn,
                             bool fuse_relu, bool quantize_input,
                             const CompileOptions& opts) {
  GemmLayerPlan l;
  l.name = conv.name();
  l.is_conv = true;
  l.is_depthwise = is_depthwise;
  l.in_channels = in_channels;
  l.out_channels = out_channels;
  l.kernel = conv.kernel();
  l.stride = conv.stride();
  l.pad = conv.pad();
  l.bits = conv.bits();
  l.quantize_input = quantize_input;
  l.relu = fuse_relu;
  l.active_out = conv.active_out_channels();
  plan_weights(l, conv.weight().value, /*transpose=*/false, opts);
  fold_bn_and_bias(l, bn, conv.bias());
  return l;
}

GemmLayerPlan plan_conv_node(nn::Conv2d& conv, nn::BatchNorm2d* bn,
                             bool fuse_relu, bool quantize_input,
                             const CompileOptions& opts) {
  return plan_conv_like(conv, /*is_depthwise=*/false, conv.in_channels(),
                        conv.out_channels(), bn, fuse_relu, quantize_input,
                        opts);
}

GemmLayerPlan plan_depthwise_node(nn::DepthwiseConv2d& conv,
                                  nn::BatchNorm2d* bn, bool fuse_relu,
                                  bool quantize_input,
                                  const CompileOptions& opts) {
  return plan_conv_like(conv, /*is_depthwise=*/true, conv.channels(),
                        conv.channels(), bn, fuse_relu, quantize_input, opts);
}

GemmLayerPlan plan_linear_node(nn::Linear& linear, bool fuse_relu,
                               bool quantize_input,
                               const CompileOptions& opts) {
  GemmLayerPlan l;
  l.name = linear.name();
  l.is_conv = false;
  l.in_channels = linear.in_features();
  l.out_channels = linear.out_features();
  l.bits = linear.bits();
  l.quantize_input = quantize_input;
  l.relu = fuse_relu;
  l.active_out = l.out_channels;
  plan_weights(l, linear.weight().value, /*transpose=*/true, opts);
  if (nn::Parameter* b = linear.bias()) {
    for (std::int64_t c = 0; c < l.out_channels; ++c) {
      l.epi_shift[static_cast<std::size_t>(c)] = b->value[c];
    }
  }
  return l;
}

// ---------------------------------------------------------------------------
// Graph -> plan emission.
//
// The engine is a stack machine over one "current" tensor plus a skip
// stack, so lowering walks the legalized DAG recursively: chains emit in
// producer order, and a residual diamond emits as
//   PushSkip -> <main-branch ops> -> [SkipGemm] -> AddSkipRelu.
// The skip branch may hold at most the Fig-2 quantizer and one
// (BN-folded) conv — exactly what kPushSkip/kSkipGemm can express; deeper
// skip branches are an IR capability the engine does not have yet, and
// lowering says so rather than miscompiling.
// ---------------------------------------------------------------------------

class Lowerer {
 public:
  Lowerer(const graph::Graph& g, const CompileOptions& opts)
      : g_(g), opts_(opts) {}

  InferencePlan run() {
    plan_.model_name = g_.name();
    emit_value(g_.output());
    return std::move(plan_);
  }

 private:
  [[noreturn]] void cannot_lower(const graph::Node& n,
                                 const std::string& why) {
    throw std::invalid_argument("infer::lower_to_plan: node '" + n.name +
                                "' (" + graph::kind_name(n.kind) + "): " +
                                why);
  }

  void emit_gemm(GemmLayerPlan layer, OpKind kind) {
    plan_.layers.push_back(std::move(layer));
    OpPlan op;
    op.kind = kind;
    op.layer = static_cast<int>(plan_.layers.size()) - 1;
    plan_.ops.push_back(op);
  }

  GemmLayerPlan plan_for(const graph::Node& n) {
    switch (n.kind) {
      case graph::NodeKind::kConv:
        return plan_conv_node(*n.conv, n.bn, n.fused_relu, n.quantize_input,
                              opts_);
      case graph::NodeKind::kDepthwiseConv:
        return plan_depthwise_node(*n.dwconv, n.bn, n.fused_relu,
                                   n.quantize_input, opts_);
      case graph::NodeKind::kLinear:
        return plan_linear_node(*n.linear, n.fused_relu, n.quantize_input,
                                opts_);
      default:
        cannot_lower(n, "not a GEMM node");
    }
  }

  // Emits the op consuming the current tensor and producing n's value.
  void emit_op(const graph::Node& n) {
    OpPlan op;
    switch (n.kind) {
      case graph::NodeKind::kConv:
      case graph::NodeKind::kDepthwiseConv:
      case graph::NodeKind::kLinear:
        emit_gemm(plan_for(n), OpKind::kGemm);
        return;
      case graph::NodeKind::kReLU:
        op.kind = OpKind::kReLU;
        break;
      case graph::NodeKind::kMaxPool:
        op.kind = OpKind::kMaxPool;
        op.pool_kernel = n.pool_kernel;
        op.pool_stride = n.pool_stride;
        break;
      case graph::NodeKind::kGlobalAvgPool:
        op.kind = OpKind::kGlobalAvgPool;
        break;
      case graph::NodeKind::kFlatten:
        op.kind = OpKind::kFlatten;
        break;
      case graph::NodeKind::kQuantize:
        // A quantizer no pass could fuse (e.g. hand-built graphs): executed
        // as an explicit eqn-1 snap of the current tensor.
        op.kind = OpKind::kQuantize;
        op.skip_bits = n.bits;
        break;
      case graph::NodeKind::kBatchNorm:
        cannot_lower(n, "BatchNorm was not folded into a conv "
                        "(run graph::legalize first)");
      default:
        cannot_lower(n, "unsupported op");
    }
    plan_.ops.push_back(op);
  }

  // Ensures the engine's current tensor holds node `id`'s value.
  void emit_value(int id) {
    const graph::Node& n = g_.at(id);
    switch (n.kind) {
      case graph::NodeKind::kInput:
        return;  // current = the engine's input tensor
      case graph::NodeKind::kOutput:
        emit_value(n.inputs[0]);
        return;
      case graph::NodeKind::kAdd:
        emit_add(n);
        return;
      default:
        emit_value(n.inputs[0]);
        emit_op(n);
        return;
    }
  }

  void emit_add(const graph::Node& add) {
    // Build convention: inputs[0] = main branch, inputs[1] = skip branch.
    // The skip branch may hold [quantize] [conv]; beneath it is the fork
    // value both branches share. A node that feeds anything besides the
    // skip branch IS the fork (e.g. an identity skip whose quantizer was
    // elided lands the add directly on the shared producer — even when
    // that producer happens to be a conv), so only sole-consumer nodes are
    // consumed into the skip chain.
    int skip = add.inputs[1];
    int down = -1, quantize = -1;
    if ((g_.at(skip).kind == graph::NodeKind::kConv ||
         g_.at(skip).kind == graph::NodeKind::kDepthwiseConv) &&
        g_.consumers(skip).size() == 1) {
      down = skip;
      skip = g_.at(skip).inputs[0];
    }
    if (g_.at(skip).kind == graph::NodeKind::kQuantize &&
        g_.consumers(skip).size() == 1) {
      quantize = skip;
      skip = g_.at(skip).inputs[0];
    }
    const int fork = skip;

    // Main-branch chain from the fork (exclusive) to the add (exclusive).
    std::vector<int> chain;
    for (int m = add.inputs[0]; m != fork;) {
      const graph::Node& node = g_.at(m);
      if (node.kind == graph::NodeKind::kAdd ||
          node.kind == graph::NodeKind::kInput || node.inputs.empty()) {
        cannot_lower(add, "main and skip branches do not meet at a common "
                          "fork the skip stack can express");
      }
      chain.push_back(m);
      m = node.inputs[0];
    }

    emit_value(fork);
    OpPlan push;
    push.kind = OpKind::kPushSkip;
    push.skip_bits = quantize >= 0 ? g_.at(quantize).bits : 0;
    plan_.ops.push_back(push);

    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      emit_op(g_.at(*it));
    }
    if (down >= 0) emit_gemm(plan_for(g_.at(down)), OpKind::kSkipGemm);

    if (!add.fused_relu) {
      cannot_lower(add, "the engine's residual add always rectifies; an add "
                        "without a fused ReLU cannot execute");
    }
    OpPlan op;
    op.kind = OpKind::kAddSkipRelu;
    op.mask_channels = add.mask_channels;
    plan_.ops.push_back(op);
  }

  const graph::Graph& g_;
  const CompileOptions& opts_;
  InferencePlan plan_;
};

}  // namespace

std::size_t GemmLayerPlan::weight_bytes() const {
  if (path == ExecPath::kInteger) return weight_codes.size();
  return static_cast<std::size_t>(weight_f.numel()) * sizeof(float);
}

std::size_t InferencePlan::weight_bytes() const {
  std::size_t total = 0;
  for (const GemmLayerPlan& l : layers) total += l.weight_bytes();
  return total;
}

int InferencePlan::integer_layer_count() const {
  int n = 0;
  for (const GemmLayerPlan& l : layers) n += l.path == ExecPath::kInteger;
  return n;
}

GemmLayerPlan plan_conv(nn::Conv2d& conv, nn::BatchNorm2d* bn,
                        bool fuse_relu, const CompileOptions& opts) {
  return plan_conv_node(conv, bn, fuse_relu,
                        conv.quantization_enabled() && conv.bits() < 24,
                        opts);
}

GemmLayerPlan plan_depthwise(nn::DepthwiseConv2d& conv, nn::BatchNorm2d* bn,
                             bool fuse_relu, const CompileOptions& opts) {
  return plan_depthwise_node(conv, bn, fuse_relu,
                             conv.quantization_enabled() && conv.bits() < 24,
                             opts);
}

GemmLayerPlan plan_linear(nn::Linear& linear, bool fuse_relu,
                          const CompileOptions& opts) {
  return plan_linear_node(linear, fuse_relu,
                          linear.quantization_enabled() && linear.bits() < 24,
                          opts);
}

InferencePlan lower_to_plan(const graph::Graph& g,
                            const CompileOptions& opts) {
  return Lowerer(g, opts).run();
}

InferencePlan compile(models::QuantizableModel& model,
                      const CompileOptions& opts) {
  graph::Graph g = graph::build_from_model(model);
  graph::legalize(g);
  return lower_to_plan(g, opts);
}

}  // namespace adq::infer
