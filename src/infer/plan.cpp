#include "infer/plan.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "nn/batchnorm.h"
#include "nn/flatten.h"
#include "nn/pool.h"
#include "nn/relu.h"
#include "nn/residual.h"
#include "nn/sequential.h"
#include "quant/quantizer.h"
#include "tensor/bitpack.h"
#include "tensor/ops.h"

namespace adq::infer {
namespace {

// Quantizes `w` to l.bits codes and stores them packed. Convs keep the
// [out, patch] layout; linears store the transpose [in, out] so the weight
// sits on the GEMM B side. Matches FakeQuantizer per-tensor min/max and
// fake_quantize's nearbyint rounding exactly, so the integer path sees the
// identical eqn-1 grid the training path simulated.
void quantize_weights(GemmLayerPlan& l, const Tensor& w, bool transpose) {
  const std::int64_t count = w.numel();
  const std::int64_t out = l.out_channels;
  const std::int64_t inner = count / out;  // patch (conv) or fan-in (linear)
  const float lo = min_value(w), hi = max_value(w);
  l.w_min = lo;
  l.cell_bits = cell_bits_for(l.bits);
  l.w_code_sums.assign(static_cast<std::size_t>(out), 0);

  std::vector<std::uint8_t> codes(static_cast<std::size_t>(count), 0);
  if (hi > lo) {
    const float levels =
        static_cast<float>(quant::max_code(std::min(l.bits, 8)));
    l.w_scale = (hi - lo) / levels;
    const float inv = levels / (hi - lo);
    const float* pw = w.data();
    for (std::int64_t o = 0; o < out; ++o) {
      std::int32_t row_sum = 0;
      for (std::int64_t i = 0; i < inner; ++i) {
        const float v = std::clamp(pw[o * inner + i], lo, hi);
        const auto q =
            static_cast<std::uint8_t>(std::nearbyint((v - lo) * inv));
        codes[static_cast<std::size_t>(transpose ? i * out + o
                                                 : o * inner + i)] = q;
        row_sum += q;
      }
      l.w_code_sums[static_cast<std::size_t>(o)] = row_sum;
    }
  } else {
    l.w_scale = 0.0f;  // degenerate range: every weight equals w_min
  }
  l.weight_codes.resize(
      static_cast<std::size_t>(packed_bytes(count, l.cell_bits)));
  pack_codes(codes.data(), count, l.cell_bits, l.weight_codes.data());
}

// Shared tail of plan_conv / plan_linear: pick the path, snapshot weights,
// and initialise the identity epilogue.
void plan_weights(GemmLayerPlan& l, const Tensor& w, bool transpose,
                  const CompileOptions& opts) {
  const int ceiling = std::min(opts.max_integer_bits, 8);
  if (l.quantize_input && l.bits <= ceiling) {
    l.path = ExecPath::kInteger;
    quantize_weights(l, w, transpose);
  } else {
    l.path = ExecPath::kFloat;
    l.weight_f = l.quantize_input ? quant::fake_quantize(w, l.bits) : w;
  }
  l.epi_scale.assign(static_cast<std::size_t>(l.out_channels), 1.0f);
  l.epi_shift.assign(static_cast<std::size_t>(l.out_channels), 0.0f);
}

}  // namespace

std::size_t GemmLayerPlan::weight_bytes() const {
  if (path == ExecPath::kInteger) return weight_codes.size();
  return static_cast<std::size_t>(weight_f.numel()) * sizeof(float);
}

std::size_t InferencePlan::weight_bytes() const {
  std::size_t total = 0;
  for (const GemmLayerPlan& l : layers) total += l.weight_bytes();
  return total;
}

int InferencePlan::integer_layer_count() const {
  int n = 0;
  for (const GemmLayerPlan& l : layers) n += l.path == ExecPath::kInteger;
  return n;
}

GemmLayerPlan plan_conv(nn::Conv2d& conv, nn::BatchNorm2d* bn,
                        bool fuse_relu, const CompileOptions& opts) {
  GemmLayerPlan l;
  l.name = conv.name();
  l.is_conv = true;
  l.in_channels = conv.in_channels();
  l.out_channels = conv.out_channels();
  l.kernel = conv.kernel();
  l.stride = conv.stride();
  l.pad = conv.pad();
  l.bits = conv.bits();
  l.quantize_input = conv.quantization_enabled() && l.bits < 24;
  l.relu = fuse_relu;
  l.active_out = conv.active_out_channels();
  plan_weights(l, conv.weight().value, /*transpose=*/false, opts);

  if (bn != nullptr && !bn->bypassed()) {
    const Tensor& mean = bn->running_mean();
    const Tensor& var = bn->running_var();
    for (std::int64_t c = 0; c < l.out_channels; ++c) {
      const float inv_std = 1.0f / std::sqrt(var[c] + bn->eps());
      const float a = bn->gamma().value[c] * inv_std;
      l.epi_scale[static_cast<std::size_t>(c)] = a;
      l.epi_shift[static_cast<std::size_t>(c)] = bn->beta().value[c] - a * mean[c];
    }
  }
  if (nn::Parameter* b = conv.bias()) {
    for (std::int64_t c = 0; c < l.out_channels; ++c) {
      l.epi_shift[static_cast<std::size_t>(c)] +=
          l.epi_scale[static_cast<std::size_t>(c)] * b->value[c];
    }
  }
  return l;
}

GemmLayerPlan plan_linear(nn::Linear& linear, bool fuse_relu,
                          const CompileOptions& opts) {
  GemmLayerPlan l;
  l.name = linear.name();
  l.is_conv = false;
  l.in_channels = linear.in_features();
  l.out_channels = linear.out_features();
  l.bits = linear.bits();
  l.quantize_input = linear.quantization_enabled() && l.bits < 24;
  l.relu = fuse_relu;
  l.active_out = l.out_channels;
  plan_weights(l, linear.weight().value, /*transpose=*/true, opts);

  if (nn::Parameter* b = linear.bias()) {
    for (std::int64_t c = 0; c < l.out_channels; ++c) {
      l.epi_shift[static_cast<std::size_t>(c)] = b->value[c];
    }
  }
  return l;
}

InferencePlan compile(models::QuantizableModel& model,
                      const CompileOptions& opts) {
  InferencePlan plan;
  plan.model_name = model.name();
  nn::Sequential& net = model.net();

  auto peek = [&](std::size_t j) -> nn::Layer* {
    return j < net.size() ? &net.at(j) : nullptr;
  };
  auto emit_gemm = [&](GemmLayerPlan layer, OpKind kind) {
    plan.layers.push_back(std::move(layer));
    OpPlan op;
    op.kind = kind;
    op.layer = static_cast<int>(plan.layers.size()) - 1;
    plan.ops.push_back(op);
  };

  std::size_t i = 0;
  while (i < net.size()) {
    nn::Layer& L = net.at(i);
    if (auto* conv = dynamic_cast<nn::Conv2d*>(&L)) {
      auto* bn = dynamic_cast<nn::BatchNorm2d*>(peek(i + 1));
      std::size_t j = i + 1 + (bn != nullptr ? 1 : 0);
      auto* relu = dynamic_cast<nn::ReLU*>(peek(j));
      if (relu != nullptr) ++j;
      if (conv->bypassed()) {
        // Removed unit (Table II iter 2a): conv and BN are identities, the
        // trailing ReLU still rectifies.
        if (relu != nullptr) {
          OpPlan op;
          op.kind = OpKind::kReLU;
          plan.ops.push_back(op);
        }
      } else {
        emit_gemm(plan_conv(*conv, bn, relu != nullptr, opts), OpKind::kGemm);
      }
      i = j;
    } else if (auto* block = dynamic_cast<nn::ResidualBlock*>(&L)) {
      const quant::FakeQuantizer& sq = block->skip_quantizer();
      OpPlan push;
      push.kind = OpKind::kPushSkip;
      push.skip_bits = (sq.enabled() && sq.bits() < 24) ? sq.bits() : 0;
      plan.ops.push_back(push);
      emit_gemm(plan_conv(block->conv1(), &block->bn1(), /*fuse_relu=*/true,
                          opts),
                OpKind::kGemm);
      emit_gemm(plan_conv(block->conv2(), &block->bn2(), /*fuse_relu=*/false,
                          opts),
                OpKind::kGemm);
      if (block->has_downsample()) {
        emit_gemm(plan_conv(*block->downsample_conv(), block->downsample_bn(),
                            /*fuse_relu=*/false, opts),
                  OpKind::kSkipGemm);
      }
      OpPlan add;
      add.kind = OpKind::kAddSkipRelu;
      add.mask_channels = block->active_out_channels();
      plan.ops.push_back(add);
      ++i;
    } else if (auto* lin = dynamic_cast<nn::Linear*>(&L)) {
      auto* relu = dynamic_cast<nn::ReLU*>(peek(i + 1));
      emit_gemm(plan_linear(*lin, relu != nullptr, opts), OpKind::kGemm);
      i += relu != nullptr ? 2 : 1;
    } else if (auto* pool = dynamic_cast<nn::MaxPool2d*>(&L)) {
      OpPlan op;
      op.kind = OpKind::kMaxPool;
      op.pool_kernel = pool->kernel();
      op.pool_stride = pool->stride();
      plan.ops.push_back(op);
      ++i;
    } else if (dynamic_cast<nn::GlobalAvgPool*>(&L) != nullptr) {
      OpPlan op;
      op.kind = OpKind::kGlobalAvgPool;
      plan.ops.push_back(op);
      ++i;
    } else if (dynamic_cast<nn::Flatten*>(&L) != nullptr) {
      OpPlan op;
      op.kind = OpKind::kFlatten;
      plan.ops.push_back(op);
      ++i;
    } else if (dynamic_cast<nn::ReLU*>(&L) != nullptr) {
      OpPlan op;
      op.kind = OpKind::kReLU;
      plan.ops.push_back(op);
      ++i;
    } else {
      throw std::invalid_argument("infer::compile: unsupported layer '" +
                                  L.name() + "'");
    }
  }
  return plan;
}

}  // namespace adq::infer
