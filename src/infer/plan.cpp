#include "infer/plan.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "graph/build.h"
#include "graph/passes.h"
#include "nn/batchnorm.h"
#include "quant/quantizer.h"
#include "tensor/bitpack.h"
#include "tensor/ops.h"

namespace adq::infer {
namespace {

// Quantizes `w` to l.bits codes and stores them packed. Convs keep the
// [out, patch] layout; linears store the transpose [in, out] so the weight
// sits on the GEMM B side. Matches FakeQuantizer per-tensor min/max and
// fake_quantize's nearbyint rounding exactly, so the integer path sees the
// identical eqn-1 grid the training path simulated.
void quantize_weights(GemmLayerPlan& l, const Tensor& w, bool transpose) {
  const std::int64_t count = w.numel();
  const std::int64_t out = l.out_channels;
  const std::int64_t inner = count / out;  // patch (conv) or fan-in (linear)
  const float lo = min_value(w), hi = max_value(w);
  l.w_min = lo;
  l.cell_bits = cell_bits_for(l.bits);
  l.w_code_sums.assign(static_cast<std::size_t>(out), 0);

  std::vector<std::uint8_t> codes(static_cast<std::size_t>(count), 0);
  if (hi > lo) {
    const float levels =
        static_cast<float>(quant::max_code(std::min(l.bits, 8)));
    l.w_scale = (hi - lo) / levels;
    const float inv = levels / (hi - lo);
    const float* pw = w.data();
    for (std::int64_t o = 0; o < out; ++o) {
      std::int32_t row_sum = 0;
      for (std::int64_t i = 0; i < inner; ++i) {
        const float v = std::clamp(pw[o * inner + i], lo, hi);
        const auto q =
            static_cast<std::uint8_t>(std::nearbyint((v - lo) * inv));
        codes[static_cast<std::size_t>(transpose ? i * out + o
                                                 : o * inner + i)] = q;
        row_sum += q;
      }
      l.w_code_sums[static_cast<std::size_t>(o)] = row_sum;
    }
  } else {
    l.w_scale = 0.0f;  // degenerate range: every weight equals w_min
  }
  l.weight_codes.resize(
      static_cast<std::size_t>(packed_bytes(count, l.cell_bits)));
  pack_codes(codes.data(), count, l.cell_bits, l.weight_codes.data());
}

// Shared tail of the plan_* builders: pick the path, snapshot weights, and
// initialise the identity epilogue.
void plan_weights(GemmLayerPlan& l, const Tensor& w, bool transpose,
                  const CompileOptions& opts) {
  const int ceiling = std::min(opts.max_integer_bits, 8);
  if (l.quantize_input && l.bits <= ceiling) {
    l.path = ExecPath::kInteger;
    quantize_weights(l, w, transpose);
  } else {
    l.path = ExecPath::kFloat;
    l.weight_f = l.quantize_input ? quant::fake_quantize(w, l.bits) : w;
  }
  l.epi_scale.assign(static_cast<std::size_t>(l.out_channels), 1.0f);
  l.epi_shift.assign(static_cast<std::size_t>(l.out_channels), 0.0f);
}

// Folds the eval-mode BatchNorm affine and then the conv bias into the
// per-channel epilogue.
void fold_bn_and_bias(GemmLayerPlan& l, nn::BatchNorm2d* bn,
                      nn::Parameter* bias) {
  if (bn != nullptr && !bn->bypassed()) {
    const Tensor& mean = bn->running_mean();
    const Tensor& var = bn->running_var();
    for (std::int64_t c = 0; c < l.out_channels; ++c) {
      const float inv_std = 1.0f / std::sqrt(var[c] + bn->eps());
      const float a = bn->gamma().value[c] * inv_std;
      l.epi_scale[static_cast<std::size_t>(c)] = a;
      l.epi_shift[static_cast<std::size_t>(c)] = bn->beta().value[c] - a * mean[c];
    }
  }
  if (bias != nullptr) {
    for (std::int64_t c = 0; c < l.out_channels; ++c) {
      l.epi_shift[static_cast<std::size_t>(c)] +=
          l.epi_scale[static_cast<std::size_t>(c)] * bias->value[c];
    }
  }
}

// The plan_* internals take quantize_input explicitly: the graph pipeline
// decides it by pass (elide_quantize absorbs the layer's input quantizer);
// the public wrappers below re-derive the training-forward condition for
// callers compiling a bare layer.
//
// Conv2d and DepthwiseConv2d share every accessor the plan needs except
// the channel counts, so one templated builder serves both — a change to
// the shared tail can never reach one layer kind and miss the other.
template <typename ConvLike>
GemmLayerPlan plan_conv_like(ConvLike& conv, bool is_depthwise,
                             std::int64_t in_channels,
                             std::int64_t out_channels, nn::BatchNorm2d* bn,
                             bool fuse_relu, bool quantize_input,
                             const CompileOptions& opts) {
  GemmLayerPlan l;
  l.name = conv.name();
  l.is_conv = true;
  l.is_depthwise = is_depthwise;
  l.in_channels = in_channels;
  l.out_channels = out_channels;
  l.kernel = conv.kernel();
  l.stride = conv.stride();
  l.pad = conv.pad();
  l.bits = conv.bits();
  l.quantize_input = quantize_input;
  l.relu = fuse_relu;
  l.active_out = conv.active_out_channels();
  plan_weights(l, conv.weight().value, /*transpose=*/false, opts);
  fold_bn_and_bias(l, bn, conv.bias());
  return l;
}

GemmLayerPlan plan_conv_node(nn::Conv2d& conv, nn::BatchNorm2d* bn,
                             bool fuse_relu, bool quantize_input,
                             const CompileOptions& opts) {
  return plan_conv_like(conv, /*is_depthwise=*/false, conv.in_channels(),
                        conv.out_channels(), bn, fuse_relu, quantize_input,
                        opts);
}

GemmLayerPlan plan_depthwise_node(nn::DepthwiseConv2d& conv,
                                  nn::BatchNorm2d* bn, bool fuse_relu,
                                  bool quantize_input,
                                  const CompileOptions& opts) {
  return plan_conv_like(conv, /*is_depthwise=*/true, conv.channels(),
                        conv.channels(), bn, fuse_relu, quantize_input, opts);
}

GemmLayerPlan plan_linear_node(nn::Linear& linear, bool fuse_relu,
                               bool quantize_input,
                               const CompileOptions& opts) {
  GemmLayerPlan l;
  l.name = linear.name();
  l.is_conv = false;
  l.in_channels = linear.in_features();
  l.out_channels = linear.out_features();
  l.bits = linear.bits();
  l.quantize_input = quantize_input;
  l.relu = fuse_relu;
  l.active_out = l.out_channels;
  plan_weights(l, linear.weight().value, /*transpose=*/true, opts);
  if (nn::Parameter* b = linear.bias()) {
    for (std::int64_t c = 0; c < l.out_channels; ++c) {
      l.epi_shift[static_cast<std::size_t>(c)] = b->value[c];
    }
  }
  return l;
}

// ---------------------------------------------------------------------------
// Graph -> plan emission.
//
// The engine is a stack machine over one "current" tensor plus a skip
// stack, so lowering walks the legalized DAG recursively: chains emit in
// producer order, and a residual diamond emits as
//   PushSkip -> <main-branch ops> -> [QuantizeSkip] -> [SkipGemm]
//   -> AddSkipRelu.
// The Fig-2 skip quantizer is deferred to just before the add (it reads
// the untouched fork value either way), which lets the arena executor
// quantize the fork slot in place once the main branch is done with it.
// The skip branch may hold at most that quantizer and one (BN-folded)
// conv — exactly what the skip stack can express; deeper skip branches
// are an IR capability the engine does not have yet, and lowering says so
// rather than miscompiling. Branch decomposition is shared with the
// memory planner (graph::decompose_residual), so op emission and slot
// liveness agree by construction.
//
// When graph::plan_memory has annotated the graph, every op carries the
// arena slot its output occupies (out_offset; -1 = in place / pure view)
// and the plan records the arena footprint + planned input shape.
// ---------------------------------------------------------------------------

class Lowerer {
 public:
  Lowerer(const graph::Graph& g, const CompileOptions& opts)
      : g_(g),
        opts_(opts),
        planned_(g.output() >= 0 && g.at(g.output()).mem.def >= 0) {}

  InferencePlan run() {
    plan_.model_name = g_.name();
    emit_value(g_.output());
    if (planned_) {
      plan_.arena_bytes = g_.arena_bytes();
      plan_.arena_bytes_u8 =
          g_.arena_bytes_u8() > 0 ? g_.arena_bytes_u8() : g_.arena_bytes();
      const graph::ValueType& in = g_.at(g_.input()).type;
      plan_.planned_input.rank = in.rank;
      plan_.planned_input.channels = in.channels;
      plan_.planned_input.height = in.height;
      plan_.planned_input.width = in.width;
    }
    return std::move(plan_);
  }

 private:
  [[noreturn]] void cannot_lower(const graph::Node& n,
                                 const std::string& why) {
    throw std::invalid_argument("infer::lower_to_plan: node '" + n.name +
                                "' (" + graph::kind_name(n.kind) + "): " +
                                why);
  }

  // Arena slot the op producing `n`'s value writes to: -1 (in place /
  // pure view / unplanned graph) or the planner's byte offset.
  std::int64_t out_slot(const graph::Node& n) const {
    if (!planned_ || n.mem.inplace) return -1;
    return n.mem.offset;
  }

  // Copies the planner's activation-storage decision onto the op. A packed
  // value must own a real slot — the planner never aliases packed storage
  // in place, so a missing slot here is a planner/lowering disagreement.
  void annotate_act(OpPlan& op, const graph::Node& n) {
    if (!planned_ || n.mem.act_bits <= 0) return;
    if (op.out_offset < 0) {
      cannot_lower(n, "packed activation value has no arena slot");
    }
    op.out_act_bits = n.mem.act_bits;
    op.out_act_qbits = n.mem.act_qbits;
  }

  void emit_gemm(GemmLayerPlan layer, OpKind kind, const graph::Node& n) {
    // A GEMM consuming a packed value reads the stored codes instead of
    // quantizing; that is only exact when the layer runs the integer path
    // on the very grid the codes were produced for.
    const graph::Node& in = g_.at(n.inputs[0]);
    if (planned_ && in.mem.act_bits > 0 &&
        (layer.path != ExecPath::kInteger ||
         in.mem.act_qbits != layer.bits)) {
      cannot_lower(n, "consumes a packed activation value quantized on a "
                      "grid this layer cannot read");
    }
    plan_.layers.push_back(std::move(layer));
    OpPlan op;
    op.kind = kind;
    op.layer = static_cast<int>(plan_.layers.size()) - 1;
    op.out_offset = out_slot(n);
    annotate_act(op, n);
    plan_.ops.push_back(op);
  }

  GemmLayerPlan plan_for(const graph::Node& n) {
    switch (n.kind) {
      case graph::NodeKind::kConv:
        return plan_conv_node(*n.conv, n.bn, n.fused_relu, n.quantize_input,
                              opts_);
      case graph::NodeKind::kDepthwiseConv:
        return plan_depthwise_node(*n.dwconv, n.bn, n.fused_relu,
                                   n.quantize_input, opts_);
      case graph::NodeKind::kLinear:
        return plan_linear_node(*n.linear, n.fused_relu, n.quantize_input,
                                opts_);
      default:
        cannot_lower(n, "not a GEMM node");
    }
  }

  // Emits the op consuming the current tensor and producing n's value.
  void emit_op(const graph::Node& n) {
    OpPlan op;
    switch (n.kind) {
      case graph::NodeKind::kConv:
      case graph::NodeKind::kDepthwiseConv:
      case graph::NodeKind::kLinear:
        emit_gemm(plan_for(n), OpKind::kGemm, n);
        return;
      case graph::NodeKind::kReLU:
        op.kind = OpKind::kReLU;
        break;
      case graph::NodeKind::kMaxPool:
        op.kind = OpKind::kMaxPool;
        op.pool_kernel = n.pool_kernel;
        op.pool_stride = n.pool_stride;
        break;
      case graph::NodeKind::kGlobalAvgPool:
        op.kind = OpKind::kGlobalAvgPool;
        break;
      case graph::NodeKind::kFlatten:
        op.kind = OpKind::kFlatten;
        break;
      case graph::NodeKind::kQuantize:
        // A quantizer no pass could fuse (e.g. hand-built graphs): executed
        // as an explicit eqn-1 snap of the current tensor.
        op.kind = OpKind::kQuantize;
        op.skip_bits = n.bits;
        break;
      case graph::NodeKind::kBatchNorm:
        cannot_lower(n, "BatchNorm was not folded into a conv "
                        "(run graph::legalize first)");
      default:
        cannot_lower(n, "unsupported op");
    }
    op.out_offset = n.kind == graph::NodeKind::kFlatten ? -1 : out_slot(n);
    if (n.kind != graph::NodeKind::kFlatten) annotate_act(op, n);
    plan_.ops.push_back(op);
  }

  // Ensures the engine's current tensor holds node `id`'s value.
  void emit_value(int id) {
    const graph::Node& n = g_.at(id);
    switch (n.kind) {
      case graph::NodeKind::kInput:
        return;  // current = the engine's input tensor
      case graph::NodeKind::kOutput:
        emit_value(n.inputs[0]);
        return;
      case graph::NodeKind::kAdd:
        emit_add(id);
        return;
      default:
        emit_value(n.inputs[0]);
        emit_op(n);
        return;
    }
  }

  void emit_add(int add_id) {
    const graph::Node& add = g_.at(add_id);
    // Shared decomposition with the memory planner's execution schedule
    // (see graph::decompose_residual): fork, lazily-quantized skip, at
    // most one downsample conv.
    const graph::ResidualParts parts = graph::decompose_residual(g_, add_id);

    emit_value(parts.fork);
    OpPlan push;
    push.kind = OpKind::kPushSkip;
    plan_.ops.push_back(push);  // bits 0: the skip aliases the fork slot

    // A packed skip quantizer owns a fresh compressed slot, so it runs
    // eagerly right after the fork (freeing the fork slot once the main
    // branch reads it); a float one keeps the deferred in-place order.
    // Mirrors graph::execution_schedule — op order and slot liveness must
    // agree.
    const bool packed_skip = planned_ && parts.quantize >= 0 &&
                             g_.at(parts.quantize).mem.act_bits > 0;
    const auto emit_quant = [&] {
      const graph::Node& q = g_.at(parts.quantize);
      OpPlan quant;
      quant.kind = OpKind::kQuantizeSkip;
      quant.skip_bits = q.bits;
      quant.out_offset = out_slot(q);
      annotate_act(quant, q);
      plan_.ops.push_back(quant);
    };
    if (packed_skip) emit_quant();

    for (int m : parts.main_chain) emit_op(g_.at(m));

    if (parts.quantize >= 0 && !packed_skip) emit_quant();
    if (parts.downsample >= 0) {
      emit_gemm(plan_for(g_.at(parts.downsample)), OpKind::kSkipGemm,
                g_.at(parts.downsample));
    }

    if (!add.fused_relu) {
      cannot_lower(add, "the engine's residual add always rectifies; an add "
                        "without a fused ReLU cannot execute");
    }
    OpPlan op;
    op.kind = OpKind::kAddSkipRelu;
    op.mask_channels = add.mask_channels;
    op.out_offset = out_slot(add);
    annotate_act(op, add);
    plan_.ops.push_back(op);
  }

  const graph::Graph& g_;
  const CompileOptions& opts_;
  const bool planned_;  // graph carries plan_memory() annotations
  InferencePlan plan_;
};

}  // namespace

// ---------------------------------------------------------------------------
// Shape simulation over the op list — the same walk the executor performs,
// on batch-agnostic shapes. Used for slot validation (engine ctor), the
// activation-traffic report, and tests.
// ---------------------------------------------------------------------------

namespace {

std::int64_t shape_elems(const PlannedInput& s) {
  return s.rank == 3 ? s.channels * s.height * s.width : s.channels;
}

PlannedInput gemm_out_shape(const GemmLayerPlan& l, const PlannedInput& in) {
  if (!l.is_conv) {
    PlannedInput out;
    out.rank = 1;
    out.channels = l.out_channels;
    return out;
  }
  PlannedInput out;
  out.rank = 3;
  out.channels = l.out_channels;
  out.height = l.out_extent(in.height);
  out.width = l.out_extent(in.width);
  return out;
}

// Walks the op list from `input`, reporting each op's consumed and
// produced value shapes to `visit(op_index, in_elems, out_shape)`.
// in_elems counts every operand (the residual add reads main + skip).
template <typename Visit>
void walk_op_shapes(const InferencePlan& plan, Visit&& visit) {
  if (plan.planned_input.rank == 0) {
    throw std::logic_error(
        "infer: plan '" + plan.model_name +
        "' carries no planned input shape (format v1/v2) — "
        "activation accounting needs a memory-planned (v3) plan");
  }
  PlannedInput cur = plan.planned_input;
  std::vector<PlannedInput> skips;
  for (std::size_t i = 0; i < plan.ops.size(); ++i) {
    const OpPlan& op = plan.ops[i];
    switch (op.kind) {
      case OpKind::kGemm: {
        const GemmLayerPlan& l =
            plan.layers[static_cast<std::size_t>(op.layer)];
        const std::int64_t in = shape_elems(cur);
        cur = gemm_out_shape(l, cur);
        visit(i, in, cur);
        break;
      }
      case OpKind::kMaxPool: {
        const std::int64_t in = shape_elems(cur);
        cur.height = (cur.height - op.pool_kernel) / op.pool_stride + 1;
        cur.width = (cur.width - op.pool_kernel) / op.pool_stride + 1;
        visit(i, in, cur);
        break;
      }
      case OpKind::kGlobalAvgPool: {
        const std::int64_t in = shape_elems(cur);
        cur.rank = 1;
        cur.height = cur.width = 0;
        visit(i, in, cur);
        break;
      }
      case OpKind::kFlatten: {
        const std::int64_t in = shape_elems(cur);
        cur.channels = in;
        cur.rank = 1;
        cur.height = cur.width = 0;
        visit(i, in, cur);
        break;
      }
      case OpKind::kReLU:
      case OpKind::kQuantize:
        visit(i, shape_elems(cur), cur);
        break;
      case OpKind::kPushSkip:
        skips.push_back(cur);
        visit(i, shape_elems(cur), cur);
        break;
      case OpKind::kQuantizeSkip:
        if (skips.empty()) {
          throw std::logic_error("infer: quantize-skip without a saved skip");
        }
        visit(i, shape_elems(skips.back()), skips.back());
        break;
      case OpKind::kSkipGemm: {
        if (skips.empty()) {
          throw std::logic_error("infer: skip gemm without a saved skip");
        }
        const GemmLayerPlan& l =
            plan.layers[static_cast<std::size_t>(op.layer)];
        const std::int64_t in = shape_elems(skips.back());
        skips.back() = gemm_out_shape(l, skips.back());
        visit(i, in, skips.back());
        break;
      }
      case OpKind::kAddSkipRelu: {
        if (skips.empty()) {
          throw std::logic_error("infer: residual add without a saved skip");
        }
        const std::int64_t in = shape_elems(cur) + shape_elems(skips.back());
        skips.pop_back();
        visit(i, in, cur);
        break;
      }
    }
  }
}

}  // namespace

std::vector<std::int64_t> InferencePlan::op_out_elems() const {
  std::vector<std::int64_t> out(ops.size(), 0);
  walk_op_shapes(*this, [&](std::size_t i, std::int64_t, const PlannedInput& o) {
    out[i] = shape_elems(o);
  });
  return out;
}

ActivationReport InferencePlan::activation_report(std::int64_t batch) const {
  ActivationReport report;
  report.arena_bytes = arena_bytes;
  report.peak_bytes = arena_bytes * batch;
  report.ops.resize(ops.size());
  walk_op_shapes(*this, [&](std::size_t i, std::int64_t in_elems,
                            const PlannedInput& out_shape) {
    const OpPlan& op = ops[i];
    OpActivation& a = report.ops[i];
    a.in_elems = in_elems * batch;
    a.out_elems = shape_elems(out_shape) * batch;
    a.bits = 32;
    switch (op.kind) {
      case OpKind::kGemm:
      case OpKind::kSkipGemm: {
        const GemmLayerPlan& l = layers[static_cast<std::size_t>(op.layer)];
        a.name = l.name;
        a.integer_path = l.path == ExecPath::kInteger;
        if (a.integer_path) a.bits = l.bits;
        break;
      }
      case OpKind::kMaxPool: a.name = "maxpool"; break;
      case OpKind::kGlobalAvgPool: a.name = "gap"; break;
      case OpKind::kFlatten: a.name = "flatten"; break;
      case OpKind::kReLU: a.name = "relu"; break;
      case OpKind::kPushSkip: a.name = "push_skip"; break;
      case OpKind::kQuantize: a.name = "quantize"; break;
      case OpKind::kQuantizeSkip: a.name = "quantize_skip"; break;
      case OpKind::kAddSkipRelu: a.name = "add_skip_relu"; break;
    }
    // Integer GEMMs read activations as k-bit codes packed one per byte;
    // everything else moves 32-bit float words. Flatten is a pure view and
    // an un-quantized push aliases its input, so neither moves data.
    const bool no_traffic =
        op.kind == OpKind::kFlatten || op.kind == OpKind::kPushSkip;
    if (!no_traffic) {
      a.in_bytes = a.integer_path ? a.in_elems
                                  : a.in_elems *
                                        static_cast<std::int64_t>(sizeof(float));
      a.out_bytes = a.out_elems * static_cast<std::int64_t>(sizeof(float));
    }
    report.total_bytes += a.in_bytes + a.out_bytes;
  });
  return report;
}

std::size_t GemmLayerPlan::weight_bytes() const {
  if (path == ExecPath::kInteger) return weight_codes.size();
  return static_cast<std::size_t>(weight_f.numel()) * sizeof(float);
}

std::size_t InferencePlan::weight_bytes() const {
  std::size_t total = 0;
  for (const GemmLayerPlan& l : layers) total += l.weight_bytes();
  return total;
}

int InferencePlan::integer_layer_count() const {
  int n = 0;
  for (const GemmLayerPlan& l : layers) n += l.path == ExecPath::kInteger;
  return n;
}

std::array<int, 9> InferencePlan::act_cell_histogram() const {
  std::array<int, 9> counts{};
  for (const OpPlan& op : ops) {
    if (op.out_offset < 0) continue;  // no slot of its own
    counts[static_cast<std::size_t>(op.out_act_bits)] += 1;
  }
  return counts;
}

GemmLayerPlan plan_conv(nn::Conv2d& conv, nn::BatchNorm2d* bn,
                        bool fuse_relu, const CompileOptions& opts) {
  return plan_conv_node(conv, bn, fuse_relu,
                        conv.quantization_enabled() && conv.bits() < 24,
                        opts);
}

GemmLayerPlan plan_depthwise(nn::DepthwiseConv2d& conv, nn::BatchNorm2d* bn,
                             bool fuse_relu, const CompileOptions& opts) {
  return plan_depthwise_node(conv, bn, fuse_relu,
                             conv.quantization_enabled() && conv.bits() < 24,
                             opts);
}

GemmLayerPlan plan_linear(nn::Linear& linear, bool fuse_relu,
                          const CompileOptions& opts) {
  return plan_linear_node(linear, fuse_relu,
                          linear.quantization_enabled() && linear.bits() < 24,
                          opts);
}

InferencePlan lower_to_plan(const graph::Graph& g,
                            const CompileOptions& opts) {
  return Lowerer(g, opts).run();
}

InferencePlan compile(models::QuantizableModel& model,
                      const CompileOptions& opts) {
  graph::Graph g = graph::build_from_model(model);
  graph::legalize(g);
  // The storage planner must agree with plan_weights on which layers run
  // the integer path, or it would pack a value its consumer cannot read.
  graph::ActStorageOptions aopts = graph::act_storage_from_env();
  aopts.max_integer_bits = opts.max_integer_bits;
  graph::plan_memory(g, aopts);
  return lower_to_plan(g, opts);
}

}  // namespace adq::infer
