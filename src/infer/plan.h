// Integer inference engine — the compile step.
//
// The AD controller (Algorithm 1) leaves a trained QuantizableModel with a
// per-layer bit-width vector, but the training graph only *simulates* that
// precision in float (fake quantization, eqn 1). compile() turns the model
// into an InferencePlan that realises it:
//
//   * weights are quantized ONCE to their eqn-1 integer codes and stored
//     packed — one byte per code at 5-8 bits, bit-packed 4-/2-/1-bit cells
//     for sub-byte layers (see tensor/bitpack.h), so a 4-bit layer really
//     occupies 1/8th of its float footprint;
//   * BatchNorm (eval-mode running statistics) and the conv bias fold into
//     a per-channel affine epilogue y = a[c] * raw + b[c], fused with the
//     following ReLU and the eqn-5 channel mask;
//   * layers whose bits exceed the integer ceiling (default 8) or whose
//     quantizers are disabled (the paper's exempt first conv / final FC)
//     fall back to a float op that reproduces the training-path math.
//
// compile() works in two stages: graph::build_from_model() lowers the
// trained network into the typed dataflow IR (src/graph), the legalization
// passes fold BN, fuse ReLU epilogues, and elide/absorb quantizers, and
// lower_to_plan() walks the legalized graph emitting the op list the
// engine interprets. Any topology the IR can express (plain chains,
// residual diamonds, depthwise-separable blocks) compiles without touching
// this file again.
//
// The executed integer arithmetic is algebraically identical to the
// fake-quant float path: with x = x_min + s_x * q_x for every operand,
//
//   sum (a_min + s_a q_a)(w_min + s_w q_w)
//     = s_a s_w * dot(q_a, q_w)              <- u8 GEMM, int32 exact
//     + a_min s_w * sum(q_w)                 <- per-output, precomputed
//     + w_min s_a * sum(q_a)                 <- per-column, one pass
//     + K * a_min * w_min,                   <- constant
//
// so parity with the fake-quant path holds to float rounding at every
// bit-width, which tests/test_infer.cpp asserts per bit-width. The same
// identity applies per channel to depthwise convolutions (K = kernel^2).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "models/model.h"
#include "nn/conv2d.h"
#include "nn/depthwise.h"
#include "nn/linear.h"
#include "tensor/tensor.h"

namespace adq::infer {

enum class ExecPath {
  kInteger,  // packed codes + u8 GEMM + int32 accumulation
  kFloat,    // fake-quant float math (wide or quantization-exempt layers)
};

struct CompileOptions {
  /// Layers at <= this many bits execute on the integer path; wider layers
  /// (the 16-bit frozen ends, un-rounded 9..23-bit ablations) run in float.
  /// Clamped to 8 — codes must fit a byte.
  int max_integer_bits = 8;
};

/// One compiled conv, depthwise-conv or linear layer: pre-quantized weights
/// plus the fused requantize + BatchNorm + bias + ReLU + channel-mask
/// epilogue.
struct GemmLayerPlan {
  std::string name;
  bool is_conv = true;
  /// Depthwise spatial conv (is_conv is also true): each output channel
  /// convolves only its own input channel, so the reduction depth is
  /// kernel^2 and in_channels == out_channels.
  bool is_depthwise = false;
  ExecPath path = ExecPath::kFloat;

  // Geometry. Linear layers use in_channels/out_channels as in/out features.
  std::int64_t in_channels = 0, out_channels = 0;
  std::int64_t kernel = 1, stride = 1, pad = 0;

  int bits = 16;               // eqn-1 grid for weights and activations
  bool quantize_input = false; // false when the layer's quantizers are off

  // Integer path: packed weight codes. Convs store [out, patch] row-major
  // (GEMM A operand; depthwise [channels, kernel^2]); linears store the
  // transpose [in, out] (GEMM B operand). cell_bits is the packed cell
  // width {1,2,4,8}.
  int cell_bits = 8;
  std::vector<std::uint8_t> weight_codes;
  float w_min = 0.0f;
  float w_scale = 0.0f;                 // (w_max - w_min) / (2^bits - 1)
  std::vector<std::int32_t> w_code_sums;  // per output: sum of its codes

  // Float path: weights already snapped to the eqn-1 grid at compile time
  // (or raw when quantization is disabled). Convs [out, patch]; linears
  // [out, in] like nn::Linear.
  Tensor weight_f;

  // Epilogue: y[c] = epi_scale[c] * raw[c] + epi_shift[c] (BatchNorm eval
  // affine with the conv bias folded in), then ReLU when `relu`, then
  // channels >= active_out forced to zero (eqn-5 mask).
  std::vector<float> epi_scale, epi_shift;
  bool relu = false;
  std::int64_t active_out = 0;

  /// GEMM reduction depth: conv patch size, depthwise kernel^2, or linear
  /// fan-in.
  std::int64_t patch() const {
    if (!is_conv) return in_channels;
    return is_depthwise ? kernel * kernel : in_channels * kernel * kernel;
  }

  /// Spatial output extent of this conv for input extent `in` (identity
  /// for linears). The ONE copy of the conv output arithmetic that both
  /// the executor's shape tracking and the plan-level slot validation /
  /// traffic simulation use, so the validator can never disagree with
  /// what the kernels (whose im2col ConvGeometry contract mirrors this
  /// formula) actually write.
  std::int64_t out_extent(std::int64_t in) const {
    return is_conv ? (in + 2 * pad - kernel) / stride + 1 : in;
  }

  /// Resident weight bytes of this layer (packed codes or float words).
  std::size_t weight_bytes() const;
};

/// Non-GEMM graph steps the engine interprets around the compiled layers.
enum class OpKind {
  kGemm,         // layers[op.layer] applied to the current tensor
  kMaxPool,      // pool_kernel / pool_stride
  kGlobalAvgPool,
  kFlatten,
  kReLU,         // standalone ReLU (left behind by a removed/bypassed conv)
  kPushSkip,     // save the current tensor (entering a residual block),
                 // fake-quantized at skip_bits when > 0 (Fig 2: skip
                 // activations use the destination conv2's precision)
  kSkipGemm,     // layers[op.layer] applied to the saved skip (downsample)
  kAddSkipRelu,  // current += saved skip; eqn-5 mask; ReLU
  kQuantize,     // current = fake_quantize(current, skip_bits) — a
                 // standalone quantizer no pass could fuse (format v2+)
  kQuantizeSkip, // saved skip = fake_quantize(saved skip, skip_bits) — the
                 // Fig-2 skip quantizer deferred to just before the add so
                 // the arena executor can snap the fork slot in place once
                 // the main branch is done reading it (format v3+)
};

struct OpPlan {
  OpKind kind = OpKind::kGemm;
  int layer = -1;                  // kGemm / kSkipGemm
  int skip_bits = 0;               // kPushSkip / kQuantize[Skip] (0 = none)
  std::int64_t pool_kernel = 2, pool_stride = 2;  // kMaxPool
  std::int64_t mask_channels = -1; // kAddSkipRelu (-1 = no mask)
  /// Arena byte offset (per sample, 64-aligned; scaled by the batch size at
  /// run time) where this op writes its output. -1 means the op has no slot
  /// of its own: it executes in place over its input's slot (ReLU/quantize/
  /// residual add), is a pure view (flatten), or the plan predates memory
  /// planning (format v1/v2 — the engine then falls back to heap tensors).
  std::int64_t out_offset = -1;
  /// Activation-storage compression (format v4): when > 0, the op's output
  /// lands in its slot as packed `out_act_bits`-bit quantize codes
  /// (cell width in {1, 2, 4, 8}) instead of float words, and out_offset
  /// must name a real slot (packed ops never run in place). 0 = plain
  /// float storage (every pre-v4 plan).
  int out_act_bits = 0;
  /// Grid of the stored codes: the common bit-width of every consuming
  /// integer GEMM (the consumer then skips its own quantize_act and reads
  /// the codes directly). 0 with out_act_bits > 0 marks a kQuantizeSkip
  /// that codes on its OWN grid (skip_bits); the add dequantizes it.
  int out_act_qbits = 0;
};

/// Batch-agnostic shape of the value a plan's input op consumes — the
/// anchor the memory plan was computed against. rank 0 on v1/v2 plans
/// (no memory plan).
struct PlannedInput {
  int rank = 0;  // 3 = [C, H, W] feature maps, 1 = [C] features
  std::int64_t channels = 0, height = 0, width = 0;
};

/// Per-op activation traffic of one forward pass — what the paper's
/// E_Mem|k term charges. Integer-path GEMMs read their input as k-bit
/// codes packed one per byte (in_bytes = in_elems); float-path ops move
/// 32-bit words. Outputs are always float words.
struct OpActivation {
  std::string name;   // layer name, or the op kind for non-GEMM steps
  int bits = 32;      // grid the input activations are read at
  bool integer_path = false;
  std::int64_t in_elems = 0, out_elems = 0;
  std::int64_t in_bytes = 0, out_bytes = 0;
};

struct ActivationReport {
  std::int64_t arena_bytes = 0;   // per-sample planned arena footprint
  std::int64_t peak_bytes = 0;    // arena_bytes scaled by the batch
  std::int64_t total_bytes = 0;   // summed per-op traffic (batch-scaled)
  std::vector<OpActivation> ops;  // batch-scaled, one entry per op
};

struct InferencePlan {
  std::string model_name;
  std::vector<GemmLayerPlan> layers;
  std::vector<OpPlan> ops;

  /// Per-sample activation arena footprint in bytes (the static memory
  /// planner's exact peak). 0 when the plan carries no memory plan
  /// (v1/v2 files); the engine then executes on heap tensors.
  std::int64_t arena_bytes = 0;

  /// The float-storage baseline footprint: what arena_bytes would have
  /// been with activation compression off. Equals arena_bytes when the
  /// plan has no packed slots (and on every pre-v4 file).
  std::int64_t arena_bytes_u8 = 0;

  /// Input value shape the memory plan (and traffic report) assume.
  PlannedInput planned_input;

  /// Total resident weight bytes across all compiled layers.
  std::size_t weight_bytes() const;

  /// Number of layers on the integer path.
  int integer_layer_count() const;

  /// Exact peak activation bytes of a batch-`batch` forward on the arena
  /// executor (arena_bytes scales linearly with the batch).
  std::int64_t peak_activation_bytes(std::int64_t batch) const {
    return arena_bytes * batch;
  }

  /// Per-sample output element count of every op, in op order, simulated
  /// from planned_input — the shape walk the executor performs. Throws
  /// std::logic_error when the plan has no planned input (v1/v2).
  std::vector<std::int64_t> op_out_elems() const;

  /// Per-layer activation traffic + peak footprint at the given batch
  /// size. Throws std::logic_error when the plan has no planned input.
  ActivationReport activation_report(std::int64_t batch = 1) const;

  /// Histogram of activation storage across slot-owning ops, indexed by
  /// cell width: counts[0] = float slots, counts[k] = slots packed at
  /// k-bit cells (k in {1, 2, 4, 8}). Flatten/in-place ops (no slot of
  /// their own) do not count.
  std::array<int, 9> act_cell_histogram() const;
};

/// Compiles a single conv (+ optional BatchNorm fold + fused ReLU). Exposed
/// for layer-level parity tests; lowering uses it for every conv node.
GemmLayerPlan plan_conv(nn::Conv2d& conv, nn::BatchNorm2d* bn,
                        bool fuse_relu, const CompileOptions& opts = {});

/// Compiles a single depthwise conv (+ optional BatchNorm fold + fused
/// ReLU).
GemmLayerPlan plan_depthwise(nn::DepthwiseConv2d& conv, nn::BatchNorm2d* bn,
                             bool fuse_relu, const CompileOptions& opts = {});

/// Compiles a single linear layer (+ fused ReLU).
GemmLayerPlan plan_linear(nn::Linear& linear, bool fuse_relu,
                          const CompileOptions& opts = {});

/// Emits the plan for an already-legalized graph (see graph/passes.h).
/// Throws std::invalid_argument when the graph contains structures the
/// engine's stack machine cannot execute (an unfused BatchNorm, a residual
/// add without a fused ReLU, a skip branch deeper than quantize + one
/// conv).
InferencePlan lower_to_plan(const graph::Graph& g,
                            const CompileOptions& opts = {});

/// build_from_model + legalize + lower_to_plan in one call: compiles the
/// trained model (plain chains, VGG pool/flatten bodies, ResNet residual
/// blocks, depthwise-separable stacks) into the full plan.
InferencePlan compile(models::QuantizableModel& model,
                      const CompileOptions& opts = {});

}  // namespace adq::infer
