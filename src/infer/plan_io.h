// Compiled-plan serialization — the .adqplan format.
//
// save_plan() writes an InferencePlan to a versioned binary file:
// pre-quantized packed eqn-1 weight cells, the per-layer bit policy,
// folded BatchNorm epilogues, eqn-5 channel masks, and the op list —
// everything IntInferenceEngine needs. load_plan() restores it, so a
// server process cold-starts from the file without retraining, rebuilding
// the model graph, or recompiling the plan.
//
// Layout (little-endian, as every target this repo builds on):
//
//   offset  size  field
//   0       8     magic "ADQPLAN\0"
//   8       4     u32 format version (kPlanFormatVersion)
//   12      4     u32 reserved flags (0)
//   16      N     payload: model name, [v3+: arena bytes + [v4+: float
//                 baseline arena bytes] + planned input shape], layers[],
//                 ops[] (see plan_io.cpp)
//   16+N    8     u64 FNV-1a checksum of the payload
//
// Loading verifies magic, version and checksum before parsing and throws
// std::runtime_error with a precise reason (bad magic / unsupported
// version / truncation / checksum mismatch) otherwise. Serialization is
// deterministic: saving a plan, loading it, and saving again produces
// byte-identical files, which tests/test_plan_io.cpp asserts.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "infer/plan.h"

namespace adq::infer {

/// Current .adqplan format version. Bump when the payload layout changes;
/// load_plan rejects files newer than this and still reads every older
/// version. History:
///   1 — initial format (PR 3)
///   2 — per-layer `is_depthwise` flag; OpKind::kQuantize standalone
///       quantize ops (graph-IR compiler)
///   3 — static activation-memory plan: per-plan arena footprint + planned
///       input shape, per-op arena slot offsets, OpKind::kQuantizeSkip
///       (the deferred Fig-2 skip quantizer the arena executor runs in
///       place)
///   4 — compressed activation slots: per-op packed storage cell width +
///       code grid (out_act_bits / out_act_qbits) and the per-plan
///       float-storage baseline footprint (arena_bytes_u8)
constexpr std::uint32_t kPlanFormatVersion = 4;

/// Serializes the plan to a stream (binary). `version` selects the format
/// emitted (for consumers still reading an older version); it throws
/// std::runtime_error when the plan contains OPS the requested version
/// cannot express (depthwise layers / standalone quantize ops at v1,
/// deferred skip-quantize ops at v2 — every freshly compiled residual
/// plan has those). The v3 memory-plan annotations, by contrast, are
/// derivable metadata: writing v1/v2 silently drops them and the loaded
/// plan executes on the engine's heap path with identical results.
/// Packed activation slots (v4) are NOT droppable: a version <= 3 file
/// would keep slot offsets sized for packed codes while readers execute
/// float stores, so save_plan refuses to write a packed plan at <= 3 —
/// recompile with ADQ_ACT_BITS=off to produce a v3-compatible plan.
void save_plan(const InferencePlan& plan, std::ostream& out,
               std::uint32_t version = kPlanFormatVersion);

/// Serializes the plan to a file. Throws std::runtime_error when the file
/// cannot be written.
void save_plan(const InferencePlan& plan, const std::string& path);

/// Parses a plan from a stream. Throws std::runtime_error on malformed
/// input (bad magic, unsupported version, truncation, checksum mismatch).
InferencePlan load_plan(std::istream& in);

/// Parses a plan from a file. Throws std::runtime_error when the file
/// cannot be read or is malformed.
InferencePlan load_plan(const std::string& path);

/// Identity of a compiled plan: FNV-1a over its serialized bytes (the
/// current-version save_plan output, header and checksum included).
/// Serialization is deterministic, so equal fingerprints mean byte-equal
/// plan files — the identity the serving registry's hot-swap validation
/// names in its errors and stamps on every InferenceResult.
std::uint64_t plan_fingerprint(const InferencePlan& plan);

}  // namespace adq::infer
