// Integer inference engine — the execution step.
//
// Interprets an InferencePlan (see plan.h): integer layers quantize their
// input activations to eqn-1 codes with the per-batch dynamic range the
// training-time FakeQuantizer would have observed, lower the WHOLE batch
// with a strided u8 im2col into one [patch, batch * positions] slab, run a
// single blocked u8 x u8 -> i32 GEMM over it, and apply the fused
// requantize + BatchNorm + bias + ReLU + channel-mask epilogue in one pass
// over the int32 accumulators. Float-path layers reproduce the training
// forward exactly (fake-quantized operands, float GEMM, same epilogue).
//
// Execution is slot-based: when the plan carries a static memory plan
// (arena_bytes > 0, format v3), every op writes its output into a
// preallocated per-thread arena at the compile-time offset the planner
// assigned — in-place where the planner proved it safe (standalone
// ReLU/quantize, the deferred Fig-2 skip quantizer, the residual add) — so
// a steady-state forward() performs ZERO heap allocations and its peak
// activation footprint is exactly plan.arena_bytes * batch. Plans without
// a memory plan (v1/v2 files), inputs whose shape differs from the planned
// one, and runs with ADQ_ARENA=0 fall back to the heap path (a fresh
// tensor per op). Both paths share the same kernels and are bit-identical.
//
// Sub-byte layers (<= 4 weight bits) execute on packed weight cells end to
// end: construction repacks the plan's flat-packed codes into the
// row-aligned layout the backend's igemm_u8w4 / igemm_u8w2 kernels consume
// (nibbles and crumbs expand in-register inside the micro-kernel, never
// into a byte-per-code buffer), so a 4-bit conv's resident execution view
// is ~1/2 the bytes of its int8 form and the GEMM reads a quarter of the
// weight traffic. ADQ_SUBBYTE=0 (read once at engine construction)
// restores the previous unpack-to-u8 views; both paths produce
// bit-identical logits because the packed kernels agree bit for bit with
// the unpacked GEMM (enforced per backend by the conformance harness).
//
// Thread-safety: forward()/predict() are const and safe to call
// concurrently from any number of threads on one shared engine — the plan
// is immutable after construction, weight execution views are built once
// into an engine-owned cache (so no caller ever clones packed weights), and
// all per-call state (the activation arena, activation codes, im2col slabs,
// GEMM accumulators) lives in thread_local workspaces that grow on demand
// and are reused across calls. This is what lets the dynamic-batching
// server (src/serve) share one compiled plan across its whole worker pool
// with a bounded, known activation footprint per worker.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "infer/plan.h"
#include "tensor/tensor.h"

namespace adq::infer {

/// Construction-time execution view of one integer layer's weights. When
/// `packed` the buffer holds byte-aligned packed rows (cell-bit codes,
/// zeroed tail bits) for the sub-byte igemm kernels: convs [out+1] rows of
/// `row_bytes` whose last row is all-ones codes, linears [out] rows packing
/// the fan-in. Otherwise `buf` is the legacy byte-per-code view (empty when
/// the plan's own codes serve in place).
struct ExecWeights {
  std::vector<std::uint8_t> buf;
  bool packed = false;
  int cell = 8;                 // packed cell width, >= 2
  std::int64_t row_bytes = 0;   // packed row stride
};

class IntInferenceEngine {
 public:
  /// Takes ownership of the plan and builds every integer layer's weight
  /// execution view once: row-aligned packed cells for <= 4-bit layers
  /// (unless ADQ_SUBBYTE=0), byte-per-code buffers otherwise — the hot
  /// path never touches bitpack.
  /// For memory-planned plans, replays the op walk over the planned slots
  /// once and throws std::runtime_error on an inconsistent layout — a slot
  /// outside the arena, an output overlapping an operand the op still
  /// reads, or a slot overwritten while a later op still consumes it (a
  /// corrupt or hand-edited file; see validate_memory_plan).
  explicit IntInferenceEngine(InferencePlan plan);

  const InferencePlan& plan() const { return plan_; }

  /// Runs the whole plan; returns the logits [batch, classes]. Const and
  /// safe to call concurrently (see file comment).
  Tensor forward(const Tensor& x) const;

  /// As forward(), but writes the logits into `out`, reusing its storage
  /// when the shape already matches — the steady-state serving loop then
  /// allocates nothing at all (asserted by test).
  void forward_into(const Tensor& x, Tensor& out) const;

  /// Top-1 class index per sample.
  std::vector<std::int64_t> predict(const Tensor& x) const;

  /// Per-sample activation arena footprint (0 = no memory plan).
  std::int64_t arena_bytes_per_sample() const { return plan_.arena_bytes; }

  /// What the same plan would occupy with every activation slot stored as
  /// float words — the baseline the packed arena footprint is compared
  /// against (equals arena_bytes_per_sample when nothing packs).
  std::int64_t arena_bytes_u8_per_sample() const {
    return plan_.arena_bytes_u8;
  }

  /// Slot-owning op count per activation storage cell width; index 0 =
  /// float slots, indices 1/2/4/8 = packed cells.
  std::array<int, 9> act_cell_histogram() const {
    return plan_.act_cell_histogram();
  }

  /// Exact peak activation bytes of a batch-`batch` forward on the arena
  /// path (offsets and sizes scale linearly with the batch).
  std::int64_t peak_activation_bytes(std::int64_t batch) const {
    return plan_.peak_activation_bytes(batch);
  }

  /// True when forward(x) will execute out of the planned arena: the plan
  /// carries a memory plan, x matches the planned input shape, and
  /// ADQ_ARENA is not set to 0.
  bool uses_arena(const Tensor& x) const;

  /// True when this engine executes <= 4-bit layers on packed weight cells
  /// (ADQ_SUBBYTE, latched at construction).
  bool subbyte_enabled() const { return subbyte_; }

  /// Resident bytes of the weight execution views the GEMMs actually read
  /// (owned caches plus plan codes served in place). With sub-byte packing
  /// on, <= 4-bit layers keep their packed cells and this shrinks by up to
  /// 4x versus the unpacked views; reported so the memory tables can charge
  /// the steady-state footprint, not just the plan file size.
  std::int64_t exec_weight_bytes() const;

 private:
  Tensor forward_heap(const Tensor& x) const;
  void forward_arena(const Tensor& x, Tensor& out) const;

  InferencePlan plan_;
  bool subbyte_ = true;
  // Per-layer weight execution view, built once at construction: packed
  // rows for sub-byte layers, byte-per-code buffers (convs with an extra
  // all-ones row — the GEMM then emits the zero-point column sums as its
  // final accumulator row) otherwise. buf empty where the plan's codes are
  // used in place.
  std::vector<ExecWeights> exec_weights_;
};

/// Executes a single compiled layer on `x` (dispatching on path and layer
/// kind). Used by the engine per op and by the layer-level parity tests.
Tensor run_gemm_layer(const GemmLayerPlan& layer, const Tensor& x);

}  // namespace adq::infer
