// Integer inference engine — the execution step.
//
// Interprets an InferencePlan (see plan.h): integer layers quantize their
// input activations to eqn-1 codes with the per-batch dynamic range the
// training-time FakeQuantizer would have observed, lower the WHOLE batch
// with a strided u8 im2col into one [patch, batch * positions] slab, run a
// single blocked u8 x u8 -> i32 GEMM over it, and apply the fused
// requantize + BatchNorm + bias + ReLU + channel-mask epilogue in one pass
// over the int32 accumulators. Float-path layers reproduce the training
// forward exactly (fake-quantized operands, float GEMM, same epilogue).
//
// Thread-safety: forward()/predict() are const and safe to call
// concurrently from any number of threads on one shared engine — the plan
// is immutable after construction, sub-byte weight codes are unpacked once
// into an engine-owned cache (so no caller ever clones packed weights), and
// all per-call scratch (activation codes, im2col slabs, GEMM accumulators)
// lives in thread_local workspaces that grow on demand and are reused
// across calls, keeping the serving hot loop allocation-free. This is what
// lets the dynamic-batching server (src/serve) share one compiled plan
// across its whole worker pool.
#pragma once

#include <cstdint>
#include <vector>

#include "infer/plan.h"
#include "tensor/tensor.h"

namespace adq::infer {

class IntInferenceEngine {
 public:
  /// Takes ownership of the plan and unpacks every sub-byte weight cell
  /// into a byte-per-code cache so the hot path never touches bitpack.
  explicit IntInferenceEngine(InferencePlan plan);

  const InferencePlan& plan() const { return plan_; }

  /// Runs the whole plan; returns the logits [batch, classes]. Const and
  /// safe to call concurrently (see file comment).
  Tensor forward(const Tensor& x) const;

  /// Top-1 class index per sample.
  std::vector<std::int64_t> predict(const Tensor& x) const;

 private:
  InferencePlan plan_;
  // Per-layer execution view of the integer weights, built once at
  // construction: convs store [out+1, patch] byte-per-code rows whose last
  // row is all-ones (the GEMM then emits the zero-point column sums as its
  // final accumulator row); sub-byte linears store the unpacked [in, out]
  // codes. Empty where the plan's packed codes are used in place.
  std::vector<std::vector<std::uint8_t>> exec_codes_;
};

/// Executes a single compiled layer on `x` (dispatching on path and layer
/// kind). Used by the engine per op and by the layer-level parity tests.
Tensor run_gemm_layer(const GemmLayerPlan& layer, const Tensor& x);

}  // namespace adq::infer
