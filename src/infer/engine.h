// Integer inference engine — the execution step.
//
// Interprets an InferencePlan (see plan.h): integer layers quantize their
// input activations to eqn-1 codes with the per-batch dynamic range the
// training-time FakeQuantizer would have observed, lower convolutions with
// a u8 im2col, run the blocked u8 x u8 -> i32 GEMM, and apply the fused
// requantize + BatchNorm + bias + ReLU + channel-mask epilogue in one pass
// over the int32 accumulators. Float-path layers reproduce the training
// forward exactly (fake-quantized operands, float GEMM, same epilogue).
// Batch parallelism mirrors nn::Conv2d: parallel_for over images, with the
// GEMM's own parallelism collapsing to serial inside a worker.
//
// The engine is stateless across calls and const — compile once, serve any
// batch size and resolution.
#pragma once

#include <cstdint>
#include <vector>

#include "infer/plan.h"
#include "tensor/tensor.h"

namespace adq::infer {

class IntInferenceEngine {
 public:
  explicit IntInferenceEngine(InferencePlan plan) : plan_(std::move(plan)) {}

  const InferencePlan& plan() const { return plan_; }

  /// Runs the whole plan; returns the logits [batch, classes].
  Tensor forward(const Tensor& x) const;

  /// Top-1 class index per sample.
  std::vector<std::int64_t> predict(const Tensor& x) const;

 private:
  InferencePlan plan_;
};

/// Executes a single compiled layer on `x` (dispatching on path and layer
/// kind). Used by the engine per op and by the layer-level parity tests.
Tensor run_gemm_layer(const GemmLayerPlan& layer, const Tensor& x);

}  // namespace adq::infer
