// Integer inference engine — the execution step.
//
// Interprets an InferencePlan (see plan.h): integer layers quantize their
// input activations to eqn-1 codes with the per-batch dynamic range the
// training-time FakeQuantizer would have observed, lower the WHOLE batch
// with a strided u8 im2col into one [patch, batch * positions] slab, run a
// single blocked u8 x u8 -> i32 GEMM over it, and apply the fused
// requantize + BatchNorm + bias + ReLU + channel-mask epilogue in one pass
// over the int32 accumulators. Float-path layers reproduce the training
// forward exactly (fake-quantized operands, float GEMM, same epilogue).
//
// Execution is slot-based: when the plan carries a static memory plan
// (arena_bytes > 0, format v3), every op writes its output into a
// preallocated per-thread arena at the compile-time offset the planner
// assigned — in-place where the planner proved it safe (standalone
// ReLU/quantize, the deferred Fig-2 skip quantizer, the residual add) — so
// a steady-state forward() performs ZERO heap allocations and its peak
// activation footprint is exactly plan.arena_bytes * batch. Plans without
// a memory plan (v1/v2 files), inputs whose shape differs from the planned
// one, and runs with ADQ_ARENA=0 fall back to the heap path (a fresh
// tensor per op). Both paths share the same kernels and are bit-identical.
//
// Thread-safety: forward()/predict() are const and safe to call
// concurrently from any number of threads on one shared engine — the plan
// is immutable after construction, sub-byte weight codes are unpacked once
// into an engine-owned cache (so no caller ever clones packed weights), and
// all per-call state (the activation arena, activation codes, im2col slabs,
// GEMM accumulators) lives in thread_local workspaces that grow on demand
// and are reused across calls. This is what lets the dynamic-batching
// server (src/serve) share one compiled plan across its whole worker pool
// with a bounded, known activation footprint per worker.
#pragma once

#include <cstdint>
#include <vector>

#include "infer/plan.h"
#include "tensor/tensor.h"

namespace adq::infer {

class IntInferenceEngine {
 public:
  /// Takes ownership of the plan and unpacks every sub-byte weight cell
  /// into a byte-per-code cache so the hot path never touches bitpack.
  /// For memory-planned plans, replays the op walk over the planned slots
  /// once and throws std::runtime_error on an inconsistent layout — a slot
  /// outside the arena, an output overlapping an operand the op still
  /// reads, or a slot overwritten while a later op still consumes it (a
  /// corrupt or hand-edited file; see validate_memory_plan).
  explicit IntInferenceEngine(InferencePlan plan);

  const InferencePlan& plan() const { return plan_; }

  /// Runs the whole plan; returns the logits [batch, classes]. Const and
  /// safe to call concurrently (see file comment).
  Tensor forward(const Tensor& x) const;

  /// As forward(), but writes the logits into `out`, reusing its storage
  /// when the shape already matches — the steady-state serving loop then
  /// allocates nothing at all (asserted by test).
  void forward_into(const Tensor& x, Tensor& out) const;

  /// Top-1 class index per sample.
  std::vector<std::int64_t> predict(const Tensor& x) const;

  /// Per-sample activation arena footprint (0 = no memory plan).
  std::int64_t arena_bytes_per_sample() const { return plan_.arena_bytes; }

  /// Exact peak activation bytes of a batch-`batch` forward on the arena
  /// path (offsets and sizes scale linearly with the batch).
  std::int64_t peak_activation_bytes(std::int64_t batch) const {
    return plan_.peak_activation_bytes(batch);
  }

  /// True when forward(x) will execute out of the planned arena: the plan
  /// carries a memory plan, x matches the planned input shape, and
  /// ADQ_ARENA is not set to 0.
  bool uses_arena(const Tensor& x) const;

 private:
  Tensor forward_heap(const Tensor& x) const;
  void forward_arena(const Tensor& x, Tensor& out) const;

  InferencePlan plan_;
  // Per-layer execution view of the integer weights, built once at
  // construction: convs store [out+1, patch] byte-per-code rows whose last
  // row is all-ones (the GEMM then emits the zero-point column sums as its
  // final accumulator row); sub-byte linears store the unpacked [in, out]
  // codes. Empty where the plan's packed codes are used in place.
  std::vector<std::vector<std::uint8_t>> exec_codes_;
};

/// Executes a single compiled layer on `x` (dispatching on path and layer
/// kind). Used by the engine per op and by the layer-level parity tests.
Tensor run_gemm_layer(const GemmLayerPlan& layer, const Tensor& x);

}  // namespace adq::infer
