#include "infer/plan_io.h"

#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "tensor/bitpack.h"

namespace adq::infer {
namespace {

constexpr char kMagic[8] = {'A', 'D', 'Q', 'P', 'L', 'A', 'N', '\0'};

// Sanity ceiling for element counts parsed out of a file. Far above any
// real model, far below anything that can overflow the int64 arithmetic
// the engine does with these numbers.
constexpr std::int64_t kMaxElems = std::int64_t{1} << 40;

std::uint64_t fnv1a(const char* p, std::size_t n) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(p[i]);
    h *= 1099511628211ull;
  }
  return h;
}

[[noreturn]] void fail(const std::string& why) {
  throw std::runtime_error("adqplan: " + why);
}

// Overflow-guarded product for dimensions read from the file.
std::int64_t checked_mul(std::int64_t a, std::int64_t b) {
  if (a < 0 || b < 0 || (a != 0 && b > kMaxElems / a)) {
    fail("element count out of range");
  }
  return a * b;
}

// ---------------------------------------------------------------------------
// Payload writer: fixed-width little-endian scalars appended to a string.
// The in-memory representation on every supported target already is
// little-endian, so scalars are memcpy'd.
// ---------------------------------------------------------------------------

class Writer {
 public:
  template <typename T>
  void scalar(T v) {
    char buf[sizeof(T)];
    std::memcpy(buf, &v, sizeof(T));
    out_.append(buf, sizeof(T));
  }

  void str(const std::string& s) {
    scalar<std::uint32_t>(static_cast<std::uint32_t>(s.size()));
    out_.append(s);
  }

  // Empty-array guards mirror the Reader's: data() of an empty vector is
  // null, and append/memcpy from null is UB even at length 0.
  void bytes(const std::uint8_t* p, std::size_t n) {
    scalar<std::uint64_t>(n);
    if (n != 0) out_.append(reinterpret_cast<const char*>(p), n);
  }

  void i32s(const std::vector<std::int32_t>& v) {
    scalar<std::uint64_t>(v.size());
    if (!v.empty()) {
      out_.append(reinterpret_cast<const char*>(v.data()),
                  v.size() * sizeof(std::int32_t));
    }
  }

  void f32s(const std::vector<float>& v) {
    scalar<std::uint64_t>(v.size());
    if (!v.empty()) {
      out_.append(reinterpret_cast<const char*>(v.data()),
                  v.size() * sizeof(float));
    }
  }

  void tensor(const Tensor& t) {
    scalar<std::uint32_t>(static_cast<std::uint32_t>(t.shape().rank()));
    for (int a = 0; a < t.shape().rank(); ++a) {
      scalar<std::int64_t>(t.shape().dim(a));
    }
    scalar<std::uint64_t>(static_cast<std::uint64_t>(t.numel()));
    out_.append(reinterpret_cast<const char*>(t.data()),
                static_cast<std::size_t>(t.numel()) * sizeof(float));
  }

  const std::string& payload() const { return out_; }

 private:
  std::string out_;
};

// ---------------------------------------------------------------------------
// Payload reader: bounds-checked cursor over the verified payload.
// ---------------------------------------------------------------------------

class Reader {
 public:
  Reader(const char* p, std::size_t n) : p_(p), n_(n) {}

  template <typename T>
  T scalar() {
    need(sizeof(T), "scalar");
    T v;
    std::memcpy(&v, p_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  std::string str() {
    const auto n = scalar<std::uint32_t>();
    need(n, "string");
    std::string s(p_ + pos_, n);
    pos_ += n;
    return s;
  }

  // The n != 0 guards: float-path layers store empty code/sum arrays, and
  // an empty vector's data() is null — memcpy with a null source is UB
  // even at length 0 (UBSan flags it in the sanitizer CI jobs).
  std::vector<std::uint8_t> bytes() {
    const auto n = scalar<std::uint64_t>();
    need(n, "byte array");
    std::vector<std::uint8_t> v(n);
    if (n != 0) std::memcpy(v.data(), p_ + pos_, n);
    pos_ += n;
    return v;
  }

  std::vector<std::int32_t> i32s() {
    const auto n = count_of(sizeof(std::int32_t), "int32 array");
    std::vector<std::int32_t> v(n);
    if (n != 0) std::memcpy(v.data(), p_ + pos_, n * sizeof(std::int32_t));
    pos_ += n * sizeof(std::int32_t);
    return v;
  }

  std::vector<float> f32s() {
    const auto n = count_of(sizeof(float), "float array");
    std::vector<float> v(n);
    if (n != 0) std::memcpy(v.data(), p_ + pos_, n * sizeof(float));
    pos_ += n * sizeof(float);
    return v;
  }

  Tensor tensor() {
    const auto rank = scalar<std::uint32_t>();
    if (rank > static_cast<std::uint32_t>(Shape::kMaxRank)) {
      fail("tensor rank " + std::to_string(rank) + " exceeds maximum");
    }
    std::int64_t dims[Shape::kMaxRank] = {};
    std::int64_t numel = 1;
    for (std::uint32_t a = 0; a < rank; ++a) {
      dims[a] = scalar<std::int64_t>();
      if (dims[a] < 0) fail("negative tensor dimension");
      numel = checked_mul(numel, dims[a]);
    }
    const auto stored = scalar<std::uint64_t>();
    if (rank == 0 && stored == 0) return Tensor();  // default (empty) tensor
    if (stored != static_cast<std::uint64_t>(numel)) {
      fail("tensor element count disagrees with its shape");
    }
    if (stored > (n_ - pos_) / sizeof(float)) {
      fail("truncated payload while reading tensor data");
    }
    Shape shape;
    switch (rank) {
      case 0: break;
      case 1: shape = Shape{dims[0]}; break;
      case 2: shape = Shape{dims[0], dims[1]}; break;
      case 3: shape = Shape{dims[0], dims[1], dims[2]}; break;
      case 4: shape = Shape{dims[0], dims[1], dims[2], dims[3]}; break;
      case 5: shape = Shape{dims[0], dims[1], dims[2], dims[3], dims[4]}; break;
      default:
        shape = Shape{dims[0], dims[1], dims[2], dims[3], dims[4], dims[5]};
        break;
    }
    std::vector<float> data(stored);
    std::memcpy(data.data(), p_ + pos_, stored * sizeof(float));
    pos_ += stored * sizeof(float);
    return Tensor(shape, std::move(data));
  }

  bool exhausted() const { return pos_ == n_; }

 private:
  // Overflow-safe: n is compared against the REMAINING bytes, never added
  // to the cursor first.
  void need(std::uint64_t n, const char* what) {
    if (n > n_ - pos_) {
      fail(std::string("truncated payload while reading ") + what);
    }
  }

  // Reads an element count and verifies count * elem_size fits in the
  // remaining payload without the multiplication being able to wrap.
  std::uint64_t count_of(std::size_t elem_size, const char* what) {
    const auto n = scalar<std::uint64_t>();
    if (n > (n_ - pos_) / elem_size) {
      fail(std::string("truncated payload while reading ") + what);
    }
    return n;
  }

  const char* p_;
  std::size_t n_;
  std::size_t pos_ = 0;
};

void write_layer(Writer& w, const GemmLayerPlan& l, std::uint32_t version) {
  w.str(l.name);
  w.scalar<std::uint8_t>(l.is_conv ? 1 : 0);
  if (version >= 2) w.scalar<std::uint8_t>(l.is_depthwise ? 1 : 0);
  w.scalar<std::uint8_t>(l.path == ExecPath::kInteger ? 1 : 0);
  w.scalar<std::int64_t>(l.in_channels);
  w.scalar<std::int64_t>(l.out_channels);
  w.scalar<std::int64_t>(l.kernel);
  w.scalar<std::int64_t>(l.stride);
  w.scalar<std::int64_t>(l.pad);
  w.scalar<std::int32_t>(l.bits);
  w.scalar<std::uint8_t>(l.quantize_input ? 1 : 0);
  w.scalar<std::int32_t>(l.cell_bits);
  w.bytes(l.weight_codes.data(), l.weight_codes.size());
  w.scalar<float>(l.w_min);
  w.scalar<float>(l.w_scale);
  w.i32s(l.w_code_sums);
  w.tensor(l.weight_f);
  w.f32s(l.epi_scale);
  w.f32s(l.epi_shift);
  w.scalar<std::uint8_t>(l.relu ? 1 : 0);
  w.scalar<std::int64_t>(l.active_out);
}

GemmLayerPlan read_layer(Reader& r, std::uint32_t version) {
  GemmLayerPlan l;
  l.name = r.str();
  l.is_conv = r.scalar<std::uint8_t>() != 0;
  // v1 payloads predate depthwise layers and carry no flag byte.
  l.is_depthwise = version >= 2 ? r.scalar<std::uint8_t>() != 0 : false;
  const auto path = r.scalar<std::uint8_t>();
  if (path > 1) fail("invalid execution path tag");
  l.path = path == 1 ? ExecPath::kInteger : ExecPath::kFloat;
  l.in_channels = r.scalar<std::int64_t>();
  l.out_channels = r.scalar<std::int64_t>();
  l.kernel = r.scalar<std::int64_t>();
  l.stride = r.scalar<std::int64_t>();
  l.pad = r.scalar<std::int64_t>();
  l.bits = r.scalar<std::int32_t>();
  l.quantize_input = r.scalar<std::uint8_t>() != 0;
  l.cell_bits = r.scalar<std::int32_t>();
  if (l.cell_bits != 1 && l.cell_bits != 2 && l.cell_bits != 4 &&
      l.cell_bits != 8) {
    fail("invalid packed cell width " + std::to_string(l.cell_bits));
  }
  l.weight_codes = r.bytes();
  l.w_min = r.scalar<float>();
  l.w_scale = r.scalar<float>();
  l.w_code_sums = r.i32s();
  l.weight_f = r.tensor();
  l.epi_scale = r.f32s();
  l.epi_shift = r.f32s();
  l.relu = r.scalar<std::uint8_t>() != 0;
  l.active_out = r.scalar<std::int64_t>();

  // Cross-field validation: a checksum only proves the file arrived as
  // written, not that the writer was honest. Everything the engine sizes
  // buffers from must be internally consistent before it executes.
  if (l.in_channels < 1 || l.out_channels < 1 || l.kernel < 1 ||
      l.stride < 1 || l.pad < 0) {
    fail("invalid geometry in layer '" + l.name + "'");
  }
  if (l.bits < 1 || l.bits > 32) {
    fail("invalid bit-width in layer '" + l.name + "'");
  }
  // compile() clamps the integer path to <= 8 bits (codes must fit a
  // byte); a file claiming otherwise would silently wrap activation codes.
  if (l.path == ExecPath::kInteger && l.bits > 8) {
    fail("integer-path layer '" + l.name + "' claims " +
         std::to_string(l.bits) + " bits (max 8)");
  }
  if (l.is_depthwise && (!l.is_conv || l.in_channels != l.out_channels)) {
    fail("invalid depthwise geometry in layer '" + l.name + "'");
  }
  const std::int64_t inner =
      !l.is_conv ? l.in_channels
                 : (l.is_depthwise
                        ? checked_mul(l.kernel, l.kernel)
                        : checked_mul(l.in_channels,
                                      checked_mul(l.kernel, l.kernel)));
  const std::int64_t count = checked_mul(l.out_channels, inner);
  if (l.path == ExecPath::kInteger) {
    if (static_cast<std::int64_t>(l.weight_codes.size()) !=
        packed_bytes(count, l.cell_bits)) {
      fail("weight codes size disagrees with geometry in layer '" + l.name +
           "'");
    }
    if (static_cast<std::int64_t>(l.w_code_sums.size()) != l.out_channels) {
      fail("weight code sums size disagrees with geometry in layer '" +
           l.name + "'");
    }
  } else if (l.weight_f.numel() != count) {
    fail("float weights disagree with geometry in layer '" + l.name + "'");
  }
  if (static_cast<std::int64_t>(l.epi_scale.size()) != l.out_channels ||
      static_cast<std::int64_t>(l.epi_shift.size()) != l.out_channels) {
    fail("epilogue size disagrees with geometry in layer '" + l.name + "'");
  }
  if (l.active_out < 0 || l.active_out > l.out_channels) {
    fail("invalid active channel count in layer '" + l.name + "'");
  }
  return l;
}

void write_op(Writer& w, const OpPlan& op, std::uint32_t version) {
  w.scalar<std::uint8_t>(static_cast<std::uint8_t>(op.kind));
  w.scalar<std::int32_t>(op.layer);
  w.scalar<std::int32_t>(op.skip_bits);
  w.scalar<std::int64_t>(op.pool_kernel);
  w.scalar<std::int64_t>(op.pool_stride);
  w.scalar<std::int64_t>(op.mask_channels);
  if (version >= 3) w.scalar<std::int64_t>(op.out_offset);
  if (version >= 4) {
    w.scalar<std::int32_t>(op.out_act_bits);
    w.scalar<std::int32_t>(op.out_act_qbits);
  }
}

OpPlan read_op(Reader& r, std::size_t layer_count, std::uint32_t version,
               std::int64_t arena_bytes) {
  OpPlan op;
  const auto kind = r.scalar<std::uint8_t>();
  const OpKind max_kind = version >= 3   ? OpKind::kQuantizeSkip
                          : version >= 2 ? OpKind::kQuantize
                                         : OpKind::kAddSkipRelu;
  if (kind > static_cast<std::uint8_t>(max_kind)) {
    fail("invalid op kind tag " + std::to_string(kind) +
         " for format version " + std::to_string(version));
  }
  op.kind = static_cast<OpKind>(kind);
  op.layer = r.scalar<std::int32_t>();
  op.skip_bits = r.scalar<std::int32_t>();
  op.pool_kernel = r.scalar<std::int64_t>();
  op.pool_stride = r.scalar<std::int64_t>();
  op.mask_channels = r.scalar<std::int64_t>();
  // v1/v2 payloads predate memory planning and carry no slot offsets.
  op.out_offset = version >= 3 ? r.scalar<std::int64_t>() : -1;
  if (op.kind == OpKind::kGemm || op.kind == OpKind::kSkipGemm) {
    if (op.layer < 0 || static_cast<std::size_t>(op.layer) >= layer_count) {
      fail("op references layer " + std::to_string(op.layer) +
           " outside the plan");
    }
  }
  if (op.kind == OpKind::kMaxPool &&
      (op.pool_kernel < 1 || op.pool_stride < 1)) {
    fail("invalid pool geometry");
  }
  if (op.kind == OpKind::kPushSkip && (op.skip_bits < 0 || op.skip_bits > 32)) {
    fail("invalid skip bit-width");
  }
  if (op.kind == OpKind::kAddSkipRelu && op.mask_channels < -1) {
    fail("invalid residual mask");
  }
  if ((op.kind == OpKind::kQuantize || op.kind == OpKind::kQuantizeSkip) &&
      (op.skip_bits < 1 || op.skip_bits > 32)) {
    fail("invalid quantize bit-width");
  }
  // Slot offsets must land inside the declared arena on a 64-byte
  // boundary (the engine scales both by the batch size, which preserves
  // alignment only for aligned per-sample offsets).
  if (op.out_offset < -1) fail("invalid arena slot offset");
  if (op.out_offset >= 0 &&
      (op.out_offset % 64 != 0 || op.out_offset >= arena_bytes)) {
    fail("arena slot offset " + std::to_string(op.out_offset) +
         " outside the declared arena");
  }
  // v1-v3 payloads predate compressed activation slots.
  op.out_act_bits = version >= 4 ? r.scalar<std::int32_t>() : 0;
  op.out_act_qbits = version >= 4 ? r.scalar<std::int32_t>() : 0;
  if (op.out_act_bits != 0 && op.out_act_bits != 1 && op.out_act_bits != 2 &&
      op.out_act_bits != 4 && op.out_act_bits != 8) {
    fail("invalid packed activation cell width " +
         std::to_string(op.out_act_bits));
  }
  if (op.out_act_bits == 0) {
    if (op.out_act_qbits != 0) {
      fail("activation code grid declared without a packed cell width");
    }
  } else {
    if (op.out_offset < 0) {
      fail("packed activation op has no arena slot");
    }
    if (op.out_act_qbits < 0 || op.out_act_qbits > 8 ||
        (op.out_act_qbits > 0 &&
         cell_bits_for(op.out_act_qbits) > op.out_act_bits)) {
      fail("activation code grid does not fit its packed cell width");
    }
    // Only the (deferred or standalone) quantize ops may self-code
    // (grid 0 — the consumer dequantizes on the op's own skip_bits grid);
    // every other packed op stores codes on a consumer GEMM's grid.
    if (op.out_act_qbits == 0 && op.kind != OpKind::kQuantize &&
        op.kind != OpKind::kQuantizeSkip) {
      fail("packed op is missing its consumer code grid");
    }
  }
  return op;
}

}  // namespace

void save_plan(const InferencePlan& plan, std::ostream& out,
               std::uint32_t version) {
  if (version == 0 || version > kPlanFormatVersion) {
    fail("cannot write format version " + std::to_string(version) +
         " (this build writes up to " + std::to_string(kPlanFormatVersion) +
         ")");
  }
  if (version < 2) {
    for (const GemmLayerPlan& l : plan.layers) {
      if (l.is_depthwise) {
        fail("depthwise layer '" + l.name +
             "' requires format version 2; cannot write version " +
             std::to_string(version));
      }
    }
    for (const OpPlan& op : plan.ops) {
      if (op.kind == OpKind::kQuantize) {
        fail("standalone quantize op requires format version 2; cannot "
             "write version " + std::to_string(version));
      }
    }
  }
  if (version < 3) {
    // The arena annotations are derivable metadata and are silently
    // dropped (the loaded plan runs on the heap path, bit-identically);
    // a deferred skip-quantize OP, however, is semantics an older reader
    // cannot execute.
    for (const OpPlan& op : plan.ops) {
      if (op.kind == OpKind::kQuantizeSkip) {
        fail("deferred skip-quantize op requires format version 3; cannot "
             "write version " + std::to_string(version));
      }
    }
  }
  if (version < 4) {
    // Packed slots are NOT droppable metadata: the slot offsets are sized
    // for packed codes, so a version <= 3 file would execute float stores
    // into undersized slots.
    for (const OpPlan& op : plan.ops) {
      if (op.out_act_bits > 0) {
        fail("packed activation slots require format version 4; cannot "
             "write version " + std::to_string(version) +
             " (recompile with ADQ_ACT_BITS=off for a float-slot plan)");
      }
    }
  }
  Writer w;
  w.str(plan.model_name);
  if (version >= 3) {
    w.scalar<std::int64_t>(plan.arena_bytes);
    if (version >= 4) w.scalar<std::int64_t>(plan.arena_bytes_u8);
    w.scalar<std::uint8_t>(static_cast<std::uint8_t>(plan.planned_input.rank));
    w.scalar<std::int64_t>(plan.planned_input.channels);
    w.scalar<std::int64_t>(plan.planned_input.height);
    w.scalar<std::int64_t>(plan.planned_input.width);
  }
  w.scalar<std::uint32_t>(static_cast<std::uint32_t>(plan.layers.size()));
  for (const GemmLayerPlan& l : plan.layers) write_layer(w, l, version);
  w.scalar<std::uint32_t>(static_cast<std::uint32_t>(plan.ops.size()));
  for (const OpPlan& op : plan.ops) write_op(w, op, version);

  const std::string& payload = w.payload();
  out.write(kMagic, sizeof(kMagic));
  const std::uint32_t flags = 0;
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  out.write(reinterpret_cast<const char*>(&flags), sizeof(flags));
  out.write(payload.data(),
            static_cast<std::streamsize>(payload.size()));
  const std::uint64_t checksum = fnv1a(payload.data(), payload.size());
  out.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  if (!out) fail("write failed");
}

void save_plan(const InferencePlan& plan, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) fail("cannot open '" + path + "' for writing");
  save_plan(plan, out);
  out.flush();
  if (!out) fail("write to '" + path + "' failed");
}

InferencePlan load_plan(std::istream& in) {
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string blob = buf.str();

  constexpr std::size_t kHeaderSize = sizeof(kMagic) + 2 * sizeof(std::uint32_t);
  if (blob.size() < kHeaderSize + sizeof(std::uint64_t)) {
    fail("file too small to be an .adqplan");
  }
  if (std::memcmp(blob.data(), kMagic, sizeof(kMagic)) != 0) {
    fail("bad magic — not an .adqplan file");
  }
  std::uint32_t version;
  std::memcpy(&version, blob.data() + sizeof(kMagic), sizeof(version));
  if (version == 0 || version > kPlanFormatVersion) {
    fail("unsupported format version " + std::to_string(version) +
         " (this build reads up to " + std::to_string(kPlanFormatVersion) +
         ")");
  }

  const char* payload = blob.data() + kHeaderSize;
  const std::size_t payload_size =
      blob.size() - kHeaderSize - sizeof(std::uint64_t);
  std::uint64_t stored_checksum;
  std::memcpy(&stored_checksum, blob.data() + blob.size() - sizeof(std::uint64_t),
              sizeof(stored_checksum));
  if (fnv1a(payload, payload_size) != stored_checksum) {
    fail("checksum mismatch — file is corrupt or truncated");
  }

  Reader r(payload, payload_size);
  InferencePlan plan;
  plan.model_name = r.str();
  if (version >= 3) {
    plan.arena_bytes = r.scalar<std::int64_t>();
    // v3 files predate compressed slots: their arena IS the float arena.
    plan.arena_bytes_u8 =
        version >= 4 ? r.scalar<std::int64_t>() : plan.arena_bytes;
    plan.planned_input.rank = r.scalar<std::uint8_t>();
    plan.planned_input.channels = r.scalar<std::int64_t>();
    plan.planned_input.height = r.scalar<std::int64_t>();
    plan.planned_input.width = r.scalar<std::int64_t>();
    if (plan.arena_bytes < 0 || plan.arena_bytes > kMaxElems) {
      fail("invalid arena size");
    }
    if (plan.arena_bytes_u8 < 0 || plan.arena_bytes_u8 > kMaxElems) {
      fail("invalid float-baseline arena size");
    }
    if (plan.planned_input.rank != 0 && plan.planned_input.rank != 1 &&
        plan.planned_input.rank != 3) {
      fail("invalid planned input rank");
    }
    if (plan.arena_bytes > 0 && plan.planned_input.rank == 0) {
      fail("memory-planned file is missing its planned input shape");
    }
    if (plan.planned_input.rank != 0 &&
        (plan.planned_input.channels < 1 ||
         (plan.planned_input.rank == 3 && (plan.planned_input.height < 1 ||
                                           plan.planned_input.width < 1)))) {
      fail("invalid planned input shape");
    }
  }
  const auto layer_count = r.scalar<std::uint32_t>();
  plan.layers.reserve(layer_count);
  for (std::uint32_t i = 0; i < layer_count; ++i) {
    plan.layers.push_back(read_layer(r, version));
  }
  const auto op_count = r.scalar<std::uint32_t>();
  plan.ops.reserve(op_count);
  for (std::uint32_t i = 0; i < op_count; ++i) {
    plan.ops.push_back(read_op(r, plan.layers.size(), version,
                               plan.arena_bytes));
  }
  if (!r.exhausted()) fail("trailing bytes after the op list");
  return plan;
}

InferencePlan load_plan(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail("cannot open '" + path + "'");
  return load_plan(in);
}

std::uint64_t plan_fingerprint(const InferencePlan& plan) {
  std::ostringstream out;
  save_plan(plan, out);
  const std::string blob = out.str();
  return fnv1a(blob.data(), blob.size());
}

}  // namespace adq::infer
