#include "infer/engine.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <string>

#include "backend/registry.h"
#include "tensor/bitpack.h"
#include "tensor/gemm.h"
#include "tensor/im2col.h"
#include "tensor/ops.h"
#include "tensor/parallel.h"

namespace adq::infer {
namespace {

// Slab cap for the batched im2col lowering: a conv chunk never materialises
// more than this many patch-matrix bytes at once. Besides bounding
// transient memory for huge batches, the cap keeps the slab + accumulators
// inside L2 — one oversized chunk streams from L3 and costs more than the
// panel-packing amortization it buys (measured: a 2.4 MiB slab at batch 16
// serves ~15% slower than four cache-resident chunks of it).
constexpr std::int64_t kMaxSlabBytes = 768 << 10;

using backend::ActQuant;

// A value flowing through the slot-based executor: where its bytes live
// (the caller's input tensor or an arena slot) and their logical shape.
// `off` is the per-sample arena byte offset, -1 for caller-owned memory.
// When `packed`, the slot holds the whole batch's quantize codes bit-packed
// at `cell`-bit cells instead of float words (`p` is then null): `aq` is
// the grid the codes live on and `qbits` its bit-width — the grid every
// consuming integer GEMM runs on (0: a self-coded skip value the residual
// add dequantizes).
struct View {
  const float* p = nullptr;
  std::int64_t off = -1;
  Shape shape;
  bool packed = false;
  int cell = 0;
  int qbits = 0;
  ActQuant aq;

  View() = default;
  View(const float* p_in, std::int64_t off_in, Shape shape_in)
      : p(p_in), off(off_in), shape(std::move(shape_in)) {}
};

// Per-thread reusable scratch. Every buffer grows on demand and is reused
// across forward() calls, so a warm serving loop performs no allocations on
// the hot path; distinct threads get distinct scratch, which is what makes
// a shared engine safe under the server's worker pool.
struct EngineScratch {
  std::vector<std::uint8_t> act_codes;  // whole-batch activation codes
  std::vector<std::uint8_t> act_t;      // packed-linear activation transpose
  std::vector<std::uint8_t> act_unpacked;  // codes expanded from a packed slot
  std::vector<float> stage;             // packed-producer float staging
  Im2colWorkspace lower;                // u8 / float patch-matrix slabs
  std::vector<std::int32_t> acc;        // GEMM accumulators
  std::vector<std::int32_t> row_sums;   // per-sample code sums (linear)
  std::vector<float> raw;               // float-path GEMM output
  std::vector<float> fq;                // float-path fake-quantized input
  std::vector<float> arena;             // the slot executor's activations
  std::vector<View> skip_views;         // arena-path skip stack

  std::int32_t* ensure_acc(std::int64_t n) {
    if (static_cast<std::int64_t>(acc.size()) < n) {
      acc.resize(static_cast<std::size_t>(n));
    }
    return acc.data();
  }
  float* ensure_raw(std::int64_t n) {
    if (static_cast<std::int64_t>(raw.size()) < n) {
      raw.resize(static_cast<std::size_t>(n));
    }
    return raw.data();
  }
  float* ensure_fq(std::int64_t n) {
    if (static_cast<std::int64_t>(fq.size()) < n) {
      fq.resize(static_cast<std::size_t>(n));
    }
    return fq.data();
  }
  float* ensure_arena(std::int64_t n) {
    if (static_cast<std::int64_t>(arena.size()) < n) {
      arena.resize(static_cast<std::size_t>(n));
    }
    return arena.data();
  }
  std::uint8_t* ensure_act_t(std::int64_t n) {
    if (static_cast<std::int64_t>(act_t.size()) < n) {
      act_t.resize(static_cast<std::size_t>(n));
    }
    return act_t.data();
  }
  std::uint8_t* ensure_act_unpacked(std::int64_t n) {
    if (static_cast<std::int64_t>(act_unpacked.size()) < n) {
      act_unpacked.resize(static_cast<std::size_t>(n));
    }
    return act_unpacked.data();
  }
  float* ensure_stage(std::int64_t n) {
    if (static_cast<std::int64_t>(stage.size()) < n) {
      stage.resize(static_cast<std::size_t>(n));
    }
    return stage.data();
  }
};

EngineScratch& engine_scratch() {
  thread_local EngineScratch scratch;
  return scratch;
}

// ADQ_SUBBYTE=0 disables packed sub-byte execution (every integer layer
// then runs through the legacy unpack-to-u8 views — the A/B reference the
// golden-logits tests pin the packed path against); anything else,
// including unset, leaves it on. Latched at engine construction.
bool subbyte_env_enabled() {
  const char* e = std::getenv("ADQ_SUBBYTE");
  return e == nullptr || !(e[0] == '0' && e[1] == '\0');
}

// One policy for how an integer layer's weights reach the GEMM — shared
// by the engine's construction-time cache and run_gemm_layer's standalone
// path, so the two can never diverge. With sub-byte packing on (the
// default), <= 4-bit convs and linears keep packed weight cells end to
// end:
//   * packed convs repack the plan's flat codes into [O+1] byte-aligned
//     rows — the all-ones zero-point row is packed too — consumed by the
//     backend's igemm_u8w4/igemm_u8w2 kernels (nibbles expand in-register,
//     never into a byte-per-code buffer);
//   * packed linears repack the plan's [in, out] transpose into [out]
//     packed fan-in rows: the weights become the packed GEMM's A operand
//     against transposed activation codes (see run_linear_int);
//   * 1-bit cells widen to 2-bit rows (the narrowest packed kernel).
// Legacy views (8-bit layers, depthwise, or ADQ_SUBBYTE=0):
//   * integer convs materialise a [O+1, P] byte-per-code buffer whose
//     last row is all-ones (the GEMM then emits the per-column activation
//     code sums as its final accumulator row — see run_conv_int);
//   * sub-byte integer linears and depthwise convs materialise their
//     unpacked codes (no ones row — the depthwise loop sums its own
//     activation patches);
//   * 8-bit integer linears/depthwise read the plan's packed codes in place;
//   * float layers have no byte-code view at all.
bool needs_exec_buffer(const GemmLayerPlan& l) {
  return l.path == ExecPath::kInteger &&
         ((l.is_conv && !l.is_depthwise) || l.cell_bits != 8);
}

void build_exec_codes(const GemmLayerPlan& l, std::vector<std::uint8_t>& out) {
  const std::int64_t count = l.out_channels * l.patch();
  const std::int64_t total =
      l.is_conv && !l.is_depthwise ? count + l.patch() : count;
  if (static_cast<std::int64_t>(out.size()) < total) {
    out.resize(static_cast<std::size_t>(total));
  }
  if (l.cell_bits == 8) {
    std::copy(l.weight_codes.begin(), l.weight_codes.end(), out.begin());
  } else {
    backend::active().unpack_codes(l.weight_codes.data(), count, l.cell_bits,
                                   out.data());
  }
  if (l.is_conv && !l.is_depthwise) {
    std::fill(out.begin() + count, out.begin() + total, 1);
  }
}

ExecWeights build_exec_weights(const GemmLayerPlan& l, bool subbyte) {
  ExecWeights w;
  if (l.path != ExecPath::kInteger) return w;
  if (subbyte && l.cell_bits <= 4 && !l.is_depthwise) {
    w.packed = true;
    w.cell = std::max(l.cell_bits, 2);
    const std::int64_t O = l.out_channels;
    if (l.is_conv) {
      const std::int64_t P = l.patch();
      w.row_bytes = packed_row_bytes(P, w.cell);
      w.buf.resize(static_cast<std::size_t>((O + 1) * w.row_bytes));
      repack_rows_aligned(l.weight_codes.data(), O, P, l.cell_bits, w.cell,
                          w.buf.data());
      const std::vector<std::uint8_t> ones(static_cast<std::size_t>(P), 1);
      pack_codes(ones.data(), P, w.cell, w.buf.data() + O * w.row_bytes);
    } else {
      const std::int64_t in = l.in_channels;
      w.row_bytes = packed_row_bytes(in, w.cell);
      w.buf.resize(static_cast<std::size_t>(O * w.row_bytes));
      repack_transpose_aligned(l.weight_codes.data(), in, O, l.cell_bits,
                               w.cell, w.buf.data());
    }
    return w;
  }
  if (needs_exec_buffer(l)) build_exec_codes(l, w.buf);
  return w;
}

// The pointer-level view run_layer dispatches on: packed rows carry their
// cell width and byte stride; legacy views are plain byte-per-code.
struct WeightView {
  const std::uint8_t* p = nullptr;
  bool packed = false;
  int cell = 8;
  std::int64_t row_bytes = 0;
};

WeightView exec_weight_view(const GemmLayerPlan& l, const ExecWeights& w) {
  WeightView v;
  if (l.path != ExecPath::kInteger) return v;
  if (w.packed) {
    v.p = w.buf.data();
    v.packed = true;
    v.cell = w.cell;
    v.row_bytes = w.row_bytes;
  } else {
    v.p = w.buf.empty() ? l.weight_codes.data() : w.buf.data();
  }
  return v;
}

// Quantizes an activation tensor to eqn-1 codes through the active
// backend's quantize_act op (the observation FakeQuantizer::apply makes on
// this tensor in the training path, so code -> value round-trips land on
// the same grid). Codes land in `codes` (grown on demand, first `n` valid).
ActQuant quantize_activations(const float* px0, std::int64_t n, int bits,
                              std::vector<std::uint8_t>& codes) {
  if (static_cast<std::int64_t>(codes.size()) < n) {
    codes.resize(static_cast<std::size_t>(n));
  }
  return backend::active().quantize_act(px0, n, bits, codes.data());
}

// An integer layer's input when the producer already stored it as quantize
// codes (a compressed arena slot): the whole-batch codes plus the grid they
// live on. The layer then skips its own quantize_act — the codes were
// produced by the identical quantize_act call on the identical float
// values, so consuming them is bit-exact against quantizing here.
struct PackedActs {
  const std::uint8_t* codes = nullptr;
  ActQuant aq;
};

// Fused epilogue over one output row (channel o, `n` positions):
//   y = epi_scale[o] * (ss * acc + row_term + ca * colsum) + epi_shift[o]
// with the optional ReLU. `colsum` may be null when ca == 0. The plan-level
// channel masking (eqn 5's inactive channels) stays here; the backend op is
// the pure row math.
void epilogue_row(const GemmLayerPlan& l, std::int64_t o,
                  const std::int32_t* acc, const std::int32_t* colsum,
                  float ss, float row_term, float ca, std::int64_t n,
                  float* out) {
  if (o >= l.active_out) {
    std::fill(out, out + n, 0.0f);
    return;
  }
  backend::active().epilogue_row(acc, colsum, ss, row_term, ca,
                                 l.epi_scale[static_cast<std::size_t>(o)],
                                 l.epi_shift[static_cast<std::size_t>(o)],
                                 l.relu, n, out);
}

ConvGeometry conv_geometry(const GemmLayerPlan& l, std::int64_t h,
                           std::int64_t w) {
  ConvGeometry g;
  g.channels = l.in_channels;
  g.in_h = h;
  g.in_w = w;
  g.kernel_h = l.kernel;
  g.kernel_w = l.kernel;
  g.stride = l.stride;
  g.pad = l.pad;
  return g;
}

// The float-path layers consume the fake-quantized input the training
// graph would have seen. Snapped into per-thread scratch so neither
// execution path allocates for it.
const float* float_path_input(const GemmLayerPlan& l, const float* x,
                              std::int64_t n, EngineScratch& ws) {
  if (!l.quantize_input) return x;
  float* fq = ws.ensure_fq(n);
  backend::active().fake_quant(x, n, l.bits, fq);
  return fq;
}

// ---------------------------------------------------------------------------
// Layer kernels. Every kernel takes its input as a raw view and a
// caller-provided output buffer: the arena executor points them at
// compile-time-planned slots, the heap path at freshly allocated tensors —
// one implementation, so the two paths are bit-identical by construction.
// ---------------------------------------------------------------------------

// Integer conv over the whole batch: each chunk of images lowers into
// adjacent column blocks of ONE [P, chunk*ohw] slab and runs as a single
// GEMM. Weight panels therefore pack once per chunk instead of once per
// image, and deep layers with tiny spatial outputs (ohw of 4 or 16) fill
// complete 16-wide micro-tiles — this is where batched serving beats
// request-at-a-time execution even on one core.
//
// `wv` is the [O+1, P] execution view of the weights (byte-per-code or
// packed cells, see build_exec_weights): rows 0..O-1 are the weight rows,
// row O is all-ones, so GEMM row O comes out as the per-column activation
// code sum the zero-point correction needs — computed at full kernel speed
// instead of a separate scalar pass over the slab.
void run_conv_int(const GemmLayerPlan& l, const float* x, std::int64_t B,
                  std::int64_t H, std::int64_t W, const WeightView& wv,
                  const PackedActs* pin, float* out) {
  const ConvGeometry g = conv_geometry(l, H, W);
  const std::int64_t oh = g.out_h(), ow = g.out_w(), ohw = oh * ow;
  const std::int64_t O = l.out_channels, P = l.patch();
  const std::int64_t chw = l.in_channels * H * W;

  const backend::Backend& bk = backend::active();
  EngineScratch& ws = engine_scratch();
  const ActQuant qa =
      pin != nullptr ? pin->aq
                     : quantize_activations(x, B * chw, l.bits, ws.act_codes);
  const std::uint8_t* act =
      pin != nullptr ? pin->codes : ws.act_codes.data();

  // Affine-correction constants (see plan.h): per-row term uses the weight
  // code sums, per-column term the activation column sums.
  const float ss = qa.a_scale * l.w_scale;
  const float cw = qa.a_min * l.w_scale;   // * w_code_sums[o]
  const float ca = l.w_min * qa.a_scale;   // * colsum[s]
  const float cc = static_cast<float>(P) * qa.a_min * l.w_min;

  const std::int64_t max_chunk = std::max<std::int64_t>(
      1, kMaxSlabBytes / std::max<std::int64_t>(1, P * ohw));
  for (std::int64_t b0 = 0; b0 < B; b0 += max_chunk) {
    const std::int64_t bc = std::min(max_chunk, B - b0);
    const std::int64_t cols = bc * ohw;
    std::uint8_t* col = ws.lower.ensure_u8(P * cols);
    // One sample lowers P*ohw bytes; keep at least ~16 KiB of lowering per
    // chunk so late tiny layers (small spatial maps) stay serial instead of
    // round-tripping the scheduler for microseconds of work.
    const std::int64_t im2col_grain = std::max<std::int64_t>(
        1, 16384 / std::max<std::int64_t>(1, P * ohw));
    parallel_for(0, bc, [&](std::int64_t i0, std::int64_t i1) {
      for (std::int64_t i = i0; i < i1; ++i) {
        bk.im2col_u8(act + (b0 + i) * chw, g, col + i * ohw, cols,
                     qa.zero_code);
      }
    }, im2col_grain);
    std::int32_t* acc = ws.ensure_acc((O + 1) * cols);
    if (wv.packed) {
      // Packed weight rows (the all-ones row included) feed the sub-byte
      // kernel directly; it is bit-exact against the unpacked GEMM, so the
      // epilogue below is untouched.
      const auto packed_fn = wv.cell == 4 ? bk.igemm_w4 : bk.igemm_w2;
      packed_fn(O + 1, cols, P, wv.p, wv.row_bytes, col, cols, acc, cols);
    } else {
      bk.igemm(O + 1, cols, P, wv.p, P, col, cols, acc, cols);
    }
    const std::int32_t* colsum = acc + O * cols;  // the all-ones weight row
    // Fused epilogue, channel-parallel, scattering chunk columns back into
    // the [B, O, oh, ow] layout. Grain keeps tiny layers serial.
    const std::int64_t grain =
        std::max<std::int64_t>(1, 16384 / std::max<std::int64_t>(1, cols));
    parallel_for(0, O, [&](std::int64_t o0, std::int64_t o1) {
      for (std::int64_t o = o0; o < o1; ++o) {
        const float row_term =
            cw * static_cast<float>(
                     l.w_code_sums[static_cast<std::size_t>(o)]) +
            cc;
        for (std::int64_t i = 0; i < bc; ++i) {
          epilogue_row(l, o, acc + o * cols + i * ohw, colsum + i * ohw, ss,
                       row_term, ca, ohw, out + ((b0 + i) * O + o) * ohw);
        }
      }
    }, grain);
  }
}

void run_conv_float(const GemmLayerPlan& l, const float* x, std::int64_t B,
                    std::int64_t H, std::int64_t W, float* out) {
  const ConvGeometry g = conv_geometry(l, H, W);
  const std::int64_t oh = g.out_h(), ow = g.out_w(), ohw = oh * ow;
  const std::int64_t O = l.out_channels, P = l.patch();
  const std::int64_t chw = l.in_channels * H * W;

  const float* xq = float_path_input(l, x, B * chw, engine_scratch());
  parallel_for(0, B, [&](std::int64_t b0, std::int64_t b1) {
    EngineScratch& tws = engine_scratch();
    float* col = tws.lower.ensure_f32(P * ohw);
    float* raw = tws.ensure_raw(O * ohw);
    for (std::int64_t b = b0; b < b1; ++b) {
      backend::active().im2col_f32(xq + b * chw, g, col, ohw);
      sgemm(false, false, O, ohw, P, 1.0f, l.weight_f.data(), P, col, ohw,
            0.0f, raw, ohw);
      float* out_b = out + b * O * ohw;
      for (std::int64_t o = 0; o < O; ++o) {
        const float ea = l.epi_scale[static_cast<std::size_t>(o)];
        const float eb = l.epi_shift[static_cast<std::size_t>(o)];
        float* dst = out_b + o * ohw;
        if (o >= l.active_out) {
          std::fill(dst, dst + ohw, 0.0f);
          continue;
        }
        const float* src = raw + o * ohw;
        for (std::int64_t s = 0; s < ohw; ++s) {
          const float v = ea * src[s] + eb;
          dst[s] = l.relu ? std::max(v, 0.0f) : v;
        }
      }
    }
  });
}

// Translates a depthwise layer plan into the backend op's argument block.
// The plan-derived epilogue/mask state is shared by both precisions; the
// integer zero-point constants are filled by the int wrapper below.
backend::DepthwiseArgs depthwise_args(const GemmLayerPlan& l, std::int64_t H,
                                      std::int64_t W) {
  backend::DepthwiseArgs a;
  a.channels = l.out_channels;
  a.in_h = H;
  a.in_w = W;
  a.kernel = l.kernel;
  a.stride = l.stride;
  a.pad = l.pad;
  a.active_channels = l.active_out;
  a.epi_scale = l.epi_scale.data();
  a.epi_shift = l.epi_shift.data();
  a.relu = l.relu;
  return a;
}

// Integer depthwise conv: each output channel reduces only its own input
// plane over kernel^2 taps, so there is no GEMM to amortise — the backend
// op loops directly over the quantized codes with the same per-channel
// zero-point correction as the GEMM path (plan.h, K = kernel^2). Padding
// taps use the grid code closest to 0.0, exactly like im2col_u8's padding.
void run_depthwise_int(const GemmLayerPlan& l, const float* x, std::int64_t B,
                       std::int64_t H, std::int64_t W, const WeightView& wv,
                       const PackedActs* pin, float* out) {
  const std::int64_t C = l.out_channels;
  const std::int64_t k = l.kernel;

  const backend::Backend& bk = backend::active();
  EngineScratch& ws = engine_scratch();
  const ActQuant qa =
      pin != nullptr
          ? pin->aq
          : quantize_activations(x, B * C * H * W, l.bits, ws.act_codes);
  const std::uint8_t* act =
      pin != nullptr ? pin->codes : ws.act_codes.data();

  backend::DepthwiseArgs a = depthwise_args(l, H, W);
  a.w_code_sums = l.w_code_sums.data();
  a.ss = qa.a_scale * l.w_scale;
  a.cw = qa.a_min * l.w_scale;  // * w_code_sums[c]
  a.ca = l.w_min * qa.a_scale;  // * patch activation-code sum
  a.cc = static_cast<float>(k * k) * qa.a_min * l.w_min;
  a.zero_code = qa.zero_code;
  bk.depthwise_int(act, B, wv.p, a, out);
}

void run_depthwise_float(const GemmLayerPlan& l, const float* x,
                         std::int64_t B, std::int64_t H, std::int64_t W,
                         float* out) {
  const float* xq =
      float_path_input(l, x, B * l.out_channels * H * W, engine_scratch());
  backend::active().depthwise_f32(xq, B, l.weight_f.data(),
                                  depthwise_args(l, H, W), out);
}

void run_linear_int(const GemmLayerPlan& l, const float* x, std::int64_t B,
                    const WeightView& wv, const PackedActs* pin, float* out) {
  const std::int64_t in = l.in_channels, O = l.out_channels;

  EngineScratch& ws = engine_scratch();
  const ActQuant qa =
      pin != nullptr ? pin->aq
                     : quantize_activations(x, B * in, l.bits, ws.act_codes);
  const std::uint8_t* act_in =
      pin != nullptr ? pin->codes : ws.act_codes.data();

  if (static_cast<std::int64_t>(ws.row_sums.size()) < B) {
    ws.row_sums.resize(static_cast<std::size_t>(B));
  }
  for (std::int64_t b = 0; b < B; ++b) {
    std::int32_t s = 0;
    const std::uint8_t* row = act_in + b * in;
    for (std::int64_t i = 0; i < in; ++i) s += row[i];
    ws.row_sums[static_cast<std::size_t>(b)] = s;
  }

  std::int32_t* acc = ws.ensure_acc(B * O);
  if (wv.packed) {
    // The packed kernels take the packed operand as A, so the roles flip:
    // packed weight rows [O, in] against transposed activation codes
    // [in, B], landing acc in [O, B]. Integer dot products are exact, so
    // acc[o * B + b] equals the unpacked path's acc[b * O + o] bit for bit
    // and the epilogue below evaluates the same float expression either
    // way.
    std::uint8_t* act_t = ws.ensure_act_t(in * B);
    for (std::int64_t b = 0; b < B; ++b) {
      for (std::int64_t i = 0; i < in; ++i) {
        act_t[i * B + b] = act_in[b * in + i];
      }
    }
    const backend::Backend& bk = backend::active();
    const auto packed_fn = wv.cell == 4 ? bk.igemm_w4 : bk.igemm_w2;
    packed_fn(O, B, in, wv.p, wv.row_bytes, act_t, B, acc, B);
  } else {
    backend::active().igemm(B, O, in, act_in, in, wv.p, O, acc, O);
  }
  const std::int64_t o_stride = wv.packed ? B : 1;
  const std::int64_t b_stride = wv.packed ? 1 : O;

  const float ss = qa.a_scale * l.w_scale;
  const float cw = qa.a_min * l.w_scale;   // * w_code_sums[o]
  const float ca = l.w_min * qa.a_scale;   // * row_sums[b]
  const float cc = static_cast<float>(in) * qa.a_min * l.w_min;

  for (std::int64_t b = 0; b < B; ++b) {
    const std::int32_t* ab = acc + b * b_stride;
    float* ob = out + b * O;
    const float sample_term =
        ca * static_cast<float>(ws.row_sums[static_cast<std::size_t>(b)]) + cc;
    for (std::int64_t o = 0; o < O; ++o) {
      if (o >= l.active_out) {
        ob[o] = 0.0f;
        continue;
      }
      const float v =
          l.epi_scale[static_cast<std::size_t>(o)] *
              (ss * static_cast<float>(ab[o * o_stride]) +
               cw * static_cast<float>(l.w_code_sums[static_cast<std::size_t>(o)]) +
               sample_term) +
          l.epi_shift[static_cast<std::size_t>(o)];
      ob[o] = l.relu ? std::max(v, 0.0f) : v;
    }
  }
}

void run_linear_float(const GemmLayerPlan& l, const float* x, std::int64_t B,
                      float* out) {
  const std::int64_t in = l.in_channels, O = l.out_channels;
  const float* xq = float_path_input(l, x, B * in, engine_scratch());
  // y[B, O] = x_q * W^T, like nn::Linear::forward.
  sgemm(false, true, B, O, in, 1.0f, xq, in, l.weight_f.data(), in, 0.0f,
        out, O);
  for (std::int64_t b = 0; b < B; ++b) {
    float* ob = out + b * O;
    for (std::int64_t o = 0; o < O; ++o) {
      if (o >= l.active_out) {
        ob[o] = 0.0f;
        continue;
      }
      const float v = l.epi_scale[static_cast<std::size_t>(o)] * ob[o] +
                      l.epi_shift[static_cast<std::size_t>(o)];
      ob[o] = l.relu ? std::max(v, 0.0f) : v;
    }
  }
}

void check_layer_input(const GemmLayerPlan& layer, const Shape& shape) {
  if (layer.is_conv) {
    if (shape.rank() != 4 || shape.dim(1) != layer.in_channels) {
      throw std::invalid_argument("infer: " + layer.name + " expected [B, " +
                                  std::to_string(layer.in_channels) +
                                  ", H, W], got " + shape.to_string());
    }
    return;
  }
  if (shape.rank() != 2 || shape.dim(1) != layer.in_channels) {
    throw std::invalid_argument("infer: " + layer.name + " expected [B, " +
                                std::to_string(layer.in_channels) + "], got " +
                                shape.to_string());
  }
}

Shape layer_out_shape(const GemmLayerPlan& l, const Shape& in) {
  if (!l.is_conv) return Shape{in.dim(0), l.out_channels};
  return Shape{in.dim(0), l.out_channels, l.out_extent(in.dim(2)),
               l.out_extent(in.dim(3))};
}

// Shared layer dispatch. `wv` is the weight execution view for integer
// layers (ignored on the float path). `pin`, when non-null, supplies the
// input as already-quantized codes (a compressed arena slot) — integer
// path only, `x` may then be null. The input must already have passed
// check_layer_input; `out` must hold layer_out_shape(...).numel() floats.
void run_layer(const GemmLayerPlan& layer, const float* x, const Shape& shape,
               const WeightView& wv, const PackedActs* pin, float* out) {
  if (pin != nullptr && layer.path != ExecPath::kInteger) {
    throw std::logic_error("infer: " + layer.name +
                           " consumes packed activations on the float path");
  }
  const std::int64_t B = shape.dim(0);
  if (layer.is_conv) {
    const std::int64_t H = shape.dim(2), W = shape.dim(3);
    if (layer.is_depthwise) {
      if (layer.path == ExecPath::kInteger) {
        run_depthwise_int(layer, x, B, H, W, wv, pin, out);
      } else {
        run_depthwise_float(layer, x, B, H, W, out);
      }
      return;
    }
    if (layer.path == ExecPath::kInteger) {
      run_conv_int(layer, x, B, H, W, wv, pin, out);
    } else {
      run_conv_float(layer, x, B, H, W, out);
    }
    return;
  }
  if (layer.path == ExecPath::kInteger) {
    run_linear_int(layer, x, B, wv, pin, out);
  } else {
    run_linear_float(layer, x, B, out);
  }
}

// Heap-path fake quantize: the tensor-allocating form of the backend's
// fake_quant op (bit-identical to the buffer form by the quantizer's
// contract), so the heap executor routes through the registry too.
Tensor fake_quantize_tensor(const Tensor& x, int bits) {
  Tensor out(x.shape());
  backend::active().fake_quant(x.data(), x.numel(), bits, out.data());
  return out;
}

// Heap-path convenience: allocates the output tensor and runs the kernel.
Tensor run_layer_tensor(const GemmLayerPlan& layer, const Tensor& x,
                        const WeightView& wv) {
  check_layer_input(layer, x.shape());
  Tensor out(layer_out_shape(layer, x.shape()));
  run_layer(layer, x.data(), x.shape(), wv, /*pin=*/nullptr, out.data());
  return out;
}

// Inference-only max pool (nn::MaxPool2d caches backward state; the engine
// needs a stateless pass).
void maxpool_forward(const float* x, std::int64_t B, std::int64_t C,
                     std::int64_t H, std::int64_t W, std::int64_t kernel,
                     std::int64_t stride, float* out) {
  const std::int64_t oh = (H - kernel) / stride + 1;
  const std::int64_t ow = (W - kernel) / stride + 1;
  // A plane costs oh*ow*kernel^2 compares; keep ~4k compares per chunk so
  // the deep small-map pools don't pay a dispatch for trivial work.
  const std::int64_t grain = std::max<std::int64_t>(
      1, 4096 / std::max<std::int64_t>(1, oh * ow * kernel * kernel));
  parallel_for(0, B * C, [&](std::int64_t p0, std::int64_t p1) {
    for (std::int64_t p = p0; p < p1; ++p) {
      const float* plane = x + p * H * W;
      float* dst = out + p * oh * ow;
      for (std::int64_t y = 0; y < oh; ++y) {
        for (std::int64_t xo = 0; xo < ow; ++xo) {
          float best = -std::numeric_limits<float>::infinity();
          for (std::int64_t ky = 0; ky < kernel; ++ky) {
            const float* row = plane + (y * stride + ky) * W + xo * stride;
            for (std::int64_t kx = 0; kx < kernel; ++kx) {
              best = std::max(best, row[kx]);
            }
          }
          dst[y * ow + xo] = best;
        }
      }
    }
  }, grain);
}

void gap_forward(const float* x, std::int64_t B, std::int64_t C,
                 std::int64_t hw, float* out) {
  for (std::int64_t p = 0; p < B * C; ++p) {
    const float* plane = x + p * hw;
    float s = 0.0f;
    for (std::int64_t i = 0; i < hw; ++i) s += plane[i];
    out[p] = s / static_cast<float>(hw);
  }
}

void check_add_shapes(const Shape& current, const Shape& skip) {
  if (current != skip) {
    throw std::invalid_argument("infer: residual add shape mismatch " +
                                current.to_string() + " vs " +
                                skip.to_string());
  }
}

// ADQ_ARENA=0 disables the slot executor (heap fallback for A/B checks and
// paranoia); anything else — including unset — leaves it on. Read per
// forward so a process can toggle it between runs.
bool arena_env_enabled() {
  const char* e = std::getenv("ADQ_ARENA");
  return e == nullptr || !(e[0] == '0' && e[1] == '\0');
}

// One-time validation of a loaded/compiled memory plan: replays the op
// walk over a 64-byte-granule stamp map, proving that every slot lies
// inside the arena, no op's output overlaps an operand it is still
// reading (in-place ops excepted — their reads and writes are
// index-aligned), and no op overwrites bytes a later op still consumes.
// The checksum only proves a file arrived as written, not that its
// writer's planner was correct; without this check a hand-edited plan
// could silently compute wrong logits.
void validate_memory_plan(const InferencePlan& plan) {
  std::vector<std::int64_t> out_elems;
  try {
    out_elems = plan.op_out_elems();
  } catch (const std::logic_error& e) {
    throw std::runtime_error(e.what());
  }
  const auto fail = [&plan](std::size_t i, const std::string& why) {
    throw std::runtime_error("infer: plan '" + plan.model_name + "' op " +
                             std::to_string(i) + " " + why);
  };

  struct Val {
    int id = 0;          // 0 = the caller-owned input tensor
    std::int64_t off = -1, bytes = 0;
    int act_bits = 0;    // packed cell width (0 = float storage)
    int act_qbits = 0;   // grid of the stored codes
  };
  const std::int64_t granules = (plan.arena_bytes + 63) / 64;
  std::vector<int> stamp(static_cast<std::size_t>(granules), -1);
  const auto span = [](const Val& v) {
    return std::pair<std::int64_t, std::int64_t>{v.off / 64,
                                                 (v.off + v.bytes + 63) / 64};
  };
  const auto check_live = [&](const Val& v, std::size_t i) {
    if (v.off < 0) return;
    const auto [g0, g1] = span(v);
    for (std::int64_t g = g0; g < g1; ++g) {
      if (stamp[static_cast<std::size_t>(g)] != v.id) {
        fail(i, "reads a value whose arena slot was overwritten "
                "(inconsistent memory plan)");
      }
    }
  };
  int next_id = 1;
  // Writes value `id` into a fresh slot, checking bounds and that the
  // slot is disjoint from every operand the op reads while writing.
  const auto write_slot = [&](Val& v, std::int64_t off, std::int64_t bytes,
                              std::initializer_list<const Val*> reads,
                              std::size_t i) {
    if (off < 0) fail(i, "is missing its arena slot");
    if (off % 64 != 0 || off + bytes > plan.arena_bytes) {
      fail(i, "has an arena slot outside the planned footprint");
    }
    const std::int64_t g0 = off / 64, g1 = (off + bytes + 63) / 64;
    for (const Val* r : reads) {
      if (r->off < 0) continue;
      const auto [r0, r1] = span(*r);
      if (g0 < r1 && r0 < g1) {
        fail(i, "writes its output over an operand it is still reading");
      }
    }
    v = Val{next_id++, off, bytes};
    for (std::int64_t g = g0; g < g1; ++g) {
      stamp[static_cast<std::size_t>(g)] = v.id;
    }
  };
  // In-place rewrite of v's own slot: the old value dies, a new one takes
  // over the same bytes.
  const auto rewrite_inplace = [&](Val& v, std::int64_t bytes,
                                   std::size_t i) {
    if (v.off < 0) fail(i, "executes in place over the caller-owned input");
    v.bytes = bytes;
    v.id = next_id++;
    const auto [g0, g1] = span(v);
    for (std::int64_t g = g0; g < g1; ++g) {
      stamp[static_cast<std::size_t>(g)] = v.id;
    }
  };

  // A packed value occupies packed_bytes of its slot, never runs in place,
  // and is only legible to an integer GEMM running on the very grid the
  // codes were produced for.
  const auto check_packed_op = [&](const OpPlan& op, std::size_t i) {
    if (op.out_act_bits <= 0) return;
    if (op.out_offset < 0) {
      fail(i, "stores packed activations but has no arena slot");
    }
    if (op.out_act_bits != 1 && op.out_act_bits != 2 &&
        op.out_act_bits != 4 && op.out_act_bits != 8) {
      fail(i, "stores packed activations at an invalid cell width");
    }
  };
  const auto stamp_act = [](Val& v, const OpPlan& op) {
    v.act_bits = op.out_act_bits;
    v.act_qbits = op.out_act_qbits;
  };
  const auto check_gemm_input = [&](const Val& v, const OpPlan& op,
                                    std::size_t i) {
    if (v.act_bits <= 0) return;
    const GemmLayerPlan& l = plan.layers[static_cast<std::size_t>(op.layer)];
    if (l.path != ExecPath::kInteger || v.act_qbits != l.bits) {
      fail(i, "consumes a packed value quantized on a grid the layer "
              "cannot read");
    }
  };
  const auto check_float_input = [&](const Val& v, std::size_t i) {
    if (v.act_bits > 0) fail(i, "reads a packed value as float words");
  };

  Val cur;  // the caller's input tensor
  std::vector<Val> skips;
  for (std::size_t i = 0; i < plan.ops.size(); ++i) {
    const OpPlan& op = plan.ops[i];
    check_packed_op(op, i);
    const std::int64_t bytes =
        op.out_act_bits > 0
            ? packed_bytes(out_elems[i], op.out_act_bits)
            : out_elems[i] * static_cast<std::int64_t>(sizeof(float));
    switch (op.kind) {
      case OpKind::kGemm:
        check_gemm_input(cur, op, i);
        check_live(cur, i);
        write_slot(cur, op.out_offset, bytes, {&cur}, i);
        stamp_act(cur, op);
        break;
      case OpKind::kMaxPool:
      case OpKind::kGlobalAvgPool:
        check_float_input(cur, i);
        check_live(cur, i);
        write_slot(cur, op.out_offset, bytes, {&cur}, i);
        stamp_act(cur, op);
        break;
      case OpKind::kFlatten:
        break;  // pure view
      case OpKind::kReLU:
      case OpKind::kQuantize:
        check_float_input(cur, i);
        check_live(cur, i);
        if (op.out_offset < 0) {
          rewrite_inplace(cur, bytes, i);
        } else {
          write_slot(cur, op.out_offset, bytes, {&cur}, i);
        }
        stamp_act(cur, op);
        break;
      case OpKind::kPushSkip:
        check_float_input(cur, i);
        check_live(cur, i);
        if (op.skip_bits > 0) {
          Val skip;
          write_slot(skip, op.out_offset, bytes, {&cur}, i);
          skips.push_back(skip);
        } else {
          skips.push_back(cur);  // alias — shares the stamp
        }
        break;
      case OpKind::kQuantizeSkip:
        check_float_input(skips.back(), i);
        check_live(skips.back(), i);
        if (op.out_offset < 0) {
          rewrite_inplace(skips.back(), bytes, i);
        } else {
          write_slot(skips.back(), op.out_offset, bytes, {&skips.back()}, i);
        }
        stamp_act(skips.back(), op);
        break;
      case OpKind::kSkipGemm:
        check_gemm_input(skips.back(), op, i);
        check_live(skips.back(), i);
        write_slot(skips.back(), op.out_offset, bytes, {&skips.back()}, i);
        stamp_act(skips.back(), op);
        break;
      case OpKind::kAddSkipRelu: {
        check_live(cur, i);
        check_live(skips.back(), i);
        const Val top = skips.back();
        skips.pop_back();
        if (cur.act_bits > 0) {
          fail(i, "adds onto a packed main operand");
        }
        if (top.act_bits > 0 && top.act_qbits != 0) {
          fail(i, "adds a packed skip that is not self-coded");
        }
        if (op.out_offset < 0) {
          rewrite_inplace(cur, bytes, i);
        } else {
          write_slot(cur, op.out_offset, bytes, {&cur, &top}, i);
        }
        stamp_act(cur, op);
        break;
      }
    }
  }
}

}  // namespace

Tensor run_gemm_layer(const GemmLayerPlan& layer, const Tensor& x) {
  // Standalone call without an engine: build the execution view per call
  // (the engine proper uses its construction-time cache). Honours the same
  // ADQ_SUBBYTE gate, so layer-level parity covers the packed kernels too.
  const ExecWeights w = build_exec_weights(layer, subbyte_env_enabled());
  return run_layer_tensor(layer, x, exec_weight_view(layer, w));
}

IntInferenceEngine::IntInferenceEngine(InferencePlan plan)
    : plan_(std::move(plan)) {
  // Resolve the backend now: an unknown or unavailable ADQ_BACKEND /
  // ADQ_SIMD pin must fail engine construction (listing the registered
  // backends), never silently fall back mid-forward.
  backend::active();
  subbyte_ = subbyte_env_enabled();
  exec_weights_.resize(plan_.layers.size());
  for (std::size_t i = 0; i < plan_.layers.size(); ++i) {
    exec_weights_[i] = build_exec_weights(plan_.layers[i], subbyte_);
  }
  if (plan_.arena_bytes > 0) validate_memory_plan(plan_);
}

std::int64_t IntInferenceEngine::exec_weight_bytes() const {
  std::int64_t total = 0;
  for (std::size_t i = 0; i < plan_.layers.size(); ++i) {
    const GemmLayerPlan& l = plan_.layers[i];
    if (l.path != ExecPath::kInteger) {
      total += static_cast<std::int64_t>(l.weight_bytes());
      continue;
    }
    const std::vector<std::uint8_t>& buf = exec_weights_[i].buf;
    total += static_cast<std::int64_t>(buf.empty() ? l.weight_codes.size()
                                                   : buf.size());
  }
  return total;
}

bool IntInferenceEngine::uses_arena(const Tensor& x) const {
  if (plan_.arena_bytes <= 0 || !arena_env_enabled()) return false;
  const PlannedInput& in = plan_.planned_input;
  if (in.rank == 3) {
    return x.shape().rank() == 4 && x.shape().dim(1) == in.channels &&
           x.shape().dim(2) == in.height && x.shape().dim(3) == in.width;
  }
  return in.rank == 1 && x.shape().rank() == 2 &&
         x.shape().dim(1) == in.channels;
}

Tensor IntInferenceEngine::forward(const Tensor& x) const {
  Tensor out;
  forward_into(x, out);
  return out;
}

void IntInferenceEngine::forward_into(const Tensor& x, Tensor& out) const {
  if (uses_arena(x)) {
    forward_arena(x, out);
    return;
  }
  out = forward_heap(x);
}

// The slot-based executor: one preallocated per-thread arena, every op
// writing into its planner-assigned slot (per-sample offsets scale by the
// batch size — 64-byte slot alignment keeps the scaled offsets aligned and
// float-indexable). In-place ops (out_offset < 0) snap or rectify their
// input's slot directly; flatten is a pure reinterpretation of the current
// view. Steady state performs zero heap allocations: the arena, code and
// slab buffers all grow once and are reused.
void IntInferenceEngine::forward_arena(const Tensor& x, Tensor& out) const {
  const std::int64_t B = x.shape().dim(0);
  EngineScratch& ws = engine_scratch();
  float* arena =
      ws.ensure_arena(plan_.arena_bytes / static_cast<std::int64_t>(sizeof(float)) * B);
  const auto slot = [&](std::int64_t off) {
    return arena + off / static_cast<std::int64_t>(sizeof(float)) * B;
  };
  const auto require_slot = [&](const OpPlan& op) {
    if (op.out_offset < 0) {
      throw std::logic_error("infer: op is missing its arena slot");
    }
    return slot(op.out_offset);
  };
  // Writable pointer for an in-place op: the planner never aliases the
  // caller-owned input tensor, so a view without a slot here is a plan bug.
  const auto inplace_ptr = [&](const View& v) {
    if (v.off < 0) {
      throw std::logic_error("infer: in-place op over caller-owned input");
    }
    return slot(v.off);
  };

  const auto weight_view = [this](int layer) {
    return exec_weight_view(plan_.layers[static_cast<std::size_t>(layer)],
                            exec_weights_[static_cast<std::size_t>(layer)]);
  };

  // Packed slots address the same arena as raw bytes: slots are 64-byte
  // aligned per sample, so off * B is exactly the byte address of
  // slot(off) and batch scaling preserves the alignment.
  const auto byte_slot = [&](std::int64_t off) {
    return reinterpret_cast<std::uint8_t*>(arena) + off * B;
  };
  // Quantizes a float value at `bits` and packs the codes into the op's
  // compressed slot. The whole batch packs contiguously — packed_bytes
  // grows sub-additively, so B samples always fit the B-scaled slot.
  const auto pack_result = [&](const OpPlan& op, const float* src,
                               const Shape& shape, int bits) {
    if (bits <= 0) {
      throw std::logic_error("infer: packed op without a quantization grid");
    }
    const std::int64_t n = shape.numel();
    View v;
    v.off = op.out_offset;
    v.shape = shape;
    v.packed = true;
    v.cell = op.out_act_bits;
    v.qbits = op.out_act_qbits;
    v.aq = quantize_activations(src, n, bits, ws.act_codes);
    backend::active().act_pack(ws.act_codes.data(), n, op.out_act_bits,
                               byte_slot(op.out_offset));
    return v;
  };
  // Expands a packed view back to one code per byte for its consumer.
  const auto unpack_codes_of = [&](const View& v) {
    const std::int64_t n = v.shape.numel();
    std::uint8_t* dst = ws.ensure_act_unpacked(n);
    backend::active().act_unpack(byte_slot(v.off), n, v.cell, dst);
    return static_cast<const std::uint8_t*>(dst);
  };
  // The planner only packs values whose every consumer can read codes; an
  // op that needs floats but sees a packed view is an inconsistent plan.
  const auto require_float = [](const View& v, const char* what) {
    if (v.packed) {
      throw std::logic_error(std::string("infer: ") + what +
                             " consumes a packed value (inconsistent plan)");
    }
  };
  // Shared GEMM-family step: a packed input feeds the kernel its stored
  // codes (bit-exact against re-quantizing — same floats, same grid); a
  // packed output stages in float scratch, then quantizes + packs into
  // the compressed slot.
  const auto run_gemm_op = [&](const OpPlan& op, View& v) {
    const GemmLayerPlan& l = plan_.layers[static_cast<std::size_t>(op.layer)];
    check_layer_input(l, v.shape);
    PackedActs pa;
    const PackedActs* pin = nullptr;
    if (v.packed) {
      pa.codes = unpack_codes_of(v);
      pa.aq = v.aq;
      pin = &pa;
    }
    const Shape out_shape = layer_out_shape(l, v.shape);
    if (op.out_act_bits > 0) {
      float* stg = ws.ensure_stage(out_shape.numel());
      run_layer(l, v.p, v.shape, weight_view(op.layer), pin, stg);
      v = pack_result(op, stg, out_shape, op.out_act_qbits);
    } else {
      float* dst = require_slot(op);
      run_layer(l, v.p, v.shape, weight_view(op.layer), pin, dst);
      v = View{dst, op.out_offset, out_shape};
    }
  };

  View cur{x.data(), -1, x.shape()};
  std::vector<View>& skips = ws.skip_views;
  skips.clear();
  for (const OpPlan& op : plan_.ops) {
    switch (op.kind) {
      case OpKind::kGemm:
        run_gemm_op(op, cur);
        break;
      case OpKind::kMaxPool: {
        require_float(cur, "maxpool");
        const std::int64_t C = cur.shape.dim(1), H = cur.shape.dim(2),
                           W = cur.shape.dim(3);
        const Shape os{B, C, (H - op.pool_kernel) / op.pool_stride + 1,
                       (W - op.pool_kernel) / op.pool_stride + 1};
        float* dst = op.out_act_bits > 0 ? ws.ensure_stage(os.numel())
                                         : require_slot(op);
        maxpool_forward(cur.p, B, C, H, W, op.pool_kernel, op.pool_stride,
                        dst);
        cur = op.out_act_bits > 0
                  ? pack_result(op, dst, os, op.out_act_qbits)
                  : View{dst, op.out_offset, os};
        break;
      }
      case OpKind::kGlobalAvgPool: {
        require_float(cur, "global average pool");
        const std::int64_t C = cur.shape.dim(1);
        const Shape os{B, C};
        float* dst = op.out_act_bits > 0 ? ws.ensure_stage(os.numel())
                                         : require_slot(op);
        gap_forward(cur.p, B, C, cur.shape.dim(2) * cur.shape.dim(3), dst);
        cur = op.out_act_bits > 0
                  ? pack_result(op, dst, os, op.out_act_qbits)
                  : View{dst, op.out_offset, os};
        break;
      }
      case OpKind::kFlatten:
        // Pure view — a packed value stays packed, the code count is the
        // same either way.
        cur.shape = Shape{B, cur.shape.numel() / B};
        break;
      case OpKind::kReLU: {
        require_float(cur, "relu");
        const std::int64_t n = cur.shape.numel();
        if (op.out_act_bits > 0) {
          float* stg = ws.ensure_stage(n);
          for (std::int64_t i = 0; i < n; ++i) {
            stg[i] = std::max(cur.p[i], 0.0f);
          }
          cur = pack_result(op, stg, cur.shape, op.out_act_qbits);
        } else if (op.out_offset < 0) {
          float* p = inplace_ptr(cur);
          for (std::int64_t i = 0; i < n; ++i) p[i] = std::max(p[i], 0.0f);
        } else {
          float* dst = require_slot(op);
          for (std::int64_t i = 0; i < n; ++i) {
            dst[i] = std::max(cur.p[i], 0.0f);
          }
          cur = View{dst, op.out_offset, cur.shape};
        }
        break;
      }
      case OpKind::kQuantize: {
        require_float(cur, "quantize");
        const std::int64_t n = cur.shape.numel();
        if (op.out_act_bits > 0) {
          if (op.out_act_qbits > 0) {
            // Snap on the op's own grid first, then code on the consumer
            // grid — two distinct grids in general.
            float* stg = ws.ensure_stage(n);
            backend::active().fake_quant(cur.p, n, op.skip_bits, stg);
            cur = pack_result(op, stg, cur.shape, op.out_act_qbits);
          } else {
            // Self-coded: quantize_act(x, k)'s codes exactly represent
            // fake_quantize(x, k) (same observed range, same rounding).
            cur = pack_result(op, cur.p, cur.shape, op.skip_bits);
          }
        } else if (op.out_offset < 0) {
          backend::active().fake_quant(cur.p, n, op.skip_bits, inplace_ptr(cur));
        } else {
          float* dst = require_slot(op);
          backend::active().fake_quant(cur.p, n, op.skip_bits, dst);
          cur = View{dst, op.out_offset, cur.shape};
        }
        break;
      }
      case OpKind::kPushSkip:
        require_float(cur, "push-skip");
        if (op.skip_bits > 0) {
          // Eager skip quantization (v1/v2-era plans; v3 lowering defers it
          // to kQuantizeSkip so it can run in place).
          float* dst = require_slot(op);
          backend::active().fake_quant(cur.p, cur.shape.numel(), op.skip_bits,
                                    dst);
          skips.push_back(View{dst, op.out_offset, cur.shape});
        } else {
          skips.push_back(cur);  // alias — the planner keeps the slot live
        }
        break;
      case OpKind::kQuantizeSkip: {
        if (skips.empty()) {
          throw std::logic_error("infer: quantize-skip without a saved skip");
        }
        View& top = skips.back();
        require_float(top, "quantize-skip");
        const std::int64_t n = top.shape.numel();
        if (op.out_act_bits > 0) {
          if (op.out_act_qbits > 0) {
            // Downsample flavor: snap on the skip grid, then code on the
            // downsample conv's grid. A direct quantize is NOT exact here
            // even at equal bit-widths — the two grids' endpoints differ
            // in float.
            float* stg = ws.ensure_stage(n);
            backend::active().fake_quant(top.p, n, op.skip_bits, stg);
            top = pack_result(op, stg, top.shape, op.out_act_qbits);
          } else {
            // Identity flavor: self-coded at skip_bits; the residual add
            // dequantizes the codes back to the exact fake-quantized
            // floats.
            top = pack_result(op, top.p, top.shape, op.skip_bits);
          }
        } else if (op.out_offset < 0) {
          backend::active().fake_quant(top.p, n, op.skip_bits, inplace_ptr(top));
        } else {
          float* dst = require_slot(op);
          backend::active().fake_quant(top.p, n, op.skip_bits, dst);
          top = View{dst, op.out_offset, top.shape};
        }
        break;
      }
      case OpKind::kSkipGemm: {
        if (skips.empty()) {
          throw std::logic_error("infer: skip gemm without a saved skip");
        }
        run_gemm_op(op, skips.back());
        break;
      }
      case OpKind::kAddSkipRelu: {
        if (skips.empty()) {
          throw std::logic_error("infer: residual add without a saved skip");
        }
        const View top = skips.back();
        skips.pop_back();
        require_float(cur, "residual add (main operand)");
        check_add_shapes(cur.shape, top.shape);
        const std::int64_t n = cur.shape.numel();
        const std::int64_t C = cur.shape.dim(1);
        const std::int64_t hw = cur.shape.dim(2) * cur.shape.dim(3);
        const float* skip_p = top.p;
        if (top.packed) {
          // Self-coded skip value: expand + dequantize back to the exact
          // fake-quantized floats the float path would have stored. Raw
          // scratch, not stage — a packed add output needs stage below.
          float* sk = ws.ensure_raw(n);
          backend::active().dequantize(unpack_codes_of(top), n, top.aq, sk);
          skip_p = sk;
        }
        if (op.out_act_bits > 0) {
          float* stg = ws.ensure_stage(n);
          backend::active().residual_add(cur.p, skip_p, B, C, hw,
                                         op.mask_channels, stg);
          cur = pack_result(op, stg, cur.shape, op.out_act_qbits);
        } else if (op.out_offset < 0) {
          float* p = inplace_ptr(cur);
          backend::active().residual_add(p, skip_p, B, C, hw, op.mask_channels,
                                         p);
        } else {
          float* dst = require_slot(op);
          backend::active().residual_add(cur.p, skip_p, B, C, hw,
                                         op.mask_channels, dst);
          cur = View{dst, op.out_offset, cur.shape};
        }
        break;
      }
    }
  }

  require_float(cur, "the network output");
  if (out.shape() != cur.shape) out = Tensor(cur.shape);
  std::memcpy(out.data(), cur.p,
              static_cast<std::size_t>(cur.shape.numel()) * sizeof(float));
}

// The heap fallback: the pre-arena executor, one freshly allocated tensor
// per op. Shares every kernel with the arena path, so the two are
// bit-identical; used for v1/v2 plans (no memory plan), off-plan input
// shapes, and ADQ_ARENA=0.
Tensor IntInferenceEngine::forward_heap(const Tensor& x) const {
  auto weight_view = [this](int layer) {
    return exec_weight_view(plan_.layers[static_cast<std::size_t>(layer)],
                            exec_weights_[static_cast<std::size_t>(layer)]);
  };

  Tensor current = x;
  std::vector<Tensor> skip_stack;
  for (const OpPlan& op : plan_.ops) {
    switch (op.kind) {
      case OpKind::kGemm:
        current = run_layer_tensor(
            plan_.layers[static_cast<std::size_t>(op.layer)], current,
            weight_view(op.layer));
        break;
      case OpKind::kMaxPool: {
        const std::int64_t B = current.shape().dim(0),
                           C = current.shape().dim(1),
                           H = current.shape().dim(2),
                           W = current.shape().dim(3);
        Tensor out(Shape{B, C, (H - op.pool_kernel) / op.pool_stride + 1,
                         (W - op.pool_kernel) / op.pool_stride + 1});
        maxpool_forward(current.data(), B, C, H, W, op.pool_kernel,
                        op.pool_stride, out.data());
        current = std::move(out);
        break;
      }
      case OpKind::kGlobalAvgPool: {
        const std::int64_t B = current.shape().dim(0),
                           C = current.shape().dim(1);
        Tensor out(Shape{B, C});
        gap_forward(current.data(), B, C,
                    current.shape().dim(2) * current.shape().dim(3),
                    out.data());
        current = std::move(out);
        break;
      }
      case OpKind::kFlatten:
        current = current.reshaped(
            Shape{current.shape().dim(0),
                  current.numel() / current.shape().dim(0)});
        break;
      case OpKind::kReLU:
        current = relu(current);
        break;
      case OpKind::kPushSkip:
        skip_stack.push_back(op.skip_bits > 0
                                 ? fake_quantize_tensor(current, op.skip_bits)
                                 : current);
        break;
      case OpKind::kQuantizeSkip:
        if (skip_stack.empty()) {
          throw std::logic_error("infer: quantize-skip without a saved skip");
        }
        skip_stack.back() =
            fake_quantize_tensor(skip_stack.back(), op.skip_bits);
        break;
      case OpKind::kSkipGemm:
        if (skip_stack.empty()) {
          throw std::logic_error("infer: skip gemm without a saved skip");
        }
        skip_stack.back() = run_layer_tensor(
            plan_.layers[static_cast<std::size_t>(op.layer)],
            skip_stack.back(), weight_view(op.layer));
        break;
      case OpKind::kAddSkipRelu: {
        if (skip_stack.empty()) {
          throw std::logic_error("infer: residual add without a saved skip");
        }
        const Tensor& skip = skip_stack.back();
        check_add_shapes(current.shape(), skip.shape());
        backend::active().residual_add(
            current.data(), skip.data(), current.shape().dim(0),
            current.shape().dim(1),
            current.shape().dim(2) * current.shape().dim(3), op.mask_channels,
            current.data());
        skip_stack.pop_back();
        break;
      }
      case OpKind::kQuantize:
        current = fake_quantize_tensor(current, op.skip_bits);
        break;
    }
  }
  return current;
}

std::vector<std::int64_t> IntInferenceEngine::predict(const Tensor& x) const {
  return argmax_rows(forward(x));
}

}  // namespace adq::infer
