#include "infer/engine.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <string>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "quant/quantizer.h"
#include "tensor/bitpack.h"
#include "tensor/gemm.h"
#include "tensor/gemm_int8.h"
#include "tensor/im2col.h"
#include "tensor/ops.h"
#include "tensor/parallel.h"

namespace adq::infer {
namespace {

// Slab cap for the batched im2col lowering: a conv chunk never materialises
// more than this many patch-matrix bytes at once. Besides bounding
// transient memory for huge batches, the cap keeps the slab + accumulators
// inside L2 — one oversized chunk streams from L3 and costs more than the
// panel-packing amortization it buys (measured: a 2.4 MiB slab at batch 16
// serves ~15% slower than four cache-resident chunks of it).
constexpr std::int64_t kMaxSlabBytes = 768 << 10;

// Per-thread reusable scratch. Every buffer grows on demand and is reused
// across forward() calls, so a warm serving loop performs no allocations on
// the hot path; distinct threads get distinct scratch, which is what makes
// a shared engine safe under the server's worker pool.
struct EngineScratch {
  std::vector<std::uint8_t> act_codes;  // whole-batch activation codes
  std::vector<std::uint8_t> unpack;     // run_gemm_layer's weight view
  Im2colWorkspace lower;                // u8 / float patch-matrix slabs
  std::vector<std::int32_t> acc;        // GEMM accumulators
  std::vector<std::int32_t> row_sums;   // per-sample code sums (linear)
  std::vector<float> raw;               // float-path GEMM output

  std::int32_t* ensure_acc(std::int64_t n) {
    if (static_cast<std::int64_t>(acc.size()) < n) {
      acc.resize(static_cast<std::size_t>(n));
    }
    return acc.data();
  }
  float* ensure_raw(std::int64_t n) {
    if (static_cast<std::int64_t>(raw.size()) < n) {
      raw.resize(static_cast<std::size_t>(n));
    }
    return raw.data();
  }
};

EngineScratch& engine_scratch() {
  thread_local EngineScratch scratch;
  return scratch;
}

// One policy for how an integer layer's weights reach the GEMM — shared
// by the engine's construction-time cache and run_gemm_layer's standalone
// path, so the two can never diverge:
//   * integer convs materialise a [O+1, P] byte-per-code buffer whose
//     last row is all-ones (the GEMM then emits the per-column activation
//     code sums as its final accumulator row — see run_conv_int);
//   * sub-byte integer linears and depthwise convs materialise their
//     unpacked codes (no ones row — the depthwise loop sums its own
//     activation patches);
//   * 8-bit integer linears/depthwise read the plan's packed codes in place;
//   * float layers have no byte-code view at all.
bool needs_exec_buffer(const GemmLayerPlan& l) {
  return l.path == ExecPath::kInteger &&
         ((l.is_conv && !l.is_depthwise) || l.cell_bits != 8);
}

void build_exec_codes(const GemmLayerPlan& l, std::vector<std::uint8_t>& out) {
  const std::int64_t count = l.out_channels * l.patch();
  const std::int64_t total =
      l.is_conv && !l.is_depthwise ? count + l.patch() : count;
  if (static_cast<std::int64_t>(out.size()) < total) {
    out.resize(static_cast<std::size_t>(total));
  }
  if (l.cell_bits == 8) {
    std::copy(l.weight_codes.begin(), l.weight_codes.end(), out.begin());
  } else {
    unpack_codes(l.weight_codes.data(), count, l.cell_bits, out.data());
  }
  if (l.is_conv && !l.is_depthwise) {
    std::fill(out.begin() + count, out.begin() + total, 1);
  }
}

const std::uint8_t* exec_weight_view(const GemmLayerPlan& l,
                                     const std::vector<std::uint8_t>& buffer) {
  if (l.path != ExecPath::kInteger) return nullptr;
  return needs_exec_buffer(l) ? buffer.data() : l.weight_codes.data();
}

// Observed dynamic range of an activation tensor quantized to eqn-1 codes —
// the same observation FakeQuantizer::apply makes on this tensor in the
// training path, so code -> value round-trips land on the same grid. Codes
// are written into `codes` (grown on demand, first numel() entries valid).
struct ActRange {
  float a_min = 0.0f;
  float a_scale = 0.0f;        // 0 for a degenerate (constant) tensor
  std::uint8_t zero_code = 0;  // grid code closest to the value 0.0 (padding)
};

ActRange quantize_activations(const Tensor& x, int bits,
                              std::vector<std::uint8_t>& codes) {
  ActRange q;
  const std::int64_t n = x.numel();
  if (static_cast<std::int64_t>(codes.size()) < n) {
    codes.resize(static_cast<std::size_t>(n));
  }
  if (n == 0) return q;
  // Fused single-pass min/max over four independent accumulator lanes:
  // std::min/max reductions cannot be auto-vectorised (NaN ordering), so
  // the lanes buy instruction-level parallelism instead of a second and
  // third pass over the activations.
  const float* px0 = x.data();
  float lo0 = px0[0], lo1 = px0[0], lo2 = px0[0], lo3 = px0[0];
  float hi0 = px0[0], hi1 = px0[0], hi2 = px0[0], hi3 = px0[0];
  std::int64_t i4 = 0;
  for (; i4 + 4 <= n; i4 += 4) {
    lo0 = std::min(lo0, px0[i4]);
    hi0 = std::max(hi0, px0[i4]);
    lo1 = std::min(lo1, px0[i4 + 1]);
    hi1 = std::max(hi1, px0[i4 + 1]);
    lo2 = std::min(lo2, px0[i4 + 2]);
    hi2 = std::max(hi2, px0[i4 + 2]);
    lo3 = std::min(lo3, px0[i4 + 3]);
    hi3 = std::max(hi3, px0[i4 + 3]);
  }
  float lo = std::min(std::min(lo0, lo1), std::min(lo2, lo3));
  float hi = std::max(std::max(hi0, hi1), std::max(hi2, hi3));
  for (; i4 < n; ++i4) {
    lo = std::min(lo, px0[i4]);
    hi = std::max(hi, px0[i4]);
  }
  q.a_min = lo;
  if (hi <= lo) {  // constant tensor: every code 0, value = a_min
    std::fill(codes.begin(), codes.begin() + n, 0);
    return q;
  }

  const float levels = static_cast<float>(quant::max_code(bits));
  q.a_scale = (hi - lo) / levels;
  const float inv = levels / (hi - lo);
  const float* px = x.data();
  std::uint8_t* pc = codes.data();
  // Rounding via the 1.5 * 2^23 magic constant: adding it forces the
  // scaled value (in [0, 255]) to round to nearest-even into the low
  // mantissa bits — bit-identical to the std::nearbyint the FakeQuantizer
  // applies under the default FP environment, but a pure add, which lets
  // the SSE2 path below encode 16 activations per iteration where
  // nearbyint is a scalar libm call at baseline -O3.
  constexpr float kRoundMagic = 12582912.0f;
  std::uint32_t magic_bits;
  std::memcpy(&magic_bits, &kRoundMagic, sizeof(magic_bits));
  parallel_for(0, n, [&](std::int64_t b, std::int64_t e) {
    std::int64_t i = b;
#if defined(__SSE2__)
    const __m128 vlo = _mm_set1_ps(lo), vhi = _mm_set1_ps(hi);
    const __m128 vinv = _mm_set1_ps(inv), vmagic = _mm_set1_ps(kRoundMagic);
    const __m128i vmbits = _mm_set1_epi32(static_cast<int>(magic_bits));
    for (; i + 16 <= e; i += 16) {
      __m128i q[4];
      for (int part = 0; part < 4; ++part) {
        __m128 v = _mm_loadu_ps(px + i + 4 * part);
        v = _mm_min_ps(_mm_max_ps(v, vlo), vhi);
        v = _mm_add_ps(_mm_mul_ps(_mm_sub_ps(v, vlo), vinv), vmagic);
        q[part] = _mm_sub_epi32(_mm_castps_si128(v), vmbits);
      }
      // Codes are in [0, 255], so the signed saturating packs are exact.
      const __m128i lo16 = _mm_packs_epi32(q[0], q[1]);
      const __m128i hi16 = _mm_packs_epi32(q[2], q[3]);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(pc + i),
                       _mm_packus_epi16(lo16, hi16));
    }
#endif
    for (; i < e; ++i) {
      const float v = std::clamp(px[i], lo, hi);
      const float t = (v - lo) * inv + kRoundMagic;
      std::uint32_t bits_t;
      std::memcpy(&bits_t, &t, sizeof(bits_t));
      pc[i] = static_cast<std::uint8_t>(bits_t - magic_bits);
    }
  }, /*grain=*/4096);
  const float zero = std::clamp(0.0f, lo, hi);
  q.zero_code = static_cast<std::uint8_t>(std::nearbyint((zero - lo) * inv));
  return q;
}

// Fused epilogue over one output row (channel o, `n` positions):
//   y = epi_scale[o] * (ss * acc + row_term + ca * colsum) + epi_shift[o]
// with the optional ReLU. `colsum` may be null when ca == 0.
void epilogue_row(const GemmLayerPlan& l, std::int64_t o,
                  const std::int32_t* acc, const std::int32_t* colsum,
                  float ss, float row_term, float ca, std::int64_t n,
                  float* out) {
  const float ea = l.epi_scale[static_cast<std::size_t>(o)];
  const float eb = l.epi_shift[static_cast<std::size_t>(o)];
  if (o >= l.active_out) {
    std::fill(out, out + n, 0.0f);
    return;
  }
  for (std::int64_t s = 0; s < n; ++s) {
    float v = ss * static_cast<float>(acc[s]) + row_term;
    if (colsum != nullptr) v += ca * static_cast<float>(colsum[s]);
    v = ea * v + eb;
    out[s] = l.relu ? std::max(v, 0.0f) : v;
  }
}

ConvGeometry conv_geometry(const GemmLayerPlan& l, std::int64_t h,
                           std::int64_t w) {
  ConvGeometry g;
  g.channels = l.in_channels;
  g.in_h = h;
  g.in_w = w;
  g.kernel_h = l.kernel;
  g.kernel_w = l.kernel;
  g.stride = l.stride;
  g.pad = l.pad;
  return g;
}

// Integer conv over the whole batch: each chunk of images lowers into
// adjacent column blocks of ONE [P, chunk*ohw] slab and runs as a single
// GEMM. Weight panels therefore pack once per chunk instead of once per
// image, and deep layers with tiny spatial outputs (ohw of 4 or 16) fill
// complete 16-wide micro-tiles — this is where batched serving beats
// request-at-a-time execution even on one core.
//
// `wc` is the [O+1, P] execution view of the weights (see
// conv_exec_codes): rows 0..O-1 are the byte-per-code weight rows, row O
// is all-ones, so GEMM row O comes out as the per-column activation code
// sum the zero-point correction needs — computed at full kernel speed
// instead of a separate scalar pass over the slab.
Tensor run_conv_int(const GemmLayerPlan& l, const Tensor& x,
                    const std::uint8_t* wc) {
  const std::int64_t B = x.shape().dim(0);
  const std::int64_t H = x.shape().dim(2), W = x.shape().dim(3);
  const ConvGeometry g = conv_geometry(l, H, W);
  const std::int64_t oh = g.out_h(), ow = g.out_w(), ohw = oh * ow;
  const std::int64_t O = l.out_channels, P = l.patch();
  const std::int64_t chw = l.in_channels * H * W;

  EngineScratch& ws = engine_scratch();
  const ActRange qa = quantize_activations(x, l.bits, ws.act_codes);
  const std::uint8_t* act = ws.act_codes.data();

  // Affine-correction constants (see plan.h): per-row term uses the weight
  // code sums, per-column term the activation column sums.
  const float ss = qa.a_scale * l.w_scale;
  const float cw = qa.a_min * l.w_scale;   // * w_code_sums[o]
  const float ca = l.w_min * qa.a_scale;   // * colsum[s]
  const float cc = static_cast<float>(P) * qa.a_min * l.w_min;

  Tensor out(Shape{B, O, oh, ow});
  const std::int64_t max_chunk = std::max<std::int64_t>(
      1, kMaxSlabBytes / std::max<std::int64_t>(1, P * ohw));
  for (std::int64_t b0 = 0; b0 < B; b0 += max_chunk) {
    const std::int64_t bc = std::min(max_chunk, B - b0);
    const std::int64_t cols = bc * ohw;
    std::uint8_t* col = ws.lower.ensure_u8(P * cols);
    parallel_for(0, bc, [&](std::int64_t i0, std::int64_t i1) {
      for (std::int64_t i = i0; i < i1; ++i) {
        im2col_u8(act + (b0 + i) * chw, g, col + i * ohw, cols, qa.zero_code);
      }
    });
    std::int32_t* acc = ws.ensure_acc((O + 1) * cols);
    igemm_u8(O + 1, cols, P, wc, P, col, cols, acc, cols);
    const std::int32_t* colsum = acc + O * cols;  // the all-ones weight row
    // Fused epilogue, channel-parallel, scattering chunk columns back into
    // the [B, O, oh, ow] layout. Grain keeps tiny layers serial.
    const std::int64_t grain =
        std::max<std::int64_t>(1, 16384 / std::max<std::int64_t>(1, cols));
    parallel_for(0, O, [&](std::int64_t o0, std::int64_t o1) {
      for (std::int64_t o = o0; o < o1; ++o) {
        const float row_term =
            cw * static_cast<float>(
                     l.w_code_sums[static_cast<std::size_t>(o)]) +
            cc;
        for (std::int64_t i = 0; i < bc; ++i) {
          epilogue_row(l, o, acc + o * cols + i * ohw, colsum + i * ohw, ss,
                       row_term, ca, ohw, out.data() + ((b0 + i) * O + o) * ohw);
        }
      }
    }, grain);
  }
  return out;
}

Tensor run_conv_float(const GemmLayerPlan& l, const Tensor& x) {
  const std::int64_t B = x.shape().dim(0);
  const std::int64_t H = x.shape().dim(2), W = x.shape().dim(3);
  const ConvGeometry g = conv_geometry(l, H, W);
  const std::int64_t oh = g.out_h(), ow = g.out_w(), ohw = oh * ow;
  const std::int64_t O = l.out_channels, P = l.patch();
  const std::int64_t chw = l.in_channels * H * W;

  const Tensor xq = l.quantize_input ? quant::fake_quantize(x, l.bits) : x;
  Tensor out(Shape{B, O, oh, ow});
  parallel_for(0, B, [&](std::int64_t b0, std::int64_t b1) {
    EngineScratch& tws = engine_scratch();
    float* col = tws.lower.ensure_f32(P * ohw);
    float* raw = tws.ensure_raw(O * ohw);
    for (std::int64_t b = b0; b < b1; ++b) {
      im2col(xq.data() + b * chw, g, col);
      sgemm(false, false, O, ohw, P, 1.0f, l.weight_f.data(), P, col, ohw,
            0.0f, raw, ohw);
      float* out_b = out.data() + b * O * ohw;
      for (std::int64_t o = 0; o < O; ++o) {
        const float ea = l.epi_scale[static_cast<std::size_t>(o)];
        const float eb = l.epi_shift[static_cast<std::size_t>(o)];
        float* dst = out_b + o * ohw;
        if (o >= l.active_out) {
          std::fill(dst, dst + ohw, 0.0f);
          continue;
        }
        const float* src = raw + o * ohw;
        for (std::int64_t s = 0; s < ohw; ++s) {
          const float v = ea * src[s] + eb;
          dst[s] = l.relu ? std::max(v, 0.0f) : v;
        }
      }
    }
  });
  return out;
}

// Integer depthwise conv: each output channel reduces only its own input
// plane over kernel^2 taps, so there is no GEMM to amortise — a direct
// loop over the quantized codes with the same per-channel zero-point
// correction as the GEMM path (plan.h, K = kernel^2). Padding taps use the
// grid code closest to 0.0, exactly like im2col_u8's padding.
Tensor run_depthwise_int(const GemmLayerPlan& l, const Tensor& x,
                         const std::uint8_t* wc) {
  const std::int64_t B = x.shape().dim(0);
  const std::int64_t C = l.out_channels;
  const std::int64_t H = x.shape().dim(2), W = x.shape().dim(3);
  const ConvGeometry g = conv_geometry(l, H, W);
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  const std::int64_t k = l.kernel, stride = l.stride, pad = l.pad;

  EngineScratch& ws = engine_scratch();
  const ActRange qa = quantize_activations(x, l.bits, ws.act_codes);
  const std::uint8_t* act = ws.act_codes.data();

  const float ss = qa.a_scale * l.w_scale;
  const float cw = qa.a_min * l.w_scale;  // * w_code_sums[c]
  const float ca = l.w_min * qa.a_scale;  // * patch activation-code sum
  const float cc = static_cast<float>(k * k) * qa.a_min * l.w_min;

  Tensor out(Shape{B, C, oh, ow});
  parallel_for(0, B * C, [&](std::int64_t p0, std::int64_t p1) {
    for (std::int64_t p = p0; p < p1; ++p) {
      const std::int64_t c = p % C;
      float* dst = out.data() + p * oh * ow;
      if (c >= l.active_out) {
        std::fill(dst, dst + oh * ow, 0.0f);
        continue;
      }
      const std::uint8_t* plane = act + p * H * W;
      const std::uint8_t* w = wc + c * k * k;
      const float row_term =
          cw * static_cast<float>(l.w_code_sums[static_cast<std::size_t>(c)]) +
          cc;
      const float ea = l.epi_scale[static_cast<std::size_t>(c)];
      const float eb = l.epi_shift[static_cast<std::size_t>(c)];
      for (std::int64_t y = 0; y < oh; ++y) {
        for (std::int64_t xo = 0; xo < ow; ++xo) {
          std::int32_t acc = 0, asum = 0;
          for (std::int64_t ky = 0; ky < k; ++ky) {
            const std::int64_t iy = y * stride + ky - pad;
            for (std::int64_t kx = 0; kx < k; ++kx) {
              const std::int64_t ix = xo * stride + kx - pad;
              const std::int32_t code =
                  (iy < 0 || iy >= H || ix < 0 || ix >= W)
                      ? qa.zero_code
                      : plane[iy * W + ix];
              acc += static_cast<std::int32_t>(w[ky * k + kx]) * code;
              asum += code;
            }
          }
          float v = ss * static_cast<float>(acc) + row_term +
                    ca * static_cast<float>(asum);
          v = ea * v + eb;
          dst[y * ow + xo] = l.relu ? std::max(v, 0.0f) : v;
        }
      }
    }
  });
  return out;
}

Tensor run_depthwise_float(const GemmLayerPlan& l, const Tensor& x) {
  const std::int64_t B = x.shape().dim(0);
  const std::int64_t C = l.out_channels;
  const std::int64_t H = x.shape().dim(2), W = x.shape().dim(3);
  const ConvGeometry g = conv_geometry(l, H, W);
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  const std::int64_t k = l.kernel, stride = l.stride, pad = l.pad;

  const Tensor xq = l.quantize_input ? quant::fake_quantize(x, l.bits) : x;
  Tensor out(Shape{B, C, oh, ow});
  parallel_for(0, B * C, [&](std::int64_t p0, std::int64_t p1) {
    for (std::int64_t p = p0; p < p1; ++p) {
      const std::int64_t c = p % C;
      float* dst = out.data() + p * oh * ow;
      if (c >= l.active_out) {
        std::fill(dst, dst + oh * ow, 0.0f);
        continue;
      }
      const float* plane = xq.data() + p * H * W;
      const float* w = l.weight_f.data() + c * k * k;
      const float ea = l.epi_scale[static_cast<std::size_t>(c)];
      const float eb = l.epi_shift[static_cast<std::size_t>(c)];
      for (std::int64_t y = 0; y < oh; ++y) {
        for (std::int64_t xo = 0; xo < ow; ++xo) {
          float acc = 0.0f;
          for (std::int64_t ky = 0; ky < k; ++ky) {
            const std::int64_t iy = y * stride + ky - pad;
            if (iy < 0 || iy >= H) continue;
            for (std::int64_t kx = 0; kx < k; ++kx) {
              const std::int64_t ix = xo * stride + kx - pad;
              if (ix < 0 || ix >= W) continue;
              acc += w[ky * k + kx] * plane[iy * W + ix];
            }
          }
          const float v = ea * acc + eb;
          dst[y * ow + xo] = l.relu ? std::max(v, 0.0f) : v;
        }
      }
    }
  });
  return out;
}

Tensor run_linear_int(const GemmLayerPlan& l, const Tensor& x,
                      const std::uint8_t* wt) {
  const std::int64_t B = x.shape().dim(0);
  const std::int64_t in = l.in_channels, O = l.out_channels;

  EngineScratch& ws = engine_scratch();
  const ActRange qa = quantize_activations(x, l.bits, ws.act_codes);

  if (static_cast<std::int64_t>(ws.row_sums.size()) < B) {
    ws.row_sums.resize(static_cast<std::size_t>(B));
  }
  for (std::int64_t b = 0; b < B; ++b) {
    std::int32_t s = 0;
    const std::uint8_t* row = ws.act_codes.data() + b * in;
    for (std::int64_t i = 0; i < in; ++i) s += row[i];
    ws.row_sums[static_cast<std::size_t>(b)] = s;
  }

  std::int32_t* acc = ws.ensure_acc(B * O);
  igemm_u8(B, O, in, ws.act_codes.data(), in, wt, O, acc, O);

  const float ss = qa.a_scale * l.w_scale;
  const float cw = qa.a_min * l.w_scale;   // * w_code_sums[o]
  const float ca = l.w_min * qa.a_scale;   // * row_sums[b]
  const float cc = static_cast<float>(in) * qa.a_min * l.w_min;

  Tensor out(Shape{B, O});
  for (std::int64_t b = 0; b < B; ++b) {
    const std::int32_t* ab = acc + b * O;
    float* ob = out.data() + b * O;
    const float sample_term =
        ca * static_cast<float>(ws.row_sums[static_cast<std::size_t>(b)]) + cc;
    for (std::int64_t o = 0; o < O; ++o) {
      if (o >= l.active_out) {
        ob[o] = 0.0f;
        continue;
      }
      const float v =
          l.epi_scale[static_cast<std::size_t>(o)] *
              (ss * static_cast<float>(ab[o]) +
               cw * static_cast<float>(l.w_code_sums[static_cast<std::size_t>(o)]) +
               sample_term) +
          l.epi_shift[static_cast<std::size_t>(o)];
      ob[o] = l.relu ? std::max(v, 0.0f) : v;
    }
  }
  return out;
}

Tensor run_linear_float(const GemmLayerPlan& l, const Tensor& x) {
  const std::int64_t B = x.shape().dim(0);
  const std::int64_t in = l.in_channels, O = l.out_channels;
  const Tensor xq = l.quantize_input ? quant::fake_quantize(x, l.bits) : x;
  Tensor out(Shape{B, O});
  // y[B, O] = x_q * W^T, like nn::Linear::forward.
  sgemm(false, true, B, O, in, 1.0f, xq.data(), in, l.weight_f.data(), in,
        0.0f, out.data(), O);
  for (std::int64_t b = 0; b < B; ++b) {
    float* ob = out.data() + b * O;
    for (std::int64_t o = 0; o < O; ++o) {
      if (o >= l.active_out) {
        ob[o] = 0.0f;
        continue;
      }
      const float v = l.epi_scale[static_cast<std::size_t>(o)] * ob[o] +
                      l.epi_shift[static_cast<std::size_t>(o)];
      ob[o] = l.relu ? std::max(v, 0.0f) : v;
    }
  }
  return out;
}

// Shared layer dispatch. `wc` is the byte-per-code weight view for integer
// layers (ignored on the float path).
Tensor run_layer(const GemmLayerPlan& layer, const Tensor& x,
                 const std::uint8_t* wc) {
  if (layer.is_conv) {
    if (x.shape().rank() != 4 || x.shape().dim(1) != layer.in_channels) {
      throw std::invalid_argument("infer: " + layer.name + " expected [B, " +
                                  std::to_string(layer.in_channels) +
                                  ", H, W], got " + x.shape().to_string());
    }
    if (layer.is_depthwise) {
      return layer.path == ExecPath::kInteger
                 ? run_depthwise_int(layer, x, wc)
                 : run_depthwise_float(layer, x);
    }
    return layer.path == ExecPath::kInteger ? run_conv_int(layer, x, wc)
                                            : run_conv_float(layer, x);
  }
  if (x.shape().rank() != 2 || x.shape().dim(1) != layer.in_channels) {
    throw std::invalid_argument("infer: " + layer.name + " expected [B, " +
                                std::to_string(layer.in_channels) +
                                "], got " + x.shape().to_string());
  }
  return layer.path == ExecPath::kInteger ? run_linear_int(layer, x, wc)
                                          : run_linear_float(layer, x);
}

// Inference-only max pool (nn::MaxPool2d caches backward state; the engine
// needs a stateless pass).
Tensor maxpool_forward(const Tensor& x, std::int64_t kernel,
                       std::int64_t stride) {
  const std::int64_t B = x.shape().dim(0), C = x.shape().dim(1);
  const std::int64_t H = x.shape().dim(2), W = x.shape().dim(3);
  const std::int64_t oh = (H - kernel) / stride + 1;
  const std::int64_t ow = (W - kernel) / stride + 1;
  Tensor out(Shape{B, C, oh, ow});
  parallel_for(0, B * C, [&](std::int64_t p0, std::int64_t p1) {
    for (std::int64_t p = p0; p < p1; ++p) {
      const float* plane = x.data() + p * H * W;
      float* dst = out.data() + p * oh * ow;
      for (std::int64_t y = 0; y < oh; ++y) {
        for (std::int64_t xo = 0; xo < ow; ++xo) {
          float best = -std::numeric_limits<float>::infinity();
          for (std::int64_t ky = 0; ky < kernel; ++ky) {
            const float* row = plane + (y * stride + ky) * W + xo * stride;
            for (std::int64_t kx = 0; kx < kernel; ++kx) {
              best = std::max(best, row[kx]);
            }
          }
          dst[y * ow + xo] = best;
        }
      }
    }
  });
  return out;
}

Tensor gap_forward(const Tensor& x) {
  const std::int64_t B = x.shape().dim(0), C = x.shape().dim(1);
  const std::int64_t hw = x.shape().dim(2) * x.shape().dim(3);
  Tensor out(Shape{B, C});
  for (std::int64_t p = 0; p < B * C; ++p) {
    const float* plane = x.data() + p * hw;
    float s = 0.0f;
    for (std::int64_t i = 0; i < hw; ++i) s += plane[i];
    out[p] = s / static_cast<float>(hw);
  }
  return out;
}

// current += skip, channels >= mask zeroed, then ReLU — the tail of a
// residual block, fused into one pass.
void add_mask_relu(Tensor& current, const Tensor& skip,
                   std::int64_t mask_channels) {
  if (current.shape() != skip.shape()) {
    throw std::invalid_argument("infer: residual add shape mismatch " +
                                current.shape().to_string() + " vs " +
                                skip.shape().to_string());
  }
  const std::int64_t B = current.shape().dim(0), C = current.shape().dim(1);
  const std::int64_t hw = current.shape().dim(2) * current.shape().dim(3);
  const std::int64_t live = mask_channels < 0 ? C : mask_channels;
  for (std::int64_t b = 0; b < B; ++b) {
    for (std::int64_t c = 0; c < C; ++c) {
      float* cur = current.data() + (b * C + c) * hw;
      if (c >= live) {
        std::fill(cur, cur + hw, 0.0f);
        continue;
      }
      const float* sk = skip.data() + (b * C + c) * hw;
      for (std::int64_t i = 0; i < hw; ++i) {
        cur[i] = std::max(cur[i] + sk[i], 0.0f);
      }
    }
  }
}

}  // namespace

Tensor run_gemm_layer(const GemmLayerPlan& layer, const Tensor& x) {
  // Standalone call without an engine: build the execution view into this
  // thread's scratch (the engine proper uses its construction-time cache).
  EngineScratch& ws = engine_scratch();
  if (needs_exec_buffer(layer)) build_exec_codes(layer, ws.unpack);
  return run_layer(layer, x, exec_weight_view(layer, ws.unpack));
}

IntInferenceEngine::IntInferenceEngine(InferencePlan plan)
    : plan_(std::move(plan)) {
  exec_codes_.resize(plan_.layers.size());
  for (std::size_t i = 0; i < plan_.layers.size(); ++i) {
    if (needs_exec_buffer(plan_.layers[i])) {
      build_exec_codes(plan_.layers[i], exec_codes_[i]);
    }
  }
}

Tensor IntInferenceEngine::forward(const Tensor& x) const {
  auto weight_view = [this](int layer) -> const std::uint8_t* {
    return exec_weight_view(plan_.layers[static_cast<std::size_t>(layer)],
                            exec_codes_[static_cast<std::size_t>(layer)]);
  };

  Tensor current = x;
  std::vector<Tensor> skip_stack;
  for (const OpPlan& op : plan_.ops) {
    switch (op.kind) {
      case OpKind::kGemm:
        current = run_layer(plan_.layers[static_cast<std::size_t>(op.layer)],
                            current, weight_view(op.layer));
        break;
      case OpKind::kMaxPool:
        current = maxpool_forward(current, op.pool_kernel, op.pool_stride);
        break;
      case OpKind::kGlobalAvgPool:
        current = gap_forward(current);
        break;
      case OpKind::kFlatten:
        current = current.reshaped(
            Shape{current.shape().dim(0),
                  current.numel() / current.shape().dim(0)});
        break;
      case OpKind::kReLU:
        current = relu(current);
        break;
      case OpKind::kPushSkip:
        skip_stack.push_back(op.skip_bits > 0
                                 ? quant::fake_quantize(current, op.skip_bits)
                                 : current);
        break;
      case OpKind::kSkipGemm:
        skip_stack.back() = run_layer(
            plan_.layers[static_cast<std::size_t>(op.layer)],
            skip_stack.back(), weight_view(op.layer));
        break;
      case OpKind::kAddSkipRelu:
        if (skip_stack.empty()) {
          throw std::logic_error("infer: residual add without a saved skip");
        }
        add_mask_relu(current, skip_stack.back(), op.mask_channels);
        skip_stack.pop_back();
        break;
      case OpKind::kQuantize:
        current = quant::fake_quantize(current, op.skip_bits);
        break;
    }
  }
  return current;
}

std::vector<std::int64_t> IntInferenceEngine::predict(const Tensor& x) const {
  return argmax_rows(forward(x));
}

}  // namespace adq::infer
