#include "infer/engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "quant/quantizer.h"
#include "tensor/bitpack.h"
#include "tensor/gemm.h"
#include "tensor/gemm_int8.h"
#include "tensor/im2col.h"
#include "tensor/ops.h"
#include "tensor/parallel.h"

namespace adq::infer {
namespace {

// Activation tensor quantized to eqn-1 codes with its per-batch dynamic
// range — the same observation FakeQuantizer::apply makes on this tensor in
// the training path, so code -> value round-trips land on the same grid.
struct QuantizedActivations {
  std::vector<std::uint8_t> codes;
  float a_min = 0.0f;
  float a_scale = 0.0f;     // 0 for a degenerate (constant) tensor
  std::uint8_t zero_code = 0;  // grid code closest to the value 0.0 (padding)
};

QuantizedActivations quantize_activations(const Tensor& x, int bits) {
  QuantizedActivations q;
  const std::int64_t n = x.numel();
  q.codes.assign(static_cast<std::size_t>(n), 0);
  const float lo = min_value(x), hi = max_value(x);
  q.a_min = lo;
  if (hi <= lo) return q;  // constant tensor: every code 0, value = a_min

  const float levels = static_cast<float>(quant::max_code(bits));
  q.a_scale = (hi - lo) / levels;
  const float inv = levels / (hi - lo);
  const float* px = x.data();
  std::uint8_t* pc = q.codes.data();
  parallel_for(0, n, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) {
      const float v = std::clamp(px[i], lo, hi);
      pc[i] = static_cast<std::uint8_t>(std::nearbyint((v - lo) * inv));
    }
  }, /*grain=*/4096);
  const float zero = std::clamp(0.0f, lo, hi);
  q.zero_code = static_cast<std::uint8_t>(std::nearbyint((zero - lo) * inv));
  return q;
}

// Unpacks sub-byte weight codes into a scratch buffer; 8-bit cells are used
// in place. Returns the pointer the GEMM should read.
const std::uint8_t* unpacked_weights(const GemmLayerPlan& l,
                                     std::vector<std::uint8_t>& scratch) {
  const std::int64_t count = l.out_channels * l.patch();
  if (l.cell_bits == 8) return l.weight_codes.data();
  scratch.resize(static_cast<std::size_t>(count));
  unpack_codes(l.weight_codes.data(), count, l.cell_bits, scratch.data());
  return scratch.data();
}

// Fused epilogue over one output row (channel o, `n` positions):
//   y = epi_scale[o] * (ss * acc + row_term + ca * colsum) + epi_shift[o]
// with the optional ReLU. `colsum` may be null when ca == 0.
void epilogue_row(const GemmLayerPlan& l, std::int64_t o,
                  const std::int32_t* acc, const std::int32_t* colsum,
                  float ss, float row_term, float ca, std::int64_t n,
                  float* out) {
  const float ea = l.epi_scale[static_cast<std::size_t>(o)];
  const float eb = l.epi_shift[static_cast<std::size_t>(o)];
  if (o >= l.active_out) {
    std::fill(out, out + n, 0.0f);
    return;
  }
  for (std::int64_t s = 0; s < n; ++s) {
    float v = ss * static_cast<float>(acc[s]) + row_term;
    if (colsum != nullptr) v += ca * static_cast<float>(colsum[s]);
    v = ea * v + eb;
    out[s] = l.relu ? std::max(v, 0.0f) : v;
  }
}

ConvGeometry conv_geometry(const GemmLayerPlan& l, std::int64_t h,
                           std::int64_t w) {
  ConvGeometry g;
  g.channels = l.in_channels;
  g.in_h = h;
  g.in_w = w;
  g.kernel_h = l.kernel;
  g.kernel_w = l.kernel;
  g.stride = l.stride;
  g.pad = l.pad;
  return g;
}

Tensor run_conv_int(const GemmLayerPlan& l, const Tensor& x) {
  const std::int64_t B = x.shape().dim(0);
  const std::int64_t H = x.shape().dim(2), W = x.shape().dim(3);
  const ConvGeometry g = conv_geometry(l, H, W);
  const std::int64_t oh = g.out_h(), ow = g.out_w(), ohw = oh * ow;
  const std::int64_t O = l.out_channels, P = l.patch();
  const std::int64_t chw = l.in_channels * H * W;

  const QuantizedActivations qa = quantize_activations(x, l.bits);
  std::vector<std::uint8_t> w_scratch;
  const std::uint8_t* wc = unpacked_weights(l, w_scratch);

  // Affine-correction constants (see plan.h): per-row term uses the weight
  // code sums, per-column term the activation column sums.
  const float ss = qa.a_scale * l.w_scale;
  const float cw = qa.a_min * l.w_scale;   // * w_code_sums[o]
  const float ca = l.w_min * qa.a_scale;   // * colsum[s]
  const float cc = static_cast<float>(P) * qa.a_min * l.w_min;

  Tensor out(Shape{B, O, oh, ow});
  parallel_for(0, B, [&](std::int64_t b0, std::int64_t b1) {
    std::vector<std::uint8_t> col(static_cast<std::size_t>(P * ohw));
    std::vector<std::int32_t> acc(static_cast<std::size_t>(O * ohw));
    std::vector<std::int32_t> colsum(static_cast<std::size_t>(ohw));
    for (std::int64_t b = b0; b < b1; ++b) {
      im2col_u8(qa.codes.data() + b * chw, g, col.data(), qa.zero_code);
      std::fill(colsum.begin(), colsum.end(), 0);
      for (std::int64_t r = 0; r < P; ++r) {
        const std::uint8_t* row = col.data() + r * ohw;
        for (std::int64_t s = 0; s < ohw; ++s) colsum[static_cast<std::size_t>(s)] += row[s];
      }
      igemm_u8(O, ohw, P, wc, P, col.data(), ohw, acc.data(), ohw);
      float* out_b = out.data() + b * O * ohw;
      for (std::int64_t o = 0; o < O; ++o) {
        const float row_term =
            cw * static_cast<float>(l.w_code_sums[static_cast<std::size_t>(o)]) + cc;
        epilogue_row(l, o, acc.data() + o * ohw, colsum.data(), ss, row_term,
                     ca, ohw, out_b + o * ohw);
      }
    }
  });
  return out;
}

Tensor run_conv_float(const GemmLayerPlan& l, const Tensor& x) {
  const std::int64_t B = x.shape().dim(0);
  const std::int64_t H = x.shape().dim(2), W = x.shape().dim(3);
  const ConvGeometry g = conv_geometry(l, H, W);
  const std::int64_t oh = g.out_h(), ow = g.out_w(), ohw = oh * ow;
  const std::int64_t O = l.out_channels, P = l.patch();
  const std::int64_t chw = l.in_channels * H * W;

  const Tensor xq = l.quantize_input ? quant::fake_quantize(x, l.bits) : x;
  Tensor out(Shape{B, O, oh, ow});
  parallel_for(0, B, [&](std::int64_t b0, std::int64_t b1) {
    std::vector<float> col(static_cast<std::size_t>(P * ohw));
    std::vector<float> raw(static_cast<std::size_t>(O * ohw));
    for (std::int64_t b = b0; b < b1; ++b) {
      im2col(xq.data() + b * chw, g, col.data());
      sgemm(false, false, O, ohw, P, 1.0f, l.weight_f.data(), P, col.data(),
            ohw, 0.0f, raw.data(), ohw);
      float* out_b = out.data() + b * O * ohw;
      for (std::int64_t o = 0; o < O; ++o) {
        const float ea = l.epi_scale[static_cast<std::size_t>(o)];
        const float eb = l.epi_shift[static_cast<std::size_t>(o)];
        float* dst = out_b + o * ohw;
        if (o >= l.active_out) {
          std::fill(dst, dst + ohw, 0.0f);
          continue;
        }
        const float* src = raw.data() + o * ohw;
        for (std::int64_t s = 0; s < ohw; ++s) {
          const float v = ea * src[s] + eb;
          dst[s] = l.relu ? std::max(v, 0.0f) : v;
        }
      }
    }
  });
  return out;
}

Tensor run_linear_int(const GemmLayerPlan& l, const Tensor& x) {
  const std::int64_t B = x.shape().dim(0);
  const std::int64_t in = l.in_channels, O = l.out_channels;

  const QuantizedActivations qa = quantize_activations(x, l.bits);
  std::vector<std::uint8_t> w_scratch;
  const std::uint8_t* wt = unpacked_weights(l, w_scratch);  // [in, O]

  std::vector<std::int32_t> row_sums(static_cast<std::size_t>(B), 0);
  for (std::int64_t b = 0; b < B; ++b) {
    std::int32_t s = 0;
    const std::uint8_t* row = qa.codes.data() + b * in;
    for (std::int64_t i = 0; i < in; ++i) s += row[i];
    row_sums[static_cast<std::size_t>(b)] = s;
  }

  std::vector<std::int32_t> acc(static_cast<std::size_t>(B * O));
  igemm_u8(B, O, in, qa.codes.data(), in, wt, O, acc.data(), O);

  const float ss = qa.a_scale * l.w_scale;
  const float cw = qa.a_min * l.w_scale;   // * w_code_sums[o]
  const float ca = l.w_min * qa.a_scale;   // * row_sums[b]
  const float cc = static_cast<float>(in) * qa.a_min * l.w_min;

  Tensor out(Shape{B, O});
  for (std::int64_t b = 0; b < B; ++b) {
    const std::int32_t* ab = acc.data() + b * O;
    float* ob = out.data() + b * O;
    const float sample_term =
        ca * static_cast<float>(row_sums[static_cast<std::size_t>(b)]) + cc;
    for (std::int64_t o = 0; o < O; ++o) {
      if (o >= l.active_out) {
        ob[o] = 0.0f;
        continue;
      }
      const float v =
          l.epi_scale[static_cast<std::size_t>(o)] *
              (ss * static_cast<float>(ab[o]) +
               cw * static_cast<float>(l.w_code_sums[static_cast<std::size_t>(o)]) +
               sample_term) +
          l.epi_shift[static_cast<std::size_t>(o)];
      ob[o] = l.relu ? std::max(v, 0.0f) : v;
    }
  }
  return out;
}

Tensor run_linear_float(const GemmLayerPlan& l, const Tensor& x) {
  const std::int64_t B = x.shape().dim(0);
  const std::int64_t in = l.in_channels, O = l.out_channels;
  const Tensor xq = l.quantize_input ? quant::fake_quantize(x, l.bits) : x;
  Tensor out(Shape{B, O});
  // y[B, O] = x_q * W^T, like nn::Linear::forward.
  sgemm(false, true, B, O, in, 1.0f, xq.data(), in, l.weight_f.data(), in,
        0.0f, out.data(), O);
  for (std::int64_t b = 0; b < B; ++b) {
    float* ob = out.data() + b * O;
    for (std::int64_t o = 0; o < O; ++o) {
      if (o >= l.active_out) {
        ob[o] = 0.0f;
        continue;
      }
      const float v = l.epi_scale[static_cast<std::size_t>(o)] * ob[o] +
                      l.epi_shift[static_cast<std::size_t>(o)];
      ob[o] = l.relu ? std::max(v, 0.0f) : v;
    }
  }
  return out;
}

// Inference-only max pool (nn::MaxPool2d caches backward state; the engine
// needs a stateless pass).
Tensor maxpool_forward(const Tensor& x, std::int64_t kernel,
                       std::int64_t stride) {
  const std::int64_t B = x.shape().dim(0), C = x.shape().dim(1);
  const std::int64_t H = x.shape().dim(2), W = x.shape().dim(3);
  const std::int64_t oh = (H - kernel) / stride + 1;
  const std::int64_t ow = (W - kernel) / stride + 1;
  Tensor out(Shape{B, C, oh, ow});
  parallel_for(0, B * C, [&](std::int64_t p0, std::int64_t p1) {
    for (std::int64_t p = p0; p < p1; ++p) {
      const float* plane = x.data() + p * H * W;
      float* dst = out.data() + p * oh * ow;
      for (std::int64_t y = 0; y < oh; ++y) {
        for (std::int64_t xo = 0; xo < ow; ++xo) {
          float best = -std::numeric_limits<float>::infinity();
          for (std::int64_t ky = 0; ky < kernel; ++ky) {
            const float* row = plane + (y * stride + ky) * W + xo * stride;
            for (std::int64_t kx = 0; kx < kernel; ++kx) {
              best = std::max(best, row[kx]);
            }
          }
          dst[y * ow + xo] = best;
        }
      }
    }
  });
  return out;
}

Tensor gap_forward(const Tensor& x) {
  const std::int64_t B = x.shape().dim(0), C = x.shape().dim(1);
  const std::int64_t hw = x.shape().dim(2) * x.shape().dim(3);
  Tensor out(Shape{B, C});
  for (std::int64_t p = 0; p < B * C; ++p) {
    const float* plane = x.data() + p * hw;
    float s = 0.0f;
    for (std::int64_t i = 0; i < hw; ++i) s += plane[i];
    out[p] = s / static_cast<float>(hw);
  }
  return out;
}

// current += skip, channels >= mask zeroed, then ReLU — the tail of a
// residual block, fused into one pass.
void add_mask_relu(Tensor& current, const Tensor& skip,
                   std::int64_t mask_channels) {
  if (current.shape() != skip.shape()) {
    throw std::invalid_argument("infer: residual add shape mismatch " +
                                current.shape().to_string() + " vs " +
                                skip.shape().to_string());
  }
  const std::int64_t B = current.shape().dim(0), C = current.shape().dim(1);
  const std::int64_t hw = current.shape().dim(2) * current.shape().dim(3);
  const std::int64_t live = mask_channels < 0 ? C : mask_channels;
  for (std::int64_t b = 0; b < B; ++b) {
    for (std::int64_t c = 0; c < C; ++c) {
      float* cur = current.data() + (b * C + c) * hw;
      if (c >= live) {
        std::fill(cur, cur + hw, 0.0f);
        continue;
      }
      const float* sk = skip.data() + (b * C + c) * hw;
      for (std::int64_t i = 0; i < hw; ++i) {
        cur[i] = std::max(cur[i] + sk[i], 0.0f);
      }
    }
  }
}

}  // namespace

Tensor run_gemm_layer(const GemmLayerPlan& layer, const Tensor& x) {
  if (layer.is_conv) {
    if (x.shape().rank() != 4 || x.shape().dim(1) != layer.in_channels) {
      throw std::invalid_argument("infer: " + layer.name + " expected [B, " +
                                  std::to_string(layer.in_channels) +
                                  ", H, W], got " + x.shape().to_string());
    }
    return layer.path == ExecPath::kInteger ? run_conv_int(layer, x)
                                            : run_conv_float(layer, x);
  }
  if (x.shape().rank() != 2 || x.shape().dim(1) != layer.in_channels) {
    throw std::invalid_argument("infer: " + layer.name + " expected [B, " +
                                std::to_string(layer.in_channels) +
                                "], got " + x.shape().to_string());
  }
  return layer.path == ExecPath::kInteger ? run_linear_int(layer, x)
                                          : run_linear_float(layer, x);
}

Tensor IntInferenceEngine::forward(const Tensor& x) const {
  Tensor current = x;
  std::vector<Tensor> skip_stack;
  for (const OpPlan& op : plan_.ops) {
    switch (op.kind) {
      case OpKind::kGemm:
        current = run_gemm_layer(
            plan_.layers[static_cast<std::size_t>(op.layer)], current);
        break;
      case OpKind::kMaxPool:
        current = maxpool_forward(current, op.pool_kernel, op.pool_stride);
        break;
      case OpKind::kGlobalAvgPool:
        current = gap_forward(current);
        break;
      case OpKind::kFlatten:
        current = current.reshaped(
            Shape{current.shape().dim(0),
                  current.numel() / current.shape().dim(0)});
        break;
      case OpKind::kReLU:
        current = relu(current);
        break;
      case OpKind::kPushSkip:
        skip_stack.push_back(op.skip_bits > 0
                                 ? quant::fake_quantize(current, op.skip_bits)
                                 : current);
        break;
      case OpKind::kSkipGemm:
        skip_stack.back() = run_gemm_layer(
            plan_.layers[static_cast<std::size_t>(op.layer)],
            skip_stack.back());
        break;
      case OpKind::kAddSkipRelu:
        if (skip_stack.empty()) {
          throw std::logic_error("infer: residual add without a saved skip");
        }
        add_mask_relu(current, skip_stack.back(), op.mask_channels);
        skip_stack.pop_back();
        break;
    }
  }
  return current;
}

std::vector<std::int64_t> IntInferenceEngine::predict(const Tensor& x) const {
  return argmax_rows(forward(x));
}

}  // namespace adq::infer
