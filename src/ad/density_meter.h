// Activation Density instrumentation — paper eqn (2).
//
//   AD = (# nonzero activations) / (# total activations)
//
// A DensityMeter is attached to the post-ReLU output of each quantizable
// layer. During an epoch it accumulates nonzero/total counts over every
// batch; commit_epoch() folds the epoch value into a history that the
// SaturationDetector and the eqn-3 bit-width update consume.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace adq::ad {

class DensityMeter {
 public:
  explicit DensityMeter(std::string name = "") : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Accumulates counts from one activation tensor (one batch).
  void observe(const Tensor& activations);

  /// Accumulates pre-computed counts (used by composite layers).
  void observe_counts(std::int64_t nonzero, std::int64_t total);

  /// AD of the data observed since the last commit; 0 if nothing observed.
  double current_density() const;

  std::int64_t observed_nonzero() const { return nonzero_; }
  std::int64_t observed_total() const { return total_; }

  /// Pushes the epoch's AD into the history and resets the accumulators.
  /// Returns the committed value.
  double commit_epoch();

  /// One entry per committed epoch.
  const std::vector<double>& history() const { return history_; }

  /// Most recent committed AD (falls back to current_density() when no epoch
  /// has been committed yet).
  double latest() const;

  /// Clears history and accumulators (used when a new quantization iteration
  /// starts and stale densities must not leak across iterations).
  void reset();

  /// Enables/disables observation (metering can be turned off in eval).
  void set_active(bool active) { active_ = active; }
  bool active() const { return active_; }

 private:
  std::string name_;
  bool active_ = true;
  std::int64_t nonzero_ = 0;
  std::int64_t total_ = 0;
  std::vector<double> history_;
};

}  // namespace adq::ad
