// Activation-storage cell policy driven by Activation Density (eqn 2).
//
// The memory planner can store an activation value as packed k-bit
// quantize codes instead of float words whenever every consumer is an
// integer GEMM on one common grid — the codes are exactly what the
// consumer's own quantize_act would compute, so the transform is lossless
// at any cell width. The only freedom is the STORAGE cell: the natural
// cell for a k-bit grid (cell_bits_for(k)), or a conservative 8-bit cell
// (one code per byte, no sub-byte packing step).
//
// This header is the AD pipeline's say in that choice: a layer whose
// density meter reports a dense post-ReLU output (most codes far from the
// grid floor) gains little from the tighter cell relative to the
// pack/unpack traffic it adds, so dense producers fall back to byte cells;
// sparse producers — the regime the paper's eqn-3 bit descent targets —
// take the sub-byte cell and shrink their arena slot by up to 4x more.
#pragma once

namespace adq::ad {

/// Default density above which a producer's activations count as dense and
/// its storage falls back to 8-bit cells.
inline constexpr double kDenseActivationThreshold = 0.5;

/// Picks the storage cell width for a packed activation value.
///   consumer_cell    natural cell of the consuming GEMM's grid, one of
///                    {1, 2, 4, 8} (cell_bits_for of the grid bits)
///   producer_density latest committed AD of the producing unit, or a
///                    negative value when no density has been observed
///   dense_threshold  densities strictly above this fall back to 8
/// Returns consumer_cell for sparse or unmetered producers, 8 for dense
/// ones. The choice never affects numerics — only slot size and the
/// presence of a sub-byte pack/unpack step.
int choose_act_cell(int consumer_cell, double producer_density,
                    double dense_threshold = kDenseActivationThreshold);

}  // namespace adq::ad
