#include "ad/act_bits.h"

namespace adq::ad {

int choose_act_cell(int consumer_cell, double producer_density,
                    double dense_threshold) {
  if (consumer_cell >= 8) return 8;
  // Unknown density (no meter observation) keeps the natural cell: the
  // fallback exists to dodge pack traffic on provably dense layers, not to
  // penalise untrained or unmetered graphs.
  if (producer_density > dense_threshold) return 8;
  return consumer_cell;
}

}  // namespace adq::ad
