// Saturation test for Activation Density histories.
//
// Algorithm 1 breaks a training iteration once "AD is saturated for all
// layers". We operationalise saturation as: over the last `window` epochs,
// the peak-to-peak spread of a layer's AD is below `tolerance` (absolute AD
// units). The window/tolerance pair is one of the ablation knobs DESIGN.md
// calls out — it trades epochs-per-iteration against premature bit drops.
#pragma once

#include <vector>

namespace adq::ad {

class SaturationDetector {
 public:
  SaturationDetector(int window = 5, double tolerance = 0.01)
      : window_(window), tolerance_(tolerance) {}

  int window() const { return window_; }
  double tolerance() const { return tolerance_; }

  /// True when the last `window` entries of `history` span less than
  /// `tolerance`. Histories shorter than the window are never saturated.
  bool is_saturated(const std::vector<double>& history) const;

  /// True when every history is saturated (the all-layers break condition).
  bool all_saturated(const std::vector<std::vector<double>>& histories) const;

 private:
  int window_;
  double tolerance_;
};

}  // namespace adq::ad
