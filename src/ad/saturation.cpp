#include "ad/saturation.h"

#include <algorithm>

namespace adq::ad {

bool SaturationDetector::is_saturated(const std::vector<double>& history) const {
  if (static_cast<int>(history.size()) < window_) return false;
  const auto tail_begin = history.end() - window_;
  const auto [lo, hi] = std::minmax_element(tail_begin, history.end());
  return (*hi - *lo) < tolerance_;
}

bool SaturationDetector::all_saturated(
    const std::vector<std::vector<double>>& histories) const {
  return std::all_of(histories.begin(), histories.end(),
                     [this](const std::vector<double>& h) { return is_saturated(h); });
}

}  // namespace adq::ad
