#include "ad/density_meter.h"

#include "tensor/ops.h"

namespace adq::ad {

void DensityMeter::observe(const Tensor& activations) {
  if (!active_) return;
  nonzero_ += count_nonzero(activations);
  total_ += activations.numel();
}

void DensityMeter::observe_counts(std::int64_t nonzero, std::int64_t total) {
  if (!active_) return;
  nonzero_ += nonzero;
  total_ += total;
}

double DensityMeter::current_density() const {
  return total_ == 0 ? 0.0 : static_cast<double>(nonzero_) / static_cast<double>(total_);
}

double DensityMeter::commit_epoch() {
  const double d = current_density();
  history_.push_back(d);
  nonzero_ = 0;
  total_ = 0;
  return d;
}

double DensityMeter::latest() const {
  return history_.empty() ? current_density() : history_.back();
}

void DensityMeter::reset() {
  nonzero_ = 0;
  total_ = 0;
  history_.clear();
}

}  // namespace adq::ad
