// Model importer: lowers a trained QuantizableModel's nn::Sequential into
// the graph IR.
//
// This is the ONLY place that inspects concrete nn layer types; everything
// downstream (passes, lowering) operates on NodeKind. The builder is
// deliberately naive — it emits the *unfused* dataflow exactly as the
// training forward executes it:
//
//   * every quantizing conv/linear gets an explicit kQuantize node in front
//     of it (the layer's input fake-quantizer made visible as dataflow);
//   * BatchNorm and ReLU stay standalone nodes;
//   * a ResidualBlock flattens into explicit branch + add nodes: the skip
//     quantizer (Fig 2: destination precision), the optional downsample
//     conv/BN on the skip edge, and a mask-carrying kAdd join;
//   * a bypassed conv (Table II iter 2a removed unit) contributes no node —
//     it is an identity in the training graph too.
//
// The legalization passes (graph/passes.h) then fold/fuse/elide that naive
// graph into what the integer engine executes.
#pragma once

#include "graph/graph.h"

namespace adq::models {
class QuantizableModel;
}

namespace adq::graph {

/// Builds the unfused dataflow graph. The input value type is taken from
/// `input`; the overload without it derives [C, N, N] from the model spec's
/// first layer.
Graph build_from_model(models::QuantizableModel& model, const ValueType& input);
Graph build_from_model(models::QuantizableModel& model);

}  // namespace adq::graph
