#include "graph/graph.h"

#include <sstream>
#include <stdexcept>

namespace adq::graph {

const char* kind_name(NodeKind kind) {
  switch (kind) {
    case NodeKind::kInput: return "input";
    case NodeKind::kConv: return "conv";
    case NodeKind::kDepthwiseConv: return "dwconv";
    case NodeKind::kLinear: return "linear";
    case NodeKind::kBatchNorm: return "batchnorm";
    case NodeKind::kReLU: return "relu";
    case NodeKind::kMaxPool: return "maxpool";
    case NodeKind::kGlobalAvgPool: return "gap";
    case NodeKind::kFlatten: return "flatten";
    case NodeKind::kQuantize: return "quantize";
    case NodeKind::kAdd: return "add";
    case NodeKind::kOutput: return "output";
  }
  return "?";
}

std::string ValueType::to_string() const {
  std::ostringstream s;
  switch (rank) {
    case 0: s << "?"; break;
    case 1: s << "[" << channels << "]"; break;
    default: s << "[" << channels << ", " << height << ", " << width << "]";
  }
  return s.str();
}

int Graph::add(Node node) {
  nodes_.push_back(std::move(node));
  return static_cast<int>(nodes_.size()) - 1;
}

int Graph::live_count() const {
  int n = 0;
  for (const Node& node : nodes_) n += !node.dead;
  return n;
}

std::vector<int> Graph::consumers(int id) const {
  std::vector<int> out;
  for (int i = 0; i < size(); ++i) {
    const Node& n = at(i);
    if (n.dead) continue;
    for (int in : n.inputs) {
      if (in == id) {
        out.push_back(i);
        break;
      }
    }
  }
  return out;
}

std::vector<int> Graph::topo_order() const {
  // Kahn's algorithm over the live nodes.
  std::vector<int> indegree(static_cast<std::size_t>(size()), 0);
  for (int i = 0; i < size(); ++i) {
    if (at(i).dead) continue;
    for (int in : at(i).inputs) {
      if (in < 0 || in >= size() || at(in).dead) {
        throw std::runtime_error("graph '" + name_ + "': node '" +
                                 at(i).name + "' has an edge to a " +
                                 (in < 0 || in >= size() ? "nonexistent"
                                                         : "removed") +
                                 " node");
      }
    }
    indegree[static_cast<std::size_t>(i)] =
        static_cast<int>(at(i).inputs.size());
  }
  std::vector<int> ready;
  for (int i = 0; i < size(); ++i) {
    if (!at(i).dead && indegree[static_cast<std::size_t>(i)] == 0) {
      ready.push_back(i);
    }
  }
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(live_count()));
  for (std::size_t head = 0; head < ready.size(); ++head) {
    const int id = ready[head];
    order.push_back(id);
    for (int c : consumers(id)) {
      // A consumer may reference `id` on several edges; decrement per edge.
      for (int in : at(c).inputs) {
        if (in == id && --indegree[static_cast<std::size_t>(c)] == 0) {
          ready.push_back(c);
        }
      }
    }
  }
  if (static_cast<int>(order.size()) != live_count()) {
    throw std::runtime_error("graph '" + name_ + "': cycle detected");
  }
  return order;
}

void Graph::remove(int id) {
  Node& n = at(id);
  if (!consumers(id).empty()) {
    throw std::logic_error("graph '" + name_ + "': removing node '" + n.name +
                           "' while it still has consumers");
  }
  n.dead = true;
}

void Graph::replace_input(int node, int old_producer, int new_producer) {
  for (int& in : at(node).inputs) {
    if (in == old_producer) in = new_producer;
  }
}

void Graph::rewire_consumers(int from, int to) {
  for (int c : consumers(from)) replace_input(c, from, to);
}

std::string to_dot(const Graph& g) {
  std::ostringstream out;
  out << "digraph \"" << g.name() << "\" {\n"
      << "  rankdir=TB;\n"
      << "  node [shape=record, fontsize=10];\n";
  for (int i = 0; i < g.size(); ++i) {
    const Node& n = g.at(i);
    if (n.dead) continue;
    out << "  n" << i << " [label=\"{" << kind_name(n.kind) << " " << n.name
        << "|" << n.type.to_string();
    if (n.bits > 0) out << " @" << n.bits << "b";
    if (n.quantize_input) out << " qin";
    if (n.bn != nullptr && n.kind != NodeKind::kBatchNorm) out << " +bn";
    if (n.fused_relu) out << " +relu";
    // Memory-planner annotations (plan_memory in graph/passes.h): the
    // value's live interval in execution-schedule steps and its arena slot,
    // so planner decisions are auditable straight from the dump.
    if (n.mem.def >= 0) {
      out << "|live [" << n.mem.def << ", " << n.mem.last_use << "] "
          << n.mem.bytes << "B @";
      if (n.mem.offset >= 0) {
        out << n.mem.offset;
      } else {
        out << (n.kind == NodeKind::kInput ? "extern" : "alias");
      }
      if (n.mem.inplace) out << " inplace";
    }
    out << "}\"];\n";
  }
  for (int i = 0; i < g.size(); ++i) {
    const Node& n = g.at(i);
    if (n.dead) continue;
    for (int in : n.inputs) out << "  n" << in << " -> n" << i << ";\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace adq::graph
