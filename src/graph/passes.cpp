#include "graph/passes.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "ad/act_bits.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/depthwise.h"
#include "nn/linear.h"
#include "tensor/bitpack.h"

namespace adq::graph {
namespace {

[[noreturn]] void fail(const Graph& g, const Node& n, const std::string& why) {
  throw std::invalid_argument("graph '" + g.name() + "', node '" + n.name +
                              "' (" + kind_name(n.kind) + "): " + why);
}

bool is_gemm(NodeKind k) {
  return k == NodeKind::kConv || k == NodeKind::kDepthwiseConv ||
         k == NodeKind::kLinear;
}

int gemm_bits(const Node& n) {
  switch (n.kind) {
    case NodeKind::kConv: return n.conv->bits();
    case NodeKind::kDepthwiseConv: return n.dwconv->bits();
    case NodeKind::kLinear: return n.linear->bits();
    default: return 0;
  }
}

void expect_rank(const Graph& g, const Node& n, const ValueType& in,
                 int rank) {
  if (in.rank != rank) {
    fail(g, n, "expects a rank-" + std::to_string(rank) + " input, got " +
                   in.to_string());
  }
}

}  // namespace

void infer_shapes(Graph& g) {
  for (int id : g.topo_order()) {
    Node& n = g.at(id);
    // Arity is verify()'s job, but inference must not read past a
    // malformed node's input list when called on its own.
    if (n.kind != NodeKind::kInput && n.inputs.empty()) {
      fail(g, n, "has no input edge");
    }
    if (n.kind == NodeKind::kAdd && n.inputs.size() != 2) {
      fail(g, n, "expects 2 operands, has " +
                     std::to_string(n.inputs.size()));
    }
    const ValueType* in =
        n.inputs.empty() ? nullptr : &g.at(n.inputs[0]).type;
    switch (n.kind) {
      case NodeKind::kInput:
        if (n.type.rank == 0) fail(g, n, "input node has no value type");
        break;
      case NodeKind::kConv: {
        expect_rank(g, n, *in, 3);
        if (in->channels != n.conv->in_channels()) {
          fail(g, n, "expects " + std::to_string(n.conv->in_channels()) +
                         " channels, got " + in->to_string());
        }
        const std::int64_t k = n.conv->kernel(), s = n.conv->stride(),
                           p = n.conv->pad();
        n.type = ValueType::chw(n.conv->out_channels(),
                                (in->height + 2 * p - k) / s + 1,
                                (in->width + 2 * p - k) / s + 1);
        break;
      }
      case NodeKind::kDepthwiseConv: {
        expect_rank(g, n, *in, 3);
        if (in->channels != n.dwconv->channels()) {
          fail(g, n, "expects " + std::to_string(n.dwconv->channels()) +
                         " channels, got " + in->to_string());
        }
        const std::int64_t k = n.dwconv->kernel(), s = n.dwconv->stride(),
                           p = n.dwconv->pad();
        n.type = ValueType::chw(n.dwconv->channels(),
                                (in->height + 2 * p - k) / s + 1,
                                (in->width + 2 * p - k) / s + 1);
        break;
      }
      case NodeKind::kLinear:
        expect_rank(g, n, *in, 1);
        if (in->channels != n.linear->in_features()) {
          fail(g, n, "expects " + std::to_string(n.linear->in_features()) +
                         " features, got " + in->to_string());
        }
        n.type = ValueType::features(n.linear->out_features());
        break;
      case NodeKind::kBatchNorm:
        expect_rank(g, n, *in, 3);
        if (!n.bn->bypassed() && in->channels != n.bn->channels()) {
          fail(g, n, "normalises " + std::to_string(n.bn->channels()) +
                         " channels, got " + in->to_string());
        }
        n.type = *in;
        break;
      case NodeKind::kReLU:
      case NodeKind::kQuantize:
      case NodeKind::kOutput:
        n.type = *in;
        break;
      case NodeKind::kMaxPool:
        expect_rank(g, n, *in, 3);
        n.type = ValueType::chw(
            in->channels, (in->height - n.pool_kernel) / n.pool_stride + 1,
            (in->width - n.pool_kernel) / n.pool_stride + 1);
        break;
      case NodeKind::kGlobalAvgPool:
        expect_rank(g, n, *in, 3);
        n.type = ValueType::features(in->channels);
        break;
      case NodeKind::kFlatten:
        if (in->rank == 1) {
          n.type = *in;
        } else {
          expect_rank(g, n, *in, 3);
          n.type = ValueType::features(in->channels * in->height * in->width);
        }
        break;
      case NodeKind::kAdd: {
        const ValueType& a = g.at(n.inputs[0]).type;
        const ValueType& b = g.at(n.inputs[1]).type;
        if (a != b) {
          fail(g, n, "operand shapes disagree: " + a.to_string() + " vs " +
                         b.to_string());
        }
        n.type = a;
        break;
      }
    }
  }
}

void verify(const Graph& g) {
  // topo_order() validates edge targets and acyclicity.
  const std::vector<int> order = g.topo_order();

  int inputs = 0, outputs = 0;
  for (int id : order) {
    const Node& n = g.at(id);
    const std::size_t arity = n.kind == NodeKind::kInput ? 0
                              : n.kind == NodeKind::kAdd ? 2
                                                         : 1;
    if (n.inputs.size() != arity) {
      fail(g, n, "expects " + std::to_string(arity) + " input(s), has " +
                     std::to_string(n.inputs.size()));
    }
    inputs += n.kind == NodeKind::kInput;
    outputs += n.kind == NodeKind::kOutput;
    switch (n.kind) {
      case NodeKind::kConv:
        if (n.conv == nullptr) fail(g, n, "has no bound Conv2d");
        break;
      case NodeKind::kDepthwiseConv:
        if (n.dwconv == nullptr) fail(g, n, "has no bound DepthwiseConv2d");
        break;
      case NodeKind::kLinear:
        if (n.linear == nullptr) fail(g, n, "has no bound Linear");
        break;
      case NodeKind::kBatchNorm:
        if (n.bn == nullptr) fail(g, n, "has no bound BatchNorm2d");
        break;
      case NodeKind::kQuantize:
        if (n.quant_enabled && n.bits < 1) fail(g, n, "has no bit-width");
        break;
      case NodeKind::kAdd:
        if (n.type.rank != 0 &&
            g.at(n.inputs[0]).type != g.at(n.inputs[1]).type) {
          fail(g, n, "operand shapes disagree");
        }
        break;
      default:
        break;
    }
  }
  if (inputs != 1 || outputs != 1) {
    throw std::invalid_argument(
        "graph '" + g.name() + "': expected exactly one input and one " +
        "output node, found " + std::to_string(inputs) + " / " +
        std::to_string(outputs));
  }
}

bool fold_batchnorm(Graph& g) {
  bool changed = false;
  for (int id : g.topo_order()) {
    Node& n = g.at(id);
    if (n.dead || n.kind != NodeKind::kBatchNorm) continue;
    const int producer_id = n.inputs[0];
    Node& p = g.at(producer_id);
    if (n.bn->bypassed()) {
      // Identity (removed unit): route consumers straight to the producer.
      g.rewire_consumers(id, producer_id);
      g.remove(id);
      changed = true;
    } else if ((p.kind == NodeKind::kConv ||
                p.kind == NodeKind::kDepthwiseConv) &&
               p.bn == nullptr && g.consumers(producer_id).size() == 1) {
      p.bn = n.bn;
      g.rewire_consumers(id, producer_id);
      g.remove(id);
      changed = true;
    }
  }
  return changed;
}

bool fuse_relu_epilogue(Graph& g) {
  bool changed = false;
  for (int id : g.topo_order()) {
    Node& n = g.at(id);
    if (n.dead || n.kind != NodeKind::kReLU) continue;
    const int producer_id = n.inputs[0];
    Node& p = g.at(producer_id);
    if ((is_gemm(p.kind) || p.kind == NodeKind::kAdd) && !p.fused_relu &&
        g.consumers(producer_id).size() == 1) {
      p.fused_relu = true;
      g.rewire_consumers(id, producer_id);
      g.remove(id);
      changed = true;
    }
  }
  return changed;
}

bool elide_quantize(Graph& g) {
  bool changed = false;
  // Absorptions can expose further elisions (a chain of quantizers thins
  // front to back), so sweep to a fixpoint.
  for (bool sweep_changed = true; sweep_changed;) {
    sweep_changed = false;
    for (int id : g.topo_order()) {
      Node& n = g.at(id);
      if (n.dead || n.kind != NodeKind::kQuantize) continue;
      if (!n.quant_enabled || n.bits >= 24) {
        // FakeQuantizer::apply is the identity here.
        g.rewire_consumers(id, n.inputs[0]);
        g.remove(id);
        sweep_changed = true;
        continue;
      }
      const std::vector<int> cs = g.consumers(id);
      if (cs.size() != 1) continue;
      Node& c = g.at(cs[0]);
      // The integer GEMM performs exactly this observation + rounding on
      // its input, so a preceding same-grid quantizer is the op's own input
      // quantizer written as dataflow — absorb it. A consumer that already
      // quantizes (e.g. a downsample conv behind the Fig-2 skip quantizer)
      // genuinely double-quantizes in training; its quantizer stays.
      if (is_gemm(c.kind) && !c.quantize_input && gemm_bits(c) == n.bits) {
        c.quantize_input = true;
        g.rewire_consumers(id, n.inputs[0]);
        g.remove(id);
        sweep_changed = true;
      }
    }
    changed = changed || sweep_changed;
  }
  return changed;
}

bool eliminate_dead_nodes(Graph& g) {
  std::vector<bool> reachable(static_cast<std::size_t>(g.size()), false);
  std::vector<int> stack;
  if (g.output() >= 0 && !g.at(g.output()).dead) stack.push_back(g.output());
  while (!stack.empty()) {
    const int id = stack.back();
    stack.pop_back();
    if (reachable[static_cast<std::size_t>(id)]) continue;
    reachable[static_cast<std::size_t>(id)] = true;
    for (int in : g.at(id).inputs) stack.push_back(in);
  }
  bool changed = false;
  // Reverse order so a dead chain's consumers die before their producers
  // (remove() insists on consumer-free nodes).
  for (int id = g.size() - 1; id >= 0; --id) {
    Node& n = g.at(id);
    if (n.dead || reachable[static_cast<std::size_t>(id)] ||
        n.kind == NodeKind::kInput) {
      continue;
    }
    g.remove(id);
    changed = true;
  }
  return changed;
}

ActStorageOptions act_storage_from_env() {
  ActStorageOptions opts;
  const char* env = std::getenv("ADQ_ACT_BITS");
  if (env == nullptr || *env == '\0') return opts;
  const std::string v(env);
  if (v == "on") return opts;
  if (v == "off") {
    opts.mode = ActStorageOptions::Mode::kOff;
    return opts;
  }
  char* end = nullptr;
  const long k = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || !(k == 1 || k == 2 || k == 4 || k == 8)) {
    throw std::invalid_argument(
        "graph: ADQ_ACT_BITS='" + v +
        "' (expected on, off, or a cell width in {1, 2, 4, 8} to pin)");
  }
  opts.mode = ActStorageOptions::Mode::kPin;
  opts.pin_bits = static_cast<int>(k);
  return opts;
}

namespace {

// Nodes that actually read `id`'s bytes, looking through pure flatten
// views. kOutput counts as a reader — the final value must stay float for
// the caller.
void effective_consumers(const Graph& g, int id, std::vector<int>& out) {
  for (int c : g.consumers(id)) {
    if (g.at(c).kind == NodeKind::kFlatten) {
      effective_consumers(g, c, out);
    } else {
      out.push_back(c);
    }
  }
}

int storage_cell(const ActStorageOptions& opts, int qbits, double density) {
  const int natural = cell_bits_for(qbits);
  if (opts.mode == ActStorageOptions::Mode::kPin) {
    // Pinned cells widen where the grid needs more bits — codes must fit.
    return std::max(natural, opts.pin_bits);
  }
  return ad::choose_act_cell(natural, density, opts.dense_threshold);
}

}  // namespace

int assign_act_bits(Graph& g, const ActStorageOptions& opts) {
  for (int id = 0; id < g.size(); ++id) {
    Node& n = g.at(id);
    n.mem.act_bits = 0;
    n.mem.act_qbits = 0;
  }
  if (opts.mode == ActStorageOptions::Mode::kOff) return 0;
  const int ceiling = std::min(opts.max_integer_bits, 8);
  int packed = 0;
  for (int id : g.topo_order()) {
    Node& n = g.at(id);
    // The caller-owned input tensor and pure views never own packed
    // storage (views inherit their input's storage in plan_memory).
    if (n.kind == NodeKind::kInput || n.kind == NodeKind::kFlatten ||
        n.kind == NodeKind::kOutput) {
      continue;
    }
    std::vector<int> cs;
    effective_consumers(g, id, cs);
    if (cs.empty()) continue;

    // Identity-flavor skip quantizer (Fig 2): feeds only the residual add.
    // fake_quantize == dequantize(quantize_act) bit for bit, so the node
    // can store its own eqn-1 codes and defer the dequantize to the add —
    // act_qbits = 0 marks "self-coded at node bits".
    if (n.kind == NodeKind::kQuantize && n.quant_enabled && n.bits >= 1 &&
        n.bits <= ceiling && cs.size() == 1 &&
        g.at(cs[0]).kind == NodeKind::kAdd) {
      n.mem.act_bits =
          storage_cell(opts, n.bits, g.at(n.inputs[0]).ad_density);
      n.mem.act_qbits = 0;
      ++packed;
      continue;
    }

    // General rule: every effective consumer is an integer-path GEMM and
    // all quantize on one common grid — the stored codes are then exactly
    // what each consumer's own quantize_act would compute, so storage as
    // codes is lossless. Any non-GEMM reader (pool, add, output, a
    // different-grid GEMM, a float-path layer) keeps the value float.
    int common_bits = -1;
    bool packable = true;
    for (int c : cs) {
      const Node& cn = g.at(c);
      if (!is_gemm(cn.kind) || !cn.quantize_input) {
        packable = false;
        break;
      }
      const int b = gemm_bits(cn);
      if (b < 1 || b > ceiling || (common_bits >= 0 && b != common_bits)) {
        packable = false;
        break;
      }
      common_bits = b;
    }
    if (!packable || common_bits < 1) continue;
    n.mem.act_bits = storage_cell(opts, common_bits, n.ad_density);
    n.mem.act_qbits = common_bits;
    ++packed;
  }
  return packed;
}

namespace {

void maybe_dump(const Graph& g, int stage_index, const char* stage) {
  const char* dir = std::getenv("ADQ_DUMP_GRAPH");
  if (dir == nullptr || *dir == '\0') return;
  char index[8];
  std::snprintf(index, sizeof(index), "%02d", stage_index);
  const std::string path = std::string(dir) + "/" + g.name() + "_" + index +
                           "_" + stage + ".dot";
  std::ofstream out(path);
  if (!out) return;  // an unwritable dump dir must never fail a compile
  out << to_dot(g);
}

}  // namespace

void legalize(Graph& g) {
  int stage = 0;
  maybe_dump(g, stage++, "built");
  // Structural checks first — they need no types and make the malformed
  // cases (bad arity, dangling edges, cycles) fail with a clean error
  // before inference walks the edges.
  verify(g);
  infer_shapes(g);
  maybe_dump(g, stage++, "verified");
  fold_batchnorm(g);
  maybe_dump(g, stage++, "bn_fold");
  fuse_relu_epilogue(g);
  maybe_dump(g, stage++, "fuse_relu");
  elide_quantize(g);
  maybe_dump(g, stage++, "elide_quantize");
  eliminate_dead_nodes(g);
  maybe_dump(g, stage++, "dce");
  // Passes must leave a well-formed graph; re-run inference so fused nodes
  // carry final types, then re-verify.
  infer_shapes(g);
  verify(g);
  maybe_dump(g, stage++, "legal");
}

// ---------------------------------------------------------------------------
// Static activation-memory planning.
// ---------------------------------------------------------------------------

ResidualParts decompose_residual(const Graph& g, int add_id) {
  const Node& add = g.at(add_id);
  // Build convention: inputs[0] = main branch, inputs[1] = skip branch.
  // The skip branch may hold [quantize] [conv]; beneath it is the fork
  // value both branches share. A node that feeds anything besides the
  // skip branch IS the fork (e.g. an identity skip whose quantizer was
  // elided lands the add directly on the shared producer — even when
  // that producer happens to be a conv), so only sole-consumer nodes are
  // consumed into the skip chain.
  ResidualParts parts;
  int skip = add.inputs[1];
  if ((g.at(skip).kind == NodeKind::kConv ||
       g.at(skip).kind == NodeKind::kDepthwiseConv) &&
      g.consumers(skip).size() == 1) {
    parts.downsample = skip;
    skip = g.at(skip).inputs[0];
  }
  if (g.at(skip).kind == NodeKind::kQuantize &&
      g.consumers(skip).size() == 1) {
    parts.quantize = skip;
    skip = g.at(skip).inputs[0];
  }
  parts.fork = skip;

  // Main-branch chain from the fork (exclusive) to the add (exclusive).
  std::vector<int> chain;
  for (int m = add.inputs[0]; m != parts.fork;) {
    const Node& node = g.at(m);
    if (node.kind == NodeKind::kAdd || node.kind == NodeKind::kInput ||
        node.inputs.empty()) {
      fail(g, add, "main and skip branches do not meet at a common fork "
                   "the skip stack can express");
    }
    chain.push_back(m);
    m = node.inputs[0];
  }
  parts.main_chain.assign(chain.rbegin(), chain.rend());
  return parts;
}

namespace {

// Recursive mirror of the op emission in infer::lower_to_plan: appends the
// ids of every node producing a value, in the order the executor
// materialises them. The skip quantizer and downsample conv of a residual
// diamond land AFTER the main chain — the executor defers them to just
// before the add so the quantize can run in place once the main branch is
// done reading the fork.
void schedule_value(const Graph& g, int id, std::vector<int>& order) {
  const Node& n = g.at(id);
  switch (n.kind) {
    case NodeKind::kInput:
      order.push_back(id);
      return;
    case NodeKind::kAdd: {
      const ResidualParts parts = decompose_residual(g, id);
      schedule_value(g, parts.fork, order);
      // A packed skip quantizer cannot rewrite the float fork slot in
      // place, so it runs eagerly into its own compressed slot — the fork
      // then dies as soon as the main branch has read it, instead of
      // staying live across the whole block. Float skip quantizers keep
      // the deferred order (in-place snap once the main branch is done).
      const bool packed_skip =
          parts.quantize >= 0 && g.at(parts.quantize).mem.act_bits > 0;
      if (packed_skip) order.push_back(parts.quantize);
      for (int m : parts.main_chain) order.push_back(m);
      if (parts.quantize >= 0 && !packed_skip) order.push_back(parts.quantize);
      if (parts.downsample >= 0) order.push_back(parts.downsample);
      order.push_back(id);
      return;
    }
    default:
      schedule_value(g, n.inputs[0], order);
      order.push_back(id);
      return;
  }
}

std::int64_t value_elems(const ValueType& t) {
  return t.rank == 3 ? t.channels * t.height * t.width : t.channels;
}

// Slots are aligned so that batch-scaling offsets (offset * B) preserves
// cache-line alignment for any batch size.
constexpr std::int64_t kSlotAlign = 64;

std::int64_t align_up(std::int64_t n) {
  return (n + kSlotAlign - 1) / kSlotAlign * kSlotAlign;
}

}  // namespace

std::vector<int> execution_schedule(const Graph& g) {
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(g.live_count()));
  schedule_value(g, g.output(), order);
  return order;
}

namespace {

std::int64_t plan_memory_impl(Graph& g, const ActStorageOptions& opts) {
  // Storage assignment first — the execution schedule depends on it (a
  // packed skip quantizer runs eagerly, see schedule_value).
  assign_act_bits(g, opts);
  const std::vector<int> schedule = execution_schedule(g);
  std::vector<int> pos(static_cast<std::size_t>(g.size()), -1);
  for (std::size_t p = 0; p < schedule.size(); ++p) {
    pos[static_cast<std::size_t>(schedule[p])] = static_cast<int>(p);
  }
  std::vector<std::vector<int>> consumers(static_cast<std::size_t>(g.size()));
  for (int id = 0; id < g.size(); ++id) {
    if (pos[static_cast<std::size_t>(id)] >= 0) {
      consumers[static_cast<std::size_t>(id)] = g.consumers(id);
    }
  }

  // Per-value annotations: definition step and the last step that reads
  // the value (its own step when nothing consumes it — the output value).
  for (int id : schedule) {
    Node& n = g.at(id);
    const int act_bits = n.mem.act_bits, act_qbits = n.mem.act_qbits;
    n.mem = ValueMem{};
    n.mem.act_bits = act_bits;
    n.mem.act_qbits = act_qbits;
    n.mem.def = pos[static_cast<std::size_t>(id)];
    n.mem.last_use = n.mem.def;
    for (int c : consumers[static_cast<std::size_t>(id)]) {
      n.mem.last_use = std::max(n.mem.last_use, pos[static_cast<std::size_t>(c)]);
    }
    if (n.kind != NodeKind::kInput && n.type.rank == 0) {
      fail(g, n, "has no inferred shape — run legalize() before plan_memory()");
    }
    // Pure views carry the same bytes as the value they reinterpret — a
    // flatten of a packed value must not widen the shared slot to float.
    if (n.kind == NodeKind::kFlatten || n.kind == NodeKind::kOutput) {
      const ValueMem& src = g.at(n.inputs[0]).mem;
      n.mem.act_bits = src.act_bits;
      n.mem.act_qbits = src.act_qbits;
    }
    n.mem.bytes =
        n.mem.act_bits > 0
            ? packed_bytes(value_elems(n.type), n.mem.act_bits)
            : value_elems(n.type) * static_cast<std::int64_t>(sizeof(float));
  }

  // Storage groups: every value either owns a slot (its own id as root) or
  // aliases its input's storage. Pure views (flatten, output) always alias;
  // write-aliases (standalone quantize/ReLU, the residual add into its main
  // operand) are legal only when no later step still reads the aliased
  // slot and the slot is not the caller-owned input tensor.
  std::vector<int> root(static_cast<std::size_t>(g.size()), -1);
  std::vector<std::vector<int>> members(static_cast<std::size_t>(g.size()));
  const auto group_read_after = [&](int r, int p) {
    for (int m : members[static_cast<std::size_t>(r)]) {
      for (int c : consumers[static_cast<std::size_t>(m)]) {
        if (pos[static_cast<std::size_t>(c)] > p) return true;
      }
    }
    return false;
  };
  for (int id : schedule) {
    Node& n = g.at(id);
    const int p = pos[static_cast<std::size_t>(id)];
    int r = id;
    switch (n.kind) {
      case NodeKind::kFlatten:
      case NodeKind::kOutput:
        r = root[static_cast<std::size_t>(n.inputs[0])];  // pure view
        break;
      case NodeKind::kReLU:
      case NodeKind::kQuantize:
      case NodeKind::kAdd: {
        const int in_root = root[static_cast<std::size_t>(n.inputs[0])];
        // Packed values never alias in place: the op's packed output bytes
        // would overlap the float words it is still reading (and the
        // parallel pack chunks would race the reads). A packed input slot
        // is likewise never rewritten with float words.
        if (n.mem.act_bits == 0 &&
            g.at(in_root).mem.act_bits == 0 &&
            in_root != g.input() && !group_read_after(in_root, p)) {
          r = in_root;
          n.mem.inplace = true;
        }
        break;
      }
      default:
        break;
    }
    root[static_cast<std::size_t>(id)] = r;
    members[static_cast<std::size_t>(r)].push_back(id);
  }

  // Pack the slot-owning groups with greedy first-fit by size. Two groups
  // may share bytes only when their live intervals (closed, in schedule
  // steps) are disjoint. Ordering is fully tie-broken, so offsets are
  // deterministic across runs — a plan compiled twice is byte-identical.
  struct Slot {
    int root;
    std::int64_t bytes;  // aligned
    int def, last;
    std::int64_t offset = -1;
  };
  std::vector<Slot> slots;
  for (int id : schedule) {
    if (root[static_cast<std::size_t>(id)] != id || id == g.input()) continue;
    Slot s;
    s.root = id;
    s.bytes = 0;
    s.def = g.at(id).mem.def;
    s.last = g.at(id).mem.def;
    for (int m : members[static_cast<std::size_t>(id)]) {
      s.bytes = std::max(s.bytes, g.at(m).mem.bytes);
      s.last = std::max(s.last, g.at(m).mem.last_use);
    }
    s.bytes = align_up(s.bytes);
    slots.push_back(s);
  }
  std::vector<std::size_t> by_size(slots.size());
  for (std::size_t i = 0; i < slots.size(); ++i) by_size[i] = i;
  std::sort(by_size.begin(), by_size.end(), [&](std::size_t a, std::size_t b) {
    if (slots[a].bytes != slots[b].bytes) return slots[a].bytes > slots[b].bytes;
    if (slots[a].def != slots[b].def) return slots[a].def < slots[b].def;
    return slots[a].root < slots[b].root;
  });
  std::int64_t arena_bytes = 0;
  std::vector<std::size_t> placed;
  std::vector<std::pair<std::int64_t, std::int64_t>> busy;  // [begin, end)
  for (std::size_t i : by_size) {
    Slot& s = slots[i];
    busy.clear();
    for (std::size_t j : placed) {
      const Slot& o = slots[j];
      if (s.def <= o.last && o.def <= s.last) {
        busy.emplace_back(o.offset, o.offset + o.bytes);
      }
    }
    std::sort(busy.begin(), busy.end());
    std::int64_t off = 0;
    for (const auto& [b, e] : busy) {
      if (off + s.bytes <= b) break;  // fits in the gap before this interval
      off = std::max(off, e);
    }
    s.offset = off;
    arena_bytes = std::max(arena_bytes, off + s.bytes);
    placed.push_back(i);
  }

  for (const Slot& s : slots) {
    for (int m : members[static_cast<std::size_t>(s.root)]) {
      g.at(m).mem.offset = s.offset;
    }
  }
  return arena_bytes;
}

}  // namespace

std::int64_t plan_memory(Graph& g, const ActStorageOptions& opts) {
  // Pack the float-storage baseline first (reported as arena_bytes_u8 —
  // what the arena would cost with compression off), then the real run,
  // whose annotations stick. Both runs share lifetimes, tie-breaks and
  // alignment, so the pair is deterministic and the off mode is
  // byte-identical to the pre-compression planner.
  ActStorageOptions off = opts;
  off.mode = ActStorageOptions::Mode::kOff;
  const std::int64_t u8 = plan_memory_impl(g, off);
  std::int64_t bytes = u8;
  if (opts.mode != ActStorageOptions::Mode::kOff) {
    bytes = plan_memory_impl(g, opts);
  }
  g.set_arena_bytes(bytes);
  g.set_arena_bytes_u8(u8);
  maybe_dump(g, 7, "memplan");
  return bytes;
}

std::int64_t plan_memory(Graph& g) {
  return plan_memory(g, act_storage_from_env());
}

}  // namespace adq::graph
