#include "graph/passes.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/depthwise.h"
#include "nn/linear.h"

namespace adq::graph {
namespace {

[[noreturn]] void fail(const Graph& g, const Node& n, const std::string& why) {
  throw std::invalid_argument("graph '" + g.name() + "', node '" + n.name +
                              "' (" + kind_name(n.kind) + "): " + why);
}

bool is_gemm(NodeKind k) {
  return k == NodeKind::kConv || k == NodeKind::kDepthwiseConv ||
         k == NodeKind::kLinear;
}

int gemm_bits(const Node& n) {
  switch (n.kind) {
    case NodeKind::kConv: return n.conv->bits();
    case NodeKind::kDepthwiseConv: return n.dwconv->bits();
    case NodeKind::kLinear: return n.linear->bits();
    default: return 0;
  }
}

void expect_rank(const Graph& g, const Node& n, const ValueType& in,
                 int rank) {
  if (in.rank != rank) {
    fail(g, n, "expects a rank-" + std::to_string(rank) + " input, got " +
                   in.to_string());
  }
}

}  // namespace

void infer_shapes(Graph& g) {
  for (int id : g.topo_order()) {
    Node& n = g.at(id);
    // Arity is verify()'s job, but inference must not read past a
    // malformed node's input list when called on its own.
    if (n.kind != NodeKind::kInput && n.inputs.empty()) {
      fail(g, n, "has no input edge");
    }
    if (n.kind == NodeKind::kAdd && n.inputs.size() != 2) {
      fail(g, n, "expects 2 operands, has " +
                     std::to_string(n.inputs.size()));
    }
    const ValueType* in =
        n.inputs.empty() ? nullptr : &g.at(n.inputs[0]).type;
    switch (n.kind) {
      case NodeKind::kInput:
        if (n.type.rank == 0) fail(g, n, "input node has no value type");
        break;
      case NodeKind::kConv: {
        expect_rank(g, n, *in, 3);
        if (in->channels != n.conv->in_channels()) {
          fail(g, n, "expects " + std::to_string(n.conv->in_channels()) +
                         " channels, got " + in->to_string());
        }
        const std::int64_t k = n.conv->kernel(), s = n.conv->stride(),
                           p = n.conv->pad();
        n.type = ValueType::chw(n.conv->out_channels(),
                                (in->height + 2 * p - k) / s + 1,
                                (in->width + 2 * p - k) / s + 1);
        break;
      }
      case NodeKind::kDepthwiseConv: {
        expect_rank(g, n, *in, 3);
        if (in->channels != n.dwconv->channels()) {
          fail(g, n, "expects " + std::to_string(n.dwconv->channels()) +
                         " channels, got " + in->to_string());
        }
        const std::int64_t k = n.dwconv->kernel(), s = n.dwconv->stride(),
                           p = n.dwconv->pad();
        n.type = ValueType::chw(n.dwconv->channels(),
                                (in->height + 2 * p - k) / s + 1,
                                (in->width + 2 * p - k) / s + 1);
        break;
      }
      case NodeKind::kLinear:
        expect_rank(g, n, *in, 1);
        if (in->channels != n.linear->in_features()) {
          fail(g, n, "expects " + std::to_string(n.linear->in_features()) +
                         " features, got " + in->to_string());
        }
        n.type = ValueType::features(n.linear->out_features());
        break;
      case NodeKind::kBatchNorm:
        expect_rank(g, n, *in, 3);
        if (!n.bn->bypassed() && in->channels != n.bn->channels()) {
          fail(g, n, "normalises " + std::to_string(n.bn->channels()) +
                         " channels, got " + in->to_string());
        }
        n.type = *in;
        break;
      case NodeKind::kReLU:
      case NodeKind::kQuantize:
      case NodeKind::kOutput:
        n.type = *in;
        break;
      case NodeKind::kMaxPool:
        expect_rank(g, n, *in, 3);
        n.type = ValueType::chw(
            in->channels, (in->height - n.pool_kernel) / n.pool_stride + 1,
            (in->width - n.pool_kernel) / n.pool_stride + 1);
        break;
      case NodeKind::kGlobalAvgPool:
        expect_rank(g, n, *in, 3);
        n.type = ValueType::features(in->channels);
        break;
      case NodeKind::kFlatten:
        if (in->rank == 1) {
          n.type = *in;
        } else {
          expect_rank(g, n, *in, 3);
          n.type = ValueType::features(in->channels * in->height * in->width);
        }
        break;
      case NodeKind::kAdd: {
        const ValueType& a = g.at(n.inputs[0]).type;
        const ValueType& b = g.at(n.inputs[1]).type;
        if (a != b) {
          fail(g, n, "operand shapes disagree: " + a.to_string() + " vs " +
                         b.to_string());
        }
        n.type = a;
        break;
      }
    }
  }
}

void verify(const Graph& g) {
  // topo_order() validates edge targets and acyclicity.
  const std::vector<int> order = g.topo_order();

  int inputs = 0, outputs = 0;
  for (int id : order) {
    const Node& n = g.at(id);
    const std::size_t arity = n.kind == NodeKind::kInput ? 0
                              : n.kind == NodeKind::kAdd ? 2
                                                         : 1;
    if (n.inputs.size() != arity) {
      fail(g, n, "expects " + std::to_string(arity) + " input(s), has " +
                     std::to_string(n.inputs.size()));
    }
    inputs += n.kind == NodeKind::kInput;
    outputs += n.kind == NodeKind::kOutput;
    switch (n.kind) {
      case NodeKind::kConv:
        if (n.conv == nullptr) fail(g, n, "has no bound Conv2d");
        break;
      case NodeKind::kDepthwiseConv:
        if (n.dwconv == nullptr) fail(g, n, "has no bound DepthwiseConv2d");
        break;
      case NodeKind::kLinear:
        if (n.linear == nullptr) fail(g, n, "has no bound Linear");
        break;
      case NodeKind::kBatchNorm:
        if (n.bn == nullptr) fail(g, n, "has no bound BatchNorm2d");
        break;
      case NodeKind::kQuantize:
        if (n.quant_enabled && n.bits < 1) fail(g, n, "has no bit-width");
        break;
      case NodeKind::kAdd:
        if (n.type.rank != 0 &&
            g.at(n.inputs[0]).type != g.at(n.inputs[1]).type) {
          fail(g, n, "operand shapes disagree");
        }
        break;
      default:
        break;
    }
  }
  if (inputs != 1 || outputs != 1) {
    throw std::invalid_argument(
        "graph '" + g.name() + "': expected exactly one input and one " +
        "output node, found " + std::to_string(inputs) + " / " +
        std::to_string(outputs));
  }
}

bool fold_batchnorm(Graph& g) {
  bool changed = false;
  for (int id : g.topo_order()) {
    Node& n = g.at(id);
    if (n.dead || n.kind != NodeKind::kBatchNorm) continue;
    const int producer_id = n.inputs[0];
    Node& p = g.at(producer_id);
    if (n.bn->bypassed()) {
      // Identity (removed unit): route consumers straight to the producer.
      g.rewire_consumers(id, producer_id);
      g.remove(id);
      changed = true;
    } else if ((p.kind == NodeKind::kConv ||
                p.kind == NodeKind::kDepthwiseConv) &&
               p.bn == nullptr && g.consumers(producer_id).size() == 1) {
      p.bn = n.bn;
      g.rewire_consumers(id, producer_id);
      g.remove(id);
      changed = true;
    }
  }
  return changed;
}

bool fuse_relu_epilogue(Graph& g) {
  bool changed = false;
  for (int id : g.topo_order()) {
    Node& n = g.at(id);
    if (n.dead || n.kind != NodeKind::kReLU) continue;
    const int producer_id = n.inputs[0];
    Node& p = g.at(producer_id);
    if ((is_gemm(p.kind) || p.kind == NodeKind::kAdd) && !p.fused_relu &&
        g.consumers(producer_id).size() == 1) {
      p.fused_relu = true;
      g.rewire_consumers(id, producer_id);
      g.remove(id);
      changed = true;
    }
  }
  return changed;
}

bool elide_quantize(Graph& g) {
  bool changed = false;
  // Absorptions can expose further elisions (a chain of quantizers thins
  // front to back), so sweep to a fixpoint.
  for (bool sweep_changed = true; sweep_changed;) {
    sweep_changed = false;
    for (int id : g.topo_order()) {
      Node& n = g.at(id);
      if (n.dead || n.kind != NodeKind::kQuantize) continue;
      if (!n.quant_enabled || n.bits >= 24) {
        // FakeQuantizer::apply is the identity here.
        g.rewire_consumers(id, n.inputs[0]);
        g.remove(id);
        sweep_changed = true;
        continue;
      }
      const std::vector<int> cs = g.consumers(id);
      if (cs.size() != 1) continue;
      Node& c = g.at(cs[0]);
      // The integer GEMM performs exactly this observation + rounding on
      // its input, so a preceding same-grid quantizer is the op's own input
      // quantizer written as dataflow — absorb it. A consumer that already
      // quantizes (e.g. a downsample conv behind the Fig-2 skip quantizer)
      // genuinely double-quantizes in training; its quantizer stays.
      if (is_gemm(c.kind) && !c.quantize_input && gemm_bits(c) == n.bits) {
        c.quantize_input = true;
        g.rewire_consumers(id, n.inputs[0]);
        g.remove(id);
        sweep_changed = true;
      }
    }
    changed = changed || sweep_changed;
  }
  return changed;
}

bool eliminate_dead_nodes(Graph& g) {
  std::vector<bool> reachable(static_cast<std::size_t>(g.size()), false);
  std::vector<int> stack;
  if (g.output() >= 0 && !g.at(g.output()).dead) stack.push_back(g.output());
  while (!stack.empty()) {
    const int id = stack.back();
    stack.pop_back();
    if (reachable[static_cast<std::size_t>(id)]) continue;
    reachable[static_cast<std::size_t>(id)] = true;
    for (int in : g.at(id).inputs) stack.push_back(in);
  }
  bool changed = false;
  // Reverse order so a dead chain's consumers die before their producers
  // (remove() insists on consumer-free nodes).
  for (int id = g.size() - 1; id >= 0; --id) {
    Node& n = g.at(id);
    if (n.dead || reachable[static_cast<std::size_t>(id)] ||
        n.kind == NodeKind::kInput) {
      continue;
    }
    g.remove(id);
    changed = true;
  }
  return changed;
}

namespace {

void maybe_dump(const Graph& g, int stage_index, const char* stage) {
  const char* dir = std::getenv("ADQ_DUMP_GRAPH");
  if (dir == nullptr || *dir == '\0') return;
  char index[8];
  std::snprintf(index, sizeof(index), "%02d", stage_index);
  const std::string path = std::string(dir) + "/" + g.name() + "_" + index +
                           "_" + stage + ".dot";
  std::ofstream out(path);
  if (!out) return;  // an unwritable dump dir must never fail a compile
  out << to_dot(g);
}

}  // namespace

void legalize(Graph& g) {
  int stage = 0;
  maybe_dump(g, stage++, "built");
  // Structural checks first — they need no types and make the malformed
  // cases (bad arity, dangling edges, cycles) fail with a clean error
  // before inference walks the edges.
  verify(g);
  infer_shapes(g);
  maybe_dump(g, stage++, "verified");
  fold_batchnorm(g);
  maybe_dump(g, stage++, "bn_fold");
  fuse_relu_epilogue(g);
  maybe_dump(g, stage++, "fuse_relu");
  elide_quantize(g);
  maybe_dump(g, stage++, "elide_quantize");
  eliminate_dead_nodes(g);
  maybe_dump(g, stage++, "dce");
  // Passes must leave a well-formed graph; re-run inference so fused nodes
  // carry final types, then re-verify.
  infer_shapes(g);
  verify(g);
  maybe_dump(g, stage++, "legal");
}

}  // namespace adq::graph
