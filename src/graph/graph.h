// Typed dataflow IR for the model -> plan compile pipeline.
//
// A Graph is a DAG of Nodes with explicit input edges, one source (kInput)
// and one sink (kOutput). Every node names the value it produces and, after
// shape inference, carries that value's batch-agnostic type ([C, H, W]
// feature maps or [C] feature vectors). GEMM-shaped nodes (conv, depthwise
// conv, linear) bind non-owning pointers to the trained nn layers whose
// weights the lowering reads; pass-computed attributes (folded BatchNorm,
// fused ReLU epilogue, absorbed input quantizer) accumulate on the node.
//
// The IR exists so that lowering decisions (what fuses into what, which
// quantizers are real ops and which are absorbed by the integer GEMM) are
// explicit graph rewrites (graph/passes.h) instead of a type-switch walk
// over nn::Sequential — new topologies only need a builder that emits
// nodes, not a new compiler.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace adq::nn {
class BatchNorm2d;
class Conv2d;
class DepthwiseConv2d;
class Linear;
}  // namespace adq::nn

namespace adq::graph {

enum class NodeKind {
  kInput,          // the graph's single source; type set by the builder
  kConv,           // nn::Conv2d (+ optionally folded BN, fused ReLU)
  kDepthwiseConv,  // nn::DepthwiseConv2d (per-channel spatial conv)
  kLinear,         // nn::Linear
  kBatchNorm,      // standalone BN; folded into its producer by bn-fold
  kReLU,           // standalone ReLU; fused into a GEMM/add epilogue
  kMaxPool,
  kGlobalAvgPool,
  kFlatten,
  kQuantize,  // eqn-1 fake-quantize at `bits`; elided/absorbed by passes
  kAdd,       // residual join: inputs[0] = main branch, inputs[1] = skip
  kOutput,    // the graph's single sink
};

const char* kind_name(NodeKind kind);

/// Batch-agnostic value type: rank 3 for [C, H, W] feature maps, rank 1 for
/// [C] feature vectors, rank 0 before shape inference has run.
struct ValueType {
  int rank = 0;
  std::int64_t channels = 0, height = 0, width = 0;

  static ValueType chw(std::int64_t c, std::int64_t h, std::int64_t w) {
    return ValueType{3, c, h, w};
  }
  static ValueType features(std::int64_t c) { return ValueType{1, c, 0, 0}; }

  bool operator==(const ValueType& o) const {
    return rank == o.rank && channels == o.channels && height == o.height &&
           width == o.width;
  }
  bool operator!=(const ValueType& o) const { return !(*this == o); }

  std::string to_string() const;
};

/// Activation-memory annotations for one value, filled by plan_memory().
/// Lifetimes are positions in the execution schedule (see
/// execution_schedule() in graph/passes.h), NOT topological order: the
/// executor materialises a residual skip quantizer lazily (just before the
/// add), and liveness must describe what the executor actually does.
struct ValueMem {
  std::int64_t bytes = 0;    // per-sample storage bytes of this value
                             // (float words, or packed codes when act_bits)
  std::int64_t offset = -1;  // arena byte offset of its storage slot
                             // (-1 = unplanned, or external caller memory)
  int def = -1;              // schedule step that produces the value
  int last_use = -1;         // last schedule step that reads it
  bool inplace = false;      // writes into (aliases) its input's slot

  // Activation-storage compression, filled by assign_act_bits(): the value
  // is stored in its arena slot as packed `act_bits`-bit quantize codes
  // (0 = plain float words). `act_qbits` is the eqn-1 grid the codes were
  // quantized on — the common bit-width of every consuming integer GEMM.
  // act_qbits == 0 with act_bits > 0 marks a skip quantizer that codes on
  // its OWN grid (its node `bits`); the executor dequantizes at the add.
  int act_bits = 0;
  int act_qbits = 0;
};

struct Node {
  NodeKind kind = NodeKind::kInput;
  std::string name;         // name of the value this node produces
  std::vector<int> inputs;  // producer node ids (explicit dataflow edges)
  ValueType type;           // output value type, filled by infer_shapes()
  ValueMem mem;             // arena slot + lifetime, filled by plan_memory()

  // Non-owning layer bindings. Which pointer is set depends on `kind`;
  // weights and live bit-widths are read from the layer at lowering time.
  nn::Conv2d* conv = nullptr;
  nn::DepthwiseConv2d* dwconv = nullptr;
  nn::Linear* linear = nullptr;
  nn::BatchNorm2d* bn = nullptr;  // kBatchNorm, or folded into a GEMM node

  // Pass-computed GEMM attributes.
  bool fused_relu = false;      // ReLU fused into this node's epilogue
  bool quantize_input = false;  // input fake-quantizer absorbed into the op

  // kQuantize: eqn-1 grid width; also mirrors the GEMM's bit-width on
  // conv/depthwise/linear nodes for display and elision matching.
  int bits = 0;
  bool quant_enabled = true;  // kQuantize: false = identity (elided)

  std::int64_t pool_kernel = 2, pool_stride = 2;  // kMaxPool
  std::int64_t mask_channels = -1;                // kAdd eqn-5 output mask

  // Latest committed Activation Density (eqn 2) of the unit producing this
  // value, annotated by build_from_model from the unit meters; -1 = no
  // density observed (untrained model, non-GEMM node). assign_act_bits
  // reads it to pick the storage cell width (dense layers fall back to
  // 8-bit cells).
  double ad_density = -1.0;

  bool dead = false;  // tombstone; set via Graph::remove()
};

class Graph {
 public:
  explicit Graph(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Appends a node and returns its id. Ids are stable for the graph's
  /// lifetime (removal tombstones instead of compacting).
  int add(Node node);

  Node& at(int id) { return nodes_.at(static_cast<std::size_t>(id)); }
  const Node& at(int id) const {
    return nodes_.at(static_cast<std::size_t>(id));
  }

  /// Total slots, including tombstones (valid id range is [0, size())).
  int size() const { return static_cast<int>(nodes_.size()); }
  int live_count() const;

  int input() const { return input_; }
  int output() const { return output_; }
  void set_input(int id) { input_ = id; }
  void set_output(int id) { output_ = id; }

  /// Live nodes consuming `id`'s value, in id order.
  std::vector<int> consumers(int id) const;

  /// Topological order over live nodes. Throws std::runtime_error when the
  /// graph contains a cycle.
  std::vector<int> topo_order() const;

  /// Marks a node dead. The caller must have rewired its consumers first.
  void remove(int id);

  /// In `node`, replaces every input edge from `old_producer` with
  /// `new_producer`.
  void replace_input(int node, int old_producer, int new_producer);

  /// Rewires every live consumer of `from` to consume `to` instead.
  void rewire_consumers(int from, int to);

  /// Per-sample activation arena footprint in bytes; 0 until plan_memory()
  /// has run.
  std::int64_t arena_bytes() const { return arena_bytes_; }
  void set_arena_bytes(std::int64_t bytes) { arena_bytes_ = bytes; }

  /// What arena_bytes() would have been with activation compression off
  /// (every value stored as float words) — the baseline the packed
  /// footprint is reported against. Equals arena_bytes() when packing is
  /// off; 0 until plan_memory() has run.
  std::int64_t arena_bytes_u8() const { return arena_bytes_u8_; }
  void set_arena_bytes_u8(std::int64_t bytes) { arena_bytes_u8_ = bytes; }

 private:
  std::string name_;
  std::vector<Node> nodes_;
  int input_ = -1, output_ = -1;
  std::int64_t arena_bytes_ = 0;
  std::int64_t arena_bytes_u8_ = 0;
};

/// Graphviz rendering of the live graph: one record per node (kind, value
/// name, inferred type, bit/fusion annotations), one edge per input.
std::string to_dot(const Graph& g);

}  // namespace adq::graph
