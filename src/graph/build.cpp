#include "graph/build.h"

#include <stdexcept>

#include "ad/density_meter.h"
#include "models/model.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/depthwise.h"
#include "nn/flatten.h"
#include "nn/linear.h"
#include "nn/pool.h"
#include "nn/relu.h"
#include "nn/residual.h"
#include "nn/sequential.h"
#include "quant/fake_quantizer.h"

namespace adq::graph {
namespace {

// Latest committed AD (eqn 2) of a unit, or -1 when nothing was ever
// observed — the activation-storage planner must be able to tell "sparse"
// from "unmetered".
double unit_density(const models::QuantUnit& u) {
  const ad::DensityMeter& m = u.meter;
  if (m.history().empty() && m.observed_total() == 0) return -1.0;
  return m.latest();
}

// Incrementally appends nodes while tracking the id of the node producing
// the "current" value of the straight-line walk.
struct Builder {
  Graph& g;
  int current;

  int node(Node n, int producer) {
    if (producer >= 0) n.inputs.push_back(producer);
    return g.add(std::move(n));
  }

  // The layer's input fake-quantizer made explicit: emitted only when it is
  // live (enabled, grid coarser than float), exactly the condition under
  // which the training forward actually snaps the activations.
  void input_quantize(const quant::FakeQuantizer& q, const std::string& name) {
    if (!q.enabled() || q.bits() >= 24) return;
    Node n;
    n.kind = NodeKind::kQuantize;
    n.name = name;
    n.bits = q.bits();
    n.quant_enabled = true;
    current = node(std::move(n), current);
  }

  void conv(nn::Conv2d& layer) {
    if (layer.bypassed()) return;  // removed unit: identity in training too
    input_quantize(layer.input_quantizer(), layer.name() + ".qin");
    Node n;
    n.kind = NodeKind::kConv;
    n.name = layer.name();
    n.conv = &layer;
    n.bits = layer.bits();
    current = node(std::move(n), current);
  }

  void depthwise(nn::DepthwiseConv2d& layer) {
    input_quantize(layer.input_quantizer(), layer.name() + ".qin");
    Node n;
    n.kind = NodeKind::kDepthwiseConv;
    n.name = layer.name();
    n.dwconv = &layer;
    n.bits = layer.bits();
    current = node(std::move(n), current);
  }

  void linear(nn::Linear& layer) {
    input_quantize(layer.input_quantizer(), layer.name() + ".qin");
    Node n;
    n.kind = NodeKind::kLinear;
    n.name = layer.name();
    n.linear = &layer;
    n.bits = layer.bits();
    current = node(std::move(n), current);
  }

  void batchnorm(nn::BatchNorm2d& layer) {
    Node n;
    n.kind = NodeKind::kBatchNorm;
    n.name = layer.name();
    n.bn = &layer;
    current = node(std::move(n), current);
  }

  void relu(const std::string& name) {
    Node n;
    n.kind = NodeKind::kReLU;
    n.name = name;
    current = node(std::move(n), current);
  }

  void residual(nn::ResidualBlock& block) {
    const int entry = current;

    // Skip branch: Fig 2 quantization at the destination (conv2) precision,
    // then the optional 1x1 downsample. Emitted first so the quantize node
    // is explicit dataflow even when it is an identity (elision removes it).
    const quant::FakeQuantizer& sq = block.skip_quantizer();
    Node q;
    q.kind = NodeKind::kQuantize;
    q.name = block.name() + ".skip_q";
    q.bits = sq.bits();
    q.quant_enabled = sq.enabled();
    int skip = node(std::move(q), entry);
    if (block.has_downsample()) {
      current = skip;
      input_quantize(block.downsample_conv()->input_quantizer(),
                     block.downsample_conv()->name() + ".qin");
      Node d;
      d.kind = NodeKind::kConv;
      d.name = block.downsample_conv()->name();
      d.conv = block.downsample_conv();
      d.bits = block.downsample_conv()->bits();
      skip = node(std::move(d), current);
      current = skip;
      batchnorm(*block.downsample_bn());
      skip = current;
    }

    // Main branch: conv1 -> bn1 -> relu1 -> conv2 -> bn2.
    current = entry;
    conv(block.conv1());
    batchnorm(block.bn1());
    relu(block.relu1().name());
    conv(block.conv2());
    batchnorm(block.bn2());
    const int main_tail = current;

    Node add;
    add.kind = NodeKind::kAdd;
    add.name = block.name() + ".add";
    add.inputs = {main_tail, skip};  // convention: [main, skip]
    add.mask_channels = block.active_out_channels();
    current = g.add(std::move(add));
    relu(block.relu2().name());
  }
};

}  // namespace

Graph build_from_model(models::QuantizableModel& model,
                       const ValueType& input) {
  Graph g(model.name());
  Node in;
  in.kind = NodeKind::kInput;
  in.name = "input";
  in.type = input;
  Builder b{g, -1};
  g.set_input(b.node(std::move(in), -1));
  b.current = g.input();

  nn::Sequential& net = model.net();
  for (std::size_t i = 0; i < net.size(); ++i) {
    nn::Layer& L = net.at(i);
    if (auto* conv = dynamic_cast<nn::Conv2d*>(&L)) {
      b.conv(*conv);
    } else if (auto* dw = dynamic_cast<nn::DepthwiseConv2d*>(&L)) {
      b.depthwise(*dw);
    } else if (auto* block = dynamic_cast<nn::ResidualBlock*>(&L)) {
      b.residual(*block);
    } else if (auto* lin = dynamic_cast<nn::Linear*>(&L)) {
      b.linear(*lin);
    } else if (auto* bn = dynamic_cast<nn::BatchNorm2d*>(&L)) {
      b.batchnorm(*bn);
    } else if (auto* pool = dynamic_cast<nn::MaxPool2d*>(&L)) {
      Node n;
      n.kind = NodeKind::kMaxPool;
      n.name = pool->name();
      n.pool_kernel = pool->kernel();
      n.pool_stride = pool->stride();
      b.current = b.node(std::move(n), b.current);
    } else if (dynamic_cast<nn::GlobalAvgPool*>(&L) != nullptr) {
      Node n;
      n.kind = NodeKind::kGlobalAvgPool;
      n.name = L.name();
      b.current = b.node(std::move(n), b.current);
    } else if (dynamic_cast<nn::Flatten*>(&L) != nullptr) {
      Node n;
      n.kind = NodeKind::kFlatten;
      n.name = L.name();
      b.current = b.node(std::move(n), b.current);
    } else if (dynamic_cast<nn::ReLU*>(&L) != nullptr) {
      b.relu(L.name());
    } else {
      throw std::invalid_argument("graph::build_from_model: unsupported layer '" +
                                  L.name() + "'");
    }
  }

  Node out;
  out.kind = NodeKind::kOutput;
  out.name = "output";
  g.set_output(b.node(std::move(out), b.current));

  // Annotate each GEMM node with its unit's latest committed AD so the
  // activation-storage planner (graph::assign_act_bits) can apply the
  // dense-producer fallback. Units and nodes meet on the shared nn layer
  // pointers — the only identity both sides carry.
  for (int i = 0; i < model.unit_count(); ++i) {
    const models::QuantUnit& u = model.unit(i);
    const double d = unit_density(u);
    if (d < 0.0) continue;
    for (int id = 0; id < g.size(); ++id) {
      Node& n = g.at(id);
      if (n.dead) continue;
      if ((u.conv != nullptr && n.conv == u.conv) ||
          (u.dwconv != nullptr && n.dwconv == u.dwconv) ||
          (u.linear != nullptr && n.linear == u.linear)) {
        n.ad_density = d;
      }
    }
  }
  return g;
}

Graph build_from_model(models::QuantizableModel& model) {
  const models::ModelSpec& spec = model.spec();
  if (spec.layers.empty()) {
    throw std::invalid_argument("graph::build_from_model: empty model spec");
  }
  const models::LayerSpec& first = spec.layers.front();
  return build_from_model(
      model, ValueType::chw(first.in_channels, first.in_size, first.in_size));
}

}  // namespace adq::graph
