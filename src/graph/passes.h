// Legalization passes over the graph IR.
//
// Pipeline order (legalize()) and why it matters:
//
//   1. verify        — acyclicity, arity, edge validity (structural checks
//      need no types and reject malformed graphs with clean errors first)
//   2. infer_shapes  — propagate [C, H, W] / [C] value types from the input
//   3. fold_batchnorm — eval-mode BN folds into its producer conv's affine
//      epilogue; MUST run before ReLU fusion, else the conv -> bn -> relu
//      chain hides the conv from the ReLU's producer slot
//   4. fuse_relu_epilogue — a ReLU whose sole producer is a GEMM or
//      residual add becomes that node's fused epilogue
//   5. elide_quantize — identity quantizers (disabled / >= 24-bit grid)
//      vanish; a live quantizer whose only consumer is a GEMM at the same
//      bit-width is absorbed into the op (the integer engine performs
//      exactly that observation + rounding internally), leaving explicit
//      kQuantize nodes only where a value is quantized for a NON-GEMM
//      consumer (e.g. the residual skip edge, Fig 2)
//   6. eliminate_dead_nodes — anything no longer reachable from the output
//   7. infer_shapes + verify again — passes must leave a well-formed graph
//
// Every pass is idempotent: a second run returns false and leaves the graph
// unchanged (tests/test_graph.cpp asserts this).
//
// With ADQ_DUMP_GRAPH=<dir> set, legalize() writes
// <dir>/<model>_<NN>_<stage>.dot after every stage for visual inspection.
#pragma once

#include "graph/graph.h"

namespace adq::graph {

/// Propagates value types from the input node. Throws std::invalid_argument
/// on rank/channel mismatches (a conv fed the wrong channel count, a linear
/// fed unflattened maps, disagreeing add operands, ...).
void infer_shapes(Graph& g);

/// Structural checks: single live input/output, per-kind arity, edges
/// reference live nodes, acyclicity, and (when shapes are inferred) add
/// operand agreement. Throws std::invalid_argument / std::runtime_error.
void verify(const Graph& g);

/// Folds eval-mode BatchNorm into its producer conv/depthwise node and
/// removes bypassed (identity) BN nodes. Returns true when anything changed.
bool fold_batchnorm(Graph& g);

/// Fuses a standalone ReLU into the epilogue of its producer GEMM or
/// residual add (when it is the sole consumer and nothing is fused yet).
bool fuse_relu_epilogue(Graph& g);

/// Removes identity quantize nodes and absorbs input quantizers into their
/// sole GEMM consumer (same bit-width, not already quantizing).
bool elide_quantize(Graph& g);

/// Removes nodes unreachable from the output (the input node is kept).
bool eliminate_dead_nodes(Graph& g);

/// Runs the full pipeline above, dumping per-stage .dot files when
/// ADQ_DUMP_GRAPH is set.
void legalize(Graph& g);

/// One residual diamond decomposed the way the skip-stack executor runs
/// it. The skip branch may hold at most the Fig-2 quantizer and one
/// (BN-folded) downsample conv; the main chain is the straight line from
/// the fork (exclusive) to the add (exclusive), in execution order. Both
/// infer::lower_to_plan and execution_schedule() build on this one helper
/// so op emission and memory liveness can never disagree about what
/// executes when. Throws std::invalid_argument when the branches do not
/// meet at a fork the skip stack can express.
struct ResidualParts {
  int fork = -1;        // shared producer both branches read
  int quantize = -1;    // Fig-2 skip quantizer (-1 when elided)
  int downsample = -1;  // skip 1x1 conv (-1 for identity skips)
  std::vector<int> main_chain;  // execution order, may be empty
};
ResidualParts decompose_residual(const Graph& g, int add_id);

/// The order the slot-based executor materialises values, mirroring
/// infer::lower_to_plan's op emission: straight-line chains in producer
/// order; a residual diamond as fork, main branch, then the skip chain
/// (quantize, downsample) lazily just before the add — EXCEPT when the
/// skip quantizer stores packed codes (mem.act_bits > 0): a packed
/// quantizer cannot rewrite the float fork slot in place, so it runs
/// eagerly right after the fork into its own (much smaller) slot and the
/// fork dies as soon as the main branch has read it. Liveness for
/// activation-memory planning MUST be computed over this order — a plain
/// topological order could schedule the skip quantizer early and call the
/// fork value dead while the executor still needs it. Requires a legalized
/// graph; throws std::invalid_argument on residual topologies the executor
/// cannot express.
std::vector<int> execution_schedule(const Graph& g);

/// How plan_memory stores activation values whose every consumer is an
/// integer GEMM on one common eqn-1 grid: as that grid's quantize codes,
/// packed into sub-byte cells (kOn, the default — the AD policy in
/// ad/act_bits.h picks the cell), stored one code per byte regardless of
/// density (kPin with pin_bits = 8), pinned to a specific cell width
/// (kPin, widened where the grid needs more bits), or not at all (kOff —
/// every value stays float, byte-identical plans to the pre-compression
/// planner). Lossless in every mode: the stored codes are exactly what the
/// consuming GEMM's own quantize_act would compute.
struct ActStorageOptions {
  enum class Mode { kOff, kOn, kPin };
  Mode mode = Mode::kOn;
  /// kPin only: requested cell width {1, 2, 4, 8}. Values whose grid needs
  /// a wider cell use the natural cell instead (codes must fit).
  int pin_bits = 0;
  /// Layers above this bit-width run on the float path and never consume
  /// codes; must match the CompileOptions ceiling lowering will use.
  int max_integer_bits = 8;
  /// AD above which a producer falls back to 8-bit cells (kOn mode).
  double dense_threshold = 0.5;
};

/// Parses ADQ_ACT_BITS: unset/empty/"on" = kOn, "off" = kOff, "1"/"2"/
/// "4"/"8" = kPin at that cell width. Anything else throws
/// std::invalid_argument — a typo must not silently change the memory
/// plan.
ActStorageOptions act_storage_from_env();

/// Assigns per-value activation storage (ValueMem::act_bits / act_qbits)
/// under `opts`. A value packs when every effective consumer (looking
/// through kFlatten views) is an integer GEMM (quantize_input, bits within
/// the integer ceiling) and all consumers share one grid; a live skip
/// quantizer feeding only the residual add packs on its own grid
/// (act_qbits = 0 — the executor codes it directly and dequantizes at the
/// add). Everything else — forks with mixed consumers, pool/add/output
/// inputs, float-path layers — stays float. Returns the number of packed
/// values; clears all assignments when opts.mode == kOff. Requires a
/// legalized graph.
int assign_act_bits(Graph& g, const ActStorageOptions& opts);

/// Static activation-memory planner. Computes per-value lifetimes over
/// execution_schedule(), marks in-place-eligible ops (standalone
/// quantize/ReLU whose input has no later reader; the residual add, which
/// accumulates into its main operand; flatten and output, which are pure
/// views), and packs every remaining value into a per-sample arena with a
/// greedy first-fit-by-size allocator (64-byte-aligned slots, deterministic
/// placement). Runs assign_act_bits first: packed values get slots sized
/// ceil(elems * act_bits / 8) (64-aligned), always own their slot (no
/// in-place aliasing — packed bytes overlap the float words they replace),
/// and the planner records the float-storage baseline footprint in
/// Graph::arena_bytes_u8() by packing the same graph twice. Results land on
/// each node's `mem` annotation and in Graph::arena_bytes(); returns the
/// arena size in bytes. Requires inferred shapes (run legalize() first).
/// The parameterless overload reads ADQ_ACT_BITS (act_storage_from_env).
std::int64_t plan_memory(Graph& g);
std::int64_t plan_memory(Graph& g, const ActStorageOptions& opts);

}  // namespace adq::graph
