// Legalization passes over the graph IR.
//
// Pipeline order (legalize()) and why it matters:
//
//   1. verify        — acyclicity, arity, edge validity (structural checks
//      need no types and reject malformed graphs with clean errors first)
//   2. infer_shapes  — propagate [C, H, W] / [C] value types from the input
//   3. fold_batchnorm — eval-mode BN folds into its producer conv's affine
//      epilogue; MUST run before ReLU fusion, else the conv -> bn -> relu
//      chain hides the conv from the ReLU's producer slot
//   4. fuse_relu_epilogue — a ReLU whose sole producer is a GEMM or
//      residual add becomes that node's fused epilogue
//   5. elide_quantize — identity quantizers (disabled / >= 24-bit grid)
//      vanish; a live quantizer whose only consumer is a GEMM at the same
//      bit-width is absorbed into the op (the integer engine performs
//      exactly that observation + rounding internally), leaving explicit
//      kQuantize nodes only where a value is quantized for a NON-GEMM
//      consumer (e.g. the residual skip edge, Fig 2)
//   6. eliminate_dead_nodes — anything no longer reachable from the output
//   7. infer_shapes + verify again — passes must leave a well-formed graph
//
// Every pass is idempotent: a second run returns false and leaves the graph
// unchanged (tests/test_graph.cpp asserts this).
//
// With ADQ_DUMP_GRAPH=<dir> set, legalize() writes
// <dir>/<model>_<NN>_<stage>.dot after every stage for visual inspection.
#pragma once

#include "graph/graph.h"

namespace adq::graph {

/// Propagates value types from the input node. Throws std::invalid_argument
/// on rank/channel mismatches (a conv fed the wrong channel count, a linear
/// fed unflattened maps, disagreeing add operands, ...).
void infer_shapes(Graph& g);

/// Structural checks: single live input/output, per-kind arity, edges
/// reference live nodes, acyclicity, and (when shapes are inferred) add
/// operand agreement. Throws std::invalid_argument / std::runtime_error.
void verify(const Graph& g);

/// Folds eval-mode BatchNorm into its producer conv/depthwise node and
/// removes bypassed (identity) BN nodes. Returns true when anything changed.
bool fold_batchnorm(Graph& g);

/// Fuses a standalone ReLU into the epilogue of its producer GEMM or
/// residual add (when it is the sole consumer and nothing is fused yet).
bool fuse_relu_epilogue(Graph& g);

/// Removes identity quantize nodes and absorbs input quantizers into their
/// sole GEMM consumer (same bit-width, not already quantizing).
bool elide_quantize(Graph& g);

/// Removes nodes unreachable from the output (the input node is kept).
bool eliminate_dead_nodes(Graph& g);

/// Runs the full pipeline above, dumping per-stage .dot files when
/// ADQ_DUMP_GRAPH is set.
void legalize(Graph& g);

}  // namespace adq::graph
