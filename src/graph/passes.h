// Legalization passes over the graph IR.
//
// Pipeline order (legalize()) and why it matters:
//
//   1. verify        — acyclicity, arity, edge validity (structural checks
//      need no types and reject malformed graphs with clean errors first)
//   2. infer_shapes  — propagate [C, H, W] / [C] value types from the input
//   3. fold_batchnorm — eval-mode BN folds into its producer conv's affine
//      epilogue; MUST run before ReLU fusion, else the conv -> bn -> relu
//      chain hides the conv from the ReLU's producer slot
//   4. fuse_relu_epilogue — a ReLU whose sole producer is a GEMM or
//      residual add becomes that node's fused epilogue
//   5. elide_quantize — identity quantizers (disabled / >= 24-bit grid)
//      vanish; a live quantizer whose only consumer is a GEMM at the same
//      bit-width is absorbed into the op (the integer engine performs
//      exactly that observation + rounding internally), leaving explicit
//      kQuantize nodes only where a value is quantized for a NON-GEMM
//      consumer (e.g. the residual skip edge, Fig 2)
//   6. eliminate_dead_nodes — anything no longer reachable from the output
//   7. infer_shapes + verify again — passes must leave a well-formed graph
//
// Every pass is idempotent: a second run returns false and leaves the graph
// unchanged (tests/test_graph.cpp asserts this).
//
// With ADQ_DUMP_GRAPH=<dir> set, legalize() writes
// <dir>/<model>_<NN>_<stage>.dot after every stage for visual inspection.
#pragma once

#include "graph/graph.h"

namespace adq::graph {

/// Propagates value types from the input node. Throws std::invalid_argument
/// on rank/channel mismatches (a conv fed the wrong channel count, a linear
/// fed unflattened maps, disagreeing add operands, ...).
void infer_shapes(Graph& g);

/// Structural checks: single live input/output, per-kind arity, edges
/// reference live nodes, acyclicity, and (when shapes are inferred) add
/// operand agreement. Throws std::invalid_argument / std::runtime_error.
void verify(const Graph& g);

/// Folds eval-mode BatchNorm into its producer conv/depthwise node and
/// removes bypassed (identity) BN nodes. Returns true when anything changed.
bool fold_batchnorm(Graph& g);

/// Fuses a standalone ReLU into the epilogue of its producer GEMM or
/// residual add (when it is the sole consumer and nothing is fused yet).
bool fuse_relu_epilogue(Graph& g);

/// Removes identity quantize nodes and absorbs input quantizers into their
/// sole GEMM consumer (same bit-width, not already quantizing).
bool elide_quantize(Graph& g);

/// Removes nodes unreachable from the output (the input node is kept).
bool eliminate_dead_nodes(Graph& g);

/// Runs the full pipeline above, dumping per-stage .dot files when
/// ADQ_DUMP_GRAPH is set.
void legalize(Graph& g);

/// One residual diamond decomposed the way the skip-stack executor runs
/// it. The skip branch may hold at most the Fig-2 quantizer and one
/// (BN-folded) downsample conv; the main chain is the straight line from
/// the fork (exclusive) to the add (exclusive), in execution order. Both
/// infer::lower_to_plan and execution_schedule() build on this one helper
/// so op emission and memory liveness can never disagree about what
/// executes when. Throws std::invalid_argument when the branches do not
/// meet at a fork the skip stack can express.
struct ResidualParts {
  int fork = -1;        // shared producer both branches read
  int quantize = -1;    // Fig-2 skip quantizer (-1 when elided)
  int downsample = -1;  // skip 1x1 conv (-1 for identity skips)
  std::vector<int> main_chain;  // execution order, may be empty
};
ResidualParts decompose_residual(const Graph& g, int add_id);

/// The order the slot-based executor materialises values, mirroring
/// infer::lower_to_plan's op emission: straight-line chains in producer
/// order; a residual diamond as fork, main branch, then the skip chain
/// (quantize, downsample) lazily just before the add. Liveness for
/// activation-memory planning MUST be computed over this order — a plain
/// topological order could schedule the skip quantizer early and call the
/// fork value dead while the executor still needs it. Requires a legalized
/// graph; throws std::invalid_argument on residual topologies the executor
/// cannot express.
std::vector<int> execution_schedule(const Graph& g);

/// Static activation-memory planner. Computes per-value lifetimes over
/// execution_schedule(), marks in-place-eligible ops (standalone
/// quantize/ReLU whose input has no later reader; the residual add, which
/// accumulates into its main operand; flatten and output, which are pure
/// views), and packs every remaining value into a per-sample arena with a
/// greedy first-fit-by-size allocator (64-byte-aligned slots, deterministic
/// placement). Results land on each node's `mem` annotation and in
/// Graph::arena_bytes(); returns the arena size in bytes. Requires inferred
/// shapes (run legalize() first).
std::int64_t plan_memory(Graph& g);

}  // namespace adq::graph
