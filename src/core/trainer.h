// Training loop over a QuantizableModel.
//
// One Trainer owns the optimizer and the batch shuffling RNG; Algorithm 1's
// controller drives it epoch by epoch. Evaluation switches the network to
// eval mode (BatchNorm running stats, no AD observation) and restores
// training mode afterwards.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "data/dataset.h"
#include "models/model.h"
#include "nn/loss.h"
#include "nn/optimizer.h"

namespace adq::core {

enum class OptimizerKind { kAdam, kSgd };

struct TrainerConfig {
  std::int64_t batch_size = 32;
  OptimizerKind optimizer = OptimizerKind::kAdam;  // paper: Adam, std settings
  float lr = 1e-3f;
  float momentum = 0.9f;      // SGD only
  float weight_decay = 0.0f;
  std::uint64_t seed = 1;
  // Gradient quantization (paper §I: quantized gradients enable
  // communication-efficient distributed training, QSGD-style). 0 = off;
  // k >= 1 fake-quantizes every parameter gradient to k bits per step.
  int grad_bits = 0;
};

struct EpochStats {
  double train_loss = 0.0;
  double train_accuracy = 0.0;
  std::vector<double> densities;  // per-unit AD committed this epoch
};

class Trainer {
 public:
  Trainer(models::QuantizableModel& model, const data::Dataset& train,
          const data::Dataset& test, TrainerConfig cfg = {});

  /// One full pass over the training set; commits per-unit densities.
  EpochStats run_epoch();

  /// Top-1 accuracy on the test set (eval mode, meters off).
  double evaluate();

  /// Top-1 accuracy on an arbitrary dataset in eval mode.
  double evaluate_on(const data::Dataset& dataset);

  models::QuantizableModel& model() { return model_; }
  const TrainerConfig& config() const { return cfg_; }

 private:
  models::QuantizableModel& model_;
  const data::Dataset& train_;
  const data::Dataset& test_;
  TrainerConfig cfg_;
  Rng rng_;
  std::unique_ptr<nn::Optimizer> optimizer_;
  nn::SoftmaxCrossEntropy loss_;
};

}  // namespace adq::core
