#include "core/ad_quantizer.h"

#include <cstdio>

namespace adq::core {

AdQuantizationController::AdQuantizationController(models::QuantizableModel& model,
                                                   Trainer& trainer, AdqConfig cfg)
    : model_(model), trainer_(trainer), cfg_(cfg), baseline_spec_(model.spec()) {}

int AdQuantizationController::train_until_saturated(RunResult& result) {
  int epochs = 0;
  for (int epoch = 0; epoch < cfg_.max_epochs_per_iter; ++epoch) {
    const EpochStats stats = trainer_.run_epoch();
    const double acc = trainer_.evaluate();
    ++epochs;

    for (std::size_t u = 0; u < stats.densities.size(); ++u) {
      result.ad_per_unit[u].push_back(stats.densities[u]);
    }
    result.test_accuracy_per_epoch.push_back(acc);
    result.train_loss_per_epoch.push_back(stats.train_loss);
    if (cfg_.verbose) {
      std::fprintf(stderr, "    epoch %3d  loss %.4f  train %.3f  test %.3f\n",
                   epoch + 1, stats.train_loss, stats.train_accuracy, acc);
    }
    if (epochs >= cfg_.min_epochs_per_iter &&
        cfg_.detector.all_saturated(model_.density_histories())) {
      break;
    }
  }
  return epochs;
}

RunResult AdQuantizationController::run() {
  RunResult result;
  result.ad_per_unit.resize(static_cast<std::size_t>(model_.unit_count()));

  const std::vector<bool> frozen = model_.frozen_mask();
  int total_epochs = 0;
  std::vector<energy::IterationCost> costs;

  for (int iter = 1; iter <= cfg_.max_iterations; ++iter) {
    model_.reset_meters();
    if (cfg_.verbose) {
      std::fprintf(stderr, "  iter %d: bits %s\n", iter,
                   model_.bit_policy().to_string().c_str());
    }
    const int epochs = train_until_saturated(result);
    total_epochs += epochs;

    IterationResult ir;
    ir.iter = iter;
    ir.bits = model_.bit_policy();
    ir.channels = model_.channel_policy();
    ir.epochs = epochs;
    ir.test_accuracy = result.test_accuracy_per_epoch.back();
    ir.densities = model_.latest_densities();
    ir.total_ad = model_.total_density();
    ir.mac_reduction = energy::mac_energy_reduction(model_.spec(), baseline_spec_);
    ir.energy_efficiency = energy::energy_efficiency(model_.spec(), baseline_spec_);
    costs.push_back({ir.mac_reduction, ir.epochs});
    result.iterations.push_back(ir);

    // eqn 3 (+ optional eqn 5) updates.
    quant::BitWidthPolicy next_bits =
        ir.bits.updated(ir.densities, frozen, cfg_.rounding);
    if (cfg_.hardware_grid) next_bits = next_bits.hardware_rounded();

    bool channels_changed = false;
    std::vector<std::int64_t> next_channels = ir.channels;
    if (cfg_.prune) {
      next_channels = update_channels(ir.channels, ir.densities, frozen, cfg_.pruner);
      channels_changed = next_channels != ir.channels;
    }

    if (next_bits == ir.bits && !channels_changed) break;  // AD has saturated at ~1
    model_.apply_bit_policy(next_bits);
    if (cfg_.prune) model_.apply_channel_policy(next_channels);
  }

  // Train the converged k_l-bit model for the remaining budget, still
  // recording trajectories (the paper trains the final model to convergence).
  if (cfg_.final_epochs > 0) {
    model_.reset_meters();
    for (int e = 0; e < cfg_.final_epochs; ++e) {
      const EpochStats stats = trainer_.run_epoch();
      const double acc = trainer_.evaluate();
      ++total_epochs;
      for (std::size_t u = 0; u < stats.densities.size(); ++u) {
        result.ad_per_unit[u].push_back(stats.densities[u]);
      }
      result.test_accuracy_per_epoch.push_back(acc);
      result.train_loss_per_epoch.push_back(stats.train_loss);
    }
    IterationResult& last = result.iterations.back();
    last.epochs += cfg_.final_epochs;
    last.test_accuracy = result.test_accuracy_per_epoch.back();
    costs.back().epochs += cfg_.final_epochs;
  }

  result.training_complexity_raw = energy::training_complexity(costs);
  result.training_complexity_vs_baseline =
      energy::training_complexity_vs_baseline(costs, total_epochs);
  return result;
}

}  // namespace adq::core
