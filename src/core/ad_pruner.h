// Activation-Density based channel pruning — paper eqn (5):
//
//   C_l = round(C_l * AD_l)
//
// applied iteratively alongside the quantization updates (the paper writes
// C_l_initial, but its Table III channel counts shrink multiplicatively per
// iteration, i.e. the update is applied to the *current* counts — we follow
// the tables; see DESIGN.md). Frozen units (first conv / final FC) and any
// unit at min_channels are left alone.
#pragma once

#include <cstdint>
#include <vector>

namespace adq::core {

struct PrunerConfig {
  std::int64_t min_channels = 1;
};

/// Returns the eqn-5 updated channel counts. `frozen` marks exempt units.
std::vector<std::int64_t> update_channels(const std::vector<std::int64_t>& current,
                                          const std::vector<double>& densities,
                                          const std::vector<bool>& frozen,
                                          const PrunerConfig& cfg = {});

}  // namespace adq::core
