// Algorithm 1 — in-training Activation-Density based quantization.
//
// The controller drives a Trainer through quantization iterations:
//
//   for iter = 1..N:
//     train epochs, monitoring per-layer AD; break when AD saturates
//     k_l <- round(k_l * AD_l) for every non-frozen layer        (eqn 3)
//     [optionally C_l <- round(C_l * AD_l) — coupled pruning]    (eqn 5)
//   stop when neither bits nor channels change (AD has hit ~1.0)
//
// Every iteration's bit vector, AD, accuracy, analytical energy efficiency
// and epoch count are recorded — these are exactly the rows of the paper's
// Tables II and III. Epoch-granular AD and accuracy trajectories feed
// Figs 1/3/4.
//
// Paper hook: Algorithm 1 end to end (eqns 2, 3, 5; Tables II/III). The
// converged model's bit policy is what infer::compile turns into packed
// integer weights.
#pragma once

#include <vector>

#include "ad/saturation.h"
#include "core/ad_pruner.h"
#include "core/trainer.h"
#include "energy/analytical.h"
#include "energy/training_complexity.h"
#include "quant/bitwidth.h"

namespace adq::core {

struct AdqConfig {
  int max_iterations = 6;         // Algorithm 1's N (converges in 3-4)
  int min_epochs_per_iter = 2;    // train at least this long per iteration
  int max_epochs_per_iter = 30;   // cap when AD refuses to settle
  ad::SaturationDetector detector{/*window=*/4, /*tolerance=*/0.015};
  quant::Rounding rounding = quant::Rounding::kNearest;  // eqn-3 ablation
  bool hardware_grid = false;  // snap eqn-3 results to {2,4,8,16} (ablation)
  bool prune = false;          // couple eqn-5 channel pruning
  PrunerConfig pruner;
  int final_epochs = 0;  // extra training of the converged model
  bool verbose = false;  // progress lines on stderr
};

struct IterationResult {
  int iter = 1;                          // 1-based, like the paper's tables
  quant::BitWidthPolicy bits;            // policy in force DURING the iter
  std::vector<std::int64_t> channels;    // live channels during the iter
  int epochs = 0;
  double test_accuracy = 0.0;
  double total_ad = 0.0;                 // mean per-unit AD at iter end
  std::vector<double> densities;         // per-unit AD at iter end
  double mac_reduction = 1.0;            // analytical MAC-energy factor
  double energy_efficiency = 1.0;        // analytical full-energy factor
};

struct RunResult {
  std::vector<IterationResult> iterations;
  // Epoch-granular trajectories across the whole run (Figs 1/3/4).
  std::vector<std::vector<double>> ad_per_unit;  // [unit][epoch]
  std::vector<double> test_accuracy_per_epoch;
  std::vector<double> train_loss_per_epoch;
  // eqn-4 training complexity.
  double training_complexity_raw = 0.0;
  double training_complexity_vs_baseline = 0.0;  // normalised by total epochs
                                                 // of an equally long 16-bit run
  const IterationResult& final_iteration() const { return iterations.back(); }
};

class AdQuantizationController {
 public:
  AdQuantizationController(models::QuantizableModel& model, Trainer& trainer,
                           AdqConfig cfg = {});

  /// Runs Algorithm 1 to convergence (or max_iterations) and returns the
  /// full record. The model is left in its final mixed-precision state.
  RunResult run();

 private:
  /// Trains until AD saturates (or the epoch cap); returns epochs used.
  int train_until_saturated(RunResult& result);

  models::QuantizableModel& model_;
  Trainer& trainer_;
  AdqConfig cfg_;
  models::ModelSpec baseline_spec_;  // snapshot for efficiency factors
};

}  // namespace adq::core
