#include "core/trainer.h"

#include "quant/quantizer.h"
#include "tensor/ops.h"

namespace adq::core {

Trainer::Trainer(models::QuantizableModel& model, const data::Dataset& train,
                 const data::Dataset& test, TrainerConfig cfg)
    : model_(model), train_(train), test_(test), cfg_(cfg), rng_(cfg.seed) {
  std::vector<nn::Parameter*> params = model_.parameters();
  if (cfg_.optimizer == OptimizerKind::kAdam) {
    optimizer_ = std::make_unique<nn::Adam>(std::move(params), cfg_.lr, 0.9f,
                                            0.999f, 1e-8f, cfg_.weight_decay);
  } else {
    optimizer_ = std::make_unique<nn::Sgd>(std::move(params), cfg_.lr,
                                           cfg_.momentum, cfg_.weight_decay);
  }
}

EpochStats Trainer::run_epoch() {
  model_.set_training(true);
  model_.set_meters_active(true);

  data::BatchLoader loader(train_, cfg_.batch_size, rng_, /*shuffle=*/true);
  data::Batch batch;
  double loss_sum = 0.0;
  std::int64_t correct = 0, seen = 0, batches = 0;
  while (loader.next(batch)) {
    optimizer_->zero_grad();
    const Tensor logits = model_.forward(batch.images);
    loss_sum += loss_.forward(logits, batch.labels);
    model_.backward(loss_.backward());
    if (cfg_.grad_bits > 0) {
      // QSGD-style gradient quantization: each gradient tensor is snapped
      // to a k-bit grid before the update, emulating what a distributed
      // worker would transmit.
      for (nn::Parameter* p : optimizer_->params()) {
        p->grad = quant::fake_quantize(p->grad, cfg_.grad_bits);
      }
    }
    optimizer_->step();

    const std::vector<std::int64_t> pred = argmax_rows(logits);
    for (std::size_t i = 0; i < pred.size(); ++i) {
      if (pred[i] == batch.labels[i]) ++correct;
    }
    seen += static_cast<std::int64_t>(pred.size());
    ++batches;
  }

  EpochStats stats;
  stats.train_loss = batches > 0 ? loss_sum / static_cast<double>(batches) : 0.0;
  stats.train_accuracy =
      seen > 0 ? static_cast<double>(correct) / static_cast<double>(seen) : 0.0;
  stats.densities = model_.commit_epoch_densities();
  return stats;
}

double Trainer::evaluate() { return evaluate_on(test_); }

double Trainer::evaluate_on(const data::Dataset& dataset) {
  model_.set_training(false);
  model_.set_meters_active(false);

  Rng eval_rng(0);  // unused (no shuffle) but BatchLoader needs one
  data::BatchLoader loader(dataset, cfg_.batch_size, eval_rng, /*shuffle=*/false);
  data::Batch batch;
  std::int64_t correct = 0, seen = 0;
  while (loader.next(batch)) {
    const Tensor logits = model_.forward(batch.images);
    const std::vector<std::int64_t> pred = argmax_rows(logits);
    for (std::size_t i = 0; i < pred.size(); ++i) {
      if (pred[i] == batch.labels[i]) ++correct;
    }
    seen += static_cast<std::int64_t>(pred.size());
  }

  model_.set_training(true);
  model_.set_meters_active(true);
  return seen > 0 ? static_cast<double>(correct) / static_cast<double>(seen) : 0.0;
}

}  // namespace adq::core
