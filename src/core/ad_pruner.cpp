#include "core/ad_pruner.h"

#include <cmath>
#include <stdexcept>

namespace adq::core {

std::vector<std::int64_t> update_channels(const std::vector<std::int64_t>& current,
                                          const std::vector<double>& densities,
                                          const std::vector<bool>& frozen,
                                          const PrunerConfig& cfg) {
  if (current.size() != densities.size() || current.size() != frozen.size()) {
    throw std::invalid_argument("update_channels: size mismatch");
  }
  std::vector<std::int64_t> updated(current.size());
  for (std::size_t i = 0; i < current.size(); ++i) {
    if (frozen[i]) {
      updated[i] = current[i];
      continue;
    }
    if (densities[i] < 0.0) {
      throw std::invalid_argument("update_channels: negative density");
    }
    const std::int64_t next =
        std::llround(static_cast<double>(current[i]) * densities[i]);
    updated[i] = std::max(cfg.min_channels, next);
  }
  return updated;
}

}  // namespace adq::core
