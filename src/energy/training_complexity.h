// Training Complexity — paper eqn (4):
//
//   TC = sum_i (MAC_reduction_i)^-1 * (#epochs_i)
//
// where i runs over quantization iterations, MAC_reduction_i is the compute
// reduction of the iteration-i model relative to the 16-bit baseline, and
// #epochs_i the epochs trained in that iteration. The paper normalises by
// the baseline's training run ("1x" anchor row), so we expose both the raw
// sum and a normalised ratio.
#pragma once

#include <vector>

namespace adq::energy {

struct IterationCost {
  double mac_reduction = 1.0;  // >= from mac_energy_reduction()
  int epochs = 0;
};

/// Raw eqn-4 sum in "baseline-equivalent epochs".
double training_complexity(const std::vector<IterationCost>& iterations);

/// Normalised against a baseline trained `baseline_epochs` at reduction 1.
double training_complexity_vs_baseline(const std::vector<IterationCost>& iterations,
                                       int baseline_epochs);

}  // namespace adq::energy
