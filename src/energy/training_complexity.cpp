#include "energy/training_complexity.h"

#include <stdexcept>

namespace adq::energy {

double training_complexity(const std::vector<IterationCost>& iterations) {
  double total = 0.0;
  for (const IterationCost& it : iterations) {
    if (it.mac_reduction <= 0.0) {
      throw std::invalid_argument("training_complexity: non-positive MAC reduction");
    }
    total += static_cast<double>(it.epochs) / it.mac_reduction;
  }
  return total;
}

double training_complexity_vs_baseline(const std::vector<IterationCost>& iterations,
                                       int baseline_epochs) {
  if (baseline_epochs <= 0) {
    throw std::invalid_argument("training_complexity_vs_baseline: baseline epochs <= 0");
  }
  return training_complexity(iterations) / static_cast<double>(baseline_epochs);
}

}  // namespace adq::energy
