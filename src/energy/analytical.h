// Analytical 45 nm CMOS energy model — paper Table I and section IV-A.
//
//   E_Mem|k  = 2.5 * k                     pJ per k-bit memory access
//   E_MAC|k  = 3.1 * k / 32 + 0.1          pJ per k-bit multiply-accumulate
//   N_mem    = N^2 * I + p^2 * I * O
//   N_MAC    = M^2 * I * p^2 * O
//   E_layer  = N_mem * E_Mem|k + N_MAC * E_MAC|k
//
// The paper is explicit that this model assumes an idealised per-layer-
// precision datapath and *overestimates* mixed-precision savings relative
// to real hardware; bench_analytical_vs_pim quantifies exactly that gap.
#pragma once

#include <string>
#include <vector>

#include "models/spec.h"

namespace adq::energy {

struct EnergyConstants {
  double mem_pj_per_bit = 2.5;  // E_Mem|k = mem_pj_per_bit * k
  double mult32_pj = 3.1;       // 32-bit multiply
  double add32_pj = 0.1;        // 32-bit add
};

/// E_Mem|k in pJ.
double mem_access_energy_pj(int bits, const EnergyConstants& c = {});

/// E_MAC|k in pJ.
double mac_energy_pj(int bits, const EnergyConstants& c = {});

struct LayerEnergy {
  std::string name;
  int bits = 16;
  std::int64_t macs = 0;
  std::int64_t mem_accesses = 0;
  double mac_energy_pj = 0.0;
  double mem_energy_pj = 0.0;
  double total_pj() const { return mac_energy_pj + mem_energy_pj; }
};

struct EnergyReport {
  std::vector<LayerEnergy> layers;
  double total_pj = 0.0;
  double total_mac_pj = 0.0;
  double total_mem_pj = 0.0;
  double total_uj() const { return total_pj * 1e-6; }
};

/// Evaluates the full model at its current bits/active-channels.
EnergyReport analytical_energy(const models::ModelSpec& spec,
                               const EnergyConstants& c = {});

/// Energy-efficiency factor of `model` relative to `baseline`
/// (baseline energy / model energy) — the paper's "Energy Efficiency" column.
double energy_efficiency(const models::ModelSpec& model,
                         const models::ModelSpec& baseline,
                         const EnergyConstants& c = {});

/// MAC-energy-only reduction factor (used by the eqn-4 training-complexity
/// metric, whose term is "MAC reduction").
double mac_energy_reduction(const models::ModelSpec& model,
                            const models::ModelSpec& baseline,
                            const EnergyConstants& c = {});

}  // namespace adq::energy
