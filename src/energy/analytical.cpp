#include "energy/analytical.h"

#include <stdexcept>

namespace adq::energy {

double mem_access_energy_pj(int bits, const EnergyConstants& c) {
  if (bits < 1) throw std::invalid_argument("mem_access_energy_pj: bits < 1");
  return c.mem_pj_per_bit * bits;
}

double mac_energy_pj(int bits, const EnergyConstants& c) {
  if (bits < 1) throw std::invalid_argument("mac_energy_pj: bits < 1");
  return c.mult32_pj * bits / 32.0 + c.add32_pj;
}

EnergyReport analytical_energy(const models::ModelSpec& spec,
                               const EnergyConstants& c) {
  EnergyReport report;
  report.layers.reserve(spec.layers.size());
  for (const models::LayerSpec& l : spec.layers) {
    LayerEnergy e;
    e.name = l.name;
    e.bits = l.bits;
    e.macs = l.macs();
    e.mem_accesses = l.mem_accesses();
    e.mac_energy_pj = static_cast<double>(e.macs) * mac_energy_pj(l.bits, c);
    e.mem_energy_pj =
        static_cast<double>(e.mem_accesses) * mem_access_energy_pj(l.bits, c);
    report.total_mac_pj += e.mac_energy_pj;
    report.total_mem_pj += e.mem_energy_pj;
    report.layers.push_back(std::move(e));
  }
  report.total_pj = report.total_mac_pj + report.total_mem_pj;
  return report;
}

double energy_efficiency(const models::ModelSpec& model,
                         const models::ModelSpec& baseline,
                         const EnergyConstants& c) {
  const double model_pj = analytical_energy(model, c).total_pj;
  const double base_pj = analytical_energy(baseline, c).total_pj;
  if (model_pj <= 0.0) throw std::invalid_argument("energy_efficiency: zero model energy");
  return base_pj / model_pj;
}

double mac_energy_reduction(const models::ModelSpec& model,
                            const models::ModelSpec& baseline,
                            const EnergyConstants& c) {
  const double model_pj = analytical_energy(model, c).total_mac_pj;
  const double base_pj = analytical_energy(baseline, c).total_mac_pj;
  if (model_pj <= 0.0) throw std::invalid_argument("mac_energy_reduction: zero model energy");
  return base_pj / model_pj;
}

}  // namespace adq::energy
