#include "pim/mapper.h"

#include <stdexcept>

#include "quant/bitwidth.h"

namespace adq::pim {

LayerMapping map_layer(const models::LayerSpec& layer, const PimConfig& cfg,
                       const PimEnergyOptions& opts) {
  LayerMapping m;
  m.name = layer.name;
  m.bits = layer.bits;
  m.hardware_bits = quant::round_to_hardware_bits(layer.bits);
  m.macs = layer.macs();

  const std::int64_t fan_in = layer.active_in * layer.kernel * layer.kernel;
  const std::int64_t outputs = layer.active_out;
  m.row_tiles = (fan_in + cfg.rows - 1) / cfg.rows;
  const std::int64_t outputs_per_tile = cfg.cols / m.hardware_bits;
  if (outputs_per_tile < 1) {
    throw std::invalid_argument("map_layer: array narrower than one output at this precision");
  }
  m.col_tiles = (outputs + outputs_per_tile - 1) / outputs_per_tile;
  m.total_tiles = m.row_tiles * m.col_tiles;

  // Bit-serial cycles follow the activation stream width; energy scales with
  // cycles, so the full-16 stream multiplies E_MAC|k by 16/k (see header).
  const bool full16 = opts.streaming == ActivationStreaming::kFull16;
  m.serial_cycles = full16 ? 16 : m.hardware_bits;
  m.mac_energy_fj = pim_mac_energy_fj(m.hardware_bits) *
                    (full16 ? 16.0 / m.hardware_bits : 1.0);
  m.energy_uj = static_cast<double>(m.macs) * m.mac_energy_fj * 1e-9;  // fJ -> uJ
  return m;
}

PimEnergyReport pim_energy(const models::ModelSpec& spec, const PimConfig& cfg,
                           const PimEnergyOptions& opts) {
  PimEnergyReport report;
  report.layers.reserve(spec.layers.size());
  for (const models::LayerSpec& l : spec.layers) {
    LayerMapping m = map_layer(l, cfg, opts);
    report.total_uj += m.energy_uj;
    report.layers.push_back(std::move(m));
  }
  return report;
}

double pim_energy_reduction(const models::ModelSpec& model,
                            const models::ModelSpec& baseline,
                            const PimConfig& cfg, const PimEnergyOptions& opts) {
  const double model_uj = pim_energy(model, cfg, opts).total_uj;
  const double base_uj = pim_energy(baseline, cfg, opts).total_uj;
  if (model_uj <= 0.0) {
    throw std::invalid_argument("pim_energy_reduction: zero model energy");
  }
  return base_uj / model_uj;
}

}  // namespace adq::pim
