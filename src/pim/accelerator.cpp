#include "pim/accelerator.h"

#include <algorithm>
#include <stdexcept>

namespace adq::pim {

std::int64_t ShiftAccumulatorTree::combine(
    const std::vector<std::vector<std::int64_t>>& partials, int bits) {
  std::int64_t result = 0;
  for (std::size_t p = 0; p < partials.size(); ++p) {
    for (std::size_t q = 0; q < partials[p].size(); ++q) {
      result += partials[p][q] << (p + q);
      // Every partial lands in the lowest-level accumulator; wider
      // precisions shift-add through the higher levels (Fig 5: blue path
      // forwards ACC4 directly for 2-bit layers, red path engages ACC8,
      // and the widest products walk up to ACC16).
      if (events_ != nullptr) {
        events_->acc4_ops += 1;
        if (bits >= 4) events_->acc8_ops += 1;
        if (bits >= 8) events_->acc16_ops += 1;
      }
    }
  }
  return result;
}

PimArray::PimArray(PimConfig cfg) : cfg_(cfg) {
  if (cfg_.rows < 1 || cfg_.cols < 1 || cfg_.column_group < 1) {
    throw std::invalid_argument("PimArray: invalid geometry");
  }
  cells_.assign(static_cast<std::size_t>(cfg_.rows * cfg_.cols), 0);
}

std::int64_t PimArray::outputs_per_tile(int bits) const {
  return cfg_.cols / bits;
}

void PimArray::load_weights(const std::vector<std::vector<std::int64_t>>& weights,
                            int bits) {
  if (bits != 2 && bits != 4 && bits != 8 && bits != 16) {
    throw std::invalid_argument("PimArray: precision must be on the 2/4/8/16 grid");
  }
  outputs_ = static_cast<std::int64_t>(weights.size());
  if (outputs_ > outputs_per_tile(bits)) {
    throw std::invalid_argument("PimArray: too many outputs for tile at this precision");
  }
  fan_in_ = outputs_ == 0 ? 0 : static_cast<std::int64_t>(weights[0].size());
  if (fan_in_ > cfg_.rows) {
    throw std::invalid_argument("PimArray: fan-in exceeds array rows");
  }
  bits_ = bits;
  std::fill(cells_.begin(), cells_.end(), 0);
  for (std::int64_t o = 0; o < outputs_; ++o) {
    if (static_cast<std::int64_t>(weights[static_cast<std::size_t>(o)].size()) != fan_in_) {
      throw std::invalid_argument("PimArray: ragged weight matrix");
    }
    for (std::int64_t r = 0; r < fan_in_; ++r) {
      const std::int64_t code = weights[static_cast<std::size_t>(o)][static_cast<std::size_t>(r)];
      if (code < 0 || code >= (std::int64_t{1} << bits)) {
        throw std::invalid_argument("PimArray: weight code out of k-bit range");
      }
      for (int p = 0; p < bits; ++p) {
        cells_[static_cast<std::size_t>(r * cfg_.cols + o * bits + p)] =
            static_cast<std::uint8_t>((code >> p) & 1);
      }
    }
  }
}

std::vector<std::int64_t> PimArray::compute(
    const std::vector<std::int64_t>& activations, EventCounts& events) const {
  if (static_cast<std::int64_t>(activations.size()) != fan_in_) {
    throw std::invalid_argument("PimArray: activation length != loaded fan-in");
  }
  for (std::int64_t code : activations) {
    if (code < 0 || code >= (std::int64_t{1} << bits_)) {
      throw std::invalid_argument("PimArray: activation code out of k-bit range");
    }
  }
  std::vector<std::int64_t> results(static_cast<std::size_t>(outputs_), 0);
  ShiftAccumulatorTree tree(&events);

  for (std::int64_t o = 0; o < outputs_; ++o) {
    // partials[p][q]: column sum of weight bit-plane p under activation
    // bit-position q.
    std::vector<std::vector<std::int64_t>> partials(
        static_cast<std::size_t>(bits_),
        std::vector<std::int64_t>(static_cast<std::size_t>(bits_), 0));
    for (int q = 0; q < bits_; ++q) {
      // Input decoder presents activation bit q of every row this cycle.
      events.decoder_reads += 1;
      for (int p = 0; p < bits_; ++p) {
        const std::int64_t col = o * bits_ + p;
        std::int64_t colsum = 0;
        for (std::int64_t r = 0; r < fan_in_; ++r) {
          const std::int64_t a_bit = (activations[static_cast<std::size_t>(r)] >> q) & 1;
          const std::int64_t w_bit = cells_[static_cast<std::size_t>(r * cfg_.cols + col)];
          colsum += a_bit & w_bit;  // the 1-bit memory-and-multiply cell
          events.cell_mults += 1;
        }
        partials[static_cast<std::size_t>(p)][static_cast<std::size_t>(q)] = colsum;
      }
      events.array_reads += (bits_ + cfg_.column_group - 1) / cfg_.column_group;
    }
    results[static_cast<std::size_t>(o)] = tree.combine(partials, bits_);
  }
  return results;
}

std::int64_t pim_xnor_dot_product(const std::vector<int>& weight_signs,
                                  const std::vector<int>& activation_signs,
                                  EventCounts& events) {
  if (weight_signs.size() != activation_signs.size()) {
    throw std::invalid_argument("pim_xnor_dot_product: length mismatch");
  }
  const std::int64_t n = static_cast<std::int64_t>(weight_signs.size());
  std::int64_t popcount = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    const int w = weight_signs[static_cast<std::size_t>(i)];
    const int a = activation_signs[static_cast<std::size_t>(i)];
    if ((w != 0 && w != 1) || (a != 0 && a != 1)) {
      throw std::invalid_argument("pim_xnor_dot_product: signs must be 0/1 bits");
    }
    popcount += w ^ a;  // mismatched signs contribute -1 to the dot product
    events.cell_mults += 1;
  }
  events.decoder_reads += 1;
  return n - 2 * popcount;
}

std::int64_t pim_dot_product(const std::vector<std::int64_t>& weights,
                             const std::vector<std::int64_t>& activations,
                             int bits, EventCounts& events,
                             const PimConfig& cfg) {
  if (weights.size() != activations.size()) {
    throw std::invalid_argument("pim_dot_product: length mismatch");
  }
  PimArray array(cfg);
  std::int64_t total = 0;
  const std::int64_t n = static_cast<std::int64_t>(weights.size());
  for (std::int64_t start = 0; start < n; start += cfg.rows) {
    const std::int64_t len = std::min<std::int64_t>(cfg.rows, n - start);
    std::vector<std::vector<std::int64_t>> w_tile(
        1, std::vector<std::int64_t>(weights.begin() + start,
                                     weights.begin() + start + len));
    std::vector<std::int64_t> a_tile(activations.begin() + start,
                                     activations.begin() + start + len);
    array.load_weights(w_tile, bits);
    total += array.compute(a_tile, events)[0];
  }
  return total;
}

}  // namespace adq::pim
