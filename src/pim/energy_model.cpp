#include "pim/energy_model.h"

#include <stdexcept>

#include "quant/bitwidth.h"

namespace adq::pim {

double pim_mac_energy_fj(int hardware_bits) {
  switch (hardware_bits) {
    case 2:
      return 2.942;
    case 4:
      return 16.968;
    case 8:
      return 66.714;
    case 16:
      return 276.676;
    default:
      throw std::invalid_argument(
          "pim_mac_energy_fj: unsupported hardware precision " +
          std::to_string(hardware_bits) + " (PIM grid is 2/4/8/16)");
  }
}

double pim_mac_energy_for_bits_fj(int bits) {
  return pim_mac_energy_fj(quant::round_to_hardware_bits(bits));
}

EventCounts& EventCounts::operator+=(const EventCounts& other) {
  cell_mults += other.cell_mults;
  decoder_reads += other.decoder_reads;
  acc4_ops += other.acc4_ops;
  acc8_ops += other.acc8_ops;
  acc16_ops += other.acc16_ops;
  array_reads += other.array_reads;
  return *this;
}

double event_energy_fj(const EventCounts& events, const EventEnergies& e) {
  return static_cast<double>(events.cell_mults) * e.cell_fj +
         static_cast<double>(events.decoder_reads) * e.decoder_fj +
         static_cast<double>(events.acc4_ops) * e.acc4_fj +
         static_cast<double>(events.acc8_ops) * e.acc8_fj +
         static_cast<double>(events.acc16_ops) * e.acc16_fj +
         static_cast<double>(events.array_reads) * e.array_read_fj;
}

EventCounts expected_mac_events(int k) {
  if (k != 2 && k != 4 && k != 8 && k != 16) {
    throw std::invalid_argument("expected_mac_events: bits must be on the PIM grid");
  }
  EventCounts ev;
  // k weight bit-planes by k serial activation cycles.
  ev.cell_mults = static_cast<std::int64_t>(k) * k;
  ev.decoder_reads = k;
  // 4 columns are read together into the lowest accumulator level.
  ev.acc4_ops = static_cast<std::int64_t>(k) * k / 4;
  if (ev.acc4_ops == 0) ev.acc4_ops = 1;
  ev.acc8_ops = k >= 4 ? static_cast<std::int64_t>(k) * k / 8 : 0;
  ev.acc16_ops = k >= 16 ? 16 : 0;  // 16-bit level engages only at full width
  ev.array_reads = ev.acc4_ops;
  return ev;
}

}  // namespace adq::pim
