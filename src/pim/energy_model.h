// PIM energy model — paper Table IV (45 nm CMOS measurements of the
// proposed accelerator) plus an event-calibrated decomposition.
//
// The headline numbers (Tables V/VI) use the measured per-MAC energies
// directly, exactly as the paper does:
//
//   E_MAC|2  =   2.942 fJ
//   E_MAC|4  =  16.968 fJ
//   E_MAC|8  =  66.714 fJ
//   E_MAC|16 = 276.676 fJ
//
// The event model breaks a k-bit MAC into architectural events of Fig 5
// (cell multiplies, decoder reads, accumulator ops per level) with energies
// fitted to Table IV; it exists to show energy scaling is structural
// (cell ops grow as k^2, accumulator levels activate at 4/8/16 bits), and
// backs the ablation benches. Fit error vs Table IV is < 5% per point.
//
// Paper hook: Table IV (measured E_MAC per precision) decomposed over the
// Fig 5 event structure; feeds the Table V/VI energy totals via pim/mapper.
#pragma once

#include <cstdint>

namespace adq::pim {

/// Per-MAC energy in fJ for a *hardware* precision (must be 2/4/8/16).
double pim_mac_energy_fj(int hardware_bits);

/// Convenience: rounds arbitrary bits up to the PIM grid first.
double pim_mac_energy_for_bits_fj(int bits);

/// Architectural event counts accumulated by the functional simulator.
struct EventCounts {
  std::int64_t cell_mults = 0;     // 1-bit SRAM multiply-cell activations
  std::int64_t decoder_reads = 0;  // input-decoder bit presentations
  std::int64_t acc4_ops = 0;       // lowest-level (4-bit) accumulator ops
  std::int64_t acc8_ops = 0;       // 8-bit shift-add level
  std::int64_t acc16_ops = 0;      // 16-bit shift-add level
  std::int64_t array_reads = 0;    // column-group (4-column) read events

  EventCounts& operator+=(const EventCounts& other);
};

/// Event energies in fJ, fitted to Table IV (see header comment).
struct EventEnergies {
  double cell_fj = 0.4;
  double decoder_fj = 0.05;
  double acc4_fj = 1.242;
  double acc8_fj = 2.70;
  double acc16_fj = 0.474;
  double array_read_fj = 0.0;  // folded into acc4 by the calibration
};

/// Event-model energy of a batch of events.
double event_energy_fj(const EventCounts& events, const EventEnergies& e = {});

/// Expected per-MAC event counts for a k-bit MAC (k on the hardware grid).
/// Used by tests to cross-check the simulator and by the calibration.
EventCounts expected_mac_events(int hardware_bits);

}  // namespace adq::pim
