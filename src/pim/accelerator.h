// Functional simulation of the precision-scalable PIM accelerator (Fig 5).
//
// The accelerator has three sections:
//   1. Input decoder  — streams activation bits row-by-row, one bit-position
//                       per cycle (bit-serial).
//   2. PIM block      — a 2-D array of 1-bit SRAM memory-and-multiply cells;
//                       a cell ANDs its stored weight bit with the presented
//                       activation bit, and a column sums its cells.
//   3. Shift-Accumulator — hierarchical accumulators; the lowest level is
//                       4-bit (fed by reading 4 columns together), then 8-
//                       and 16-bit levels engage as the layer precision
//                       requires (2-bit -> ACC4 result forwarded, 4-bit ->
//                       shift-add into ACC8, wider -> ACC16).
//
// The simulator is *functionally exact*: computing a k-bit dot product here
// returns the same integer as a reference multiply-accumulate over the
// codes. Tests assert this for every grid precision, which validates that
// the dataflow (and hence the energy scaling attached to its events) is the
// real shift-add dataflow rather than an abstract formula.
//
// Paper hook: Fig 5 (the precision-scalable PIM architecture) operating on
// eqn-1 codes at the Table IV grid precisions {2, 4, 8, 16}.
#pragma once

#include <cstdint>
#include <vector>

#include "pim/energy_model.h"

namespace adq::pim {

struct PimConfig {
  std::int64_t rows = 128;  // cells per column = dot-product fan-in per tile
  std::int64_t cols = 128;  // columns per array
  int column_group = 4;     // columns read together into one ACC4 slot
};

/// Hierarchical shift-accumulator: combines per-(weight-bit, activation-bit)
/// column sums into the final integer, counting ops at each level that the
/// given precision activates.
class ShiftAccumulatorTree {
 public:
  explicit ShiftAccumulatorTree(EventCounts* events) : events_(events) {}

  /// partials[p][q] = sum_j w_bit_p(j) * a_bit_q(j); returns
  /// sum_{p,q} partials[p][q] << (p + q) with event accounting.
  std::int64_t combine(const std::vector<std::vector<std::int64_t>>& partials,
                       int bits);

 private:
  EventCounts* events_;
};

/// One PIM array tile: weights are loaded as bit-planes (one output neuron
/// occupies `bits` adjacent columns), activations stream bit-serially.
class PimArray {
 public:
  explicit PimArray(PimConfig cfg = {});

  const PimConfig& config() const { return cfg_; }

  /// Number of output neurons one tile can hold at a precision.
  std::int64_t outputs_per_tile(int bits) const;

  /// Loads `weights[o][r]` codes (outputs x fan-in) at k-bit precision.
  /// fan-in must be <= rows, outputs <= outputs_per_tile(bits).
  void load_weights(const std::vector<std::vector<std::int64_t>>& weights,
                    int bits);

  /// Computes all loaded dot products against one activation vector
  /// (codes, length = fan-in). Events accumulate into `events`.
  std::vector<std::int64_t> compute(const std::vector<std::int64_t>& activations,
                                    EventCounts& events) const;

 private:
  PimConfig cfg_;
  int bits_ = 0;
  std::int64_t fan_in_ = 0;
  std::int64_t outputs_ = 0;
  std::vector<std::uint8_t> cells_;  // rows x cols bit matrix
};

/// Convenience: full k-bit dot product of two code vectors through the
/// array + accumulator pipeline, tiling over rows when needed.
std::int64_t pim_dot_product(const std::vector<std::int64_t>& weights,
                             const std::vector<std::int64_t>& activations,
                             int bits, EventCounts& events,
                             const PimConfig& cfg = {});

/// Fully binarised fast path (paper §II-A / XNOR-Net): when both weights
/// and activations are 1-bit {-1,+1} (encoded as 0 -> -1, 1 -> +1), the MAC
/// reduces to XNOR + popcount: dot = n - 2 * popcount(w XOR a). Events are
/// recorded as cell ops only — no shift-accumulator levels engage.
std::int64_t pim_xnor_dot_product(const std::vector<int>& weight_signs,
                                  const std::vector<int>& activation_signs,
                                  EventCounts& events);

}  // namespace adq::pim
