// Maps network layers onto the PIM accelerator and produces the energy
// accounting behind Tables V and VI.
//
// Per layer: precision is rounded up to the hardware grid {2,4,8,16}, the
// weight matrix is tiled across rows x (cols/bits) arrays, and MAC energy
// derives from Table IV. Pruned channels shrink N_MAC through the active
// channel counts in the spec, exactly how Table VI's ~198x arises.
//
// Activation streaming mode. Table IV's E_MAC|k is measured for a k-bit x
// k-bit MAC. Reproducing Table V's absolute energies (21.506 uJ mixed vs
// 110.154 uJ baseline, 5.12x) requires the *input decoder to stream
// activations at the full 16-bit width* while weights sit at k bits — i.e.
// per-MAC energy E_MAC|k * (16/k), 16 serial cycles per MAC. With matched
// k-bit activations the mixed-precision network would come out ~17x
// cheaper, not ~5x. We default to kFull16 (reproduces the paper's numbers)
// and keep kMatched as an ablation; bench_table5 prints both.
//
// Paper hook: Tables V and VI — per-network PIM energy from N_MAC (section
// IV-A) x E_MAC|k (Table IV), with eqn-5 pruned channel counts for Table VI.
#pragma once

#include <string>
#include <vector>

#include "models/spec.h"
#include "pim/accelerator.h"
#include "pim/energy_model.h"

namespace adq::pim {

enum class ActivationStreaming {
  kFull16,   // activations bit-serial over 16 cycles regardless of k
  kMatched,  // activations quantized to the layer's k bits (k cycles)
};

struct PimEnergyOptions {
  ActivationStreaming streaming = ActivationStreaming::kFull16;
};

struct LayerMapping {
  std::string name;
  int bits = 16;           // layer precision before rounding
  int hardware_bits = 16;  // after rounding to the PIM grid
  std::int64_t macs = 0;
  std::int64_t row_tiles = 0;     // tiles along the fan-in dimension
  std::int64_t col_tiles = 0;     // tiles along the output dimension
  std::int64_t total_tiles = 0;   // row_tiles * col_tiles
  std::int64_t serial_cycles = 0; // bit-serial cycles per tile activation
  double mac_energy_fj = 0.0;     // per-MAC (Table IV)
  double energy_uj = 0.0;         // layer total
};

struct PimEnergyReport {
  std::vector<LayerMapping> layers;
  double total_uj = 0.0;
};

/// Maps one layer (conv lowered to its GEMM form: fan-in = I*p^2).
LayerMapping map_layer(const models::LayerSpec& layer, const PimConfig& cfg = {},
                       const PimEnergyOptions& opts = {});

/// Whole-network mapping + energy at current bits/channels.
PimEnergyReport pim_energy(const models::ModelSpec& spec, const PimConfig& cfg = {},
                           const PimEnergyOptions& opts = {});

/// Energy reduction factor vs a baseline spec (the paper's Tables V/VI:
/// baseline = unpruned, uniform 16-bit).
double pim_energy_reduction(const models::ModelSpec& model,
                            const models::ModelSpec& baseline,
                            const PimConfig& cfg = {},
                            const PimEnergyOptions& opts = {});

}  // namespace adq::pim
