#include "data/cifar.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace adq::data {
namespace {

constexpr std::int64_t kImageBytes = 3 * 32 * 32;
constexpr std::int64_t kRecordBytes = 1 + kImageBytes;

Dataset parse_records(const std::vector<unsigned char>& raw) {
  if (raw.size() % kRecordBytes != 0) {
    throw std::runtime_error("CIFAR-10: file size is not a multiple of 3073");
  }
  const std::int64_t n = static_cast<std::int64_t>(raw.size()) / kRecordBytes;
  Tensor images(Shape{n, 3, 32, 32});
  std::vector<std::int64_t> labels(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const unsigned char* rec = raw.data() + i * kRecordBytes;
    labels[static_cast<std::size_t>(i)] = rec[0];
    float* dst = images.data() + i * kImageBytes;
    for (std::int64_t j = 0; j < kImageBytes; ++j) {
      dst[j] = static_cast<float>(rec[1 + j]) / 255.0f;
    }
  }
  return Dataset(std::move(images), std::move(labels));
}

std::vector<unsigned char> read_all(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("CIFAR-10: cannot open " + path);
  return std::vector<unsigned char>(std::istreambuf_iterator<char>(in),
                                    std::istreambuf_iterator<char>());
}

}  // namespace

Dataset load_cifar10_file(const std::string& path) {
  return parse_records(read_all(path));
}

std::optional<TrainTestSplit> load_cifar10(const std::string& dir) {
  namespace fs = std::filesystem;
  const std::string test_path = dir + "/test_batch.bin";
  if (!fs::exists(test_path)) return std::nullopt;

  std::vector<unsigned char> train_raw;
  for (int b = 1; b <= 5; ++b) {
    const std::string path = dir + "/data_batch_" + std::to_string(b) + ".bin";
    if (!fs::exists(path)) return std::nullopt;
    const std::vector<unsigned char> part = read_all(path);
    train_raw.insert(train_raw.end(), part.begin(), part.end());
  }
  TrainTestSplit split{parse_records(train_raw), load_cifar10_file(test_path)};
  split.train.standardize();
  split.test.standardize();
  return split;
}

}  // namespace adq::data
