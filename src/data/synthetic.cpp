#include "data/synthetic.h"

#include <cmath>
#include <vector>

namespace adq::data {
namespace {

// Bilinearly upsamples a [channels, grid, grid] field to [channels, size,
// size]; produces the smooth low-frequency class prototypes.
void upsample_bilinear(const std::vector<float>& coarse, std::int64_t channels,
                       std::int64_t grid, std::int64_t size, float* out) {
  for (std::int64_t c = 0; c < channels; ++c) {
    const float* src = coarse.data() + c * grid * grid;
    float* dst = out + c * size * size;
    for (std::int64_t y = 0; y < size; ++y) {
      const float fy = static_cast<float>(y) * static_cast<float>(grid - 1) /
                       static_cast<float>(size - 1);
      const std::int64_t y0 = static_cast<std::int64_t>(fy);
      const std::int64_t y1 = std::min(y0 + 1, grid - 1);
      const float wy = fy - static_cast<float>(y0);
      for (std::int64_t x = 0; x < size; ++x) {
        const float fx = static_cast<float>(x) * static_cast<float>(grid - 1) /
                         static_cast<float>(size - 1);
        const std::int64_t x0 = static_cast<std::int64_t>(fx);
        const std::int64_t x1 = std::min(x0 + 1, grid - 1);
        const float wx = fx - static_cast<float>(x0);
        const float v00 = src[y0 * grid + x0], v01 = src[y0 * grid + x1];
        const float v10 = src[y1 * grid + x0], v11 = src[y1 * grid + x1];
        dst[y * size + x] = (1 - wy) * ((1 - wx) * v00 + wx * v01) +
                            wy * ((1 - wx) * v10 + wx * v11);
      }
    }
  }
}

// Writes one sample: jittered prototype + noise, circularly shifted and
// optionally flipped.
void render_sample(const std::vector<float>& prototype, const SyntheticSpec& spec,
                   Rng& rng, float* out) {
  const std::int64_t size = spec.size, channels = spec.channels;
  const float amp = 1.0f + rng.normal(0.0f, spec.amplitude_jitter);
  const std::int64_t dy = rng.uniform_int(-spec.max_shift, spec.max_shift);
  const std::int64_t dx = rng.uniform_int(-spec.max_shift, spec.max_shift);
  const bool flip = spec.flip && rng.coin();
  for (std::int64_t c = 0; c < channels; ++c) {
    const float* src = prototype.data() + c * size * size;
    float* dst = out + c * size * size;
    for (std::int64_t y = 0; y < size; ++y) {
      const std::int64_t sy = ((y + dy) % size + size) % size;
      for (std::int64_t x = 0; x < size; ++x) {
        std::int64_t sx = ((x + dx) % size + size) % size;
        if (flip) sx = size - 1 - sx;
        dst[y * size + x] = amp * src[sy * size + sx] + rng.normal(0.0f, spec.noise);
      }
    }
  }
}

Dataset generate(const SyntheticSpec& spec,
                 const std::vector<std::vector<float>>& prototypes,
                 std::int64_t count, Rng& rng) {
  Tensor images(Shape{count, spec.channels, spec.size, spec.size});
  std::vector<std::int64_t> labels(static_cast<std::size_t>(count));
  const std::int64_t sample = spec.channels * spec.size * spec.size;
  for (std::int64_t i = 0; i < count; ++i) {
    const std::int64_t cls = i % spec.num_classes;  // balanced classes
    labels[static_cast<std::size_t>(i)] = cls;
    render_sample(prototypes[static_cast<std::size_t>(cls)], spec, rng,
                  images.data() + i * sample);
  }
  Dataset ds(std::move(images), std::move(labels));
  ds.standardize();
  return ds;
}

}  // namespace

SyntheticSpec synthetic_cifar10_spec() {
  SyntheticSpec s;
  s.name = "synthetic-cifar10";
  s.num_classes = 10;
  s.size = 32;
  s.seed = 10;
  return s;
}

SyntheticSpec synthetic_cifar100_spec() {
  SyntheticSpec s;
  s.name = "synthetic-cifar100";
  s.num_classes = 100;
  s.size = 32;
  s.seed = 100;
  return s;
}

SyntheticSpec synthetic_tinyimagenet_spec() {
  SyntheticSpec s;
  s.name = "synthetic-tinyimagenet";
  s.num_classes = 200;
  s.size = 64;
  s.seed = 200;
  return s;
}

TrainTestSplit make_synthetic(const SyntheticSpec& spec) {
  Rng rng(spec.seed);
  // Class prototypes from a coarse random grid: unit-variance entries give
  // near-orthogonal prototypes in pixel space.
  std::vector<std::vector<float>> prototypes;
  prototypes.reserve(static_cast<std::size_t>(spec.num_classes));
  const std::int64_t coarse_n = spec.channels * spec.grid * spec.grid;
  for (std::int64_t c = 0; c < spec.num_classes; ++c) {
    std::vector<float> coarse(static_cast<std::size_t>(coarse_n));
    for (float& v : coarse) v = rng.normal(0.0f, 1.0f);
    std::vector<float> proto(
        static_cast<std::size_t>(spec.channels * spec.size * spec.size));
    upsample_bilinear(coarse, spec.channels, spec.grid, spec.size, proto.data());
    prototypes.push_back(std::move(proto));
  }
  Rng train_rng = rng.fork();
  Rng test_rng = rng.fork();
  TrainTestSplit split{generate(spec, prototypes, spec.train_count, train_rng),
                       generate(spec, prototypes, spec.test_count, test_rng)};
  return split;
}

}  // namespace adq::data
