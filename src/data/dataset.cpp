#include "data/dataset.h"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace adq::data {

Dataset::Dataset(Tensor images, std::vector<std::int64_t> labels)
    : images_(std::move(images)), labels_(std::move(labels)) {
  if (images_.shape().rank() != 4 ||
      images_.shape().dim(0) != static_cast<std::int64_t>(labels_.size())) {
    throw std::invalid_argument("Dataset: images must be [N, C, H, W] with one label per image");
  }
}

Batch Dataset::gather(const std::vector<std::int64_t>& indices) const {
  const std::int64_t B = static_cast<std::int64_t>(indices.size());
  const std::int64_t sample = channels() * height() * width();
  Batch batch;
  batch.images = Tensor(Shape{B, channels(), height(), width()});
  batch.labels.resize(static_cast<std::size_t>(B));
  for (std::int64_t b = 0; b < B; ++b) {
    const std::int64_t i = indices[static_cast<std::size_t>(b)];
    if (i < 0 || i >= size()) throw std::out_of_range("Dataset::gather: index");
    const float* src = images_.data() + i * sample;
    float* dst = batch.images.data() + b * sample;
    std::copy(src, src + sample, dst);
    batch.labels[static_cast<std::size_t>(b)] = labels_[static_cast<std::size_t>(i)];
  }
  return batch;
}

void Dataset::standardize() {
  const std::int64_t n = images_.numel();
  if (n == 0) return;
  double s = 0.0, s2 = 0.0;
  const float* p = images_.data();
  for (std::int64_t i = 0; i < n; ++i) {
    s += p[i];
    s2 += static_cast<double>(p[i]) * p[i];
  }
  const double mean = s / static_cast<double>(n);
  const double var = s2 / static_cast<double>(n) - mean * mean;
  const float inv_std = var > 0.0 ? static_cast<float>(1.0 / std::sqrt(var)) : 1.0f;
  float* q = images_.data();
  for (std::int64_t i = 0; i < n; ++i) {
    q[i] = (q[i] - static_cast<float>(mean)) * inv_std;
  }
}

BatchLoader::BatchLoader(const Dataset& dataset, std::int64_t batch_size,
                         Rng& rng, bool shuffle)
    : dataset_(dataset), batch_size_(batch_size), rng_(rng), shuffle_(shuffle) {
  if (batch_size_ < 1) throw std::invalid_argument("BatchLoader: batch_size < 1");
  order_.resize(static_cast<std::size_t>(dataset_.size()));
  std::iota(order_.begin(), order_.end(), 0);
  start_epoch();
}

void BatchLoader::start_epoch() {
  if (shuffle_) rng_.shuffle(order_);
  cursor_ = 0;
}

bool BatchLoader::next(Batch& out) {
  if (cursor_ >= dataset_.size()) return false;
  const std::int64_t end = std::min(cursor_ + batch_size_, dataset_.size());
  std::vector<std::int64_t> idx(order_.begin() + cursor_, order_.begin() + end);
  out = dataset_.gather(idx);
  cursor_ = end;
  return true;
}

std::int64_t BatchLoader::batches_per_epoch() const {
  return (dataset_.size() + batch_size_ - 1) / batch_size_;
}

}  // namespace adq::data
