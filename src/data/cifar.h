// CIFAR-10 binary-format loader (the format of data_batch_*.bin /
// test_batch.bin from cs.toronto.edu).
//
// The repo ships no datasets; when a user drops the real binaries under
// data/cifar-10-batches-bin the benches pick them up automatically and the
// synthetic substitute is bypassed. Each record is 1 label byte followed by
// 3072 channel-major pixel bytes.
#pragma once

#include <optional>
#include <string>

#include "data/dataset.h"

namespace adq::data {

/// Loads one .bin file; throws on malformed sizes.
Dataset load_cifar10_file(const std::string& path);

/// Loads the standard 5 train batches + test batch from `dir`. Returns
/// nullopt when the directory or any file is missing.
std::optional<TrainTestSplit> load_cifar10(const std::string& dir);

}  // namespace adq::data
