// Synthetic stand-ins for CIFAR-10/100 and TinyImagenet.
//
// The paper's datasets are not shipped with this repo (offline build), so we
// synthesise multi-class image tasks that exercise the identical code path:
// each class gets a smooth random prototype (a coarse random grid upsampled
// bilinearly — low-frequency structure like natural images); each sample is
// prototype + amplitude jitter + per-pixel Gaussian noise + a random
// circular shift and horizontal flip. The task is linearly non-trivial but
// learnable from scratch, which is all Algorithm 1 consumes: ReLU networks
// trained on it develop the saturating, <1 activation densities the method
// keys on. See DESIGN.md §2 for the substitution rationale.
#pragma once

#include <cstdint>
#include <string>

#include "data/dataset.h"
#include "tensor/rng.h"

namespace adq::data {

struct SyntheticSpec {
  std::string name = "synthetic";
  std::int64_t num_classes = 10;
  std::int64_t channels = 3;
  std::int64_t size = 32;        // square images
  std::int64_t train_count = 1024;
  std::int64_t test_count = 256;
  std::int64_t grid = 4;         // prototype coarse-grid resolution
  float noise = 0.35f;           // per-pixel Gaussian noise stddev
  float amplitude_jitter = 0.2f; // multiplicative prototype jitter
  std::int64_t max_shift = 2;    // circular shift in pixels
  bool flip = true;
  std::uint64_t seed = 7;
};

/// CIFAR-10-like: 10 classes, 3x32x32.
SyntheticSpec synthetic_cifar10_spec();

/// CIFAR-100-like: 100 classes, 3x32x32.
SyntheticSpec synthetic_cifar100_spec();

/// TinyImagenet-like: 200 classes, 3x64x64.
SyntheticSpec synthetic_tinyimagenet_spec();

/// Generates the split deterministically from spec.seed. Both splits are
/// standardized with the same global statistics convention.
TrainTestSplit make_synthetic(const SyntheticSpec& spec);

}  // namespace adq::data
