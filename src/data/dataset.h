// In-memory labelled image dataset and a shuffling batch loader.
//
// Images are stored as one contiguous [N, C, H, W] tensor. The BatchLoader
// draws deterministic shuffles from an Rng so epoch order — and therefore
// every AD trajectory — is reproducible from the seed.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace adq::data {

struct Batch {
  Tensor images;                     // [B, C, H, W]
  std::vector<std::int64_t> labels;  // B entries
};

class Dataset {
 public:
  Dataset() = default;
  Dataset(Tensor images, std::vector<std::int64_t> labels);

  std::int64_t size() const { return static_cast<std::int64_t>(labels_.size()); }
  std::int64_t channels() const { return images_.shape().dim(1); }
  std::int64_t height() const { return images_.shape().dim(2); }
  std::int64_t width() const { return images_.shape().dim(3); }

  const Tensor& images() const { return images_; }
  const std::vector<std::int64_t>& labels() const { return labels_; }

  /// Gathers the given sample indices into a batch.
  Batch gather(const std::vector<std::int64_t>& indices) const;

  /// Normalises images in place to zero mean / unit variance (global).
  void standardize();

 private:
  Tensor images_;
  std::vector<std::int64_t> labels_;
};

/// A train/test pair produced by any of the dataset sources.
struct TrainTestSplit {
  Dataset train;
  Dataset test;
};

/// Iterates a dataset in shuffled fixed-size batches (last partial batch is
/// kept). One pass = one epoch.
class BatchLoader {
 public:
  BatchLoader(const Dataset& dataset, std::int64_t batch_size, Rng& rng,
              bool shuffle = true);

  /// Resets to a fresh (re-shuffled) epoch.
  void start_epoch();

  /// Fetches the next batch; returns false at the end of the epoch.
  bool next(Batch& out);

  std::int64_t batches_per_epoch() const;

 private:
  const Dataset& dataset_;
  std::int64_t batch_size_;
  Rng& rng_;
  bool shuffle_;
  std::vector<std::int64_t> order_;
  std::int64_t cursor_ = 0;
};

}  // namespace adq::data
