// Depthwise-separable end-to-end walkthrough — the topology the old
// dynamic_cast compiler could not express, running the full pipeline:
//
//   build MobileNet-small (depthwise 3x3 + pointwise 1x1 blocks)
//     -> Algorithm 1 (AD-driven per-layer bit allocation)
//     -> graph IR compile (build_from_model -> legalize -> lower_to_plan)
//     -> save .adqplan (format v2: depthwise layers)
//     -> cold-start an IntInferenceEngine from the file alone
//     -> serve batched requests, checking top-1 agreement vs the
//        fake-quant training path
//
// Writes BENCH_mobilenet_depthwise.json (same shape as the bench JSONs,
// honoured by $ADQ_BENCH_JSON_DIR) so CI tracks the depthwise path's
// accuracy/agreement/footprint trajectory. Set ADQ_DUMP_GRAPH=<dir> to get
// a .dot file of every compile stage. ADQ_SCALE=tiny|small|full sizes the
// run.
//
//   ./build/examples/mobilenet_depthwise_demo [plan.adqplan]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <string>
#include <vector>

#include "common.h"  // bench/common.h: JsonReport (BENCH_*.json emitter)
#include "core/ad_quantizer.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "infer/engine.h"
#include "infer/plan.h"
#include "infer/plan_io.h"
#include "models/mobilenet.h"
#include "serve/server.h"
#include "tensor/ops.h"

namespace {

struct Scale {
  const char* name = "small";
  double width_mult = 0.5;
  std::int64_t train_count = 384, test_count = 96;
  int min_epochs = 3, max_epochs = 7, max_iterations = 4;
};

Scale scale_from_env() {
  Scale s;
  const char* env = std::getenv("ADQ_SCALE");
  const std::string mode = env != nullptr ? env : "small";
  if (mode == "tiny") {
    s = {"tiny", 0.25, 160, 48, 2, 3, 3};
  } else if (mode == "full") {
    s = {"full", 1.0, 4096, 1024, 5, 20, 4};
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace adq;
  bench::JsonReport report("mobilenet_depthwise");
  const Scale s = scale_from_env();
  const std::string plan_path =
      argc > 1 ? argv[1] : "mobilenet_depthwise.adqplan";

  // 1. Data + model.
  data::SyntheticSpec dspec = data::synthetic_cifar10_spec();
  dspec.train_count = s.train_count;
  dspec.test_count = s.test_count;
  dspec.noise = 0.6f;
  const data::TrainTestSplit split = data::make_synthetic(dspec);

  Rng rng(12);
  models::MobileNetConfig mcfg;
  mcfg.width_mult = s.width_mult;
  mcfg.num_classes = 10;
  auto model = models::build_mobilenet_small(mcfg, rng);
  std::printf("mobilenet_small (width %.2f): %d quantizable units "
              "(5 depthwise + 5 pointwise + stem + fc)\n",
              s.width_mult, model->unit_count());

  // 2. Algorithm 1: train while AD-metering, compress bits per layer.
  core::TrainerConfig tcfg;
  tcfg.batch_size = 32;
  core::Trainer trainer(*model, split.train, split.test, tcfg);
  core::AdqConfig acfg;
  acfg.max_iterations = s.max_iterations;
  acfg.min_epochs_per_iter = s.min_epochs;
  acfg.max_epochs_per_iter = s.max_epochs;
  acfg.detector = ad::SaturationDetector(2, 0.05);
  acfg.verbose = true;
  core::AdQuantizationController controller(*model, trainer, acfg);
  const core::RunResult result = controller.run();
  const core::IterationResult& fin = result.final_iteration();
  std::printf("\nconverged: bits %s  acc %.1f%%  total AD %.3f\n",
              fin.bits.to_string().c_str(), 100.0 * fin.test_accuracy,
              fin.total_ad);

  // 3. Compile through the graph IR (clip to the 8-bit integer ceiling so
  //    every quantized layer takes the integer path) and serialize.
  quant::BitWidthPolicy policy = model->bit_policy();
  for (int i = 0; i < model->unit_count(); ++i) {
    if (!model->unit(i).frozen) policy.set(i, std::min(policy.at(i), 8));
  }
  model->apply_bit_policy(policy);
  model->set_training(false);
  infer::save_plan(infer::compile(*model), plan_path);

  // 4. Cold start from the file alone and serve.
  const infer::InferencePlan plan = infer::load_plan(plan_path);
  const infer::IntInferenceEngine engine(plan);
  std::printf("plan: %zu layers (%d integer), %.1f KiB weights -> %s\n",
              plan.layers.size(), plan.integer_layer_count(),
              static_cast<double>(plan.weight_bytes()) / 1024.0,
              plan_path.c_str());

  serve::ServerConfig scfg;
  scfg.sample_shape = Shape{3, 32, 32};
  scfg.max_batch = 16;
  scfg.max_wait_us = 1000;
  scfg.workers = 1;
  serve::InferenceServer server(engine, scfg);

  const Tensor& images = split.test.images();
  const std::int64_t n = images.shape().dim(0);
  std::vector<Tensor> samples;
  for (std::int64_t i = 0; i < n; ++i) {
    samples.push_back(take_sample(images, i));
  }
  std::vector<std::future<serve::InferenceResult>> futures;
  const auto t_serve = std::chrono::steady_clock::now();
  for (const Tensor& sample : samples) futures.push_back(server.submit(sample));
  struct Done {
    std::uint64_t id;
    std::size_t sample;
    std::int64_t top1;
    std::int64_t batch_size;
  };
  std::vector<Done> done;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const serve::InferenceResult r = futures[i].get();
    done.push_back({r.id, i, r.top1, r.batch_size});
  }
  const double serve_s = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - t_serve)
                             .count();

  // 5a. Serving exactness: reconstruct each coalesced batch (requests
  //     coalesce in id order) and compare against a direct engine call on
  //     the identical batch — bit-identical by construction.
  std::sort(done.begin(), done.end(),
            [](const Done& a, const Done& b) { return a.id < b.id; });
  std::int64_t exact = 0;
  for (std::size_t i = 0; i < done.size();) {
    const std::size_t bs = static_cast<std::size_t>(done[i].batch_size);
    std::vector<const Tensor*> batch;
    for (std::size_t j = i; j < i + bs; ++j) batch.push_back(&samples[done[j].sample]);
    const std::vector<std::int64_t> direct = engine.predict(stack_samples(batch));
    for (std::size_t j = 0; j < bs; ++j) exact += direct[j] == done[i + j].top1;
    i += bs;
  }

  // 5b. Quantization fidelity: the engine on the whole test batch vs the
  //     fake-quant training forward (same per-batch dynamic ranges, so the
  //     integer arithmetic is the only difference).
  const std::vector<std::int64_t> ref = argmax_rows(model->forward(images));
  const std::vector<std::int64_t> direct_whole = engine.predict(images);
  std::int64_t agree = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    agree += direct_whole[static_cast<std::size_t>(i)] ==
             ref[static_cast<std::size_t>(i)];
  }
  std::printf("served %lld requests at %.0f req/s\n", static_cast<long long>(n),
              static_cast<double>(n) / serve_s);
  std::printf("served vs direct engine on identical batches: %lld/%lld\n",
              static_cast<long long>(exact), static_cast<long long>(n));
  std::printf("integer engine vs fake-quant training path (whole batch): "
              "%lld/%lld\n",
              static_cast<long long>(agree), static_cast<long long>(n));

  report.add("test_accuracy", fin.test_accuracy);
  report.add("total_ad", fin.total_ad);
  report.add("serve_exactness",
             static_cast<double>(exact) / static_cast<double>(n));
  report.add("fake_quant_agreement",
             static_cast<double>(agree) / static_cast<double>(n));
  report.add("integer_layers", plan.integer_layer_count());
  report.add("weight_kib",
             static_cast<double>(plan.weight_bytes()) / 1024.0, "KiB");
  report.add("serve_req_per_s", static_cast<double>(n) / serve_s, "req/s");
  // Smoke gate: serving must reproduce the engine exactly; the integer
  // engine must track the fake-quant path on a strong majority even at the
  // coarse sub-byte grids AD allocates.
  return (exact == n && agree * 2 >= n) ? 0 : 1;
}
