// Dynamic-batching inference server walkthrough.
//
// First run: builds a width-scaled VGG19 with the paper's Table II(a)
// mixed bit vector (clipped to the 8-bit integer ceiling), compiles it,
// and writes the plan to an .adqplan file. Every run (including the
// first) then COLD-STARTS a server from that file alone — load_plan +
// IntInferenceEngine + InferenceServer, no model rebuild, no retraining —
// floods it with single-sample requests from two producer threads, and
// prints throughput, tail latency, the batch-size histogram, and top-1
// agreement against direct engine calls.
//
//   ./build/examples/serve_demo [plan.adqplan]
//
// Run it twice to see the cold-start path skip straight to "loading".
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <future>
#include <thread>
#include <vector>

#include "data/synthetic.h"
#include "infer/engine.h"
#include "infer/plan.h"
#include "infer/plan_io.h"
#include "models/vgg.h"
#include "serve/server.h"
#include "tensor/ops.h"

int main(int argc, char** argv) {
  using namespace adq;
  const std::string plan_path = argc > 1 ? argv[1] : "vgg19_paper.adqplan";

  // 1. Ensure the compiled plan exists (train -> compile -> save_plan; the
  //    "training" here is the paper's published bit vector on a fresh
  //    model, as in int_inference_demo).
  if (!std::ifstream(plan_path).good()) {
    std::printf("no %s — compiling one (paper Table II(a) bits)...\n",
                plan_path.c_str());
    Rng rng(3);
    models::VggConfig mcfg;
    mcfg.width_mult = 0.125;
    mcfg.num_classes = 10;
    auto model = models::build_vgg19(mcfg, rng);
    const std::vector<int> paper_bits{16, 4, 5, 4, 3, 2, 2, 2, 3,
                                      3,  3, 4, 3, 3, 3, 3, 16};
    quant::BitWidthPolicy policy = model->bit_policy();
    for (int i = 0; i < model->unit_count(); ++i) {
      if (!model->unit(i).frozen) {
        policy.set(i, std::min(paper_bits[static_cast<std::size_t>(i)], 8));
      }
    }
    model->apply_bit_policy(policy);
    model->set_training(false);
    infer::save_plan(infer::compile(*model), plan_path);
  }

  // 2. Cold start: everything the server needs comes from the file.
  const auto t_load0 = std::chrono::steady_clock::now();
  const infer::InferencePlan plan = infer::load_plan(plan_path);
  const infer::IntInferenceEngine engine(plan);
  const double load_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t_load0)
                             .count();
  std::printf("loaded %s: %s, %zu layers (%d integer), %.1f KiB weights, "
              "%.2f ms to serving-ready\n",
              plan_path.c_str(), plan.model_name.c_str(), plan.layers.size(),
              plan.integer_layer_count(),
              static_cast<double>(plan.weight_bytes()) / 1024.0, load_ms);

  serve::ServerConfig cfg;
  cfg.sample_shape = Shape{3, 32, 32};
  cfg.max_batch = 16;
  cfg.max_wait_us = 1000;
  cfg.workers = 1;
  serve::InferenceServer server(engine, cfg);

  // The static memory contract: the plan's compile-time activation arena
  // bounds the planned activation slots one worker ever touches (kernel
  // scratch is additional) — the first-order number an operator multiplies
  // by the worker count to size a deployment.
  {
    const serve::ServerStats::Snapshot st = server.stats();
    std::printf("activation arena: %.1f KiB/sample -> %.1f KiB "
                "per worker at max_batch %lld\n",
                static_cast<double>(st.arena_bytes_per_sample) / 1024.0,
                static_cast<double>(st.peak_activation_bytes_per_worker) /
                    1024.0,
                static_cast<long long>(cfg.max_batch));
  }

  // 3. Traffic: two producers, 128 single-sample requests.
  data::SyntheticSpec dspec = data::synthetic_cifar10_spec();
  dspec.train_count = 8;
  dspec.test_count = 128;
  const data::TrainTestSplit split = data::make_synthetic(dspec);
  std::vector<Tensor> samples;
  for (std::int64_t i = 0; i < dspec.test_count; ++i) {
    samples.push_back(take_sample(split.test.images(), i));
  }

  std::vector<std::future<serve::InferenceResult>> futures(samples.size());
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> producers;
  for (int p = 0; p < 2; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t i = static_cast<std::size_t>(p); i < samples.size();
           i += 2) {
        futures[i] = server.submit(samples[i]);
      }
    });
  }
  for (auto& t : producers) t.join();

  struct Done {
    std::uint64_t id;
    std::size_t sample;
    std::int64_t top1;
    std::int64_t batch_size;
  };
  std::vector<Done> done;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const serve::InferenceResult r = futures[i].get();
    done.push_back({r.id, i, r.top1, r.batch_size});
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  // Requests coalesced in queue order, so sorting by id and walking the
  // recorded batch sizes reconstructs each served batch exactly; the
  // direct engine call on the same stacked batch must agree bit for bit.
  std::sort(done.begin(), done.end(),
            [](const Done& a, const Done& b) { return a.id < b.id; });
  std::size_t agree = 0;
  for (std::size_t i = 0; i < done.size();) {
    const std::size_t bs = static_cast<std::size_t>(done[i].batch_size);
    std::vector<const Tensor*> batch;
    for (std::size_t j = i; j < i + bs; ++j) {
      batch.push_back(&samples[done[j].sample]);
    }
    const std::vector<std::int64_t> direct =
        engine.predict(stack_samples(batch));
    for (std::size_t j = 0; j < bs; ++j) {
      agree += direct[j] == done[i + j].top1;
    }
    i += bs;
  }

  const serve::ServerStats::Snapshot st = server.stats();
  std::printf("\nserved %llu requests in %.0f ms  (%.0f req/s)\n",
              static_cast<unsigned long long>(st.requests), 1000.0 * wall_s,
              static_cast<double>(st.requests) / wall_s);
  std::printf("latency p50 %.2f ms  p95 %.2f ms  p99 %.2f ms  "
              "(mean queue %.2f ms)\n",
              st.p50_us / 1000.0, st.p95_us / 1000.0, st.p99_us / 1000.0,
              st.mean_queue_us / 1000.0);
  std::printf("  split: queue-wait p50 %.2f ms p99 %.2f ms | "
              "execution p50 %.2f ms p99 %.2f ms\n",
              st.p50_queue_us / 1000.0, st.p99_queue_us / 1000.0,
              st.p50_exec_us / 1000.0, st.p99_exec_us / 1000.0);
  std::printf("batches: %llu (mean size %.1f)  histogram:",
              static_cast<unsigned long long>(st.batches), st.mean_batch);
  for (const auto& [size, count] : st.batch_histogram) {
    std::printf("  %lldx%llu", static_cast<long long>(size),
                static_cast<unsigned long long>(count));
  }
  std::printf("\ntop-1 agreement vs direct engine calls on the same "
              "batches: %zu/%zu\n",
              agree, done.size());

  // 4. Arena/heap serving equivalence: serve the same deterministic
  //    request stream once on the slot-based arena executor (ADQ_ARENA=1,
  //    forced, so a pre-set ADQ_ARENA=0 cannot make the check vacuous) and
  //    once on the heap fallback (ADQ_ARENA=0). One producer + a
  //    full-batch window makes batch composition identical, so every
  //    served logit must match BIT for bit — the demo exits nonzero
  //    otherwise. The caller's ADQ_ARENA value is restored afterwards.
  const char* prior_arena_env = std::getenv("ADQ_ARENA");
  const std::string prior_arena =
      prior_arena_env != nullptr ? prior_arena_env : "";
  auto serve_logits = [&](const char* arena_env) {
    setenv("ADQ_ARENA", arena_env, 1);
    serve::ServerConfig dcfg;
    dcfg.sample_shape = Shape{3, 32, 32};
    dcfg.max_batch = 16;
    dcfg.max_wait_us = 200'000;  // full batches: submit outruns the window
    dcfg.workers = 1;
    serve::InferenceServer dserver(engine, dcfg);
    std::vector<std::future<serve::InferenceResult>> futs;
    for (std::size_t i = 0; i < 64; ++i) futs.push_back(dserver.submit(samples[i]));
    std::vector<Tensor> logits;
    for (auto& f : futs) logits.push_back(f.get().logits);
    return logits;
  };
  const std::vector<Tensor> arena_logits = serve_logits("1");
  const std::vector<Tensor> heap_logits = serve_logits("0");
  if (prior_arena_env != nullptr) {
    setenv("ADQ_ARENA", prior_arena.c_str(), 1);
  } else {
    unsetenv("ADQ_ARENA");
  }
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < arena_logits.size(); ++i) {
    for (std::int64_t j = 0; j < arena_logits[i].numel(); ++j) {
      mismatches += arena_logits[i][j] != heap_logits[i][j];
    }
  }
  std::printf("arena vs ADQ_ARENA=0 serving: %zu logit mismatches across "
              "%zu requests (must be 0)\n",
              mismatches, arena_logits.size());
  if (mismatches != 0) return 1;
  return 0;
}
