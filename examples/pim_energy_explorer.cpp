// Scenario: PIM accelerator energy exploration — no training involved.
//
// Loads the paper's published bit-width assignments (Table II) onto
// full-width VGG19/ResNet18 specs and prints per-layer PIM mappings and
// energy, the analytical comparison, and the per-MAC Table IV constants.
// Useful for what-if analysis: pass a uniform bit-width to see the whole
// curve.
//
//   ./build/examples/pim_energy_explorer [uniform_bits]
#include <cstdio>
#include <cstdlib>

#include "energy/analytical.h"
#include "models/resnet.h"
#include "models/vgg.h"
#include "pim/mapper.h"
#include "report/table.h"

int main(int argc, char** argv) {
  using namespace adq;

  models::ModelSpec spec = models::vgg19_spec(models::VggConfig{});
  const models::ModelSpec baseline = spec.with_uniform_bits(16);

  if (argc > 1) {
    const int bits = std::atoi(argv[1]);
    spec = spec.with_uniform_bits(bits);
    std::printf("uniform %d-bit VGG19\n", bits);
  } else {
    // Paper Table II(a) iteration 2 assignment.
    spec.apply_bits(quant::BitWidthPolicy(std::vector<int>{
        16, 4, 5, 4, 3, 2, 2, 2, 3, 3, 3, 4, 3, 3, 3, 3, 16}));
    std::puts("paper Table II(a) iter-2 mixed-precision VGG19");
  }

  const pim::PimEnergyReport r = pim::pim_energy(spec);
  report::Table table("Per-layer PIM mapping (128x128 arrays, full-16 streaming)");
  table.set_header({"layer", "bits", "hw", "MACs", "tiles", "cycles", "E/MAC fJ", "E uJ"});
  for (const pim::LayerMapping& m : r.layers) {
    table.add_row({m.name, std::to_string(m.bits), std::to_string(m.hardware_bits),
                   std::to_string(m.macs), std::to_string(m.total_tiles),
                   std::to_string(m.serial_cycles),
                   report::fmt(m.mac_energy_fj, 3), report::fmt(m.energy_uj, 3)});
  }
  std::printf("%s\n", table.to_markdown().c_str());

  const double base_uj = pim::pim_energy(baseline).total_uj;
  std::printf("total: %.3f uJ | 16-bit baseline: %.3f uJ | reduction %.2fx\n",
              r.total_uj, base_uj, base_uj / r.total_uj);
  std::printf("analytical efficiency on the same spec: %.2fx\n",
              energy::energy_efficiency(spec, baseline));

  std::puts("\nTable IV per-MAC energies:");
  for (int k : {2, 4, 8, 16}) {
    std::printf("  E_MAC|%-2d = %8.3f fJ\n", k, pim::pim_mac_energy_fj(k));
  }
  return 0;
}
