// Quickstart: the whole adq pipeline in ~60 lines.
//
// Builds a width-scaled VGG19, generates a synthetic CIFAR-10-like task,
// runs Algorithm 1 (in-training Activation-Density quantization), and
// prints the per-iteration bit-widths, accuracy, and energy factors.
//
//   ./build/examples/quickstart
#include <cstdio>

#include "core/ad_quantizer.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "models/vgg.h"
#include "pim/mapper.h"

int main() {
  using namespace adq;

  // 1. Data: a 10-class synthetic image task (stands in for CIFAR-10; drop
  //    the real binaries under data/cifar-10-batches-bin to use them).
  data::SyntheticSpec dspec = data::synthetic_cifar10_spec();
  dspec.train_count = 512;
  dspec.test_count = 128;
  const data::TrainTestSplit split = data::make_synthetic(dspec);

  // 2. Model: VGG19 at 1/8 width so the demo runs in about a minute on CPU.
  Rng rng(1);
  models::VggConfig mcfg;
  mcfg.width_mult = 0.125;
  mcfg.num_classes = dspec.num_classes;
  auto model = models::build_vgg19(mcfg, rng);
  const models::ModelSpec baseline = model->spec();

  // 3. Algorithm 1: train, watch AD saturate, re-quantize, repeat.
  core::TrainerConfig tcfg;
  tcfg.batch_size = 32;
  tcfg.lr = 1e-3f;
  core::Trainer trainer(*model, split.train, split.test, tcfg);

  core::AdqConfig acfg;
  acfg.max_iterations = 4;
  acfg.min_epochs_per_iter = 3;
  acfg.max_epochs_per_iter = 8;
  acfg.detector = ad::SaturationDetector(3, 0.03);
  acfg.verbose = true;
  core::AdQuantizationController controller(*model, trainer, acfg);
  const core::RunResult result = controller.run();

  // 4. Report.
  std::printf("\n%-4s %-60s %8s %8s %8s %8s\n", "iter", "bit-widths", "epochs",
              "test", "totalAD", "energy");
  for (const core::IterationResult& ir : result.iterations) {
    std::printf("%-4d %-60s %8d %7.1f%% %8.3f %7.2fx\n", ir.iter,
                ir.bits.to_string().c_str(), ir.epochs,
                100.0 * ir.test_accuracy, ir.total_ad, ir.energy_efficiency);
  }
  std::printf("\ntraining complexity (eqn 4, vs 16-bit run): %.3fx\n",
              result.training_complexity_vs_baseline);
  std::printf("PIM energy reduction vs 16-bit baseline:     %.2fx\n",
              pim::pim_energy_reduction(model->spec(), baseline));
  return 0;
}
