// Scenario: VGG19 on (synthetic) CIFAR-10 — the paper's Table II(a) setup.
//
// Runs Algorithm 1 with the paper's protocol (16-bit start, first/last
// layer frozen), prints the Table II(a)-style summary for our run next to
// the paper's reported row, and dumps the per-layer AD trajectory that
// Figs 3/4 plot. If real CIFAR-10 binaries exist under
// data/cifar-10-batches-bin they are used automatically.
//
//   ./build/examples/vgg_cifar10_quant [width_mult] [train_count]
#include <cstdio>
#include <cstdlib>

#include "core/ad_quantizer.h"
#include "core/trainer.h"
#include "data/cifar.h"
#include "data/synthetic.h"
#include "energy/analytical.h"
#include "models/vgg.h"
#include "report/table.h"

int main(int argc, char** argv) {
  using namespace adq;
  const double width = argc > 1 ? std::atof(argv[1]) : 0.125;
  const std::int64_t train_count = argc > 2 ? std::atoll(argv[2]) : 512;

  data::TrainTestSplit split = [&] {
    if (auto real = data::load_cifar10("data/cifar-10-batches-bin")) {
      std::puts("using real CIFAR-10 binaries");
      return std::move(*real);
    }
    std::puts("using synthetic CIFAR-10 stand-in (see DESIGN.md)");
    data::SyntheticSpec spec = data::synthetic_cifar10_spec();
    spec.train_count = train_count;
    spec.test_count = train_count / 4;
    return data::make_synthetic(spec);
  }();

  Rng rng(10);
  models::VggConfig mcfg;
  mcfg.width_mult = width;
  mcfg.num_classes = 10;
  auto model = models::build_vgg19(mcfg, rng);

  core::TrainerConfig tcfg;
  tcfg.batch_size = 32;
  core::Trainer trainer(*model, split.train, split.test, tcfg);
  core::AdqConfig acfg;
  acfg.max_iterations = 4;
  acfg.min_epochs_per_iter = 3;
  acfg.max_epochs_per_iter = 10;
  acfg.detector = ad::SaturationDetector(3, 0.03);
  acfg.verbose = true;
  core::AdQuantizationController controller(*model, trainer, acfg);
  const core::RunResult result = controller.run();

  report::Table table("VGG19 / CIFAR-10 — AD-based quantization (cf. Table II(a))");
  table.set_header({"iter", "bit-widths", "test acc", "total AD",
                    "energy eff", "epochs", "train compl"});
  for (const core::IterationResult& ir : result.iterations) {
    table.add_row({std::to_string(ir.iter), ir.bits.to_string(),
                   report::fmt_percent(ir.test_accuracy),
                   report::fmt(ir.total_ad, 3),
                   report::fmt_factor(ir.energy_efficiency),
                   std::to_string(ir.epochs),
                   report::fmt_factor(ir.mac_reduction, 2)});
  }
  table.add_row({"paper-2", "[16, 4, 5, 4, 3, 2, 2, 2, 3, 3, 3, 4, 3, 3, 3, 3, 16]",
                 "91.62%", "0.992", "4.16x", "70", "-"});
  std::printf("%s\n", table.to_markdown().c_str());
  std::printf("training complexity vs baseline: %.3fx (paper: 0.524x)\n",
              result.training_complexity_vs_baseline);

  // Per-layer AD trajectory (the Fig 3/4 series).
  std::puts("\nAD trajectory (unit x epoch):");
  for (int u = 0; u < model->unit_count(); ++u) {
    std::printf("%-8s", model->unit(u).name.c_str());
    for (double d : result.ad_per_unit[static_cast<std::size_t>(u)]) {
      std::printf(" %.2f", d);
    }
    std::printf("\n");
  }
  return 0;
}
