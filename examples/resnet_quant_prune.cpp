// Scenario: ResNet18 with coupled AD-quantization + AD-pruning — the
// paper's Table III(b) setup (CIFAR-100 stand-in), evaluated on both the
// analytical CMOS model and the PIM accelerator.
//
//   ./build/examples/resnet_quant_prune [width_mult] [classes]
#include <cstdio>
#include <cstdlib>

#include "core/ad_quantizer.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "energy/analytical.h"
#include "models/resnet.h"
#include "pim/mapper.h"
#include "report/table.h"

int main(int argc, char** argv) {
  using namespace adq;
  const double width = argc > 1 ? std::atof(argv[1]) : 0.125;
  const std::int64_t classes = argc > 2 ? std::atoll(argv[2]) : 20;

  data::SyntheticSpec dspec = data::synthetic_cifar100_spec();
  dspec.num_classes = classes;  // scaled-down stand-in for CIFAR-100
  dspec.train_count = 40 * classes;
  dspec.test_count = 8 * classes;
  const data::TrainTestSplit split = data::make_synthetic(dspec);

  Rng rng(20);
  models::ResNetConfig mcfg;
  mcfg.width_mult = width;
  mcfg.num_classes = classes;
  auto model = models::build_resnet18(mcfg, rng);
  const models::ModelSpec baseline = model->spec();

  core::TrainerConfig tcfg;
  tcfg.batch_size = 32;
  core::Trainer trainer(*model, split.train, split.test, tcfg);
  core::AdqConfig acfg;
  acfg.max_iterations = 3;
  acfg.min_epochs_per_iter = 3;
  acfg.max_epochs_per_iter = 8;
  acfg.detector = ad::SaturationDetector(3, 0.03);
  acfg.prune = true;
  acfg.verbose = true;
  core::AdQuantizationController controller(*model, trainer, acfg);
  const core::RunResult result = controller.run();

  report::Table table("ResNet18 — AD quantization + pruning (cf. Table III(b))");
  table.set_header({"iter", "bits", "channels", "test acc", "total AD", "energy eff"});
  for (const core::IterationResult& ir : result.iterations) {
    table.add_row({std::to_string(ir.iter), ir.bits.to_string(),
                   report::fmt_int_vector(std::vector<long long>(
                       ir.channels.begin(), ir.channels.end())),
                   report::fmt_percent(ir.test_accuracy),
                   report::fmt(ir.total_ad, 3),
                   report::fmt_factor(ir.energy_efficiency)});
  }
  std::printf("%s\n", table.to_markdown().c_str());

  const double analytical = energy::energy_efficiency(model->spec(), baseline);
  const double pim = pim::pim_energy_reduction(model->spec(), baseline);
  std::printf("analytical efficiency: %.1fx | PIM reduction: %.1fx | "
              "analytical/PIM optimism: %.1fx (paper section V-B: ~5-7x)\n",
              analytical, pim, analytical / pim);
  return 0;
}
