// Multi-model serving registry walkthrough: hot reload + precision ladder.
//
// Registers TWO models (a width-scaled VGG19 and a MobileNet-small) in one
// ModelRegistry, each with a three-rung precision ladder compiled from the
// SAME trained weights: rung 0 all-int8, rung 1 the paper-style mixed bit
// vector, rung 2 all-int2. Traffic then runs in three phases —
//
//   trickle  : paced singles; the SLO holds, everything serves on rung 0
//   burst    : a flood far past the queue cap; the controller walks DOWN
//              the ladder (answers get cheaper instead of being dropped),
//              and mid-burst rung 2 is HOT-SWAPPED from an .adqplan file
//              while requests are in flight
//   recover  : paced singles again; once the recent-latency window rinses
//              clean the controller steps back UP toward full precision
//
// — printing a precision-mix timeline as it goes. A deliberately
// incompatible hot swap (a 100-class variant into the 10-class ladder) is
// shown rejected with both plan fingerprints named. The demo exits
// nonzero unless EVERY submitted request resolved (zero drops across the
// swap) and the ladder made at least one transition.
//
//   ./build/examples/multi_model_serve_demo        (ADQ_SCALE=tiny|small|full)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "infer/engine.h"
#include "infer/plan.h"
#include "infer/plan_io.h"
#include "models/mobilenet.h"
#include "models/vgg.h"
#include "serve/registry.h"
#include "tensor/ops.h"
#include "tensor/rng.h"

namespace {

struct Scale {
  const char* name = "small";
  std::int64_t trickle = 24, burst = 240, recover = 300;
  std::int64_t trickle_gap_us = 4000, recover_gap_us = 1000;
};

Scale scale_from_env() {
  Scale s;
  const char* env = std::getenv("ADQ_SCALE");
  const std::string mode = env != nullptr ? env : "small";
  if (mode == "tiny") {
    s = {"tiny", 8, 80, 48, 3000, 800};
  } else if (mode == "full") {
    s = {"full", 64, 1000, 600, 4000, 1000};
  }
  return s;
}

// One ladder = the same trained weights compiled at three precisions.
// `mixed` is the per-unit bit pattern for the middle rung (cycled over the
// non-frozen units, the paper's mixed-allocation shape).
std::vector<adq::infer::InferencePlan> compile_ladder(
    adq::models::QuantizableModel& model, const std::vector<int>& mixed) {
  using adq::infer::compile;
  model.set_training(false);
  std::vector<adq::infer::InferencePlan> ladder;
  const auto set_all = [&](int bits) {
    for (int i = 0; i < model.unit_count(); ++i) {
      if (!model.unit(i).frozen) model.unit(i).set_bits(bits);
    }
  };
  set_all(8);
  ladder.push_back(compile(model));  // rung 0: full int8
  for (int i = 0; i < model.unit_count(); ++i) {
    if (!model.unit(i).frozen) {
      model.unit(i).set_bits(mixed[static_cast<std::size_t>(i) % mixed.size()]);
    }
  }
  ladder.push_back(compile(model));  // rung 1: mixed bits
  set_all(2);
  ladder.push_back(compile(model));  // rung 2: full int2
  return ladder;
}

void print_mix(const char* tag, const adq::serve::ServerStats::Snapshot& st) {
  std::printf("  %-9s rung=%d  mix:", tag, st.current_step);
  for (const auto& [step, count] : st.precision_mix) {
    std::printf(" r%d=%llu", step, static_cast<unsigned long long>(count));
  }
  std::printf("  (down %llu, up %llu)  p99 %.1f ms (queue %.1f + exec %.1f)\n",
              static_cast<unsigned long long>(st.step_downs),
              static_cast<unsigned long long>(st.step_ups),
              st.p99_us / 1000.0, st.p99_queue_us / 1000.0,
              st.p99_exec_us / 1000.0);
}

}  // namespace

int main() {
  using namespace adq;
  const Scale scale = scale_from_env();
  std::printf("multi-model serving registry (ADQ_SCALE=%s)\n", scale.name);

  // 1. Two models, each a 3-rung ladder from one set of weights.
  Rng rng(3);
  models::VggConfig vcfg;
  vcfg.width_mult = 0.0625;
  vcfg.num_classes = 10;
  auto vgg = models::build_vgg19(vcfg, rng);
  // Paper Table II(a) shape, clipped to the integer path's 8-bit ceiling.
  std::vector<infer::InferencePlan> vgg_ladder = compile_ladder(
      *vgg, {8, 4, 5, 4, 3, 2, 2, 2, 3, 3, 3, 4, 3, 3, 3, 3, 8});

  models::MobileNetConfig mcfg;
  mcfg.width_mult = 0.25;
  mcfg.num_classes = 10;
  auto mobilenet = models::build_mobilenet_small(mcfg, rng);
  std::vector<infer::InferencePlan> mob_ladder =
      compile_ladder(*mobilenet, {8, 4, 8, 2});

  // The VGG ladder goes through .adqplan files — the registry cold-starts
  // it from the serialized artifacts alone, as a deployment would.
  std::vector<std::string> vgg_paths;
  for (std::size_t r = 0; r < vgg_ladder.size(); ++r) {
    vgg_paths.push_back("mm_vgg_r" + std::to_string(r) + ".adqplan");
    infer::save_plan(vgg_ladder[r], vgg_paths.back());
  }

  serve::ModelRegistry registry;
  serve::ModelConfig cfg;
  cfg.max_batch = 8;
  cfg.max_wait_us = 500;
  // 20 ms end-to-end target: the burst breaches it (and the depth cap)
  // decisively, while paced traffic sits well inside the 10 ms clear band
  // so the controller can climb back up after the window rinses.
  cfg.slo.p99_us = 20'000.0;
  cfg.slo.max_queue_depth = 4;  // depth is the leading breach signal
  cfg.slo.breach_ticks = 2;
  cfg.slo.clear_ticks = 4;
  cfg.tick_interval_us = 500;
  registry.add_model("vgg19", vgg_paths, cfg);
  registry.add_model("mobilenet", std::move(mob_ladder), cfg);
  for (const std::string& name : {std::string("vgg19"), std::string("mobilenet")}) {
    std::printf("registered %-9s ladder of %d (rung fingerprints", name.c_str(),
                registry.ladder_size(name));
    for (int r = 0; r < registry.ladder_size(name); ++r) {
      std::printf(" %016llx", static_cast<unsigned long long>(
                                  registry.rung_fingerprint(name, r)));
    }
    std::printf(")\n");
  }

  // 2. Traffic phases. All futures are collected; every one must resolve.
  Rng traffic_rng(17);
  const auto sample = [&] {
    Tensor x(Shape{3, 32, 32});
    traffic_rng.fill_normal(x, 0.0f, 1.0f);
    return x;
  };
  std::vector<std::future<serve::InferenceResult>> futures;
  const auto submit_both = [&] {
    futures.push_back(registry.submit("vgg19", sample()));
    futures.push_back(registry.submit("mobilenet", sample()));
  };

  std::printf("\nphase 1: trickle (%lld paced pairs)\n",
              static_cast<long long>(scale.trickle));
  for (std::int64_t i = 0; i < scale.trickle; ++i) {
    submit_both();
    std::this_thread::sleep_for(
        std::chrono::microseconds(scale.trickle_gap_us));
  }
  print_mix("vgg19", registry.stats("vgg19"));
  print_mix("mobilenet", registry.stats("mobilenet"));

  std::printf("\nphase 2: burst (%lld pairs, no pacing) + mid-burst hot swap\n",
              static_cast<long long>(scale.burst));
  for (std::int64_t i = 0; i < scale.burst; ++i) {
    submit_both();
    if (i == scale.burst / 2) {
      // Zero-downtime reload while the queue is deep: replace rung 2 with
      // the mixed plan re-loaded from its file (ops pushing a recompiled
      // artifact). In-flight batches finish on the old engine.
      registry.hot_swap("vgg19", 2, vgg_paths[1]);
      std::printf("  [swap] vgg19 rung 2 <- %s (now %016llx), queue depth %lld\n",
                  vgg_paths[1].c_str(),
                  static_cast<unsigned long long>(
                      registry.rung_fingerprint("vgg19", 2)),
                  static_cast<long long>(registry.queue_depth("vgg19")));
    }
  }
  // Watch the ladder degrade while the burst drains.
  while (registry.queue_depth("vgg19") > 0 ||
         registry.queue_depth("mobilenet") > 0) {
    std::printf("  draining: vgg19 depth %lld rung %d | mobilenet depth %lld "
                "rung %d\n",
                static_cast<long long>(registry.queue_depth("vgg19")),
                registry.current_step("vgg19"),
                static_cast<long long>(registry.queue_depth("mobilenet")),
                registry.current_step("mobilenet"));
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  print_mix("vgg19", registry.stats("vgg19"));
  print_mix("mobilenet", registry.stats("mobilenet"));

  std::printf("\nphase 3: recover (%lld paced pairs)\n",
              static_cast<long long>(scale.recover));
  for (std::int64_t i = 0; i < scale.recover; ++i) {
    submit_both();
    std::this_thread::sleep_for(
        std::chrono::microseconds(scale.recover_gap_us));
  }
  print_mix("vgg19", registry.stats("vgg19"));
  print_mix("mobilenet", registry.stats("mobilenet"));

  // 3. The guardrail: an interface-incompatible artifact is refused, with
  //    both fingerprints named, and the incumbent keeps serving.
  std::printf("\nattempting an incompatible swap (100-class VGG into the "
              "10-class ladder):\n");
  {
    Rng bad_rng(9);
    models::VggConfig bad_cfg;
    bad_cfg.width_mult = 0.0625;
    bad_cfg.num_classes = 100;
    auto bad_model = models::build_vgg19(bad_cfg, bad_rng);
    bad_model->set_training(false);
    for (int i = 0; i < bad_model->unit_count(); ++i) {
      if (!bad_model->unit(i).frozen) bad_model->unit(i).set_bits(8);
    }
    try {
      registry.hot_swap("vgg19", 0, infer::compile(*bad_model));
      std::printf("  ERROR: incompatible swap was accepted\n");
      return 1;
    } catch (const std::invalid_argument& e) {
      std::printf("  rejected: %s\n", e.what());
    }
  }

  // 4. Drain, then gate the exit on the two properties the registry
  //    promises: no request dropped, and the ladder actually moved.
  std::size_t dropped = 0;
  for (auto& f : futures) {
    try {
      (void)f.get();
    } catch (const std::exception& e) {
      ++dropped;
      std::printf("  dropped request: %s\n", e.what());
    }
  }
  registry.shutdown();
  const serve::ServerStats::Snapshot vs = registry.stats("vgg19");
  const serve::ServerStats::Snapshot ms = registry.stats("mobilenet");
  const std::uint64_t transitions =
      vs.step_downs + vs.step_ups + ms.step_downs + ms.step_ups;
  std::printf("\nfinal: %zu requests, %zu dropped (must be 0), %llu ladder "
              "transitions (must be >= 1)\n",
              futures.size(), dropped,
              static_cast<unsigned long long>(transitions));
  print_mix("vgg19", vs);
  print_mix("mobilenet", ms);
  if (dropped != 0 || transitions == 0) return 1;
  return 0;
}
