// Integer inference engine walkthrough.
//
// Builds a width-scaled VGG19, applies the paper's Table II(a) mixed bit
// vector (clipped to the engine's 8-bit integer ceiling), compiles it into
// an InferencePlan, and prints what the compiler produced: per-layer
// execution path, packed cell width, and resident weight bytes. Then runs a
// batch through the engine next to the fake-quant training forward and
// reports top-1 agreement and wall time.
//
//   ./build/examples/int_inference_demo
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <numeric>

#include "data/synthetic.h"
#include "infer/engine.h"
#include "infer/plan.h"
#include "models/vgg.h"
#include "tensor/ops.h"

int main() {
  using namespace adq;

  // 1. Model: VGG19 at 1/8 width, as Algorithm 1 would leave it — mixed
  //    per-layer bits, quantization-exempt first conv and final FC.
  Rng rng(3);
  models::VggConfig mcfg;
  mcfg.width_mult = 0.125;
  mcfg.num_classes = 10;
  auto model = models::build_vgg19(mcfg, rng);
  const std::vector<int> paper_bits{16, 4, 5, 4, 3, 2, 2, 2, 3,
                                    3,  3, 4, 3, 3, 3, 3, 16};
  quant::BitWidthPolicy policy = model->bit_policy();
  for (int i = 0; i < model->unit_count(); ++i) {
    if (!model->unit(i).frozen) {
      policy.set(i, std::min(paper_bits[static_cast<std::size_t>(i)], 8));
    }
  }
  model->apply_bit_policy(policy);
  model->set_training(false);

  // 2. Compile: quantize + pack weights, fold BN, fuse ReLU epilogues.
  const infer::InferencePlan plan = infer::compile(*model);
  std::printf("%-12s %5s %8s %6s %12s\n", "layer", "bits", "path", "cell",
              "weight bytes");
  for (const infer::GemmLayerPlan& l : plan.layers) {
    std::printf("%-12s %5d %8s %6s %12zu\n", l.name.c_str(), l.bits,
                l.path == infer::ExecPath::kInteger ? "int" : "float",
                l.path == infer::ExecPath::kInteger
                    ? (std::to_string(l.cell_bits) + "-bit").c_str()
                    : "-",
                l.weight_bytes());
  }
  std::size_t float_bytes = 0;
  for (nn::Parameter* p : model->parameters()) {
    float_bytes += static_cast<std::size_t>(p->value.numel()) * sizeof(float);
  }
  std::printf("total resident weights: %.1f KiB (float model: %.1f KiB)\n\n",
              static_cast<double>(plan.weight_bytes()) / 1024.0,
              static_cast<double>(float_bytes) / 1024.0);

  // 3. Run a synthetic batch through both paths.
  data::SyntheticSpec dspec = data::synthetic_cifar10_spec();
  dspec.train_count = 8;
  dspec.test_count = 32;
  const data::TrainTestSplit split = data::make_synthetic(dspec);
  std::vector<std::int64_t> idx(32);
  std::iota(idx.begin(), idx.end(), 0);
  const Tensor x = split.test.gather(idx).images;

  const infer::IntInferenceEngine engine(plan);
  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<std::int64_t> int_top1 = engine.predict(x);
  const auto t1 = std::chrono::steady_clock::now();
  const std::vector<std::int64_t> fq_top1 = argmax_rows(model->forward(x));
  const auto t2 = std::chrono::steady_clock::now();

  std::size_t agree = 0;
  for (std::size_t i = 0; i < int_top1.size(); ++i) {
    agree += int_top1[i] == fq_top1[i];
  }
  std::printf("batch of 32: integer %.2f ms, fake-quant %.2f ms, "
              "top-1 agreement %zu/32\n",
              std::chrono::duration<double, std::milli>(t1 - t0).count(),
              std::chrono::duration<double, std::milli>(t2 - t1).count(),
              agree);
  return 0;
}
