// Baseline the paper argues against (§I): homogeneous-precision networks
// trained from scratch with the same bit-width in every layer "generally
// suffer from accuracy loss as compared to mixed-precision models".
//
// We train VGG19 from scratch at fixed 16/8/4/2 bits on the same synthetic
// task and budget as the AD experiment, then run Algorithm 1 once and pick
// its best accuracy-per-energy iteration, printing all rows side by side.
// Runs at tiny scale regardless of ADQ_SCALE (five trainings).
#include <cstdio>

#include "bench/common.h"
#include "energy/analytical.h"
#include "report/table.h"

namespace {

using namespace adq;

struct HomogeneousRow {
  int bits;
  double accuracy;
  double efficiency;
  int epochs;
};

HomogeneousRow train_homogeneous(const bench::Scale& s, int bits) {
  data::SyntheticSpec dspec = data::synthetic_cifar10_spec();
  dspec.num_classes = s.classes_c10;
  dspec.train_count = s.train_count;
  dspec.test_count = s.test_count;
  dspec.noise = 0.6f;
  const data::TrainTestSplit split = data::make_synthetic(dspec);

  Rng rng(50);
  models::VggConfig mcfg;
  mcfg.width_mult = s.width_mult;
  mcfg.num_classes = dspec.num_classes;
  mcfg.use_batchnorm = false;
  mcfg.initial_bits = bits;
  auto model = models::build_vgg19(mcfg, rng);
  const models::ModelSpec baseline = model->spec().with_uniform_bits(16);

  core::TrainerConfig tcfg;
  tcfg.batch_size = s.batch_size;
  tcfg.lr = 3e-4f;
  core::Trainer trainer(*model, split.train, split.test, tcfg);
  const int epochs = s.max_epochs_per_iter * 2;  // comparable total budget
  for (int e = 0; e < epochs; ++e) trainer.run_epoch();

  HomogeneousRow row;
  row.bits = bits;
  row.accuracy = trainer.evaluate();
  row.efficiency = energy::energy_efficiency(model->spec(), baseline);
  row.epochs = epochs;
  return row;
}

}  // namespace

int main() {
  adq::bench::JsonReport json_report("baseline_homogeneous");
  bench::Scale s = bench::bench_scale();
  s.width_mult = 0.125;
  s.train_count = 320;
  s.test_count = 96;
  s.min_epochs_per_iter = 3;
  s.max_epochs_per_iter = 4;
  s.max_iterations = 3;
  s.saturation_window = 2;
  s.saturation_tol = 0.05;
  std::puts("[reduced scale] Homogeneous-precision baselines vs AD mixed precision\n");

  report::Table table("Homogeneous k-bit training vs AD-based mixed precision");
  table.set_header({"model", "test acc", "analytical eff", "epochs"});
  for (int bits : {16, 8, 4, 2}) {
    const HomogeneousRow row = train_homogeneous(s, bits);
    table.add_row({"homogeneous " + std::to_string(row.bits) + "-bit",
                   report::fmt_percent(row.accuracy),
                   report::fmt_factor(row.efficiency),
                   std::to_string(row.epochs)});
  }

  const bench::QuantExperiment exp = bench::run_vgg_c10(s, false, false, 50);
  // The iteration a practitioner would ship: the most accurate model among
  // those that actually deliver an energy win (efficiency >= ~2x, the
  // 8-bit-homogeneous operating point); falls back to best accuracy.
  const core::IterationResult* best = &exp.result.iterations.front();
  for (const core::IterationResult& ir : exp.result.iterations) {
    const bool candidate_wins =
        (ir.energy_efficiency >= 1.9 && ir.test_accuracy > best->test_accuracy) ||
        (best->energy_efficiency < 1.9 &&
         ir.test_accuracy * ir.energy_efficiency >
             best->test_accuracy * best->energy_efficiency);
    if (candidate_wins) best = &ir;
  }
  int total_epochs = 0;
  for (const auto& ir : exp.result.iterations) total_epochs += ir.epochs;
  table.add_row({"AD mixed (best iter " + std::to_string(best->iter) + ")",
                 report::fmt_percent(best->test_accuracy),
                 report::fmt_factor(best->energy_efficiency),
                 std::to_string(total_epochs)});
  std::printf("%s\n", table.to_markdown().c_str());
  std::puts("paper's claim (section I): homogeneous low-precision training "
            "loses accuracy that mixed precision retains at similar energy.");
  return 0;
}
