// Table IV: per-MAC energy of the proposed PIM accelerator at each
// supported precision, plus our event-calibrated decomposition and the
// functional simulator's event counts for a representative MAC.
#include <cstdio>

#include "pim/accelerator.h"
#include "pim/energy_model.h"
#include "report/table.h"

#include "bench/common.h"

int main() {
  adq::bench::JsonReport json_report("table4_pim_mac_energy");
  using namespace adq;
  report::Table table("Table IV — PIM per-MAC energy (45 nm)");
  table.set_header({"precision", "paper E_MAC (fJ)", "ours (fJ)",
                    "event model (fJ)", "event error"});
  const double paper[] = {2.942, 16.968, 66.714, 276.676};
  const int bits[] = {2, 4, 8, 16};
  for (int i = 0; i < 4; ++i) {
    const double ours = pim::pim_mac_energy_fj(bits[i]);
    const double fitted = pim::event_energy_fj(pim::expected_mac_events(bits[i]));
    table.add_row({std::to_string(bits[i]) + "-bit", report::fmt(paper[i], 3),
                   report::fmt(ours, 3), report::fmt(fitted, 3),
                   report::fmt_percent(fitted / paper[i] - 1.0, 1)});
  }
  std::printf("%s\n", table.to_markdown().c_str());

  // Per-MAC event counts measured from the functional simulator (fan-in 1):
  std::puts("functional-simulator event counts for one k x k MAC:");
  for (int k : {2, 4, 8, 16}) {
    pim::EventCounts ev;
    pim::pim_dot_product({1}, {1}, k, ev);
    std::printf("  k=%-2d cells=%-4lld decoder=%-3lld acc4=%-4lld acc8=%-4lld acc16=%-4lld\n",
                k, static_cast<long long>(ev.cell_mults),
                static_cast<long long>(ev.decoder_reads),
                static_cast<long long>(ev.acc4_ops),
                static_cast<long long>(ev.acc8_ops),
                static_cast<long long>(ev.acc16_ops));
  }
  return 0;
}
