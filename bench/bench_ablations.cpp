// Ablations of the design choices DESIGN.md §6 calls out. All training runs
// use the tiny preset regardless of ADQ_SCALE so the sweep stays fast:
//
//   1. eqn-3 rounding mode (round / floor / ceil) — bit assignments and the
//      resulting energy efficiency;
//   2. saturation window/tolerance — epochs spent per iteration;
//   3. in-training hardware-grid snapping {2,4,8,16} vs free bit-widths —
//      quantifies how much the idealised analytical model banks on
//      impractical precisions (the paper's V-B argument, at training time).
#include <cstdio>

#include "bench/common.h"
#include "report/table.h"

namespace {

using namespace adq;

bench::Scale tiny() {
  bench::Scale s = bench::bench_scale();
  s.name = "ablation";
  s.width_mult = 0.0625;
  s.train_count = 160;
  s.test_count = 48;
  s.min_epochs_per_iter = 2;
  s.max_epochs_per_iter = 3;
  s.max_iterations = 3;
  s.saturation_window = 2;
  s.saturation_tol = 0.05;
  return s;
}

core::RunResult run_with(const bench::Scale& s, quant::Rounding rounding,
                         bool hardware_grid, int window, double tol,
                         quant::BitWidthPolicy* final_bits) {
  data::SyntheticSpec dspec = data::synthetic_cifar10_spec();
  dspec.num_classes = s.classes_c10;
  dspec.train_count = s.train_count;
  dspec.test_count = s.test_count;
  const data::TrainTestSplit split = data::make_synthetic(dspec);

  Rng rng(42);
  models::VggConfig mcfg;
  mcfg.width_mult = s.width_mult;
  mcfg.num_classes = dspec.num_classes;
  auto model = models::build_vgg19(mcfg, rng);

  core::TrainerConfig tcfg;
  tcfg.batch_size = s.batch_size;
  core::Trainer trainer(*model, split.train, split.test, tcfg);
  core::AdqConfig cfg = bench::controller_config(s);
  cfg.rounding = rounding;
  cfg.hardware_grid = hardware_grid;
  cfg.detector = ad::SaturationDetector(window, tol);
  core::AdQuantizationController controller(*model, trainer, cfg);
  core::RunResult result = controller.run();
  if (final_bits != nullptr) *final_bits = model->bit_policy();
  return result;
}

}  // namespace

int main() {
  adq::bench::JsonReport json_report("ablations");
  const bench::Scale s = tiny();

  // ---- 1. eqn-3 rounding mode ------------------------------------------
  {
    report::Table table("Ablation: eqn-3 rounding mode (VGG19, tiny scale)");
    table.set_header({"mode", "final bits", "test acc", "energy eff", "epochs"});
    const struct {
      const char* name;
      quant::Rounding mode;
    } modes[] = {{"round (paper)", quant::Rounding::kNearest},
                 {"floor", quant::Rounding::kFloor},
                 {"ceil", quant::Rounding::kCeil}};
    for (const auto& m : modes) {
      quant::BitWidthPolicy bits;
      const core::RunResult r = run_with(s, m.mode, false, s.saturation_window,
                                         s.saturation_tol, &bits);
      int total_epochs = 0;
      for (const auto& ir : r.iterations) total_epochs += ir.epochs;
      table.add_row({m.name, bits.to_string(),
                     report::fmt_percent(r.iterations.back().test_accuracy),
                     report::fmt_factor(r.iterations.back().energy_efficiency),
                     std::to_string(total_epochs)});
    }
    std::printf("%s\n", table.to_markdown().c_str());
  }

  // ---- 2. saturation detector sensitivity --------------------------------
  {
    report::Table table("Ablation: saturation window/tolerance");
    table.set_header({"window", "tolerance", "iterations", "total epochs",
                      "energy eff"});
    const struct {
      int window;
      double tol;
    } dets[] = {{2, 0.10}, {2, 0.05}, {3, 0.02}};
    for (const auto& d : dets) {
      const core::RunResult r = run_with(s, quant::Rounding::kNearest, false,
                                         d.window, d.tol, nullptr);
      int total_epochs = 0;
      for (const auto& ir : r.iterations) total_epochs += ir.epochs;
      table.add_row({std::to_string(d.window), report::fmt(d.tol, 2),
                     std::to_string(r.iterations.size()),
                     std::to_string(total_epochs),
                     report::fmt_factor(r.iterations.back().energy_efficiency)});
    }
    std::printf("%s\n", table.to_markdown().c_str());
  }

  // ---- 3. free bit-widths vs hardware grid ------------------------------
  {
    report::Table table("Ablation: ideal per-layer bits vs PIM grid {2,4,8,16}");
    table.set_header({"mode", "final bits", "analytical eff"});
    for (bool hw : {false, true}) {
      quant::BitWidthPolicy bits;
      const core::RunResult r = run_with(s, quant::Rounding::kNearest, hw,
                                         s.saturation_window, s.saturation_tol,
                                         &bits);
      table.add_row({hw ? "hardware grid" : "ideal (paper's analytical view)",
                     bits.to_string(),
                     report::fmt_factor(r.iterations.back().energy_efficiency)});
    }
    std::printf("%s\n", table.to_markdown().c_str());
    std::puts("the gap between the two rows is the in-training face of the "
              "paper's V-B argument: analytical numbers assume precisions "
              "real hardware doesn't offer.");
  }
  return 0;
}
