// Section V-B claim: analytical (Table I) estimates overstate the energy
// efficiency of pruned mixed-precision models by ~5-7x relative to the PIM
// hardware numbers, because they assume an idealised per-layer-precision
// datapath. We reproduce the comparison on both Table III configurations.
#include <cstdio>

#include "bench/common.h"
#include "energy/analytical.h"
#include "pim/mapper.h"
#include "report/table.h"

namespace {

using namespace adq;

// Mean of per-layer energy ratios. The paper's Table III efficiencies
// (980x / 300x) are not reproducible as total-baseline / total-model with
// the published Table I formulas (that yields ~80x / ~34x); they *are* the
// right order of magnitude if one averages the per-layer ratios instead,
// where a near-dead layer (e.g. VGG conv16 pruned 512 -> 8 channels at
// 3 bits) contributes an enormous ratio. We print this diagnostic so the
// discrepancy is visible rather than silently absorbed.
double mean_per_layer_ratio(const models::ModelSpec& model,
                            const models::ModelSpec& baseline) {
  const energy::EnergyReport em = energy::analytical_energy(model);
  const energy::EnergyReport eb = energy::analytical_energy(baseline);
  double sum = 0.0;
  for (std::size_t i = 0; i < em.layers.size(); ++i) {
    sum += eb.layers[i].total_pj() / em.layers[i].total_pj();
  }
  return sum / static_cast<double>(em.layers.size());
}

void compare(report::Table& table, const std::string& name,
             models::ModelSpec spec, const std::vector<int>& bits,
             const std::vector<std::int64_t>& channels, double paper_analytical,
             double paper_pim) {
  const models::ModelSpec baseline = spec.with_uniform_bits(16);
  spec.apply_bits(quant::BitWidthPolicy(bits));
  spec.apply_channels(channels);
  const double analytical = energy::energy_efficiency(spec, baseline);
  const double pim = pim::pim_energy_reduction(spec, baseline);
  table.add_row({name, report::fmt_factor(analytical), report::fmt_factor(pim),
                 report::fmt_factor(analytical / pim),
                 report::fmt_factor(paper_analytical) + " / " +
                     report::fmt_factor(paper_pim) + " = " +
                     report::fmt_factor(paper_analytical / paper_pim, 1)});
  table.add_row({name + " (mean per-layer ratio)",
                 report::fmt_factor(mean_per_layer_ratio(spec, baseline)), "-",
                 "-", "paper-style? see source comment"});
}

}  // namespace

int main() {
  adq::bench::JsonReport json_report("analytical_vs_pim");
  report::Table table(
      "Section V-B — analytical vs PIM efficiency for pruned+quantized models");
  table.set_header({"network", "analytical eff", "PIM reduction",
                    "analytical optimism", "paper (analytical/PIM)"});

  compare(table, "VGG19/CIFAR-10", models::vgg19_spec(models::VggConfig{}),
          bench::kPaperVggC10Bits, bench::paper_vgg_c10_channels(), 980.0, 197.55);
  compare(table, "ResNet18/CIFAR-100",
          models::resnet18_spec(models::ResNetConfig{}),
          bench::kPaperResNetC100PrunedBits, bench::paper_resnet_c100_channels(),
          300.0, 43.941);

  std::printf("%s", table.to_markdown().c_str());
  std::puts("\npaper: analytical estimates are ~5-7x greater than the PIM "
            "hardware measurement; our models must land in the same band.");
  return 0;
}
