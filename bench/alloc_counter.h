// Global heap-allocation counter shared by the zero-allocation test and
// the allocs-per-forward bench metrics.
//
// Including this header REPLACES the global ::operator new/delete for the
// whole binary (replacement functions must not be inline, so include it
// from exactly ONE translation unit per binary — which is the case for
// the single-TU test/bench executables that use it). Counting is gated by
// `g_count_allocs` so harness allocations (gtest, benchmark, stdio)
// outside the bracketed region never pollute the measurement:
//
//   adq::alloccount::g_alloc_count.store(0);
//   adq::alloccount::g_count_allocs.store(true);
//   ... hot region ...
//   adq::alloccount::g_count_allocs.store(false);
//   // g_alloc_count.load() == allocations inside the bracket
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace adq::alloccount {

inline std::atomic<bool> g_count_allocs{false};
inline std::atomic<std::int64_t> g_alloc_count{0};

inline void* counted_alloc(std::size_t n) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(n == 0 ? 1 : n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

}  // namespace adq::alloccount

void* operator new(std::size_t n) { return adq::alloccount::counted_alloc(n); }
void* operator new[](std::size_t n) {
  return adq::alloccount::counted_alloc(n);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
