// Table V: PIM MAC energy of the mixed-precision models vs the unpruned
// 16-bit baselines — VGG19/CIFAR-10 (paper: 21.506 vs 110.154 uJ, 5.12x)
// and ResNet18/CIFAR-100 (33.186 vs 159.501 uJ, 4.81x).
//
// Both activation-streaming modes are reported: full-16 reproduces the
// paper's absolute numbers; matched-precision (k-bit activations) is the
// more aggressive datapath the accelerator could also support.
#include <cstdio>

#include "bench/common.h"
#include "pim/mapper.h"
#include "report/table.h"

namespace {

using namespace adq;

void report_network(report::Table& table, const std::string& name,
                    models::ModelSpec spec, const std::vector<int>& bits,
                    double paper_mixed_uj, double paper_full_uj,
                    double paper_reduction) {
  const models::ModelSpec baseline = spec.with_uniform_bits(16);
  spec.apply_bits(quant::BitWidthPolicy(bits));

  const pim::PimEnergyOptions full16{};
  pim::PimEnergyOptions matched;
  matched.streaming = pim::ActivationStreaming::kMatched;

  const double mixed_uj = pim::pim_energy(spec, {}, full16).total_uj;
  const double base_uj = pim::pim_energy(baseline, {}, full16).total_uj;
  const double mixed_matched = pim::pim_energy(spec, {}, matched).total_uj;

  table.add_row({name + " (paper)", report::fmt(paper_mixed_uj, 3),
                 report::fmt(paper_full_uj, 3),
                 report::fmt_factor(paper_reduction)});
  table.add_row({name + " (ours, full-16 stream)", report::fmt(mixed_uj, 3),
                 report::fmt(base_uj, 3),
                 report::fmt_factor(base_uj / mixed_uj)});
  table.add_row({name + " (ours, matched stream)", report::fmt(mixed_matched, 3),
                 report::fmt(base_uj, 3),
                 report::fmt_factor(base_uj / mixed_matched)});
}

}  // namespace

int main() {
  adq::bench::JsonReport json_report("table5_pim_quant");
  report::Table table("Table V — PIM energy: mixed precision vs 16-bit baseline");
  table.set_header({"network", "mixed (uJ)", "baseline (uJ)", "reduction"});

  report_network(table, "VGG19/CIFAR-10", models::vgg19_spec(models::VggConfig{}),
                 bench::kPaperVggC10Bits, 21.506, 110.154, 5.12);
  report_network(table, "ResNet18/CIFAR-100",
                 models::resnet18_spec(models::ResNetConfig{}),
                 bench::kPaperResNetC100BitsIter3, 33.186, 159.501, 4.81);

  std::printf("%s", table.to_markdown().c_str());
  std::puts("\nnote: Table IV's E_MAC|k is a k x k MAC; the paper's Table V "
            "absolute energies are consistent with weights at k bits and "
            "activations streamed at the full 16-bit width (see "
            "src/pim/mapper.h), which is our default reproduction mode.");
  return 0;
}
