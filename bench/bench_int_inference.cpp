// Integer inference engine bench: float vs fake-quant vs integer execution
// of VGG19 at several batch sizes.
//
// The float path runs the network with quantization disabled (the plain
// training-graph forward); the fake-quant path simulates the 8-bit policy
// in float exactly as Algorithm 1 trains it; the integer path executes the
// compiled plan (packed weights, u8 GEMM, fused epilogues — src/infer). A
// mixed-precision row replays the paper's Table II(a) VGG19/CIFAR-10 bit
// vector (clipped to the 8-bit integer ceiling) to show the packed sub-byte
// storage. Per-path wall time, throughput, speedup vs float, top-1
// agreement vs fake-quant, and resident weight bytes land in the table and
// in BENCH_int_inference.json.
#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <numeric>
#include <string>

// Replaces global operator new/delete for the allocs-per-forward metric:
// the arena executor's contract is ZERO steady-state heap allocations,
// and this bench measures (rather than assumes) it on every run.
#include "bench/alloc_counter.h"
#include "bench/common.h"
#include "energy/analytical.h"
#include "infer/engine.h"
#include "infer/plan.h"
#include "report/table.h"
#include "tensor/ops.h"
#include "tensor/parallel.h"

namespace {

using adq::Tensor;

// Mean heap allocations of one forward_into() after warm-up.
double allocs_per_forward(const adq::infer::IntInferenceEngine& engine,
                          const Tensor& x) {
  Tensor out;
  for (int i = 0; i < 3; ++i) engine.forward_into(x, out);
  constexpr int kReps = 10;
  adq::alloccount::g_alloc_count.store(0);
  adq::alloccount::g_count_allocs.store(true);
  for (int i = 0; i < kReps; ++i) engine.forward_into(x, out);
  adq::alloccount::g_count_allocs.store(false);
  return static_cast<double>(adq::alloccount::g_alloc_count.load()) / kReps;
}

double time_best_ms(int reps, const std::function<Tensor()>& fn) {
  double best = 1e300;
  fn();  // warm-up (thread pool, page faults)
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    const Tensor out = fn();
    const auto t1 = std::chrono::steady_clock::now();
    (void)out;
    best = std::min(best, std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

double agreement(const std::vector<std::int64_t>& a,
                 const std::vector<std::int64_t>& b) {
  std::size_t same = 0;
  for (std::size_t i = 0; i < a.size(); ++i) same += a[i] == b[i];
  return a.empty() ? 0.0 : static_cast<double>(same) / static_cast<double>(a.size());
}

}  // namespace

int main() {
  using namespace adq;
  bench::JsonReport json("int_inference");
  const bench::Scale s = bench::bench_scale();
  const int reps = s.name == "tiny" ? 2 : 5;

  // Model: VGG19 at bench width, as Algorithm 1 would leave it — an 8-bit
  // policy on every non-frozen unit, float (quantization-exempt) ends.
  Rng rng(42);
  models::VggConfig mcfg;
  mcfg.width_mult = s.width_mult;
  mcfg.num_classes = s.classes_c10;
  auto model = models::build_vgg19(mcfg, rng);
  model->set_training(false);

  // Synthetic CIFAR-10-like eval batch (same generator as the paper-table
  // benches).
  data::SyntheticSpec dspec = data::synthetic_cifar10_spec();
  dspec.num_classes = s.classes_c10;
  dspec.train_count = 8;
  dspec.test_count = 64;
  const data::TrainTestSplit split = data::make_synthetic(dspec);

  auto set_bits = [&](const std::vector<int>& bits_per_unit) {
    quant::BitWidthPolicy policy = model->bit_policy();
    for (int i = 0; i < model->unit_count(); ++i) {
      if (!model->unit(i).frozen) policy.set(i, bits_per_unit[static_cast<std::size_t>(i)]);
    }
    model->apply_bit_policy(policy);
  };
  auto set_quant_enabled = [&](bool enabled) {
    for (int i = 0; i < model->unit_count(); ++i) {
      if (!model->unit(i).frozen) model->unit(i).set_quantization_enabled(enabled);
    }
  };

  const std::vector<int> uniform8(static_cast<std::size_t>(model->unit_count()), 8);
  // Paper Table II(a) iteration-2 bit vector, clipped to the integer
  // ceiling (5-bit layers execute in 8-bit cells, like the PIM grid).
  std::vector<int> mixed = bench::kPaperVggC10Bits;
  for (int& b : mixed) b = std::min(b, 8);

  report::Table table("Integer inference engine — VGG19, scale " + s.name);
  table.set_header({"path", "batch", "ms/batch", "imgs/s", "vs float",
                    "top-1 agree", "weights"});

  const std::size_t float_bytes =
      [&] {
        set_quant_enabled(false);
        return infer::compile(*model).weight_bytes();
      }();

  std::vector<std::int64_t> batches{1, 8, 32};
  bool int8_wins_at_8plus = true;
  for (const std::int64_t B : batches) {
    std::vector<std::int64_t> idx(static_cast<std::size_t>(B));
    std::iota(idx.begin(), idx.end(), 0);
    const Tensor x = split.test.gather(idx).images;
    const auto per_img = [&](double ms) {
      return 1000.0 * static_cast<double>(B) / ms;
    };
    const std::string bs = std::to_string(B);

    // Float path: quantization disabled end to end.
    set_quant_enabled(false);
    const double float_ms = time_best_ms(reps, [&] { return model->forward(x); });
    table.add_row({"float", bs, report::fmt(float_ms), report::fmt(per_img(float_ms), 1),
                   "1.00x", "-", report::fmt(static_cast<double>(float_bytes) / 1024.0, 1) + " KiB"});
    json.add("float_b" + bs + "_ms", float_ms, "ms");

    // Fake-quant path: the 8-bit policy simulated in float (training graph).
    set_quant_enabled(true);
    set_bits(uniform8);
    const double fq_ms = time_best_ms(reps, [&] { return model->forward(x); });
    const Tensor fq_logits = model->forward(x);
    const std::vector<std::int64_t> fq_top1 = argmax_rows(fq_logits);
    table.add_row({"fake-quant int8", bs, report::fmt(fq_ms), report::fmt(per_img(fq_ms), 1),
                   report::fmt_factor(float_ms / fq_ms), "-",
                   report::fmt(static_cast<double>(float_bytes) / 1024.0, 1) + " KiB"});
    json.add("fakequant8_b" + bs + "_ms", fq_ms, "ms");

    // Integer path: compiled plan, packed int8 weights.
    const infer::IntInferenceEngine engine8(infer::compile(*model));
    const double int_ms = time_best_ms(reps, [&] { return engine8.forward(x); });
    const double agree8 = agreement(engine8.predict(x), fq_top1);
    table.add_row({"integer int8", bs, report::fmt(int_ms), report::fmt(per_img(int_ms), 1),
                   report::fmt_factor(float_ms / int_ms), report::fmt_percent(agree8, 1),
                   report::fmt(static_cast<double>(engine8.plan().weight_bytes()) / 1024.0, 1) + " KiB"});
    json.add("int8_b" + bs + "_ms", int_ms, "ms");
    json.add("int8_b" + bs + "_speedup_vs_float", float_ms / int_ms, "x");
    json.add("int8_b" + bs + "_top1_agree", agree8, "frac");
    if (B >= 8 && int_ms >= float_ms) int8_wins_at_8plus = false;

    // Mixed precision (paper Table II(a) bits, sub-byte layers bit-packed).
    set_bits(mixed);
    const infer::IntInferenceEngine engine_mixed(infer::compile(*model));
    const double mixed_ms = time_best_ms(reps, [&] { return engine_mixed.forward(x); });
    const Tensor mixed_ref = model->forward(x);
    const double agree_mixed =
        agreement(engine_mixed.predict(x), argmax_rows(mixed_ref));
    table.add_row({"integer mixed", bs, report::fmt(mixed_ms), report::fmt(per_img(mixed_ms), 1),
                   report::fmt_factor(float_ms / mixed_ms), report::fmt_percent(agree_mixed, 1),
                   report::fmt(static_cast<double>(engine_mixed.plan().weight_bytes()) / 1024.0, 1) + " KiB"});
    json.add("mixed_b" + bs + "_ms", mixed_ms, "ms");
    set_bits(uniform8);
  }

  std::printf("%s\n", table.to_markdown().c_str());
  std::printf("int8 beats float at batch >= 8: %s\n",
              int8_wins_at_8plus ? "yes" : "NO");
  json.add("int8_wins_at_batch_ge8", int8_wins_at_8plus ? 1.0 : 0.0, "bool");
  json.add("weight_bytes_float", static_cast<double>(float_bytes), "bytes");

  // -- static memory plan: peak activation footprint, per-layer activation
  //    traffic (the paper's E_Mem|k term), and allocs per forward ---------
  set_quant_enabled(true);
  set_bits(uniform8);
  const infer::InferencePlan plan8 = infer::compile(*model);
  const infer::IntInferenceEngine engine8(plan8);
  for (const std::int64_t B : batches) {
    json.add("peak_activation_bytes_b" + std::to_string(B),
             static_cast<double>(plan8.peak_activation_bytes(B)), "bytes");
  }
  json.add("arena_bytes_per_sample", static_cast<double>(plan8.arena_bytes),
           "bytes");

  const infer::ActivationReport traffic = plan8.activation_report(1);
  report::Table mem_table(
      "Activation memory & traffic — int8 plan, batch 1 (E_Mem|k = 2.5k pJ)");
  mem_table.set_header(
      {"op", "bits", "in KiB", "out KiB", "E_mem nJ"});
  double total_mem_nj = 0.0;
  for (const infer::OpActivation& op : traffic.ops) {
    if (op.in_bytes == 0 && op.out_bytes == 0) continue;  // pure views
    const double e_nj =
        (static_cast<double>(op.in_elems) *
             energy::mem_access_energy_pj(op.bits) +
         static_cast<double>(op.out_elems) * energy::mem_access_energy_pj(32)) *
        1e-3;
    total_mem_nj += e_nj;
    mem_table.add_row({op.name, std::to_string(op.bits),
                       report::fmt(static_cast<double>(op.in_bytes) / 1024.0),
                       report::fmt(static_cast<double>(op.out_bytes) / 1024.0),
                       report::fmt(e_nj, 1)});
  }
  mem_table.add_row({"TOTAL", "-",
                     report::fmt(static_cast<double>(traffic.total_bytes) / 1024.0),
                     report::fmt(static_cast<double>(traffic.peak_bytes) / 1024.0) +
                         " peak",
                     report::fmt(total_mem_nj, 1)});
  std::printf("\n%s\n", mem_table.to_markdown().c_str());
  json.add("activation_traffic_bytes_b1",
           static_cast<double>(traffic.total_bytes), "bytes");
  json.add("activation_mem_energy_nj_b1", total_mem_nj, "nJ");

  {
    std::vector<std::int64_t> idx(8);
    std::iota(idx.begin(), idx.end(), 0);
    const Tensor x8 = split.test.gather(idx).images;
    const double allocs = allocs_per_forward(engine8, x8);
    std::printf("allocations per forward (b8, arena executor): %.1f  "
                "(peak activations %.1f KiB)\n",
                allocs,
                static_cast<double>(plan8.peak_activation_bytes(8)) / 1024.0);
    json.add("allocs_per_forward_b8", allocs, "allocs");
  }

  // -- thread scaling: GMAC/s at intra-op budgets 1/2/4 ------------------
  // ScopedThreadBudget caps the fan-out of every parallel_for the timing
  // thread dispatches — the same mechanism a serving worker uses — so the
  // trajectory tracks parallel efficiency, not just single-stream speed.
  // Budgets above the pool size clamp to it (rows still emitted so the
  // JSON schema is stable across hosts; the clamped rows then coincide).
  {
    std::vector<std::int64_t> idx(8);
    std::iota(idx.begin(), idx.end(), 0);
    const Tensor x8 = split.test.gather(idx).images;
    const double gmacs_per_batch =
        static_cast<double>(model->spec().total_macs()) * 8.0 * 1e-9;
    std::printf("\nthread scaling (int8, b8, %.2f GMAC/batch, pool %d):",
                gmacs_per_batch, parallel_thread_count());
    double gmacs1 = 0.0;
    for (const int budget : {1, 2, 4}) {
      ScopedThreadBudget cap(budget);
      const double ms = time_best_ms(reps, [&] { return engine8.forward(x8); });
      const double gmacs_s = gmacs_per_batch / (ms / 1000.0);
      if (budget == 1) gmacs1 = gmacs_s;
      const int effective = parallel_effective_threads();
      std::printf("  t%d %.2f GMAC/s (%.2fx)", budget, gmacs_s,
                  gmacs_s / gmacs1);
      json.add("threads" + std::to_string(budget) + "_gmacs", gmacs_s,
               "GMAC/s");
      json.add("threads" + std::to_string(budget) + "_effective",
               static_cast<double>(effective), "threads");
      json.add("threads" + std::to_string(budget) + "_scaling_vs_1",
               gmacs_s / gmacs1, "x");
    }
    std::printf("\n");
  }

  // -- activation compression (ADQ_ACT_BITS): packed vs float-slot arena --
  // The paper-mixed plan compresses hardest (sub-byte layers store 4/2-bit
  // codes); compare its arena against the same model compiled with
  // compression off, and check the b1 latency cost of packing.
  {
    set_bits(mixed);
    const char* saved = std::getenv("ADQ_ACT_BITS");
    const std::string saved_val = saved != nullptr ? saved : "";
    setenv("ADQ_ACT_BITS", "on", 1);
    const infer::InferencePlan packed_plan = infer::compile(*model);
    setenv("ADQ_ACT_BITS", "off", 1);
    const infer::InferencePlan float_plan = infer::compile(*model);
    if (saved != nullptr) {
      setenv("ADQ_ACT_BITS", saved_val.c_str(), 1);
    } else {
      unsetenv("ADQ_ACT_BITS");
    }

    const double reduction =
        packed_plan.arena_bytes_u8 > 0
            ? 1.0 - static_cast<double>(packed_plan.arena_bytes) /
                        static_cast<double>(packed_plan.arena_bytes_u8)
            : 0.0;
    json.add("arena_bytes_packed", static_cast<double>(packed_plan.arena_bytes),
             "bytes");
    json.add("arena_bytes_u8", static_cast<double>(packed_plan.arena_bytes_u8),
             "bytes");
    json.add("arena_reduction_frac", reduction, "frac");
    const std::array<int, 9> cells = packed_plan.act_cell_histogram();
    for (int c = 0; c < static_cast<int>(cells.size()); ++c) {
      if (cells[static_cast<std::size_t>(c)] > 0) {
        json.add("act_cells_" + std::to_string(c),
                 static_cast<double>(cells[static_cast<std::size_t>(c)]),
                 "ops");
      }
    }

    const infer::IntInferenceEngine packed_engine(packed_plan);
    const infer::IntInferenceEngine float_engine(float_plan);
    std::vector<std::int64_t> idx(1);
    const Tensor x1 = split.test.gather(idx).images;
    const double on_ms =
        time_best_ms(reps, [&] { return packed_engine.forward(x1); });
    const double off_ms =
        time_best_ms(reps, [&] { return float_engine.forward(x1); });
    std::printf(
        "activation compression (paper-mixed): arena %.1f KiB packed vs "
        "%.1f KiB float (-%.1f%%), b1 %.3f ms on vs %.3f ms off\n",
        static_cast<double>(packed_plan.arena_bytes) / 1024.0,
        static_cast<double>(packed_plan.arena_bytes_u8) / 1024.0,
        100.0 * reduction, on_ms, off_ms);
    json.add("act_bits_on_b1_ms", on_ms, "ms");
    json.add("act_bits_off_b1_ms", off_ms, "ms");
    json.add("act_bits_b1_overhead", on_ms / off_ms, "x");
    set_bits(uniform8);
  }
  return 0;
}
