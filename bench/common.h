// Shared infrastructure for the paper-table benches.
//
// Scale control: the paper trains full-width networks for hundreds of GPU
// epochs; the benches default to a CPU-sized configuration (ADQ_SCALE=small)
// that preserves every code path and the qualitative shapes. ADQ_SCALE=tiny
// gives a seconds-long smoke run; ADQ_SCALE=full approaches paper scale and
// is only sensible on a large machine. Energy *replay* rows always use the
// full-width specs with the paper's published bit/channel vectors, so those
// columns are scale-independent.
#pragma once

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "core/ad_quantizer.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "models/resnet.h"
#include "models/vgg.h"

namespace adq::bench {

// ---------------------------------------------------------------------------
// Machine-readable bench output.
//
// Every bench constructs one JsonReport at the top of main(); on scope exit
// it writes BENCH_<name>.json (into $ADQ_BENCH_JSON_DIR, default the working
// directory) with the bench name, the ADQ_SCALE in force, total wall time,
// and any metrics the bench added along the way. CI uploads these files as
// artifacts so the perf trajectory accumulates run over run.
// ---------------------------------------------------------------------------

class JsonReport {
 public:
  explicit JsonReport(std::string name)
      : name_(std::move(name)), start_(std::chrono::steady_clock::now()) {}

  JsonReport(const JsonReport&) = delete;
  JsonReport& operator=(const JsonReport&) = delete;

  ~JsonReport() { write(); }

  /// Records one named scalar (e.g. "int8_b8_imgs_per_s", 412.3, "imgs/s").
  /// Non-finite values are recorded as null so an invalid sample can never
  /// be mistaken for a real measurement in the trajectory.
  void add(const std::string& metric, double value,
           const std::string& unit = "") {
    char buf[256];
    if (std::isfinite(value)) {
      std::snprintf(buf, sizeof(buf),
                    "    {\"name\": \"%s\", \"value\": %.6g, \"unit\": \"%s\"}",
                    metric.c_str(), value, unit.c_str());
    } else {
      std::snprintf(buf, sizeof(buf),
                    "    {\"name\": \"%s\", \"value\": null, \"unit\": \"%s\"}",
                    metric.c_str(), unit.c_str());
    }
    metrics_.emplace_back(buf);
  }

  /// Writes BENCH_<name>.json once; the destructor calls this automatically.
  void write() {
    if (written_) return;
    written_ = true;
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
            .count();
    const char* dir = std::getenv("ADQ_BENCH_JSON_DIR");
    // Record the *effective* scale: bench_scale() treats anything but
    // tiny/full as the small default, so the JSON must too.
    const char* env_scale = std::getenv("ADQ_SCALE");
    std::string scale = env_scale != nullptr ? env_scale : "small";
    if (scale != "tiny" && scale != "full") scale = "small";
    const std::string path =
        std::string(dir != nullptr ? dir : ".") + "/BENCH_" + name_ + ".json";
    std::ofstream out(path);
    if (!out) return;  // benches must not fail on an unwritable directory
    out << "{\n  \"bench\": \"" << name_ << "\",\n  \"scale\": \"" << scale
        << "\",\n  \"wall_time_s\": ";
    char wall[64];
    std::snprintf(wall, sizeof(wall), "%.3f", wall_s);
    out << wall << ",\n  \"metrics\": [\n";
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      out << metrics_[i] << (i + 1 < metrics_.size() ? ",\n" : "\n");
    }
    out << "  ]\n}\n";
  }

 private:
  std::string name_;
  std::chrono::steady_clock::time_point start_;
  std::vector<std::string> metrics_;
  bool written_ = false;
};

struct Scale {
  std::string name = "small";
  double width_mult = 0.125;
  std::int64_t train_count = 384;
  std::int64_t test_count = 96;
  std::int64_t batch_size = 32;
  int min_epochs_per_iter = 3;
  int max_epochs_per_iter = 7;
  int max_iterations = 4;
  int saturation_window = 3;
  double saturation_tol = 0.03;
  // Dataset stand-in class counts (full class counts make tiny training
  // runs meaningless; energy replay always uses the full spec regardless).
  std::int64_t classes_c10 = 10;
  std::int64_t classes_c100 = 20;
  std::int64_t classes_tin = 20;
  std::int64_t tin_size = 32;  // TinyImagenet is 64x64; reduced off full scale
};

inline Scale bench_scale() {
  Scale s;
  const char* env = std::getenv("ADQ_SCALE");
  const std::string mode = env != nullptr ? env : "small";
  if (mode == "tiny") {
    s.name = "tiny";
    s.width_mult = 0.0625;
    s.train_count = 160;
    s.test_count = 48;
    s.min_epochs_per_iter = 2;
    s.max_epochs_per_iter = 3;
    s.max_iterations = 3;
    s.saturation_window = 2;
    s.saturation_tol = 0.05;
    s.classes_c100 = 10;
    s.classes_tin = 10;
  } else if (mode == "full") {
    s.name = "full";
    s.width_mult = 1.0;
    s.train_count = 4096;
    s.test_count = 1024;
    s.min_epochs_per_iter = 5;
    s.max_epochs_per_iter = 25;
    s.max_iterations = 4;
    s.saturation_window = 4;
    s.saturation_tol = 0.02;
    s.classes_c100 = 100;
    s.classes_tin = 200;
    s.tin_size = 64;
  }
  return s;
}

inline core::AdqConfig controller_config(const Scale& s, bool prune = false) {
  core::AdqConfig cfg;
  cfg.max_iterations = s.max_iterations;
  cfg.min_epochs_per_iter = s.min_epochs_per_iter;
  cfg.max_epochs_per_iter = s.max_epochs_per_iter;
  cfg.detector = ad::SaturationDetector(s.saturation_window, s.saturation_tol);
  cfg.prune = prune;
  return cfg;
}

// ---------------------------------------------------------------------------
// Paper-reported reference data (for side-by-side rows).
// ---------------------------------------------------------------------------

// Table II(a) iteration 2 bit-widths, VGG19/CIFAR-10.
inline const std::vector<int> kPaperVggC10Bits{16, 4, 5, 4, 3, 2, 2, 2, 3,
                                               3,  3, 4, 3, 3, 3, 3, 16};
// Table II(a) iteration 2a (conv16 removed — energy replay only).
inline const std::vector<int> kPaperVggC10BitsIter2a{16, 4, 5, 4, 3, 2, 2, 2, 3,
                                                     3,  3, 4, 3, 3, 3, /*x*/ 1, 16};

// Table II(b) unit bits (stem, per-block conv1/conv2, fc) — the paper's
// 26-entry vector lists [conv1, conv2, skip=conv2] per block; we store the
// 18 quantizable units.
inline const std::vector<int> kPaperResNetC100BitsIter2{
    16, 5, 3, 3, 11, 1, 1, 11, 4, 4, 10, 4, 4, 11, 3, 3, 9, 16};
inline const std::vector<int> kPaperResNetC100BitsIter3{
    16, 5, 3, 5, 1, 8, 4, 6, 4, 8, 3, 9, 3, 9, 3, 6, 1, 16};

// Table II(c) iteration 4 unit bits, ResNet18/TinyImagenet.
inline const std::vector<int> kPaperResNetTinBitsIter4{
    16, 3, 7, 14, 2, 14, 3, 10, 6, 10, 9, 9, 5, 7, 4, 4, 3, 16};

// Table III(a): VGG19/CIFAR-10 pruned channel counts (conv1..16) + fc.
inline std::vector<std::int64_t> paper_vgg_c10_channels() {
  return {19, 22, 38, 24, 45, 37, 44, 54, 103, 126, 150, 125, 122, 112, 111, 8, 10};
}

// Table III(b) iter 3: ResNet18/CIFAR-100 channels (stem + 16 convs) + fc.
inline std::vector<std::int64_t> paper_resnet_c100_channels() {
  return {21, 12, 19, 1, 31, 34, 61, 34, 58, 58, 156, 50, 146, 110, 192, 9, 22, 100};
}
// Table III(b) iter 3 bits.
inline const std::vector<int> kPaperResNetC100PrunedBits{
    16, 5, 3, 5, 1, 8, 4, 6, 4, 8, 3, 9, 3, 9, 3, 6, 1, 16};

// ---------------------------------------------------------------------------
// Experiment runners shared by the figure/table benches.
// ---------------------------------------------------------------------------

struct QuantExperiment {
  std::unique_ptr<models::QuantizableModel> model;
  core::RunResult result;
  models::ModelSpec baseline;  // 16-bit full-channel snapshot (scaled width)
};

inline QuantExperiment run_vgg_c10(const Scale& s, bool prune, bool verbose,
                                   std::uint64_t seed = 10) {
  data::SyntheticSpec dspec = data::synthetic_cifar10_spec();
  dspec.num_classes = s.classes_c10;
  dspec.train_count = s.train_count;
  dspec.test_count = s.test_count;
  dspec.noise = 0.6f;  // keep the stand-in task non-trivial at bench sizes
  const data::TrainTestSplit split = data::make_synthetic(dspec);

  Rng rng(seed);
  models::VggConfig mcfg;
  mcfg.width_mult = s.width_mult;
  mcfg.num_classes = dspec.num_classes;
  // BN-free VGG matches the paper's AD regime (baseline AD well below 0.5
  // with real per-layer spread); it needs a gentler learning rate.
  mcfg.use_batchnorm = false;
  QuantExperiment exp;
  exp.model = models::build_vgg19(mcfg, rng);
  exp.baseline = exp.model->spec();

  core::TrainerConfig tcfg;
  tcfg.batch_size = s.batch_size;
  tcfg.lr = 3e-4f;
  core::Trainer trainer(*exp.model, split.train, split.test, tcfg);
  core::AdqConfig acfg = controller_config(s, prune);
  acfg.verbose = verbose;
  core::AdQuantizationController controller(*exp.model, trainer, acfg);
  exp.result = controller.run();  // completes before split goes out of scope
  return exp;
}

inline QuantExperiment run_resnet(const Scale& s, std::int64_t classes,
                                  std::int64_t input_size, bool prune,
                                  bool verbose, std::uint64_t seed = 20) {
  data::SyntheticSpec dspec = data::synthetic_cifar100_spec();
  dspec.num_classes = classes;
  dspec.size = input_size;
  dspec.train_count = s.train_count;
  dspec.test_count = s.test_count;
  dspec.noise = 0.6f;  // keep the stand-in task non-trivial at bench sizes
  const data::TrainTestSplit split = data::make_synthetic(dspec);

  Rng rng(seed);
  models::ResNetConfig mcfg;
  mcfg.width_mult = s.width_mult;
  mcfg.num_classes = classes;
  mcfg.input_size = input_size;
  QuantExperiment exp;
  exp.model = models::build_resnet18(mcfg, rng);
  exp.baseline = exp.model->spec();

  core::TrainerConfig tcfg;
  tcfg.batch_size = s.batch_size;
  core::Trainer trainer(*exp.model, split.train, split.test, tcfg);
  core::AdqConfig acfg = controller_config(s, prune);
  acfg.verbose = verbose;
  core::AdQuantizationController controller(*exp.model, trainer, acfg);
  exp.result = controller.run();  // completes before split goes out of scope
  return exp;
}

}  // namespace adq::bench
