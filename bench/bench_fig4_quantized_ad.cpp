// Figure 4: accuracy and per-layer AD vs epochs *with* AD-based
// quantization (Table II(a) iteration 2). The paper's contrast with Fig 3,
// which we verify: after eqn-3 re-quantization, AD climbs toward ~1.0 in
// most layers — the quantized model utilises what remains of each layer.
#include <cstdio>

#include "bench/common.h"
#include "report/table.h"

int main() {
  adq::bench::JsonReport json_report("fig4_quantized_ad");
  using namespace adq;
  const bench::Scale s = bench::bench_scale();
  std::printf("[scale=%s] Fig 4 — AD-quantized VGG19: accuracy + AD vs epoch\n\n",
              s.name.c_str());

  const bench::QuantExperiment exp = bench::run_vgg_c10(s, false, false);

  report::Table table("AD-quantized VGG19 trajectory (all Algorithm 1 iterations)");
  table.set_header({"epoch", "test acc", "mean AD", "min AD", "max AD"});
  const std::size_t epochs = exp.result.test_accuracy_per_epoch.size();
  for (std::size_t e = 0; e < epochs; ++e) {
    double sum = 0.0, lo = 1.0, hi = 0.0;
    for (const auto& h : exp.result.ad_per_unit) {
      sum += h[e];
      lo = std::min(lo, h[e]);
      hi = std::max(hi, h[e]);
    }
    table.add_row({std::to_string(e + 1),
                   report::fmt_percent(exp.result.test_accuracy_per_epoch[e]),
                   report::fmt(sum / static_cast<double>(exp.result.ad_per_unit.size()), 3),
                   report::fmt(lo, 3), report::fmt(hi, 3)});
  }
  std::printf("%s\n", table.to_markdown().c_str());

  const double first_ad = exp.result.iterations.front().total_ad;
  const double final_ad = exp.result.iterations.back().total_ad;
  std::printf("total AD: baseline iteration %.3f -> final iteration %.3f "
              "(paper: 0.284 -> 0.992, i.e. AD driven toward 1.0)\n",
              first_ad, final_ad);

  // Per-layer endpoint dump (the bar heights of Fig 4's right edge).
  std::puts("\nfinal per-layer AD:");
  for (int u = 0; u < exp.model->unit_count(); ++u) {
    std::printf("  %-8s %.3f (k=%d)\n", exp.model->unit(u).name.c_str(),
                exp.result.ad_per_unit[static_cast<std::size_t>(u)].back(),
                exp.result.iterations.back().bits.at(u));
  }
  return 0;
}
