// Table I: analytical 45 nm CMOS energy constants. Our implementation must
// reproduce the published operation energies exactly — they are inputs to
// every analytical-efficiency column in Tables II/III.
#include <cstdio>

#include "energy/analytical.h"
#include "report/table.h"

#include "bench/common.h"

int main() {
  adq::bench::JsonReport json_report("table1_energy_constants");
  using namespace adq;
  report::Table table("Table I — energy consumption estimates (45 nm CMOS)");
  table.set_header({"operation", "paper (pJ)", "ours (pJ)"});

  table.add_row({"16-bit memory access (2.5k)", "40.0",
                 report::fmt(energy::mem_access_energy_pj(16), 1)});
  table.add_row({"8-bit memory access", "20.0",
                 report::fmt(energy::mem_access_energy_pj(8), 1)});
  table.add_row({"32-bit multiply", "3.1", "3.1 (constant)"});
  table.add_row({"32-bit add", "0.1", "0.1 (constant)"});
  table.add_row({"32-bit MAC (3.1k/32 + 0.1)", "3.2",
                 report::fmt(energy::mac_energy_pj(32), 2)});
  table.add_row({"16-bit MAC", "1.65", report::fmt(energy::mac_energy_pj(16), 2)});
  table.add_row({"8-bit MAC", "0.875", report::fmt(energy::mac_energy_pj(8), 3)});
  table.add_row({"4-bit MAC", "0.4875", report::fmt(energy::mac_energy_pj(4), 4)});
  table.add_row({"2-bit MAC", "0.29375", report::fmt(energy::mac_energy_pj(2), 5)});
  table.add_row({"1-bit MAC", "0.196875", report::fmt(energy::mac_energy_pj(1), 6)});
  std::printf("%s", table.to_markdown().c_str());
  return 0;
}
