// Google-benchmark microbenches for the performance-critical primitives:
// GEMM, conv forward/backward, fake quantization, density metering, and the
// PIM functional array. These guard the substrate's throughput — the
// training benches' wall-clock budget depends on them.
//
// This file owns main() (not benchmark_main): the per-backend integer-GEMM
// benches are registered dynamically from the backend registry, so a newly
// registered backend shows up in the GMAC/s table without editing this file.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "ad/density_meter.h"
#include "backend/registry.h"
#include "infer/engine.h"
#include "infer/plan.h"
#include "models/vgg.h"
#include "nn/conv2d.h"
#include "nn/init.h"
#include "pim/accelerator.h"
#include "quant/quantizer.h"
#include "tensor/bitpack.h"
#include "tensor/gemm.h"
#include "tensor/rng.h"

namespace {

using namespace adq;

void BM_Gemm(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(1);
  Tensor a(Shape{n, n}), b(Shape{n, n});
  rng.fill_normal(a, 0.0f, 1.0f);
  rng.fill_normal(b, 0.0f, 1.0f);
  for (auto _ : state) {
    Tensor c = matmul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(256)->Arg(512);

void BM_ConvForward(benchmark::State& state) {
  const std::int64_t c = state.range(0);
  Rng rng(2);
  nn::Conv2d conv(c, c, 3, 1, 1, false);
  nn::init_conv(conv, rng);
  conv.set_quantization_enabled(false);
  Tensor x(Shape{8, c, 16, 16});
  rng.fill_normal(x, 0.0f, 1.0f);
  for (auto _ : state) {
    Tensor y = conv.forward(x);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 8 * 16 * 16 * c * 9 * c);
}
BENCHMARK(BM_ConvForward)->Arg(16)->Arg(64);

void BM_ConvBackward(benchmark::State& state) {
  const std::int64_t c = state.range(0);
  Rng rng(3);
  nn::Conv2d conv(c, c, 3, 1, 1, false);
  nn::init_conv(conv, rng);
  conv.set_quantization_enabled(false);
  Tensor x(Shape{8, c, 16, 16});
  Tensor g(Shape{8, c, 16, 16});
  rng.fill_normal(x, 0.0f, 1.0f);
  rng.fill_normal(g, 0.0f, 1.0f);
  conv.forward(x);
  for (auto _ : state) {
    Tensor gx = conv.backward(g);
    benchmark::DoNotOptimize(gx.data());
  }
}
BENCHMARK(BM_ConvBackward)->Arg(16)->Arg(64);

void BM_QuantizedConvForward(benchmark::State& state) {
  // Overhead of in-training fake quantization relative to BM_ConvForward.
  Rng rng(4);
  nn::Conv2d conv(64, 64, 3, 1, 1, false);
  nn::init_conv(conv, rng);
  conv.set_bits(4);
  Tensor x(Shape{8, 64, 16, 16});
  rng.fill_normal(x, 0.0f, 1.0f);
  for (auto _ : state) {
    Tensor y = conv.forward(x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_QuantizedConvForward);

void BM_FakeQuantize(benchmark::State& state) {
  Rng rng(5);
  Tensor x(Shape{1 << 20});
  rng.fill_normal(x, 0.0f, 1.0f);
  for (auto _ : state) {
    Tensor y = quant::fake_quantize(x, 4);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetBytesProcessed(state.iterations() * x.numel() * sizeof(float));
}
BENCHMARK(BM_FakeQuantize);

void BM_DensityObserve(benchmark::State& state) {
  Rng rng(6);
  Tensor x(Shape{1 << 20});
  rng.fill_normal(x, 0.0f, 1.0f);
  ad::DensityMeter meter;
  for (auto _ : state) {
    meter.observe(x);
    benchmark::DoNotOptimize(meter.observed_nonzero());
  }
  state.SetBytesProcessed(state.iterations() * x.numel() * sizeof(float));
}
BENCHMARK(BM_DensityObserve);

// Arena vs malloc execution of the whole compiled int8 VGG19 forward: the
// same engine, same kernels, same input — only where activations live
// differs (planned per-thread slots vs a fresh heap tensor per op). The
// gap is the price of allocator traffic + cold pages on the hot path.
const infer::IntInferenceEngine& int8_vgg_engine() {
  static const infer::IntInferenceEngine* engine = [] {
    Rng rng(8);
    models::VggConfig cfg;
    cfg.width_mult = 0.125;
    cfg.num_classes = 10;
    auto model = models::build_vgg19(cfg, rng);
    model->set_training(false);
    for (int i = 0; i < model->unit_count(); ++i) {
      if (!model->unit(i).frozen) model->unit(i).set_bits(8);
    }
    return new infer::IntInferenceEngine(infer::compile(*model));
  }();
  return *engine;
}

void int_forward_bench(benchmark::State& state, const char* arena_env) {
  const infer::IntInferenceEngine& engine = int8_vgg_engine();
  const std::int64_t batch = state.range(0);
  Rng rng(9);
  Tensor x(Shape{batch, 3, 32, 32});
  rng.fill_normal(x, 0.0f, 1.0f);
  setenv("ADQ_ARENA", arena_env, 1);
  Tensor out;
  for (auto _ : state) {
    engine.forward_into(x, out);
    benchmark::DoNotOptimize(out.data());
  }
  unsetenv("ADQ_ARENA");
  state.SetItemsProcessed(state.iterations() * batch);
}

void BM_IntForwardArena(benchmark::State& state) {
  int_forward_bench(state, "1");
}
BENCHMARK(BM_IntForwardArena)->Arg(1)->Arg(8);

void BM_IntForwardMalloc(benchmark::State& state) {
  int_forward_bench(state, "0");
}
BENCHMARK(BM_IntForwardMalloc)->Arg(1)->Arg(8);

void BM_PimDotProduct(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  Rng rng(7);
  const std::int64_t max = (std::int64_t{1} << bits) - 1;
  std::vector<std::int64_t> w(128), a(128);
  for (auto& v : w) v = rng.uniform_int(0, max);
  for (auto& v : a) v = rng.uniform_int(0, max);
  for (auto _ : state) {
    pim::EventCounts ev;
    benchmark::DoNotOptimize(pim::pim_dot_product(w, a, bits, ev));
  }
}
BENCHMARK(BM_PimDotProduct)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

// Per-backend x per-bitwidth u8 GEMM throughput on the engine's blocked
// shape class. Codes are capped to the bit-width's range, matching what the
// mixed-precision layers actually feed the kernel. items_processed counts
// MACs, so the reported items/s column reads directly as MAC/s.
void backend_igemm_bench(benchmark::State& state,
                         const adq::backend::Backend& bk, int bits) {
  const std::int64_t m = 128, n = 512, k = 256;
  const std::int64_t max_code = (std::int64_t{1} << bits) - 1;
  Rng rng(10);
  std::vector<std::uint8_t> a(static_cast<std::size_t>(m * k));
  std::vector<std::uint8_t> b(static_cast<std::size_t>(k * n));
  for (auto& v : a) v = static_cast<std::uint8_t>(rng.uniform_int(0, max_code));
  for (auto& v : b) v = static_cast<std::uint8_t>(rng.uniform_int(0, max_code));
  std::vector<std::int32_t> c(static_cast<std::size_t>(m * n));
  for (auto _ : state) {
    bk.igemm(m, n, k, a.data(), k, b.data(), n, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * m * n * k);
}

// Packed sub-byte weight GEMM throughput: same shape class, but the weights
// stay as row-aligned packed cells so the kernels' in-register nibble/crumb
// expansion is on the measured path. BM_BackendIgemmPacked/<backend>/w4
// against BM_BackendIgemm/<backend>/int8 is the "packed int4 beats int8"
// comparison in bench form (the conformance harness's --perf mode reports
// the same numbers as GMAC/s).
void backend_igemm_packed_bench(benchmark::State& state,
                                const adq::backend::Backend& bk, int cell) {
  const std::int64_t m = 128, n = 512, k = 256;
  const std::int64_t max_code = (std::int64_t{1} << cell) - 1;
  Rng rng(10);
  const std::int64_t row_bytes = packed_row_bytes(k, cell);
  std::vector<std::uint8_t> codes(static_cast<std::size_t>(k));
  std::vector<std::uint8_t> a(static_cast<std::size_t>(m * row_bytes));
  for (std::int64_t i = 0; i < m; ++i) {
    for (auto& v : codes) {
      v = static_cast<std::uint8_t>(rng.uniform_int(0, max_code));
    }
    pack_codes(codes.data(), k, cell, a.data() + i * row_bytes);
  }
  std::vector<std::uint8_t> b(static_cast<std::size_t>(k * n));
  for (auto& v : b) v = static_cast<std::uint8_t>(rng.uniform_int(0, max_code));
  std::vector<std::int32_t> c(static_cast<std::size_t>(m * n));
  const auto fn = cell == 4 ? bk.igemm_w4 : bk.igemm_w2;
  for (auto _ : state) {
    fn(m, n, k, a.data(), row_bytes, b.data(), n, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * m * n * k);
}

void register_backend_igemm_benches() {
  for (const adq::backend::Backend* bk : adq::backend::available_backends()) {
    for (int bits : {8, 4, 2}) {
      const std::string name = std::string("BM_BackendIgemm/") + bk->name +
                               "/int" + std::to_string(bits);
      benchmark::RegisterBenchmark(
          name.c_str(), [bk, bits](benchmark::State& state) {
            backend_igemm_bench(state, *bk, bits);
          });
    }
    for (int cell : {4, 2}) {
      const std::string name = std::string("BM_BackendIgemmPacked/") +
                               bk->name + "/w" + std::to_string(cell);
      benchmark::RegisterBenchmark(
          name.c_str(), [bk, cell](benchmark::State& state) {
            backend_igemm_packed_bench(state, *bk, cell);
          });
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_backend_igemm_benches();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
