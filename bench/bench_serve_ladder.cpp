// Precision ladder vs load shedding under a synthetic overload burst.
//
// The serving registry's answer to overload is to DEGRADE PRECISION
// (step down a ladder of plans compiled from the same weights at fewer
// bits) instead of rejecting work. This bench quantifies that trade on
// one core (ADQ_THREADS is forced to 1 so arrival pressure, not engine
// parallelism, is the variable):
//
//   1. per-rung service rate — each rung of the int8 / paper-mixed / int2
//      VGG19 ladder is PINNED in turn and flooded open-loop: requests/sec
//      and p99 show what stepping down actually buys (packed sub-byte
//      GEMMs move a fraction of the weight traffic);
//   2. overload burst, two policies on identical traffic:
//        * ladder  — adaptive controller, nothing is ever rejected;
//        * baseline — fixed int8 with the classic queue-depth load
//          shedder (reject with ServerOverloaded past the cap).
//      GOODPUT is requests that complete within the deadline; a shed
//      request can never contribute. The acceptance bar — checked here
//      and exit-gating the bench — is ladder goodput STRICTLY above the
//      shedding baseline's.
//
// Everything lands in BENCH_bench_serve_ladder.json: per-rung rps/p99,
// both goodputs, the transition counts, and the ladder run's precision
// mix.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "infer/engine.h"
#include "infer/plan.h"
#include "models/vgg.h"
#include "report/table.h"
#include "serve/registry.h"
#include "serve/request_queue.h"
#include "tensor/ops.h"
#include "tensor/rng.h"

namespace {

using namespace adq;

std::vector<infer::InferencePlan> compile_ladder(double width) {
  Rng rng(42);
  models::VggConfig cfg;
  cfg.width_mult = width;
  cfg.num_classes = 10;
  auto model = models::build_vgg19(cfg, rng);
  model->set_training(false);
  const auto with_bits = [&](const std::vector<int>& bits) {
    for (int i = 0; i < model->unit_count(); ++i) {
      if (!model->unit(i).frozen) {
        model->unit(i).set_bits(bits[static_cast<std::size_t>(i) % bits.size()]);
      }
    }
    return infer::compile(*model);
  };
  std::vector<infer::InferencePlan> ladder;
  ladder.push_back(with_bits({8}));
  // Paper Table II(a) mixed allocation, clipped to the 8-bit ceiling.
  ladder.push_back(with_bits({8, 4, 5, 4, 3, 2, 2, 2, 3, 3, 3, 4, 3, 3, 3, 3, 8}));
  ladder.push_back(with_bits({2}));
  return ladder;
}

serve::ModelConfig burst_config() {
  serve::ModelConfig cfg;
  cfg.use_env = false;  // the bench controls its own SLO and policy
  cfg.max_batch = 16;
  cfg.max_wait_us = 1'000;
  cfg.slo.p99_us = 20'000.0;
  cfg.slo.max_queue_depth = 8;
  cfg.slo.breach_ticks = 2;
  cfg.slo.clear_ticks = 4;
  cfg.tick_interval_us = 500;
  return cfg;
}

}  // namespace

int main() {
  // One core: the comparison is about scheduling policy, not parallelism.
  setenv("ADQ_THREADS", "1", 1);
  bench::JsonReport json("bench_serve_ladder");
  const bench::Scale s = bench::bench_scale();
  const double width = s.name == "full" ? 1.0 : 0.25;
  const std::int64_t pinned_requests = s.name == "tiny" ? 64
                                       : s.name == "full" ? 512
                                                          : 256;
  const std::int64_t burst_requests = s.name == "tiny" ? 160
                                      : s.name == "full" ? 960
                                                         : 320;
  const std::int64_t arrival_gap_us = s.name == "tiny" ? 400 : 200;
  const double deadline_ms = 150.0;

  const std::vector<infer::InferencePlan> ladder = compile_ladder(width);
  const char* rung_names[3] = {"int8", "mixed", "int2"};
  std::printf("ladder: int8 %.1f KiB / mixed %.1f KiB / int2 %.1f KiB "
              "weights (VGG19 width %.4g, scale %s)\n",
              static_cast<double>(ladder[0].weight_bytes()) / 1024.0,
              static_cast<double>(ladder[1].weight_bytes()) / 1024.0,
              static_cast<double>(ladder[2].weight_bytes()) / 1024.0,
              width, s.name.c_str());

  Rng rng(7);
  std::vector<Tensor> pool;
  for (int i = 0; i < 64; ++i) {
    Tensor x(Shape{3, 32, 32});
    rng.fill_normal(x, 0.0f, 1.0f);
    pool.push_back(std::move(x));
  }
  const auto sample_at = [&](std::int64_t i) -> const Tensor& {
    return pool[static_cast<std::size_t>(i) % pool.size()];
  };

  // -- 1. per-rung pinned service rate --------------------------------------
  report::Table rung_table("Per-rung service rate — pinned, open-loop flood");
  rung_table.set_header({"rung", "bits", "req/s", "p50 ms", "p99 ms"});
  std::vector<double> rung_rps;
  for (int r = 0; r < 3; ++r) {
    serve::ModelRegistry registry;
    serve::ModelConfig cfg = burst_config();
    cfg.pin_step = r;
    registry.add_model("vgg", ladder, cfg);
    std::vector<std::future<serve::InferenceResult>> futures;
    futures.reserve(static_cast<std::size_t>(pinned_requests));
    const auto t0 = std::chrono::steady_clock::now();
    for (std::int64_t i = 0; i < pinned_requests; ++i) {
      futures.push_back(registry.submit("vgg", sample_at(i)));
    }
    for (auto& f : futures) (void)f.get();
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const double rps = static_cast<double>(pinned_requests) / wall_s;
    rung_rps.push_back(rps);
    registry.shutdown();
    const serve::ServerStats::Snapshot st = registry.stats("vgg");
    rung_table.add_row({std::to_string(r), rung_names[r], report::fmt(rps, 1),
                        report::fmt(st.p50_us / 1000.0),
                        report::fmt(st.p99_us / 1000.0)});
    const std::string k = "step" + std::to_string(r);
    json.add(k + "_rps", rps, "req/s");
    json.add(k + "_p50_ms", st.p50_us / 1000.0, "ms");
    json.add(k + "_p99_ms", st.p99_us / 1000.0, "ms");
  }
  std::printf("\n%s\n", rung_table.to_markdown().c_str());
  json.add("int2_speedup_vs_int8", rung_rps[2] / rung_rps[0], "x");

  // -- 2. identical overload burst, two policies ----------------------------
  struct BurstResult {
    std::int64_t good = 0, completed = 0, shed = 0;
    serve::ServerStats::Snapshot stats;
  };
  const auto run_burst = [&](serve::ModelConfig cfg) {
    serve::ModelRegistry registry;
    registry.add_model("vgg", ladder, cfg);
    BurstResult out;
    std::vector<std::future<serve::InferenceResult>> futures;
    for (std::int64_t i = 0; i < burst_requests; ++i) {
      try {
        futures.push_back(registry.submit("vgg", sample_at(i)));
      } catch (const serve::ServerOverloaded&) {
        ++out.shed;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(arrival_gap_us));
    }
    for (auto& f : futures) {
      const serve::InferenceResult r = f.get();
      ++out.completed;
      out.good += r.total_us <= deadline_ms * 1000.0;
    }
    registry.shutdown();
    out.stats = registry.stats("vgg");
    return out;
  };

  std::printf("overload burst: %lld requests, one every %lld us, deadline "
              "%.0f ms\n",
              static_cast<long long>(burst_requests),
              static_cast<long long>(arrival_gap_us), deadline_ms);

  serve::ModelConfig ladder_cfg = burst_config();  // adaptive, never sheds
  const BurstResult lad = run_burst(ladder_cfg);

  serve::ModelConfig shed_cfg = burst_config();
  shed_cfg.pin_step = 0;         // fixed full precision...
  shed_cfg.shed_queue_depth = 16;  // ...shedding past the queue cap
  const BurstResult base = run_burst(shed_cfg);

  report::Table burst_table("Overload burst — goodput (completed within "
                            "deadline) out of " +
                            std::to_string(burst_requests));
  burst_table.set_header(
      {"policy", "goodput", "completed", "shed", "down/up", "final rung"});
  burst_table.add_row(
      {"precision ladder", std::to_string(lad.good),
       std::to_string(lad.completed), std::to_string(lad.shed),
       std::to_string(lad.stats.step_downs) + "/" +
           std::to_string(lad.stats.step_ups),
       std::to_string(lad.stats.current_step)});
  burst_table.add_row(
      {"int8 + shedding", std::to_string(base.good),
       std::to_string(base.completed), std::to_string(base.shed),
       "0/0", "0"});
  std::printf("\n%s\n", burst_table.to_markdown().c_str());
  std::printf("ladder precision mix:");
  for (const auto& [step, count] : lad.stats.precision_mix) {
    std::printf(" rung%d=%llu", step, static_cast<unsigned long long>(count));
    json.add("ladder_rung" + std::to_string(step) + "_served",
             static_cast<double>(count), "requests");
  }
  std::printf("\n");

  json.add("ladder_goodput", static_cast<double>(lad.good), "requests");
  json.add("shed_goodput", static_cast<double>(base.good), "requests");
  json.add("shed_rejected", static_cast<double>(base.shed), "requests");
  json.add("ladder_step_downs", static_cast<double>(lad.stats.step_downs),
           "transitions");
  json.add("ladder_step_ups", static_cast<double>(lad.stats.step_ups),
           "transitions");
  const bool strictly_higher = lad.good > base.good;
  json.add("ladder_goodput_gt_shed", strictly_higher ? 1.0 : 0.0, "bool");
  std::printf("\nladder goodput %lld vs shedding baseline %lld — strictly "
              "higher: %s\n",
              static_cast<long long>(lad.good),
              static_cast<long long>(base.good),
              strictly_higher ? "yes" : "NO");
  // The acceptance bar is part of the bench's contract, not a soft metric.
  return strictly_higher ? 0 : 1;
}
