// Table II: activation-density based quantization on (a) VGG19/CIFAR-10,
// (b) ResNet18/CIFAR-100, (c) ResNet18/TinyImagenet.
//
// Two kinds of rows are printed for each experiment:
//   measured  — Algorithm 1 run end-to-end at bench scale on the synthetic
//               stand-in dataset (accuracy, AD, epochs, training complexity
//               and energy efficiency all measured on our stack);
//   replay    — the paper's published bit-width vector applied to the
//               full-width spec, with the analytical energy-efficiency
//               column recomputed (scale-independent shape check).
#include <cstdio>

#include "bench/common.h"
#include "energy/analytical.h"
#include "report/table.h"

namespace {

using namespace adq;

void add_measured_rows(report::Table& table, const bench::QuantExperiment& exp,
                       const core::RunResult& result) {
  for (const core::IterationResult& ir : result.iterations) {
    table.add_row({"measured-" + std::to_string(ir.iter), ir.bits.to_string(),
                   report::fmt_percent(ir.test_accuracy),
                   report::fmt(ir.total_ad, 3),
                   report::fmt_factor(ir.energy_efficiency),
                   std::to_string(ir.epochs), "-"});
  }
  table.add_row({"measured-TC", "training complexity vs 16-bit run", "-", "-", "-", "-",
                 report::fmt_factor(result.training_complexity_vs_baseline, 3)});
  (void)exp;
}

double replay_efficiency(models::ModelSpec spec, const std::vector<int>& bits,
                         int baseline_bits = 16) {
  const models::ModelSpec baseline = spec.with_uniform_bits(baseline_bits);
  spec.apply_bits(quant::BitWidthPolicy(bits));
  return energy::energy_efficiency(spec, baseline);
}

}  // namespace

int main() {
  adq::bench::JsonReport json_report("table2_ad_quantization");
  const bench::Scale s = bench::bench_scale();
  std::printf("[scale=%s] Table II — AD-based quantization\n\n", s.name.c_str());

  // ---- (a) VGG19 / CIFAR-10 -------------------------------------------
  {
    const bench::QuantExperiment exp = bench::run_vgg_c10(s, false, false);
    report::Table table("Table II(a): VGG19 on CIFAR-10");
    table.set_header({"row", "bit-widths", "test acc", "total AD",
                      "energy eff", "epochs", "train compl"});
    add_measured_rows(table, exp, exp.result);
    table.add_row({"paper-1", "16-bit all layers", "91.85%", "0.284", "1x", "100", "1x"});
    table.add_row({"paper-2",
                   report::fmt_int_vector(bench::kPaperVggC10Bits), "91.62%",
                   "0.992", "4.16x", "70", "0.524x"});
    const double eff = replay_efficiency(models::vgg19_spec(models::VggConfig{}),
                                         bench::kPaperVggC10Bits);
    table.add_row({"replay-2", "paper bits on full-width spec", "-", "-",
                   report::fmt_factor(eff), "-", "-"});
    // Iteration 2a: conv16 effectively removed (1 bit stands in for the
    // dropped layer in the energy replay; paper reports 4.19x).
    const double eff2a = replay_efficiency(models::vgg19_spec(models::VggConfig{}),
                                           bench::kPaperVggC10BitsIter2a);
    table.add_row({"replay-2a", "paper bits, conv16 removed", "-", "-",
                   report::fmt_factor(eff2a), "-", "-"});
    std::printf("%s\n", table.to_markdown().c_str());
  }

  // ---- (b) ResNet18 / CIFAR-100 ----------------------------------------
  {
    const bench::QuantExperiment exp =
        bench::run_resnet(s, s.classes_c100, 32, false, false, 21);
    report::Table table("Table II(b): ResNet18 on CIFAR-100 (synthetic stand-in, " +
                        std::to_string(s.classes_c100) + " classes)");
    table.set_header({"row", "bit-widths", "test acc", "total AD",
                      "energy eff", "epochs", "train compl"});
    add_measured_rows(table, exp, exp.result);
    table.add_row({"paper-1", "16-bit all layers", "70.90%", "0.416", "1x", "120", "1x"});
    table.add_row({"paper-3",
                   report::fmt_int_vector(bench::kPaperResNetC100BitsIter3),
                   "70.51%", "0.869", "3.19x", "70", "0.703x"});
    const double eff = replay_efficiency(
        models::resnet18_spec(models::ResNetConfig{}), bench::kPaperResNetC100BitsIter3);
    table.add_row({"replay-3", "paper bits on full-width spec", "-", "-",
                   report::fmt_factor(eff), "-", "-"});
    std::printf("%s\n", table.to_markdown().c_str());
  }

  // ---- (c) ResNet18 / TinyImagenet --------------------------------------
  {
    const bench::QuantExperiment exp =
        bench::run_resnet(s, s.classes_tin, s.tin_size, false, false, 22);
    report::Table table("Table II(c): ResNet18 on TinyImagenet (synthetic stand-in, " +
                        std::to_string(s.classes_tin) + " classes, " +
                        std::to_string(s.tin_size) + "px)");
    table.set_header({"row", "bit-widths", "test acc", "total AD",
                      "energy eff", "epochs", "train compl"});
    add_measured_rows(table, exp, exp.result);
    table.add_row({"paper-4",
                   report::fmt_int_vector(bench::kPaperResNetTinBitsIter4),
                   "43.50%", "0.917", "4.50x", "25", "0.770x"});
    models::ResNetConfig full;
    full.input_size = 64;
    full.num_classes = 200;
    // The paper's TinyImagenet baseline (its iteration 1) is a 32-bit model,
    // so the 4.50x is measured against 32-bit, not 16-bit.
    const double eff = replay_efficiency(models::resnet18_spec(full),
                                         bench::kPaperResNetTinBitsIter4,
                                         /*baseline_bits=*/32);
    table.add_row({"replay-4", "paper bits on full 64px spec vs 32-bit base",
                   "-", "-", report::fmt_factor(eff), "-", "-"});
    std::printf("%s\n", table.to_markdown().c_str());
  }
  return 0;
}
