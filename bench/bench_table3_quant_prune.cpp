// Table III: AD-based quantization coupled with AD-based pruning (eqn 5).
//
// Measured rows run Algorithm 1 with prune=true at bench scale; replay rows
// apply the paper's published bit + channel vectors to the full-width specs
// and recompute the analytical energy-efficiency column (the paper reports
// 980x for VGG19/CIFAR-10 and 300x for ResNet18/CIFAR-100).
#include <cstdio>

#include "bench/common.h"
#include "energy/analytical.h"
#include "report/table.h"

namespace {

using namespace adq;

std::string channels_to_string(const std::vector<std::int64_t>& ch) {
  return report::fmt_int_vector(std::vector<long long>(ch.begin(), ch.end()));
}

}  // namespace

int main() {
  adq::bench::JsonReport json_report("table3_quant_prune");
  bench::Scale s = bench::bench_scale();
  // Pruning needs slack: at 1/8 width the net has no redundant channels to
  // remove, so the coupled experiment runs at twice the base width (the
  // paper prunes full-width networks with ample redundancy).
  s.width_mult = std::min(1.0, 2.0 * s.width_mult);
  s.max_iterations = std::min(s.max_iterations, 3);
  std::printf("[scale=%s] Table III — AD quantization + AD pruning "
              "(width x2 for pruning slack)\n\n", s.name.c_str());

  // ---- (a) VGG19 / CIFAR-10 -------------------------------------------
  {
    const bench::QuantExperiment exp = bench::run_vgg_c10(s, /*prune=*/true, false);
    report::Table table("Table III(a): VGG19 on CIFAR-10, quantized + pruned");
    table.set_header({"row", "bits", "channels", "test acc", "total AD", "energy eff"});
    for (const core::IterationResult& ir : exp.result.iterations) {
      table.add_row({"measured-" + std::to_string(ir.iter), ir.bits.to_string(),
                     channels_to_string(ir.channels),
                     report::fmt_percent(ir.test_accuracy),
                     report::fmt(ir.total_ad, 3),
                     report::fmt_factor(ir.energy_efficiency)});
    }
    table.add_row({"paper-2", report::fmt_int_vector(bench::kPaperVggC10Bits),
                   "[19, 22, 38, 24, 45, 37, 44, 54, 103, 126, 150, 125, 122, 112, 111, 8]",
                   "86.88%", "0.999", "980x"});
    models::ModelSpec spec = models::vgg19_spec(models::VggConfig{});
    const models::ModelSpec baseline = spec.with_uniform_bits(16);
    spec.apply_bits(quant::BitWidthPolicy(bench::kPaperVggC10Bits));
    spec.apply_channels(bench::paper_vgg_c10_channels());
    table.add_row({"replay-2", "paper bits+channels on full spec", "-", "-", "-",
                   report::fmt_factor(energy::energy_efficiency(spec, baseline))});
    std::printf("%s\n", table.to_markdown().c_str());
  }

  // ---- (b) ResNet18 / CIFAR-100 ----------------------------------------
  {
    const bench::QuantExperiment exp =
        bench::run_resnet(s, s.classes_c100, 32, /*prune=*/true, false, 31);
    report::Table table("Table III(b): ResNet18 on CIFAR-100 stand-in, quantized + pruned");
    table.set_header({"row", "bits", "channels", "test acc", "total AD", "energy eff"});
    for (const core::IterationResult& ir : exp.result.iterations) {
      table.add_row({"measured-" + std::to_string(ir.iter), ir.bits.to_string(),
                     channels_to_string(ir.channels),
                     report::fmt_percent(ir.test_accuracy),
                     report::fmt(ir.total_ad, 3),
                     report::fmt_factor(ir.energy_efficiency)});
    }
    table.add_row({"paper-3", report::fmt_int_vector(bench::kPaperResNetC100PrunedBits),
                   "[21, 12, 19, 1, 31, 34, 61, 34, 58, 58, 156, 50, 146, 110, 192, 9, 22]",
                   "63.01%", "0.992", "300x"});
    models::ModelSpec spec = models::resnet18_spec(models::ResNetConfig{});
    const models::ModelSpec baseline = spec.with_uniform_bits(16);
    spec.apply_bits(quant::BitWidthPolicy(bench::kPaperResNetC100PrunedBits));
    spec.apply_channels(bench::paper_resnet_c100_channels());
    table.add_row({"replay-3", "paper bits+channels on full spec", "-", "-", "-",
                   report::fmt_factor(energy::energy_efficiency(spec, baseline))});
    std::printf("%s\n", table.to_markdown().c_str());
  }
  return 0;
}
