// Dynamic-batching serving throughput: requests/sec and tail latency at
// batch caps {1, 4, 16, 32} over the int8 VGG19 plan.
//
// The model is a fully int8-quantized VGG19 (every unit on the integer
// path — what a production int8 deployment serves). Serving widths are
// one step above the training-bench widths: serving runs a trained,
// production-sized model, and per-request latency stays in the 1–2 ms
// range on one core (tiny/small -> width 0.25, full -> 1.0).
//
// The compiled plan round-trips through an .adqplan file first, so the
// served engine is the cold-start path (load_plan, no model rebuild), and
// the bench asserts the loaded plan predicts identically to the compiled
// one.
//
// Two phases per cap:
//   * correctness — one worker, full-batch window: batches are exactly
//     consecutive submit-order chunks, so every server logit row must be
//     BIT-identical to the direct IntInferenceEngine::forward on the same
//     stacked chunk (top-1 agreement is then 100% by construction, and
//     measured anyway);
//   * open-loop throughput — producer threads flood `n_requests`
//     single-sample requests; requests/sec, p50/p95/p99 latency and the
//     batch-size histogram come from ServerStats.
//
// Headline: batched serving (cap >= 16) vs cap 1 requests/sec — the
// ISSUE-3 acceptance bar is >= 2x, which is the amortization the batcher
// exists for (weight panel packing and full micro-tiles across the
// coalesced batch). Everything lands in BENCH_bench_serve_throughput.json.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <numeric>
#include <thread>
#include <vector>

// Replaces global operator new/delete for the allocs-per-forward metric
// (the worker hot loop's engine calls must be allocation-free under the
// arena executor).
#include "bench/alloc_counter.h"
#include "bench/common.h"
#include "infer/engine.h"
#include "infer/plan.h"
#include "infer/plan_io.h"
#include "report/table.h"
#include "serve/server.h"
#include "tensor/ops.h"

namespace {

using namespace adq;

double frac_agree(const std::vector<std::int64_t>& a,
                  const std::vector<std::int64_t>& b) {
  std::size_t same = 0;
  for (std::size_t i = 0; i < a.size(); ++i) same += a[i] == b[i];
  return a.empty() ? 0.0
                   : static_cast<double>(same) / static_cast<double>(a.size());
}

}  // namespace

int main() {
  bench::JsonReport json("bench_serve_throughput");
  const bench::Scale s = bench::bench_scale();
  const double serve_width = s.name == "full" ? 1.0 : 0.25;
  const std::int64_t n_requests = s.name == "tiny" ? 96
                                  : s.name == "full" ? 768
                                                     : 384;

  // Fully int8 VGG19, as Algorithm 1 + a uniform int8 serving policy
  // would deploy it.
  Rng rng(42);
  models::VggConfig mcfg;
  mcfg.width_mult = serve_width;
  mcfg.num_classes = 10;
  auto model = models::build_vgg19(mcfg, rng);
  model->set_training(false);
  for (int i = 0; i < model->unit_count(); ++i) {
    model->unit(i).set_bits(8);
    model->unit(i).set_quantization_enabled(true);
  }

  // Compile -> save -> cold-start load: the served engine comes from the
  // .adqplan file, never from the in-memory compile.
  const infer::InferencePlan compiled = infer::compile(*model);
  const char* dir = std::getenv("ADQ_BENCH_JSON_DIR");
  const std::string plan_path =
      std::string(dir != nullptr ? dir : ".") + "/vgg19_int8.adqplan";
  infer::save_plan(compiled, plan_path);
  const infer::InferencePlan loaded = infer::load_plan(plan_path);
  const infer::IntInferenceEngine engine(loaded);
  std::printf("plan: %s (%.1f KiB weights, %d integer layers, "
              "%.1f KiB activation arena/sample) -> %s\n",
              compiled.model_name.c_str(),
              static_cast<double>(compiled.weight_bytes()) / 1024.0,
              compiled.integer_layer_count(),
              static_cast<double>(compiled.arena_bytes) / 1024.0,
              plan_path.c_str());
  json.add("arena_bytes_per_sample", static_cast<double>(loaded.arena_bytes),
           "bytes");
  json.add("arena_bytes_packed", static_cast<double>(loaded.arena_bytes),
           "bytes");
  json.add("arena_bytes_u8", static_cast<double>(loaded.arena_bytes_u8),
           "bytes");

  // Allocs per forward of the served engine (batch 16, the default cap a
  // worker runs): zero under the arena executor, measured every run.
  {
    data::SyntheticSpec warm = data::synthetic_cifar10_spec();
    warm.train_count = 8;
    warm.test_count = 16;
    const data::TrainTestSplit wsplit = data::make_synthetic(warm);
    const Tensor x16 = wsplit.test.images();
    Tensor out;
    for (int i = 0; i < 3; ++i) engine.forward_into(x16, out);
    constexpr int kReps = 5;
    adq::alloccount::g_alloc_count.store(0);
    adq::alloccount::g_count_allocs.store(true);
    for (int i = 0; i < kReps; ++i) engine.forward_into(x16, out);
    adq::alloccount::g_count_allocs.store(false);
    const double allocs =
        static_cast<double>(adq::alloccount::g_alloc_count.load()) / kReps;
    std::printf("allocs per b16 forward: %.1f\n", allocs);
    json.add("allocs_per_forward_b16", allocs, "allocs");
  }

  // Eval pool the requests draw from.
  data::SyntheticSpec dspec = data::synthetic_cifar10_spec();
  dspec.num_classes = 10;
  dspec.train_count = 8;
  dspec.test_count = 256;
  const data::TrainTestSplit split = data::make_synthetic(dspec);
  std::vector<Tensor> pool;
  for (std::int64_t i = 0; i < dspec.test_count; ++i) {
    pool.push_back(take_sample(split.test.images(), i));
  }

  // Loaded plan reproduces the compiled plan's predictions exactly.
  {
    std::vector<const Tensor*> probe;
    for (std::int64_t i = 0; i < 32; ++i) probe.push_back(&pool[i]);
    const Tensor x = stack_samples(probe);
    const infer::IntInferenceEngine compiled_engine(compiled);
    const double agree =
        frac_agree(engine.predict(x), compiled_engine.predict(x));
    std::printf("saved/loaded plan prediction agreement: %.1f%%\n\n",
                100.0 * agree);
    json.add("plan_roundtrip_top1_agree", agree, "frac");
  }

  report::Table table("Dynamic-batching server — int8 VGG19, width " +
                      report::fmt(serve_width, 4) + ", scale " + s.name);
  table.set_header({"max_batch", "req/s", "p50 ms", "p95 ms", "p99 ms",
                    "mean batch", "top-1 vs direct"});

  const std::vector<std::int64_t> caps{1, 4, 16, 32};
  std::vector<double> rps_by_cap;
  std::vector<double> agree_by_cap;
  for (const std::int64_t cap : caps) {
    // -- correctness: deterministic batch composition ----------------------
    double agree = 1.0;
    {
      serve::ServerConfig cfg;
      cfg.sample_shape = Shape{3, 32, 32};
      cfg.max_batch = cap;
      cfg.max_wait_us = 200'000;  // full batches: producer outruns the window
      cfg.workers = 1;
      serve::InferenceServer server(engine, cfg);
      const std::int64_t n_check = std::min<std::int64_t>(64, n_requests);
      std::vector<std::future<serve::InferenceResult>> futures;
      for (std::int64_t i = 0; i < n_check; ++i) {
        futures.push_back(server.submit(pool[static_cast<std::size_t>(i)]));
      }
      std::vector<std::int64_t> served, direct;
      for (std::int64_t c0 = 0; c0 < n_check; c0 += cap) {
        const std::int64_t c1 = std::min(n_check, c0 + cap);
        std::vector<const Tensor*> chunk;
        for (std::int64_t i = c0; i < c1; ++i) {
          chunk.push_back(&pool[static_cast<std::size_t>(i)]);
        }
        const std::vector<std::int64_t> ref =
            engine.predict(stack_samples(chunk));
        direct.insert(direct.end(), ref.begin(), ref.end());
      }
      for (auto& f : futures) served.push_back(f.get().top1);
      agree = frac_agree(served, direct);
    }
    agree_by_cap.push_back(agree);

    // -- open-loop throughput ---------------------------------------------
    serve::ServerConfig cfg;
    cfg.sample_shape = Shape{3, 32, 32};
    cfg.max_batch = cap;
    cfg.max_wait_us = 2'000;
    cfg.workers = 1;
    serve::InferenceServer server(engine, cfg);

    const int producers = 2;
    const std::int64_t per_producer = n_requests / producers;
    std::vector<std::vector<std::future<serve::InferenceResult>>> futs(
        static_cast<std::size_t>(producers));
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    for (int p = 0; p < producers; ++p) {
      threads.emplace_back([&, p] {
        auto& mine = futs[static_cast<std::size_t>(p)];
        mine.reserve(static_cast<std::size_t>(per_producer));
        for (std::int64_t i = 0; i < per_producer; ++i) {
          const std::size_t idx = static_cast<std::size_t>(
              (p * per_producer + i) % dspec.test_count);
          mine.push_back(server.submit(pool[idx]));
        }
      });
    }
    for (std::thread& t : threads) t.join();
    for (auto& fs : futs) {
      for (auto& f : fs) (void)f.get();
    }
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const double rps =
        static_cast<double>(producers * per_producer) / wall_s;
    rps_by_cap.push_back(rps);

    const serve::ServerStats::Snapshot st = server.stats();
    table.add_row({std::to_string(cap), report::fmt(rps, 1),
                   report::fmt(st.p50_us / 1000.0),
                   report::fmt(st.p95_us / 1000.0),
                   report::fmt(st.p99_us / 1000.0),
                   report::fmt(st.mean_batch),
                   report::fmt_percent(agree, 1)});
    const std::string c = std::to_string(cap);
    json.add("cap" + c + "_peak_activation_bytes_per_worker",
             static_cast<double>(st.peak_activation_bytes_per_worker),
             "bytes");
    json.add("cap" + c + "_rps", rps, "req/s");
    json.add("cap" + c + "_p50_ms", st.p50_us / 1000.0, "ms");
    json.add("cap" + c + "_p95_ms", st.p95_us / 1000.0, "ms");
    json.add("cap" + c + "_p99_ms", st.p99_us / 1000.0, "ms");
    json.add("cap" + c + "_mean_batch", st.mean_batch, "");
    json.add("cap" + c + "_top1_agree_vs_direct", agree, "frac");
    std::printf("cap %2lld batch histogram:", static_cast<long long>(cap));
    for (const auto& [size, count] : st.batch_histogram) {
      std::printf("  %lldx%llu", static_cast<long long>(size),
                  static_cast<unsigned long long>(count));
    }
    std::printf("\n");
  }

  std::printf("\n%s\n", table.to_markdown().c_str());
  const double speedup16 = rps_by_cap[2] / rps_by_cap[0];
  const double speedup32 = rps_by_cap[3] / rps_by_cap[0];
  const bool hit_2x = std::max(speedup16, speedup32) >= 2.0;
  const bool all_agree =
      *std::min_element(agree_by_cap.begin(), agree_by_cap.end()) >= 1.0;
  std::printf("batched vs unbatched: cap16 %.2fx, cap32 %.2fx  (>=2x: %s)\n",
              speedup16, speedup32, hit_2x ? "yes" : "NO");
  std::printf("top-1 agreement vs direct engine calls at every cap: %s\n",
              all_agree ? "100%" : "BELOW 100%");
  json.add("cap16_speedup_vs_cap1", speedup16, "x");
  json.add("cap32_speedup_vs_cap1", speedup32, "x");
  json.add("batched_ge_2x_vs_cap1", hit_2x ? 1.0 : 0.0, "bool");
  json.add("all_caps_full_top1_agreement", all_agree ? 1.0 : 0.0, "bool");
  return 0;
}
