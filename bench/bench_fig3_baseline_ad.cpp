// Figure 3: accuracy and per-layer AD vs epochs for the 16-bit baseline
// VGG19 (Table II(a) iteration 1). The paper's takeaways, which we verify:
//   (i) test accuracy rises and plateaus;
//  (ii) every layer's AD converges to a value strictly below 1.0 —
//       i.e. the 16-bit model is heavily underutilised (redundant).
#include <cstdio>

#include "bench/common.h"
#include "report/table.h"

int main() {
  adq::bench::JsonReport json_report("fig3_baseline_ad");
  using namespace adq;
  const bench::Scale s = bench::bench_scale();
  std::printf("[scale=%s] Fig 3 — baseline VGG19: accuracy + AD vs epoch\n\n",
              s.name.c_str());

  bench::Scale baseline_only = s;
  baseline_only.max_iterations = 1;
  baseline_only.max_epochs_per_iter = 2 * s.max_epochs_per_iter;
  baseline_only.saturation_tol = 0.0;
  const bench::QuantExperiment exp =
      bench::run_vgg_c10(baseline_only, false, false);

  report::Table table("baseline VGG19 trajectory");
  table.set_header({"epoch", "test acc", "mean AD", "min AD", "max AD"});
  const std::size_t epochs = exp.result.test_accuracy_per_epoch.size();
  for (std::size_t e = 0; e < epochs; ++e) {
    double sum = 0.0, lo = 1.0, hi = 0.0;
    for (const auto& h : exp.result.ad_per_unit) {
      sum += h[e];
      lo = std::min(lo, h[e]);
      hi = std::max(hi, h[e]);
    }
    const double mean = sum / static_cast<double>(exp.result.ad_per_unit.size());
    table.add_row({std::to_string(e + 1),
                   report::fmt_percent(exp.result.test_accuracy_per_epoch[e]),
                   report::fmt(mean, 3), report::fmt(lo, 3), report::fmt(hi, 3)});
  }
  std::printf("%s\n", table.to_markdown().c_str());

  int below_one = 0;
  for (const auto& h : exp.result.ad_per_unit) below_one += h.back() < 0.999 ? 1 : 0;
  std::printf("layers with final AD < 1.0: %d / %zu "
              "(paper: all — the baseline is redundant)\n",
              below_one, exp.result.ad_per_unit.size());
  std::printf("paper anchor (Table II(a) iter 1): accuracy 91.85%%, total AD 0.284\n");
  std::printf("measured:                          accuracy %.2f%%, total AD %.3f\n",
              100.0 * exp.result.test_accuracy_per_epoch.back(),
              exp.result.iterations.back().total_ad);
  return 0;
}
