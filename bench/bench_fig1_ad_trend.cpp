// Figure 1: "Trend of Activation Density (AD) of a few individual layers" —
// AD of representative VGG19 layers stabilises as 16-bit baseline training
// progresses. This is the empirical observation Algorithm 1 is built on.
//
// We train the 16-bit baseline only (one quantization iteration, saturation
// disabled) and print the per-epoch AD series for early/middle/late layers,
// then report whether each layer's AD saturated by the end (the paper's
// claim: it does, at a value < 1).
#include <cstdio>

#include "bench/common.h"
#include "report/table.h"

int main() {
  adq::bench::JsonReport json_report("fig1_ad_trend");
  using namespace adq;
  const bench::Scale s = bench::bench_scale();
  std::printf("[scale=%s] Fig 1 — AD trend of individual layers, 16-bit "
              "baseline VGG19\n\n", s.name.c_str());

  bench::Scale baseline_only = s;
  baseline_only.max_iterations = 1;              // stay at 16 bits
  baseline_only.max_epochs_per_iter = 2 * s.max_epochs_per_iter;
  baseline_only.saturation_tol = 0.0;            // never break early
  const bench::QuantExperiment exp =
      bench::run_vgg_c10(baseline_only, /*prune=*/false, /*verbose=*/false);

  const std::vector<int> picks{1, 4, 8, 12, 15};  // spread across depth
  report::Table table("AD vs epoch (selected layers)");
  std::vector<std::string> header{"epoch"};
  for (int u : picks) header.push_back(exp.model->unit(u).name);
  table.set_header(header);
  const std::size_t epochs = exp.result.test_accuracy_per_epoch.size();
  for (std::size_t e = 0; e < epochs; ++e) {
    std::vector<std::string> row{std::to_string(e + 1)};
    for (int u : picks) {
      row.push_back(report::fmt(exp.result.ad_per_unit[static_cast<std::size_t>(u)][e], 3));
    }
    table.add_row(row);
  }
  std::printf("%s\n", table.to_markdown().c_str());

  // Paper observation: AD stabilises (and below 1.0).
  const ad::SaturationDetector detector(s.saturation_window, 2 * s.saturation_tol);
  std::puts("saturation check at end of training (paper: stabilises, < 1.0):");
  for (int u : picks) {
    const auto& h = exp.result.ad_per_unit[static_cast<std::size_t>(u)];
    std::printf("  %-8s final AD %.3f  saturated=%s  below_1=%s\n",
                exp.model->unit(u).name.c_str(), h.back(),
                detector.is_saturated(h) ? "yes" : "no",
                h.back() < 0.999 ? "yes" : "no");
  }
  return 0;
}
