// Serving-tier scale-out: requests/sec and tail latency as the worker
// count grows, against the SERIALIZED-pool baseline measured in the same
// run.
//
// The concurrent scheduler's acceptance measurement (ISSUE 10): before
// this PR every `parallel_for` region in the process queued behind one
// global mutex, so N serving workers serialized their batches' GEMM and
// im2col compute no matter how many cores the box had. The scheduler
// makes each dispatch an independent job; workers then partition the
// machine via per-worker intra-op budgets (threads_per_worker = pool /
// workers by default) and their batches genuinely overlap.
//
// Phases (one engine, one sample pool, identical open-loop load):
//   1. serialized baseline — detail::exchange_serialize_dispatch(true)
//      resurrects the old design (every dispatch behind a process-global
//      lock, whole-pool fan-out per dispatch) with the max worker count;
//   2. concurrent scaling curve — workers in {1, 2, 4}, auto budgets,
//      scheduler unlocked.
//
// Exit-gates (only when the pool has >= 2 threads; a 1-thread pool runs
// every dispatch inline and the designs are indistinguishable): best
// multi-worker concurrent goodput STRICTLY above the serialized
// baseline. The curve plus pool-occupancy peaks land in
// BENCH_bench_serve_scaling.json.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "infer/engine.h"
#include "infer/plan.h"
#include "report/table.h"
#include "serve/server.h"
#include "tensor/ops.h"
#include "tensor/parallel.h"

namespace {

using namespace adq;

struct LoadResult {
  double rps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double mean_batch = 0.0;
  int pool_busy_peak = 0;
  int pool_live_jobs_peak = 0;
};

// Open-loop flood: `producers` threads submit `n_requests` single-sample
// requests as fast as the queue accepts them; goodput = completed
// requests / wall time (every request completes — nothing is shed).
LoadResult run_load(const infer::IntInferenceEngine& engine,
                    serve::ServerConfig cfg, const std::vector<Tensor>& pool,
                    std::int64_t n_requests, int producers) {
  serve::InferenceServer server(engine, cfg);
  const std::int64_t per_producer = n_requests / producers;
  std::vector<std::vector<std::future<serve::InferenceResult>>> futs(
      static_cast<std::size_t>(producers));
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      auto& mine = futs[static_cast<std::size_t>(p)];
      mine.reserve(static_cast<std::size_t>(per_producer));
      for (std::int64_t i = 0; i < per_producer; ++i) {
        const std::size_t idx = static_cast<std::size_t>(
            (p * per_producer + i) % static_cast<std::int64_t>(pool.size()));
        mine.push_back(server.submit(pool[idx]));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (auto& fs : futs) {
    for (auto& f : fs) (void)f.get();
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  server.shutdown();
  const serve::ServerStats::Snapshot st = server.stats();
  LoadResult r;
  r.rps = static_cast<double>(producers * per_producer) / wall_s;
  r.p50_ms = st.p50_us / 1000.0;
  r.p99_ms = st.p99_us / 1000.0;
  r.mean_batch = st.mean_batch;
  r.pool_busy_peak = st.pool_busy_peak;
  r.pool_live_jobs_peak = st.pool_live_jobs_peak;
  return r;
}

}  // namespace

int main() {
  bench::JsonReport json("bench_serve_scaling");
  const bench::Scale s = bench::bench_scale();
  const std::int64_t n_requests = s.name == "tiny" ? 96
                                  : s.name == "full" ? 768
                                                     : 384;

  const int pool_n = parallel_thread_count();
  json.add("pool_threads", static_cast<double>(pool_n), "threads");

  // Fully int8 VGG19 at serving width — the same deployment model
  // bench_serve_throughput measures, so the curves compose.
  Rng rng(42);
  models::VggConfig mcfg;
  mcfg.width_mult = s.name == "full" ? 1.0 : 0.25;
  mcfg.num_classes = 10;
  auto model = models::build_vgg19(mcfg, rng);
  model->set_training(false);
  for (int i = 0; i < model->unit_count(); ++i) {
    model->unit(i).set_bits(8);
    model->unit(i).set_quantization_enabled(true);
  }
  const infer::IntInferenceEngine engine(infer::compile(*model));

  data::SyntheticSpec dspec = data::synthetic_cifar10_spec();
  dspec.num_classes = 10;
  dspec.train_count = 8;
  dspec.test_count = 128;
  const data::TrainTestSplit split = data::make_synthetic(dspec);
  std::vector<Tensor> pool;
  for (std::int64_t i = 0; i < dspec.test_count; ++i) {
    pool.push_back(take_sample(split.test.images(), i));
  }

  auto base_cfg = [] {
    serve::ServerConfig cfg;
    cfg.sample_shape = Shape{3, 32, 32};
    cfg.max_batch = 4;
    cfg.max_wait_us = 2'000;
    return cfg;
  };
  const std::vector<int> worker_counts{1, 2, 4};
  const int max_workers = worker_counts.back();
  const int producers = 2 * max_workers;

  // -- phase 1: serialized-pool baseline ---------------------------------
  // Max workers, whole-pool fan-out per dispatch, every dispatch behind
  // the resurrected global lock: exactly the pre-scheduler design.
  serve::ServerConfig ser_cfg = base_cfg();
  ser_cfg.workers = max_workers;
  ser_cfg.threads_per_worker = pool_n;
  (void)detail::exchange_serialize_dispatch(true);
  const LoadResult serialized =
      run_load(engine, ser_cfg, pool, n_requests, producers);
  (void)detail::exchange_serialize_dispatch(false);
  std::printf(
      "serialized baseline (global dispatch lock, %d workers x %d-thread "
      "fan-out): %.1f req/s, p99 %.2f ms\n\n",
      max_workers, pool_n, serialized.rps, serialized.p99_ms);
  json.add("serialized_rps", serialized.rps, "req/s");
  json.add("serialized_p99_ms", serialized.p99_ms, "ms");

  // -- phase 2: concurrent scheduler scaling curve -----------------------
  report::Table table("Serving scale-out — int8 VGG19, pool " +
                      std::to_string(pool_n) + " threads, scale " + s.name);
  table.set_header({"workers", "threads/worker", "req/s", "p50 ms", "p99 ms",
                    "mean batch", "busy peak", "live jobs peak",
                    "vs serialized"});
  double best_multi_rps = 0.0;
  for (const int w : worker_counts) {
    serve::ServerConfig cfg = base_cfg();
    cfg.workers = w;
    cfg.threads_per_worker = 0;  // auto: pool_n / w, min 1
    const int budget = serve::resolve_worker_budget(0, w);
    const LoadResult r = run_load(engine, cfg, pool, n_requests, producers);
    if (w >= 2) best_multi_rps = std::max(best_multi_rps, r.rps);
    table.add_row({std::to_string(w), std::to_string(budget),
                   report::fmt(r.rps, 1), report::fmt(r.p50_ms),
                   report::fmt(r.p99_ms), report::fmt(r.mean_batch),
                   std::to_string(r.pool_busy_peak),
                   std::to_string(r.pool_live_jobs_peak),
                   report::fmt_factor(r.rps / serialized.rps)});
    const std::string k = "w" + std::to_string(w);
    json.add(k + "_threads_per_worker", static_cast<double>(budget),
             "threads");
    json.add(k + "_rps", r.rps, "req/s");
    json.add(k + "_p50_ms", r.p50_ms, "ms");
    json.add(k + "_p99_ms", r.p99_ms, "ms");
    json.add(k + "_mean_batch", r.mean_batch, "");
    json.add(k + "_pool_busy_peak", static_cast<double>(r.pool_busy_peak),
             "workers");
    json.add(k + "_pool_live_jobs_peak",
             static_cast<double>(r.pool_live_jobs_peak), "jobs");
    json.add(k + "_speedup_vs_serialized", r.rps / serialized.rps, "x");
  }
  std::printf("%s\n", table.to_markdown().c_str());

  const double ratio = best_multi_rps / serialized.rps;
  json.add("best_multiworker_rps", best_multi_rps, "req/s");
  json.add("best_multiworker_vs_serialized", ratio, "x");
  const unsigned hw_cores = std::thread::hardware_concurrency();
  json.add("hardware_cores", static_cast<double>(hw_cores), "cores");
  if (pool_n < 2 || hw_cores < 2) {
    // On a 1-thread pool every dispatch runs inline (the designs are the
    // same code path), and on one physical core concurrent jobs merely
    // timeslice — either way the comparison is vacuous. Record the
    // curve, skip the gate; the ISSUE gate is defined on >= 2 cores.
    std::printf("pool %d threads on %u core(s) — scale-out gate needs >= 2 "
                "of each, skipped\n",
                pool_n, hw_cores);
    json.add("gate_enforced", 0.0, "bool");
    return 0;
  }
  json.add("gate_enforced", 1.0, "bool");
  const bool gate = best_multi_rps > serialized.rps;
  std::printf("multi-worker concurrent goodput vs serialized pool: %.2fx "
              "(strictly higher: %s)\n",
              ratio, gate ? "yes" : "NO");
  json.add("multiworker_beats_serialized", gate ? 1.0 : 0.0, "bool");
  return gate ? 0 : 1;
}
