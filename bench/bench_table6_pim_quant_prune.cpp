// Table VI: PIM MAC energy of the pruned + mixed-precision models vs the
// unpruned full-precision baselines — VGG19/CIFAR-10 (paper: 0.558 uJ,
// 197.55x) and ResNet18/CIFAR-100 (3.630 uJ, 43.941x).
#include <cstdio>

#include "bench/common.h"
#include "pim/mapper.h"
#include "report/table.h"

namespace {

using namespace adq;

void report_network(report::Table& table, const std::string& name,
                    models::ModelSpec spec, const std::vector<int>& bits,
                    const std::vector<std::int64_t>& channels,
                    double paper_pruned_uj, double paper_full_uj,
                    double paper_reduction) {
  const models::ModelSpec baseline = spec.with_uniform_bits(16);
  spec.apply_bits(quant::BitWidthPolicy(bits));
  spec.apply_channels(channels);

  pim::PimEnergyOptions matched;
  matched.streaming = pim::ActivationStreaming::kMatched;
  const double pruned_uj = pim::pim_energy(spec).total_uj;
  const double pruned_matched = pim::pim_energy(spec, {}, matched).total_uj;
  const double base_uj = pim::pim_energy(baseline).total_uj;

  table.add_row({name + " (paper)", report::fmt(paper_pruned_uj, 3),
                 report::fmt(paper_full_uj, 3), report::fmt_factor(paper_reduction)});
  table.add_row({name + " (ours, full-16 stream)", report::fmt(pruned_uj, 3),
                 report::fmt(base_uj, 3), report::fmt_factor(base_uj / pruned_uj)});
  table.add_row({name + " (ours, matched stream)", report::fmt(pruned_matched, 3),
                 report::fmt(base_uj, 3), report::fmt_factor(base_uj / pruned_matched)});
}

}  // namespace

int main() {
  adq::bench::JsonReport json_report("table6_pim_quant_prune");
  report::Table table("Table VI — PIM energy: pruned mixed-precision vs baseline");
  table.set_header({"network", "pruned+quant (uJ)", "baseline (uJ)", "reduction"});

  report_network(table, "VGG19/CIFAR-10", models::vgg19_spec(models::VggConfig{}),
                 bench::kPaperVggC10Bits, bench::paper_vgg_c10_channels(),
                 0.558, 110.154, 197.55);
  report_network(table, "ResNet18/CIFAR-100",
                 models::resnet18_spec(models::ResNetConfig{}),
                 bench::kPaperResNetC100PrunedBits,
                 bench::paper_resnet_c100_channels(), 3.630, 159.501, 43.941);

  std::printf("%s", table.to_markdown().c_str());
  std::puts("\nshape check: pruning+quantization lands in the tens-to-hundreds-x "
            "band on PIM (paper: 197.55x / 43.94x), orders of magnitude above "
            "quantization alone (Table V, ~5x).");
  return 0;
}
