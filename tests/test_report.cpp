// Tests for the report/table writers every bench binary depends on.
#include <gtest/gtest.h>

#include <fstream>

#include "report/table.h"

namespace adq::report {
namespace {

TEST(Table, MarkdownAlignsColumns) {
  Table t("Demo");
  t.set_header({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer-name", "2"});
  const std::string md = t.to_markdown();
  EXPECT_NE(md.find("## Demo"), std::string::npos);
  EXPECT_NE(md.find("| name        | value |"), std::string::npos);
  EXPECT_NE(md.find("| longer-name | 2     |"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t("Demo");
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, CsvEscapesSpecialCells) {
  Table t("Demo");
  t.set_header({"x"});
  t.add_row({"has,comma"});
  t.add_row({"has\"quote"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, WriteCsvAppendsWithTitle) {
  const std::string path = ::testing::TempDir() + "/table_test.csv";
  std::remove(path.c_str());
  Table t("MyTitle");
  t.set_header({"h"});
  t.add_row({"v"});
  t.write_csv(path);
  t.write_csv(path);  // append mode
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("# MyTitle"), std::string::npos);
  // Two appends -> title appears twice.
  EXPECT_NE(content.find("# MyTitle", content.find("# MyTitle") + 1),
            std::string::npos);
}

TEST(Formatters, FixedPrecision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.0, 0), "3");
  EXPECT_EQ(fmt_factor(4.158, 2), "4.16x");
  EXPECT_EQ(fmt_percent(0.9162), "91.62%");
}

TEST(Formatters, IntVectors) {
  EXPECT_EQ(fmt_int_vector(std::vector<int>{16, 4, 5}), "[16, 4, 5]");
  EXPECT_EQ(fmt_int_vector(std::vector<long long>{1}), "[1]");
  EXPECT_EQ(fmt_int_vector(std::vector<int>{}), "[]");
}

}  // namespace
}  // namespace adq::report
