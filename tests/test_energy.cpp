// Tests for the analytical energy model (paper Table I / §IV-A) and the
// eqn-4 training-complexity metric, including paper-value cross-checks.
#include <gtest/gtest.h>

#include "energy/analytical.h"
#include "energy/training_complexity.h"
#include "models/resnet.h"
#include "models/vgg.h"

namespace adq::energy {
namespace {

TEST(Constants, TableOneValues) {
  // E_Mem|k = 2.5k; E_MAC|32 = 3.1 + 0.1; E_MAC|16 = 3.1/2 + 0.1.
  EXPECT_DOUBLE_EQ(mem_access_energy_pj(16), 40.0);
  EXPECT_DOUBLE_EQ(mem_access_energy_pj(1), 2.5);
  EXPECT_DOUBLE_EQ(mac_energy_pj(32), 3.2);
  EXPECT_DOUBLE_EQ(mac_energy_pj(16), 1.65);
  EXPECT_NEAR(mac_energy_pj(1), 3.1 / 32.0 + 0.1, 1e-12);
  EXPECT_THROW(mac_energy_pj(0), std::invalid_argument);
}

TEST(Analytical, SingleLayerHandComputed) {
  models::ModelSpec spec;
  models::LayerSpec l;
  l.name = "conv";
  l.in_channels = l.active_in = 2;
  l.out_channels = l.active_out = 4;
  l.kernel = 3;
  l.in_size = l.out_size = 8;
  l.bits = 8;
  spec.layers.push_back(l);
  const EnergyReport r = analytical_energy(spec);
  const double macs = 64.0 * 2 * 9 * 4;      // M^2 * I * p^2 * O
  const double mems = 64.0 * 2 + 9 * 2 * 4;  // N^2 * I + p^2 * I * O
  EXPECT_DOUBLE_EQ(static_cast<double>(r.layers[0].macs), macs);
  EXPECT_DOUBLE_EQ(static_cast<double>(r.layers[0].mem_accesses), mems);
  EXPECT_NEAR(r.total_pj, macs * (3.1 * 8 / 32 + 0.1) + mems * 2.5 * 8, 1e-9);
}

TEST(Analytical, LowerBitsAlwaysCheaper) {
  // Property: energy is monotone in bits for any fixed architecture.
  models::ModelSpec spec = models::vgg19_spec(models::VggConfig{});
  double prev = 1e300;
  for (int bits : {16, 12, 8, 5, 3, 2, 1}) {
    const double e = analytical_energy(spec.with_uniform_bits(bits)).total_pj;
    EXPECT_LT(e, prev);
    prev = e;
  }
}

TEST(Analytical, EfficiencyOfBaselineIsOne) {
  const models::ModelSpec spec = models::vgg19_spec(models::VggConfig{});
  EXPECT_NEAR(energy_efficiency(spec, spec), 1.0, 1e-12);
}

TEST(Analytical, PaperTable2aVgg19Efficiency) {
  // Table II(a) iter 2: bits [16,4,5,4,3,2,2,2,3,3,3,4,3,3,3,3,16] on
  // VGG19/CIFAR-10 reports 4.16x vs the 16-bit baseline. Our shape math and
  // energy model should land in the same region (the paper does not specify
  // every modelling detail, so we accept a generous band around 4).
  models::ModelSpec spec = models::vgg19_spec(models::VggConfig{});
  const std::vector<int> paper_bits{16, 4, 5, 4, 3, 2, 2, 2, 3,
                                    3,  3, 4, 3, 3, 3, 3, 16};
  spec.apply_bits(quant::BitWidthPolicy(paper_bits));
  const double eff =
      energy_efficiency(spec, spec.with_uniform_bits(16));
  EXPECT_GT(eff, 3.0);
  EXPECT_LT(eff, 6.0);
}

TEST(Analytical, PaperTable2bResNet18Efficiency) {
  // Table II(b) iter 3 reports 3.19x on ResNet18/CIFAR-100. Units (paper
  // triple layout [c1, c2, skip=c2]): stem 16, then per-block c1/c2, fc 16.
  models::ModelSpec spec = models::resnet18_spec(models::ResNetConfig{});
  const std::vector<int> unit_bits{16, 5, 3, 5,  1, 8, 4, 6, 4,
                                   8,  3, 9, 3,  9, 3, 6, 1, 16};
  spec.apply_bits(quant::BitWidthPolicy(unit_bits));
  const double eff = energy_efficiency(spec, spec.with_uniform_bits(16));
  EXPECT_GT(eff, 2.0);
  EXPECT_LT(eff, 5.5);
}

TEST(Analytical, PruningCompoundsWithQuantization) {
  models::ModelSpec spec = models::vgg19_spec(models::VggConfig{});
  const models::ModelSpec baseline = spec.with_uniform_bits(16);
  const std::vector<int> paper_bits{16, 4, 5, 4, 3, 2, 2, 2, 3,
                                    3,  3, 4, 3, 3, 3, 3, 16};
  spec.apply_bits(quant::BitWidthPolicy(paper_bits));
  const double quant_only = energy_efficiency(spec, baseline);
  // Table III(a) channel counts (conv1..conv16; fc unpruned).
  std::vector<std::int64_t> ch{19, 22, 38, 24, 45, 37, 44, 54,
                               103, 126, 150, 125, 122, 112, 111, 8};
  ch.push_back(10);  // fc out_features, unpruned
  spec.apply_channels(ch);
  const double quant_prune = energy_efficiency(spec, baseline);
  EXPECT_GT(quant_prune, 10.0 * quant_only);  // orders of magnitude larger
}

TEST(Analytical, ZeroEnergyModelRejected) {
  models::ModelSpec empty;
  models::ModelSpec base = models::vgg19_spec(models::VggConfig{});
  EXPECT_THROW(energy_efficiency(empty, base), std::invalid_argument);
}

TEST(MacReduction, MacOnlyIgnoresMemory) {
  models::ModelSpec spec = models::vgg19_spec(models::VggConfig{});
  const models::ModelSpec baseline = spec.with_uniform_bits(16);
  const models::ModelSpec quant = spec.with_uniform_bits(4);
  const double mac_red = mac_energy_reduction(quant, baseline);
  // E_MAC|16 / E_MAC|4 = 1.65 / 0.4875 for every layer.
  EXPECT_NEAR(mac_red, 1.65 / (3.1 * 4 / 32.0 + 0.1), 1e-9);
}

TEST(TrainingComplexity, SingleBaselineIteration) {
  EXPECT_DOUBLE_EQ(training_complexity({{1.0, 100}}), 100.0);
  EXPECT_DOUBLE_EQ(training_complexity_vs_baseline({{1.0, 100}}, 100), 1.0);
}

TEST(TrainingComplexity, Eqn4Accumulates) {
  // 100 epochs at 1x + 70 epochs at 4x reduction = 117.5 equivalent epochs.
  const std::vector<IterationCost> iters{{1.0, 100}, {4.0, 70}};
  EXPECT_DOUBLE_EQ(training_complexity(iters), 117.5);
  EXPECT_NEAR(training_complexity_vs_baseline(iters, 210), 0.5595, 1e-3);
}

TEST(TrainingComplexity, InvalidInputsThrow) {
  EXPECT_THROW(training_complexity({{0.0, 10}}), std::invalid_argument);
  EXPECT_THROW(training_complexity_vs_baseline({{1.0, 10}}, 0), std::invalid_argument);
}

}  // namespace
}  // namespace adq::energy
