// End-to-end integration tests: the complete pipeline (synthetic data ->
// quantization-aware training -> Algorithm 1 -> energy models -> PIM
// mapping) on width-scaled VGG19 and ResNet18, plus cross-model invariants
// that tie the subsystems together.
#include <gtest/gtest.h>

#include "core/ad_quantizer.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "energy/analytical.h"
#include "models/resnet.h"
#include "models/vgg.h"
#include "nn/init.h"
#include "pim/mapper.h"
#include "quant/quantizer.h"
#include "tensor/ops.h"

namespace adq {
namespace {

data::TrainTestSplit easy_data(std::int64_t classes, std::int64_t train,
                               std::int64_t test, std::uint64_t seed = 11) {
  data::SyntheticSpec spec = data::synthetic_cifar10_spec();
  spec.num_classes = classes;
  spec.train_count = train;
  spec.test_count = test;
  spec.noise = 0.2f;
  spec.seed = seed;
  return data::make_synthetic(spec);
}

TEST(Integration, QuantizedTrainingLearnsAboveChance) {
  // 4-bit quantization-aware training (STE) still learns the synthetic
  // task: this is the heart of the paper's claim that in-training
  // quantization works without a pre-trained model.
  Rng rng(31);
  models::VggConfig cfg;
  cfg.width_mult = 0.0625;
  cfg.num_classes = 4;
  auto model = models::build_vgg19(cfg, rng);
  std::vector<int> bits(static_cast<std::size_t>(model->unit_count()), 4);
  bits.front() = 16;
  bits.back() = 16;
  model->apply_bit_policy(quant::BitWidthPolicy(bits));

  const data::TrainTestSplit split = easy_data(4, 128, 64);
  core::TrainerConfig tcfg;
  tcfg.batch_size = 16;
  core::Trainer trainer(*model, split.train, split.test, tcfg);
  for (int e = 0; e < 5; ++e) trainer.run_epoch();
  EXPECT_GT(trainer.evaluate(), 0.5);  // chance = 0.25
}

TEST(Integration, FullPipelineVgg19) {
  // Algorithm 1 end to end, then every energy model on the resulting
  // mixed-precision network.
  Rng rng(32);
  models::VggConfig cfg;
  cfg.width_mult = 0.0625;
  cfg.num_classes = 4;
  auto model = models::build_vgg19(cfg, rng);
  const models::ModelSpec baseline = model->spec();

  const data::TrainTestSplit split = easy_data(4, 96, 48);
  core::Trainer trainer(*model, split.train, split.test);
  core::AdqConfig acfg;
  acfg.max_iterations = 3;
  acfg.min_epochs_per_iter = 2;
  acfg.max_epochs_per_iter = 3;
  acfg.detector = ad::SaturationDetector(2, 0.05);
  core::AdQuantizationController controller(*model, trainer, acfg);
  const core::RunResult result = controller.run();

  // AD-quantization drives total AD up across iterations (toward 1.0).
  ASSERT_GE(result.iterations.size(), 2u);
  EXPECT_GT(result.iterations.back().total_ad,
            result.iterations.front().total_ad - 0.05);

  // Energy models agree on direction: quantized is cheaper on both the
  // analytical CMOS model and the PIM accelerator.
  const double analytical_eff = energy::energy_efficiency(model->spec(), baseline);
  const double pim_red = pim::pim_energy_reduction(model->spec(), baseline);
  EXPECT_GT(analytical_eff, 1.0);
  EXPECT_GT(pim_red, 1.0);
}

TEST(Integration, FullPipelineResNet18WithPruning) {
  Rng rng(33);
  models::ResNetConfig cfg;
  cfg.width_mult = 0.125;
  cfg.num_classes = 4;
  auto model = models::build_resnet18(cfg, rng);
  const models::ModelSpec baseline = model->spec();

  const data::TrainTestSplit split = easy_data(4, 96, 48, 13);
  core::Trainer trainer(*model, split.train, split.test);
  core::AdqConfig acfg;
  acfg.max_iterations = 2;
  acfg.min_epochs_per_iter = 2;
  acfg.max_epochs_per_iter = 3;
  acfg.detector = ad::SaturationDetector(2, 0.05);
  acfg.prune = true;
  core::AdQuantizationController controller(*model, trainer, acfg);
  const core::RunResult result = controller.run();

  // Skip-destination rule: every block's skip quantizer matches conv2 bits.
  for (int u = 0; u < model->unit_count(); ++u) {
    const models::QuantUnit& unit = model->unit(u);
    if (unit.role == models::UnitRole::kBlockConv2) {
      EXPECT_EQ(unit.block->skip_quantizer().bits(), unit.conv->bits());
    }
  }
  // Pruned + quantized must compound in the energy model.
  const double eff = energy::energy_efficiency(model->spec(), baseline);
  EXPECT_GT(eff, result.iterations.front().energy_efficiency);
  // The network still evaluates.
  EXPECT_GE(trainer.evaluate(), 0.0);
}

TEST(Integration, AdSaturationDrivesTermination) {
  // Algorithm 1's fixed point: once every density is ~1, eqn 3 stops
  // changing bits and the controller halts before max_iterations.
  Rng rng(34);
  models::VggConfig cfg;
  cfg.width_mult = 0.0625;
  cfg.num_classes = 4;
  auto model = models::build_vgg19(cfg, rng);
  // Force bits to 1 everywhere (non-frozen): AD of a 1-bit layer is pinned
  // near its firing rate; eqn 3 can no longer reduce below 1 bit.
  std::vector<int> bits(static_cast<std::size_t>(model->unit_count()), 1);
  bits.front() = 16;
  bits.back() = 16;
  model->apply_bit_policy(quant::BitWidthPolicy(bits));

  const data::TrainTestSplit split = easy_data(4, 64, 32);
  core::Trainer trainer(*model, split.train, split.test);
  core::AdqConfig acfg;
  acfg.max_iterations = 5;
  acfg.min_epochs_per_iter = 2;
  acfg.max_epochs_per_iter = 2;
  acfg.detector = ad::SaturationDetector(2, 1.0);  // saturate immediately
  core::AdQuantizationController controller(*model, trainer, acfg);
  const core::RunResult result = controller.run();
  // Bits cannot go below 1, so the policy reaches a fixed point quickly.
  EXPECT_LT(result.iterations.size(), 5u);
}

TEST(Integration, PimMatchesQuantizedGemmOnRealWeights) {
  // Quantize a trained-ish conv layer's weights and one activation patch to
  // 4 bits, push the codes through the PIM functional simulator, and verify
  // the result equals the integer reference — connecting the quantization
  // library to the hardware model end to end.
  Rng rng(35);
  nn::Conv2d conv(3, 8, 3, 1, 1, false);
  nn::init_conv(conv, rng);
  const Tensor& w = conv.weight().value;
  const float w_lo = min_value(w), w_hi = max_value(w);
  const auto w_codes = quant::quantize_codes(w, w_lo, w_hi, 4);

  Tensor patch(Shape{27});
  rng.fill_uniform(patch, 0.0f, 1.0f);
  const auto a_codes = quant::quantize_codes(patch, 0.0f, 1.0f, 4);

  for (std::int64_t o = 0; o < 8; ++o) {
    std::vector<std::int64_t> w_row(w_codes.begin() + o * 27,
                                    w_codes.begin() + (o + 1) * 27);
    std::int64_t ref = 0;
    for (int i = 0; i < 27; ++i) ref += w_row[static_cast<std::size_t>(i)] * a_codes[static_cast<std::size_t>(i)];
    pim::EventCounts ev;
    EXPECT_EQ(pim::pim_dot_product(w_row, a_codes, 4, ev), ref);
  }
}

TEST(Integration, AnalyticalOverestimatesPimForPrunedModels) {
  // Section V-B: analytical estimates are more optimistic than the PIM
  // measurement for pruned+quantized models. Under internally consistent
  // modelling (both sides as ratio-of-total-energies) the direction holds
  // but the paper's 5-7x magnitude does not — that magnitude reappears
  // only when the analytical side is aggregated as a mean of per-layer
  // ratios (see bench_analytical_vs_pim and EXPERIMENTS.md). We assert
  // both facts with the paper's Table III(a) configuration.
  models::ModelSpec spec = models::vgg19_spec(models::VggConfig{});
  const models::ModelSpec baseline = spec.with_uniform_bits(16);
  const std::vector<int> bits{16, 4, 5, 4, 3, 2, 2, 2, 3, 3, 3, 4, 3, 3, 3, 3, 16};
  spec.apply_bits(quant::BitWidthPolicy(bits));
  std::vector<std::int64_t> ch{19, 22, 38, 24, 45, 37, 44, 54,
                               103, 126, 150, 125, 122, 112, 111, 8};
  ch.push_back(10);
  spec.apply_channels(ch);

  const double analytical = energy::energy_efficiency(spec, baseline);
  const double pim = pim::pim_energy_reduction(spec, baseline);
  EXPECT_GT(analytical, pim);  // consistent modelling: rosier, mildly

  // Paper-style aggregation: mean of per-layer baseline/model ratios blows
  // past the consistent number (this is where the published 980x lives).
  const energy::EnergyReport em = energy::analytical_energy(spec);
  const energy::EnergyReport eb = energy::analytical_energy(baseline);
  double ratio_sum = 0.0;
  for (std::size_t i = 0; i < em.layers.size(); ++i) {
    ratio_sum += eb.layers[i].total_pj() / em.layers[i].total_pj();
  }
  const double mean_ratio = ratio_sum / static_cast<double>(em.layers.size());
  EXPECT_GT(mean_ratio, 2.0 * analytical);
}

}  // namespace
}  // namespace adq
