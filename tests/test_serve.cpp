// Serving data-path tests: batcher flush triggers (max_batch and
// max_wait_us), FIFO completion under concurrent producers, server
// results bit-identical to direct engine calls (batched and unbatched),
// clean shutdown with in-flight requests, and concurrent forward() on one
// shared engine. The model-level tests run a small VGG19 compiled to the
// integer path end to end.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <future>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "infer/engine.h"
#include "infer/plan.h"
#include "models/vgg.h"
#include "serve/batcher.h"
#include "serve/request_queue.h"
#include "serve/server.h"
#include "serve/stats.h"
#include "tensor/ops.h"
#include "tensor/parallel.h"
#include "tensor/rng.h"

#include "plan_test_util.h"

namespace adq::serve {
namespace {

using infer::IntInferenceEngine;
using infer::testutil::ScopedEnv;

constexpr std::int64_t kC = 3, kH = 8, kW = 8;

Tensor make_sample(Rng& rng) {
  Tensor x(Shape{kC, kH, kW});
  rng.fill_normal(x, 0.0f, 1.0f);
  return x;
}

// Small all-integer VGG19 engine + matching server config for the
// model-level tests.
struct ServeFixture {
  std::unique_ptr<models::QuantizableModel> model;
  std::unique_ptr<IntInferenceEngine> engine;

  explicit ServeFixture(std::uint64_t seed = 5) {
    Rng rng(seed);
    models::VggConfig cfg;
    cfg.width_mult = 0.0625;
    cfg.num_classes = 10;
    model = models::build_vgg19(cfg, rng);
    model->set_training(false);
    for (int i = 0; i < model->unit_count(); ++i) {
      model->unit(i).set_bits(8);
      model->unit(i).set_quantization_enabled(true);
    }
    engine = std::make_unique<IntInferenceEngine>(infer::compile(*model));
  }

  ServerConfig config(std::int64_t max_batch, std::int64_t max_wait_us,
                      int workers = 1) const {
    ServerConfig c;
    c.sample_shape = Shape{3, 32, 32};
    c.max_batch = max_batch;
    c.max_wait_us = max_wait_us;
    c.workers = workers;
    return c;
  }

  Tensor sample(Rng& rng) const {
    Tensor x(Shape{3, 32, 32});
    rng.fill_normal(x, 0.0f, 1.0f);
    return x;
  }
};

// --------------------------------------------------------------------------
// Queue + batcher.
// --------------------------------------------------------------------------

TEST(ServeQueue, FlushesImmediatelyOnFullBatch) {
  Rng rng(1);
  RequestQueue queue;
  DynamicBatcher batcher(queue, BatchPolicy{8, /*max_wait_us=*/10'000'000});
  std::vector<std::future<InferenceResult>> futures;
  for (int i = 0; i < 8; ++i) futures.push_back(queue.push(make_sample(rng)));

  const auto t0 = Clock::now();
  const std::vector<Request> batch = batcher.next_batch();
  const double waited_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();

  ASSERT_EQ(batch.size(), 8u);
  // A full batch must flush without serving out the 10 s window.
  EXPECT_LT(waited_ms, 1000.0);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(batch[i].id, i);  // FIFO order
  }
}

TEST(ServeQueue, FlushesPartialBatchAfterMaxWait) {
  Rng rng(2);
  RequestQueue queue;
  DynamicBatcher batcher(queue, BatchPolicy{64, /*max_wait_us=*/20'000});
  auto f0 = queue.push(make_sample(rng));
  auto f1 = queue.push(make_sample(rng));
  auto f2 = queue.push(make_sample(rng));

  const auto t0 = Clock::now();
  const std::vector<Request> batch = batcher.next_batch();
  const double waited_us =
      std::chrono::duration<double, std::micro>(Clock::now() - t0).count();

  ASSERT_EQ(batch.size(), 3u);  // flushed partial, not stuck waiting for 64
  // The oldest request was already aging before next_batch was called, so
  // the observed wait is at most the window (plus scheduling slack), and
  // the window genuinely elapsed from the request's perspective.
  EXPECT_LT(waited_us, 5'000'000.0);
  const double age_us = std::chrono::duration<double, std::micro>(
                            Clock::now() - batch.front().enqueued)
                            .count();
  EXPECT_GE(age_us, 20'000.0);
}

TEST(ServeQueue, CloseDrainsThenSignalsShutdown) {
  Rng rng(3);
  RequestQueue queue;
  DynamicBatcher batcher(queue, BatchPolicy{4, 1'000'000});
  for (int i = 0; i < 6; ++i) (void)queue.push(make_sample(rng));
  queue.close();

  EXPECT_EQ(batcher.next_batch().size(), 4u);  // first drained batch
  EXPECT_EQ(batcher.next_batch().size(), 2u);  // remainder, below max_batch
  EXPECT_TRUE(batcher.next_batch().empty());   // drained -> shutdown signal
  EXPECT_THROW(queue.push(make_sample(rng)), std::runtime_error);
}

TEST(ServeQueue, PolicyValidation) {
  RequestQueue queue;
  EXPECT_THROW(DynamicBatcher(queue, BatchPolicy{0, 100}),
               std::invalid_argument);
  EXPECT_THROW(DynamicBatcher(queue, BatchPolicy{4, -1}),
               std::invalid_argument);
}

TEST(ServeQueue, SingleArrivalWakesOneBlockedPopper) {
  // Thundering-herd micro-assertion: with M poppers parked on an empty
  // queue, one arrival must wake at most ONE of them (push gates a single
  // notify_one on an actual waiter); only close() wakes the herd, because
  // every popper must observe shutdown. The wakeup counter makes the
  // contract measurable: a regression to notify_all-per-push multiplies
  // wakeups by the popper count (here ~4x the asserted bound).
  Rng rng(11);
  RequestQueue queue;
  constexpr int kPoppers = 4;
  constexpr int kPushes = 32;
  std::atomic<int> popped{0};
  std::vector<std::thread> poppers;
  for (int p = 0; p < kPoppers; ++p) {
    poppers.emplace_back([&] {
      for (;;) {
        // max_batch 1: a popper never lingers in the deadline wait, so
        // every wakeup counted below is a push or the close broadcast.
        const std::vector<Request> batch =
            queue.pop_batch(1, std::chrono::microseconds(10'000'000));
        if (batch.empty()) return;  // closed and drained
        popped += static_cast<int>(batch.size());
      }
    });
  }
  for (int i = 0; i < kPushes; ++i) {
    (void)queue.push(make_sample(rng));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  queue.close();
  for (auto& t : poppers) t.join();
  EXPECT_EQ(popped.load(), kPushes);
  // One wakeup per push, one per popper at close, a little slack for
  // spurious OS wakeups. notify_all-per-push would be ~kPushes * kPoppers.
  EXPECT_LE(queue.popper_wakeups(),
            static_cast<std::uint64_t>(kPushes + 2 * kPoppers + 8));
}

TEST(ServeQueue, FailPendingResolvesEveryFutureWithServerStopped) {
  Rng rng(7);
  RequestQueue queue;
  std::vector<std::future<InferenceResult>> futures;
  for (int i = 0; i < 5; ++i) futures.push_back(queue.push(make_sample(rng)));

  queue.fail_pending("serve: stopping for the test");

  // Every accepted request must resolve — with the distinct ServerStopped
  // error, not a hang and not a generic broken_promise.
  for (auto& f : futures) {
    EXPECT_THROW(f.get(), ServerStopped);
  }
  // The queue is closed for business afterwards.
  EXPECT_THROW(queue.push(make_sample(rng)), std::runtime_error);
  EXPECT_EQ(queue.depth(), 0);
}

TEST(ServeQueue, DestructionFailsPendingFuturesWithServerStopped) {
  Rng rng(8);
  std::vector<std::future<InferenceResult>> futures;
  {
    RequestQueue queue;
    for (int i = 0; i < 3; ++i) futures.push_back(queue.push(make_sample(rng)));
  }  // destroyed with requests still pending
  for (auto& f : futures) {
    EXPECT_THROW(f.get(), ServerStopped);
  }
}

// --------------------------------------------------------------------------
// Stats.
// --------------------------------------------------------------------------

TEST(ServeStats, AggregatesBatchesAndPercentiles) {
  ServerStats stats;
  for (int i = 0; i < 3; ++i) stats.record_batch(4, /*queue_depth=*/i);
  stats.record_batch(2, 7);
  for (int i = 1; i <= 100; ++i) {
    stats.record_request(/*queue_us=*/10.0,
                         /*exec_us=*/static_cast<double>(i) - 10.0,
                         /*total_us=*/static_cast<double>(i));
  }
  const ServerStats::Snapshot s = stats.snapshot();
  EXPECT_EQ(s.requests, 100u);
  EXPECT_EQ(s.batches, 4u);
  EXPECT_EQ(s.max_queue_depth, 7);
  EXPECT_DOUBLE_EQ(s.p50_us, 50.0);
  EXPECT_DOUBLE_EQ(s.p95_us, 95.0);
  EXPECT_DOUBLE_EQ(s.p99_us, 99.0);
  // Queue-wait vs execution split: waits were constant, execution carries
  // all the spread, and the percentiles attribute it accordingly.
  EXPECT_DOUBLE_EQ(s.p50_queue_us, 10.0);
  EXPECT_DOUBLE_EQ(s.p99_queue_us, 10.0);
  EXPECT_DOUBLE_EQ(s.p50_exec_us, 40.0);
  EXPECT_DOUBLE_EQ(s.p99_exec_us, 89.0);
  EXPECT_DOUBLE_EQ(s.mean_queue_us, 10.0);
  EXPECT_EQ(s.mean_batch, 25.0);
  ASSERT_EQ(s.batch_histogram.size(), 2u);
  EXPECT_EQ(s.batch_histogram[0].first, 2);
  EXPECT_EQ(s.batch_histogram[0].second, 1u);
  EXPECT_EQ(s.batch_histogram[1].first, 4);
  EXPECT_EQ(s.batch_histogram[1].second, 3u);
  // All on the default rung, no transitions.
  ASSERT_EQ(s.precision_mix.size(), 1u);
  EXPECT_EQ(s.precision_mix[0].first, 0);
  EXPECT_EQ(s.precision_mix[0].second, 100u);
  EXPECT_EQ(s.step_downs, 0u);
  EXPECT_EQ(s.step_ups, 0u);

  stats.reset();
  EXPECT_EQ(stats.snapshot().requests, 0u);
}

TEST(ServeStats, TracksPrecisionMixTransitionsAndRecentP99) {
  ServerStats stats;
  for (int i = 0; i < 10; ++i) stats.record_request(0.0, 100.0, 100.0, 0);
  stats.record_transition(0, 1);
  for (int i = 0; i < 30; ++i) stats.record_request(0.0, 40.0, 40.0, 1);
  stats.record_transition(1, 2);
  stats.record_transition(2, 1);
  const ServerStats::Snapshot s = stats.snapshot();
  ASSERT_EQ(s.precision_mix.size(), 2u);
  EXPECT_EQ(s.precision_mix[0], (std::pair<int, std::uint64_t>{0, 10u}));
  EXPECT_EQ(s.precision_mix[1], (std::pair<int, std::uint64_t>{1, 30u}));
  EXPECT_EQ(s.step_downs, 2u);
  EXPECT_EQ(s.step_ups, 1u);
  EXPECT_EQ(s.current_step, 1);
  // recent_p99_us sees the sliding window (40 entries: 10 at 100, 30 at
  // 40), so its p99 is the old slow tail, not the recent fast mode.
  EXPECT_DOUBLE_EQ(stats.recent_p99_us(), 100.0);
}

// --------------------------------------------------------------------------
// Server against the real engine.
// --------------------------------------------------------------------------

TEST(ServeServer, BatchedResultsBitIdenticalToDirectEngineCall) {
  ServeFixture fx;
  Rng rng(11);
  const std::int64_t B = 8;
  std::vector<Tensor> samples;
  for (std::int64_t i = 0; i < B; ++i) samples.push_back(fx.sample(rng));

  // One worker, full-batch flush, generous window: the batch is exactly
  // our eight samples in submit order, so the reference is the direct
  // engine call on the identically stacked tensor.
  InferenceServer server(*fx.engine, fx.config(B, 1'000'000));
  std::vector<std::future<InferenceResult>> futures;
  for (const Tensor& s : samples) futures.push_back(server.submit(s));

  std::vector<const Tensor*> ptrs;
  for (const Tensor& s : samples) ptrs.push_back(&s);
  const Tensor ref = fx.engine->forward(stack_samples(ptrs));
  const std::vector<std::int64_t> ref_top1 = argmax_rows(ref);

  for (std::int64_t i = 0; i < B; ++i) {
    InferenceResult r = futures[static_cast<std::size_t>(i)].get();
    EXPECT_EQ(r.batch_size, B);
    EXPECT_EQ(r.top1, ref_top1[static_cast<std::size_t>(i)]);
    ASSERT_EQ(r.logits.numel(), 10);
    for (std::int64_t c = 0; c < 10; ++c) {
      EXPECT_EQ(r.logits[c], ref.at(i, c)) << "sample " << i << " class " << c;
    }
  }
  const ServerStats::Snapshot s = server.stats();
  EXPECT_EQ(s.requests, static_cast<std::uint64_t>(B));
  EXPECT_EQ(s.batches, 1u);
}

TEST(ServeServer, MaxBatchOneMatchesSingleSampleCalls) {
  ServeFixture fx;
  Rng rng(12);
  InferenceServer server(*fx.engine, fx.config(1, 100));
  for (int i = 0; i < 4; ++i) {
    const Tensor s = fx.sample(rng);
    InferenceResult r = server.submit(s).get();
    EXPECT_EQ(r.batch_size, 1);
    std::vector<const Tensor*> one{&s};
    const Tensor ref = fx.engine->forward(stack_samples(one));
    for (std::int64_t c = 0; c < 10; ++c) EXPECT_EQ(r.logits[c], ref[c]);
  }
}

TEST(ServeServer, FifoCompletionUnderConcurrentProducers) {
  ServeFixture fx;
  InferenceServer server(*fx.engine, fx.config(4, 200));

  constexpr int kProducers = 4, kPerProducer = 12;
  std::vector<std::vector<std::future<InferenceResult>>> futures(kProducers);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      Rng rng(100 + static_cast<std::uint64_t>(p));
      for (int i = 0; i < kPerProducer; ++i) {
        futures[static_cast<std::size_t>(p)].push_back(
            server.submit(fx.sample(rng)));
      }
    });
  }
  for (std::thread& t : producers) t.join();

  // With a single worker, completion order must equal arrival order:
  // sorting results by queue id must leave completion sequence sorted too.
  std::vector<InferenceResult> results;
  for (auto& fs : futures) {
    for (auto& f : fs) results.push_back(f.get());
  }
  std::sort(results.begin(), results.end(),
            [](const InferenceResult& a, const InferenceResult& b) {
              return a.id < b.id;
            });
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_LT(results[i - 1].sequence, results[i].sequence)
        << "request " << results[i].id << " completed before an earlier one";
  }
  EXPECT_EQ(results.size(),
            static_cast<std::size_t>(kProducers * kPerProducer));
}

TEST(ServeServer, CleanShutdownCompletesInFlightRequests) {
  ServeFixture fx;
  Rng rng(13);
  auto server = std::make_unique<InferenceServer>(*fx.engine,
                                                  fx.config(8, 5'000));
  std::vector<std::future<InferenceResult>> futures;
  for (int i = 0; i < 30; ++i) futures.push_back(server->submit(fx.sample(rng)));

  server->shutdown();  // drains everything already accepted
  for (auto& f : futures) {
    const InferenceResult r = f.get();  // must not hang or throw
    EXPECT_GE(r.top1, 0);
    EXPECT_LT(r.top1, 10);
  }
  EXPECT_THROW(server->submit(fx.sample(rng)), std::runtime_error);
  EXPECT_EQ(server->stats().requests, 30u);
  server.reset();  // double-shutdown via destructor is a no-op
}

TEST(ServeServer, RejectsWrongSampleShape) {
  ServeFixture fx;
  InferenceServer server(*fx.engine, fx.config(4, 100));
  Tensor bad(Shape{3, 16, 16});
  EXPECT_THROW(server.submit(bad), std::invalid_argument);
  Tensor batched(Shape{1, 3, 32, 32});
  EXPECT_THROW(server.submit(batched), std::invalid_argument);
}

TEST(ServeServer, StatsExposeStaticMemoryContract) {
  // The compiled plan's activation arena bounds each worker's footprint:
  // the snapshot must expose the per-sample arena and the exact worst case
  // at the configured batch cap, before any request has been served.
  ServeFixture fx;
  InferenceServer server(*fx.engine, fx.config(16, 100));
  const ServerStats::Snapshot st = server.stats();
  EXPECT_GT(st.arena_bytes_per_sample, 0);
  EXPECT_EQ(st.arena_bytes_per_sample, fx.engine->arena_bytes_per_sample());
  EXPECT_EQ(st.peak_activation_bytes_per_worker,
            16 * st.arena_bytes_per_sample);
  // Activation-compression contract: the float-slot baseline and the slot
  // mix ride along (packed arena <= baseline; slot counts cover every
  // slot-owning op of the plan).
  EXPECT_EQ(st.arena_bytes_u8_per_sample,
            fx.engine->arena_bytes_u8_per_sample());
  EXPECT_GE(st.arena_bytes_u8_per_sample, st.arena_bytes_per_sample);
  ASSERT_FALSE(st.act_cell_histogram.empty());
  int slot_ops = 0;
  for (const auto& [cell, count] : st.act_cell_histogram) {
    EXPECT_TRUE(cell == 0 || cell == 1 || cell == 2 || cell == 4 ||
                cell == 8)
        << cell;
    slot_ops += count;
  }
  EXPECT_GT(slot_ops, 0);
}

TEST(ServeServer, ConfigValidation) {
  ServeFixture fx;
  ServerConfig no_shape;
  EXPECT_THROW(InferenceServer(*fx.engine, no_shape), std::invalid_argument);
  ServerConfig bad_workers = fx.config(4, 100);
  bad_workers.workers = 0;
  EXPECT_THROW(InferenceServer(*fx.engine, bad_workers),
               std::invalid_argument);

  ServerConfig bad_budget = fx.config(4, 100);
  bad_budget.threads_per_worker = -1;
  EXPECT_THROW(InferenceServer(*fx.engine, bad_budget),
               std::invalid_argument);
}

TEST(ServeServer, ThreadsPerWorkerEnvGrammar) {
  {
    ScopedEnv env("ADQ_THREADS_PER_WORKER", "3");
    EXPECT_EQ(threads_per_worker_from_env(), 3);
  }
  for (const char* bad : {"abc", "2x", "-1", "0", "", "1.5", "4097"}) {
    ScopedEnv env("ADQ_THREADS_PER_WORKER", bad);
    EXPECT_THROW(threads_per_worker_from_env(), std::invalid_argument)
        << "accepted ADQ_THREADS_PER_WORKER='" << bad << "'";
  }
  if (std::getenv("ADQ_THREADS_PER_WORKER") == nullptr) {
    EXPECT_EQ(threads_per_worker_from_env(), 0);  // unset = auto
  }
}

TEST(ServeServer, WorkerBudgetPartitionsThePool) {
  const int pool_n = parallel_thread_count();
  // Auto: an even split of the scheduler pool, never below 1.
  EXPECT_EQ(resolve_worker_budget(0, 1), std::max(1, pool_n));
  EXPECT_EQ(resolve_worker_budget(0, 2), std::max(1, pool_n / 2));
  EXPECT_EQ(resolve_worker_budget(0, 1'000), 1);
  // Explicit beats auto.
  EXPECT_EQ(resolve_worker_budget(3, 2), 3);

  // A multi-worker server under a 1-thread intra-op budget still serves
  // every request, and the occupancy fields surface in its stats.
  ServeFixture fx;
  ServerConfig cfg = fx.config(4, 1'000, /*workers=*/2);
  cfg.threads_per_worker = 1;
  InferenceServer server(*fx.engine, cfg);
  EXPECT_EQ(server.worker_thread_budget(), 1);
  Rng rng(9);
  std::vector<std::future<InferenceResult>> futures;
  for (int i = 0; i < 8; ++i) futures.push_back(server.submit(fx.sample(rng)));
  for (auto& f : futures) {
    const InferenceResult r = f.get();
    EXPECT_EQ(r.logits.shape().dim(0), 10);
  }
  server.shutdown();
  const ServerStats::Snapshot st = server.stats();
  EXPECT_EQ(st.requests, 8u);
  EXPECT_EQ(st.pool_threads, pool_n);
  EXPECT_GE(st.pool_busy_peak, 0);
  EXPECT_EQ(st.pool_live_jobs, 0);  // nothing in flight after shutdown
}

// One compiled plan shared by many threads: concurrent forward() calls
// must be safe (thread_local scratch, immutable plan + weight views) and
// produce exactly the serial result.
TEST(ServeEngine, ConcurrentForwardOnSharedEngineIsDeterministic) {
  ServeFixture fx;
  Rng rng(14);
  Tensor x(Shape{4, 3, 32, 32});
  rng.fill_normal(x, 0.0f, 1.0f);
  const Tensor ref = fx.engine->forward(x);

  constexpr int kThreads = 4;
  std::vector<Tensor> outs(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back(
        [&, t] { outs[static_cast<std::size_t>(t)] = fx.engine->forward(x); });
  }
  for (std::thread& t : threads) t.join();
  for (const Tensor& out : outs) {
    ASSERT_EQ(out.shape(), ref.shape());
    for (std::int64_t i = 0; i < ref.numel(); ++i) {
      ASSERT_EQ(out[i], ref[i]);
    }
  }
}

}  // namespace
}  // namespace adq::serve
