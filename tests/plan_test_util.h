// Shared helpers for plan-level test suites.
#pragma once

#include "infer/plan.h"

namespace adq::infer::testutil {

/// Strips the derivable v3 memory-plan annotations — exactly what
/// save_plan(..., version <= 2) drops on the way down. Used by suites
/// that byte-compare against references predating the memory planner.
inline InferencePlan without_memory_plan(InferencePlan plan) {
  plan.arena_bytes = 0;
  plan.planned_input = PlannedInput{};
  for (OpPlan& op : plan.ops) op.out_offset = -1;
  return plan;
}

}  // namespace adq::infer::testutil
