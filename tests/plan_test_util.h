// Shared helpers for plan-level test suites.
#pragma once

#include <cstdlib>
#include <string>

#include "infer/plan.h"

namespace adq::infer::testutil {

/// Strips the derivable memory-plan annotations — exactly what
/// save_plan(..., version <= 2) drops on the way down: the v3 arena
/// footprint / planned input / slot offsets and the v4 activation-storage
/// annotations (float-baseline footprint + per-op packed cell fields; only
/// nonzero in packed plans, which older versions refuse outright). Used by
/// suites that byte-compare against references predating the memory
/// planner.
inline InferencePlan without_memory_plan(InferencePlan plan) {
  plan.arena_bytes = 0;
  plan.arena_bytes_u8 = 0;
  plan.planned_input = PlannedInput{};
  for (OpPlan& op : plan.ops) {
    op.out_offset = -1;
    op.out_act_bits = 0;
    op.out_act_qbits = 0;
  }
  return plan;
}

/// RAII environment-variable pin, restoring the previous value (or
/// unsetting) on scope exit. Tests use it to pin compile-time knobs such
/// as ADQ_ACT_BITS without leaking into sibling tests.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_ = old != nullptr;
    if (had_) old_ = old;
    setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (had_) {
      setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      unsetenv(name_.c_str());
    }
  }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  std::string name_;
  std::string old_;
  bool had_ = false;
};

}  // namespace adq::infer::testutil
