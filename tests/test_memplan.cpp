// Static activation-memory planner + slot-based arena executor tests.
//
// MemPlanner: properties of graph::plan_memory — on randomized DAGs
// (chains + residual diamonds) a byte-level replay of the execution
// schedule proves no live value is ever clobbered by another slot;
// offsets are deterministic across runs; the Fig-2 ResNet skip quantizer
// and unfused ReLUs really do execute in place; packing genuinely reuses
// memory (arena << sum of values).
//
// ArenaExec: the slot-based executor is bit-identical to the heap path
// (ADQ_ARENA=0) on VGG19, ResNet18 and MobileNet-small across
// int8/int4/int2/mixed policies; the measured peak activation footprint
// equals the planner's predicted arena_bytes; and — via a global
// operator new/delete counter — a steady-state forward_into() performs
// ZERO heap allocations.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

// Replaces global operator new/delete: overriding them is the only way to
// observe *every* heap allocation the forward path makes, including ones
// from the standard library. Counting is gated so the test harness's own
// allocations (gtest, message formatting) do not pollute the bracket.
#include "bench/alloc_counter.h"
#include "graph/build.h"
#include "graph/graph.h"
#include "graph/passes.h"
#include "infer/engine.h"
#include "infer/plan.h"
#include "models/mobilenet.h"
#include "models/resnet.h"
#include "models/vgg.h"
#include "plan_test_util.h"
#include "tensor/ops.h"
#include "tensor/rng.h"

namespace adq::infer {
namespace {

// ---------------------------------------------------------------------------
// MemPlanner — planner properties.
// ---------------------------------------------------------------------------

graph::Graph input_graph(std::int64_t c, std::int64_t h, std::int64_t w) {
  graph::Graph g("memplan");
  graph::Node in;
  in.kind = graph::NodeKind::kInput;
  in.name = "input";
  in.type = graph::ValueType::chw(c, h, w);
  g.set_input(g.add(std::move(in)));
  return g;
}

int add_node(graph::Graph& g, graph::NodeKind kind, const std::string& name,
             std::vector<int> inputs, int bits = 0) {
  graph::Node n;
  n.kind = kind;
  n.name = name;
  n.inputs = std::move(inputs);
  n.bits = bits;
  if (kind == graph::NodeKind::kAdd) n.fused_relu = true;
  return g.add(std::move(n));
}

// Random lowerable DAG: straight-line sections of elementwise ops and
// pools, interleaved with residual diamonds (1-3 elementwise main-chain
// ops, optionally a Fig-2 skip quantizer).
graph::Graph random_graph(Rng& rng, int sections) {
  graph::Graph g = input_graph(4, 16, 16);
  int cur = g.input();
  std::int64_t height = 16;  // tracked so pools never shrink maps to zero
  int uid = 0;
  auto name = [&](const char* base) {
    return std::string(base) + std::to_string(uid++);
  };
  for (int s = 0; s < sections; ++s) {
    switch (rng.uniform_int(0, 3)) {
      case 0:
        cur = add_node(g, graph::NodeKind::kReLU, name("relu"), {cur});
        break;
      case 1:
        cur = add_node(g, graph::NodeKind::kQuantize, name("q"), {cur}, 5);
        break;
      case 2:
        if (height < 4) break;  // keep the maps non-degenerate
        cur = add_node(g, graph::NodeKind::kMaxPool, name("pool"), {cur});
        height /= 2;
        break;
      case 3: {  // residual diamond over elementwise ops
        const int fork = cur;
        int skip = fork;
        if (rng.uniform_int(0, 1) == 1) {
          skip = add_node(g, graph::NodeKind::kQuantize, name("skip_q"),
                          {fork}, 4);
        }
        int main = fork;
        const int chain = static_cast<int>(rng.uniform_int(1, 3));
        for (int i = 0; i < chain; ++i) {
          main = i % 2 == 0
                     ? add_node(g, graph::NodeKind::kReLU, name("m_relu"),
                                {main})
                     : add_node(g, graph::NodeKind::kQuantize, name("m_q"),
                                {main}, 6);
        }
        cur = add_node(g, graph::NodeKind::kAdd, name("add"), {main, skip});
        break;
      }
    }
  }
  g.set_output(add_node(g, graph::NodeKind::kOutput, "output", {cur}));
  return g;
}

// Byte-level replay of the planned schedule: every slot-owning or
// in-place node stamps its byte range with its id; every edge read
// verifies the producing value's bytes still carry the right stamp. Any
// two live intervals sharing arena bytes fail this immediately.
void expect_no_live_overlap(const graph::Graph& g) {
  const std::vector<int> schedule = graph::execution_schedule(g);
  const std::int64_t arena = g.arena_bytes();
  std::vector<int> stamp_of(static_cast<std::size_t>(g.size()), -1);
  std::vector<int> arena_stamp(static_cast<std::size_t>(arena), -1);
  for (int id : schedule) {
    const graph::Node& n = g.at(id);
    // Verify reads first: each input's bytes must still be intact.
    for (int in : n.inputs) {
      const graph::Node& v = g.at(in);
      if (v.mem.offset < 0) continue;  // caller-owned input
      for (std::int64_t b = v.mem.offset; b < v.mem.offset + v.mem.bytes;
           ++b) {
        ASSERT_EQ(arena_stamp[static_cast<std::size_t>(b)],
                  stamp_of[static_cast<std::size_t>(in)])
            << "value '" << v.name << "' clobbered before its last use at "
            << "step of '" << n.name << "' (byte " << b << ")";
      }
    }
    // Then the write (or view) this node performs.
    const bool pure_view = n.kind == graph::NodeKind::kFlatten ||
                           n.kind == graph::NodeKind::kOutput ||
                           n.kind == graph::NodeKind::kInput;
    if (pure_view) {
      stamp_of[static_cast<std::size_t>(id)] =
          n.inputs.empty() ? -1 : stamp_of[static_cast<std::size_t>(n.inputs[0])];
      continue;
    }
    ASSERT_GE(n.mem.offset, 0) << n.name;
    ASSERT_EQ(n.mem.offset % 64, 0) << n.name;
    ASSERT_LE(n.mem.offset + n.mem.bytes, arena) << n.name;
    stamp_of[static_cast<std::size_t>(id)] = id;
    for (std::int64_t b = n.mem.offset; b < n.mem.offset + n.mem.bytes; ++b) {
      arena_stamp[static_cast<std::size_t>(b)] = id;
    }
  }
}

TEST(MemPlanner, RandomizedDagsNeverOverlapLiveValues) {
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    Rng rng(900 + seed);
    graph::Graph g = random_graph(rng, 2 + static_cast<int>(seed % 7));
    graph::infer_shapes(g);
    graph::verify(g);
    const std::int64_t arena = graph::plan_memory(g);
    ASSERT_GT(arena, 0) << "seed " << seed;
    expect_no_live_overlap(g);
  }
}

TEST(MemPlanner, OffsetsAreDeterministicAcrossRuns) {
  for (std::uint64_t seed : {3u, 11u, 27u}) {
    auto build = [&] {
      Rng rng(700 + seed);
      graph::Graph g = random_graph(rng, 6);
      graph::infer_shapes(g);
      graph::verify(g);
      graph::plan_memory(g);
      return g;
    };
    const graph::Graph a = build();
    const graph::Graph b = build();
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(a.arena_bytes(), b.arena_bytes());
    for (int i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a.at(i).mem.offset, b.at(i).mem.offset) << a.at(i).name;
      EXPECT_EQ(a.at(i).mem.def, b.at(i).mem.def);
      EXPECT_EQ(a.at(i).mem.last_use, b.at(i).mem.last_use);
    }
  }
}

std::unique_ptr<models::QuantizableModel> small_resnet(int bits,
                                                       std::uint64_t seed) {
  Rng rng(seed);
  models::ResNetConfig cfg;
  cfg.width_mult = 0.0625;
  cfg.num_classes = 10;
  cfg.input_size = 16;
  auto model = models::build_resnet18(cfg, rng);
  model->set_training(false);
  for (int i = 0; i < model->unit_count(); ++i) {
    if (!model->unit(i).frozen) model->unit(i).set_bits(bits);
  }
  return model;
}

std::unique_ptr<models::QuantizableModel> small_vgg(std::uint64_t seed) {
  Rng rng(seed);
  models::VggConfig cfg;
  cfg.width_mult = 0.0625;
  cfg.num_classes = 10;
  auto model = models::build_vgg19(cfg, rng);
  model->set_training(false);
  for (int i = 0; i < model->unit_count(); ++i) {
    if (!model->unit(i).frozen) model->unit(i).set_bits(8);
  }
  return model;
}

TEST(MemPlanner, ResNetSkipQuantizerRunsInPlace) {
  // The Fig-2 skip quantizer is scheduled lazily (just before the add), at
  // which point the main branch is done reading the fork — so the planner
  // must alias its output onto the fork's slot in EVERY residual block, and
  // the lowered plan must carry that aliasing (out_offset == -1). This is
  // the float-storage schedule: packed skip quantizers run eagerly into a
  // fresh slot instead, so pin compression off.
  const testutil::ScopedEnv act_off("ADQ_ACT_BITS", "off");
  auto model = small_resnet(4, 81);
  graph::Graph g = graph::build_from_model(*model);
  graph::legalize(g);
  graph::plan_memory(g);
  int skip_quantizers = 0;
  for (int i = 0; i < g.size(); ++i) {
    const graph::Node& n = g.at(i);
    if (n.dead || n.kind != graph::NodeKind::kQuantize) continue;
    ++skip_quantizers;
    EXPECT_TRUE(n.mem.inplace) << n.name;
    // Aliased onto the fork's slot, not a fresh one.
    EXPECT_EQ(n.mem.offset, g.at(n.inputs[0]).mem.offset) << n.name;
  }
  EXPECT_EQ(skip_quantizers, 8);  // one per residual block

  const InferencePlan plan = compile(*model);
  int quantize_skip_ops = 0;
  for (const OpPlan& op : plan.ops) {
    if (op.kind != OpKind::kQuantizeSkip) continue;
    ++quantize_skip_ops;
    EXPECT_EQ(op.out_offset, -1);  // in place over the fork slot
  }
  EXPECT_EQ(quantize_skip_ops, 8);
}

TEST(MemPlanner, UnfusedReluRunsInPlace) {
  // A removed (bypassed) conv leaves its ReLU standalone; its input has no
  // other reader, so it must execute in place.
  auto model = small_vgg(82);
  model->remove_unit(1);
  const InferencePlan plan = compile(*model);
  int standalone_relus = 0;
  for (const OpPlan& op : plan.ops) {
    if (op.kind != OpKind::kReLU) continue;
    ++standalone_relus;
    EXPECT_EQ(op.out_offset, -1);
  }
  EXPECT_EQ(standalone_relus, 1);
}

TEST(MemPlanner, PackingReusesMemory) {
  // The arena must sit well below the sum of all activation values — the
  // whole point of lifetime packing. VGG19 peaks where the two largest
  // conv maps are simultaneously live (producer + consumer at the first
  // stack), so the arena is exactly two peak slabs, not the network total.
  // Float storage pinned: packed cells shrink the peak slabs asymmetrically
  // (the producer packs, its float input does not), breaking the 2x
  // identity this test pins.
  const testutil::ScopedEnv act_off("ADQ_ACT_BITS", "off");
  auto model = small_vgg(83);
  graph::Graph g = graph::build_from_model(*model);
  graph::legalize(g);
  const std::int64_t arena = graph::plan_memory(g);
  std::int64_t total = 0, largest = 0;
  for (int i = 0; i < g.size(); ++i) {
    if (g.at(i).dead || i == g.input()) continue;
    total += g.at(i).mem.bytes;
    largest = std::max(largest, g.at(i).mem.bytes);
  }
  ASSERT_GT(arena, 0);
  EXPECT_LT(arena, total / 2);
  EXPECT_EQ(arena, 2 * largest);  // producer + consumer of the peak layer
}

TEST(MemPlanner, CompiledPlansAreByteDeterministic) {
  auto model_a = small_resnet(4, 84);
  auto model_b = small_resnet(4, 84);
  const InferencePlan a = compile(*model_a);
  const InferencePlan b = compile(*model_b);
  ASSERT_EQ(a.ops.size(), b.ops.size());
  EXPECT_EQ(a.arena_bytes, b.arena_bytes);
  for (std::size_t i = 0; i < a.ops.size(); ++i) {
    EXPECT_EQ(a.ops[i].out_offset, b.ops[i].out_offset) << "op " << i;
  }
}

// ---------------------------------------------------------------------------
// MemPlanner — compressed activation slots (ADQ_ACT_BITS).
// ---------------------------------------------------------------------------

std::unique_ptr<models::QuantizableModel> paper_mixed_resnet(
    std::uint64_t seed) {
  Rng rng(seed);
  models::ResNetConfig cfg;
  cfg.width_mult = 0.0625;
  cfg.num_classes = 10;
  cfg.input_size = 16;
  auto model = models::build_resnet18(cfg, rng);
  model->set_training(false);
  // Table II(b) iteration-2 unit bits, clipped to the 8-bit integer
  // ceiling (wider layers run the float path and keep float slots).
  const std::vector<int> bits{16, 5, 3, 3,  11, 1, 1, 11, 4,
                              4,  10, 4, 4, 11, 3, 3, 9,  16};
  for (int i = 0; i < model->unit_count(); ++i) {
    if (!model->unit(i).frozen) {
      model->unit(i).set_bits(
          std::min(bits[static_cast<std::size_t>(i) % bits.size()], 8));
    }
  }
  return model;
}

std::unique_ptr<models::QuantizableModel> mixed_mobilenet(std::uint64_t seed) {
  Rng rng(seed);
  models::MobileNetConfig cfg;
  cfg.width_mult = 0.25;
  cfg.num_classes = 10;
  auto model = models::build_mobilenet_small(cfg, rng);
  model->set_training(false);
  const int pattern[] = {8, 4, 2};
  for (int i = 0; i < model->unit_count(); ++i) {
    if (!model->unit(i).frozen) model->unit(i).set_bits(pattern[i % 3]);
  }
  return model;
}

TEST(MemPlanner, PackedArenaShrinksAtLeast35PctOnMixedPlans) {
  // The tentpole's acceptance bar: sub-byte activation cells shrink the
  // paper-mixed ResNet18 and MobileNet-small arenas by at least 35%
  // against the float-slot baseline the planner records alongside.
  const testutil::ScopedEnv act_on("ADQ_ACT_BITS", "on");
  for (auto& plan : {compile(*paper_mixed_resnet(181)),
                     compile(*mixed_mobilenet(182))}) {
    ASSERT_GT(plan.arena_bytes, 0) << plan.model_name;
    ASSERT_GT(plan.arena_bytes_u8, 0) << plan.model_name;
    EXPECT_LE(static_cast<double>(plan.arena_bytes),
              0.65 * static_cast<double>(plan.arena_bytes_u8))
        << plan.model_name << ": arena " << plan.arena_bytes << " vs "
        << plan.arena_bytes_u8 << " float baseline";
  }
}

TEST(MemPlanner, PackedSkipQuantizerRunsEagerlyIntoAFreshSlot) {
  // A packed skip quantizer cannot alias the fork in place (packed bytes
  // would overwrite float words the main chain still reads), so the
  // lowering schedules it eagerly — immediately after the push, while the
  // fork is untouched — into its own packed slot.
  const testutil::ScopedEnv act_on("ADQ_ACT_BITS", "on");
  auto model = small_resnet(4, 183);
  const InferencePlan plan = compile(*model);
  int packed_skips = 0;
  for (std::size_t i = 0; i < plan.ops.size(); ++i) {
    const OpPlan& op = plan.ops[i];
    if (op.kind != OpKind::kQuantizeSkip || op.out_act_bits <= 0) continue;
    ++packed_skips;
    EXPECT_GE(op.out_offset, 0) << "op " << i;
    ASSERT_GT(i, 0u);
    EXPECT_EQ(static_cast<int>(plan.ops[i - 1].kind),
              static_cast<int>(OpKind::kPushSkip))
        << "op " << i << " is not scheduled right after its push";
  }
  EXPECT_EQ(packed_skips, 8);  // every residual block's quantizer packs
}

TEST(MemPlanner, OffModeKeepsFloatSlotsAndBaselineEqual) {
  const testutil::ScopedEnv act_off("ADQ_ACT_BITS", "off");
  const InferencePlan plan = compile(*paper_mixed_resnet(184));
  for (const OpPlan& op : plan.ops) {
    EXPECT_EQ(op.out_act_bits, 0);
    EXPECT_EQ(op.out_act_qbits, 0);
  }
  EXPECT_EQ(plan.arena_bytes_u8, plan.arena_bytes);
}

TEST(MemPlanner, ActBitsPinWidensToTheGridAndRejectsGarbage) {
  {
    // Pinned to 8: every packed value stores one code per byte.
    const testutil::ScopedEnv env("ADQ_ACT_BITS", "8");
    const InferencePlan plan = compile(*small_resnet(4, 185));
    int packed = 0;
    for (const OpPlan& op : plan.ops) {
      if (op.out_act_bits <= 0) continue;
      ++packed;
      EXPECT_EQ(op.out_act_bits, 8);
    }
    EXPECT_GT(packed, 0);
  }
  {
    // Pinned to 2 on a 4-bit model: codes must fit, so the cell widens to
    // the grid's natural 4 bits instead of truncating.
    const testutil::ScopedEnv env("ADQ_ACT_BITS", "2");
    const InferencePlan plan = compile(*small_resnet(4, 185));
    int packed = 0;
    for (const OpPlan& op : plan.ops) {
      if (op.out_act_bits <= 0) continue;
      ++packed;
      EXPECT_EQ(op.out_act_bits, 4) << "4-bit codes in a 2-bit cell";
    }
    EXPECT_GT(packed, 0);
  }
  {
    // A typo must fail compilation loudly, never silently change the plan.
    const testutil::ScopedEnv env("ADQ_ACT_BITS", "banana");
    auto model = small_resnet(4, 185);
    EXPECT_THROW(compile(*model), std::invalid_argument);
  }
}

// ---------------------------------------------------------------------------
// ArenaExec — the slot-based executor.
// ---------------------------------------------------------------------------

void expect_arena_matches_heap(const InferencePlan& plan, const Tensor& x,
                               const std::string& label) {
  const IntInferenceEngine engine(plan);
  ASSERT_TRUE(engine.uses_arena(x)) << label;
  const Tensor arena = engine.forward(x);
  setenv("ADQ_ARENA", "0", 1);
  ASSERT_FALSE(engine.uses_arena(x)) << label;
  const Tensor heap = engine.forward(x);
  unsetenv("ADQ_ARENA");
  ASSERT_EQ(arena.shape(), heap.shape()) << label;
  for (std::int64_t i = 0; i < arena.numel(); ++i) {
    ASSERT_EQ(arena[i], heap[i]) << label << " logit " << i;
  }
}

TEST(ArenaExec, BitIdenticalToHeapPathAcrossModelsAndPolicies) {
  Rng rng(90);
  Tensor x32(Shape{4, 3, 32, 32});
  rng.fill_normal(x32, 0.0f, 1.0f);
  Tensor x16(Shape{4, 3, 16, 16});
  rng.fill_normal(x16, 0.0f, 1.0f);

  const std::vector<std::vector<int>> policies{
      {8}, {4}, {2}, {8, 4, 2}};  // uniform int8/int4/int2 + mixed
  for (const std::vector<int>& policy : policies) {
    const std::string tag =
        "policy" + std::to_string(policy.size() == 1 ? policy[0] : 0);
    auto apply = [&](models::QuantizableModel& m) {
      for (int i = 0; i < m.unit_count(); ++i) {
        if (!m.unit(i).frozen) {
          m.unit(i).set_bits(
              policy[static_cast<std::size_t>(i) % policy.size()]);
        }
      }
    };

    auto vgg = small_vgg(91);
    apply(*vgg);
    expect_arena_matches_heap(compile(*vgg), x32, "vgg19/" + tag);

    auto resnet = small_resnet(8, 92);
    apply(*resnet);
    expect_arena_matches_heap(compile(*resnet), x16, "resnet18/" + tag);

    Rng mrng(93);
    models::MobileNetConfig mcfg;
    mcfg.width_mult = 0.25;
    mcfg.num_classes = 10;
    auto mobilenet = models::build_mobilenet_small(mcfg, mrng);
    mobilenet->set_training(false);
    apply(*mobilenet);
    expect_arena_matches_heap(compile(*mobilenet), x32, "mobilenet/" + tag);
  }
}

TEST(ArenaExec, MeasuredPeakEqualsPlannedArenaBytes) {
  // Replaying the executor's shape walk over the planned slots, the
  // highest byte any op touches is exactly the planner's arena_bytes —
  // prediction and execution agree, with no slack and no overrun.
  for (auto& plan : {compile(*small_vgg(94)), compile(*small_resnet(4, 95))}) {
    const std::vector<std::int64_t> out_elems = plan.op_out_elems();
    std::int64_t peak = 0;
    for (std::size_t i = 0; i < plan.ops.size(); ++i) {
      const OpPlan& op = plan.ops[i];
      if (op.out_offset < 0) continue;
      // Packed slots hold act_bits-wide cells, float slots 4-byte words;
      // both round up to the 64-byte slot granule the planner allocates.
      const std::int64_t raw =
          op.out_act_bits > 0
              ? (out_elems[i] * op.out_act_bits + 7) / 8
              : out_elems[i] * static_cast<std::int64_t>(sizeof(float));
      peak = std::max(peak, op.out_offset + (raw + 63) / 64 * 64);
    }
    EXPECT_EQ(peak, plan.arena_bytes) << plan.model_name;
    const IntInferenceEngine engine(plan);
    EXPECT_EQ(engine.peak_activation_bytes(16), plan.arena_bytes * 16);
  }
}

TEST(ArenaExec, EngineRejectsOverlappingSlots) {
  // A checksum only proves a file arrived as written; the engine replays
  // the planned slots once at construction and must refuse a layout whose
  // writer's planner was broken — silently wrong logits are not an option.
  {
    // An op whose output slot overlaps the input it is still reading.
    auto model = small_vgg(86);
    InferencePlan plan = compile(*model);
    std::size_t first = 0;
    while (plan.ops[first].out_offset < 0) ++first;
    std::size_t second = first + 1;
    while (plan.ops[second].out_offset < 0) ++second;
    plan.ops[second].out_offset = plan.ops[first].out_offset;
    EXPECT_THROW(IntInferenceEngine{std::move(plan)}, std::runtime_error);
  }
  {
    // A main-chain conv clobbering the residual fork slot the deferred
    // skip quantizer still needs.
    auto model = small_resnet(8, 87);
    InferencePlan plan = compile(*model);
    std::size_t stem = 0;
    while (plan.ops[stem].out_offset < 0) ++stem;
    std::size_t push = stem;
    while (plan.ops[push].kind != OpKind::kPushSkip) ++push;
    std::size_t conv2 = push + 2;  // push, conv1, conv2
    ASSERT_EQ(static_cast<int>(plan.ops[conv2].kind),
              static_cast<int>(OpKind::kGemm));
    plan.ops[conv2].out_offset = plan.ops[stem].out_offset;
    EXPECT_THROW(IntInferenceEngine{std::move(plan)}, std::runtime_error);
  }
}

TEST(ArenaExec, OffPlanInputsFallBackToHeapPath) {
  // ResNet is input-size agnostic (GAP head): a shape the plan was not
  // planned for must still execute — on the heap path.
  auto model = small_resnet(8, 96);
  const InferencePlan plan = compile(*model);
  const IntInferenceEngine engine(plan);
  Rng rng(97);
  Tensor x(Shape{2, 3, 20, 20});
  rng.fill_normal(x, 0.0f, 1.0f);
  EXPECT_FALSE(engine.uses_arena(x));
  const Tensor y = engine.forward(x);
  EXPECT_EQ(y.shape(), (Shape{2, 10}));
}

TEST(ArenaExec, SteadyStateForwardMakesZeroHeapAllocations) {
  for (const bool residual : {false, true}) {
    const InferencePlan plan =
        residual ? compile(*small_resnet(4, 98)) : compile(*small_vgg(99));
    const IntInferenceEngine engine(plan);
    Rng rng(100);
    Tensor x(residual ? Shape{2, 3, 16, 16} : Shape{2, 3, 32, 32});
    rng.fill_normal(x, 0.0f, 1.0f);
    ASSERT_TRUE(engine.uses_arena(x));

    Tensor out;
    // Warm-up: grows the per-thread arena, code buffers, im2col slabs and
    // the output tensor once.
    for (int i = 0; i < 3; ++i) engine.forward_into(x, out);

    alloccount::g_alloc_count.store(0);
    alloccount::g_count_allocs.store(true);
    for (int i = 0; i < 5; ++i) engine.forward_into(x, out);
    alloccount::g_count_allocs.store(false);
    EXPECT_EQ(alloccount::g_alloc_count.load(), 0)
        << (residual ? "resnet" : "vgg")
        << ": steady-state forward_into allocated";
  }
}

}  // namespace
}  // namespace adq::infer
